// Command rainbar-bench regenerates the paper's evaluation artifacts:
// every figure and table of §IV plus the §III-B capacity analysis, the
// Fig. 3/4 localization comparison, and the ablations documented in
// DESIGN.md. Output is aligned text tables; see EXPERIMENTS.md for the
// recorded reference run.
//
// Usage:
//
//	rainbar-bench [-exp all|fig10a|fig10b|fig10c|fig10d|fig11|fig11c|
//	               table1|fig12a|fig12b|capacity|localization|decode-time|
//	               text-transfer|hsv-vs-rgb|sync-ablation|faults|recovery]
//	              [-frames N] [-seed N] [-workers N] [-full]
//	              [-faults spec] [-recovery off|erasures|ladder|combine]
//	              [-metrics file|-] [-metrics-table] [-pprof addr]
//
// Sweeps fan out across -workers goroutines (default: one per CPU); the
// tables are bit-identical for every worker count, so -workers only trades
// wall-clock time for CPU. -workers 1 forces the serial path.
//
// -metrics attaches an in-memory recorder to every codec, channel, camera
// and session the sweeps construct and writes the collected series after
// the run: Prometheus text by default, JSON when the filename ends in
// .json, stdout when the argument is "-". The recorder only observes —
// result tables are bit-identical with or without it. -metrics-table
// additionally prints the series as an aligned summary table.
// -pprof serves net/http/pprof on the given address for the run's
// duration.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"rainbar/internal/experiment"
	"rainbar/internal/obs"
	"rainbar/internal/perf"
	"rainbar/internal/transport"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id to run (or 'all')")
		frames    = flag.Int("frames", 0, "frames per sweep point (0 = default)")
		seed      = flag.Int64("seed", 1, "base random seed")
		workers   = flag.Int("workers", 0, "sweep-point workers (0 = one per CPU, 1 = serial)")
		full      = flag.Bool("full", false, "run at the S4's native 1920x1080 (slow)")
		fspec     = flag.String("faults", "", "extra fault-sweep condition, e.g. 'drop=0.2,occlude=0.1' (see internal/faults)")
		recovery  = flag.String("recovery", "off", "decode-recovery mode for transfer sweeps: off, erasures, ladder or combine (the recovery ablation always runs all four)")
		perfJSON  = flag.String("perf-json", "", "run the decode-path kernel benchmarks and write a perf snapshot to this file ('-' = stdout) instead of running experiments")
		perfTime  = flag.String("perf-benchtime", "", "benchtime for -perf-json runs, in -test.benchtime syntax (default 1s; e.g. '100ms' or '50x' for a smoke run)")
		metrics   = flag.String("metrics", "", "write pipeline metrics to this file after the run ('-' = stdout, *.json = JSON exposition)")
		metricsTb = flag.Bool("metrics-table", false, "print the collected metrics as a summary table (implies -metrics collection)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rainbar-bench: pprof:", err)
			}
		}()
	}

	if *perfJSON != "" {
		if err := writePerfSnapshot(*perfJSON, *perfTime); err != nil {
			fmt.Fprintln(os.Stderr, "rainbar-bench:", err)
			os.Exit(1)
		}
		return
	}

	o := experiment.DefaultOptions()
	if *full {
		o.Scale = experiment.FullScale()
	}
	if *frames > 0 {
		o.Scale.Frames = *frames
	}
	o.Seed = *seed
	o.Workers = *workers
	o.FaultSpec = *fspec
	mode, err := transport.ParseRecoveryMode(*recovery)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainbar-bench:", err)
		os.Exit(1)
	}
	o.Recovery = mode

	var rec *obs.Memory
	if *metrics != "" || *metricsTb {
		rec = obs.NewMemory()
		o.Recorder = rec
	}

	if err := run(*exp, o, rec); err != nil {
		fmt.Fprintln(os.Stderr, "rainbar-bench:", err)
		os.Exit(1)
	}
	if rec == nil {
		return
	}
	if *metricsTb {
		fmt.Println()
		fmt.Print(experiment.MetricsTable(rec.Snapshot()).Format())
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, rec); err != nil {
			fmt.Fprintln(os.Stderr, "rainbar-bench:", err)
			os.Exit(1)
		}
	}
}

// writePerfSnapshot runs the kernel benchmarks and writes the schema'd
// snapshot to path ("-" = stdout). scripts/bench.sh wraps this to produce
// the committed BENCH_<n>.json files.
func writePerfSnapshot(path, benchtime string) error {
	s, err := perf.Collect(benchtime)
	if err != nil {
		return err
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return s.WriteJSON(w)
}

// writeMetrics exposes the recorder to path: "-" means stdout, a .json
// suffix selects the JSON exposition, anything else Prometheus text.
func writeMetrics(path string, rec *obs.Memory) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(path, ".json") {
		return rec.WriteJSON(w)
	}
	return rec.WritePrometheus(w)
}

func run(exp string, o experiment.Options, rec *obs.Memory) error {
	type job struct {
		id string
		fn func(experiment.Options) (*experiment.Table, error)
	}
	jobs := []job{
		{"capacity", experiment.CapacityAnalysis},
		{"localization", experiment.LocalizationError},
		{"fig10a", experiment.Fig10aDistance},
		{"fig10b", experiment.Fig10bViewAngle},
		{"fig10c", experiment.Fig10cBlockSize},
		{"fig10d", experiment.Fig10dBrightness},
		{"fig11c", experiment.Fig11cBlockSize},
		{"table1", experiment.Table1Throughput},
		{"fig12a", experiment.Fig12aBlockSize},
		{"fig12b", experiment.Fig12bDisplayRate},
		{"decode-time", experiment.DecodeTime},
		{"text-transfer", experiment.TextTransfer},
		{"hsv-vs-rgb", experiment.HSVvsRGB},
		{"sync-ablation", experiment.SyncAblation},
		{"lightsync", experiment.LightSyncComparison},
		{"alphabet", experiment.AlphabetRobustness},
		{"loc-ablation", experiment.LocalizationAblation},
		{"adaptive", experiment.AdaptiveBlockSize},
		{"faults", experiment.FaultSweep},
		{"recovery", experiment.RecoverySweep},
	}

	emitted := func(n int) {
		if rec != nil {
			rec.Inc(obs.MExperimentTables, int64(n))
		}
	}

	ran := false
	start := time.Now()
	if exp == "all" || exp == "fig11" || exp == "fig11a" || exp == "fig11b" {
		ta, tb, err := experiment.Fig11DisplayRate(o)
		if err != nil {
			return err
		}
		fmt.Print(ta.Format())
		fmt.Println()
		fmt.Print(tb.Format())
		fmt.Println()
		emitted(2)
		ran = true
	}
	for _, j := range jobs {
		if exp != "all" && exp != j.id {
			continue
		}
		t, err := j.fn(o)
		if err != nil {
			return fmt.Errorf("%s: %w", j.id, err)
		}
		fmt.Print(t.Format())
		fmt.Println()
		emitted(1)
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (try -exp all)", exp)
	}
	fmt.Printf("total elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
