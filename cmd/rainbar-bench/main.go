// Command rainbar-bench regenerates the paper's evaluation artifacts:
// every figure and table of §IV plus the §III-B capacity analysis, the
// Fig. 3/4 localization comparison, and the ablations documented in
// DESIGN.md. Output is aligned text tables; see EXPERIMENTS.md for the
// recorded reference run.
//
// Usage:
//
//	rainbar-bench [-exp all|fig10a|fig10b|fig10c|fig10d|fig11|fig11c|
//	               table1|fig12a|fig12b|capacity|localization|decode-time|
//	               text-transfer|hsv-vs-rgb|sync-ablation|faults]
//	              [-frames N] [-seed N] [-workers N] [-full]
//	              [-faults spec]
//
// Sweeps fan out across -workers goroutines (default: one per CPU); the
// tables are bit-identical for every worker count, so -workers only trades
// wall-clock time for CPU. -workers 1 forces the serial path.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rainbar/internal/experiment"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id to run (or 'all')")
		frames  = flag.Int("frames", 0, "frames per sweep point (0 = default)")
		seed    = flag.Int64("seed", 1, "base random seed")
		workers = flag.Int("workers", 0, "sweep-point workers (0 = one per CPU, 1 = serial)")
		full    = flag.Bool("full", false, "run at the S4's native 1920x1080 (slow)")
		fspec   = flag.String("faults", "", "extra fault-sweep condition, e.g. 'drop=0.2,occlude=0.1' (see internal/faults)")
	)
	flag.Parse()

	o := experiment.DefaultOptions()
	if *full {
		o.Scale = experiment.FullScale()
	}
	if *frames > 0 {
		o.Scale.Frames = *frames
	}
	o.Seed = *seed
	o.Workers = *workers
	o.FaultSpec = *fspec

	if err := run(*exp, o); err != nil {
		fmt.Fprintln(os.Stderr, "rainbar-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, o experiment.Options) error {
	type job struct {
		id string
		fn func(experiment.Options) (*experiment.Table, error)
	}
	jobs := []job{
		{"capacity", experiment.CapacityAnalysis},
		{"localization", experiment.LocalizationError},
		{"fig10a", experiment.Fig10aDistance},
		{"fig10b", experiment.Fig10bViewAngle},
		{"fig10c", experiment.Fig10cBlockSize},
		{"fig10d", experiment.Fig10dBrightness},
		{"fig11c", experiment.Fig11cBlockSize},
		{"table1", experiment.Table1Throughput},
		{"fig12a", experiment.Fig12aBlockSize},
		{"fig12b", experiment.Fig12bDisplayRate},
		{"decode-time", experiment.DecodeTime},
		{"text-transfer", experiment.TextTransfer},
		{"hsv-vs-rgb", experiment.HSVvsRGB},
		{"sync-ablation", experiment.SyncAblation},
		{"lightsync", experiment.LightSyncComparison},
		{"alphabet", experiment.AlphabetRobustness},
		{"loc-ablation", experiment.LocalizationAblation},
		{"adaptive", experiment.AdaptiveBlockSize},
		{"faults", experiment.FaultSweep},
	}

	ran := false
	start := time.Now()
	if exp == "all" || exp == "fig11" || exp == "fig11a" || exp == "fig11b" {
		ta, tb, err := experiment.Fig11DisplayRate(o)
		if err != nil {
			return err
		}
		fmt.Print(ta.Format())
		fmt.Println()
		fmt.Print(tb.Format())
		fmt.Println()
		ran = true
	}
	for _, j := range jobs {
		if exp != "all" && exp != j.id {
			continue
		}
		t, err := j.fn(o)
		if err != nil {
			return fmt.Errorf("%s: %w", j.id, err)
		}
		fmt.Print(t.Format())
		fmt.Println()
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (try -exp all)", exp)
	}
	fmt.Printf("total elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
