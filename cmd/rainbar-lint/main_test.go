package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one contract package.
func writeModule(t *testing.T, body string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module m\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "faults")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "faults.go"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCleanIsZero(t *testing.T) {
	root := writeModule(t, `package faults

import "math/rand"

// NewRNG returns a locally seeded generator.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`)
	code, stdout, stderr := runLint(t, "-dir", root, "./...")
	if code != 0 {
		t.Fatalf("exit = %d (stdout %q, stderr %q), want 0", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run should print nothing, got %q", stdout)
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	root := writeModule(t, `package faults

import "math/rand"

// Roll draws from the process-global generator: a determinism breach.
func Roll() int { return rand.Intn(6) }
`)
	code, stdout, _ := runLint(t, "-dir", root, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stdout %q)", code, stdout)
	}
	if !strings.Contains(stdout, "RB-D2") || !strings.Contains(stdout, "faults.go:6") {
		t.Fatalf("diagnostic missing rule ID or position: %q", stdout)
	}
	if !strings.Contains(stdout, "1 finding(s)") {
		t.Fatalf("missing summary line: %q", stdout)
	}
}

func TestExitLoadErrorIsTwo(t *testing.T) {
	root := writeModule(t, "package faults\n\nfunc broken( {\n")
	code, _, stderr := runLint(t, "-dir", root)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr %q)", code, stderr)
	}
	if stderr == "" {
		t.Fatal("load error should be reported on stderr")
	}
}

func TestExitTypeErrorIsTwo(t *testing.T) {
	root := writeModule(t, "package faults\n\nvar X undefinedType\n")
	code, _, stderr := runLint(t, "-dir", root)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr %q)", code, stderr)
	}
}

func TestExitBadUsageIsTwo(t *testing.T) {
	if code, _, _ := runLint(t, "./internal/..."); code != 2 {
		t.Fatalf("unsupported pattern: exit = %d, want 2", code)
	}
	if code, _, _ := runLint(t, "-dir", filepath.Join(os.TempDir(), "definitely-not-a-module")); code != 2 {
		t.Fatalf("missing module: exit = %d, want 2", code)
	}
}

// TestRelativePositions pins that diagnostics are module-root relative so
// CI output is stable across checkouts.
func TestRelativePositions(t *testing.T) {
	root := writeModule(t, `package faults

import "time"

// Stamp reads the wall clock inside a contract package.
func Stamp() time.Time { return time.Now() }
`)
	code, stdout, _ := runLint(t, "-dir", root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stdout %q)", code, stdout)
	}
	wantPrefix := filepath.Join("internal", "faults", "faults.go") + ":"
	if !strings.HasPrefix(stdout, wantPrefix) {
		t.Fatalf("diagnostic not module-relative: %q (want prefix %q)", stdout, wantPrefix)
	}
}

// writeTree lays out a throwaway module from a path->contents map.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module m\n\ngo 1.22\n"
	for rel, body := range files {
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestJSONMode(t *testing.T) {
	root := writeModule(t, `package faults

import "math/rand"

func Roll() int { return rand.Intn(6) }
`)
	code, stdout, _ := runLint(t, "-dir", root, "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stdout %q)", code, stdout)
	}
	var findings []struct {
		Rule string
		Msg  string
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout)
	}
	if len(findings) != 1 || findings[0].Rule != "RB-D2" {
		t.Fatalf("findings = %+v, want one RB-D2", findings)
	}

	clean := writeModule(t, `package faults

func Six() int { return 6 }
`)
	code, stdout, _ = runLint(t, "-dir", clean, "-json")
	if code != 0 || strings.TrimSpace(stdout) != "[]" {
		t.Fatalf("clean -json run: exit %d output %q, want 0 and []", code, stdout)
	}
}

func TestGraphMode(t *testing.T) {
	root := writeModule(t, `package faults

func Outer() int { return inner() }

func inner() int { return 1 }
`)
	code, first, stderr := runLint(t, "-dir", root, "-graph")
	if code != 0 {
		t.Fatalf("exit = %d (stderr %q), want 0", code, stderr)
	}
	for _, want := range []string{
		"node m/internal/faults.Outer",
		"-> m/internal/faults.inner kind=static",
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("graph dump missing %q:\n%s", want, first)
		}
	}
	if _, second, _ := runLint(t, "-dir", root, "-graph"); second != first {
		t.Error("-graph output differs between runs of the same tree")
	}
}

func TestAnnotationsAudit(t *testing.T) {
	root := writeModule(t, `package faults

import "time"

func Stamp() int64 {
	//lint:allow RB-D1 stopwatch telemetry only, never a decode decision
	return time.Now().UnixNano()
}
`)
	code, stdout, _ := runLint(t, "-dir", root, "-annotations")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout %q)", code, stdout)
	}
	if !strings.Contains(stdout, "//lint:allow RB-D1") ||
		!strings.Contains(stdout, "stopwatch telemetry only") ||
		!strings.Contains(stdout, "1 annotation(s), 0 stale rule ID(s)") {
		t.Fatalf("audit output incomplete:\n%s", stdout)
	}
}

func TestAnnotationsAuditStaleRuleFails(t *testing.T) {
	root := writeModule(t, `package faults

func Six() int {
	//lint:allow RB-D9 suppresses a rule that was removed long ago
	return 6
}
`)
	code, stdout, _ := runLint(t, "-dir", root, "-annotations")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stdout %q)", code, stdout)
	}
	if !strings.Contains(stdout, "stale rule ID RB-D9") {
		t.Fatalf("missing stale diagnostic:\n%s", stdout)
	}
}

// snapshotModule is a miniature of the real serve/transport snapshot pair,
// complete under RB-S1.
func snapshotModule() map[string]string {
	return map[string]string{
		"internal/transport/state.go": `package transport

type XferState struct {
	Round     int
	Rate      float64
	Collector CollectorState
	Combiner  CombinerState
	Stats     Stats
}

type CollectorState struct{ Total int }

type CombinerState struct{ Chunks []CombinerChunk }

type CombinerChunk struct{ Index int }

type Stats struct{ Frames int }
`,
		"internal/serve/snapshot.go": `package serve

import "m/internal/transport"

type Snapshot struct {
	ID    string
	State transport.XferState
}

func EncodeSnapshot(s *Snapshot) []byte {
	b := append([]byte(nil), s.ID...)
	return encodeXferState(b, &s.State)
}

func DecodeSnapshot(b []byte) *Snapshot {
	s := &Snapshot{ID: "x"}
	decodeXferState(b, &s.State)
	return s
}

func encodeXferState(b []byte, s *transport.XferState) []byte {
	b = appendInt(b, s.Round)
	b = appendInt(b, int(s.Rate))
	b = appendInt(b, s.Collector.Total)
	for _, c := range s.Combiner.Chunks {
		b = appendInt(b, c.Index)
	}
	return appendInt(b, s.Stats.Frames)
}

func decodeXferState(b []byte, s *transport.XferState) {
	s.Round = readInt(b)
	s.Rate = float64(readInt(b))
	s.Collector.Total = readInt(b)
	s.Combiner.Chunks = []transport.CombinerChunk{{Index: readInt(b)}}
	s.Stats.Frames = readInt(b)
}

func appendInt(b []byte, v int) []byte { return append(b, byte(v)) }

func readInt(b []byte) int {
	if len(b) == 0 {
		return 0
	}
	return int(b[0])
}
`,
		// A miniature of the durability journal's record framing. The
		// package path folds to the "serve" contract key, which is how the
		// real config addresses it ("serve.Record" / "serve.encodeFrame").
		"internal/serve/journal/journal.go": `package journal

type Record struct {
	Kind     byte
	ID       uint64
	Spec     []byte
	Snapshot []byte
	State    byte
	Err      string
}

func encodeFrame(rec Record) []byte {
	b := []byte{rec.Kind, byte(rec.ID), rec.State}
	b = append(b, rec.Spec...)
	b = append(b, rec.Snapshot...)
	return append(b, rec.Err...)
}

func decodeFrame(b []byte) Record {
	return Record{
		Kind:     b[0],
		ID:       uint64(b[1]),
		State:    b[2],
		Spec:     b[3:4],
		Snapshot: b[4:5],
		Err:      string(b[5:]),
	}
}

var _ = decodeFrame(encodeFrame(Record{}))
`,
	}
}

// TestSnapshotCompletenessGate is the RB-S1 acceptance demonstration: the
// complete miniature module is clean; deleting one field's encode line
// makes the gate fail at that field's declaration.
func TestSnapshotCompletenessGate(t *testing.T) {
	root := writeTree(t, snapshotModule())
	if code, stdout, stderr := runLint(t, "-dir", root); code != 0 {
		t.Fatalf("complete snapshot module: exit %d (stdout %q, stderr %q), want 0", code, stdout, stderr)
	}

	broken := snapshotModule()
	broken["internal/serve/snapshot.go"] = strings.Replace(
		broken["internal/serve/snapshot.go"],
		"\tb = appendInt(b, int(s.Rate))\n", "", 1)
	root = writeTree(t, broken)
	code, stdout, _ := runLint(t, "-dir", root)
	if code != 1 {
		t.Fatalf("encode line deleted: exit = %d, want 1 (stdout %q)", code, stdout)
	}
	if !strings.Contains(stdout, "RB-S1") ||
		!strings.Contains(stdout, "XferState.Rate is never written by the encode path") ||
		!strings.Contains(stdout, filepath.Join("internal", "transport", "state.go")) {
		t.Fatalf("RB-S1 diagnostic wrong:\n%s", stdout)
	}

	// The journal frame codec is under the same contract: a Record field
	// the decoder stops reading would silently vanish from every crash
	// recovery.
	torn := snapshotModule()
	torn["internal/serve/journal/journal.go"] = strings.Replace(
		torn["internal/serve/journal/journal.go"],
		"\t\tErr:      string(b[5:]),\n", "", 1)
	root = writeTree(t, torn)
	code, stdout, _ = runLint(t, "-dir", root)
	if code != 1 {
		t.Fatalf("journal decode line deleted: exit = %d, want 1 (stdout %q)", code, stdout)
	}
	if !strings.Contains(stdout, "RB-S1") ||
		!strings.Contains(stdout, "Record.Err is never read by the decode path") {
		t.Fatalf("journal RB-S1 diagnostic wrong:\n%s", stdout)
	}
}
