package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one contract package.
func writeModule(t *testing.T, body string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module m\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "faults")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "faults.go"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCleanIsZero(t *testing.T) {
	root := writeModule(t, `package faults

import "math/rand"

// NewRNG returns a locally seeded generator.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`)
	code, stdout, stderr := runLint(t, "-dir", root, "./...")
	if code != 0 {
		t.Fatalf("exit = %d (stdout %q, stderr %q), want 0", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run should print nothing, got %q", stdout)
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	root := writeModule(t, `package faults

import "math/rand"

// Roll draws from the process-global generator: a determinism breach.
func Roll() int { return rand.Intn(6) }
`)
	code, stdout, _ := runLint(t, "-dir", root, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stdout %q)", code, stdout)
	}
	if !strings.Contains(stdout, "RB-D2") || !strings.Contains(stdout, "faults.go:6") {
		t.Fatalf("diagnostic missing rule ID or position: %q", stdout)
	}
	if !strings.Contains(stdout, "1 finding(s)") {
		t.Fatalf("missing summary line: %q", stdout)
	}
}

func TestExitLoadErrorIsTwo(t *testing.T) {
	root := writeModule(t, "package faults\n\nfunc broken( {\n")
	code, _, stderr := runLint(t, "-dir", root)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr %q)", code, stderr)
	}
	if stderr == "" {
		t.Fatal("load error should be reported on stderr")
	}
}

func TestExitTypeErrorIsTwo(t *testing.T) {
	root := writeModule(t, "package faults\n\nvar X undefinedType\n")
	code, _, stderr := runLint(t, "-dir", root)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr %q)", code, stderr)
	}
}

func TestExitBadUsageIsTwo(t *testing.T) {
	if code, _, _ := runLint(t, "./internal/..."); code != 2 {
		t.Fatalf("unsupported pattern: exit = %d, want 2", code)
	}
	if code, _, _ := runLint(t, "-dir", filepath.Join(os.TempDir(), "definitely-not-a-module")); code != 2 {
		t.Fatalf("missing module: exit = %d, want 2", code)
	}
}

// TestRelativePositions pins that diagnostics are module-root relative so
// CI output is stable across checkouts.
func TestRelativePositions(t *testing.T) {
	root := writeModule(t, `package faults

import "time"

// Stamp reads the wall clock inside a contract package.
func Stamp() time.Time { return time.Now() }
`)
	code, stdout, _ := runLint(t, "-dir", root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stdout %q)", code, stdout)
	}
	wantPrefix := filepath.Join("internal", "faults", "faults.go") + ":"
	if !strings.HasPrefix(stdout, wantPrefix) {
		t.Fatalf("diagnostic not module-relative: %q (want prefix %q)", stdout, wantPrefix)
	}
}
