// Command rainbar-lint runs the repository's contract analyzers
// (internal/analysis) over every package in the module: determinism
// (RB-D1..D4), observability injection (RB-O1), error discipline
// (RB-E1..E3), float equality (RB-F1), pool/goroutine hygiene
// (RB-C1..C2), serve concurrency discipline (RB-C3..C4), and snapshot
// completeness (RB-S1). See DESIGN.md §8 for the rule table.
//
// Usage:
//
//	rainbar-lint [-dir <module root>] [-json] [-graph] [-annotations] [./...]
//
// The whole module is always analyzed; the optional ./... argument is
// accepted for CI-invocation symmetry with go vet. Modes:
//
//	(default)     print findings as text, one per line
//	-json         print findings as a JSON array (machine-readable gate)
//	-graph        dump the module call graph instead of linting
//	-annotations  audit every lint directive: location, rules, reason;
//	              exit nonzero when a directive names a stale rule ID
//
// Exit codes: 0 clean, 1 findings (or stale annotations), 2 load or usage
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rainbar/internal/analysis"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rainbar-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory inside the module to lint")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array")
	graph := fs.Bool("graph", false, "dump the module call graph and exit")
	annotations := fs.Bool("annotations", false, "audit lint directives and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for _, pat := range fs.Args() {
		if pat != "./..." {
			fmt.Fprintf(stderr, "rainbar-lint: unsupported pattern %q (the whole module is always analyzed; use ./...)\n", pat)
			return 2
		}
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "rainbar-lint:", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "rainbar-lint:", err)
		return 2
	}

	switch {
	case *graph:
		g := analysis.BuildGraph(pkgs[0].Fset, pkgs)
		g.Dump(stdout, root)
		return 0
	case *annotations:
		return auditAnnotations(pkgs, root, stdout)
	}

	findings := analysis.NewRunner().Run(pkgs)
	if *jsonOut {
		if findings == nil {
			findings = []analysis.Finding{} // encode a clean run as [], not null
		}
		for i := range findings {
			findings[i].Pos.Filename = relTo(root, findings[i].Pos.Filename)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "rainbar-lint:", err)
			return 2
		}
		if len(findings) > 0 {
			return 1
		}
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, shorten(root, f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(stdout, "rainbar-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// auditAnnotations lists every lint directive in the module — location,
// kind, rule IDs, reason — and fails when any names a rule ID the suite no
// longer registers (a stale suppression guards nothing).
func auditAnnotations(pkgs []*analysis.Package, root string, stdout io.Writer) int {
	anns := analysis.CollectAnnotations(pkgs, analysis.KnownRules())
	stale := 0
	for _, a := range anns {
		reason := a.Reason
		if reason == "" {
			reason = "(no reason: RB-X1)"
		}
		fmt.Fprintf(stdout, "%s:%d: //lint:%s %s — %s\n",
			relTo(root, a.Pos.Filename), a.Pos.Line, a.Kind,
			strings.Join(a.Rules, ","), reason)
		for _, r := range a.Stale {
			stale++
			fmt.Fprintf(stdout, "%s:%d: stale rule ID %s: not in the registered suite\n",
				relTo(root, a.Pos.Filename), a.Pos.Line, r)
		}
	}
	fmt.Fprintf(stdout, "rainbar-lint: %d annotation(s), %d stale rule ID(s)\n", len(anns), stale)
	if stale > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// relTo rewrites a filename relative to the module root so output is
// stable regardless of where the tool runs.
func relTo(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return filename
}

// shorten rewrites a finding's filename relative to the module root.
func shorten(root string, f analysis.Finding) string {
	f.Pos.Filename = relTo(root, f.Pos.Filename)
	return f.String()
}
