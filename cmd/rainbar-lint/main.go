// Command rainbar-lint runs the repository's contract analyzers
// (internal/analysis) over every package in the module: determinism
// (RB-D1..D3), observability injection (RB-O1), error discipline
// (RB-E1..E3), float equality (RB-F1), and pool/goroutine hygiene
// (RB-C1..C2). See DESIGN.md §8 for the rule table.
//
// Usage:
//
//	rainbar-lint [-dir <module root>] [./...]
//
// The whole module is always analyzed; the optional ./... argument is
// accepted for CI-invocation symmetry with go vet. Exit codes: 0 clean,
// 1 findings, 2 load or usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rainbar/internal/analysis"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rainbar-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory inside the module to lint")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for _, pat := range fs.Args() {
		if pat != "./..." {
			fmt.Fprintf(stderr, "rainbar-lint: unsupported pattern %q (the whole module is always analyzed; use ./...)\n", pat)
			return 2
		}
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "rainbar-lint:", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "rainbar-lint:", err)
		return 2
	}
	findings := analysis.NewRunner().Run(pkgs)
	for _, f := range findings {
		fmt.Fprintln(stdout, shorten(root, f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(stdout, "rainbar-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// shorten rewrites a finding's filename relative to the module root so
// output is stable regardless of where the tool runs.
func shorten(root string, f analysis.Finding) string {
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
		f.Pos.Filename = rel
	}
	return f.String()
}
