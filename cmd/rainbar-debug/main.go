// Command rainbar-debug renders a captured RainBar frame with the
// decoder's geometric fix overlaid — corner-tracker centers, the three
// locator columns, and every data-cell sampling point — so localization
// problems can be seen instead of inferred. It can either load a capture
// PNG or synthesize one through the channel simulator.
//
// Usage:
//
//	rainbar-debug -out annotated.png [-in capture.png]
//	              [-width 640] [-height 360] [-block 12]
//	              [-angle 0] [-distance 12] [-lens 0.015] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"rainbar/internal/channel"
	"rainbar/internal/colorspace"
	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/raster"
	"rainbar/internal/workload"
)

func main() {
	var (
		in       = flag.String("in", "", "capture PNG to annotate (empty = synthesize one)")
		out      = flag.String("out", "annotated.png", "output PNG")
		width    = flag.Int("width", 640, "screen width in pixels")
		height   = flag.Int("height", 360, "screen height in pixels")
		block    = flag.Int("block", 12, "block size in pixels")
		angle    = flag.Float64("angle", 0, "view angle for the synthesized capture")
		distance = flag.Float64("distance", 12, "distance (cm) for the synthesized capture")
		lens     = flag.Float64("lens", 0.015, "radial lens K1 for the synthesized capture")
		seed     = flag.Int64("seed", 1, "seed for the synthesized capture")
	)
	flag.Parse()
	if err := run(*in, *out, *width, *height, *block, *angle, *distance, *lens, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "rainbar-debug:", err)
		os.Exit(1)
	}
}

func run(in, out string, width, height, block int, angle, distance, lens float64, seed int64) error {
	geo, err := layout.NewGeometry(width, height, block)
	if err != nil {
		return err
	}
	codec, err := core.NewCodec(core.Config{Geometry: geo})
	if err != nil {
		return err
	}

	var capt *raster.Image
	if in != "" {
		capt, err = raster.ReadPNGFile(in)
		if err != nil {
			return err
		}
	} else {
		f, err := codec.EncodeFrame(workload.Random(codec.FrameCapacity(), seed), 0, false)
		if err != nil {
			return err
		}
		cfg := channel.DefaultConfig()
		cfg.ViewAngleDeg = angle
		cfg.DistanceCM = distance
		cfg.LensK1 = lens
		cfg.Seed = seed
		ch, err := channel.New(cfg)
		if err != nil {
			return err
		}
		capt, err = ch.Capture(f.Render())
		if err != nil {
			return err
		}
	}

	fix, err := codec.FixImage(capt)
	if err != nil {
		return fmt.Errorf("fix failed (the capture is undecodable): %w", err)
	}

	annotated := capt.Clone()
	magenta := colorspace.RGB{R: 255, G: 0, B: 255}
	yellow := colorspace.RGB{R: 255, G: 255, B: 0}
	cyan := colorspace.RGB{R: 0, G: 255, B: 255}

	// Data-cell sampling points.
	for _, cell := range geo.DataCells() {
		p := fix.CellCenter(cell.Row, cell.Col)
		annotated.Set(int(p.X+0.5), int(p.Y+0.5), magenta)
	}
	// Locator columns: crosses at every locator row.
	colL, colM, colR := geo.LocatorCols()
	for _, row := range geo.LocatorRows() {
		for _, col := range []int{colL, colM, colR} {
			p := fix.CellCenter(row, col)
			cross(annotated, int(p.X+0.5), int(p.Y+0.5), 3, yellow)
		}
	}
	// Corner trackers: boxes around the detected centers.
	for _, ct := range []layout.Cell{geo.CTLeftCenter(), geo.CTRightCenter()} {
		p := fix.CellCenter(ct.Row, ct.Col)
		box(annotated, int(p.X+0.5), int(p.Y+0.5), int(fix.BlockSize()*1.5), cyan)
	}

	if err := annotated.WritePNGFile(out); err != nil {
		return err
	}
	fmt.Printf("fix: BST %.2f px, T_v %.3f, locator misses %d -> %s\n",
		fix.BlockSize(), fix.TV(), fix.LocatorMisses(), out)
	return nil
}

// cross draws a small plus sign.
func cross(img *raster.Image, x, y, r int, c colorspace.RGB) {
	for d := -r; d <= r; d++ {
		img.Set(x+d, y, c)
		img.Set(x, y+d, c)
	}
}

// box draws an axis-aligned square outline.
func box(img *raster.Image, x, y, half int, c colorspace.RGB) {
	for d := -half; d <= half; d++ {
		img.Set(x+d, y-half, c)
		img.Set(x+d, y+half, c)
		img.Set(x-half, y+d, c)
		img.Set(x+half, y+d, c)
	}
}
