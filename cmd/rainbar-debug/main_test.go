package main

import (
	"os"
	"path/filepath"
	"testing"

	"rainbar/internal/channel"
	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/workload"
)

func TestRunSynthesizesAndAnnotates(t *testing.T) {
	out := filepath.Join(t.TempDir(), "annotated.png")
	if err := run("", out, 640, 360, 12, 10, 12, 0.015, 1); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("annotated PNG missing or empty: %v", err)
	}
}

func TestRunAnnotatesExistingCapture(t *testing.T) {
	// Build a raw (unannotated) capture with the library, save it, and
	// feed it to the tool as -in.
	dir := t.TempDir()
	capture := filepath.Join(dir, "capture.png")
	geo, err := layout.NewGeometry(640, 360, 12)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewCodec(core.Config{Geometry: geo})
	if err != nil {
		t.Fatal(err)
	}
	f, err := codec.EncodeFrame(workload.Random(codec.FrameCapacity(), 2), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	capt, err := channel.MustNew(channel.DefaultConfig()).Capture(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	if err := capt.WritePNGFile(capture); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "annotated.png")
	if err := run(capture, out, 640, 360, 12, 0, 12, 0, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUndecodable(t *testing.T) {
	// Geometry mismatch: a capture from a different grid cannot be fixed.
	out := filepath.Join(t.TempDir(), "x.png")
	if err := run("/nonexistent.png", out, 640, 360, 12, 0, 12, 0, 1); err == nil {
		t.Error("missing input accepted")
	}
}
