package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rainbar/internal/obs"
	"rainbar/internal/perf"
	"rainbar/internal/serve"
)

// TestLoadtestWritesPerfSnapshot runs the harness end to end through the
// CLI path and checks the BENCH-schema snapshot has its serve section
// populated.
func TestLoadtestWritesPerfSnapshot(t *testing.T) {
	dir := t.TempDir()
	perfPath := filepath.Join(dir, "bench.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	var report bytes.Buffer
	err := runLoadtest(loadtestOpts{
		fleet: 4, workers: 2, payload: 300, rounds: 6, seed: 7,
		recovery: "combine", faults: "drop=0.5;", fsync: "interval",
		perfJSON: perfPath, metrics: metricsPath,
	}, &report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(report.String(), "rainbar-serve loadtest\n") {
		t.Fatalf("unexpected report:\n%s", report.String())
	}

	f, err := os.Open(perfPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := perf.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != perf.Schema {
		t.Fatalf("schema = %q", snap.Schema)
	}
	if snap.Serve == nil {
		t.Fatal("serve section missing from perf snapshot")
	}
	if snap.Serve.Fleet != 4 || snap.Serve.Completed == 0 {
		t.Fatalf("degenerate serve stats: %+v", snap.Serve)
	}
	if snap.Serve.SessionsPerSec <= 0 || snap.Serve.P99RoundSeconds <= 0 {
		t.Fatalf("throughput/latency unpopulated: %+v", snap.Serve)
	}

	blob, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), obs.MServeSubmitted) {
		t.Fatalf("metrics exposition missing serve counters:\n%s", blob)
	}
}

// TestAdminAPI drives the HTTP surface against an in-process daemon.
func TestAdminAPI(t *testing.T) {
	rec := obs.NewMemory()
	srv := serve.NewServer(serve.Config{MaxSessions: 8, Workers: 2, Recorder: rec})
	defer srv.Stop()
	ts := httptest.NewServer(adminMux(srv, rec))
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	if resp, body := get("/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	} else {
		var h serve.Health
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("healthz body is not health JSON: %v\n%s", err, body)
		}
		if !h.Accepting || h.Journal != "off" {
			t.Fatalf("healthz of a fresh journal-less daemon: %+v", h)
		}
	}
	if resp, _ := get("/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz while accepting: %d", resp.StatusCode)
	}
	if resp, _ := get("/sessions/42"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/sessions", "application/json", strings.NewReader("{bad json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec body: %d", resp.StatusCode)
	}

	// A lossy multi-round session, so it is reliably live for a snapshot.
	spec := serve.SessionSpec{
		Payload: []byte(strings.Repeat("rainbar admin api ", 25)),
		ScreenW: 400, ScreenH: 192, Block: 8,
		Faults:   "drop=0.6,seed=11",
		Recovery: "combine",
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/sessions", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var admitted struct{ ID uint64 }
	if err := json.NewDecoder(resp.Body).Decode(&admitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if admitted.ID == 0 {
		t.Fatal("no session id returned")
	}

	// Snapshot while live, then restore as a second session. The transfer
	// may already be terminal on slow machines; only the happy path is
	// asserted when we do catch it live.
	if resp, snap := get(snapPath(admitted.ID)); resp.StatusCode == 200 {
		resp2, err := http.Post(ts.URL+"/restore", "application/octet-stream", bytes.NewReader(snap))
		if err != nil {
			t.Fatal(err)
		}
		var restored struct{ ID uint64 }
		if err := json.NewDecoder(resp2.Body).Decode(&restored); err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if resp2.StatusCode != 200 || restored.ID == admitted.ID || restored.ID == 0 {
			t.Fatalf("restore: %d id=%d", resp2.StatusCode, restored.ID)
		}
	}

	// Wait for every session to finish, then read results over HTTP.
	srv.Quiesce()
	resp, body := get("/sessions/" + jsonID(admitted.ID) + "/result")
	if resp.StatusCode != 200 {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, spec.Payload) {
		t.Fatal("payload not bit-exact over the admin API")
	}
	var infos []serve.SessionInfo
	if resp, body := get("/sessions"); resp.StatusCode != 200 || json.Unmarshal(body, &infos) != nil || len(infos) == 0 {
		t.Fatalf("session list: %d %s", resp.StatusCode, body)
	}
	if resp, body := get("/metrics"); resp.StatusCode != 200 || !strings.Contains(string(body), obs.MServeSubmitted) {
		t.Fatalf("metrics: %d\n%s", resp.StatusCode, body)
	}
	if resp, _ := get(snapPath(admitted.ID)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("snapshot of terminal session: %d", resp.StatusCode)
	}
}

// TestReadyzTracksAdmission: /readyz flips to 503 once the daemon stops
// accepting sessions, while /healthz keeps answering 200 (liveness).
func TestReadyzTracksAdmission(t *testing.T) {
	rec := obs.NewMemory()
	srv := serve.NewServer(serve.Config{MaxSessions: 2, Workers: 1, Recorder: rec})
	ts := httptest.NewServer(adminMux(srv, rec))
	defer ts.Close()

	srv.Drain() // closes admission
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Accepting {
		t.Fatalf("readyz after Drain: %d %+v, want 503 not-accepting", resp.StatusCode, h)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz must stay 200 on a draining daemon: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
}

// TestDaemonJournalRecover drives the -journal/-recover wiring the way
// runDaemon does: run a journaled daemon, kill it, recover into a new
// one, and check the journaled history still governs id issuance.
func TestDaemonJournalRecover(t *testing.T) {
	dir := t.TempDir()
	srv, rep, err := newDaemonServer(dir, "always", false, 8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatalf("plain journaled start produced a recover report: %+v", rep)
	}
	id, err := srv.Submit(serve.SessionSpec{Payload: []byte("daemon durability"), MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv.Quiesce()
	srv.Stop()
	srv.Journal().Close()

	srv2, rep2, err := newDaemonServer(dir, "interval", true, 8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv2.Stop()
		srv2.Journal().Close()
	}()
	if rep2 == nil {
		t.Fatal("recover produced no report")
	}
	if len(rep2.Sessions) != 0 || rep2.Skipped != 0 {
		t.Fatalf("terminal session resurrected or skipped: %+v", rep2)
	}
	if h := srv2.Health(); h.Journal != "ok" {
		t.Fatalf("recovered daemon journal health %q, want ok", h.Journal)
	}
	// The retired id must not be reissued after the crash.
	id2, err := srv2.Submit(serve.SessionSpec{Payload: []byte("fresh"), MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if id2 <= id {
		t.Fatalf("post-recovery id %d aliases journaled id %d", id2, id)
	}
	srv2.Quiesce()
}

// TestDaemonRecoverRequiresJournal: -recover without -journal is a
// usage error, not a silent fresh start.
func TestDaemonRecoverRequiresJournal(t *testing.T) {
	if _, _, err := newDaemonServer("", "interval", true, 8, 2, nil); err == nil {
		t.Fatal("recover without a journal dir was accepted")
	}
	if _, _, err := newDaemonServer(t.TempDir(), "sometimes", false, 8, 2, nil); err == nil {
		t.Fatal("bad fsync policy was accepted")
	}
}

// TestLoadtestFsyncSweep: the sweep writes one serve_fsync entry per
// policy, each a completed journaled run.
func TestLoadtestFsyncSweep(t *testing.T) {
	perfPath := filepath.Join(t.TempDir(), "sweep.json")
	var report bytes.Buffer
	err := runLoadtest(loadtestOpts{
		fleet: 2, workers: 2, payload: 300, rounds: 6, seed: 7,
		recovery: "combine", fsync: "interval", sweep: true,
		perfJSON: perfPath,
	}, &report)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(perfPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := perf.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.ServeFsync) != 3 {
		t.Fatalf("serve_fsync has %d entries, want always/interval/off: %+v", len(snap.ServeFsync), snap.ServeFsync)
	}
	for _, policy := range []string{"always", "interval", "off"} {
		s := snap.ServeFsync[policy]
		if s == nil {
			t.Fatalf("serve_fsync missing %q", policy)
		}
		if s.Completed == 0 || s.JournalRecords < 2*s.Fleet || s.Fsync != policy {
			t.Fatalf("degenerate %q sweep entry: %+v", policy, s)
		}
	}
	// The main (journal-less) run must not carry durability fields.
	if snap.Serve == nil || snap.Serve.Fsync != "" || snap.Serve.JournalRecords != 0 {
		t.Fatalf("journal-less main run grew durability fields: %+v", snap.Serve)
	}
}

func snapPath(id uint64) string { return "/sessions/" + jsonID(id) + "/snapshot" }

func jsonID(id uint64) string {
	b, _ := json.Marshal(id)
	return string(b)
}
