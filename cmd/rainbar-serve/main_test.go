package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rainbar/internal/obs"
	"rainbar/internal/perf"
	"rainbar/internal/serve"
)

// TestLoadtestWritesPerfSnapshot runs the harness end to end through the
// CLI path and checks the BENCH-schema snapshot has its serve section
// populated.
func TestLoadtestWritesPerfSnapshot(t *testing.T) {
	dir := t.TempDir()
	perfPath := filepath.Join(dir, "bench.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	var report bytes.Buffer
	err := runLoadtest(4, 2, 300, 6, 7, "combine", "drop=0.5;", perfPath, metricsPath, &report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(report.String(), "rainbar-serve loadtest\n") {
		t.Fatalf("unexpected report:\n%s", report.String())
	}

	f, err := os.Open(perfPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := perf.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != perf.Schema {
		t.Fatalf("schema = %q", snap.Schema)
	}
	if snap.Serve == nil {
		t.Fatal("serve section missing from perf snapshot")
	}
	if snap.Serve.Fleet != 4 || snap.Serve.Completed == 0 {
		t.Fatalf("degenerate serve stats: %+v", snap.Serve)
	}
	if snap.Serve.SessionsPerSec <= 0 || snap.Serve.P99RoundSeconds <= 0 {
		t.Fatalf("throughput/latency unpopulated: %+v", snap.Serve)
	}

	blob, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), obs.MServeSubmitted) {
		t.Fatalf("metrics exposition missing serve counters:\n%s", blob)
	}
}

// TestAdminAPI drives the HTTP surface against an in-process daemon.
func TestAdminAPI(t *testing.T) {
	rec := obs.NewMemory()
	srv := serve.NewServer(serve.Config{MaxSessions: 8, Workers: 2, Recorder: rec})
	defer srv.Stop()
	ts := httptest.NewServer(adminMux(srv, rec))
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	if resp, body := get("/healthz"); resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	if resp, _ := get("/sessions/42"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/sessions", "application/json", strings.NewReader("{bad json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec body: %d", resp.StatusCode)
	}

	// A lossy multi-round session, so it is reliably live for a snapshot.
	spec := serve.SessionSpec{
		Payload: []byte(strings.Repeat("rainbar admin api ", 25)),
		ScreenW: 400, ScreenH: 192, Block: 8,
		Faults:   "drop=0.6,seed=11",
		Recovery: "combine",
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/sessions", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var admitted struct{ ID uint64 }
	if err := json.NewDecoder(resp.Body).Decode(&admitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if admitted.ID == 0 {
		t.Fatal("no session id returned")
	}

	// Snapshot while live, then restore as a second session. The transfer
	// may already be terminal on slow machines; only the happy path is
	// asserted when we do catch it live.
	if resp, snap := get(snapPath(admitted.ID)); resp.StatusCode == 200 {
		resp2, err := http.Post(ts.URL+"/restore", "application/octet-stream", bytes.NewReader(snap))
		if err != nil {
			t.Fatal(err)
		}
		var restored struct{ ID uint64 }
		if err := json.NewDecoder(resp2.Body).Decode(&restored); err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if resp2.StatusCode != 200 || restored.ID == admitted.ID || restored.ID == 0 {
			t.Fatalf("restore: %d id=%d", resp2.StatusCode, restored.ID)
		}
	}

	// Wait for every session to finish, then read results over HTTP.
	deadline := time.Now().Add(30 * time.Second)
	for srv.Active() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("sessions did not finish in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, body := get("/sessions/" + jsonID(admitted.ID) + "/result")
	if resp.StatusCode != 200 {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, spec.Payload) {
		t.Fatal("payload not bit-exact over the admin API")
	}
	var infos []serve.SessionInfo
	if resp, body := get("/sessions"); resp.StatusCode != 200 || json.Unmarshal(body, &infos) != nil || len(infos) == 0 {
		t.Fatalf("session list: %d %s", resp.StatusCode, body)
	}
	if resp, body := get("/metrics"); resp.StatusCode != 200 || !strings.Contains(string(body), obs.MServeSubmitted) {
		t.Fatalf("metrics: %d\n%s", resp.StatusCode, body)
	}
	if resp, _ := get(snapPath(admitted.ID)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("snapshot of terminal session: %d", resp.StatusCode)
	}
}

func snapPath(id uint64) string { return "/sessions/" + jsonID(id) + "/snapshot" }

func jsonID(id uint64) string {
	b, _ := json.Marshal(id)
	return string(b)
}
