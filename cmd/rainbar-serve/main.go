// Command rainbar-serve is the multi-session transfer daemon: it
// multiplexes many concurrent simulated screen-camera transfers over a
// bounded worker pool, with admission control, snapshot/restore of
// live sessions, and an HTTP admin API.
//
// Usage:
//
//	rainbar-serve -listen ADDR [-max-sessions 1024] [-workers 4]
//	rainbar-serve -loadtest [-sessions 32] [-workers 4] [-payload 400]
//	              [-seed 1] [-recovery combine] [-faults "spec;spec"]
//	              [-rounds 8] [-perf-json FILE] [-metrics FILE]
//
// Daemon mode (-listen) serves:
//
//	POST /sessions              admit a session (JSON SessionSpec body)
//	GET  /sessions              list all sessions
//	GET  /sessions/{id}         one session's state
//	POST /sessions/{id}/cancel  cancel a live session
//	GET  /sessions/{id}/snapshot  serialize a live session (binary)
//	GET  /sessions/{id}/result  a terminal session's delivered payload
//	POST /restore               re-admit a snapshotted session (binary body)
//	GET  /metrics               Prometheus exposition
//	GET  /healthz               liveness
//
// Loadtest mode (-loadtest) runs a synthetic fleet to completion and
// prints the throughput/latency report; -perf-json additionally writes
// a perf snapshot (BENCH_<n>.json schema) with the serve section
// populated.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"rainbar/internal/obs"
	"rainbar/internal/perf"
	"rainbar/internal/serve"
	"rainbar/internal/serve/loadgen"
)

func main() {
	var (
		listen      = flag.String("listen", "", "serve the HTTP admin API on this address (daemon mode)")
		maxSessions = flag.Int("max-sessions", 1024, "admission bound on concurrently live sessions")
		workers     = flag.Int("workers", 4, "stepping-pool size")
		loadtest    = flag.Bool("loadtest", false, "run a synthetic fleet to completion and report throughput")
		sessions    = flag.Int("sessions", 32, "loadtest fleet size")
		payload     = flag.Int("payload", 400, "loadtest per-session payload bytes")
		seed        = flag.Int64("seed", 1, "loadtest base seed")
		recovery    = flag.String("recovery", "combine", "loadtest decode-recovery mode: off, erasures, ladder or combine")
		faultsFlag  = flag.String("faults", "", "loadtest fault specs rotated across the fleet, ';'-separated (e.g. 'drop=0.3;;splice=0.5')")
		rounds      = flag.Int("rounds", 8, "loadtest per-session round bound")
		perfJSON    = flag.String("perf-json", "", "write a perf snapshot with the loadtest's serve section to this file ('-' = stdout)")
		metrics     = flag.String("metrics", "", "write serve metrics after the run ('-' = stdout, *.json = JSON exposition)")
	)
	flag.Parse()
	var err error
	switch {
	case *loadtest:
		err = runLoadtest(*sessions, *workers, *payload, *rounds, *seed, *recovery, *faultsFlag, *perfJSON, *metrics, os.Stdout)
	case *listen != "":
		err = runDaemon(*listen, *maxSessions, *workers)
	default:
		err = fmt.Errorf("pass -listen ADDR (daemon) or -loadtest (harness); see -h")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainbar-serve:", err)
		os.Exit(1)
	}
}

// runLoadtest drives the loadgen harness and writes the report, the
// optional perf snapshot, and the optional metrics exposition.
func runLoadtest(fleet, workers, payload, rounds int, seed int64, recovery, faultsFlag, perfJSON, metrics string, out io.Writer) error {
	var specs []string
	if faultsFlag != "" {
		specs = strings.Split(faultsFlag, ";")
	}
	rec := obs.NewMemory()
	rep, err := loadgen.Run(loadgen.Config{
		Fleet:        fleet,
		Workers:      workers,
		PayloadBytes: payload,
		Seed:         seed,
		Recovery:     recovery,
		FaultSpecs:   specs,
		MaxRounds:    rounds,
		Clock:        obs.NewWallClock(),
		Recorder:     rec,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Table())
	if perfJSON != "" {
		s := perf.Describe()
		s.Serve = &perf.ServeStats{
			Fleet:           rep.Fleet,
			Workers:         rep.Workers,
			Completed:       rep.Completed,
			Failed:          rep.Failed,
			Rounds:          rep.Rounds,
			SessionsPerSec:  rep.SessionsPerSec,
			P50RoundSeconds: rep.RoundP50.Seconds(),
			P99RoundSeconds: rep.RoundP99.Seconds(),
			BytesPerSession: rep.BytesPerSession,
		}
		if err := writeTo(perfJSON, s.WriteJSON); err != nil {
			return err
		}
	}
	if metrics != "" {
		write := rec.WritePrometheus
		if strings.HasSuffix(metrics, ".json") {
			write = rec.WriteJSON
		}
		if err := writeTo(metrics, write); err != nil {
			return err
		}
	}
	return nil
}

// writeTo runs write against path, with "-" meaning stdout.
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runDaemon serves the admin API until the listener fails.
func runDaemon(addr string, maxSessions, workers int) error {
	rec := obs.NewMemory()
	srv := serve.NewServer(serve.Config{MaxSessions: maxSessions, Workers: workers, Recorder: rec})
	defer srv.Stop()
	fmt.Printf("rainbar-serve: listening on %s (max %d sessions, %d workers)\n", addr, maxSessions, workers)
	return http.ListenAndServe(addr, adminMux(srv, rec))
}

// adminMux routes the admin API onto a server. Split from runDaemon so
// tests drive it through httptest without a real listener.
func adminMux(srv *serve.Server, rec *obs.Memory) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if err := rec.WritePrometheus(w); err != nil {
			httpErr(w, err)
		}
	})
	mux.HandleFunc("POST /sessions", func(w http.ResponseWriter, r *http.Request) {
		var spec serve.SessionSpec
		if err := json.NewDecoder(io.LimitReader(r.Body, maxBody)).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := srv.Submit(spec)
		if err != nil {
			httpErr(w, err)
			return
		}
		writeJSON(w, map[string]uint64{"id": id})
	})
	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, srv.Sessions())
	})
	mux.HandleFunc("GET /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		withID(w, r, func(id uint64) {
			info, err := srv.Info(id)
			if err != nil {
				httpErr(w, err)
				return
			}
			writeJSON(w, info)
		})
	})
	mux.HandleFunc("POST /sessions/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		withID(w, r, func(id uint64) {
			if err := srv.Cancel(id); err != nil {
				httpErr(w, err)
				return
			}
			writeJSON(w, map[string]bool{"canceled": true})
		})
	})
	mux.HandleFunc("GET /sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		withID(w, r, func(id uint64) {
			snap, err := srv.Snapshot(id)
			if err != nil {
				httpErr(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(snap)
		})
	})
	mux.HandleFunc("GET /sessions/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		withID(w, r, func(id uint64) {
			payload, _, err := srv.Result(id)
			if err != nil {
				httpErr(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(payload)
		})
	})
	mux.HandleFunc("POST /restore", func(w http.ResponseWriter, r *http.Request) {
		snap, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := srv.Restore(snap)
		if err != nil {
			httpErr(w, err)
			return
		}
		writeJSON(w, map[string]uint64{"id": id})
	})
	return mux
}

// maxBody bounds admin request bodies (payloads are capped far lower by
// the serve spec admission checks; this only stops runaway uploads).
const maxBody = 64 << 20

// httpErr maps serve sentinels onto HTTP statuses.
func httpErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, serve.ErrUnknownSession):
		status = http.StatusNotFound
	case errors.Is(err, serve.ErrOverloaded):
		status = http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrStopped):
		status = http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrSessionTerminal), errors.Is(err, serve.ErrSessionActive), errors.Is(err, serve.ErrCanceled):
		status = http.StatusConflict
	case errors.Is(err, serve.ErrBadSnapshot), errors.Is(err, serve.ErrSnapshotVersion), errors.Is(err, serve.ErrSnapshotChecksum):
		status = http.StatusBadRequest
	}
	http.Error(w, err.Error(), status)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// withID parses the {id} path value and hands it to fn.
func withID(w http.ResponseWriter, r *http.Request, fn func(uint64)) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	fn(id)
}
