// Command rainbar-serve is the multi-session transfer daemon: it
// multiplexes many concurrent simulated screen-camera transfers over a
// bounded worker pool, with admission control, snapshot/restore of
// live sessions, and an HTTP admin API.
//
// Usage:
//
//	rainbar-serve -listen ADDR [-max-sessions 1024] [-workers 4]
//	              [-journal DIR] [-fsync always|interval|off] [-recover]
//	rainbar-serve -loadtest [-sessions 32] [-workers 4] [-payload 400]
//	              [-seed 1] [-recovery combine] [-faults "spec;spec"]
//	              [-rounds 8] [-journal DIR] [-fsync POLICY]
//	              [-fsync-sweep] [-perf-json FILE] [-metrics FILE]
//
// Daemon mode (-listen) serves:
//
//	POST /sessions              admit a session (JSON SessionSpec body)
//	GET  /sessions              list all sessions
//	GET  /sessions/{id}         one session's state
//	POST /sessions/{id}/cancel  cancel a live session
//	GET  /sessions/{id}/snapshot  serialize a live session (binary)
//	GET  /sessions/{id}/result  a terminal session's delivered payload
//	POST /restore               re-admit a snapshotted session (binary body)
//	GET  /metrics               Prometheus exposition
//	GET  /healthz               liveness (JSON serve.Health; always 200)
//	GET  /readyz                readiness (same body; 503 unless Ready)
//
// With -journal the daemon appends every admission, checkpoint and
// retirement to DIR/serve.journal under the chosen -fsync policy;
// -recover first rebuilds the pre-crash fleet from that journal
// (checkpointed sessions resume mid-transfer, the rest restart) before
// accepting traffic.
//
// Loadtest mode (-loadtest) runs a synthetic fleet to completion and
// prints the throughput/latency report; -perf-json additionally writes
// a perf snapshot (BENCH_<n>.json schema) with the serve section
// populated. -fsync-sweep reruns the same fleet journaled under each
// fsync policy and records the serve_fsync durability-cost section.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"rainbar/internal/obs"
	"rainbar/internal/perf"
	"rainbar/internal/serve"
	"rainbar/internal/serve/journal"
	"rainbar/internal/serve/loadgen"
)

func main() {
	var (
		listen      = flag.String("listen", "", "serve the HTTP admin API on this address (daemon mode)")
		maxSessions = flag.Int("max-sessions", 1024, "admission bound on concurrently live sessions")
		workers     = flag.Int("workers", 4, "stepping-pool size")
		journalDir  = flag.String("journal", "", "journal session durability records to this directory")
		fsyncFlag   = flag.String("fsync", "interval", "journal fsync policy: always, interval or off")
		recoverFlag = flag.Bool("recover", false, "rebuild the pre-crash fleet from -journal before serving")
		loadtest    = flag.Bool("loadtest", false, "run a synthetic fleet to completion and report throughput")
		sessions    = flag.Int("sessions", 32, "loadtest fleet size")
		payload     = flag.Int("payload", 400, "loadtest per-session payload bytes")
		seed        = flag.Int64("seed", 1, "loadtest base seed")
		recovery    = flag.String("recovery", "combine", "loadtest decode-recovery mode: off, erasures, ladder or combine")
		faultsFlag  = flag.String("faults", "", "loadtest fault specs rotated across the fleet, ';'-separated (e.g. 'drop=0.3;;splice=0.5')")
		rounds      = flag.Int("rounds", 8, "loadtest per-session round bound")
		fsyncSweep  = flag.Bool("fsync-sweep", false, "loadtest: rerun the fleet journaled under every fsync policy (serve_fsync perf section)")
		perfJSON    = flag.String("perf-json", "", "write a perf snapshot with the loadtest's serve section to this file ('-' = stdout)")
		metrics     = flag.String("metrics", "", "write serve metrics after the run ('-' = stdout, *.json = JSON exposition)")
	)
	flag.Parse()
	var err error
	switch {
	case *loadtest:
		err = runLoadtest(loadtestOpts{
			fleet: *sessions, workers: *workers, payload: *payload, rounds: *rounds,
			seed: *seed, recovery: *recovery, faults: *faultsFlag,
			journalDir: *journalDir, fsync: *fsyncFlag, sweep: *fsyncSweep,
			perfJSON: *perfJSON, metrics: *metrics,
		}, os.Stdout)
	case *listen != "":
		err = runDaemon(*listen, *maxSessions, *workers, *journalDir, *fsyncFlag, *recoverFlag)
	default:
		err = fmt.Errorf("pass -listen ADDR (daemon) or -loadtest (harness); see -h")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainbar-serve:", err)
		os.Exit(1)
	}
}

// loadtestOpts carries the loadtest flag set.
type loadtestOpts struct {
	fleet, workers, payload, rounds int
	seed                            int64
	recovery, faults                string
	journalDir, fsync               string
	sweep                           bool
	perfJSON, metrics               string
}

// runLoadtest drives the loadgen harness and writes the report, the
// optional perf snapshot (with the fsync durability sweep when asked
// for), and the optional metrics exposition.
func runLoadtest(o loadtestOpts, out io.Writer) error {
	var specs []string
	if o.faults != "" {
		specs = strings.Split(o.faults, ";")
	}
	fs, err := journal.ParseFsync(o.fsync)
	if err != nil {
		return err
	}
	rec := obs.NewMemory()
	base := loadgen.Config{
		Fleet:        o.fleet,
		Workers:      o.workers,
		PayloadBytes: o.payload,
		Seed:         o.seed,
		Recovery:     o.recovery,
		FaultSpecs:   specs,
		MaxRounds:    o.rounds,
		Clock:        obs.NewWallClock(),
		Recorder:     rec,
		JournalDir:   o.journalDir,
		Fsync:        fs,
	}
	rep, err := loadgen.Run(base)
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Table())
	if o.perfJSON != "" {
		s := perf.Describe()
		s.Serve = serveStats(rep, base)
		if o.sweep {
			s.ServeFsync = make(map[string]*perf.ServeStats)
			for _, policy := range []journal.Fsync{journal.FsyncAlways, journal.FsyncInterval, journal.FsyncOff} {
				dir, err := os.MkdirTemp("", "rainbar-fsync-sweep-")
				if err != nil {
					return err
				}
				cfg := base
				cfg.Recorder = nil // keep the main run's exposition clean
				cfg.JournalDir = dir
				cfg.Fsync = policy
				swept, err := loadgen.Run(cfg)
				os.RemoveAll(dir)
				if err != nil {
					return fmt.Errorf("fsync sweep %s: %w", policy, err)
				}
				s.ServeFsync[policy.String()] = serveStats(swept, cfg)
			}
		}
		if err := writeTo(o.perfJSON, s.WriteJSON); err != nil {
			return err
		}
	}
	if o.metrics != "" {
		write := rec.WritePrometheus
		if strings.HasSuffix(o.metrics, ".json") {
			write = rec.WriteJSON
		}
		if err := writeTo(o.metrics, write); err != nil {
			return err
		}
	}
	return nil
}

// serveStats maps one loadgen report onto the perf-snapshot schema; the
// durability fields are set on journaled runs only.
func serveStats(rep *loadgen.Report, cfg loadgen.Config) *perf.ServeStats {
	s := &perf.ServeStats{
		Fleet:           rep.Fleet,
		Workers:         rep.Workers,
		Completed:       rep.Completed,
		Failed:          rep.Failed,
		Rounds:          rep.Rounds,
		SessionsPerSec:  rep.SessionsPerSec,
		P50RoundSeconds: rep.RoundP50.Seconds(),
		P99RoundSeconds: rep.RoundP99.Seconds(),
		BytesPerSession: rep.BytesPerSession,
	}
	if cfg.JournalDir != "" {
		s.Fsync = cfg.Fsync.String()
		s.JournalRecords = rep.JournalRecords
	}
	return s
}

// writeTo runs write against path, with "-" meaning stdout.
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// newDaemonServer builds the daemon's server — plain, journaled, or
// recovered from a journal — plus the recover report when one ran.
// Split from runDaemon so tests exercise the durability wiring without
// a real listener. The caller owns shutdown: Stop the server, then
// Close its Journal (when non-nil).
func newDaemonServer(journalDir, fsync string, doRecover bool, maxSessions, workers int, rec obs.Recorder) (*serve.Server, *serve.RecoverReport, error) {
	cfg := serve.Config{MaxSessions: maxSessions, Workers: workers, Recorder: rec}
	if journalDir == "" {
		if doRecover {
			return nil, nil, errors.New("-recover requires -journal DIR")
		}
		return serve.NewServer(cfg), nil, nil
	}
	fs, err := journal.ParseFsync(fsync)
	if err != nil {
		return nil, nil, err
	}
	opts := journal.Options{Fsync: fs, Recorder: rec}
	if doRecover {
		return serve.Recover(journalDir, opts, cfg)
	}
	j, err := journal.Open(journalDir, opts)
	if err != nil {
		return nil, nil, err
	}
	cfg.Journal = j
	return serve.NewServer(cfg), nil, nil
}

// runDaemon serves the admin API until the listener fails.
func runDaemon(addr string, maxSessions, workers int, journalDir, fsync string, doRecover bool) error {
	rec := obs.NewMemory()
	srv, rep, err := newDaemonServer(journalDir, fsync, doRecover, maxSessions, workers, rec)
	if err != nil {
		return err
	}
	defer func() {
		srv.Stop()
		if j := srv.Journal(); j != nil {
			j.Close()
		}
	}()
	if rep != nil {
		fmt.Printf("rainbar-serve: recovered %d sessions (%d checkpointed, %d resubmitted, %d skipped)\n",
			len(rep.Sessions), rep.Checkpointed, rep.Resubmitted, rep.Skipped)
	}
	if journalDir != "" {
		fmt.Printf("rainbar-serve: journaling to %s (fsync=%s)\n", journalDir, fsync)
	}
	fmt.Printf("rainbar-serve: listening on %s (max %d sessions, %d workers)\n", addr, maxSessions, workers)
	return http.ListenAndServe(addr, adminMux(srv, rec))
}

// adminMux routes the admin API onto a server. Split from runDaemon so
// tests drive it through httptest without a real listener.
func adminMux(srv *serve.Server, rec *obs.Memory) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: answering at all means live; the body carries the
		// operator detail (live sessions, admission, journal health).
		writeJSON(w, srv.Health())
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness: load balancers route on the status code, so a
		// draining daemon or one with a poisoned journal turns 503
		// while /healthz stays 200.
		h := srv.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if err := rec.WritePrometheus(w); err != nil {
			httpErr(w, err)
		}
	})
	mux.HandleFunc("POST /sessions", func(w http.ResponseWriter, r *http.Request) {
		var spec serve.SessionSpec
		if err := json.NewDecoder(io.LimitReader(r.Body, maxBody)).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := srv.Submit(spec)
		if err != nil {
			httpErr(w, err)
			return
		}
		writeJSON(w, map[string]uint64{"id": id})
	})
	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, srv.Sessions())
	})
	mux.HandleFunc("GET /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		withID(w, r, func(id uint64) {
			info, err := srv.Info(id)
			if err != nil {
				httpErr(w, err)
				return
			}
			writeJSON(w, info)
		})
	})
	mux.HandleFunc("POST /sessions/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		withID(w, r, func(id uint64) {
			if err := srv.Cancel(id); err != nil {
				httpErr(w, err)
				return
			}
			writeJSON(w, map[string]bool{"canceled": true})
		})
	})
	mux.HandleFunc("GET /sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		withID(w, r, func(id uint64) {
			snap, err := srv.Snapshot(id)
			if err != nil {
				httpErr(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(snap)
		})
	})
	mux.HandleFunc("GET /sessions/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		withID(w, r, func(id uint64) {
			payload, _, err := srv.Result(id)
			if err != nil {
				httpErr(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(payload)
		})
	})
	mux.HandleFunc("POST /restore", func(w http.ResponseWriter, r *http.Request) {
		snap, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := srv.Restore(snap)
		if err != nil {
			httpErr(w, err)
			return
		}
		writeJSON(w, map[string]uint64{"id": id})
	})
	return mux
}

// maxBody bounds admin request bodies (payloads are capped far lower by
// the serve spec admission checks; this only stops runaway uploads).
const maxBody = 64 << 20

// httpErr maps serve sentinels onto HTTP statuses.
func httpErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, serve.ErrUnknownSession):
		status = http.StatusNotFound
	case errors.Is(err, serve.ErrOverloaded):
		status = http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrStopped):
		status = http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrSessionTerminal), errors.Is(err, serve.ErrSessionActive), errors.Is(err, serve.ErrCanceled):
		status = http.StatusConflict
	case errors.Is(err, serve.ErrBadSnapshot), errors.Is(err, serve.ErrSnapshotVersion), errors.Is(err, serve.ErrSnapshotChecksum):
		status = http.StatusBadRequest
	}
	http.Error(w, err.Error(), status)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// withID parses the {id} path value and hands it to fn.
func withID(w http.ResponseWriter, r *http.Request, fn func(uint64)) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	fn(id)
}
