package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/transport"
)

// encodeDir writes a small file's frames to a directory (the sender side,
// reimplemented here to keep the test free of the sibling main package).
func encodeDir(t *testing.T, data []byte, dir string) {
	t.Helper()
	geo, err := layout.NewGeometry(640, 360, 12)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewCodec(core.Config{Geometry: geo})
	if err != nil {
		t.Fatal(err)
	}
	fc := transport.FileCodec{Codec: codec}
	n := fc.NumChunks(len(data))
	for ci := 0; ci < n; ci++ {
		payload, err := fc.Chunk(data, ci)
		if err != nil {
			t.Fatal(err)
		}
		f, err := codec.EncodeFrame(payload, uint16(ci), ci == n-1)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "frame-"+string(rune('a'+ci))+".png")
		if err := f.Render().WritePNGFile(path); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunDecodesDirectory(t *testing.T) {
	dir := t.TempDir()
	frames := filepath.Join(dir, "frames")
	if err := os.MkdirAll(frames, 0o755); err != nil {
		t.Fatal(err)
	}
	want := []byte("round trip through the recv command's run function")
	encodeDir(t, want, frames)

	out := filepath.Join(dir, "out.bin")
	if err := run(frames, out, 640, 360, 12); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recv round trip mismatch")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", 640, 360, 12); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run(t.TempDir(), filepath.Join(t.TempDir(), "x"), 640, 360, 12); err == nil {
		t.Error("empty directory accepted")
	}
}
