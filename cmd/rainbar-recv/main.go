// Command rainbar-recv decodes a directory of captured RainBar frame PNGs
// (from rainbar-send, optionally degraded by a camera pipeline) back into
// the original file. Captures may be clean or rolling-shutter mixtures;
// the tracking-bar receiver reassembles either.
//
// Usage:
//
//	rainbar-recv -in DIR -out FILE [-width 1920] [-height 1080]
//	             [-block 13]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/raster"
	"rainbar/internal/transport"
)

func main() {
	var (
		in     = flag.String("in", "", "directory of captured frame PNGs")
		out    = flag.String("out", "", "output file")
		width  = flag.Int("width", 1920, "screen width in pixels")
		height = flag.Int("height", 1080, "screen height in pixels")
		block  = flag.Int("block", 13, "block size in pixels")
	)
	flag.Parse()
	if err := run(*in, *out, *width, *height, *block); err != nil {
		fmt.Fprintln(os.Stderr, "rainbar-recv:", err)
		os.Exit(1)
	}
}

func run(in, out string, width, height, block int) error {
	if in == "" || out == "" {
		return fmt.Errorf("both -in and -out are required")
	}
	paths, err := filepath.Glob(filepath.Join(in, "*.png"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no PNGs in %s", in)
	}
	sort.Strings(paths)

	geo, err := layout.NewGeometry(width, height, block)
	if err != nil {
		return err
	}
	codec, err := core.NewCodec(core.Config{Geometry: geo})
	if err != nil {
		return err
	}
	rx := core.NewReceiver(codec)

	skipped := 0
	for _, p := range paths {
		img, err := raster.ReadPNGFile(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		if err := rx.Ingest(img); err != nil {
			skipped++
			fmt.Fprintf(os.Stderr, "rainbar-recv: skipping %s: %v\n", filepath.Base(p), err)
		}
	}
	rx.Flush()

	collector := transport.NewCollector()
	failed := 0
	for _, f := range rx.Frames() {
		if f.Err != nil {
			failed++
			continue
		}
		if err := collector.Add(f.Payload); err != nil {
			fmt.Fprintf(os.Stderr, "rainbar-recv: frame %d: %v\n", f.Header.Seq, err)
		}
	}
	data, app, err := collector.File()
	if err != nil {
		return fmt.Errorf("reassembly failed (%d captures skipped, %d frames uncorrectable): %w", skipped, failed, err)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("decoded %d bytes (%s) from %d captures -> %s\n", len(data), app, len(paths), out)
	return nil
}
