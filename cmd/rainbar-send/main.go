// Command rainbar-send encodes a file into a stream of RainBar color
// barcode frames, written as numbered PNGs — exactly what the sender's
// screen would display. Pair with rainbar-recv to decode, or rainbar-xfer
// for an end-to-end run through the simulated optical channel.
//
// Usage:
//
//	rainbar-send -in FILE -out DIR [-width 1920] [-height 1080]
//	             [-block 13] [-rate 10]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/transport"
)

func main() {
	var (
		in     = flag.String("in", "", "input file to transmit")
		out    = flag.String("out", "", "output directory for frame PNGs")
		width  = flag.Int("width", 1920, "screen width in pixels")
		height = flag.Int("height", 1080, "screen height in pixels")
		block  = flag.Int("block", 13, "block size in pixels")
		rate   = flag.Int("rate", 10, "display rate (fps) recorded in headers")
	)
	flag.Parse()
	if err := run(*in, *out, *width, *height, *block, *rate); err != nil {
		fmt.Fprintln(os.Stderr, "rainbar-send:", err)
		os.Exit(1)
	}
}

func run(in, out string, width, height, block, rate int) error {
	if in == "" || out == "" {
		return fmt.Errorf("both -in and -out are required")
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("%s is empty", in)
	}
	geo, err := layout.NewGeometry(width, height, block)
	if err != nil {
		return err
	}
	codec, err := core.NewCodec(core.Config{
		Geometry:    geo,
		DisplayRate: uint8(rate),
		AppType:     uint8(transport.Classify(data)),
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	fc := transport.FileCodec{Codec: codec}
	n := fc.NumChunks(len(data))
	for ci := 0; ci < n; ci++ {
		payload, err := fc.Chunk(data, ci)
		if err != nil {
			return err
		}
		f, err := codec.EncodeFrame(payload, uint16(ci), ci == n-1)
		if err != nil {
			return err
		}
		path := filepath.Join(out, fmt.Sprintf("frame-%05d.png", ci))
		if err := f.Render().WritePNGFile(path); err != nil {
			return err
		}
	}
	fmt.Printf("encoded %d bytes (%s) into %d frames of %d bytes payload each -> %s\n",
		len(data), transport.Classify(data), n, fc.ChunkSize(), out)
	return nil
}
