package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunEncodesFrames(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.txt")
	out := filepath.Join(dir, "frames")
	if err := os.WriteFile(in, []byte("hello rainbar send command test payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, 640, 360, 12, 10); err != nil {
		t.Fatal(err)
	}
	pngs, err := filepath.Glob(filepath.Join(out, "frame-*.png"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pngs) == 0 {
		t.Fatal("no frames written")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", 640, 360, 12, 10); err == nil {
		t.Error("missing flags accepted")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "empty")
	if err := os.WriteFile(in, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, filepath.Join(dir, "out"), 640, 360, 12, 10); err == nil {
		t.Error("empty input accepted")
	}
	if err := run(filepath.Join(dir, "missing"), filepath.Join(dir, "out"), 640, 360, 12, 10); err == nil {
		t.Error("missing input accepted")
	}
}
