package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTransfersFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.txt")
	out := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(in, []byte("end to end transfer via the xfer command"), 0o644); err != nil {
		t.Fatal(err)
	}
	metrics := filepath.Join(dir, "metrics.prom")
	if err := run(in, out, 640, 360, 12, 10, 12, 0, 1.0, "indoor", "combine", 1, metrics); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "end to end transfer via the xfer command" {
		t.Fatal("transferred copy differs")
	}
	prom, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rainbar_transport_transfers_total 1",
		"rainbar_core_captures_total",
		"rainbar_camera_captures_total",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics file missing %q", want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", 640, 360, 12, 10, 12, 0, 1.0, "indoor", "combine", 1, ""); err == nil {
		t.Error("missing -in accepted")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(in, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "", 640, 360, 12, 10, 12, 0, 1.0, "underwater", "combine", 1, ""); err == nil {
		t.Error("unknown ambient accepted")
	}
}

func TestRunRejectsUnknownRecoveryMode(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(in, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "", 640, 360, 12, 10, 12, 0, 1.0, "indoor", "sideways", 1, ""); err == nil {
		t.Error("unknown recovery mode accepted")
	}
}
