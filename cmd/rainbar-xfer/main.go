// Command rainbar-xfer runs an end-to-end file transfer over the full
// simulated screen-camera link: encode, display at the chosen rate, film
// with the rolling-shutter camera through the configured optical channel,
// reassemble with tracking-bar synchronization, and retransmit failed
// frames until the file is bit-exact.
//
// Usage:
//
//	rainbar-xfer -in FILE [-out FILE]
//	             [-width 640] [-height 360] [-block 12] [-rate 10]
//	             [-distance 12] [-angle 0] [-brightness 1.0]
//	             [-ambient indoor|outdoor|dark] [-seed 1]
//	             [-recovery off|erasures|ladder|combine]
//	             [-metrics file|-] [-pprof addr]
//
// -metrics instruments the whole pipeline (codec stages, channel, camera,
// transport rounds) and writes the collected series after the transfer:
// Prometheus text by default, JSON when the filename ends in .json,
// stdout when the argument is "-". -pprof serves net/http/pprof on the
// given address for the transfer's duration.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"rainbar/internal/camera"
	"rainbar/internal/channel"
	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/obs"
	"rainbar/internal/transport"
)

func main() {
	var (
		in         = flag.String("in", "", "input file to transfer")
		out        = flag.String("out", "", "optional output file for the received copy")
		width      = flag.Int("width", 640, "screen width in pixels")
		height     = flag.Int("height", 360, "screen height in pixels")
		block      = flag.Int("block", 12, "block size in pixels")
		rate       = flag.Float64("rate", 10, "display rate in fps")
		distance   = flag.Float64("distance", 12, "screen-camera distance in cm")
		angle      = flag.Float64("angle", 0, "view angle in degrees")
		brightness = flag.Float64("brightness", 1.0, "screen brightness 0..1")
		ambient    = flag.String("ambient", "indoor", "lighting: indoor|outdoor|dark")
		seed       = flag.Int64("seed", 1, "channel random seed")
		recovery   = flag.String("recovery", "combine", "decode-recovery mode: off, erasures, ladder or combine (default: full ladder with cross-round combining)")
		metrics    = flag.String("metrics", "", "write pipeline metrics to this file after the transfer ('-' = stdout, *.json = JSON exposition)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rainbar-xfer: pprof:", err)
			}
		}()
	}
	if err := run(*in, *out, *width, *height, *block, *rate, *distance, *angle, *brightness, *ambient, *recovery, *seed, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "rainbar-xfer:", err)
		os.Exit(1)
	}
}

func run(in, out string, width, height, block int, rate, distance, angle, brightness float64, ambient, recovery string, seed int64, metrics string) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	mode, err := transport.ParseRecoveryMode(recovery)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}

	var rec *obs.Memory
	if metrics != "" {
		rec = obs.NewMemory()
	}

	cfg := channel.DefaultConfig()
	cfg.DistanceCM = distance
	cfg.ViewAngleDeg = angle
	cfg.ScreenBrightness = brightness
	cfg.Seed = seed
	switch ambient {
	case "indoor":
		cfg.Ambient = channel.AmbientIndoor
	case "outdoor":
		cfg.Ambient = channel.AmbientOutdoor
	case "dark":
		cfg.Ambient = channel.AmbientDark
	default:
		return fmt.Errorf("unknown ambient %q", ambient)
	}
	ch, err := channel.New(cfg)
	if err != nil {
		return err
	}

	geo, err := layout.NewGeometry(width, height, block)
	if err != nil {
		return err
	}
	coreCfg := core.Config{
		Geometry:    geo,
		DisplayRate: uint8(rate),
		AppType:     uint8(transport.Classify(data)),
	}
	combine := mode.Configure(&coreCfg)
	cam := camera.Default()
	cam.Seed = seed
	if rec != nil {
		// Instrument every pipeline layer. Assign only when non-nil: a
		// typed-nil *obs.Memory inside the interface would read as enabled.
		coreCfg.Recorder = rec
		ch.Recorder = rec
		cam.Recorder = rec
	}
	codec, err := core.NewCodec(coreCfg)
	if err != nil {
		return err
	}

	sess := &transport.Session{
		Codec: codec,
		Link: transport.Link{
			Channel:     ch,
			Camera:      cam,
			DisplayRate: rate,
		},
		MaxRounds: 12,
		Combine:   combine,
	}
	if rec != nil {
		sess.Recorder = rec
	}

	got, stats, err := sess.Transfer(data)
	if stats != nil {
		fmt.Printf("app type:      %s\n", stats.App)
		fmt.Printf("frames needed: %d\n", stats.FramesNeeded)
		fmt.Printf("frames sent:   %d (%d rounds)\n", stats.FramesSent, stats.Rounds)
		fmt.Printf("air time:      %v\n", stats.AirTime)
		fmt.Printf("goodput:       %.0f bytes/s\n", stats.Goodput)
		if stats.LadderAttempts > 0 {
			fmt.Printf("recovery:      %d ladder attempts, %d combined decodes\n", stats.LadderAttempts, stats.CombinedDecodes)
		}
	}
	if err != nil {
		return err
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("received copy differs from input")
	}
	fmt.Printf("transfer OK:   %d bytes bit-exact\n", len(got))
	if out != "" {
		if err := os.WriteFile(out, got, 0o644); err != nil {
			return err
		}
		fmt.Printf("written to     %s\n", out)
	}
	if rec != nil {
		if err := writeMetrics(metrics, rec); err != nil {
			return err
		}
	}
	return nil
}

// writeMetrics exposes the recorder to path: "-" means stdout, a .json
// suffix selects the JSON exposition, anything else Prometheus text.
func writeMetrics(path string, rec *obs.Memory) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(path, ".json") {
		return rec.WriteJSON(w)
	}
	return rec.WritePrometheus(w)
}
