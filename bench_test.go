// Package rainbar_test holds the benchmark harness required by the
// reproduction: one testing.B benchmark per paper table and figure (see
// DESIGN.md §4 for the experiment index). Each benchmark regenerates its
// artifact through internal/experiment and reports domain metrics
// (error rates, decoding rates, throughput) as custom benchmark outputs,
// so `go test -bench=.` reprints the paper's evaluation.
//
// Run a single artifact with e.g.:
//
//	go test -bench=BenchmarkFig11 -benchtime=1x
package rainbar_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"rainbar/internal/experiment"
)

// benchOptions uses fewer frames per point than rainbar-bench so the
// whole -bench=. suite stays in CI-friendly territory. Workers stays at
// the default (one per CPU); the tables are bit-identical for any worker
// count, so parallelism only shortens the run.
func benchOptions() experiment.Options {
	o := experiment.DefaultOptions()
	o.Scale.Frames = 4
	return o
}

// reportTable attaches the table's numeric cells as benchmark metrics —
// one metric per cell, named <table>_<column>_<first-cell-of-row> so
// benchstat can diff artifact values across revisions — and logs the full
// table once.
func reportTable(b *testing.B, t *experiment.Table) {
	b.Helper()
	for _, row := range t.Rows {
		if len(row) == 0 {
			continue
		}
		label := metricToken(row[0])
		for ci := 1; ci < len(row) && ci < len(t.Columns); ci++ {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[ci], "%"), 64)
			if err != nil {
				continue // non-numeric cell (verdicts, shape notes)
			}
			b.ReportMetric(v, fmt.Sprintf("%s_%s_%s", metricToken(t.ID), metricToken(t.Columns[ci]), label))
		}
	}
	b.Log("\n" + t.Format())
}

// metricToken reduces a header or row label to a benchstat-safe token:
// lowercase, with unit-style punctuation collapsed to underscores.
func metricToken(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '.' || r == '-':
			sb.WriteRune(r)
		case sb.Len() > 0 && sb.String()[sb.Len()-1] != '_':
			sb.WriteByte('_')
		}
	}
	return strings.Trim(sb.String(), "_")
}

func BenchmarkCapacityAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.CapacityAnalysis(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkLocalizationError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.LocalizationError(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkFig10aDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.Fig10aDistance(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkFig10bViewAngle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.Fig10bViewAngle(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkFig10cBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.Fig10cBlockSize(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkFig10dBrightness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.Fig10dBrightness(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkFig11aDecodingRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ta, _, err := experiment.Fig11DisplayRate(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, ta)
		}
	}
}

func BenchmarkFig11bThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tb, err := experiment.Fig11DisplayRate(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, tb)
		}
	}
}

func BenchmarkFig11cBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.Fig11cBlockSize(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkTable1Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.Table1Throughput(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkFig12aBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.Fig12aBlockSize(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkFig12bDisplayRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.Fig12bDisplayRate(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkDecodeTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.DecodeTime(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkTextTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.TextTransfer(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkHSVvsRGB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.HSVvsRGB(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkSyncAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.SyncAblation(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkLightSyncComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.LightSyncComparison(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkAlphabetRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.AlphabetRobustness(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkLocalizationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.LocalizationAblation(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}

func BenchmarkAdaptiveBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiment.AdaptiveBlockSize(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, t)
		}
	}
}
