module rainbar

go 1.22
