#!/bin/sh
# CI verify recipe: build (all CLIs included), vet, the repo's own
# contract analyzers (rainbar-lint, DESIGN.md §8), tests, the full suite
# under the race detector, a metrics smoke run, then a short fuzz smoke
# pass. The lint gate fails the build on any determinism /
# error-discipline / observability / concurrency contract breach; the
# race step protects the parallel experiment engine, the row-parallel
# raster kernels and the sharded metrics recorder; the metrics smoke
# proves rainbar-bench can instrument a sweep end to end; the recovery
# smoke proves the decode-recovery ablation runs under the full ladder
# with cross-round combining; the allocation gate holds the steady-state
# receiver at 0 allocs/op (the DESIGN.md §11 hot-path memory contract);
# the bench smoke proves the perf-snapshot harness (scripts/bench.sh,
# BENCH_<n>.json) runs end to end; the serve soak and loadtest smoke
# gate the multi-session daemon (DESIGN.md §12); the fuzz steps
# keep the decode paths panic-free on corrupt input (Go runs one fuzz
# target per invocation, hence one line each). Set CI_FUZZ=0 to skip the
# fuzz smoke locally and keep the build+lint+test gate fast. Run before
# every merge.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go build -o /dev/null ./cmd/rainbar-bench
go build -o /dev/null ./cmd/rainbar-xfer
go build -o /dev/null ./cmd/rainbar-send
go build -o /dev/null ./cmd/rainbar-recv
go build -o /dev/null ./cmd/rainbar-debug
go build -o /dev/null ./cmd/rainbar-lint
go build -o /dev/null ./cmd/rainbar-serve
go vet ./...

# Lint gates, each timed against the <10s budget the interprocedural
# engine is held to: the -json gate is the machine-readable findings run
# (whole-module analysis included: RB-D4 taint, RB-S1 snapshot
# completeness, RB-C3/C4 serve concurrency), and the -annotations gate
# audits every escape hatch, failing on stale rule IDs. (Timed with
# date(1), not the `time` keyword — /bin/sh is dash on some CI hosts.)
lint_t0=$(date +%s)
go run ./cmd/rainbar-lint -json ./... >/tmp/rainbar-lint.json
echo "rainbar-lint -json: $(($(date +%s) - lint_t0))s"
lint_t0=$(date +%s)
go run ./cmd/rainbar-lint -annotations ./...
echo "rainbar-lint -annotations: $(($(date +%s) - lint_t0))s"

go test ./...
go test -race ./...
go run ./cmd/rainbar-bench -exp fig10a -frames 1 -metrics - >/dev/null
go run ./cmd/rainbar-bench -exp recovery -frames 1 -recovery combine >/dev/null

# Serve gates: the 1000-session registry soak must be race-clean (it
# also runs inside `go test -race ./...`; this line keeps it visible as
# its own gate), and the loadtest smoke must emit a perf snapshot with
# the serve throughput/latency section populated.
go test -race -run TestServeSoak ./internal/serve
go run ./cmd/rainbar-serve -loadtest -sessions 4 -payload 300 -faults 'drop=0.5;' \
	-perf-json /tmp/rainbar-serve-smoke.json >/dev/null
grep -q '"sessions_per_sec"' /tmp/rainbar-serve-smoke.json
grep -q '"p99_round_seconds"' /tmp/rainbar-serve-smoke.json

# Durability gates: the chaos harness's kill-at-random-round property
# (crash, torn journal tail, Recover, bit-identical delivery) and the
# crash matrix (a kill after EVERY journal record) must hold under the
# race detector — crash recovery that only works without -race is not
# crash recovery.
go test -race -run 'TestChaos' ./internal/serve/chaos
go test -race -run TestCrashMatrixBitIdentical ./internal/serve

# Allocation gate: the steady-state receiver benchmark must report
# 0 allocs/op (TestReceiverSteadyStateAllocFree enforces the same
# contract in-process; this reads the number the snapshots record).
steady=$(go test -run XXX -bench BenchmarkReceiverProcessSteady -benchtime 10x -benchmem ./internal/core | awk '/BenchmarkReceiverProcessSteady/ {print $(NF-1)}')
test "$steady" = "0"

# Perf-snapshot smoke: the bench.sh harness must run end to end.
BENCHTIME=1x scripts/bench.sh /tmp/rainbar-bench-smoke.json >/dev/null

if [ "${CI_FUZZ:-1}" != "0" ]; then
	go test -fuzz=FuzzHeaderDecode -fuzztime=10s ./internal/core/header
	go test -fuzz=FuzzRSDecode -fuzztime=10s ./internal/rs
	go test -fuzz=FuzzFrameDecode -fuzztime=20s ./internal/core
	go test -fuzz=FuzzLadderDecode -fuzztime=20s ./internal/core
	go test -fuzz=FuzzSnapshotDecode -fuzztime=10s ./internal/serve
	go test -fuzz=FuzzJournalReplay -fuzztime=10s ./internal/serve/journal
fi
