#!/bin/sh
# CI verify recipe: build, vet, the repo's own contract analyzers
# (rainbar-lint, DESIGN.md §8), tests, the full suite under the race
# detector, then a short fuzz smoke pass. The lint gate fails the build on
# any determinism / error-discipline / concurrency contract breach; the
# race step protects the parallel experiment engine and the row-parallel
# raster kernels; the fuzz steps keep the decode paths panic-free on
# corrupt input (Go runs one fuzz target per invocation, hence one line
# each). Set CI_FUZZ=0 to skip the fuzz smoke locally and keep the
# build+lint+test gate fast. Run before every merge.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/rainbar-lint ./...
go test ./...
go test -race ./...

if [ "${CI_FUZZ:-1}" != "0" ]; then
	go test -fuzz=FuzzHeaderDecode -fuzztime=10s ./internal/core/header
	go test -fuzz=FuzzRSDecode -fuzztime=10s ./internal/rs
	go test -fuzz=FuzzFrameDecode -fuzztime=20s ./internal/core
fi
