#!/bin/sh
# CI verify recipe: build, tests, the full suite under the race detector,
# then a short fuzz smoke pass. The race step is what protects the parallel
# experiment engine and the row-parallel raster kernels; the fuzz steps keep
# the decode paths panic-free on corrupt input (Go runs one fuzz target per
# invocation, hence one line each). Run before every merge.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./...

go test -fuzz=FuzzHeaderDecode -fuzztime=10s ./internal/core/header
go test -fuzz=FuzzRSDecode -fuzztime=10s ./internal/rs
go test -fuzz=FuzzFrameDecode -fuzztime=20s ./internal/core
