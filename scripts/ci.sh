#!/bin/sh
# CI verify recipe: build (all CLIs included), vet, the repo's own
# contract analyzers (rainbar-lint, DESIGN.md §8), tests, the full suite
# under the race detector, a metrics smoke run, then a short fuzz smoke
# pass. The lint gate fails the build on any determinism /
# error-discipline / observability / concurrency contract breach; the
# race step protects the parallel experiment engine, the row-parallel
# raster kernels and the sharded metrics recorder; the metrics smoke
# proves rainbar-bench can instrument a sweep end to end; the recovery
# smoke proves the decode-recovery ablation runs under the full ladder
# with cross-round combining; the allocation gate holds the steady-state
# receiver at 0 allocs/op (the DESIGN.md §11 hot-path memory contract);
# the bench smoke proves the perf-snapshot harness (scripts/bench.sh,
# BENCH_<n>.json) runs end to end; the fuzz steps
# keep the decode paths panic-free on corrupt input (Go runs one fuzz
# target per invocation, hence one line each). Set CI_FUZZ=0 to skip the
# fuzz smoke locally and keep the build+lint+test gate fast. Run before
# every merge.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go build -o /dev/null ./cmd/rainbar-bench
go build -o /dev/null ./cmd/rainbar-xfer
go build -o /dev/null ./cmd/rainbar-send
go build -o /dev/null ./cmd/rainbar-recv
go build -o /dev/null ./cmd/rainbar-debug
go build -o /dev/null ./cmd/rainbar-lint
go vet ./...
go run ./cmd/rainbar-lint ./...
go test ./...
go test -race ./...
go run ./cmd/rainbar-bench -exp fig10a -frames 1 -metrics - >/dev/null
go run ./cmd/rainbar-bench -exp recovery -frames 1 -recovery combine >/dev/null

# Allocation gate: the steady-state receiver benchmark must report
# 0 allocs/op (TestReceiverSteadyStateAllocFree enforces the same
# contract in-process; this reads the number the snapshots record).
steady=$(go test -run XXX -bench BenchmarkReceiverProcessSteady -benchtime 10x -benchmem ./internal/core | awk '/BenchmarkReceiverProcessSteady/ {print $(NF-1)}')
test "$steady" = "0"

# Perf-snapshot smoke: the bench.sh harness must run end to end.
BENCHTIME=1x scripts/bench.sh /tmp/rainbar-bench-smoke.json >/dev/null

if [ "${CI_FUZZ:-1}" != "0" ]; then
	go test -fuzz=FuzzHeaderDecode -fuzztime=10s ./internal/core/header
	go test -fuzz=FuzzRSDecode -fuzztime=10s ./internal/rs
	go test -fuzz=FuzzFrameDecode -fuzztime=20s ./internal/core
	go test -fuzz=FuzzLadderDecode -fuzztime=20s ./internal/core
fi
