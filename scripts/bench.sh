#!/bin/sh
# bench.sh — regenerate a BENCH_<n>.json perf snapshot.
#
# Usage:
#   scripts/bench.sh              # write BENCH_<n>.json (first free index)
#   scripts/bench.sh out.json     # write to an explicit path
#   BENCHTIME=100ms scripts/bench.sh /tmp/smoke.json   # quick smoke run
#
# The snapshot schema (ns/op, allocs/op, B/op per kernel, plus git rev and
# host CPU count) is defined in internal/perf. Snapshots are only
# comparable when taken on the same host; CI uses a short BENCHTIME smoke
# to prove the harness runs, not to compare numbers.
set -eu
cd "$(dirname "$0")/.."

out="${1:-}"
if [ -z "$out" ]; then
    n=0
    while [ -e "BENCH_$n.json" ]; do n=$((n + 1)); done
    out="BENCH_$n.json"
fi

go run ./cmd/rainbar-bench -perf-json "$out" -perf-benchtime "${BENCHTIME:-1s}"
echo "wrote $out"
