#!/bin/sh
# bench.sh — regenerate a BENCH_<n>.json perf snapshot.
#
# Usage:
#   scripts/bench.sh                    # kernel snapshot, first free index
#   scripts/bench.sh out.json           # kernel snapshot, explicit path
#   scripts/bench.sh -serve [out.json]  # serve durability snapshot: the
#                                       # loadtest fleet journaled under
#                                       # fsync=always/interval/off (the
#                                       # serve_fsync sessions/sec curve)
#   BENCHTIME=100ms scripts/bench.sh /tmp/smoke.json     # quick smoke run
#   SESSIONS=4 scripts/bench.sh -serve /tmp/smoke.json   # quick serve smoke
#
# The snapshot schema (ns/op, allocs/op, B/op per kernel, plus git rev and
# host CPU count) is defined in internal/perf; -serve snapshots fill the
# serve and serve_fsync sections instead of kernel results. Snapshots are
# only comparable when taken on the same host; CI uses a short BENCHTIME
# smoke to prove the harness runs, not to compare numbers.
set -eu
cd "$(dirname "$0")/.."

mode=kernel
if [ "${1:-}" = "-serve" ]; then
    mode=serve
    shift
fi

out="${1:-}"
if [ -z "$out" ]; then
    n=0
    while [ -e "BENCH_$n.json" ]; do n=$((n + 1)); done
    out="BENCH_$n.json"
fi

if [ "$mode" = "serve" ]; then
    go run ./cmd/rainbar-serve -loadtest -fsync-sweep \
        -sessions "${SESSIONS:-32}" -payload "${PAYLOAD:-400}" \
        -faults "${FAULTS:-drop=0.4;}" \
        -perf-json "$out" >/dev/null
else
    go run ./cmd/rainbar-bench -perf-json "$out" -perf-benchtime "${BENCHTIME:-1s}"
fi
echo "wrote $out"
