package transport

import (
	"encoding/binary"
	"fmt"

	"rainbar/internal/core"
)

// FileCodec chunks files into RainBar frames and reassembles them. It is
// the stateless half of the transport: Session adds the simulated link and
// retransmission loop, while rainbar-send/rainbar-recv use FileCodec
// directly on rendered frames.
//
// Wire format per frame payload: a 4-byte big-endian chunk index followed
// by chunk data. Chunk 0 starts with the 12-byte manifest (magic, total
// length, application type).
type FileCodec struct {
	// Codec is the frame codec shared by sender and receiver.
	Codec *core.Codec
}

// ChunkSize returns the file bytes carried per frame.
func (fc FileCodec) ChunkSize() int {
	return fc.Codec.FrameCapacity() - chunkPrefixLen
}

// NumChunks returns the number of chunks a file of n bytes needs
// (manifest included).
func (fc FileCodec) NumChunks(n int) int {
	cs := fc.ChunkSize()
	return (n + manifestLen + cs - 1) / cs
}

// Chunk builds the frame payload for chunk index ci of data (manifest
// prepended). Indices outside [0, NumChunks) return an error.
func (fc FileCodec) Chunk(data []byte, ci int) ([]byte, error) {
	cs := fc.ChunkSize()
	if cs <= 0 {
		return nil, fmt.Errorf("transport: frame capacity %d too small for chunk prefix", fc.Codec.FrameCapacity())
	}
	n := fc.NumChunks(len(data))
	if ci < 0 || ci >= n {
		return nil, fmt.Errorf("transport: chunk %d out of range [0, %d)", ci, n)
	}
	blob := append(buildManifest(len(data), Classify(data)), data...)
	lo := ci * cs
	hi := min(lo+cs, len(blob))
	payload := make([]byte, chunkPrefixLen+hi-lo)
	binary.BigEndian.PutUint32(payload, uint32(ci))
	copy(payload[chunkPrefixLen:], blob[lo:hi])
	return payload, nil
}

// Collector reassembles a file from decoded frame payloads in any order.
// The zero value is not usable; use NewCollector.
type Collector struct {
	chunks   map[int][]byte
	total    int // known once chunk 0 (manifest) arrives; -1 until then
	fileLen  int
	app      AppType
	haveMeta bool
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{chunks: make(map[int][]byte), total: -1}
}

// Add ingests one decoded frame payload. Unknown or duplicate chunks are
// ignored; malformed payloads return an error.
func (c *Collector) Add(payload []byte) error {
	if len(payload) < chunkPrefixLen {
		return fmt.Errorf("transport: payload of %d bytes has no chunk prefix", len(payload))
	}
	ci := int(binary.BigEndian.Uint32(payload))
	if ci < 0 {
		return fmt.Errorf("transport: negative chunk index")
	}
	if _, dup := c.chunks[ci]; dup {
		return nil
	}
	body := payload[chunkPrefixLen:]
	c.chunks[ci] = body

	if ci == 0 && !c.haveMeta {
		length, app, err := parseManifest(body)
		if err != nil {
			delete(c.chunks, 0)
			return fmt.Errorf("transport: chunk 0: %w", err)
		}
		c.fileLen = length
		c.app = app
		c.haveMeta = true
		// Chunk size is the first chunk's body length; derive the count.
		cs := len(body)
		c.total = (length + manifestLen + cs - 1) / cs
	}
	return nil
}

// Complete reports whether every chunk has arrived.
func (c *Collector) Complete() bool {
	if !c.haveMeta {
		return false
	}
	return len(c.chunks) >= c.total
}

// Missing lists chunk indices not yet received; nil when the manifest is
// still unknown (everything could be missing).
func (c *Collector) Missing() []int {
	if !c.haveMeta {
		return nil
	}
	var out []int
	for i := 0; i < c.total; i++ {
		if _, ok := c.chunks[i]; !ok {
			out = append(out, i)
		}
	}
	return out
}

// File returns the reassembled file and its application type.
func (c *Collector) File() ([]byte, AppType, error) {
	if !c.Complete() {
		return nil, 0, fmt.Errorf("transport: %d chunks missing", len(c.Missing()))
	}
	var blob []byte
	for i := 0; i < c.total; i++ {
		blob = append(blob, c.chunks[i]...)
	}
	if len(blob) < manifestLen+c.fileLen {
		return nil, 0, fmt.Errorf("transport: reassembled %d bytes, manifest claims %d", len(blob)-manifestLen, c.fileLen)
	}
	return blob[manifestLen : manifestLen+c.fileLen], c.app, nil
}
