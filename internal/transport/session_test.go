package transport

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"rainbar/internal/channel"
	"rainbar/internal/faults"
	"rainbar/internal/raster"
	"rainbar/internal/workload"
)

func TestTransferRejectsNegativeMaxRounds(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	s.MaxRounds = -1
	if _, _, err := s.Transfer([]byte("x")); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("Transfer with MaxRounds=-1: %v", err)
	}
	if _, _, err := s.TransferLossy([]byte("x")); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("TransferLossy with MaxRounds=-1: %v", err)
	}
}

func TestTransferFrameBudgetEnforced(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	want := workload.Text(3*s.Codec.FrameCapacity(), 42) // 4 chunks with manifest
	s.FrameBudget = 2                                    // less than one round's worth
	_, stats, err := s.Transfer(want)
	if err == nil {
		t.Fatal("transfer completed inside an impossible frame budget")
	}
	if !strings.Contains(err.Error(), "frame budget") {
		t.Fatalf("error does not mention the budget: %v", err)
	}
	if stats.FramesSent != 0 {
		t.Fatalf("sent %d frames past the budget", stats.FramesSent)
	}
}

// dropFirstN is a test-only injector that kills the first n captures it
// sees, stalling early rounds so the degradation policy must engage. It is
// deliberately stateful (not seed-pure) — it exists to exercise the
// session's recovery path deterministically, not to model a fault.
type dropFirstN struct{ n *int }

func (dropFirstN) Name() string { return "blackout" }

func (d dropFirstN) Apply(_ *raster.Image, _ int, _ *rand.Rand) faults.Outcome {
	if *d.n > 0 {
		*d.n--
		return faults.OutcomeDropped
	}
	return faults.OutcomeNone
}

func TestTransferRateFallbackRecoversFromBlackout(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	remaining := 40 // roughly the first two rounds of captures
	s.Link.Camera.Faults = faults.NewChain(1, dropFirstN{n: &remaining})
	s.StallRounds = 1
	s.MaxRounds = 10
	want := workload.Text(3*s.Codec.FrameCapacity(), 9)
	s.FrameBudget = 1000 // generous; rounds bound the loop

	got, stats, err := s.Transfer(want)
	if err != nil {
		t.Fatalf("transfer never recovered from blackout: %v (stats %+v)", err, stats)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload not bit-exact after recovery")
	}
	if stats.RateFallbacks == 0 {
		t.Fatalf("blackout rounds did not trigger rate fallback (stats %+v)", stats)
	}
	if len(stats.RateRounds) < 2 {
		t.Fatalf("RateRounds = %v, want rounds at 2+ rates", stats.RateRounds)
	}
	if stats.FinalDisplayRate >= s.Link.DisplayRate {
		t.Fatalf("final rate %.2f did not fall below link rate %.2f", stats.FinalDisplayRate, s.Link.DisplayRate)
	}
	if stats.FramesDropped == 0 {
		t.Fatalf("FramesDropped = 0 despite blackout (stats %+v)", stats)
	}
	if stats.FaultCounts["blackout"] == 0 {
		t.Fatalf("FaultCounts = %v, want blackout entries", stats.FaultCounts)
	}
	t.Logf("recovered: rounds=%d fallbacks=%d rates=%v dropped=%d",
		stats.Rounds, stats.RateFallbacks, stats.RateRounds, stats.FramesDropped)
}

func TestTransferMinDisplayRateFloorsFallback(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	never := 1 << 30
	s.Link.Camera.Faults = faults.NewChain(1, dropFirstN{n: &never})
	s.StallRounds = 1
	s.MaxRounds = 6
	s.MinDisplayRate = 8
	want := workload.Text(s.Codec.FrameCapacity(), 3)
	_, stats, err := s.Transfer(want)
	if err == nil {
		t.Fatal("total blackout delivered data")
	}
	if stats.FinalDisplayRate < s.MinDisplayRate {
		t.Fatalf("rate %.2f fell below floor %.2f", stats.FinalDisplayRate, s.MinDisplayRate)
	}
	for r := range stats.RateRounds {
		if r < s.MinDisplayRate {
			t.Fatalf("displayed a round at %.2f, below floor %.2f", r, s.MinDisplayRate)
		}
	}
}

func TestTransferStatsUnderInjectedFaults(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	s.Link.Camera.Faults = faults.NewChain(5,
		faults.FrameDrop{P: 0.15},
		faults.Occlusion{P: 0.2, Corners: true},
	)
	s.MaxRounds = 12
	want := workload.Text(3*s.Codec.FrameCapacity(), 21)
	got, stats, err := s.Transfer(want)
	if err != nil {
		t.Fatalf("transfer under faults: %v (stats %+v)", err, stats)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload not bit-exact under faults")
	}
	if stats.FaultCounts == nil {
		t.Fatalf("no fault accounting (stats %+v)", stats)
	}
	total := 0
	for r, n := range stats.RateRounds {
		if r <= 0 || n <= 0 {
			t.Fatalf("bad RateRounds entry %v:%v", r, n)
		}
		total += n
	}
	if total != stats.Rounds {
		t.Fatalf("RateRounds sums to %d, Rounds = %d", total, stats.Rounds)
	}
	t.Logf("faulty link: rounds=%d faults=%v dropped=%d failures=%v",
		stats.Rounds, stats.FaultCounts, stats.FramesDropped, stats.DecodeFailures)
}

// TestTransferFaultAccountingIsolated checks a session only reports its own
// fault exposure even when the chain carries counts from a previous run.
func TestTransferFaultAccountingIsolated(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	chain := faults.NewChain(5, faults.FrameDrop{P: 0.1})
	s.Link.Camera.Faults = chain
	want := workload.Text(s.Codec.FrameCapacity(), 4)
	if _, _, err := s.Transfer(want); err != nil {
		t.Fatalf("first transfer: %v", err)
	}
	afterFirst := chain.Drops()
	_, stats, err := s.Transfer(want)
	if err != nil {
		t.Fatalf("second transfer: %v", err)
	}
	if stats.FramesDropped != chain.Drops()-afterFirst {
		t.Fatalf("second transfer reported %d drops, chain delta is %d",
			stats.FramesDropped, chain.Drops()-afterFirst)
	}
}
