package transport

import (
	"bytes"
	"testing"

	"rainbar/internal/camera"
	"rainbar/internal/channel"
	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/workload"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want AppType
	}{
		{"png", workload.ImageLike(64, 1), AppImage},
		{"jpeg", []byte{0xFF, 0xD8, 0xFF, 0xE0, 1, 2, 3}, AppImage},
		{"wav", workload.AudioLike(64, 1), AppAudio},
		{"id3", append([]byte("ID3"), 1, 2, 3), AppAudio},
		{"text", workload.Text(500, 1), AppText},
		{"binary", workload.Random(64, 1), AppGeneric},
		{"utf8 text", []byte("héllo wörld, this is a test of the classifier"), AppText},
		{"mostly control", bytes.Repeat([]byte{0x01}, 64), AppGeneric},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Classify(c.data); got != c.want {
				t.Errorf("Classify = %v, want %v", got, c.want)
			}
		})
	}
}

func TestAppTypeString(t *testing.T) {
	cases := map[AppType]string{
		AppGeneric: "generic", AppText: "text", AppImage: "image",
		AppAudio: "audio", AppType(99): "unknown",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q", a, got)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := buildManifest(123456, AppText)
	length, app, err := parseManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if length != 123456 || app != AppText {
		t.Fatalf("manifest = (%d, %v)", length, app)
	}
}

func TestManifestRejectsCorruption(t *testing.T) {
	if _, _, err := parseManifest([]byte("short")); err == nil {
		t.Error("truncated manifest accepted")
	}
	m := buildManifest(10, AppText)
	m[0] = 'X'
	if _, _, err := parseManifest(m); err == nil {
		t.Error("bad magic accepted")
	}
}

func testSession(t *testing.T, cfg channel.Config, displayRate float64) *Session {
	t.Helper()
	geo, err := layout.NewGeometry(480, 270, 10)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewCodec(core.Config{Geometry: geo, DisplayRate: uint8(displayRate)})
	if err != nil {
		t.Fatal(err)
	}
	return &Session{
		Codec: codec,
		Link: Link{
			Channel:     channel.MustNew(cfg),
			Camera:      camera.Default(),
			DisplayRate: displayRate,
		},
	}
}

func TestTransferTextFile(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	want := workload.Text(3*s.Codec.FrameCapacity(), 42)
	got, stats, err := s.Transfer(want)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("text file not bit-exact")
	}
	if stats.App != AppText {
		t.Errorf("app = %v, want text", stats.App)
	}
	if stats.Goodput <= 0 {
		t.Errorf("goodput = %v", stats.Goodput)
	}
	if stats.FramesSent < stats.FramesNeeded {
		t.Errorf("sent %d < needed %d", stats.FramesSent, stats.FramesNeeded)
	}
}

func TestTransferBinaryAtHighDisplayRate(t *testing.T) {
	// f_d = 20 > f_c/2: the transfer must still complete thanks to
	// tracking-bar synchronization (possibly with retransmissions).
	s := testSession(t, channel.DefaultConfig(), 20)
	want := workload.Random(2*s.Codec.FrameCapacity(), 7)
	got, stats, err := s.Transfer(want)
	if err != nil {
		t.Fatalf("transfer at 20 fps: %v (stats %+v)", err, stats)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload not bit-exact at 20 fps")
	}
}

func TestTransferRetransmitsOverHarshChannel(t *testing.T) {
	cfg := channel.DefaultConfig()
	cfg.ViewAngleDeg = 18
	cfg.NoiseStdDev = 7
	cfg.BlurSigma = 1.1
	s := testSession(t, cfg, 10)
	s.MaxRounds = 12
	want := workload.Random(3*s.Codec.FrameCapacity(), 8)
	got, stats, err := s.Transfer(want)
	if err != nil {
		t.Skipf("harsh channel undeliverable in %d rounds: %v", stats.Rounds, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload not bit-exact over harsh channel")
	}
	t.Logf("harsh channel: %d rounds, %d/%d frames", stats.Rounds, stats.FramesSent, stats.FramesNeeded)
}

func TestTransferEmptyPayload(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	if _, _, err := s.Transfer(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestTransferValidatesLink(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	s.Link.DisplayRate = 0
	if _, _, err := s.Transfer([]byte("x")); err == nil {
		t.Fatal("invalid link accepted")
	}
	s = testSession(t, channel.DefaultConfig(), 10)
	s.Link.Channel = nil
	if _, _, err := s.Transfer([]byte("x")); err == nil {
		t.Fatal("nil channel accepted")
	}
}

func TestTransferSingleByte(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	got, _, err := s.Transfer([]byte{0xA5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0xA5 {
		t.Fatalf("got %v", got)
	}
}
