package transport

import (
	"bytes"
	"testing"

	"rainbar/internal/colorspace"
	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/workload"
)

func TestRecoveryModeParseRoundTrip(t *testing.T) {
	for _, m := range []RecoveryMode{RecoveryOff, RecoveryErasures, RecoveryLadder, RecoveryCombine} {
		got, err := ParseRecoveryMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseRecoveryMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseRecoveryMode("sideways"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRecoveryModeConfigure(t *testing.T) {
	for _, tc := range []struct {
		mode         RecoveryMode
		budget       int
		erasuresOnly bool
		combine      bool
	}{
		{RecoveryOff, 0, false, false},
		{RecoveryErasures, core.DefaultRecoveryBudget, true, false},
		{RecoveryLadder, core.DefaultRecoveryBudget, false, false},
		{RecoveryCombine, core.DefaultRecoveryBudget, false, true},
	} {
		cfg := core.Config{RecoveryBudget: 99, RecoveryErasuresOnly: true}
		combine := tc.mode.Configure(&cfg)
		if cfg.RecoveryBudget != tc.budget || cfg.RecoveryErasuresOnly != tc.erasuresOnly || combine != tc.combine {
			t.Errorf("%s: budget=%d erasuresOnly=%v combine=%v, want %d/%v/%v",
				tc.mode, cfg.RecoveryBudget, cfg.RecoveryErasuresOnly, combine,
				tc.budget, tc.erasuresOnly, tc.combine)
		}
	}
}

func TestCombinerFusesComplementaryRounds(t *testing.T) {
	// Two rounds each produce a failed capture of chunk 0, corrupted in
	// disjoint cell ranges beyond the per-capture erasure budget. The
	// combiner must cache round 1's soft table, fuse it with round 2's,
	// and deliver the chunk — counted in CombinedDecodes.
	geo, err := layout.NewGeometry(480, 270, 10)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewCodec(core.Config{
		Geometry:       geo,
		DisplayRate:    10,
		RecoveryBudget: core.DefaultRecoveryBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &Session{Codec: codec}
	fc := FileCodec{Codec: codec}
	data := workload.Text(2*fc.ChunkSize(), 77) // chunk 0 fills a whole frame
	payload, err := fc.Chunk(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := codec.EncodeFrame(payload, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]colorspace.Color, len(geo.DataCells()))
	for i, cell := range geo.DataCells() {
		truth[i] = f.ColorAt(cell.Row, cell.Col)
	}
	capture := func(lo, hi int) *core.DecodedFrame {
		cells := append([]colorspace.Color(nil), truth...)
		conf := make([]float64, len(cells))
		for i := range conf {
			conf[i] = 1
		}
		for i := lo; i < hi; i++ {
			cells[i] = colorspace.Color((uint8(cells[i]) + 1) % colorspace.NumDataColors)
			conf[i] = 0
		}
		return &core.DecodedFrame{Header: f.Header(), Err: core.ErrBadFrame, Cells: cells, Conf: conf}
	}

	comb := newCombiner()
	collector := NewCollector()
	stats := &Stats{}
	comb.absorb(s, 0, capture(0, 64), collector, stats) // round 1: cached
	if stats.CombinedDecodes != 0 || collector.Complete() {
		t.Fatalf("first failed capture already delivered (stats %+v)", stats)
	}
	comb.absorb(s, 0, capture(64, 128), collector, stats) // round 2: fused
	if stats.CombinedDecodes != 1 {
		t.Fatalf("CombinedDecodes = %d, want 1 (stats %+v)", stats.CombinedDecodes, stats)
	}
	if stats.LadderSuccessesByHypothesis[core.HypCombine] != 1 {
		t.Fatalf("combine not tallied by hypothesis: %+v", stats.LadderSuccessesByHypothesis)
	}

	// Deliver the remaining chunks normally; the file must come back intact.
	for ci := 1; ci < fc.NumChunks(len(data)); ci++ {
		rest, err := fc.Chunk(data, ci)
		if err != nil {
			t.Fatal(err)
		}
		if err := collector.Add(rest); err != nil {
			t.Fatal(err)
		}
	}
	got, app, err := collector.File()
	if err != nil {
		t.Fatal(err)
	}
	if app != AppText || !bytes.Equal(got, data) {
		t.Fatalf("reassembled file wrong (app %v, exact %v)", app, bytes.Equal(got, data))
	}
}
