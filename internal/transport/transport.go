// Package transport implements RainBar's application-driven transfer layer
// (paper §III-A, §V): files are classified by application type, chunked
// into frames, streamed over the screen-camera link, and frames that fail
// error correction are retransmitted after receiver feedback — the paper's
// alternative to RDCode's always-on heavy redundancy.
//
// The feedback channel is out-of-band and assumed reliable, as in the
// paper; here it is an in-process signal between Sender and Receiver.
package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"unicode/utf8"
)

// AppType classifies a payload, driving pre-processing and recovery
// (§III-A's classification component). The byte value travels in each
// frame header.
type AppType uint8

// Application types.
const (
	AppGeneric AppType = iota + 1
	AppText
	AppImage
	AppAudio
)

// String returns the application-type name.
func (a AppType) String() string {
	switch a {
	case AppGeneric:
		return "generic"
	case AppText:
		return "text"
	case AppImage:
		return "image"
	case AppAudio:
		return "audio"
	default:
		return "unknown"
	}
}

// Classify inspects a payload and picks its application type: magic bytes
// identify images and audio; valid UTF-8 with mostly printable runes is
// text; everything else is generic.
func Classify(data []byte) AppType {
	if len(data) >= 8 && bytes.Equal(data[:8], []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}) {
		return AppImage
	}
	if len(data) >= 3 && bytes.Equal(data[:3], []byte{0xFF, 0xD8, 0xFF}) { // JPEG
		return AppImage
	}
	if len(data) >= 12 && bytes.Equal(data[:4], []byte("RIFF")) && bytes.Equal(data[8:12], []byte("WAVE")) {
		return AppAudio
	}
	if len(data) >= 3 && (bytes.Equal(data[:3], []byte("ID3")) || data[0] == 0xFF && data[1]&0xE0 == 0xE0) {
		return AppAudio
	}
	if isMostlyText(data) {
		return AppText
	}
	return AppGeneric
}

// isMostlyText reports whether data is valid UTF-8 with >= 95% printable
// runes (sampling at most the first 4 KiB).
func isMostlyText(data []byte) bool {
	sample := data
	if len(sample) > 4096 {
		sample = sample[:4096]
	}
	if !utf8.Valid(sample) {
		return false
	}
	printable, total := 0, 0
	for _, r := range string(sample) {
		total++
		if r == '\n' || r == '\r' || r == '\t' || (r >= 0x20 && r != 0x7F) {
			printable++
		}
	}
	return total > 0 && float64(printable)/float64(total) >= 0.95
}

// manifest is the 12-byte prefix prepended to every transfer so the
// receiver knows the exact payload length and can verify reassembly:
//
//	magic(4) length(4) apptype(1) reserved(3)
const manifestLen = 12

var manifestMagic = [4]byte{'R', 'B', 'A', 'R'}

func buildManifest(length int, app AppType) []byte {
	out := make([]byte, manifestLen)
	copy(out, manifestMagic[:])
	binary.BigEndian.PutUint32(out[4:8], uint32(length))
	out[8] = byte(app)
	return out
}

func parseManifest(b []byte) (length int, app AppType, err error) {
	if len(b) < manifestLen {
		return 0, 0, fmt.Errorf("transport: manifest truncated (%d bytes)", len(b))
	}
	if !bytes.Equal(b[:4], manifestMagic[:]) {
		return 0, 0, fmt.Errorf("transport: bad manifest magic %q", b[:4])
	}
	return int(binary.BigEndian.Uint32(b[4:8])), AppType(b[8]), nil
}
