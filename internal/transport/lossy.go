package transport

import (
	"fmt"

	"rainbar/internal/obs"
)

// Lossy delivery (§V, technical-report cases): unlike text, image and
// audio payloads tolerate missing pieces, so instead of retransmitting
// until perfect, the sender stops after a bounded number of rounds and
// the receiver conceals whatever never arrived — gray blocks in images,
// silence-level samples in audio. This is RainBar's application-driven
// alternative to RDCode's always-on redundancy.

// LossyStats extends Stats with concealment accounting.
type LossyStats struct {
	Stats
	// ChunksMissing counts chunks concealed rather than delivered.
	ChunksMissing int
	// MissingChunks lists the concealed chunk indices.
	MissingChunks []int
	// BytesConcealed counts payload bytes filled by concealment.
	BytesConcealed int
}

// FileWithConcealment reassembles the file even when chunks are missing,
// filling gaps per the application type. It fails only when the manifest
// chunk (index 0) never arrived — without it neither length nor type is
// known.
func (c *Collector) FileWithConcealment() ([]byte, AppType, *ConcealmentReport, error) {
	if !c.haveMeta {
		return nil, 0, nil, fmt.Errorf("transport: manifest chunk missing; nothing to conceal against")
	}
	report := &ConcealmentReport{}
	chunkSize := len(c.chunks[0])
	blob := make([]byte, 0, c.total*chunkSize)
	for i := 0; i < c.total; i++ {
		chunk, ok := c.chunks[i]
		if !ok {
			report.MissingChunks = append(report.MissingChunks, i)
			size := chunkSize
			if i == c.total-1 {
				size = manifestLen + c.fileLen - i*chunkSize
				if size < 0 || size > chunkSize {
					size = chunkSize
				}
			}
			chunk = concealChunk(c.app, size)
			report.BytesConcealed += size
		}
		blob = append(blob, chunk...)
	}
	if len(blob) < manifestLen+c.fileLen {
		return nil, 0, nil, fmt.Errorf("transport: reassembled %d bytes, manifest claims %d", len(blob)-manifestLen, c.fileLen)
	}
	return blob[manifestLen : manifestLen+c.fileLen], c.app, report, nil
}

// ConcealmentReport describes what the receiver had to invent.
type ConcealmentReport struct {
	MissingChunks  []int
	BytesConcealed int
}

// concealChunk fabricates plausible filler for a missing chunk.
func concealChunk(app AppType, size int) []byte {
	out := make([]byte, size)
	var fill byte
	switch app {
	case AppImage:
		fill = 0x80 // mid-gray: least-objectionable image filler
	case AppAudio:
		fill = 0x80 // midpoint sample: silence in unsigned 8-bit PCM
	default:
		fill = 0x00
	}
	for i := range out {
		out[i] = fill
	}
	return out
}

// TransferLossy is Transfer for loss-tolerant payloads: it runs at most
// MaxRounds rounds (default 2 — the §V point is that media needs little
// repair), then conceals the remainder. The error is non-nil only when
// the manifest never arrives.
func (s *Session) TransferLossy(data []byte) ([]byte, *LossyStats, error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("transport: empty payload")
	}
	if err := s.Link.Validate(); err != nil {
		return nil, nil, err
	}
	if s.MaxRounds < 0 {
		return nil, nil, fmt.Errorf("transport: MaxRounds %d is negative; zero means default", s.MaxRounds)
	}
	maxRounds := s.MaxRounds
	if maxRounds == 0 {
		maxRounds = 2
	}

	fc := FileCodec{Codec: s.Codec}
	if fc.ChunkSize() <= 0 {
		return nil, nil, fmt.Errorf("transport: frame capacity %d too small for chunk prefix", s.Codec.FrameCapacity())
	}
	nChunks := fc.NumChunks(len(data))
	missing := make([]int, nChunks)
	for i := range missing {
		missing[i] = i
	}
	collector := NewCollector()
	stats := &LossyStats{Stats: Stats{FramesNeeded: nChunks, App: Classify(data)}}
	faultBase, dropBase := s.faultBaseline()
	var nextSeq uint16

	s.obsInc(obs.MTransportTransfers, 1)
	for round := 1; round <= maxRounds && len(missing) > 0; round++ {
		stats.Rounds = round
		s.obsInc(obs.MTransportRounds, 1)
		endRound := obs.OrNop(s.Recorder).Span(obs.MTransportRoundSeconds)
		sent, airTime, err := s.sendRound(fc, data, missing, &nextSeq, collector, nil, s.Link.DisplayRate, &stats.Stats)
		endRound()
		if err != nil {
			return nil, nil, err
		}
		s.obsInc(obs.MTransportFramesSent, int64(sent))
		if round > 1 {
			s.obsInc(obs.MTransportRetransmits, int64(sent))
		}
		stats.FramesSent += sent
		stats.AirTime += airTime
		if stats.RateRounds == nil {
			stats.RateRounds = make(map[float64]int)
		}
		stats.RateRounds[s.Link.DisplayRate]++
		if m := collector.Missing(); m != nil {
			missing = m
		}
		if collector.Complete() {
			missing = nil
		}
	}
	stats.FinalDisplayRate = s.Link.DisplayRate
	stats.ChunksDelivered = nChunks - len(missing)
	s.faultDelta(&stats.Stats, faultBase, dropBase)

	result, _, report, err := collector.FileWithConcealment()
	if err != nil {
		return nil, stats, err
	}
	stats.ChunksMissing = len(report.MissingChunks)
	stats.MissingChunks = report.MissingChunks
	stats.BytesConcealed = report.BytesConcealed
	if stats.AirTime > 0 {
		stats.Goodput = float64(len(result)-report.BytesConcealed) / stats.AirTime.Seconds()
	}
	return result, stats, nil
}
