package transport

import (
	"bytes"
	"testing"
	"testing/quick"

	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/workload"
)

func testFileCodec(t *testing.T) FileCodec {
	t.Helper()
	geo, err := layout.NewGeometry(640, 360, 12)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewCodec(core.Config{Geometry: geo})
	if err != nil {
		t.Fatal(err)
	}
	return FileCodec{Codec: codec}
}

func TestChunkRoundTripThroughCollector(t *testing.T) {
	fc := testFileCodec(t)
	data := workload.Text(fc.ChunkSize()*3+17, 11)
	n := fc.NumChunks(len(data))

	col := NewCollector()
	// Deliver out of order.
	for _, ci := range []int{n - 1, 0, 1, 2} {
		if ci >= n {
			continue
		}
		p, err := fc.Chunk(data, ci)
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	for ci := 0; ci < n; ci++ { // deliver the rest (duplicates ignored)
		p, err := fc.Chunk(data, ci)
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if !col.Complete() {
		t.Fatalf("collector incomplete, missing %v", col.Missing())
	}
	got, app, err := col.File()
	if err != nil {
		t.Fatal(err)
	}
	if app != AppText {
		t.Errorf("app = %v", app)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reassembled file differs")
	}
}

func TestChunkOutOfRange(t *testing.T) {
	fc := testFileCodec(t)
	data := []byte("small")
	if _, err := fc.Chunk(data, -1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := fc.Chunk(data, fc.NumChunks(len(data))); err == nil {
		t.Error("index past end accepted")
	}
}

func TestCollectorMissingBeforeManifest(t *testing.T) {
	col := NewCollector()
	if got := col.Missing(); got != nil {
		t.Fatalf("Missing before manifest = %v, want nil", got)
	}
	if col.Complete() {
		t.Fatal("empty collector complete")
	}
}

func TestCollectorRejectsMalformed(t *testing.T) {
	col := NewCollector()
	if err := col.Add([]byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
	// A chunk-0 payload with broken manifest must be rejected and not
	// poison the collector.
	bad := make([]byte, 30)
	if err := col.Add(bad); err == nil {
		t.Error("chunk 0 with bad magic accepted")
	}
	if col.Complete() {
		t.Error("collector complete after garbage")
	}
}

func TestCollectorMissingList(t *testing.T) {
	fc := testFileCodec(t)
	data := workload.Random(fc.ChunkSize()*4, 12)
	n := fc.NumChunks(len(data))
	col := NewCollector()
	p0, err := fc.Chunk(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Add(p0); err != nil {
		t.Fatal(err)
	}
	missing := col.Missing()
	if len(missing) != n-1 {
		t.Fatalf("missing %d, want %d", len(missing), n-1)
	}
	for i, ci := range missing {
		if ci != i+1 {
			t.Fatalf("missing = %v, want 1..%d", missing, n-1)
		}
	}
}

func TestFileBeforeComplete(t *testing.T) {
	col := NewCollector()
	if _, _, err := col.File(); err == nil {
		t.Fatal("File on empty collector succeeded")
	}
}

func TestNumChunksProperty(t *testing.T) {
	fc := testFileCodec(t)
	prop := func(n uint16) bool {
		size := int(n%5000) + 1
		chunks := fc.NumChunks(size)
		// Enough chunks to hold manifest+data, but not one more than
		// needed.
		cs := fc.ChunkSize()
		return chunks*cs >= size+12 && (chunks-1)*cs < size+12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
