package transport

import (
	"bytes"
	"testing"

	"rainbar/internal/channel"
	"rainbar/internal/workload"
)

func TestTransferLossyCleanChannelDeliversEverything(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	want := workload.AudioLike(3*s.Codec.FrameCapacity(), 21)
	got, stats, err := s.TransferLossy(want)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChunksMissing != 0 {
		t.Errorf("%d chunks concealed on a clean channel", stats.ChunksMissing)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("clean lossy transfer not bit-exact")
	}
	if stats.App != AppAudio {
		t.Errorf("app = %v", stats.App)
	}
}

func TestTransferLossyConcealsOnHarshChannel(t *testing.T) {
	// Search a few channel severities/seeds for the partial-delivery
	// regime (some chunks arrive, some don't) that exercises concealment.
	var (
		got   []byte
		want  []byte
		stats *LossyStats
	)
	found := false
	for _, angle := range []float64{15, 20, 24} {
		for seed := int64(1); seed <= 3 && !found; seed++ {
			cfg := channel.DefaultConfig()
			cfg.ViewAngleDeg = angle
			cfg.ChromaNoiseStdDev = 55
			cfg.ChromaNoiseScalePx = 8
			cfg.Seed = seed
			s := testSession(t, cfg, 10)
			s.MaxRounds = 1
			want = workload.ImageLike(6*s.Codec.FrameCapacity(), 22)
			g, st, err := s.TransferLossy(want)
			if err != nil || st.ChunksMissing == 0 || st.ChunksMissing == st.FramesNeeded {
				continue
			}
			got, stats = g, st
			found = true
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no channel severity produced partial delivery; concealment not exercised")
	}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d (concealment must preserve size)", len(got), len(want))
	}
	// Concealed regions are mid-gray; delivered regions must match.
	concealed := map[int]bool{}
	for _, ci := range stats.MissingChunks {
		concealed[ci] = true
	}
	ref := testSession(t, channelDefaultForTest(), 10)
	cs := FileCodec{Codec: ref.Codec}.ChunkSize()
	for i := range got {
		chunkIdx := (i + manifestLen) / cs
		if concealed[chunkIdx] {
			continue
		}
		if got[i] != want[i] {
			t.Fatalf("delivered byte %d differs outside concealed chunks %v", i, stats.MissingChunks)
		}
	}
	t.Logf("concealed %d chunks (%d bytes) after %d round(s)", stats.ChunksMissing, stats.BytesConcealed, stats.Rounds)
}

// channelDefaultForTest returns the default condition (helper keeps the
// session builder signature uniform).
func channelDefaultForTest() channel.Config { return channel.DefaultConfig() }

func TestFileWithConcealmentRequiresManifest(t *testing.T) {
	c := NewCollector()
	if _, _, _, err := c.FileWithConcealment(); err == nil {
		t.Fatal("concealment without manifest succeeded")
	}
}

func TestFileWithConcealmentFillsGaps(t *testing.T) {
	// Build chunks by hand: a 2-chunk image file, drop chunk 1.
	geoSession := testSession(t, channel.DefaultConfig(), 10)
	fc := FileCodec{Codec: geoSession.Codec}
	data := workload.ImageLike(fc.ChunkSize()+20, 5)
	p0, err := fc.Chunk(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	if err := col.Add(p0); err != nil {
		t.Fatal(err)
	}
	got, app, report, err := col.FileWithConcealment()
	if err != nil {
		t.Fatal(err)
	}
	if app != AppImage {
		t.Errorf("app = %v", app)
	}
	if len(got) != len(data) {
		t.Fatalf("length %d, want %d", len(got), len(data))
	}
	if len(report.MissingChunks) != 1 || report.MissingChunks[0] != 1 {
		t.Fatalf("missing = %v, want [1]", report.MissingChunks)
	}
	// The delivered prefix must match; the concealed tail must be gray.
	deliveredLen := fc.ChunkSize() - manifestLen
	if !bytes.Equal(got[:deliveredLen], data[:deliveredLen]) {
		t.Fatal("delivered prefix mangled")
	}
	for i := deliveredLen; i < len(got); i++ {
		if got[i] != 0x80 {
			t.Fatalf("concealed byte %d = %#x, want 0x80", i, got[i])
		}
	}
}

func TestConcealChunkFillValues(t *testing.T) {
	cases := map[AppType]byte{
		AppImage:   0x80,
		AppAudio:   0x80,
		AppText:    0x00,
		AppGeneric: 0x00,
	}
	for app, want := range cases {
		chunk := concealChunk(app, 8)
		if len(chunk) != 8 {
			t.Fatalf("%v: len %d", app, len(chunk))
		}
		for _, b := range chunk {
			if b != want {
				t.Fatalf("%v: fill %#x, want %#x", app, b, want)
			}
		}
	}
}
