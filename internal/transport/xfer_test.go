package transport

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rainbar/internal/channel"
	"rainbar/internal/faults"
	"rainbar/internal/workload"
)

// lossyTestSession builds a session whose link drops and occludes captures,
// forcing retransmission rounds so mid-transfer state is non-trivial.
func lossyTestSession(t *testing.T) *Session {
	t.Helper()
	s := testSession(t, channel.DefaultConfig(), 10)
	s.Link.Camera.Faults = faults.NewChain(5,
		faults.FrameDrop{P: 0.15},
		faults.Occlusion{P: 0.2, Corners: true},
	)
	s.MaxRounds = 12
	return s
}

// TestSessionResetBackToBackTransfers pins the Session.Reset contract: a
// second transfer after Reset is bit-identical — payload and Stats — to
// what a freshly constructed session produces. Before Reset existed the
// channel PRNG and fault counters leaked across transfers, so a reused
// session silently saw a different link than a fresh one.
func TestSessionResetBackToBackTransfers(t *testing.T) {
	fresh := lossyTestSession(t)
	data := workload.Text(3*fresh.Codec.FrameCapacity(), 21)
	wantPayload, wantStats, err := fresh.Transfer(data)
	if err != nil {
		t.Fatalf("fresh transfer: %v", err)
	}

	reused := lossyTestSession(t)
	if _, _, err := reused.Transfer(data); err != nil {
		t.Fatalf("first transfer on reused session: %v", err)
	}
	reused.Reset()
	gotPayload, gotStats, err := reused.Transfer(data)
	if err != nil {
		t.Fatalf("second transfer after Reset: %v", err)
	}

	if !bytes.Equal(gotPayload, wantPayload) {
		t.Fatal("payload after Reset differs from a fresh session's")
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("stats after Reset differ from a fresh session's:\n got %+v\nwant %+v", gotStats, wantStats)
	}
}

// TestSessionWithoutResetDiverges documents why Reset exists: without it
// the channel PRNG keeps advancing, so a second transfer sees different
// link randomness than a fresh session would.
func TestSessionWithoutResetDiverges(t *testing.T) {
	fresh := lossyTestSession(t)
	data := workload.Text(3*fresh.Codec.FrameCapacity(), 21)
	_, wantStats, err := fresh.Transfer(data)
	if err != nil {
		t.Fatalf("fresh transfer: %v", err)
	}

	reused := lossyTestSession(t)
	if _, _, err := reused.Transfer(data); err != nil {
		t.Fatalf("first transfer: %v", err)
	}
	_, gotStats, err := reused.Transfer(data)
	if err != nil {
		// Divergence may even fail the transfer; that is the point.
		return
	}
	if reflect.DeepEqual(gotStats, wantStats) {
		t.Skip("link randomness happened to line up; divergence not observable on this seed")
	}
}

// TestBeginStepSealMatchesTransfer pins that the stepping API and the
// one-shot Transfer wrapper produce identical results on identically
// configured sessions.
func TestBeginStepSealMatchesTransfer(t *testing.T) {
	a := lossyTestSession(t)
	data := workload.Text(3*a.Codec.FrameCapacity(), 8)
	wantPayload, wantStats, wantErr := a.Transfer(data)

	b := lossyTestSession(t)
	x, err := b.Begin(data)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	for {
		done, err := x.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if done {
			break
		}
	}
	gotPayload, gotStats, gotErr := x.Seal()

	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("Transfer err %v, stepped err %v", wantErr, gotErr)
	}
	if !bytes.Equal(gotPayload, wantPayload) {
		t.Fatal("stepped payload differs from Transfer")
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("stepped stats differ:\n got %+v\nwant %+v", gotStats, wantStats)
	}
	if !x.Done() {
		t.Fatal("Done() false after completion")
	}
	if _, err := x.Step(); err == nil {
		t.Fatal("Step after Seal succeeded")
	}
}

// TestXferStateRoundTrip checks State/Resume fidelity: a snapshot resumed
// into an identically configured session re-snapshots to a deep-equal
// state, with no aliasing into the original transfer.
func TestXferStateRoundTrip(t *testing.T) {
	s := lossyTestSession(t)
	s.Combine = true
	data := workload.Text(3*s.Codec.FrameCapacity(), 8)
	x, err := s.Begin(data)
	if err != nil {
		t.Fatal(err)
	}
	// Step until some chunks arrived but the transfer is still open, so the
	// snapshot carries a non-trivial collector.
	for x.MissingCount() == x.stats.FramesNeeded && !x.Done() {
		if _, err := x.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	st := x.State()

	s2 := lossyTestSession(t)
	s2.Combine = true
	x2, err := s2.Resume(data, st)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	st2 := x2.State()
	if x2.Resumes() != 1 || st2.Resumes != 1 {
		t.Fatalf("resume generation = %d/%d, want 1/1", x2.Resumes(), st2.Resumes)
	}
	// Aside from the resume-generation counter (metadata, bumped by
	// design), the state must round-trip bit-identically.
	st2.Resumes = st.Resumes
	if !reflect.DeepEqual(st, st2) {
		t.Fatalf("state round-trip not identical:\n got %+v\nwant %+v", st2, st)
	}

	// Deep-copy check: mutating the snapshot must not touch the live xfer.
	if len(st.Missing) > 0 {
		st.Missing[0] = 9999
		if x.missing[0] == 9999 {
			t.Fatal("State aliases the live missing slice")
		}
	}
	for ci, body := range st.Collector.Chunks {
		if len(body) > 0 {
			body[0] ^= 0xFF
			if bytes.Equal(x.collector.chunks[ci], body) {
				t.Fatal("State aliases live collector chunk bytes")
			}
			body[0] ^= 0xFF
		}
		break
	}
}

// TestResumeRejectsBadState exercises the defensive validation on Resume.
func TestResumeRejectsBadState(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	data := workload.Text(2*s.Codec.FrameCapacity(), 3)
	x, err := s.Begin(data)
	if err != nil {
		t.Fatal(err)
	}
	base := x.State()

	mutate := func(f func(*XferState)) *XferState {
		st := &XferState{}
		*st = *base
		st.Missing = append([]int(nil), base.Missing...)
		st.Collector = base.Collector
		st.Stats = *base.Stats.Clone()
		f(st)
		return st
	}
	cases := []struct {
		name string
		st   *XferState
		want string
	}{
		{"nil", nil, "nil transfer state"},
		{"round", mutate(func(st *XferState) { st.Round = 999 }), "out of"},
		{"seq", mutate(func(st *XferState) { st.NextSeq = 0x8001 }), "15 bits"},
		{"rate", mutate(func(st *XferState) { st.Rate = -1 }), "rate"},
		{"missing order", mutate(func(st *XferState) { st.Missing = []int{2, 1} }), "ascending"},
		{"missing range", mutate(func(st *XferState) { st.Missing = []int{99999} }), "ascending"},
		{"combiner off", mutate(func(st *XferState) {
			st.Combiner = &CombinerState{Chunks: []CombinerChunk{{Index: 0}}}
		}), "does not combine"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := s.Resume(data, c.st)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Resume accepted bad state (err %v, want %q)", err, c.want)
			}
		})
	}
}

// TestResumeRejectsBadCombinerTables checks soft-table shape validation.
func TestResumeRejectsBadCombinerTables(t *testing.T) {
	s := testSession(t, channel.DefaultConfig(), 10)
	s.Combine = true
	data := workload.Text(2*s.Codec.FrameCapacity(), 3)
	x, err := s.Begin(data)
	if err != nil {
		t.Fatal(err)
	}
	st := x.State()
	st.Combiner = &CombinerState{Chunks: []CombinerChunk{{Index: 1, Cells: nil, Conf: nil}}}
	if _, err := s.Resume(data, st); err == nil || !strings.Contains(err.Error(), "soft table") {
		t.Fatalf("short soft table accepted: %v", err)
	}
	st.Combiner.Chunks[0].Index = -1
	if _, err := s.Resume(data, st); err == nil {
		t.Fatal("negative soft-table chunk accepted")
	}
}

// TestCollectorStateRejectsCorruption checks the collector-state validator.
func TestCollectorStateRejectsCorruption(t *testing.T) {
	bad := []CollectorState{
		{Chunks: map[int][]byte{}, Total: 3, FileLen: 10, HaveMeta: false},
		{Chunks: map[int][]byte{1: {1}}, Total: 0, FileLen: 10, HaveMeta: true},
		{Chunks: map[int][]byte{5: {1}}, Total: 2, FileLen: 1, HaveMeta: true},
		{Chunks: map[int][]byte{}, Total: 2, FileLen: 1, HaveMeta: true},                             // meta but no manifest chunk
		{Chunks: map[int][]byte{0: {1, 2, 3}}, Total: 2, FileLen: 1, HaveMeta: true},                 // manifest unparseable
		{Chunks: map[int][]byte{0: buildManifest(9, AppText)}, Total: 1, FileLen: 1, HaveMeta: true}, // manifest disagrees
	}
	for i, st := range bad {
		if _, err := NewCollectorFromState(st); err == nil {
			t.Errorf("case %d: corrupt collector state accepted", i)
		}
	}

	// A genuine state round-trips.
	c := NewCollector()
	fc := FileCodec{Codec: testSession(t, channel.DefaultConfig(), 10).Codec}
	data := workload.Text(2*fc.Codec.FrameCapacity(), 3)
	p0, err := fc.Chunk(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(p0); err != nil {
		t.Fatal(err)
	}
	st := c.State()
	c2, err := NewCollectorFromState(st)
	if err != nil {
		t.Fatalf("genuine state rejected: %v", err)
	}
	if !reflect.DeepEqual(c2.State(), st) {
		t.Fatal("collector state round-trip not identical")
	}
}

// TestStatsClone checks the clone shares no map storage.
func TestStatsClone(t *testing.T) {
	s := &Stats{
		Rounds:     3,
		RateRounds: map[float64]int{10: 2},
		FaultCounts: map[string]int{
			"drop": 1,
		},
	}
	c := s.Clone()
	if !reflect.DeepEqual(s, c) {
		t.Fatal("clone not equal")
	}
	c.RateRounds[10] = 99
	c.FaultCounts["drop"] = 99
	if s.RateRounds[10] == 99 || s.FaultCounts["drop"] == 99 {
		t.Fatal("clone shares map storage")
	}
}
