package transport

import (
	"fmt"
	"time"

	"rainbar/internal/camera"
	"rainbar/internal/channel"
	"rainbar/internal/core"
	"rainbar/internal/raster"
	"rainbar/internal/screen"
)

// chunkPrefixLen is the per-frame chunk-index prefix. Frame sequence
// numbers order the *display* stream (tracking bars need consecutive
// numbers on consecutively displayed frames, including retransmissions),
// so reassembly is keyed by an explicit chunk index inside the payload
// instead.
const chunkPrefixLen = 4

// Link bundles the simulated optical path of one transfer direction.
type Link struct {
	// Channel is the optical condition of the screen-camera path.
	Channel *channel.Channel
	// Camera is the receiver's capture device.
	Camera camera.Camera
	// DisplayRate is the sender's display rate in fps.
	DisplayRate float64
}

// Validate reports configuration errors.
func (l Link) Validate() error {
	if l.Channel == nil {
		return fmt.Errorf("transport: nil channel")
	}
	if l.DisplayRate <= 0 {
		return fmt.Errorf("transport: display rate %.2f must be positive", l.DisplayRate)
	}
	return l.Camera.Validate()
}

// Stats summarizes a completed transfer.
type Stats struct {
	// Rounds is the number of display rounds (1 = no retransmission).
	Rounds int
	// FramesSent counts frames displayed across all rounds.
	FramesSent int
	// FramesNeeded is the minimum frame count (chunks).
	FramesNeeded int
	// AirTime is the total simulated display time.
	AirTime time.Duration
	// Goodput is payload bytes delivered per second of air time.
	Goodput float64
	// App is the classified application type.
	App AppType
}

// Session transfers files over a screen-camera link with retransmission.
type Session struct {
	// Codec is the RainBar codec shared by both ends.
	Codec *core.Codec
	// Link is the optical path.
	Link Link
	// MaxRounds bounds retransmission rounds (default 8).
	MaxRounds int
}

// Transfer sends data end to end and returns the receiver's reconstruction
// with transfer statistics. The returned data is bit-exact or an error is
// reported (text transfer "requires extremely high accuracy", §V).
func (s *Session) Transfer(data []byte) ([]byte, *Stats, error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("transport: empty payload")
	}
	if err := s.Link.Validate(); err != nil {
		return nil, nil, err
	}
	maxRounds := s.MaxRounds
	if maxRounds == 0 {
		maxRounds = 8
	}

	fc := FileCodec{Codec: s.Codec}
	if fc.ChunkSize() <= 0 {
		return nil, nil, fmt.Errorf("transport: frame capacity %d too small for chunk prefix", s.Codec.FrameCapacity())
	}
	nChunks := fc.NumChunks(len(data))
	missing := make([]int, nChunks)
	for i := range missing {
		missing[i] = i
	}

	collector := NewCollector()
	stats := &Stats{FramesNeeded: nChunks, App: Classify(data)}
	var nextSeq uint16

	for round := 1; round <= maxRounds && len(missing) > 0; round++ {
		stats.Rounds = round
		sent, airTime, err := s.sendRound(fc, data, missing, &nextSeq, collector)
		if err != nil {
			return nil, nil, err
		}
		stats.FramesSent += sent
		stats.AirTime += airTime

		// Receiver feedback: the still-missing chunk indices.
		if m := collector.Missing(); m != nil {
			missing = m
		}
		if collector.Complete() {
			missing = nil
		}
	}

	if len(missing) > 0 {
		return nil, stats, fmt.Errorf("transport: %d/%d chunks undelivered after %d rounds", len(missing), nChunks, stats.Rounds)
	}
	result, gotApp, err := collector.File()
	if err != nil {
		return nil, stats, err
	}
	if gotApp != stats.App {
		return nil, stats, fmt.Errorf("transport: app type corrupted: sent %v, received %v", stats.App, gotApp)
	}
	if stats.AirTime > 0 {
		stats.Goodput = float64(len(result)) / stats.AirTime.Seconds()
	}
	return result, stats, nil
}

// sendRound displays the given chunks once, films them through the link,
// and feeds every decoded frame into the collector. Sequence numbers
// continue across rounds so consecutively displayed frames keep
// consecutive tracking-bar colors.
func (s *Session) sendRound(fc FileCodec, data []byte, chunks []int, nextSeq *uint16, collector *Collector) (framesSent int, airTime time.Duration, err error) {
	nChunks := fc.NumChunks(len(data))
	frames := make([]*raster.Image, 0, len(chunks))
	for _, ci := range chunks {
		payload, err := fc.Chunk(data, ci)
		if err != nil {
			return 0, 0, err
		}
		f, err := s.Codec.EncodeFrame(payload, *nextSeq, ci == nChunks-1)
		if err != nil {
			return 0, 0, fmt.Errorf("transport: %w", err)
		}
		*nextSeq = (*nextSeq + 1) & 0x7FFF
		frames = append(frames, f.Render())
	}

	disp, err := screen.NewDisplay(frames, s.Link.DisplayRate, 0)
	if err != nil {
		return 0, 0, fmt.Errorf("transport: %w", err)
	}
	disp.Transition = screen.DefaultTransition

	caps, err := s.Link.Camera.Film(disp, s.Link.Channel)
	if err != nil {
		return 0, 0, fmt.Errorf("transport: %w", err)
	}
	rx := core.NewReceiver(s.Codec)
	for i := range caps {
		// Individual captures may fail; the stream continues.
		_ = rx.Ingest(caps[i].Image)
	}
	rx.Flush()
	for _, df := range rx.Frames() {
		if df.Err != nil {
			continue
		}
		// Malformed payloads are simply not collected.
		_ = collector.Add(df.Payload)
	}
	return len(frames), disp.Duration(), nil
}
