package transport

import (
	"fmt"
	"time"

	"rainbar/internal/camera"
	"rainbar/internal/channel"
	"rainbar/internal/core"
	"rainbar/internal/obs"
	"rainbar/internal/raster"
	"rainbar/internal/screen"
)

// chunkPrefixLen is the per-frame chunk-index prefix. Frame sequence
// numbers order the *display* stream (tracking bars need consecutive
// numbers on consecutively displayed frames, including retransmissions),
// so reassembly is keyed by an explicit chunk index inside the payload
// instead.
const chunkPrefixLen = 4

// Link bundles the simulated optical path of one transfer direction.
type Link struct {
	// Channel is the optical condition of the screen-camera path.
	Channel *channel.Channel
	// Camera is the receiver's capture device.
	Camera camera.Camera
	// DisplayRate is the sender's display rate in fps.
	DisplayRate float64
}

// Validate reports configuration errors.
func (l Link) Validate() error {
	if l.Channel == nil {
		return fmt.Errorf("transport: nil channel")
	}
	if l.DisplayRate <= 0 {
		return fmt.Errorf("transport: display rate %.2f must be positive", l.DisplayRate)
	}
	return l.Camera.Validate()
}

// Stats summarizes a completed transfer, including how much the session
// had to degrade to finish.
type Stats struct {
	// Rounds is the number of display rounds (1 = no retransmission).
	Rounds int
	// FramesSent counts frames displayed across all rounds.
	FramesSent int
	// FramesNeeded is the minimum frame count (chunks).
	FramesNeeded int
	// ChunksDelivered counts chunks the receiver collected; equals
	// FramesNeeded on a bit-exact transfer and measures partial delivery
	// otherwise.
	ChunksDelivered int
	// AirTime is the total simulated display time.
	AirTime time.Duration
	// Goodput is payload bytes delivered per second of air time.
	Goodput float64
	// App is the classified application type.
	App AppType

	// RateRounds counts display rounds at each rate; more than one key
	// means rate fallback engaged (§IV-D's rate-adaptation knob).
	RateRounds map[float64]int
	// RateFallbacks counts rate-reduction recovery actions taken.
	RateFallbacks int
	// FinalDisplayRate is the rate in effect when the transfer ended.
	FinalDisplayRate float64
	// DecodeFailures tallies capture decode errors by pipeline stage
	// across all rounds (receiver feedback, classified by core).
	DecodeFailures map[core.FailureClass]int
	// FaultCounts tallies injected faults by class during this transfer
	// (only populated when the link's camera carries an injector chain).
	FaultCounts map[string]int
	// FramesDropped counts captures lost to injected whole-frame loss.
	FramesDropped int

	// LadderAttempts counts decode-recovery hypotheses attempted across
	// all rounds (receiver ladder plus transport-level combining).
	LadderAttempts int
	// LadderSuccessesByHypothesis tallies recoveries per hypothesis ID
	// (core.Hyp*). Nil when the ladder never recovered anything.
	LadderSuccessesByHypothesis map[string]int
	// CombinedDecodes counts frames delivered only by fusing failed
	// captures' soft tables across retransmission rounds (HARQ).
	CombinedDecodes int
}

// addLadder folds recovery-ladder activity into the stats.
func (s *Stats) addLadder(attempts int, wins map[string]int) {
	s.LadderAttempts += attempts
	for k, v := range wins {
		if v == 0 {
			continue
		}
		if s.LadderSuccessesByHypothesis == nil {
			s.LadderSuccessesByHypothesis = make(map[string]int)
		}
		s.LadderSuccessesByHypothesis[k] += v
	}
}

// addFailure records one classified decode failure.
func (s *Stats) addFailure(c core.FailureClass) {
	if c == "" {
		return
	}
	if s.DecodeFailures == nil {
		s.DecodeFailures = make(map[core.FailureClass]int)
	}
	s.DecodeFailures[c]++
}

// Session transfers files over a screen-camera link with retransmission
// and graceful degradation: rounds that make no progress trigger a display
// rate fallback, and the total retransmission volume is bounded by a frame
// budget rather than rounds alone.
type Session struct {
	// Codec is the RainBar codec shared by both ends.
	Codec *core.Codec
	// Link is the optical path.
	Link Link
	// MaxRounds bounds retransmission rounds (default 8). Negative values
	// are a configuration error.
	MaxRounds int
	// MinDisplayRate floors the rate-fallback ladder (default 6 fps — the
	// bottom of the paper's display-rate sweep — clamped to the link rate).
	MinDisplayRate float64
	// StallRounds is how many consecutive no-progress rounds trigger a
	// rate fallback (default 2).
	StallRounds int
	// FrameBudget caps the total frames displayed across all rounds
	// (default MaxRounds x chunks, the flat loop's worst case). When the
	// budget runs out the transfer fails with the budget in the error.
	FrameBudget int
	// Combine enables cross-round soft combining (HARQ): frames that fail
	// to decode leave behind a per-cell (symbol, confidence) table, and the
	// retransmission round's equally-failed capture is fused with it before
	// giving up. Effective only when the codec's RecoveryBudget is on
	// (failed frames carry no soft table otherwise).
	Combine bool
	// Recorder, when set, counts transfers, rounds, retransmissions and
	// rate fallbacks, and times each round. Transfer outcomes never depend
	// on it; round timing uses whatever clock the recorder was built with.
	Recorder obs.Recorder
}

// obsInc counts delta on the session recorder when one is set.
func (s *Session) obsInc(name string, delta int64) {
	if obs.Enabled(s.Recorder) {
		s.Recorder.Inc(name, delta)
	}
}

// recordFailure mirrors one classified decode failure to the recorder.
func (s *Session) recordFailure(c core.FailureClass) {
	if c != "" && obs.Enabled(s.Recorder) {
		s.Recorder.Inc(obs.With(obs.MTransportDecodeFailures, "stage", string(c)), 1)
	}
}

// rateBackoff is the multiplicative rate reduction per fallback. The
// paper's knob is the display rate f_d (§IV-D): decoding rate degrades
// with f_d, so when rounds stall the sender trades throughput for
// per-frame reliability.
const rateBackoff = 0.6

// plan resolves the session's degradation knobs against the payload.
type plan struct {
	maxRounds int
	minRate   float64
	stallN    int
	budget    int
}

func (s *Session) plan(nChunks int) (plan, error) {
	if s.MaxRounds < 0 {
		return plan{}, fmt.Errorf("transport: MaxRounds %d is negative; zero means default", s.MaxRounds)
	}
	p := plan{maxRounds: s.MaxRounds, minRate: s.MinDisplayRate, stallN: s.StallRounds, budget: s.FrameBudget}
	if p.maxRounds == 0 {
		p.maxRounds = 8
	}
	if p.minRate <= 0 {
		p.minRate = 6
	}
	if p.minRate > s.Link.DisplayRate {
		p.minRate = s.Link.DisplayRate
	}
	if p.stallN <= 0 {
		p.stallN = 2
	}
	if p.budget <= 0 {
		p.budget = p.maxRounds * nChunks
	}
	return p, nil
}

// Transfer sends data end to end and returns the receiver's reconstruction
// with transfer statistics. The returned data is bit-exact or an error is
// reported (text transfer "requires extremely high accuracy", §V). It is
// the one-shot form of Begin/Step/Seal.
func (s *Session) Transfer(data []byte) ([]byte, *Stats, error) {
	x, err := s.Begin(data)
	if err != nil {
		return nil, nil, err
	}
	for {
		done, err := x.Step()
		if err != nil {
			return nil, nil, err
		}
		if done {
			break
		}
	}
	return x.Seal()
}

// Reset rewinds the session's link to its just-constructed state: the
// channel PRNG and capture counter, and any fault-injector chains on the
// channel or camera. A long-lived session can then run back-to-back
// transfers, each bit-identical to what a freshly built session would
// produce. Per-transfer decode state (collector, combiner soft tables,
// stats) never lives on the Session, so nothing else needs clearing.
func (s *Session) Reset() {
	if s.Link.Channel != nil {
		s.Link.Channel.Reset()
		s.Link.Channel.Faults.Reset()
	}
	s.Link.Camera.Faults.Reset()
}

// faultBaseline snapshots the camera's injector-chain counters so the
// transfer can report only its own fault exposure.
func (s *Session) faultBaseline() (map[string]int, int) {
	ch := s.Link.Camera.Faults
	return ch.Counters(), ch.Drops()
}

// faultDelta folds the injector-chain activity since base into stats.
// Deltas accumulate so a transfer can take a baseline per round; the chain
// counters only grow, so per-round deltas sum to the whole-transfer delta.
func (s *Session) faultDelta(stats *Stats, base map[string]int, dropBase int) {
	ch := s.Link.Camera.Faults
	if ch == nil {
		return
	}
	for k, v := range ch.Counters() {
		if d := v - base[k]; d > 0 {
			if stats.FaultCounts == nil {
				stats.FaultCounts = make(map[string]int)
			}
			stats.FaultCounts[k] += d
		}
	}
	stats.FramesDropped += ch.Drops() - dropBase
}

// sendRound displays the given chunks once at the given display rate,
// films them through the link, and feeds every decoded frame into the
// collector. Sequence numbers continue across rounds so consecutively
// displayed frames keep consecutive tracking-bar colors. Decode failures
// reported by the receiver are classified into stats; when comb is
// non-nil, failed frames' soft tables are fused across rounds.
func (s *Session) sendRound(fc FileCodec, data []byte, chunks []int, nextSeq *uint16, collector *Collector, comb *combiner, rate float64, stats *Stats) (framesSent int, airTime time.Duration, err error) {
	nChunks := fc.NumChunks(len(data))
	frames := make([]*raster.Image, 0, len(chunks))
	// seqChunk maps this round's frame sequence numbers back to chunk
	// indices: a failed frame has no decodable chunk prefix, so combining
	// keys its soft table by the chunk the sender put at that sequence.
	seqChunk := make(map[uint16]int, len(chunks))
	for _, ci := range chunks {
		payload, err := fc.Chunk(data, ci)
		if err != nil {
			return 0, 0, err
		}
		f, err := s.Codec.EncodeFrame(payload, *nextSeq, ci == nChunks-1)
		if err != nil {
			return 0, 0, fmt.Errorf("transport: %w", err)
		}
		seqChunk[*nextSeq] = ci
		*nextSeq = (*nextSeq + 1) & 0x7FFF
		frames = append(frames, f.Render())
	}

	disp, err := screen.NewDisplay(frames, rate, 0)
	if err != nil {
		return 0, 0, fmt.Errorf("transport: %w", err)
	}
	disp.Transition = screen.DefaultTransition

	caps, err := s.Link.Camera.Film(disp, s.Link.Channel)
	if err != nil {
		return 0, 0, fmt.Errorf("transport: %w", err)
	}
	rx := core.NewReceiver(s.Codec)
	imgs := make([]*raster.Image, len(caps))
	for i := range caps {
		imgs[i] = caps[i].Image
	}
	// Batched ingest parallelizes the per-capture grid decodes while keeping
	// merge order — and therefore every error and frame — identical to
	// sequential Ingest calls.
	for _, err := range rx.IngestBatch(imgs) {
		// Individual captures may fail; the stream continues, but the
		// failure class feeds the degradation policy's accounting.
		if err != nil {
			class := core.ClassifyFailure(err)
			stats.addFailure(class)
			s.recordFailure(class)
		}
	}
	rx.Flush()
	attempts, wins := rx.RecoveryStats()
	stats.addLadder(attempts, wins)
	for _, df := range rx.Frames() {
		if df.Err != nil {
			class := core.ClassifyFailure(df.Err)
			stats.addFailure(class)
			s.recordFailure(class)
			if comb != nil && df.Cells != nil {
				if ci, ok := seqChunk[df.Header.Seq]; ok {
					comb.absorb(s, ci, df, collector, stats)
				}
			}
			continue
		}
		// Malformed payloads are simply not collected.
		_ = collector.Add(df.Payload)
	}
	return len(frames), disp.Duration(), nil
}
