package transport

import (
	"fmt"
	"sort"

	"rainbar/internal/colorspace"
	"rainbar/internal/core"
	"rainbar/internal/obs"
)

// Xfer is one in-flight reliable transfer, advanced one display round at a
// time. Transfer is Begin + Step-until-done + Seal in a single call; a
// serve daemon instead owns the loop, interleaving thousands of transfers
// on a worker pool and snapshotting any of them at a round boundary via
// State. An Xfer is not safe for concurrent use.
type Xfer struct {
	s    *Session
	data []byte
	fc   FileCodec
	p    plan

	nChunks   int
	missing   []int
	collector *Collector
	stats     *Stats
	nextSeq   uint16
	rate      float64
	stall     int
	round     int
	comb      *combiner
	done      bool
	sealed    bool
	resumes   int
}

// Begin validates the session and payload and returns a transfer positioned
// before its first round. It performs exactly the setup Transfer used to:
// Transfer(data) is equivalent to Begin + Step until done + Seal.
func (s *Session) Begin(data []byte) (*Xfer, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("transport: empty payload")
	}
	if err := s.Link.Validate(); err != nil {
		return nil, err
	}
	fc := FileCodec{Codec: s.Codec}
	if fc.ChunkSize() <= 0 {
		return nil, fmt.Errorf("transport: frame capacity %d too small for chunk prefix", s.Codec.FrameCapacity())
	}
	nChunks := fc.NumChunks(len(data))
	p, err := s.plan(nChunks)
	if err != nil {
		return nil, err
	}
	missing := make([]int, nChunks)
	for i := range missing {
		missing[i] = i
	}
	x := &Xfer{
		s:         s,
		data:      data,
		fc:        fc,
		p:         p,
		nChunks:   nChunks,
		missing:   missing,
		collector: NewCollector(),
		stats:     &Stats{FramesNeeded: nChunks, App: Classify(data)},
		rate:      s.Link.DisplayRate,
	}
	if s.Combine {
		x.comb = newCombiner()
	}
	s.obsInc(obs.MTransportTransfers, 1)
	return x, nil
}

// exhausted reports whether another round may run: it mirrors the historic
// Transfer loop's entry condition (round bound, nothing missing, or the
// next round would blow the frame budget).
func (x *Xfer) exhausted() bool {
	return len(x.missing) == 0 ||
		x.round >= x.p.maxRounds ||
		x.stats.FramesSent+len(x.missing) > x.p.budget
}

// Step runs one display round: encode the missing chunks, film them
// through the link at the current (possibly fallen-back) rate, fold the
// receiver's results into the collector, and apply the stall/rate-fallback
// policy. It returns done=true once no further round will run — either the
// transfer completed or its round/budget bounds are exhausted; call Seal
// for the verdict. A non-nil error is a link-level failure (encode,
// display, film), after which the transfer cannot continue.
func (x *Xfer) Step() (done bool, err error) {
	if x.sealed {
		return true, fmt.Errorf("transport: transfer already sealed")
	}
	if x.done {
		return true, nil
	}
	if x.exhausted() {
		x.done = true
		return true, nil
	}

	x.round++
	x.stats.Rounds = x.round
	x.s.obsInc(obs.MTransportRounds, 1)
	faultBase, dropBase := x.s.faultBaseline()
	endRound := obs.OrNop(x.s.Recorder).Span(obs.MTransportRoundSeconds)
	sent, airTime, err := x.s.sendRound(x.fc, x.data, x.missing, &x.nextSeq, x.collector, x.comb, x.rate, x.stats)
	endRound()
	if err != nil {
		x.done = true
		return true, err
	}
	// Fault exposure is folded in per round (the chain counters only grow,
	// so the per-transfer totals equal the old end-of-transfer delta). A
	// serve daemon may swap the link between rounds; per-round deltas keep
	// the accounting correct across such swaps.
	x.s.faultDelta(x.stats, faultBase, dropBase)
	x.s.obsInc(obs.MTransportFramesSent, int64(sent))
	if x.round > 1 {
		x.s.obsInc(obs.MTransportRetransmits, int64(sent))
	}
	x.stats.FramesSent += sent
	x.stats.AirTime += airTime
	if x.stats.RateRounds == nil {
		x.stats.RateRounds = make(map[float64]int)
	}
	x.stats.RateRounds[x.rate]++

	// Receiver feedback: the still-missing chunk indices.
	before := len(x.missing)
	if m := x.collector.Missing(); m != nil {
		x.missing = m
	}
	if x.collector.Complete() {
		x.missing = nil
	}

	// Graceful degradation: consecutive rounds that recover nothing mean
	// the link cannot sustain this display rate; back the rate off (the
	// paper's rate-adaptation knob) instead of burning the remaining
	// rounds on identical failures.
	if len(x.missing) > 0 && len(x.missing) >= before {
		x.stall++
	} else {
		x.stall = 0
	}
	if x.stall >= x.p.stallN && x.rate > x.p.minRate {
		x.rate = max(x.p.minRate, x.rate*rateBackoff)
		x.stats.RateFallbacks++
		x.s.obsInc(obs.MTransportRateFallbacks, 1)
		x.stall = 0
	}
	if x.exhausted() {
		x.done = true
	}
	return x.done, nil
}

// Seal finishes the transfer: it freezes the final rate and delivery
// counts into Stats and reassembles the payload, exactly as the historic
// Transfer epilogue did. After Seal the transfer cannot be stepped.
func (x *Xfer) Seal() ([]byte, *Stats, error) {
	x.sealed = true
	x.stats.FinalDisplayRate = x.rate
	x.stats.ChunksDelivered = x.nChunks - len(x.missing)
	if len(x.missing) > 0 {
		return nil, x.stats, fmt.Errorf("transport: %d/%d chunks undelivered after %d rounds (%d/%d frame budget)",
			len(x.missing), x.nChunks, x.stats.Rounds, x.stats.FramesSent, x.p.budget)
	}
	result, gotApp, err := x.collector.File()
	if err != nil {
		return nil, x.stats, err
	}
	if gotApp != x.stats.App {
		return nil, x.stats, fmt.Errorf("transport: app type corrupted: sent %v, received %v", x.stats.App, gotApp)
	}
	if x.stats.AirTime > 0 {
		x.stats.Goodput = float64(len(result)) / x.stats.AirTime.Seconds()
	}
	return result, x.stats, nil
}

// Round returns the number of completed display rounds.
func (x *Xfer) Round() int { return x.round }

// MissingCount returns how many chunks the receiver still needs.
func (x *Xfer) MissingCount() int { return len(x.missing) }

// Done reports whether no further round will run.
func (x *Xfer) Done() bool { return x.done }

// Resumes returns how many State/Resume generations precede this
// transfer: 0 for a fresh Begin, incremented by every Resume. Resume
// metadata only — it never influences a round's outcome, it just lets a
// daemon report how often a session has been migrated or crash-recovered.
func (x *Xfer) Resumes() int { return x.resumes }

// Stats returns the live statistics. The caller must not mutate them; they
// keep changing until Seal.
func (x *Xfer) Stats() *Stats { return x.stats }

// XferState is the complete discrete state of a transfer at a round
// boundary: everything Resume needs to continue it bit-identically (given
// a link whose per-round randomness is a pure function of the round
// number, as the serve daemon arranges). All nested structures are deep
// copies — snapshotting never aliases live transfer state.
type XferState struct {
	Round   int
	NextSeq uint16
	Rate    float64
	Stall   int
	Done    bool
	// Missing lists the chunk indices still owed, ascending.
	Missing   []int
	Collector CollectorState
	// Combiner carries the HARQ soft-table cache; nil when the session
	// does not combine or nothing is cached.
	Combiner *CombinerState
	Stats    Stats
	// Resumes counts the State/Resume generations before this snapshot
	// (resume metadata; Resume stores it incremented). Deliberately kept
	// out of Stats so resumed and uninterrupted transfers stay
	// bit-identical where it counts — in delivered bytes and accounting.
	Resumes int
}

// State snapshots the transfer at the current round boundary.
func (x *Xfer) State() *XferState {
	st := &XferState{
		Round:     x.round,
		NextSeq:   x.nextSeq,
		Rate:      x.rate,
		Stall:     x.stall,
		Done:      x.done,
		Missing:   append([]int(nil), x.missing...),
		Collector: x.collector.State(),
		Combiner:  x.comb.state(),
		Stats:     *x.stats.Clone(),
		Resumes:   x.resumes,
	}
	return st
}

// Resume reconstructs a mid-transfer Xfer from a snapshot taken by State.
// The session must be configured identically to the one that produced the
// snapshot (same codec format, degradation knobs and Combine setting); the
// payload is the same file the original transfer was sending. State that
// cannot belong to such a transfer is rejected.
func (s *Session) Resume(data []byte, st *XferState) (*Xfer, error) {
	if st == nil {
		return nil, fmt.Errorf("transport: nil transfer state")
	}
	x, err := s.Begin(data)
	if err != nil {
		return nil, err
	}
	if st.Round < 0 || st.Round > x.p.maxRounds {
		return nil, fmt.Errorf("transport: resumed round %d out of [0, %d]", st.Round, x.p.maxRounds)
	}
	if st.NextSeq&0x7FFF != st.NextSeq {
		return nil, fmt.Errorf("transport: resumed sequence %d exceeds 15 bits", st.NextSeq)
	}
	if st.Rate <= 0 || st.Rate > s.Link.DisplayRate {
		return nil, fmt.Errorf("transport: resumed rate %.3f out of (0, %.3f]", st.Rate, s.Link.DisplayRate)
	}
	prev := -1
	for _, ci := range st.Missing {
		if ci <= prev || ci >= x.nChunks {
			return nil, fmt.Errorf("transport: resumed missing set not ascending in [0, %d)", x.nChunks)
		}
		prev = ci
	}
	collector, err := NewCollectorFromState(st.Collector)
	if err != nil {
		return nil, err
	}
	comb, err := newCombinerFromState(st.Combiner, s.Combine, cellsPerFrame(s.Codec))
	if err != nil {
		return nil, err
	}
	x.round = st.Round
	x.nextSeq = st.NextSeq
	x.rate = st.Rate
	x.stall = st.Stall
	x.done = st.Done
	x.missing = append([]int(nil), st.Missing...)
	x.collector = collector
	x.comb = comb
	x.stats = st.Stats.Clone()
	x.resumes = st.Resumes + 1
	// Begin already counted a transfer start; a resume continues an
	// existing one, so take the increment back out of the books.
	s.obsInc(obs.MTransportTransfers, -1)
	return x, nil
}

// cellsPerFrame is the soft-table length a combiner entry must have.
func cellsPerFrame(c *core.Codec) int {
	return len(c.Geometry().DataCells())
}

// Clone returns a deep copy of the stats (maps included), so snapshots
// never alias the live transfer's accounting.
func (s *Stats) Clone() *Stats {
	out := *s
	out.RateRounds = cloneMap(s.RateRounds)
	out.DecodeFailures = cloneMap(s.DecodeFailures)
	out.FaultCounts = cloneMap(s.FaultCounts)
	out.LadderSuccessesByHypothesis = cloneMap(s.LadderSuccessesByHypothesis)
	return &out
}

func cloneMap[K comparable, V any](m map[K]V) map[K]V {
	if m == nil {
		return nil
	}
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// CollectorState is the serializable state of a Collector.
type CollectorState struct {
	// Chunks maps chunk index to its body bytes (deep copies).
	Chunks map[int][]byte
	// Total is the chunk count once known, -1 before the manifest arrived.
	Total    int
	FileLen  int
	App      AppType
	HaveMeta bool
}

// State deep-copies the collector's reassembly state.
func (c *Collector) State() CollectorState {
	chunks := make(map[int][]byte, len(c.chunks))
	for ci, body := range c.chunks {
		b := make([]byte, len(body))
		copy(b, body)
		chunks[ci] = b
	}
	return CollectorState{Chunks: chunks, Total: c.total, FileLen: c.fileLen, App: c.app, HaveMeta: c.haveMeta}
}

// NewCollectorFromState rebuilds a collector from a snapshot, validating
// the internal consistency a genuine snapshot always has.
func NewCollectorFromState(st CollectorState) (*Collector, error) {
	c := NewCollector()
	if !st.HaveMeta && (st.Total != -1 || st.FileLen != 0) {
		return nil, fmt.Errorf("transport: collector state has totals but no manifest")
	}
	if st.HaveMeta && (st.Total <= 0 || st.FileLen < 0) {
		return nil, fmt.Errorf("transport: collector state claims %d chunks, %d bytes", st.Total, st.FileLen)
	}
	for ci, body := range st.Chunks {
		if ci < 0 || (st.HaveMeta && ci >= st.Total) {
			return nil, fmt.Errorf("transport: collector state chunk %d out of range", ci)
		}
		b := make([]byte, len(body))
		copy(b, body)
		c.chunks[ci] = b
	}
	c.total = st.Total
	c.fileLen = st.FileLen
	c.app = st.App
	c.haveMeta = st.HaveMeta
	if st.HaveMeta {
		body, ok := c.chunks[0]
		if !ok {
			return nil, fmt.Errorf("transport: collector state has metadata but no manifest chunk")
		}
		length, app, err := parseManifest(body)
		if err != nil {
			return nil, fmt.Errorf("transport: collector state manifest: %w", err)
		}
		if length != st.FileLen || app != st.App {
			return nil, fmt.Errorf("transport: collector state disagrees with its manifest")
		}
	}
	return c, nil
}

// CombinerState is the serializable HARQ soft-table cache: the voted
// per-cell symbols and confidences of frames that failed to decode, keyed
// by chunk index and awaiting fusion with a retransmission round.
type CombinerState struct {
	Chunks []CombinerChunk
}

// CombinerChunk is one cached soft table.
type CombinerChunk struct {
	Index int
	Cells []colorspace.Color
	Conf  []float64
}

// state deep-copies the cache in ascending chunk order (nil when the
// combiner is off or empty).
func (cb *combiner) state() *CombinerState {
	if cb == nil || len(cb.tables) == 0 {
		return nil
	}
	indices := make([]int, 0, len(cb.tables))
	for ci := range cb.tables {
		indices = append(indices, ci)
	}
	// Ascending chunk order keeps snapshots of equal caches byte-identical.
	sort.Ints(indices)
	st := &CombinerState{Chunks: make([]CombinerChunk, 0, len(indices))}
	for _, ci := range indices {
		tbl := cb.tables[ci]
		st.Chunks = append(st.Chunks, CombinerChunk{
			Index: ci,
			Cells: append([]colorspace.Color(nil), tbl.cells...),
			Conf:  append([]float64(nil), tbl.conf...),
		})
	}
	return st
}

// newCombinerFromState rebuilds the cache. combine is the session's
// Combine flag; nCells the codec's data-cell count per frame.
func newCombinerFromState(st *CombinerState, combine bool, nCells int) (*combiner, error) {
	if !combine {
		if st != nil && len(st.Chunks) > 0 {
			return nil, fmt.Errorf("transport: snapshot carries soft tables but session does not combine")
		}
		return nil, nil
	}
	cb := newCombiner()
	for _, ch := range st.chunksOrNil() {
		if ch.Index < 0 {
			return nil, fmt.Errorf("transport: soft table for negative chunk %d", ch.Index)
		}
		if len(ch.Cells) != nCells || len(ch.Conf) != nCells {
			return nil, fmt.Errorf("transport: soft table for chunk %d has %d cells, %d confidences; frame has %d",
				ch.Index, len(ch.Cells), len(ch.Conf), nCells)
		}
		if _, dup := cb.tables[ch.Index]; dup {
			return nil, fmt.Errorf("transport: duplicate soft table for chunk %d", ch.Index)
		}
		cb.tables[ch.Index] = softTable{
			cells: append([]colorspace.Color(nil), ch.Cells...),
			conf:  append([]float64(nil), ch.Conf...),
		}
	}
	return cb, nil
}

// chunksOrNil tolerates a nil state (fresh combiner).
func (st *CombinerState) chunksOrNil() []CombinerChunk {
	if st == nil {
		return nil
	}
	return st.Chunks
}
