package transport

import (
	"fmt"

	"rainbar/internal/colorspace"
	"rainbar/internal/core"
	"rainbar/internal/obs"
)

// RecoveryMode selects how much of the decode-recovery ladder a transfer
// uses. It is the single knob the CLIs and the experiment ablations
// expose; Configure maps it onto core.Config and the Session.
type RecoveryMode int

const (
	// RecoveryOff disables the ladder entirely: decoding is bit-identical
	// to a codec with RecoveryBudget 0.
	RecoveryOff RecoveryMode = iota
	// RecoveryErasures enables only the confidence-ranked erasure
	// hypothesis (the ablation isolating soft classification).
	RecoveryErasures
	// RecoveryLadder enables the full per-capture ladder: ranked erasures,
	// the μ-sweep, and the locator re-scan.
	RecoveryLadder
	// RecoveryCombine is RecoveryLadder plus cross-round soft combining
	// (HARQ): failed frames' soft tables are cached and fused with the
	// retransmission round's captures.
	RecoveryCombine
)

// recoveryModeNames is the canonical flag spelling of each mode.
var recoveryModeNames = [...]string{
	RecoveryOff:      "off",
	RecoveryErasures: "erasures",
	RecoveryLadder:   "ladder",
	RecoveryCombine:  "combine",
}

// String returns the flag spelling of the mode.
func (m RecoveryMode) String() string {
	if m < 0 || int(m) >= len(recoveryModeNames) {
		return fmt.Sprintf("RecoveryMode(%d)", int(m))
	}
	return recoveryModeNames[m]
}

// ParseRecoveryMode parses a -recovery flag value.
func ParseRecoveryMode(s string) (RecoveryMode, error) {
	for m, name := range recoveryModeNames {
		if s == name {
			return RecoveryMode(m), nil
		}
	}
	return RecoveryOff, fmt.Errorf("transport: unknown recovery mode %q (want off, erasures, ladder or combine)", s)
}

// Configure applies the mode to a codec configuration and reports whether
// the session should enable cross-round combining. Off zeroes the budget,
// keeping decode results byte-identical to a ladder-free build.
func (m RecoveryMode) Configure(cfg *core.Config) (combine bool) {
	switch m {
	case RecoveryErasures:
		cfg.RecoveryBudget = core.DefaultRecoveryBudget
		cfg.RecoveryErasuresOnly = true
	case RecoveryLadder:
		cfg.RecoveryBudget = core.DefaultRecoveryBudget
		cfg.RecoveryErasuresOnly = false
	case RecoveryCombine:
		cfg.RecoveryBudget = core.DefaultRecoveryBudget
		cfg.RecoveryErasuresOnly = false
		return true
	default:
		cfg.RecoveryBudget = 0
		cfg.RecoveryErasuresOnly = false
	}
	return false
}

// softTable is one cached per-cell (symbol, confidence) reading of a frame
// that failed to decode.
type softTable struct {
	cells []colorspace.Color
	conf  []float64
}

// combiner caches failed frames' soft tables across retransmission rounds,
// keyed by chunk index — the stable identity of a frame's payload (frame
// sequence numbers change on every retransmission, data cells do not).
type combiner struct {
	tables map[int]softTable
}

func newCombiner() *combiner {
	return &combiner{tables: make(map[int]softTable)}
}

// absorb folds one failed frame's soft table into the cache and, when an
// earlier round already contributed a table for the same chunk, fuses the
// two by max-confidence vote and re-runs payload assembly on the fused
// table. A successful fusion delivers the chunk to the collector; a failed
// one keeps the fused table for the next round.
func (cb *combiner) absorb(s *Session, ci int, df *core.DecodedFrame, collector *Collector, stats *Stats) {
	old, seen := cb.tables[ci]
	cells, conf := core.FuseCells(old.cells, old.conf, df.Cells, df.Conf)
	if !seen {
		cb.tables[ci] = softTable{cells: cells, conf: conf}
		return
	}
	stats.addLadder(1, nil) // the combine hypothesis itself
	payload, trace, err := s.Codec.AssemblePayloadSoft(cells, conf, df.Header)
	if trace != nil {
		stats.addLadder(len(trace.Attempts), traceWins(trace))
	}
	if err == nil && collector.Add(payload) == nil {
		stats.CombinedDecodes++
		stats.addLadder(0, map[string]int{core.HypCombine: 1})
		s.obsInc(obs.MTransportCombinedDecodes, 1)
		delete(cb.tables, ci)
		return
	}
	cb.tables[ci] = softTable{cells: cells, conf: conf}
}

// traceWins converts a recovery trace's winner into a success tally.
func traceWins(t *core.RecoveryTrace) map[string]int {
	if t == nil || t.Winner == "" {
		return nil
	}
	return map[string]int{t.Winner: 1}
}
