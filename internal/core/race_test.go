//go:build race

package core

// raceEnabled reports whether this test binary was built with -race.
// sync.Pool deliberately bypasses its cache at random under the race
// detector, so allocation-count assertions are skipped there.
const raceEnabled = true
