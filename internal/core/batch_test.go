package core

import (
	"bytes"
	"reflect"
	"runtime"
	"runtime/debug"
	"testing"

	"rainbar/internal/channel"
	"rainbar/internal/raster"
)

// sameFrames compares two receivers' completed-frame sets field by field
// (header, payload, error text, soft tables).
func sameFrames(t *testing.T, want, got *Receiver) {
	t.Helper()
	wf, gf := want.Frames(), got.Frames()
	if len(wf) != len(gf) {
		t.Fatalf("frame count: sequential %d, batch %d", len(wf), len(gf))
	}
	for i := range wf {
		w, g := wf[i], gf[i]
		if w.Header != g.Header {
			t.Errorf("frame %d: header %+v vs %+v", i, w.Header, g.Header)
		}
		if !bytes.Equal(w.Payload, g.Payload) {
			t.Errorf("frame %d (seq %d): payloads differ", i, w.Header.Seq)
		}
		switch {
		case (w.Err == nil) != (g.Err == nil):
			t.Errorf("frame %d: err %v vs %v", i, w.Err, g.Err)
		case w.Err != nil && w.Err.Error() != g.Err.Error():
			t.Errorf("frame %d: err %q vs %q", i, w.Err, g.Err)
		}
		if !reflect.DeepEqual(w.Cells, g.Cells) || !reflect.DeepEqual(w.Conf, g.Conf) {
			t.Errorf("frame %d: soft tables differ", i)
		}
	}
	wa, ww := want.RecoveryStats()
	ga, gw := got.RecoveryStats()
	if wa != ga || !reflect.DeepEqual(ww, gw) {
		t.Errorf("ladder stats: sequential (%d, %v), batch (%d, %v)", wa, ww, ga, gw)
	}
}

// TestIngestBatchMatchesSequential pins the IngestBatch contract: for any
// batch size, with recovery off or on, with clean or frame-mixing capture
// streams, the receiver state after IngestBatch is bit-identical to
// sequential Ingest calls — errors, frames, payloads, soft tables and
// ladder stats alike.
func TestIngestBatchMatchesSequential(t *testing.T) {
	// Force multiple workers so the parallel decode + ordered merge path
	// runs even on a single-CPU machine.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	for _, tc := range []struct {
		name   string
		budget int
		rate   float64
		faults bool
	}{
		{"clean_recovery_off", 0, 10, false},
		{"mixed_recovery_off", 0, 20, false},
		{"faulty_recovery_off", 0, 20, true},
		{"clean_recovery_on", DefaultRecoveryBudget, 10, false},
		{"faulty_recovery_on", DefaultRecoveryBudget, 20, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Geometry: testGeometry(t), DisplayRate: 10, AppType: 1, RecoveryBudget: tc.budget}
			c, err := NewCodec(cfg)
			if err != nil {
				t.Fatal(err)
			}
			chCfg := channel.DefaultConfig()
			if tc.faults {
				chCfg.NoiseStdDev = 18
				chCfg.BlurSigma = 1.2
			}
			payloads := randomPayloads(c, 5, 77)
			caps := transmit(t, c, payloads, tc.rate, chCfg)
			imgs := make([]*raster.Image, len(caps))
			for i := range caps {
				imgs[i] = caps[i].Image
			}

			seqRx := NewReceiver(c)
			seqErrs := make([]error, len(imgs))
			for i, img := range imgs {
				seqErrs[i] = seqRx.Ingest(img)
			}
			seqRx.Flush()

			for _, batch := range []int{1, 3, len(imgs)} {
				batchRx := NewReceiver(c)
				var batchErrs []error
				for lo := 0; lo < len(imgs); lo += batch {
					hi := min(lo+batch, len(imgs))
					batchErrs = append(batchErrs, batchRx.IngestBatch(imgs[lo:hi])...)
				}
				batchRx.Flush()

				for i := range seqErrs {
					w, g := seqErrs[i], batchErrs[i]
					if (w == nil) != (g == nil) || (w != nil && w.Error() != g.Error()) {
						t.Errorf("batch=%d capture %d: err %v vs %v", batch, i, w, g)
					}
				}
				sameFrames(t, seqRx, batchRx)
			}
		})
	}
}

// TestReceiverResetMatchesFresh pins Reset: a recycled receiver must
// reproduce a fresh receiver's results bit for bit on the next stream.
func TestReceiverResetMatchesFresh(t *testing.T) {
	c := testCodec(t)
	payloads := randomPayloads(c, 4, 9)
	caps := transmit(t, c, payloads, 20, channel.DefaultConfig())

	recycled := NewReceiver(c)
	for round := 0; round < 3; round++ {
		fresh := NewReceiver(c)
		for _, cap := range caps {
			fe := fresh.Ingest(cap.Image)
			re := recycled.Ingest(cap.Image)
			if (fe == nil) != (re == nil) {
				t.Fatalf("round %d: ingest err fresh=%v recycled=%v", round, fe, re)
			}
		}
		fresh.Flush()
		recycled.Flush()
		sameFrames(t, fresh, recycled)
		recycled.Reset()
	}
}

// TestReceiverSteadyStateAllocFree enforces the hot-path memory contract
// (DESIGN.md §11): once warm, a Reset-recycled receiver ingests captures,
// completes frames and flushes without a single heap allocation.
func TestReceiverSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache at random under -race; the allocation contract is measured without it")
	}
	c := testCodec(t)
	ch := channel.MustNew(channel.DefaultConfig())
	const batch = 4
	caps := make([]*raster.Image, batch)
	for i := range caps {
		f, err := c.EncodeFrame(payloadFor(c, int64(i)), uint16(i), false)
		if err != nil {
			t.Fatal(err)
		}
		caps[i], err = ch.Capture(f.Render())
		if err != nil {
			t.Fatal(err)
		}
	}
	rx := NewReceiver(c)
	process := func() {
		for _, capt := range caps {
			if err := rx.Ingest(capt); err != nil {
				t.Fatal(err)
			}
		}
		rx.Flush()
		for i := 0; i < batch; i++ {
			if _, ok := rx.Frame(uint16(i)); !ok {
				t.Fatalf("frame %d not decoded", i)
			}
		}
		rx.Reset()
	}
	process() // warm scratch buffers and freelists

	// GC off so sync.Pool contents survive the measurement runs.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if n := testing.AllocsPerRun(5, process); n > 0 {
		t.Fatalf("steady-state receiver allocates %.1f times per 4-capture batch, want 0", n)
	}
}
