package core

import (
	"errors"
	"fmt"

	"rainbar/internal/colorspace"
	"rainbar/internal/core/header"
	"rainbar/internal/core/layout"
	"rainbar/internal/geometry"
	"rainbar/internal/obs"
	"rainbar/internal/raster"
)

// GridDecode is the geometry-level decode of one captured image: every
// data cell classified, the header parsed, and the per-row tracking-bar
// colors read. Payload assembly happens later (possibly across captures,
// when rolling shutter mixes frames).
type GridDecode struct {
	// Header is the header of the frame owning the top of the capture.
	// Valid only when HeaderOK (DecodeGridLoose can return grids whose
	// header row was unreadable, e.g. blended by an LCD transition).
	Header header.Header
	// HeaderOK reports whether Header passed its CRCs.
	HeaderOK bool
	// Cells holds the classified color of every data cell, in
	// Geometry.DataCells() order.
	Cells []colorspace.Color
	// BarColors holds the per-grid-row tracking-bar color; valid only
	// where BarOK is true.
	BarColors []colorspace.Color
	// BarOK marks rows whose left and right tracking bars agree. Rows
	// captured mid-transition (LCD blend) usually disagree and cannot be
	// attributed to either frame.
	BarOK []bool
	// Conf holds the classification confidence of every data cell,
	// aligned with Cells. Populated only when the decode-recovery ladder
	// is enabled (Config.RecoveryBudget > 0); nil otherwise.
	Conf []float64
	// TV is the adaptive value threshold used (diagnostics).
	TV float64
	// LocatorMisses counts dead-reckoned code locators (diagnostics).
	LocatorMisses int
	// Sharpness is the capture's focus metric, used by blur assessment to
	// choose between duplicate captures of one frame.
	Sharpness float64
	// Recovery traces the grid-level recovery hypotheses run on this
	// capture (locator re-scan, μ-sweep). Nil when the ladder never ran.
	Recovery *RecoveryTrace
}

// RowOwner returns which logical frame owns grid row r: 0 for the header's
// frame, 1 for the next frame, or -1 when the bar color is inconsistent
// with both (d_t >= 2, §III-D).
func (gd *GridDecode) RowOwner(r int) int {
	return gd.RowOwnerFor(r, gd.Header.Seq)
}

// RowOwnerFor is RowOwner against an assumed top-frame sequence number,
// for receivers that inferred the sequence when the header was unreadable.
func (gd *GridDecode) RowOwnerFor(r int, seq uint16) int {
	if !gd.BarOK[r] {
		return -1
	}
	d := layout.BarDiff(gd.BarColors[r], layout.TrackingBarColor(seq))
	if d <= 1 {
		return d
	}
	return -1
}

// Consistent reports whether at most maxBad rows have inconsistent
// tracking bars; the paper drops captures with d_t >= 2 rows.
func (gd *GridDecode) Consistent(maxBad int) bool {
	bad := 0
	for r := range gd.BarColors {
		if gd.RowOwner(r) < 0 {
			bad++
		}
	}
	return bad <= maxBad
}

// DecodeGrid runs the full §III-C..F pipeline on one captured image:
// brightness assessment, corner-tracker detection, progressive locator
// localization, block localization, and HSV code extraction. An
// unreadable header is an error; streaming receivers that can infer the
// sequence from tracking bars should use DecodeGridLoose.
func (c *Codec) DecodeGrid(img *raster.Image) (*GridDecode, error) {
	gd, err := c.DecodeGridLoose(img)
	if err != nil {
		return nil, err
	}
	if !gd.HeaderOK {
		return nil, fmt.Errorf("core: header unreadable: %w", header.ErrCorrupt)
	}
	return gd, nil
}

// DecodeGridLoose is DecodeGrid except that an unreadable header is not
// fatal: the grid cells and tracking bars are still returned with
// HeaderOK false, so a receiver can attribute the rows by other means.
//
// Captures taken with the phone upside down are recovered transparently:
// the asymmetric corner trackers (green left, red right) reveal a
// half-turn orientation, and the decode reruns on the rotated image.
func (c *Codec) DecodeGridLoose(img *raster.Image) (*GridDecode, error) {
	return c.decodeGridLooseScratch(img, nil)
}

// decodeGridLooseScratch is DecodeGridLoose threading an optional decode
// scratch. With a scratch, the returned grid (and its cell tables) is
// scratch-owned: valid only until the next decode using the same scratch.
// The rotated retry may reuse the scratch because ErrNoCornerTrackers is
// raised before any scratch-owned result is returned.
func (c *Codec) decodeGridLooseScratch(img *raster.Image, sc *decodeScratch) (*GridDecode, error) {
	c.rec.Inc(obs.MCoreCaptures, 1)
	gd, err := c.decodeGridOriented(img, sc)
	if err != nil && errors.Is(err, ErrNoCornerTrackers) {
		if gd2, err2 := c.decodeGridOriented(img.Rotate180(), sc); err2 == nil {
			return gd2, nil
		}
	}
	return gd, err
}

func (c *Codec) decodeGridOriented(img *raster.Image, sc *decodeScratch) (*GridDecode, error) {
	gd, _, _, err := c.decodeGridFix(img, c.newLadder(), sc)
	return gd, err
}

// decodeGridFix is decodeGridOriented exposing the geometric fix, so the
// recovery ladder can re-extract cells under alternative thresholds. Two
// grid-level hypotheses run against the caller's ladder: a global locator
// re-scan when progressive prediction loses the middle column, and a
// proactive μ-sweep when the extraction classifies more data cells black
// than the erasure budget could ever absorb (a mis-estimated T_v is then
// the prime suspect).
func (c *Codec) decodeGridFix(img *raster.Image, lad *ladder, sc *decodeScratch) (*GridDecode, *detection, *locatorMap, error) {
	endDetect := c.rec.Span(obsSpanDetect)
	det, err := c.detect(img, sc)
	endDetect()
	if err != nil {
		return nil, nil, nil, err
	}
	endLocate := c.rec.Span(obsSpanLocate)
	lm, err := c.locateAll(img, det, sc)
	endLocate()
	if err != nil {
		if !errors.Is(err, ErrLocatorLost) || c.cfg.RecoveryErasuresOnly || !lad.tryAttempt(HypRescan) {
			return nil, nil, nil, err
		}
		lm, err = c.locateAllMode(img, det, true, sc)
		if err != nil {
			return nil, nil, nil, err
		}
		lad.win(HypRescan)
	}
	// One Sharpness pass serves the base extraction and every μ-sweep
	// re-extraction of the same capture.
	sharp := img.Sharpness()
	endExtract := c.rec.Span(obsSpanExtract)
	gd, err := c.extractGrid(img, det, lm, sharp, sc)
	endExtract()
	if err != nil {
		return gd, det, lm, err
	}
	if c.cfg.RecoveryBudget > 0 && det.tvOK && !c.cfg.RecoveryErasuresOnly && c.erasureOverflow(gd.Cells) {
		bestBad := nonDataCells(gd.Cells)
		for _, cand := range recoveryMus {
			if bestBad == 0 || !lad.tryAttempt(cand.hyp) {
				break
			}
			det2 := *det
			det2.tv = colorspace.TVForMu(det.vb, det.vo, cand.mu)
			// sc stays out of re-extractions: gd may be scratch-owned, and a
			// second scratch extraction would overwrite it mid-comparison.
			gd2, err2 := c.extractGrid(img, &det2, lm, sharp, nil)
			if err2 != nil {
				continue
			}
			// Adopt only a strictly less suspect reading.
			if bad := nonDataCells(gd2.Cells); bad < bestBad {
				gd, bestBad = gd2, bad
				lad.win(cand.hyp)
			}
		}
	}
	gd.Recovery = lad.result()
	return gd, det, lm, nil
}

// nonDataCells counts cells that classified to a non-data color (black):
// each is a guaranteed misread, so the count measures how suspect a grid
// reading is.
func nonDataCells(cells []colorspace.Color) int {
	n := 0
	for _, col := range cells {
		if !col.IsData() {
			n++
		}
	}
	return n
}

// erasureOverflow reports whether any single RS message carries more
// black-suspect bytes than the erasure budget accepts — the condition
// under which the legacy policy dropped every erasure and decode becomes
// a coin flip.
func (c *Codec) erasureOverflow(cells []colorspace.Color) bool {
	capE := c.cfg.RSParity - 2
	off := 0
	for _, k := range c.msgSizes {
		n := k + c.cfg.RSParity
		count := 0
		last := -1
		lo, hi := off*4, (off+n)*4
		if hi > len(cells) {
			hi = len(cells)
		}
		for i := lo; i < hi; i++ {
			if cells[i].IsData() {
				continue
			}
			if b := i / 4; b != last {
				count++
				last = b
			}
		}
		if count > capE {
			return true
		}
		off += n
	}
	return false
}

// sampleCell classifies the mean-filtered pixel under a grid cell's
// capture-space center. A method rather than a closure: the decode hot
// path calls it per cell, and a closure capturing img/cl/lm would escape
// to the heap on every extraction.
func (c *Codec) sampleCell(img *raster.Image, cl colorspace.Classifier, lm *locatorMap, row, col int) colorspace.Color {
	p := c.cellCenter(lm, row, col)
	return cl.ClassifyRGB(img.MeanFilterAt(int(p.X+0.5), int(p.Y+0.5)))
}

// extractGrid is the sampling/classification back half of the grid decode:
// header strip, data cells and tracking bars, given a geometric fix. sharp
// is the capture's precomputed focus metric (hoisted so μ-sweep
// re-extractions of one capture share a single Sharpness pass). With a
// scratch, the returned GridDecode and all its tables are scratch-owned.
func (c *Codec) extractGrid(img *raster.Image, det *detection, lm *locatorMap, sharp float64, sc *decodeScratch) (*GridDecode, error) {
	g := c.cfg.Geometry
	cl := colorspace.NewClassifier(det.tv)

	// Header strip.
	hdrCells := g.HeaderCells()
	var strip []colorspace.Color
	if sc != nil {
		strip = grow(sc.strip, len(hdrCells))
		sc.strip = strip
	} else {
		//lint:allow RB-P1 cold fallback: sc==nil only on the one-shot public API, never the receiver loop
		strip = make([]colorspace.Color, len(hdrCells))
	}
	for i, cell := range hdrCells {
		strip[i] = c.sampleCell(img, cl, lm, cell.Row, cell.Col)
	}
	hdr, hdrErr := header.DecodeColors(strip)

	dataCells := g.DataCells()
	var gd *GridDecode
	if sc != nil {
		gd = &sc.gd
	} else {
		gd = &GridDecode{}
	}
	cells := grow(gd.Cells, len(dataCells))
	barColors := grow(gd.BarColors, g.Rows())
	barOK := grow(gd.BarOK, g.Rows())
	var conf []float64
	if c.cfg.RecoveryBudget > 0 {
		conf = grow(gd.Conf, len(dataCells))
	}
	// Bar tables are written sparsely below; cells/conf are fully written.
	clear(barColors)
	clear(barOK)
	*gd = GridDecode{
		Header:        hdr,
		HeaderOK:      hdrErr == nil,
		Cells:         cells,
		BarColors:     barColors,
		BarOK:         barOK,
		Conf:          conf,
		TV:            det.tv,
		LocatorMisses: lm.misses,
		Sharpness:     sharp,
	}
	if c.cfg.RecoveryBudget > 0 {
		// Soft extraction: same colors (ClassifyRGBSoft's class is pinned
		// bit-identical to ClassifyRGB) plus the per-cell confidence the
		// recovery ladder ranks erasures by.
		for i, cell := range dataCells {
			p := c.cellCenter(lm, cell.Row, cell.Col)
			gd.Cells[i], gd.Conf[i] = cl.ClassifyRGBSoft(img.MeanFilterAt(int(p.X+0.5), int(p.Y+0.5)))
		}
	} else {
		for i, cell := range dataCells {
			gd.Cells[i] = c.sampleCell(img, cl, lm, cell.Row, cell.Col)
		}
	}

	if c.obsOn {
		if hdrErr != nil {
			c.rec.Inc(obs.MCoreHeaderCRCFailures, 1)
		}
		c.rec.Observe(obs.MCoreLocatorMisses, float64(lm.misses))
		// Confusion tallies are batched per frame: one local histogram
		// over the cells, then one Inc per color that appeared.
		var tally [colorspace.Black + 1]int64
		for _, col := range gd.Cells {
			if int(col) < len(tally) {
				tally[col]++
			}
		}
		for col, n := range tally {
			if n > 0 {
				c.rec.Inc(obsCellSeries[col], n)
			}
		}
		if len(gd.Conf) > 0 {
			var sum float64
			for _, v := range gd.Conf {
				sum += v
			}
			c.rec.Observe(obs.MCoreCellConfidence, 100*sum/float64(len(gd.Conf)))
		}
	}

	// Tracking bars: a row is attributable only when its left and right
	// bar blocks agree on a data color. Rows captured mid-transition (LCD
	// blend) or under heavy noise disagree and are left unowned — another
	// capture supplies them.
	for r := 0; r < g.Rows(); r++ {
		left := c.sampleCell(img, cl, lm, r, 0)
		right := c.sampleCell(img, cl, lm, r, g.Cols()-1)
		if left == right && left.IsData() {
			gd.BarColors[r] = left
			gd.BarOK[r] = true
		}
	}
	return gd, nil
}

// LocateCenters runs detection and progressive localization only and
// returns the estimated capture-space center of every data cell, aligned
// with Geometry.DataCells(). Used by the localization-error experiment
// (paper Fig. 3/4) to compare against ground truth.
func (c *Codec) LocateCenters(img *raster.Image) ([]geometry.Point, error) {
	det, err := c.detect(img, nil)
	if err != nil {
		return nil, err
	}
	lm, err := c.locateAll(img, det, nil)
	if err != nil {
		return nil, err
	}
	cells := c.cfg.Geometry.DataCells()
	out := make([]geometry.Point, len(cells))
	for i, cell := range cells {
		out[i] = c.cellCenter(lm, cell.Row, cell.Col)
	}
	return out, nil
}

// AssemblePayload turns a complete set of data-cell colors into the frame
// payload: pack 2-bit symbols, RS-decode each message, verify the frame
// checksum from hdr.
//
// Data cells that classified *black* are soft information: black never
// encodes data, so such a cell was misread (blur, shadow, blend) and its
// byte is handed to Reed-Solomon as an erasure — an erasure costs half
// the parity budget of an unknown error, so flagging them doubles the
// correction power exactly where the capture was weakest.
func (c *Codec) AssemblePayload(cells []colorspace.Color, hdr header.Header) ([]byte, error) {
	stream, suspect, err := c.packStream(cells)
	if err != nil {
		return nil, err
	}
	return c.decodePayload(stream, suspect, hdr.FrameChecksum)
}

// packStream packs data-cell colors into the frame's data-area byte
// stream, marking bytes touched by a black (non-data) cell as suspect.
func (c *Codec) packStream(cells []colorspace.Color) (stream []byte, suspect []bool, err error) {
	g := c.cfg.Geometry
	if len(cells) != len(g.DataCells()) {
		return nil, nil, fmt.Errorf("core: %d cells, want %d", len(cells), len(g.DataCells()))
	}
	stream = make([]byte, g.DataCapacityBytes())
	suspect = make([]bool, len(stream))
	c.packStreamInto(cells, stream, suspect)
	return stream, suspect, nil
}

// packStreamInto is packStream writing into caller-provided buffers (both
// DataCapacityBytes long; cleared here).
func (c *Codec) packStreamInto(cells []colorspace.Color, stream []byte, suspect []bool) {
	clear(stream)
	clear(suspect)
	for i, col := range cells {
		if i/4 >= len(stream) {
			break
		}
		var bits byte
		if col.IsData() {
			bits = col.Bits()
		} else {
			suspect[i/4] = true
		}
		stream[i/4] |= bits << uint(6-2*(i%4))
	}
}

// DecodeFrame decodes a single clean (unmixed) capture end to end. For
// captures that may mix two frames, use a Receiver instead. When the
// decode-recovery ladder is enabled (Config.RecoveryBudget > 0) failed
// decodes retry under the ladder's hypotheses; DecodeFrameRecover
// additionally reports the hypothesis trace.
func (c *Codec) DecodeFrame(img *raster.Image) (header.Header, []byte, error) {
	hdr, payload, _, err := c.DecodeFrameRecover(img)
	return hdr, payload, err
}

// DecodeFrameRecover is DecodeFrame with the full decode-recovery ladder
// and its trace. One budget (Config.RecoveryBudget) covers the whole
// operation, spent in ladder order: locator re-scan (during the grid
// decode), ranked erasures, then the μ-sweep — each alternative threshold
// re-extracts the grid and re-runs assembly. With RecoveryBudget 0 every
// hypothesis is refused, the trace is nil, and behavior is bit-identical
// to the single-shot decoder.
func (c *Codec) DecodeFrameRecover(img *raster.Image) (header.Header, []byte, *RecoveryTrace, error) {
	c.rec.Inc(obs.MCoreCaptures, 1)
	lad := c.newLadder()
	gd, det, lm, err := c.decodeGridFix(img, lad, nil)
	if err != nil && errors.Is(err, ErrNoCornerTrackers) {
		rot := img.Rotate180()
		if gd2, det2, lm2, err2 := c.decodeGridFix(rot, lad, nil); err2 == nil {
			gd, det, lm, err = gd2, det2, lm2, nil
			img = rot
		}
	}
	if err != nil {
		return header.Header{}, nil, lad.result(), err
	}
	if !gd.HeaderOK {
		return header.Header{}, nil, lad.result(), fmt.Errorf("core: header unreadable: %w", header.ErrCorrupt)
	}
	payload, err := c.assembleWithLadder(gd.Cells, gd.Conf, gd.Header, lad)
	if err == nil {
		return gd.Header, payload, lad.result(), nil
	}
	// Failure-driven μ-sweep: re-extract under the alternative thresholds
	// and retry assembly. The header stays the base pass's — it already
	// passed its CRCs there.
	if det.tvOK && !c.cfg.RecoveryErasuresOnly {
		for _, cand := range recoveryMus {
			if !lad.tryAttempt(cand.hyp) {
				break
			}
			det2 := *det
			det2.tv = colorspace.TVForMu(det.vb, det.vo, cand.mu)
			gd2, err2 := c.extractGrid(img, &det2, lm, gd.Sharpness, nil)
			if err2 != nil {
				continue
			}
			if payload2, e := c.assembleWithLadder(gd2.Cells, gd2.Conf, gd.Header, lad); e == nil {
				lad.win(cand.hyp)
				return gd.Header, payload2, lad.result(), nil
			}
		}
	}
	return gd.Header, nil, lad.result(), err
}
