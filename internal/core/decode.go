package core

import (
	"errors"
	"fmt"

	"rainbar/internal/colorspace"
	"rainbar/internal/core/header"
	"rainbar/internal/core/layout"
	"rainbar/internal/geometry"
	"rainbar/internal/obs"
	"rainbar/internal/raster"
)

// GridDecode is the geometry-level decode of one captured image: every
// data cell classified, the header parsed, and the per-row tracking-bar
// colors read. Payload assembly happens later (possibly across captures,
// when rolling shutter mixes frames).
type GridDecode struct {
	// Header is the header of the frame owning the top of the capture.
	// Valid only when HeaderOK (DecodeGridLoose can return grids whose
	// header row was unreadable, e.g. blended by an LCD transition).
	Header header.Header
	// HeaderOK reports whether Header passed its CRCs.
	HeaderOK bool
	// Cells holds the classified color of every data cell, in
	// Geometry.DataCells() order.
	Cells []colorspace.Color
	// BarColors holds the per-grid-row tracking-bar color; valid only
	// where BarOK is true.
	BarColors []colorspace.Color
	// BarOK marks rows whose left and right tracking bars agree. Rows
	// captured mid-transition (LCD blend) usually disagree and cannot be
	// attributed to either frame.
	BarOK []bool
	// TV is the adaptive value threshold used (diagnostics).
	TV float64
	// LocatorMisses counts dead-reckoned code locators (diagnostics).
	LocatorMisses int
	// Sharpness is the capture's focus metric, used by blur assessment to
	// choose between duplicate captures of one frame.
	Sharpness float64
}

// RowOwner returns which logical frame owns grid row r: 0 for the header's
// frame, 1 for the next frame, or -1 when the bar color is inconsistent
// with both (d_t >= 2, §III-D).
func (gd *GridDecode) RowOwner(r int) int {
	return gd.RowOwnerFor(r, gd.Header.Seq)
}

// RowOwnerFor is RowOwner against an assumed top-frame sequence number,
// for receivers that inferred the sequence when the header was unreadable.
func (gd *GridDecode) RowOwnerFor(r int, seq uint16) int {
	if !gd.BarOK[r] {
		return -1
	}
	d := layout.BarDiff(gd.BarColors[r], layout.TrackingBarColor(seq))
	if d <= 1 {
		return d
	}
	return -1
}

// Consistent reports whether at most maxBad rows have inconsistent
// tracking bars; the paper drops captures with d_t >= 2 rows.
func (gd *GridDecode) Consistent(maxBad int) bool {
	bad := 0
	for r := range gd.BarColors {
		if gd.RowOwner(r) < 0 {
			bad++
		}
	}
	return bad <= maxBad
}

// DecodeGrid runs the full §III-C..F pipeline on one captured image:
// brightness assessment, corner-tracker detection, progressive locator
// localization, block localization, and HSV code extraction. An
// unreadable header is an error; streaming receivers that can infer the
// sequence from tracking bars should use DecodeGridLoose.
func (c *Codec) DecodeGrid(img *raster.Image) (*GridDecode, error) {
	gd, err := c.DecodeGridLoose(img)
	if err != nil {
		return nil, err
	}
	if !gd.HeaderOK {
		return nil, fmt.Errorf("core: header unreadable: %w", header.ErrCorrupt)
	}
	return gd, nil
}

// DecodeGridLoose is DecodeGrid except that an unreadable header is not
// fatal: the grid cells and tracking bars are still returned with
// HeaderOK false, so a receiver can attribute the rows by other means.
//
// Captures taken with the phone upside down are recovered transparently:
// the asymmetric corner trackers (green left, red right) reveal a
// half-turn orientation, and the decode reruns on the rotated image.
func (c *Codec) DecodeGridLoose(img *raster.Image) (*GridDecode, error) {
	c.rec.Inc(obs.MCoreCaptures, 1)
	gd, err := c.decodeGridOriented(img)
	if err != nil && errors.Is(err, ErrNoCornerTrackers) {
		if gd2, err2 := c.decodeGridOriented(img.Rotate180()); err2 == nil {
			return gd2, nil
		}
	}
	return gd, err
}

func (c *Codec) decodeGridOriented(img *raster.Image) (*GridDecode, error) {
	endDetect := c.rec.Span(obsSpanDetect)
	det, err := c.detect(img)
	endDetect()
	if err != nil {
		return nil, err
	}
	endLocate := c.rec.Span(obsSpanLocate)
	lm, err := c.locateAll(img, det)
	endLocate()
	if err != nil {
		return nil, err
	}
	endExtract := c.rec.Span(obsSpanExtract)
	gd, err := c.extractGrid(img, det, lm)
	endExtract()
	return gd, err
}

// extractGrid is the sampling/classification back half of the grid decode:
// header strip, data cells and tracking bars, given a geometric fix.
func (c *Codec) extractGrid(img *raster.Image, det *detection, lm *locatorMap) (*GridDecode, error) {
	g := c.cfg.Geometry
	cl := colorspace.NewClassifier(det.tv)

	sample := func(row, col int) colorspace.Color {
		p := c.cellCenter(lm, row, col)
		return cl.ClassifyRGB(img.MeanFilterAt(int(p.X+0.5), int(p.Y+0.5)))
	}

	// Header strip.
	hdrCells := g.HeaderCells()
	strip := make([]colorspace.Color, len(hdrCells))
	for i, cell := range hdrCells {
		strip[i] = sample(cell.Row, cell.Col)
	}
	hdr, hdrErr := header.DecodeColors(strip)

	gd := &GridDecode{
		Header:        hdr,
		HeaderOK:      hdrErr == nil,
		Cells:         make([]colorspace.Color, len(g.DataCells())),
		BarColors:     make([]colorspace.Color, g.Rows()),
		BarOK:         make([]bool, g.Rows()),
		TV:            det.tv,
		LocatorMisses: lm.misses,
		Sharpness:     img.Sharpness(),
	}
	for i, cell := range g.DataCells() {
		gd.Cells[i] = sample(cell.Row, cell.Col)
	}

	if c.obsOn {
		if hdrErr != nil {
			c.rec.Inc(obs.MCoreHeaderCRCFailures, 1)
		}
		c.rec.Observe(obs.MCoreLocatorMisses, float64(lm.misses))
		// Confusion tallies are batched per frame: one local histogram
		// over the cells, then one Inc per color that appeared.
		var tally [colorspace.Black + 1]int64
		for _, col := range gd.Cells {
			if int(col) < len(tally) {
				tally[col]++
			}
		}
		for col, n := range tally {
			if n > 0 {
				c.rec.Inc(obsCellSeries[col], n)
			}
		}
	}

	// Tracking bars: a row is attributable only when its left and right
	// bar blocks agree on a data color. Rows captured mid-transition (LCD
	// blend) or under heavy noise disagree and are left unowned — another
	// capture supplies them.
	for r := 0; r < g.Rows(); r++ {
		left := sample(r, 0)
		right := sample(r, g.Cols()-1)
		if left == right && left.IsData() {
			gd.BarColors[r] = left
			gd.BarOK[r] = true
		}
	}
	return gd, nil
}

// LocateCenters runs detection and progressive localization only and
// returns the estimated capture-space center of every data cell, aligned
// with Geometry.DataCells(). Used by the localization-error experiment
// (paper Fig. 3/4) to compare against ground truth.
func (c *Codec) LocateCenters(img *raster.Image) ([]geometry.Point, error) {
	det, err := c.detect(img)
	if err != nil {
		return nil, err
	}
	lm, err := c.locateAll(img, det)
	if err != nil {
		return nil, err
	}
	cells := c.cfg.Geometry.DataCells()
	out := make([]geometry.Point, len(cells))
	for i, cell := range cells {
		out[i] = c.cellCenter(lm, cell.Row, cell.Col)
	}
	return out, nil
}

// AssemblePayload turns a complete set of data-cell colors into the frame
// payload: pack 2-bit symbols, RS-decode each message, verify the frame
// checksum from hdr.
//
// Data cells that classified *black* are soft information: black never
// encodes data, so such a cell was misread (blur, shadow, blend) and its
// byte is handed to Reed-Solomon as an erasure — an erasure costs half
// the parity budget of an unknown error, so flagging them doubles the
// correction power exactly where the capture was weakest.
func (c *Codec) AssemblePayload(cells []colorspace.Color, hdr header.Header) ([]byte, error) {
	g := c.cfg.Geometry
	if len(cells) != len(g.DataCells()) {
		return nil, fmt.Errorf("core: %d cells, want %d", len(cells), len(g.DataCells()))
	}
	stream := make([]byte, g.DataCapacityBytes())
	suspect := make([]bool, len(stream))
	for i, col := range cells {
		if i/4 >= len(stream) {
			break
		}
		var bits byte
		if col.IsData() {
			bits = col.Bits()
		} else {
			suspect[i/4] = true
		}
		stream[i/4] |= bits << uint(6-2*(i%4))
	}
	return c.decodePayload(stream, suspect, hdr.FrameChecksum)
}

// DecodeFrame decodes a single clean (unmixed) capture end to end. For
// captures that may mix two frames, use a Receiver instead.
func (c *Codec) DecodeFrame(img *raster.Image) (header.Header, []byte, error) {
	gd, err := c.DecodeGrid(img)
	if err != nil {
		return header.Header{}, nil, err
	}
	payload, err := c.AssemblePayload(gd.Cells, gd.Header)
	if err != nil {
		return gd.Header, nil, err
	}
	return gd.Header, payload, nil
}
