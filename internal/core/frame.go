package core

import (
	"fmt"

	"rainbar/internal/colorspace"
	"rainbar/internal/core/header"
	"rainbar/internal/core/layout"
	"rainbar/internal/crc"
	"rainbar/internal/obs"
	"rainbar/internal/raster"
	"rainbar/internal/rs"
)

// Frame is one fully laid-out RainBar barcode: a color per grid cell.
type Frame struct {
	geo    *layout.Geometry
	hdr    header.Header
	colors []colorspace.Color // rows*cols, row-major
}

// Header returns the frame's header.
func (f *Frame) Header() header.Header { return f.hdr }

// ColorAt returns the color of grid cell (r, c).
func (f *Frame) ColorAt(r, c int) colorspace.Color {
	return f.colors[r*f.geo.Cols()+c]
}

// Render paints the frame at full screen resolution.
func (f *Frame) Render() *raster.Image {
	g := f.geo
	bs := g.BlockSize()
	img := raster.New(g.Cols()*bs, g.Rows()*bs)
	for r := 0; r < g.Rows(); r++ {
		for c := 0; c < g.Cols(); c++ {
			img.FillRect(c*bs, r*bs, bs, bs, colorspace.Paint(f.ColorAt(r, c)))
		}
	}
	return img
}

// EncodeFrame builds one frame carrying payload (at most FrameCapacity
// bytes; shorter payloads are zero-padded). seq and last populate the
// header; the tracking-bar color follows seq.
func (c *Codec) EncodeFrame(payload []byte, seq uint16, last bool) (*Frame, error) {
	if len(payload) > c.capacity {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(payload), c.capacity)
	}
	if seq > header.MaxSeq {
		return nil, fmt.Errorf("core: sequence %d out of range", seq)
	}
	padded := make([]byte, c.capacity)
	copy(padded, payload)

	stream, err := c.encodeStream(padded)
	if err != nil {
		return nil, err
	}

	hdr := header.Header{
		Seq:           seq,
		Last:          last,
		DisplayRate:   c.cfg.DisplayRate,
		AppType:       c.cfg.AppType,
		FrameChecksum: crc.Sum16(padded),
	}
	return c.buildFrame(hdr, stream)
}

// encodeStream RS-encodes the padded payload into the frame's data-area
// byte stream (exactly DataCapacityBytes long; trailing dead padding is
// zero).
func (c *Codec) encodeStream(padded []byte) ([]byte, error) {
	g := c.cfg.Geometry
	stream := make([]byte, 0, g.DataCapacityBytes())
	off := 0
	for _, k := range c.msgSizes {
		msg, err := c.rsc.Encode(padded[off : off+k])
		if err != nil {
			return nil, fmt.Errorf("core encode: %w", err)
		}
		stream = append(stream, msg...)
		off += k
	}
	for len(stream) < g.DataCapacityBytes() {
		stream = append(stream, 0)
	}
	return stream, nil
}

// buildFrame paints every structural and data cell.
func (c *Codec) buildFrame(hdr header.Header, stream []byte) (*Frame, error) {
	g := c.cfg.Geometry
	f := &Frame{
		geo:    g,
		hdr:    hdr,
		colors: make([]colorspace.Color, g.Rows()*g.Cols()),
	}
	bar := hdr.TrackingBar()
	for r := 0; r < g.Rows(); r++ {
		for c2 := 0; c2 < g.Cols(); c2++ {
			var col colorspace.Color
			switch g.KindAt(r, c2) {
			case layout.KindTrackingBar:
				col = bar
			case layout.KindCTCenter, layout.KindLocator:
				col = colorspace.Black
			case layout.KindCTRing:
				if c2 < g.Cols()/2 { // left tracker
					col = layout.CTRingColorLeft
				} else {
					col = layout.CTRingColorRight
				}
			default:
				col = colorspace.White // overwritten below for header/data
			}
			f.colors[r*g.Cols()+c2] = col
		}
	}

	hdrColors, err := hdr.EncodeColors(len(g.HeaderCells()))
	if err != nil {
		return nil, fmt.Errorf("core encode: %w", err)
	}
	for i, cell := range g.HeaderCells() {
		f.colors[cell.Row*g.Cols()+cell.Col] = hdrColors[i]
	}

	dataCells := g.DataCells()
	for i, cell := range dataCells {
		byteIdx := i / 4
		shift := uint(6 - 2*(i%4))
		var bits byte
		if byteIdx < len(stream) {
			bits = stream[byteIdx] >> shift
		}
		f.colors[cell.Row*g.Cols()+cell.Col] = colorspace.FromBits(bits)
	}
	return f, nil
}

// EncodeAll splits data into consecutive frames. Sequence numbers start at
// startSeq and the final frame carries the Last flag.
func (c *Codec) EncodeAll(data []byte, startSeq uint16) ([]*Frame, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty payload")
	}
	n := (len(data) + c.capacity - 1) / c.capacity
	frames := make([]*Frame, 0, n)
	for i := 0; i < n; i++ {
		lo := i * c.capacity
		hi := lo + c.capacity
		if hi > len(data) {
			hi = len(data)
		}
		seq := (startSeq + uint16(i)) & header.MaxSeq
		f, err := c.EncodeFrame(data[lo:hi], seq, i == n-1)
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// planFunc enumerates, in priority order, the erasure sets to try for the
// RS message occupying stream[off:off+n]. Plans run until one decodes; a
// nil plan means errors-only decoding.
type planFunc func(off, n int) [][]int

// decodePayload reverses encodeStream: split the data-area stream into RS
// messages, correct each, and verify the header's frame checksum. suspect
// marks stream bytes containing black-misread cells; they are passed to
// RS as erasures when few enough to help (erasures beyond the parity
// budget would guarantee failure, so a message with too many falls back
// to errors-only decoding).
func (c *Codec) decodePayload(stream []byte, suspect []bool, want uint16) ([]byte, error) {
	return c.decodeWithPlans(stream, want, c.legacyPlans(suspect))
}

// legacyPlans is the single-shot erasure policy: guess every black-suspect
// byte when the per-message count fits the parity budget (then retry
// blind), and decode errors-only when there are none or too many. The
// recovery ladder's rankedPlans subsumes this all-or-nothing drop.
func (c *Codec) legacyPlans(suspect []bool) planFunc {
	return func(off, n int) [][]int {
		if suspect == nil {
			return [][]int{nil}
		}
		var erasures []int
		for j := 0; j < n; j++ {
			if suspect[off+j] {
				erasures = append(erasures, j)
			}
		}
		if len(erasures) == 0 || len(erasures) > c.cfg.RSParity-2 {
			return [][]int{nil}
		}
		// The erasure guesses may themselves be wrong; retry blind.
		return [][]int{erasures, nil}
	}
}

// asmScratch owns the payload-assembly intermediates of the recovery-off
// hot path: the packed stream and suspect map, the per-message erasure
// list, the RS working buffers and the assembled payload.
type asmScratch struct {
	stream   []byte
	suspect  []bool
	erasures []int
	payload  []byte
	rs       rs.Scratch
}

// assemblePayloadScratch is AssemblePayload drawing every intermediate
// from as — bit-identical results, no steady-state allocation. The
// returned payload aliases as.payload: copy it before the next assembly
// with the same scratch.
func (c *Codec) assemblePayloadScratch(cells []colorspace.Color, hdr header.Header, as *asmScratch) ([]byte, error) {
	g := c.cfg.Geometry
	if len(cells) != len(g.DataCells()) {
		return nil, fmt.Errorf("core: %d cells, want %d", len(cells), len(g.DataCells()))
	}
	as.stream = grow(as.stream, g.DataCapacityBytes())
	as.suspect = grow(as.suspect, g.DataCapacityBytes())
	c.packStreamInto(cells, as.stream, as.suspect)
	return c.decodeLegacyScratch(as.stream, as.suspect, hdr.FrameChecksum, as)
}

// decodeLegacyScratch is decodePayload's legacy-plan cascade (every
// black-suspect byte erased when the count fits the parity budget, then a
// blind retry) inlined over the scratch buffers. Plan order, correction
// counters and error values match decodeWithPlans(c.legacyPlans(suspect))
// bit for bit.
func (c *Codec) decodeLegacyScratch(stream []byte, suspect []bool, want uint16, as *asmScratch) ([]byte, error) {
	endCorrect := c.rec.Span(obsSpanCorrect)
	var corrected, erased int64
	defer func() {
		endCorrect()
		if corrected > 0 {
			c.rec.Inc(obs.MCoreRSErrorsCorrected, corrected)
		}
		if erased > 0 {
			c.rec.Inc(obs.MCoreRSErasures, erased)
		}
	}()

	if cap(as.payload) < c.capacity {
		as.payload = make([]byte, 0, c.capacity)
	}
	payload := as.payload[:0]
	off := 0
	for _, k := range c.msgSizes {
		n := k + c.cfg.RSParity
		erasures := as.erasures[:0]
		for j := 0; j < n; j++ {
			if suspect[off+j] {
				erasures = append(erasures, j)
			}
		}
		as.erasures = erasures
		plan := erasures
		if len(erasures) == 0 || len(erasures) > c.cfg.RSParity-2 {
			plan = nil
		}
		data, fixed, err := c.rsc.DecodeCountedScratch(stream[off:off+n], plan, &as.rs)
		if err != nil && plan != nil {
			// The erasure guesses may themselves be wrong; retry blind.
			plan = nil
			data, fixed, err = c.rsc.DecodeCountedScratch(stream[off:off+n], nil, &as.rs)
		}
		if err != nil {
			as.payload = payload
			return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		corrected += int64(fixed)
		erased += int64(len(plan))
		// data aliases the RS scratch; append copies it out before the next
		// message reuses the buffer.
		payload = append(payload, data...)
		off += n
	}
	as.payload = payload
	if crc.Sum16(payload) != want {
		return nil, fmt.Errorf("%w: frame checksum mismatch", ErrBadFrame)
	}
	return payload, nil
}

// decodeWithPlans is the shared RS decode cascade: for each message, try
// the erasure plans in order until one decodes, then verify the frame
// checksum over the assembled payload.
func (c *Codec) decodeWithPlans(stream []byte, want uint16, plans planFunc) ([]byte, error) {
	endCorrect := c.rec.Span(obsSpanCorrect)
	var corrected, erased int64
	defer func() {
		endCorrect()
		if corrected > 0 {
			c.rec.Inc(obs.MCoreRSErrorsCorrected, corrected)
		}
		if erased > 0 {
			c.rec.Inc(obs.MCoreRSErasures, erased)
		}
	}()

	payload := make([]byte, 0, c.capacity)
	off := 0
	for _, k := range c.msgSizes {
		n := k + c.cfg.RSParity
		var data []byte
		var err error
		for _, plan := range plans(off, n) {
			var fixed int
			data, fixed, err = c.rsc.DecodeCounted(stream[off:off+n], plan)
			if err == nil {
				corrected += int64(fixed)
				erased += int64(len(plan))
				break
			}
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		payload = append(payload, data...)
		off += n
	}
	if crc.Sum16(payload) != want {
		return nil, fmt.Errorf("%w: frame checksum mismatch", ErrBadFrame)
	}
	return payload, nil
}
