//go:build !race

package core

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
