package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"rainbar/internal/camera"
	"rainbar/internal/channel"
	"rainbar/internal/raster"
	"rainbar/internal/screen"
)

// transmit renders frames, displays them at rateFPS, films them with the
// default camera through cfg, and returns the captures.
func transmit(t *testing.T, c *Codec, payloads [][]byte, rateFPS float64, cfg channel.Config) []camera.Capture {
	t.Helper()
	frames := make([]*raster.Image, len(payloads))
	for i, p := range payloads {
		f, err := c.EncodeFrame(p, uint16(i), i == len(payloads)-1)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f.Render()
	}
	disp, err := screen.NewDisplay(frames, rateFPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	cam := camera.Default()
	cam.Phase = 3 * time.Millisecond
	caps, err := cam.Film(disp, channel.MustNew(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return caps
}

func randomPayloads(c *Codec, n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, c.FrameCapacity())
		rng.Read(out[i])
	}
	return out
}

func runReceiver(t *testing.T, c *Codec, caps []camera.Capture, disableSync bool) *Receiver {
	t.Helper()
	rx := NewReceiver(c)
	rx.DisableSync = disableSync
	for _, cap := range caps {
		// Individual captures may fail (e.g. severely mixed header rows);
		// the receiver keeps going, as the real system would.
		_ = rx.Ingest(cap.Image)
	}
	rx.Flush()
	return rx
}

func recoveredCount(rx *Receiver, payloads [][]byte) int {
	n := 0
	for i, want := range payloads {
		f, ok := rx.Frame(uint16(i))
		if ok && f.Err == nil && bytes.Equal(f.Payload, want) {
			n++
		}
	}
	return n
}

func TestReceiverSlowDisplayRecoversAll(t *testing.T) {
	// f_d = 10 <= f_c/2 = 15: every frame is captured cleanly at least
	// twice; blur assessment picks the best and all frames must decode.
	c := testCodec(t)
	payloads := randomPayloads(c, 4, 11)
	caps := transmit(t, c, payloads, 10, channel.DefaultConfig())
	rx := runReceiver(t, c, caps, false)
	if got := recoveredCount(rx, payloads); got != len(payloads) {
		t.Fatalf("recovered %d/%d frames at f_d=10", got, len(payloads))
	}
}

func TestReceiverFastDisplayUsesTrackingBars(t *testing.T) {
	// f_d = 20 > f_c/2: captures are mixed; only tracking-bar sync can
	// reassemble the frames.
	c := testCodec(t)
	payloads := randomPayloads(c, 6, 12)
	caps := transmit(t, c, payloads, 20, channel.DefaultConfig())

	rx := runReceiver(t, c, caps, false)
	got := recoveredCount(rx, payloads)
	if got < len(payloads)-1 { // the last frame's tail may miss its bottom capture
		t.Fatalf("recovered %d/%d frames at f_d=20 with sync", got, len(payloads))
	}
}

func TestSyncAblationCollapsesAtHighRate(t *testing.T) {
	// E16: disabling tracking-bar sync must lose frames once f_d gets
	// close to f_c. At f_d = 25 (f_c = 30) the display period barely
	// exceeds the 30 ms readout, so clean captures are rare and the
	// whole-frame path starves; tracking-bar reassembly keeps working.
	c := testCodec(t)
	payloads := randomPayloads(c, 6, 13)
	caps := transmit(t, c, payloads, 25, channel.DefaultConfig())

	withSync := recoveredCount(runReceiver(t, c, caps, false), payloads)
	without := recoveredCount(runReceiver(t, c, caps, true), payloads)
	if without >= withSync {
		t.Fatalf("sync off recovered %d, sync on %d; ablation shows no benefit", without, withSync)
	}
}

func TestReceiverFrameOrdering(t *testing.T) {
	c := testCodec(t)
	payloads := randomPayloads(c, 3, 14)
	caps := transmit(t, c, payloads, 10, channel.DefaultConfig())
	rx := runReceiver(t, c, caps, false)
	frames := rx.Frames()
	for i := 1; i < len(frames); i++ {
		if frames[i].Header.Seq <= frames[i-1].Header.Seq {
			t.Fatalf("frames out of order: %d after %d", frames[i].Header.Seq, frames[i-1].Header.Seq)
		}
	}
}

func TestReceiverLastFlagSurvives(t *testing.T) {
	c := testCodec(t)
	payloads := randomPayloads(c, 3, 15)
	caps := transmit(t, c, payloads, 10, channel.DefaultConfig())
	rx := runReceiver(t, c, caps, false)
	f, ok := rx.Frame(2)
	if !ok {
		t.Fatal("last frame missing")
	}
	if !f.Header.Last {
		t.Error("Last flag lost in transit")
	}
}

func TestReceiverIgnoresGarbageCaptures(t *testing.T) {
	c := testCodec(t)
	rx := NewReceiver(c)
	noise := raster.New(480, 270)
	if err := rx.Ingest(noise); err == nil {
		t.Fatal("garbage capture ingested without error")
	}
	if len(rx.Frames()) != 0 {
		t.Fatal("garbage produced frames")
	}
}
