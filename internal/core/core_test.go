package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"rainbar/internal/channel"
	"rainbar/internal/core/header"
	"rainbar/internal/core/layout"
)

// testGeometry is a reduced screen (tests run hundreds of captures; the
// full S4 raster would be needlessly slow). 480x270 at 10 px -> 48x27 grid.
func testGeometry(t testing.TB) *layout.Geometry {
	t.Helper()
	g, err := layout.NewGeometry(480, 270, 10)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testCodec(t testing.TB) *Codec {
	t.Helper()
	c, err := NewCodec(Config{Geometry: testGeometry(t), DisplayRate: 10, AppType: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func payloadFor(c *Codec, seed int64) []byte {
	data := make([]byte, c.FrameCapacity())
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(Config{}); err == nil {
		t.Error("nil geometry accepted")
	}
	if _, err := NewCodec(Config{Geometry: testGeometry(t), RSParity: 300}); err == nil {
		t.Error("oversized parity accepted")
	}
}

func TestFrameCapacityPositiveAndConsistent(t *testing.T) {
	c := testCodec(t)
	if c.FrameCapacity() <= 0 {
		t.Fatal("no capacity")
	}
	// Capacity must be area minus RS parity overhead.
	area := c.Geometry().DataCapacityBytes()
	if c.FrameCapacity() >= area {
		t.Fatalf("capacity %d not below raw area %d", c.FrameCapacity(), area)
	}
}

func TestEncodeFrameRejectsOversizedPayload(t *testing.T) {
	c := testCodec(t)
	if _, err := c.EncodeFrame(make([]byte, c.FrameCapacity()+1), 0, false); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestEncodeFrameStructuralCells(t *testing.T) {
	c := testCodec(t)
	f, err := c.EncodeFrame([]byte("hello"), 5, false)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Geometry()
	// Tracking bar color for seq 5 (5&3 = 1) is red.
	if got := f.ColorAt(0, 0); got != layout.TrackingBarColor(5) {
		t.Errorf("bar color %v, want %v", got, layout.TrackingBarColor(5))
	}
	ct := g.CTLeftCenter()
	if got := f.ColorAt(ct.Row, ct.Col); got.String() != "black" {
		t.Errorf("CT center %v, want black", got)
	}
	if got := f.ColorAt(ct.Row, ct.Col-1); got != layout.CTRingColorLeft {
		t.Errorf("left ring %v, want green", got)
	}
	ctr := g.CTRightCenter()
	if got := f.ColorAt(ctr.Row, ctr.Col+1); got != layout.CTRingColorRight {
		t.Errorf("right ring %v, want red", got)
	}
	_, mid, _ := g.LocatorCols()
	if got := f.ColorAt(2, mid); got.String() != "black" {
		t.Errorf("first middle locator %v, want black", got)
	}
}

func TestRenderDimensions(t *testing.T) {
	c := testCodec(t)
	f, err := c.EncodeFrame([]byte("x"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	img := f.Render()
	g := c.Geometry()
	if img.W != g.Cols()*g.BlockSize() || img.H != g.Rows()*g.BlockSize() {
		t.Fatalf("render %dx%d", img.W, img.H)
	}
}

func TestPerfectRoundTripNoChannel(t *testing.T) {
	// Decode the rendered frame directly — no optical impairments. This
	// validates the whole geometric pipeline in isolation.
	c := testCodec(t)
	want := payloadFor(c, 1)
	f, err := c.EncodeFrame(want, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	hdr, got, err := c.DecodeFrame(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Seq != 9 || !hdr.Last {
		t.Errorf("header = %+v", hdr)
	}
	if hdr.DisplayRate != 10 || hdr.AppType != 1 {
		t.Errorf("header metadata = %+v", hdr)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload mismatch on clean render")
	}
}

func TestRoundTripThroughDefaultChannel(t *testing.T) {
	// The headline integration test: encode, pass through the default
	// optical channel (perspective, lens distortion, blur, noise), decode.
	c := testCodec(t)
	want := payloadFor(c, 2)
	f, err := c.EncodeFrame(want, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	ch := channel.MustNew(channel.DefaultConfig())
	capt, err := ch.Capture(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	hdr, got, err := c.DecodeFrame(capt)
	if err != nil {
		t.Fatalf("decode through channel: %v", err)
	}
	if hdr.Seq != 3 {
		t.Errorf("seq = %d", hdr.Seq)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted through default channel")
	}
}

func TestRoundTripAtViewAngle(t *testing.T) {
	c := testCodec(t)
	want := payloadFor(c, 3)
	f, err := c.EncodeFrame(want, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, angle := range []float64{5, 10, 15} {
		cfg := channel.DefaultConfig()
		cfg.ViewAngleDeg = angle
		capt, err := channel.MustNew(cfg).Capture(f.Render())
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := c.DecodeFrame(capt)
		if err != nil {
			t.Fatalf("angle %.0f°: %v", angle, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("angle %.0f°: payload corrupted", angle)
		}
	}
}

func TestEncodeAllSplitsAndFlagsLast(t *testing.T) {
	c := testCodec(t)
	data := make([]byte, c.FrameCapacity()*2+10)
	rand.New(rand.NewSource(4)).Read(data)
	frames, err := c.EncodeAll(data, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("%d frames, want 3", len(frames))
	}
	for i, f := range frames {
		if f.Header().Seq != uint16(7+i) {
			t.Errorf("frame %d seq = %d", i, f.Header().Seq)
		}
		if f.Header().Last != (i == 2) {
			t.Errorf("frame %d last = %v", i, f.Header().Last)
		}
	}
}

func TestEncodeAllEmpty(t *testing.T) {
	c := testCodec(t)
	if _, err := c.EncodeAll(nil, 0); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	// An image with no barcode at all must fail cleanly.
	c := testCodec(t)
	frame, err := c.EncodeFrame([]byte("x"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	rendered := frame.Render()
	rendered.Fill(rendered.At(0, 0)) // wipe to a uniform color
	if _, _, err := c.DecodeFrame(rendered); err == nil {
		t.Fatal("uniform image decoded")
	}
}

func TestAssemblePayloadWrongLength(t *testing.T) {
	c := testCodec(t)
	if _, err := c.AssemblePayload(nil, header.Header{}); err == nil {
		t.Fatal("wrong cell count accepted")
	}
}

func TestDecodeUpsideDownCapture(t *testing.T) {
	// A capture taken with the receiving phone inverted must decode via
	// the automatic 180° recovery (the asymmetric corner trackers reveal
	// the orientation).
	c := testCodec(t)
	want := payloadFor(c, 11)
	f, err := c.EncodeFrame(want, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	capt, err := channel.MustNew(channel.DefaultConfig()).Capture(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	hdr, got, err := c.DecodeFrame(capt.Rotate180())
	if err != nil {
		t.Fatalf("upside-down decode: %v", err)
	}
	if hdr.Seq != 6 || !bytes.Equal(got, want) {
		t.Fatal("upside-down round trip mismatch")
	}
}

func TestCleanRenderRoundTripProperty(t *testing.T) {
	// Fuzz the payload contents: every clean render must decode exactly.
	c := testCodec(t)
	prop := func(seed int64, lastFlag bool) bool {
		payload := make([]byte, c.FrameCapacity())
		rand.New(rand.NewSource(seed)).Read(payload)
		f, err := c.EncodeFrame(payload, uint16(seed&0x7FFF), lastFlag)
		if err != nil {
			return false
		}
		hdr, got, err := c.DecodeFrame(f.Render())
		return err == nil && hdr.Last == lastFlag && bytes.Equal(got, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
