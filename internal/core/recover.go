package core

import (
	"sort"

	"rainbar/internal/colorspace"
	"rainbar/internal/core/header"
	"rainbar/internal/obs"
)

// DefaultRecoveryBudget is the recommended Config.RecoveryBudget when the
// decode-recovery ladder is enabled: enough for a locator re-scan, the
// full μ-sweep at both the grid and the assembly level, and the ranked
// erasure pass, without letting a hopeless capture burn unbounded work.
const DefaultRecoveryBudget = 6

// Hypothesis identifiers tagged on every recovery attempt. They appear in
// RecoveryTrace, in the obs ladder series (label "hypothesis"), and in
// transport.Stats.LadderSuccessesByHypothesis.
const (
	// HypErasures: re-decode with erasure sets ranked by per-cell
	// classification confidence (lowest confidence erased first, up to the
	// parity budget).
	HypErasures = "erasures"
	// HypMuLow / HypMuHigh: re-extract the grid under the alternative
	// value-threshold weights μ = 0.45 / 0.65 (the base pass is Eq. 2's
	// μ = 0.55).
	HypMuLow  = "mu-0.45"
	HypMuHigh = "mu-0.65"
	// HypRescan: global locator re-scan after progressive prediction lost
	// the middle code-locator column (core.ErrLocatorLost).
	HypRescan = "rescan"
	// HypCombine: cross-round soft combining in the transport — a frame
	// recovered by fusing failed captures' (symbol, confidence) tables
	// across retransmission rounds.
	HypCombine = "combine"
)

// recoveryMus lists the alternative μ values the sweep tries, in ladder
// order. The set is fixed at compile time — together with the seeded
// channel/fault randomness this is what keeps the sweep deterministic.
var recoveryMus = [...]struct {
	mu  float64
	hyp string
}{
	{0.45, HypMuLow},
	{0.65, HypMuHigh},
}

// RecoveryTrace records what the decode-recovery ladder did for one decode
// operation: every hypothesis attempted, in execution order, and the one
// that won (empty when nothing recovered). Traces are deterministic: the
// same capture bytes and configuration always produce the same trace.
type RecoveryTrace struct {
	Attempts []string
	Winner   string
}

// ladder enforces the recovery budget and records attempts. A nil ladder
// or an exhausted budget refuses every attempt, so legacy code paths run
// untouched when recovery is off.
type ladder struct {
	c      *Codec
	budget int
	trace  RecoveryTrace
}

// newLadder allocates a ladder carrying the configured budget. With
// recovery off it returns nil — every ladder method accepts a nil
// receiver and refuses attempts — so the hot path never allocates for a
// ladder that could not run.
func (c *Codec) newLadder() *ladder {
	if c.cfg.RecoveryBudget <= 0 {
		return nil
	}
	return &ladder{c: c, budget: c.cfg.RecoveryBudget}
}

// tryAttempt consumes one budget unit for hypothesis hyp. It reports false
// — and records nothing — when the budget is spent or recovery is off.
func (l *ladder) tryAttempt(hyp string) bool {
	if l == nil || l.budget <= 0 {
		return false
	}
	l.budget--
	l.trace.Attempts = append(l.trace.Attempts, hyp)
	if l.c.obsOn {
		l.c.rec.Inc(obsLadderSeries(obsLadderAttempts, obs.MCoreLadderAttempts, hyp), 1)
	}
	return true
}

// win marks hyp as the hypothesis that recovered the decode (for
// grid-level hypotheses: that produced the adopted reading).
func (l *ladder) win(hyp string) {
	l.trace.Winner = hyp
	if l.c.obsOn {
		l.c.rec.Inc(obsLadderSeries(obsLadderSuccesses, obs.MCoreLadderSuccesses, hyp), 1)
	}
}

// result returns the accumulated trace, or nil when the ladder never ran.
func (l *ladder) result() *RecoveryTrace {
	if l == nil || len(l.trace.Attempts) == 0 {
		return nil
	}
	t := l.trace
	return &t
}

// AssemblePayloadSoft is AssemblePayload with the payload-level recovery
// ladder: after the standard pass fails, the ranked-erasure hypothesis
// re-decodes each RS message erasing its lowest-confidence bytes first
// (conf aligns with cells; a cell's byte inherits its weakest cell). The
// returned trace is nil when the ladder never ran. With RecoveryBudget 0
// or a nil conf the result is bit-identical to AssemblePayload.
func (c *Codec) AssemblePayloadSoft(cells []colorspace.Color, conf []float64, hdr header.Header) ([]byte, *RecoveryTrace, error) {
	lad := c.newLadder()
	payload, err := c.assembleWithLadder(cells, conf, hdr, lad)
	return payload, lad.result(), err
}

// assembleWithLadder runs the base assembly pass and, on failure, the
// ranked-erasure hypothesis against the caller's ladder.
func (c *Codec) assembleWithLadder(cells []colorspace.Color, conf []float64, hdr header.Header, lad *ladder) ([]byte, error) {
	stream, suspect, err := c.packStream(cells)
	if err != nil {
		return nil, err
	}
	payload, err := c.decodePayload(stream, suspect, hdr.FrameChecksum)
	if err == nil || conf == nil {
		return payload, err
	}
	if !lad.tryAttempt(HypErasures) {
		return nil, err
	}
	byteConf := byteConfidence(cells, conf, len(stream))
	payload, err2 := c.decodeWithPlans(stream, hdr.FrameChecksum, c.rankedPlans(suspect, byteConf))
	if err2 == nil {
		lad.win(HypErasures)
		return payload, nil
	}
	return nil, err
}

// byteConfidence reduces per-cell confidence to per-stream-byte: a byte is
// only as trustworthy as the weakest of the four cells it spans. Bytes
// with no cells (dead padding) stay at confidence 1 so ranking never
// erases them.
func byteConfidence(cells []colorspace.Color, conf []float64, n int) []float64 {
	bc := make([]float64, n)
	for i := range bc {
		bc[i] = 1
	}
	for i := range cells {
		b := i / 4
		if b >= n {
			break
		}
		v := 0.0
		if i < len(conf) {
			v = conf[i]
		}
		if v < bc[b] {
			bc[b] = v
		}
	}
	return bc
}

// rankedPlans extends the legacy erasure policy with confidence-ranked
// erasure sets, folding in the old all-or-nothing drop: where the legacy
// path erased either every black-suspect byte or none, the ranked plans
// always erase the message's most doubtful bytes first — the full parity
// budget's worth, then half of it — before falling back to errors-only
// decoding. Ties in confidence break by byte position, keeping the plan
// order deterministic.
func (c *Codec) rankedPlans(suspect []bool, byteConf []float64) planFunc {
	capE := c.cfg.RSParity - 2
	return func(off, n int) [][]int {
		idx := make([]int, n)
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool {
			ca, cb := byteConf[off+idx[a]], byteConf[off+idx[b]]
			if ca < cb {
				return true
			}
			if cb < ca {
				return false
			}
			return idx[a] < idx[b]
		})
		// Rank only genuinely doubtful bytes (confidence below 1).
		m := 0
		for m < len(idx) && m < capE && byteConf[off+idx[m]] < 1 {
			m++
		}
		var plans [][]int
		// The legacy guess first: every black-suspect byte, when they fit.
		if suspect != nil {
			var erasures []int
			for j := 0; j < n; j++ {
				if suspect[off+j] {
					erasures = append(erasures, j)
				}
			}
			if len(erasures) > 0 && len(erasures) <= capE {
				plans = append(plans, erasures)
			}
		}
		if m > 0 {
			full := append([]int(nil), idx[:m]...)
			sort.Ints(full)
			plans = append(plans, full)
			if h := m / 2; h > 0 && h < m {
				half := append([]int(nil), idx[:h]...)
				sort.Ints(half)
				plans = append(plans, half)
			}
		}
		return append(plans, nil)
	}
}

// FuseCells combines two per-cell (symbol, confidence) tables by
// max-confidence vote: each fused cell takes whichever table is more
// certain about it, the newer table winning ties. This is the
// cross-round soft-combining primitive — two individually undecodable
// captures of the same frame, weak in different cells, fuse into a table
// the ladder can decode. Tables must align with Geometry.DataCells();
// when the old table's length disagrees, the new table is returned
// unfused.
func FuseCells(oldCells []colorspace.Color, oldConf []float64, newCells []colorspace.Color, newConf []float64) ([]colorspace.Color, []float64) {
	n := len(newCells)
	cells := make([]colorspace.Color, n)
	conf := make([]float64, n)
	for i := range cells {
		cells[i] = newCells[i]
		if i < len(newConf) {
			conf[i] = newConf[i]
		}
	}
	if len(oldCells) != n || len(oldConf) != n {
		return cells, conf
	}
	for i := range cells {
		if oldConf[i] > conf[i] {
			cells[i], conf[i] = oldCells[i], oldConf[i]
		}
	}
	return cells, conf
}
