package core

import (
	"bytes"
	"testing"

	"rainbar/internal/colorspace"
)

// truthCells returns the encoder's cell colors for a frame.
func truthCells(c *Codec, f *Frame) []colorspace.Color {
	cells := c.Geometry().DataCells()
	out := make([]colorspace.Color, len(cells))
	for i, cell := range cells {
		out[i] = f.ColorAt(cell.Row, cell.Col)
	}
	return out
}

func TestErasuresDoubleCorrectionPower(t *testing.T) {
	// With 16 parity bytes per message, RS alone corrects 8 unknown byte
	// errors; flagged as erasures, up to 14 corrupted bytes are
	// recoverable (the decoder caps at parity-2). Blacking out 11 bytes'
	// worth of cells in one message must fail without erasure marking and
	// succeed with it.
	c := testCodec(t)
	want := payloadFor(c, 1)
	f, err := c.EncodeFrame(want, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	cells := truthCells(c, f)

	// Corrupt 44 consecutive cells (11 bytes) in the first message.
	const corruptCells = 44
	blacked := make([]colorspace.Color, len(cells))
	copy(blacked, cells)
	for i := 0; i < corruptCells; i++ {
		blacked[i] = colorspace.Black // decoder sees a structural misread
	}
	got, err := c.AssemblePayload(blacked, f.Header())
	if err != nil {
		t.Fatalf("erasure-assisted decode failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("erasure-assisted decode returned wrong payload")
	}

	// The same corruption as plausible-but-wrong colors (no black hint)
	// must exceed plain RS capability.
	flipped := make([]colorspace.Color, len(cells))
	copy(flipped, cells)
	for i := 0; i < corruptCells; i++ {
		flipped[i] = colorspace.Color((uint8(flipped[i]) + 1) % colorspace.NumDataColors)
	}
	if _, err := c.AssemblePayload(flipped, f.Header()); err == nil {
		t.Fatal("11 unknown byte errors decoded with 16 parity (capability is 8)")
	}
}

func TestErasureFallbackWhenBlackEverywhere(t *testing.T) {
	// When more cells read black than the parity budget can absorb, the
	// decoder must fall back to blind decoding rather than guaranteed
	// erasure failure — and then fail cleanly (corruption is total).
	c := testCodec(t)
	f, err := c.EncodeFrame(payloadFor(c, 2), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	cells := truthCells(c, f)
	for i := range cells {
		cells[i] = colorspace.Black
	}
	if _, err := c.AssemblePayload(cells, f.Header()); err == nil {
		t.Fatal("all-black frame decoded")
	}
}

func TestErasuresWrongGuessStillDecodes(t *testing.T) {
	// A black misread whose underlying byte is actually *correct* (only
	// one of the byte's four cells was black, the rest right) must not
	// break decoding: erasures of correct bytes are harmless to RS.
	c := testCodec(t)
	want := payloadFor(c, 3)
	f, err := c.EncodeFrame(want, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	cells := truthCells(c, f)
	// Black out one white cell (bits 00): the packed byte keeps its value.
	for i, col := range cells {
		if col == colorspace.White {
			cells[i] = colorspace.Black
			break
		}
	}
	got, err := c.AssemblePayload(cells, f.Header())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload mismatch")
	}
}
