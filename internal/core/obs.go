package core

import (
	"rainbar/internal/colorspace"
	"rainbar/internal/obs"
)

// Precomputed labeled series names keep the per-capture decode path free
// of string concatenation. The label values mirror StageTimings fields and
// the FailureClass / colorspace.Color string forms.
var (
	obsSpanDetect  = obs.With(obs.MCoreStageSeconds, "stage", "detect")
	obsSpanLocate  = obs.With(obs.MCoreStageSeconds, "stage", "locate")
	obsSpanExtract = obs.With(obs.MCoreStageSeconds, "stage", "extract")
	obsSpanCorrect = obs.With(obs.MCoreStageSeconds, "stage", "correct")

	obsCellSeries = [colorspace.Black + 1]string{
		colorspace.White: obs.With(obs.MCoreCellsClassified, "color", "white"),
		colorspace.Red:   obs.With(obs.MCoreCellsClassified, "color", "red"),
		colorspace.Green: obs.With(obs.MCoreCellsClassified, "color", "green"),
		colorspace.Blue:  obs.With(obs.MCoreCellsClassified, "color", "blue"),
		colorspace.Black: obs.With(obs.MCoreCellsClassified, "color", "black"),
	}

	obsLadderAttempts  = map[string]string{}
	obsLadderSuccesses = map[string]string{}

	obsFailureSeries = map[FailureClass]string{
		FailDropped: obs.With(obs.MCoreDecodeFailures, "stage", string(FailDropped)),
		FailDetect:  obs.With(obs.MCoreDecodeFailures, "stage", string(FailDetect)),
		FailLocate:  obs.With(obs.MCoreDecodeFailures, "stage", string(FailLocate)),
		FailHeader:  obs.With(obs.MCoreDecodeFailures, "stage", string(FailHeader)),
		FailSync:    obs.With(obs.MCoreDecodeFailures, "stage", string(FailSync)),
		FailCorrect: obs.With(obs.MCoreDecodeFailures, "stage", string(FailCorrect)),
		FailOther:   obs.With(obs.MCoreDecodeFailures, "stage", string(FailOther)),
	}
)

func init() {
	for _, hyp := range [...]string{HypErasures, HypMuLow, HypMuHigh, HypRescan, HypCombine} {
		obsLadderAttempts[hyp] = obs.With(obs.MCoreLadderAttempts, "hypothesis", hyp)
		obsLadderSuccesses[hyp] = obs.With(obs.MCoreLadderSuccesses, "hypothesis", hyp)
	}
}

// obsLadderSeries resolves the precomputed labeled series for a
// hypothesis, falling back to on-the-fly labeling for unknown IDs.
func obsLadderSeries(m map[string]string, base, hyp string) string {
	if s, ok := m[hyp]; ok {
		return s
	}
	return obs.With(base, "hypothesis", hyp)
}

// recordFailure counts one decode-path failure under its FailureClass.
func (c *Codec) recordFailure(err error) {
	if !c.obsOn || err == nil {
		return
	}
	class := ClassifyFailure(err)
	name, ok := obsFailureSeries[class]
	if !ok {
		name = obs.With(obs.MCoreDecodeFailures, "stage", string(class))
	}
	c.rec.Inc(name, 1)
}
