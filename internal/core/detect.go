package core

import (
	"fmt"

	"rainbar/internal/colorspace"
	"rainbar/internal/geometry"
	"rainbar/internal/raster"
	"rainbar/internal/vision"
)

// detection holds the capture-space fix of a frame: the two corner-tracker
// centers, the estimated block size in capture pixels, and the adaptive
// value threshold for black/non-black separation.
type detection struct {
	ctLeft  geometry.Point
	ctRight geometry.Point
	bst     float64 // estimated block side in capture pixels
	tv      float64 // adaptive value threshold (Eq. 2)

	// vb, vo are the black / non-black cluster means behind tv, kept so
	// the recovery ladder's μ-sweep can re-derive T_v under alternative μ
	// without re-clustering; tvOK is false when the estimate fell back to
	// DefaultTV (no bimodality — nothing for the sweep to re-weigh).
	vb, vo float64
	tvOK   bool
}

// tvSamplesPerRegion is N in §III-F: pixels sampled per screen quadrant
// when estimating T_v.
const tvSamplesPerRegion = 64

// estimateTV implements the paper's brightness assessment: divide the
// capture into four regions, sample N pixels per region, and combine the
// black and non-black mean values with μ (Eq. 2). sc (optional) supplies
// the sample buffer.
func estimateTV(img *raster.Image, sc *decodeScratch) (tv, vb, vo float64, ok bool) {
	var values []float64
	if sc != nil {
		values = grow(sc.tvValues, 4*tvSamplesPerRegion)[:0]
	} else {
		values = make([]float64, 0, 4*tvSamplesPerRegion)
	}
	halfW, halfH := img.W/2, img.H/2
	regions := [4][2]int{{0, 0}, {halfW, 0}, {0, halfH}, {halfW, halfH}}
	// Deterministic low-discrepancy sampling: an 8x8 lattice per region.
	const side = 8
	for _, reg := range regions {
		for sy := 0; sy < side; sy++ {
			for sx := 0; sx < side; sx++ {
				x := reg[0] + (2*sx+1)*halfW/(2*side)
				y := reg[1] + (2*sy+1)*halfH/(2*side)
				// Value() is ToHSV().V without the rest of the conversion
				// (bit-identical).
				values = append(values, img.At(x, y).Value())
			}
		}
	}
	if sc != nil {
		sc.tvValues = values
	}
	vb, vo, ok = colorspace.EstimateTVClusters(values)
	if !ok {
		return colorspace.DefaultTV, 0, 0, false
	}
	return colorspace.TVForMu(vb, vo, colorspace.Mu), vb, vo, true
}

// detectDownsample is the stride used for the classification map in
// corner-tracker detection; the paper's "fast corner detection" similarly
// avoids touching every pixel.
const detectDownsample = 2

// detect runs brightness assessment and corner-tracker detection on a
// capture. It returns ErrNoCornerTrackers when either tracker is missing
// or their mutual position is implausible. With a scratch, the returned
// detection is scratch-owned.
func (c *Codec) detect(img *raster.Image, sc *decodeScratch) (*detection, error) {
	tv, vb, vo, tvOK := estimateTV(img, sc)
	cl := colorspace.NewClassifier(tv)

	if img.W < 8 || img.H < 8 {
		return nil, fmt.Errorf("core detect: capture %dx%d too small", img.W, img.H)
	}
	var classMap []colorspace.Color
	var mw, mh int
	var blobs []vision.Blob
	if sc != nil {
		classMap, mw, mh = vision.ClassifyMapInto(sc.classMap, img, cl, detectDownsample)
		sc.classMap = classMap
		blobs = sc.blobs.BlackBlobs(classMap, mw, mh)
	} else {
		classMap, mw, mh = vision.ClassifyMap(img, cl, detectDownsample)
		blobs = vision.BlackBlobs(classMap, mw, mh)
	}

	left, right, err := findTrackers(img, blobs, mw, mh, cl)
	if err != nil {
		return nil, err
	}

	// Block size estimate: the trackers sit a known number of blocks
	// apart, so their distance calibrates BST far more accurately than a
	// single ring's extent.
	g := c.cfg.Geometry
	blocksApart := float64(g.CTRightCenter().Col - g.CTLeftCenter().Col)
	bst := left.Dist(right) / blocksApart
	if bst < 2 {
		return nil, fmt.Errorf("%w: implausible block size %.2f px", ErrNoCornerTrackers, bst)
	}
	var det *detection
	if sc != nil {
		det = &sc.det
	} else {
		det = &detection{}
	}
	*det = detection{ctLeft: left, ctRight: right, bst: bst, tv: tv, vb: vb, vo: vo, tvOK: tvOK}
	return det, nil
}

// findTrackers locates both corner trackers among the black blobs of the
// classified map (each a single block: a locator or a CT center) by
// verifying each blob's 8-neighbor ring: a blob whose eight surrounding
// blocks are (almost) all green is the left tracker, all red the right
// one. Among multiple candidates the strongest ring vote wins. The
// returned points are K-means-refined centers of the black blocks.
func findTrackers(img *raster.Image, blobs []vision.Blob, mw, mh int, cl colorspace.Classifier) (left, right geometry.Point, err error) {
	type candidate struct {
		center geometry.Point
		votes  int
	}
	var bestL, bestR candidate

	for i := range blobs {
		b := &blobs[i]
		w, h := b.Width(), b.Height()
		// Single-block blobs only: squarish, not the screen surround
		// (which spans a large fraction of the map). Width/height may
		// shrink to one map cell when blur erodes a distant block, so the
		// lower bound stays permissive — the ring vote rejects impostors.
		if w < 1 || h < 1 || w > mw/4 || h > mh/4 {
			continue
		}
		aspect := float64(w) / float64(h)
		if aspect < 0.3 || aspect > 3.4 {
			continue
		}
		fill := float64(b.Size) / float64(w*h)
		if fill < 0.5 {
			continue
		}
		cx, cy := b.Centroid()
		px := geometry.Point{X: cx * detectDownsample, Y: cy * detectDownsample}
		// Blur erodes the classified black region, so the blob extent may
		// underestimate the true block size; probe the ring at a few
		// radii and keep the strongest vote.
		base := float64(max(w, h) * detectDownsample)
		// 6 of 8 ring samples: strict enough that a data block almost
		// never qualifies, loose enough to survive two eroded ring cells.
		// A stray 6-vote data block loses to the true 8-vote tracker, and
		// the pair sanity check below rejects the rest.
		const needed = 6
		for _, mult := range [...]float64{1.05, 1.5, 2.0} {
			dx, dy := base*mult, base*mult
			votes := vision.RingVoteCounts(img, cl, px, dx, dy)
			if g := votes[colorspace.Green]; g >= needed && g > bestL.votes {
				center, _ := vision.KMeansCorrect(img, cl, px, dx)
				bestL = candidate{center: center, votes: g}
			}
			if r := votes[colorspace.Red]; r >= needed && r > bestR.votes {
				center, _ := vision.KMeansCorrect(img, cl, px, dx)
				bestR = candidate{center: center, votes: r}
			}
		}
	}

	if bestL.votes == 0 {
		return geometry.Point{}, geometry.Point{}, fmt.Errorf("%w: left (green ring) not found among %d black blobs", ErrNoCornerTrackers, len(blobs))
	}
	if bestR.votes == 0 {
		return geometry.Point{}, geometry.Point{}, fmt.Errorf("%w: right (red ring) not found among %d black blobs", ErrNoCornerTrackers, len(blobs))
	}
	if bestL.center.X >= bestR.center.X {
		return geometry.Point{}, geometry.Point{}, fmt.Errorf("%w: green tracker not left of red tracker", ErrNoCornerTrackers)
	}
	// Both trackers sit on the same grid row, so even under strong
	// perspective their vertical offset stays a small fraction of their
	// horizontal separation.
	if dy := bestL.center.Y - bestR.center.Y; dy > 0.25*(bestR.center.X-bestL.center.X)+3 || -dy > 0.25*(bestR.center.X-bestL.center.X)+3 {
		return geometry.Point{}, geometry.Point{}, fmt.Errorf("%w: tracker pair misaligned", ErrNoCornerTrackers)
	}
	return bestL.center, bestR.center, nil
}
