package core

import (
	"testing"

	"rainbar/internal/channel"
	"rainbar/internal/obs"
	"rainbar/internal/raster"
)

// benchCapture prepares one default-channel capture of a full frame.
func benchCapture(b *testing.B) (*Codec, *raster.Image) {
	b.Helper()
	c := testCodec(b)
	f, err := c.EncodeFrame(payloadFor(c, 1), 0, false)
	if err != nil {
		b.Fatal(err)
	}
	capt, err := channel.MustNew(channel.DefaultConfig()).Capture(f.Render())
	if err != nil {
		b.Fatal(err)
	}
	return c, capt
}

func BenchmarkEncodeFrame(b *testing.B) {
	c := testCodec(b)
	payload := payloadFor(c, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeFrame(payload, 0, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderFrame(b *testing.B) {
	c := testCodec(b)
	f, err := c.EncodeFrame(payloadFor(c, 1), 0, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Render()
	}
}

func BenchmarkFixImage(b *testing.B) {
	// Detection + progressive localization: the geometric front half of
	// the decoder (§III-C/E).
	c, capt := benchCapture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FixImage(capt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeGrid(b *testing.B) {
	// The full per-capture decode pipeline (§III-C..F), the number §IV-D's
	// real-time budget is about.
	c, capt := benchCapture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeGrid(capt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFrame(b *testing.B) {
	c, capt := benchCapture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.DecodeFrame(capt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReceiverProcess(b *testing.B) {
	// Receiver-side cost of one capture batch: grid decode, row attribution
	// and voting, payload assembly. This is the per-capture work a streaming
	// receiver does, so it bounds the sustainable capture rate.
	c := testCodec(b)
	ch := channel.MustNew(channel.DefaultConfig())
	const batch = 4
	caps := make([]*raster.Image, batch)
	for i := range caps {
		f, err := c.EncodeFrame(payloadFor(c, int64(i)), uint16(i), false)
		if err != nil {
			b.Fatal(err)
		}
		caps[i], err = ch.Capture(f.Render())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rx := NewReceiver(c)
		for _, capt := range caps {
			if err := rx.Ingest(capt); err != nil {
				b.Fatal(err)
			}
		}
		rx.Flush()
	}
}

func BenchmarkReceiverProcessSteady(b *testing.B) {
	// BenchmarkReceiverProcess with one long-lived receiver recycled via
	// Reset between batches — the steady state a continuously-running
	// receiver reaches, where every decode intermediate comes from scratch
	// buffers. The contract (enforced by TestReceiverSteadyStateAllocFree
	// and scripts/ci.sh) is 0 allocs/op here.
	c := testCodec(b)
	ch := channel.MustNew(channel.DefaultConfig())
	const batch = 4
	caps := make([]*raster.Image, batch)
	for i := range caps {
		f, err := c.EncodeFrame(payloadFor(c, int64(i)), uint16(i), false)
		if err != nil {
			b.Fatal(err)
		}
		caps[i], err = ch.Capture(f.Render())
		if err != nil {
			b.Fatal(err)
		}
	}
	rx := NewReceiver(c)
	process := func() {
		for _, capt := range caps {
			if err := rx.Ingest(capt); err != nil {
				b.Fatal(err)
			}
		}
		rx.Flush()
		for i := 0; i < batch; i++ {
			if _, ok := rx.Frame(uint16(i)); !ok {
				b.Fatalf("frame %d not decoded", i)
			}
		}
		rx.Reset()
	}
	process() // warm the scratch buffers and freelists
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		process()
	}
}

func BenchmarkReceiverIngestBatch(b *testing.B) {
	// The batched front end: parallel grid decodes, sequential merge.
	// Single-core it tracks BenchmarkReceiverProcessSteady; with spare CPUs
	// the decode phase scales while results stay bit-identical.
	c := testCodec(b)
	ch := channel.MustNew(channel.DefaultConfig())
	const batch = 4
	caps := make([]*raster.Image, batch)
	for i := range caps {
		f, err := c.EncodeFrame(payloadFor(c, int64(i)), uint16(i), false)
		if err != nil {
			b.Fatal(err)
		}
		caps[i], err = ch.Capture(f.Render())
		if err != nil {
			b.Fatal(err)
		}
	}
	rx := NewReceiver(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, err := range rx.IngestBatch(caps) {
			if err != nil {
				b.Fatal(err)
			}
		}
		rx.Flush()
		rx.Reset()
	}
}

func BenchmarkAssemblePayload(b *testing.B) {
	// RS + checksum only: the non-vision tail of the decoder.
	c, capt := benchCapture(b)
	gd, err := c.DecodeGrid(capt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AssemblePayload(gd.Cells, gd.Header); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReceiverProcessRecorded(b *testing.B) {
	// BenchmarkReceiverProcess with a live in-memory recorder attached —
	// the pair bounds the observability overhead on the hot path (the
	// acceptance budget is <=3% over the no-op baseline).
	c, err := NewCodec(Config{
		Geometry: testGeometry(b), DisplayRate: 10, AppType: 1,
		Recorder: obs.NewMemory(),
	})
	if err != nil {
		b.Fatal(err)
	}
	ch := channel.MustNew(channel.DefaultConfig())
	const batch = 4
	caps := make([]*raster.Image, batch)
	for i := range caps {
		f, err := c.EncodeFrame(payloadFor(c, int64(i)), uint16(i), false)
		if err != nil {
			b.Fatal(err)
		}
		caps[i], err = ch.Capture(f.Render())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rx := NewReceiver(c)
		for _, capt := range caps {
			if err := rx.Ingest(capt); err != nil {
				b.Fatal(err)
			}
		}
		rx.Flush()
	}
}
