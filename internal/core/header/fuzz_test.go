package header

import (
	"testing"

	"rainbar/internal/colorspace"
)

// stripToBytes flattens a color strip for the fuzz corpus.
func stripToBytes(strip []colorspace.Color) []byte {
	b := make([]byte, len(strip))
	for i, c := range strip {
		b[i] = byte(c)
	}
	return b
}

// FuzzHeaderDecode feeds arbitrary color strips — including the repair
// paths' worst inputs — through DecodeColors. The decoder may reject, but
// must never panic, and anything it accepts must be a structurally valid,
// re-encodable header.
func FuzzHeaderDecode(f *testing.F) {
	seed := Header{Seq: 1234, Last: true, DisplayRate: 10, AppType: 2, FrameChecksum: 0xBEEF}
	for _, room := range []int{Blocks, 2 * Blocks, 2*Blocks + 5} {
		strip, err := seed.EncodeColors(room)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(stripToBytes(strip))
	}
	// A valid strip with a corrupted unit exercises the substitution repair.
	strip, _ := seed.EncodeColors(2 * Blocks)
	strip[3], strip[7] = colorspace.Black, colorspace.Red
	f.Add(stripToBytes(strip))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 8*Blocks {
			raw = raw[:8*Blocks] // bound the repair search, not the surface
		}
		in := make([]colorspace.Color, len(raw))
		for i, v := range raw {
			in[i] = colorspace.Color(v % (colorspace.NumDataColors + 1)) // data colors + Black
		}
		hdr, err := DecodeColors(in)
		if err != nil {
			return
		}
		if err := hdr.Validate(); err != nil {
			t.Fatalf("accepted header fails validation: %v (%+v)", err, hdr)
		}
		wire, err := hdr.Encode()
		if err != nil {
			t.Fatalf("accepted header does not re-encode: %v (%+v)", err, hdr)
		}
		if back, err := Decode(wire); err != nil || back != hdr {
			t.Fatalf("re-encoded header round-trips to %+v (err %v), want %+v", back, err, hdr)
		}
	})
}
