package header

import (
	"errors"
	"testing"
	"testing/quick"

	"rainbar/internal/colorspace"
)

func sample() Header {
	return Header{
		Seq:           1234,
		Last:          false,
		DisplayRate:   15,
		AppType:       2,
		FrameChecksum: 0xBEEF,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := sample()
	wire, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip = %+v, want %+v", got, h)
	}
}

func TestLastFlagRoundTrip(t *testing.T) {
	h := sample()
	h.Last = true
	wire, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Last {
		t.Error("Last flag lost")
	}
	if got.Seq != h.Seq {
		t.Errorf("Seq = %d, want %d (flag must not leak into Seq)", got.Seq, h.Seq)
	}
}

func TestEncodeRejectsOversizedSeq(t *testing.T) {
	h := sample()
	h.Seq = MaxSeq + 1
	if _, err := h.Encode(); err == nil {
		t.Fatal("oversized sequence accepted")
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	h := sample()
	wire, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range wire {
		bad := wire
		bad[i] ^= 0x40
		if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("corruption in byte %d undetected (err = %v)", i, err)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(seq uint16, last bool, rate, app uint8, sum uint16) bool {
		h := Header{Seq: seq & MaxSeq, Last: last, DisplayRate: rate, AppType: app, FrameChecksum: sum}
		wire, err := h.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		return err == nil && got == h
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrackingBarFollowsSeq(t *testing.T) {
	for seq := uint16(0); seq < 8; seq++ {
		h := Header{Seq: seq}
		if got, want := h.TrackingBar(), colorspace.FromBits(byte(seq)); got != want {
			t.Errorf("seq %d: bar %v, want %v", seq, got, want)
		}
	}
}

func TestEncodeColorsExactFit(t *testing.T) {
	h := sample()
	colors, err := h.EncodeColors(Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(colors) != Blocks {
		t.Fatalf("len = %d, want %d", len(colors), Blocks)
	}
	got, err := DecodeColors(colors)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("color round trip = %+v, want %+v", got, h)
	}
}

func TestEncodeColorsTooSmall(t *testing.T) {
	if _, err := sample().EncodeColors(Blocks - 1); err == nil {
		t.Fatal("undersized strip accepted")
	}
}

func TestEncodeColorsRepeatsForRedundancy(t *testing.T) {
	h := sample()
	room := Blocks*2 + 5
	colors, err := h.EncodeColors(room)
	if err != nil {
		t.Fatal(err)
	}
	if len(colors) != room {
		t.Fatalf("len = %d, want %d", len(colors), room)
	}
	for i := Blocks; i < room; i++ {
		if colors[i] != colors[i%Blocks] {
			t.Fatalf("repetition broken at %d", i)
		}
	}
}

func TestDecodeColorsUsesSecondCopyWhenFirstCorrupt(t *testing.T) {
	h := sample()
	colors, err := h.EncodeColors(Blocks * 2)
	if err != nil {
		t.Fatal(err)
	}
	// Trash the first copy.
	for i := 0; i < 5; i++ {
		colors[i] = colorspace.Black
	}
	got, err := DecodeColors(colors)
	if err != nil {
		t.Fatalf("second copy not used: %v", err)
	}
	if got != h {
		t.Fatalf("decoded %+v, want %+v", got, h)
	}
}

func TestDecodeColorsAllCorrupt(t *testing.T) {
	// All-white decodes as the self-consistent all-zero header, and up to
	// two flipped blocks per unit are healed by repair — so corrupt three
	// blocks inside the same CRC unit (the sequence field), which is
	// beyond repair distance. Repair may still fabricate *some* CRC-valid
	// unit, so accept either an explicit error or a decode differing from
	// the all-zero original (the receiver's voting layer absorbs those).
	colors := make([]colorspace.Color, Blocks)
	for i := range colors {
		colors[i] = colorspace.White
	}
	colors[0] = colorspace.Red
	colors[1] = colorspace.Green
	colors[2] = colorspace.Blue
	h, err := DecodeColors(colors)
	if err == nil && h == (Header{}) {
		t.Fatalf("3-flip corruption decoded back to the original header")
	}
	if err != nil && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeColorsSingleSymbolRepair(t *testing.T) {
	h := sample()
	colors, err := h.EncodeColors(Blocks) // exactly one copy: no fallback
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < Blocks; i++ {
		corrupted := make([]colorspace.Color, Blocks)
		copy(corrupted, colors)
		corrupted[i] = colorspace.Color((uint8(corrupted[i]) + 1) % colorspace.NumDataColors)
		got, err := DecodeColors(corrupted)
		if err != nil {
			t.Fatalf("block %d: repair failed: %v", i, err)
		}
		if got != h {
			t.Fatalf("block %d: repaired to wrong header %+v", i, got)
		}
	}
}

func TestDecodeColorsShortStrip(t *testing.T) {
	if _, err := DecodeColors(make([]colorspace.Color, Blocks-1)); err == nil {
		t.Fatal("short strip accepted")
	}
}

func TestDecodeColorsSkipsBlackBlocks(t *testing.T) {
	// A strip whose first copy contains a black (non-data) block must fall
	// through to the second copy rather than crash.
	h := sample()
	colors, err := h.EncodeColors(Blocks * 2)
	if err != nil {
		t.Fatal(err)
	}
	colors[3] = colorspace.Black
	got, err := DecodeColors(colors)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("decoded %+v, want %+v", got, h)
	}
}

func TestAllZeroHeaderIsValid(t *testing.T) {
	// Degenerate but legal: seq 0, rate 0, app 0, checksum 0.
	var h Header
	wire, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip = %+v", got)
	}
}
