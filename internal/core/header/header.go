// Package header implements the RainBar frame header (paper Fig. 5): a
// 72-bit structure carrying the sequence number, display rate and
// application type of a frame plus a whole-frame checksum, with every
// 16-bit group protected by its own CRC-8 ("due to the importance of
// header information, we adopt a 8-bit CRC for every 16-bit data").
//
// The most significant bit of the sequence number flags the last frame of
// a file; the low 2 bits select the tracking-bar color.
package header

import (
	"errors"
	"fmt"

	"rainbar/internal/colorspace"
	"rainbar/internal/crc"
)

// Bits is the encoded header length in bits; Blocks the number of 2-bit
// color blocks it occupies.
const (
	Bits   = 72
	Blocks = Bits / colorspace.BitsPerBlock
)

// MaxSeq is the largest representable sequence number (15 bits; the MSB is
// the last-frame flag).
const MaxSeq = 1<<15 - 1

// ErrCorrupt is returned when any of the header's CRC-8 fields fails.
var ErrCorrupt = errors.New("header: CRC mismatch")

// Header is the decoded per-frame metadata.
type Header struct {
	// Seq is the frame sequence number (0..MaxSeq).
	Seq uint16
	// Last flags the final frame of a data transfer.
	Last bool
	// DisplayRate is the sender's display rate in fps.
	DisplayRate uint8
	// AppType identifies the application payload class (see transport).
	AppType uint8
	// FrameChecksum is the CRC-16 of the frame's full encoded payload
	// stream; the decoder uses it to verify the frame after RS repair
	// ("the head checksum is used to check the integrity of the whole
	// frame").
	FrameChecksum uint16
}

// Validate reports structural errors.
func (h Header) Validate() error {
	if h.Seq > MaxSeq {
		return fmt.Errorf("header: sequence %d exceeds 15 bits", h.Seq)
	}
	return nil
}

// TrackingBar returns the tracking-bar color this frame must use.
func (h Header) TrackingBar() colorspace.Color {
	return colorspace.FromBits(byte(h.Seq))
}

// Encode packs the header into its 9-byte wire form:
//
//	seq(2) crc8(1) rate(1) app(1) crc8(1) checksum(2) crc8(1)
func (h Header) Encode() ([Bits / 8]byte, error) {
	var out [Bits / 8]byte
	if err := h.Validate(); err != nil {
		return out, err
	}
	seq := h.Seq
	if h.Last {
		seq |= 1 << 15
	}
	out[0] = byte(seq >> 8)
	out[1] = byte(seq)
	out[2] = crc.Sum8(out[0:2])
	out[3] = h.DisplayRate
	out[4] = h.AppType
	out[5] = crc.Sum8(out[3:5])
	out[6] = byte(h.FrameChecksum >> 8)
	out[7] = byte(h.FrameChecksum)
	out[8] = crc.Sum8(out[6:8])
	return out, nil
}

// Decode parses and verifies a 9-byte wire header. A CRC failure in any
// group returns ErrCorrupt.
func Decode(b [Bits / 8]byte) (Header, error) {
	if !crc.Check8(b[0:2], b[2]) || !crc.Check8(b[3:5], b[5]) || !crc.Check8(b[6:8], b[8]) {
		return Header{}, ErrCorrupt
	}
	seq := uint16(b[0])<<8 | uint16(b[1])
	return Header{
		Seq:           seq & MaxSeq,
		Last:          seq&(1<<15) != 0,
		DisplayRate:   b[3],
		AppType:       b[4],
		FrameChecksum: uint16(b[6])<<8 | uint16(b[7]),
	}, nil
}

// EncodeColors maps the header onto 2-bit color symbols, most significant
// bits first. If room > Blocks, the header repeats cyclically to fill the
// strip, giving the decoder redundancy for free.
func (h Header) EncodeColors(room int) ([]colorspace.Color, error) {
	wire, err := h.Encode()
	if err != nil {
		return nil, err
	}
	if room < Blocks {
		return nil, fmt.Errorf("header: strip of %d blocks cannot hold %d header blocks", room, Blocks)
	}
	out := make([]colorspace.Color, room)
	for i := range out {
		j := i % Blocks
		shift := uint(6 - 2*(j%4))
		out[i] = colorspace.FromBits(wire[j/4] >> shift)
	}
	return out, nil
}

// The header's three independently-CRC'd units (byte ranges of the wire
// form): sequence, rate+type, frame checksum. Each unit spans 12 blocks.
var headerUnits = [3][2]int{{0, 3}, {3, 6}, {6, 9}}

// unitBlocks is the number of 2-bit blocks per unit (3 bytes).
const unitBlocks = 12

// DecodeColors recovers a header from the color strip. Because every unit
// carries its own CRC-8, units decode independently: each unit is taken
// from the first strip repetition where it verifies, and a unit failing in
// every copy is repaired by exhaustive single-symbol substitution (12·3
// cheap CRC trials per copy). This survives one misread block per unit
// per copy — the regime dim, noisy captures actually produce — while a
// whole-copy CRC gate would discard the lot. Unrecoverable units return
// ErrCorrupt.
func DecodeColors(strip []colorspace.Color) (Header, error) {
	if len(strip) < Blocks {
		return Header{}, fmt.Errorf("header: strip of %d blocks shorter than %d", len(strip), Blocks)
	}
	nCopies := len(strip) / Blocks

	var wire [Bits / 8]byte
	for u, span := range headerUnits {
		bytes, ok := decodeUnit(strip, nCopies, u)
		if !ok {
			return Header{}, ErrCorrupt
		}
		copy(wire[span[0]:span[1]], bytes[:])
	}
	return Decode(wire)
}

// decodeUnit recovers one 3-byte unit, trying clean copies first, then
// single-symbol repair per copy, then two-symbol repair. Two flipped
// blocks per unit is the common failure at low-redundancy strip widths;
// the CRC-8 leaves a ~0.4% false-accept chance per trial, which the
// receiver's tracking-bar consistency check and header voting absorb.
func decodeUnit(strip []colorspace.Color, nCopies, unit int) ([3]byte, bool) {
	seg := func(c int) []colorspace.Color {
		return strip[c*Blocks+unit*unitBlocks : c*Blocks+(unit+1)*unitBlocks]
	}
	for c := 0; c < nCopies; c++ {
		if b, ok := packUnit(seg(c)); ok && crc.Check8(b[:2], b[2]) {
			return b, true
		}
	}
	var repairBuf [unitBlocks]colorspace.Color
	repaired := repairBuf[:]
	// Single-symbol repair across all copies first: more likely correct
	// than any two-symbol combination.
	for c := 0; c < nCopies; c++ {
		s := seg(c)
		for i := 0; i < unitBlocks; i++ {
			copy(repaired, s)
			for sub := colorspace.Color(0); sub < colorspace.NumDataColors; sub++ {
				if sub == s[i] {
					continue
				}
				repaired[i] = sub
				if b, ok := packUnit(repaired); ok && crc.Check8(b[:2], b[2]) {
					return b, true
				}
			}
		}
	}
	for c := 0; c < nCopies; c++ {
		s := seg(c)
		for i := 0; i < unitBlocks; i++ {
			for j := i + 1; j < unitBlocks; j++ {
				copy(repaired, s)
				for si := colorspace.Color(0); si < colorspace.NumDataColors; si++ {
					if si == s[i] {
						continue
					}
					repaired[i] = si
					for sj := colorspace.Color(0); sj < colorspace.NumDataColors; sj++ {
						if sj == s[j] {
							continue
						}
						repaired[j] = sj
						if b, ok := packUnit(repaired); ok && crc.Check8(b[:2], b[2]) {
							return b, true
						}
					}
					repaired[j] = s[j]
				}
			}
		}
	}
	return [3]byte{}, false
}

// packUnit packs 12 blocks into the unit's 3 bytes; false when any block
// is non-data (black misread). Returning a value array keeps the per-CRC
// trial packing allocation-free.
func packUnit(seg []colorspace.Color) ([3]byte, bool) {
	var b [3]byte
	for i, c := range seg {
		if !c.IsData() {
			return [3]byte{}, false
		}
		b[i/4] |= c.Bits() << uint(6-2*(i%4))
	}
	return b, true
}
