package core

import (
	"fmt"

	"rainbar/internal/colorspace"
	"rainbar/internal/geometry"
	"rainbar/internal/raster"
	"rainbar/internal/vision"
)

// locatorMap holds the capture-space positions of the three code-locator
// columns plus localization diagnostics.
type locatorMap struct {
	// left, mid, right hold one point per locator row (geometry.LocatorRows
	// order). found marks positions confirmed by black pixels; the rest are
	// dead-reckoned predictions.
	left, mid, right    []geometry.Point
	leftOK, midOK, rgOK []bool
	// misses counts locators that had to be dead-reckoned.
	misses int
}

// locateAll runs the progressive localization of §III-E for all three
// columns. The left and right columns are seeded by the corner-tracker
// centers (the CT center is the first code locator); the middle column's
// first locator is searched around the midpoint of the two CT centers.
// With a scratch, the returned locatorMap is scratch-owned.
func (c *Codec) locateAll(img *raster.Image, det *detection, sc *decodeScratch) (*locatorMap, error) {
	return c.locateAllMode(img, det, false, sc)
}

// locateAllMode is locateAll with the recovery ladder's rescue switch: in
// rescue mode the first-middle search widens (double the walk span, a
// taller vertical fan) and, when even that fails, the middle column is
// synthesized COBRA-style from the outer-column midpoints — a degraded
// but usable fix — instead of reporting ErrLocatorLost.
func (c *Codec) locateAllMode(img *raster.Image, det *detection, rescue bool, sc *decodeScratch) (*locatorMap, error) {
	cl := colorspace.NewClassifier(det.tv)
	n := len(c.locRows)

	var lm *locatorMap
	if sc != nil {
		lm = &sc.lm
	} else {
		lm = &locatorMap{}
	}
	lm.left = grow(lm.left, n)
	lm.leftOK = grow(lm.leftOK, n)
	lm.right = grow(lm.right, n)
	lm.rgOK = grow(lm.rgOK, n)
	lm.mid = grow(lm.mid, n)
	lm.midOK = grow(lm.midOK, n)
	lm.misses = 0
	c.locateColumn(img, cl, det.ctLeft, det.bst, lm.left, lm.leftOK)
	c.locateColumn(img, cl, det.ctRight, det.bst, lm.right, lm.rgOK)

	synthMid := func(ok bool) {
		for i := 0; i < n; i++ {
			lm.mid[i] = geometry.Mid(lm.left[i], lm.right[i])
			lm.midOK[i] = ok
		}
	}
	if c.cfg.DisableMiddleLocators {
		// Ablation: synthesize the middle column as straight midpoints of
		// the outer columns — exactly the information COBRA has.
		synthMid(true)
		return lm, nil
	}

	maxOff, dyFan := 0.15, 2
	if rescue {
		maxOff, dyFan = 0.30, 4
	}
	first, err := c.findFirstMiddle(img, cl, det, maxOff, dyFan)
	switch {
	case err == nil:
		c.locateColumn(img, cl, first, det.bst, lm.mid, lm.midOK)
	case rescue:
		// Last resort: midpoint synthesis, every row counted as a miss.
		synthMid(false)
	default:
		return nil, err
	}

	// Cross-column consistency: the three locators of one row are
	// collinear on screen, so under any projective view mid[i] must lie
	// near the line through left[i] and right[i] (the residual is the
	// lens bow, a couple of pixels). A middle walk that locked onto the
	// wrong row — an off-by-one lock-in shifts every block the column
	// anchors by a full row — lands a block height off that line and is
	// snapped back onto it, keeping the walk's x.
	for i := 0; i < n; i++ {
		span := lm.right[i].X - lm.left[i].X
		if span <= 1 {
			continue
		}
		t := (lm.mid[i].X - lm.left[i].X) / span
		lineY := lm.left[i].Y + (lm.right[i].Y-lm.left[i].Y)*t
		if d := lm.mid[i].Y - lineY; d > 0.7*det.bst || -d > 0.7*det.bst {
			lm.mid[i] = geometry.Point{X: lm.mid[i].X, Y: lineY}
			lm.midOK[i] = false
		}
	}

	for i := 0; i < n; i++ {
		if !lm.leftOK[i] {
			lm.misses++
		}
		if !lm.midOK[i] {
			lm.misses++
		}
		if !lm.rgOK[i] {
			lm.misses++
		}
	}
	return lm, nil
}

// locateColumn walks one locator column downward, writing the n located
// points into pts and confirmation flags into ok (both len n, provided by
// the caller). Each locator is predicted from the running step vector (two
// blocks below the previous locator, following the column's local
// direction) and corrected with the K-means location-correction iteration;
// a window with no black pixels leaves the prediction in place (dead
// reckoning) so one blurred locator does not derail the rest of the column.
func (c *Codec) locateColumn(img *raster.Image, cl colorspace.Classifier, start geometry.Point, bst float64, pts []geometry.Point, ok []bool) {
	n := len(pts)
	clear(ok)

	pts[0], _ = vision.KMeansCorrect(img, cl, start, bst)
	ok[0] = true
	step := geometry.Point{X: 0, Y: 2 * bst}

	if c.cfg.DisableLocationCorrection {
		// Ablation (§III-E): pure dead reckoning — every locator predicted
		// two blocks below the previous, never corrected.
		for i := 1; i < n; i++ {
			pts[i] = pts[i-1].Add(step)
		}
		return
	}

	for i := 1; i < n; i++ {
		pred := pts[i-1].Add(step)
		corrected, found := vision.KMeansCorrect(img, cl, pred, bst*1.1)
		// Reject corrections that jump implausibly far: they have latched
		// onto a different black block.
		switch {
		case found && corrected.Dist(pred) <= 0.9*bst:
			pts[i] = corrected
			ok[i] = true
			step = pts[i].Sub(pts[i-1])
		case found && corrected.Dist(pred) <= 1.5*bst:
			// Weak acceptance: keep the point but do not update the step.
			pts[i] = corrected
			ok[i] = true
		default:
			pts[i] = pred
		}
	}
}

// findFirstMiddle implements §III-E's search for the first middle-column
// locator. The locator shares its grid row with the two corner-tracker
// centers, so it must lie ON the line between them — but under perspective
// its position ALONG that line shifts away from the naive midpoint by an
// amount that grows with screen size and view angle, so a fixed box around
// the midpoint (the paper's 3·BST) misses it on large screens. The search
// therefore walks the CT line outward from the midpoint, validates each
// black hit by its 4-direction extent, refines with location correction,
// and accepts the first candidate whose refined center stays on the line.
// maxOff bounds the walk (fraction of the CT span each way) and dyFan the
// vertical fan; the recovery rescan widens both.
func (c *Codec) findFirstMiddle(img *raster.Image, cl colorspace.Classifier, det *detection, maxOff float64, dyFan int) (geometry.Point, error) {
	p := geometry.Mid(det.ctLeft, det.ctRight)
	// Blur erodes the classified black extent well below the true block
	// size at long range, so the lower bound is permissive.
	bMin := int(det.bst * 0.25)
	bMax := int(det.bst*2.0 + 0.5)
	if bMin < 1 {
		bMin = 1
	}

	span := det.ctRight.Sub(det.ctLeft)
	spanLen := det.ctLeft.Dist(det.ctRight)
	lineResidual := func(q geometry.Point) float64 {
		v := q.Sub(det.ctLeft)
		cross := v.X*span.Y - v.Y*span.X
		if cross < 0 {
			cross = -cross
		}
		return cross / spanLen
	}

	probe := func(cand geometry.Point) (geometry.Point, bool) {
		up, down, left, right := vision.BlackExtent(img, cl, cand, bMax+1)
		if w := left + right + 1; w < bMin || w > bMax {
			return geometry.Point{}, false
		}
		if h := up + down + 1; h < bMin || h > bMax {
			return geometry.Point{}, false
		}
		refined, ok := vision.KMeansCorrect(img, cl, cand, det.bst)
		if !ok || lineResidual(refined) > 0.6*det.bst {
			return geometry.Point{}, false
		}
		return refined, true
	}

	// Walk the line outward: t = 0.5 ± k·step, up to maxOff of the span
	// each way (0.15 covers >30° of foreshortening), with a small vertical
	// fan to survive line-estimate error and lens bow.
	step := 1.0 / spanLen // one pixel along the line
	for k := 0; float64(k)*step <= maxOff; k++ {
		for _, sign := range [2]float64{1, -1} {
			if k == 0 && sign < 0 {
				continue
			}
			t := 0.5 + sign*float64(k)*step
			base := geometry.Lerp(det.ctLeft, det.ctRight, t)
			for dy := -dyFan; dy <= dyFan; dy++ {
				cand := geometry.Point{X: base.X, Y: base.Y + float64(dy)}
				x, y := int(cand.X+0.5), int(cand.Y+0.5)
				if !img.In(x, y) || cl.ClassifyRGB(img.At(x, y)) != colorspace.Black {
					continue
				}
				if refined, ok := probe(cand); ok {
					return refined, nil
				}
			}
		}
	}
	return geometry.Point{}, fmt.Errorf("%w: first middle locator not found near (%.0f, %.0f)", ErrLocatorLost, p.X, p.Y)
}

// anchors computes, for a given grid row, the capture-space positions of
// the left, middle and right locator columns at that row, interpolating
// between (or extrapolating beyond) the located locator rows.
func (c *Codec) anchors(lm *locatorMap, gridRow int) (l, m, r geometry.Point) {
	t, i0, i1 := bracket(c.locRows, gridRow)
	l = geometry.Lerp(lm.left[i0], lm.left[i1], t)
	m = geometry.Lerp(lm.mid[i0], lm.mid[i1], t)
	r = geometry.Lerp(lm.right[i0], lm.right[i1], t)
	return l, m, r
}

// bracket finds locator-row indices i0 < i1 and the interpolation factor t
// such that row corresponds to Lerp(rows[i0], rows[i1], t). Rows outside
// the locator span extrapolate from the nearest pair.
func bracket(rows []int, row int) (t float64, i0, i1 int) {
	last := len(rows) - 1
	switch {
	case row <= rows[0]:
		i0, i1 = 0, 1
	case row >= rows[last]:
		i0, i1 = last-1, last
	default:
		for i := 0; i < last; i++ {
			if row >= rows[i] && row < rows[i+1] {
				i0, i1 = i, i+1
				break
			}
		}
	}
	t = float64(row-rows[i0]) / float64(rows[i1]-rows[i0])
	return t, i0, i1
}

// cellCenter maps grid cell (row, col) to capture coordinates from the
// row's three locator anchors.
//
// The paper's Eq. 1 interpolates linearly within each half-row. Linear
// interpolation of a projective map leaves a residual that peaks mid-span
// and grows with the span length — negligible on small grids, but on the
// S4's 147-column grid at a 10° view angle it reaches most of a block and
// floods Reed-Solomon. The three collinear anchors determine the row's
// 1-D projective map *exactly* (three points fix its three degrees of
// freedom), so we fit that map instead and add the lens bow back as a
// quadratic through the middle anchor's off-chord offset. When the middle
// anchor sits exactly halfway (e.g. the no-middle-column ablation
// synthesizes it as the midpoint), the fit degenerates to Eq. 1's linear
// interpolation.
func (c *Codec) cellCenter(lm *locatorMap, row, col int) geometry.Point {
	colL, colM, colR := c.cfg.Geometry.LocatorCols()
	l, m, r := c.anchors(lm, row)

	chord := r.Sub(l)
	chordLen2 := chord.X*chord.X + chord.Y*chord.Y
	if chordLen2 < 1 {
		return geometry.Lerp(l, r, float64(col-colL)/float64(colR-colL))
	}
	// Chord parameter and off-chord offset of the middle anchor.
	v := m.Sub(l)
	tm := (v.X*chord.X + v.Y*chord.Y) / chordLen2
	om := (v.X*chord.Y - v.Y*chord.X) / chordLen2 // in chord-relative units

	t := projectiveParam(float64(col), float64(colL), float64(colM), float64(colR), tm)
	// Lens bow: quadratic through (0,0), (tm,om), (1,0).
	var bow float64
	if tm > 0.05 && tm < 0.95 {
		bow = om * t * (1 - t) / (tm * (1 - tm))
	}
	normal := geometry.Point{X: chord.Y, Y: -chord.X}
	return l.Add(chord.Scale(t)).Add(normal.Scale(bow))
}

// projectiveParam returns the 1-D projective parameter t(col) with
// t(cL)=0, t(cM)=tm, t(cR)=1 — the fractional-linear map
// t = a(col-cL) / (e(col-cL) + 1). Degenerate fits (tm near the affine
// value, or an ill-conditioned denominator) fall back to linear.
func projectiveParam(col, cL, cM, cR, tm float64) float64 {
	linear := (col - cL) / (cR - cL)
	dm := cM - cL
	dr := cR - cL
	affineTM := dm / dr
	if tm <= 0 || tm >= 1 {
		return linear
	}
	// Solve for e and a from t(cM)=tm, t(cR)=1.
	// From t(cR)=1: a·dr = e·dr + 1  =>  a = e + 1/dr.
	// From t(cM)=tm: a·dm = tm·(e·dm + 1)
	//   => (e + 1/dr)·dm = tm·e·dm + tm
	//   => e·dm(1 - tm) = tm - dm/dr
	denom := dm * (1 - tm)
	if denom < 1e-9 && denom > -1e-9 {
		return linear
	}
	e := (tm - affineTM) / denom
	a := e + 1/dr
	w := e*(col-cL) + 1
	if w < 0.2 { // implausible foreshortening; trust linear instead
		return linear
	}
	return a * (col - cL) / w
}
