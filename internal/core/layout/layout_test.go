package layout

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"rainbar/internal/colorspace"
)

// s4 returns the paper's reference geometry: Galaxy S4 screen, 13 px blocks.
func s4(t *testing.T) *Geometry {
	t.Helper()
	g, err := NewGeometry(1920, 1080, 13)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestS4GridDimensions(t *testing.T) {
	g := s4(t)
	// Paper §III-B: 1920x1080 at 13 px -> 147x83 blocks.
	if g.Cols() != 147 || g.Rows() != 83 {
		t.Fatalf("grid %dx%d, want 147x83", g.Cols(), g.Rows())
	}
}

func TestS4CapacityMatchesPaperAnalysis(t *testing.T) {
	g := s4(t)
	// The paper reports 11520 code-area blocks for RainBar on this screen.
	// Our cell-exact accounting gives 11609 (+0.8%): the paper's round
	// "2.5 more columns, 4 more rows than COBRA" arithmetic slightly
	// underestimates its own layout. What must hold is the ordering
	// against COBRA's 10857 and RDCode's ~10508.
	got := g.CodeAreaBlocks()
	if got < 11400 || got > 11700 {
		t.Fatalf("code area = %d blocks, want ≈11520 (paper) / 11609 (exact)", got)
	}
	if got <= 10857 {
		t.Fatalf("code area %d not larger than COBRA's 10857", got)
	}
}

func TestNewGeometryValidation(t *testing.T) {
	if _, err := NewGeometry(100, 100, 1); err == nil {
		t.Error("block size 1 accepted")
	}
	if _, err := NewGeometry(100, 100, 13); err == nil {
		t.Error("7x7 grid accepted")
	}
	if _, err := NewGeometry(19*8, 10*8, 8); err != nil {
		t.Errorf("minimum grid rejected: %v", err)
	}
}

func TestMustGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGeometry did not panic")
		}
	}()
	MustGeometry(10, 10, 5)
}

func TestKindAtStructure(t *testing.T) {
	g := s4(t)
	cases := []struct {
		r, c int
		want Kind
	}{
		{0, 0, KindTrackingBar},
		{0, 73, KindTrackingBar},
		{82, 146, KindTrackingBar},
		{40, 0, KindTrackingBar},
		{40, 146, KindTrackingBar},
		{1, 1, KindCTRing},
		{2, 2, KindCTCenter},
		{3, 3, KindCTRing},
		{1, 145, KindCTRing},
		{2, 144, KindCTCenter},
		{1, 4, KindHeader},
		{1, 142, KindHeader},
		{1, 73, KindHeader},
		{2, 73, KindLocator},  // first middle locator
		{4, 2, KindLocator},   // left column
		{4, 144, KindLocator}, // right column
		{80, 73, KindLocator}, // deep middle column
		{3, 73, KindData},     // separator between locators carries data
		{5, 2, KindData},      // separator in left column
		{2, 50, KindData},     // plain code area
		{40, 40, KindData},
		{-1, 0, 0},
		{0, 200, 0},
	}
	for _, c := range cases {
		if got := g.KindAt(c.r, c.c); got != c.want {
			t.Errorf("KindAt(%d, %d) = %v, want %v", c.r, c.c, got, c.want)
		}
	}
}

func TestEveryCellClassifiedExactlyOnce(t *testing.T) {
	g := s4(t)
	counts := map[Kind]int{}
	for r := 0; r < g.Rows(); r++ {
		for c := 0; c < g.Cols(); c++ {
			k := g.KindAt(r, c)
			if k == 0 {
				t.Fatalf("cell (%d,%d) unclassified", r, c)
			}
			counts[k]++
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != g.Rows()*g.Cols() {
		t.Fatalf("classified %d cells, want %d", total, g.Rows()*g.Cols())
	}
	if counts[KindCTCenter] != 2 {
		t.Errorf("%d CT centers, want 2", counts[KindCTCenter])
	}
	if counts[KindCTRing] != 16 {
		t.Errorf("%d CT ring cells, want 16", counts[KindCTRing])
	}
	wantBar := 2*g.Cols() + 2*(g.Rows()-2)
	if counts[KindTrackingBar] != wantBar {
		t.Errorf("%d tracking-bar cells, want %d", counts[KindTrackingBar], wantBar)
	}
	if counts[KindData] != len(g.DataCells()) {
		t.Errorf("KindData count %d != DataCells %d", counts[KindData], len(g.DataCells()))
	}
	if counts[KindHeader] != len(g.HeaderCells()) {
		t.Errorf("KindHeader count %d != HeaderCells %d", counts[KindHeader], len(g.HeaderCells()))
	}
}

func TestLocatorColumnsAlignWithCTCenters(t *testing.T) {
	g := s4(t)
	l, m, r := g.LocatorCols()
	if l != g.CTLeftCenter().Col {
		t.Errorf("left locator col %d != left CT center col %d", l, g.CTLeftCenter().Col)
	}
	if r != g.CTRightCenter().Col {
		t.Errorf("right locator col %d != right CT center col %d", r, g.CTRightCenter().Col)
	}
	if mid := (l + r) / 2; m != mid {
		t.Errorf("middle locator col %d not at midpoint %d", m, mid)
	}
}

func TestLocatorRowsSpacing(t *testing.T) {
	g := s4(t)
	rows := g.LocatorRows()
	if rows[0] != g.CTLeftCenter().Row {
		t.Errorf("first locator row %d != CT center row %d", rows[0], g.CTLeftCenter().Row)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i]-rows[i-1] != 2 {
			t.Fatalf("locator rows %d, %d not separated by one block", rows[i-1], rows[i])
		}
	}
	if last := rows[len(rows)-1]; last > g.Rows()-2 {
		t.Errorf("last locator row %d inside tracking bar", last)
	}
}

func TestDataCellsRowMajorAndUnique(t *testing.T) {
	g := s4(t)
	cells := g.DataCells()
	seen := make(map[Cell]bool, len(cells))
	for i, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate data cell %v", c)
		}
		seen[c] = true
		if g.KindAt(c.Row, c.Col) != KindData {
			t.Fatalf("data cell %v has kind %v", c, g.KindAt(c.Row, c.Col))
		}
		if i > 0 {
			prev := cells[i-1]
			if c.Row < prev.Row || (c.Row == prev.Row && c.Col <= prev.Col) {
				t.Fatalf("data cells not row-major at %d: %v after %v", i, c, prev)
			}
		}
	}
}

func TestCapacityAccessors(t *testing.T) {
	g := s4(t)
	if got, want := g.DataCapacityBits(), len(g.DataCells())*2; got != want {
		t.Errorf("DataCapacityBits = %d, want %d", got, want)
	}
	if got, want := g.DataCapacityBytes(), g.DataCapacityBits()/8; got != want {
		t.Errorf("DataCapacityBytes = %d, want %d", got, want)
	}
	if got, want := g.HeaderCapacityBits(), len(g.HeaderCells())*2; got != want {
		t.Errorf("HeaderCapacityBits = %d, want %d", got, want)
	}
	// The S4 header strip must hold the 72-bit header comfortably.
	if g.HeaderCapacityBits() < 72 {
		t.Errorf("header strip only %d bits", g.HeaderCapacityBits())
	}
}

func TestBlockCenterPx(t *testing.T) {
	g := s4(t)
	x, y := g.BlockCenterPx(0, 0)
	if x != 6.5 || y != 6.5 {
		t.Errorf("center of (0,0) = (%v, %v), want (6.5, 6.5)", x, y)
	}
	x, y = g.BlockCenterPx(2, 3)
	if x != 3*13+6.5 || y != 2*13+6.5 {
		t.Errorf("center of (2,3) = (%v, %v)", x, y)
	}
}

func TestTrackingBarColorCycle(t *testing.T) {
	want := []colorspace.Color{colorspace.White, colorspace.Red, colorspace.Green, colorspace.Blue}
	for seq := uint16(0); seq < 8; seq++ {
		if got := TrackingBarColor(seq); got != want[seq%4] {
			t.Errorf("TrackingBarColor(%d) = %v, want %v", seq, got, want[seq%4])
		}
	}
}

func TestBarDiff(t *testing.T) {
	cases := []struct {
		observed, own colorspace.Color
		want          int
	}{
		{colorspace.White, colorspace.White, 0},
		{colorspace.Red, colorspace.White, 1},
		{colorspace.White, colorspace.Blue, 1}, // wrap: 11 -> 00 is difference 1
		{colorspace.Blue, colorspace.White, 3},
		{colorspace.Green, colorspace.White, 2},
	}
	for _, c := range cases {
		if got := BarDiff(c.observed, c.own); got != c.want {
			t.Errorf("BarDiff(%v, %v) = %d, want %d", c.observed, c.own, got, c.want)
		}
	}
}

func TestSmallGeometryStillWellFormed(t *testing.T) {
	// The smallest permitted grid must still classify coherently.
	g, err := NewGeometry(19*6, 10*6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.DataCells()) == 0 {
		t.Fatal("no data cells in minimal grid")
	}
	l, m, r := g.LocatorCols()
	if !(l < m && m < r) {
		t.Fatalf("locator columns not ordered: %d, %d, %d", l, m, r)
	}
	if g.HeaderCapacityBits() < 72 {
		t.Skipf("minimal grid header strip %d bits; header needs a wider screen", g.HeaderCapacityBits())
	}
}

func TestS4LayoutGoldenHash(t *testing.T) {
	// The full S4 cell classification is frozen: any layout change breaks
	// wire compatibility between sender and receiver, so it must be a
	// deliberate, reviewed act (update the constant when it is).
	g := s4(t)
	h := sha256.New()
	for r := 0; r < g.Rows(); r++ {
		row := make([]byte, g.Cols())
		for c := 0; c < g.Cols(); c++ {
			row[c] = byte(g.KindAt(r, c))
		}
		h.Write(row)
	}
	got := hex.EncodeToString(h.Sum(nil))
	const want = "de258731167907f2f61c1efa9ff5b5913b7b4cba611d215f1f849697811c25b6"
	if got != want {
		t.Fatalf("S4 layout hash changed:\n got %s\nwant %s", got, want)
	}
}
