// Package layout defines the RainBar color-barcode frame geometry
// (paper §III-B, Fig. 2): four border tracking bars, two corner trackers
// (top-left green ring, top-right red ring), a header row between the
// trackers, three columns of code locators (left and right aligned with
// the corner-tracker centers, one in the middle), and the data-carrying
// code area — which, unlike COBRA, includes the colored blocks separating
// consecutive code locators.
//
// All geometry is expressed on a grid of square blocks of BlockSize pixels;
// the Galaxy S4 defaults (1920x1080, 13 px blocks -> 147x83 grid) reproduce
// the paper's capacity analysis.
package layout

import (
	"fmt"

	"rainbar/internal/colorspace"
)

// Structural grid constants (block units).
const (
	// ctSize is the corner-tracker side length (3x3 blocks).
	ctSize = 3
	// locatorSpacing is the row distance between consecutive code
	// locators in a column; the block between them carries data.
	locatorSpacing = 2
)

// Cell addresses one block in the grid.
type Cell struct {
	Row, Col int
}

// Kind classifies a grid cell.
type Kind uint8

// Cell kinds. Data cells carry 2 payload bits each; header cells carry
// 2 header bits each; the rest are structural.
const (
	KindTrackingBar Kind = iota + 1
	KindCTRing
	KindCTCenter
	KindHeader
	KindLocator
	KindData
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindTrackingBar:
		return "tracking-bar"
	case KindCTRing:
		return "ct-ring"
	case KindCTCenter:
		return "ct-center"
	case KindHeader:
		return "header"
	case KindLocator:
		return "locator"
	case KindData:
		return "data"
	default:
		return "invalid"
	}
}

// Geometry is a validated RainBar grid for a given screen and block size.
// It is immutable after NewGeometry; methods are safe for concurrent use.
type Geometry struct {
	cols, rows int
	blockSize  int
	screenW    int
	screenH    int

	colL, colM, colR int   // locator column indices
	locRows          []int // locator row indices, ascending
	dataCells        []Cell
	headerCells      []Cell
}

// Minimum grid dimensions for the layout to fit (two corner trackers, a
// header gap, three distinct locator columns, and at least two locator
// rows).
const (
	MinCols = 19
	MinRows = 10
)

// NewGeometry lays out a grid on a screenW x screenH pixel screen with
// square blocks of blockSize pixels.
func NewGeometry(screenW, screenH, blockSize int) (*Geometry, error) {
	if blockSize < 2 {
		return nil, fmt.Errorf("layout: block size %d px too small", blockSize)
	}
	cols := screenW / blockSize
	rows := screenH / blockSize
	if cols < MinCols || rows < MinRows {
		return nil, fmt.Errorf("layout: grid %dx%d below minimum %dx%d (screen %dx%d, block %d)",
			cols, rows, MinCols, MinRows, screenW, screenH, blockSize)
	}
	g := &Geometry{
		cols:      cols,
		rows:      rows,
		blockSize: blockSize,
		screenW:   screenW,
		screenH:   screenH,
		colL:      2,
		colM:      (cols - 1) / 2,
		colR:      cols - 3,
	}
	for r := ctSize - 1; r <= rows-2; r += locatorSpacing {
		g.locRows = append(g.locRows, r)
	}
	for r := 1; r <= rows-2; r++ {
		for c := 1; c <= cols-2; c++ {
			switch g.KindAt(r, c) {
			case KindData:
				g.dataCells = append(g.dataCells, Cell{r, c})
			case KindHeader:
				g.headerCells = append(g.headerCells, Cell{r, c})
			}
		}
	}
	return g, nil
}

// MustGeometry is NewGeometry but panics on error, for constant configs.
func MustGeometry(screenW, screenH, blockSize int) *Geometry {
	g, err := NewGeometry(screenW, screenH, blockSize)
	if err != nil {
		panic(err)
	}
	return g
}

// Cols returns the number of block columns.
func (g *Geometry) Cols() int { return g.cols }

// Rows returns the number of block rows.
func (g *Geometry) Rows() int { return g.rows }

// BlockSize returns the block side length in pixels.
func (g *Geometry) BlockSize() int { return g.blockSize }

// ScreenW returns the screen width in pixels.
func (g *Geometry) ScreenW() int { return g.screenW }

// ScreenH returns the screen height in pixels.
func (g *Geometry) ScreenH() int { return g.screenH }

// LocatorCols returns the left, middle and right locator column indices.
func (g *Geometry) LocatorCols() (left, mid, right int) {
	return g.colL, g.colM, g.colR
}

// LocatorRows returns the locator row indices (ascending). The first entry
// is the corner-tracker center row.
func (g *Geometry) LocatorRows() []int {
	out := make([]int, len(g.locRows))
	copy(out, g.locRows)
	return out
}

// CTLeftCenter returns the grid cell of the left corner-tracker center.
func (g *Geometry) CTLeftCenter() Cell { return Cell{ctSize - 1, 2} }

// CTRightCenter returns the grid cell of the right corner-tracker center.
func (g *Geometry) CTRightCenter() Cell { return Cell{ctSize - 1, g.cols - 3} }

// inCT reports whether (r, c) is inside one of the two corner trackers.
func (g *Geometry) inCT(r, c int) bool {
	if r < 1 || r > ctSize {
		return false
	}
	return (c >= 1 && c <= ctSize) || (c >= g.cols-1-ctSize && c <= g.cols-2)
}

// KindAt classifies cell (r, c). Out-of-grid cells return 0.
func (g *Geometry) KindAt(r, c int) Kind {
	if r < 0 || r >= g.rows || c < 0 || c >= g.cols {
		return 0
	}
	if r == 0 || r == g.rows-1 || c == 0 || c == g.cols-1 {
		return KindTrackingBar
	}
	if g.inCT(r, c) {
		ct := g.CTLeftCenter()
		if c > g.cols/2 {
			ct = g.CTRightCenter()
		}
		if r == ct.Row && c == ct.Col {
			return KindCTCenter
		}
		return KindCTRing
	}
	if r == 1 && c > ctSize && c < g.cols-1-ctSize {
		return KindHeader
	}
	if (c == g.colL || c == g.colM || c == g.colR) && g.isLocatorRow(r) {
		return KindLocator
	}
	return KindData
}

func (g *Geometry) isLocatorRow(r int) bool {
	return r >= ctSize-1 && r <= g.rows-2 && (r-(ctSize-1))%locatorSpacing == 0
}

// DataCells returns the data cells in row-major order. The returned slice
// is shared; callers must not modify it.
func (g *Geometry) DataCells() []Cell { return g.dataCells }

// HeaderCells returns the header cells left to right (shared; read-only).
func (g *Geometry) HeaderCells() []Cell { return g.headerCells }

// DataCapacityBits returns the payload capacity of the code area in bits.
func (g *Geometry) DataCapacityBits() int {
	return len(g.dataCells) * colorspace.BitsPerBlock
}

// DataCapacityBytes returns the payload capacity in whole bytes.
func (g *Geometry) DataCapacityBytes() int { return g.DataCapacityBits() / 8 }

// HeaderCapacityBits returns the bit capacity of the header row.
func (g *Geometry) HeaderCapacityBits() int {
	return len(g.headerCells) * colorspace.BitsPerBlock
}

// CodeAreaBlocks counts the blocks the paper's capacity analysis calls
// "code area": data blocks plus the header blocks (§III-B counts the header
// as part of the code area).
func (g *Geometry) CodeAreaBlocks() int {
	return len(g.dataCells) + len(g.headerCells)
}

// BlockCenterPx returns the pixel center of cell (r, c) on the rendered
// screen.
func (g *Geometry) BlockCenterPx(r, c int) (x, y float64) {
	bs := float64(g.blockSize)
	return (float64(c) + 0.5) * bs, (float64(r) + 0.5) * bs
}

// TrackingBarColor returns the tracking-bar color for a frame sequence
// number: the low 2 bits of seq select white/red/green/blue, so any four
// consecutive frames use distinct bars (§III-B).
func TrackingBarColor(seq uint16) colorspace.Color {
	return colorspace.FromBits(byte(seq))
}

// BarDiff returns the cyclic difference d_t between an observed tracking
// bar color and the frame's own bar color (from its sequence number):
// 0 = row belongs to this frame, 1 = row belongs to the next frame,
// >= 2 = inconsistent (drop the capture).
func BarDiff(observed, own colorspace.Color) int {
	return int((uint8(observed) + colorspace.NumDataColors - uint8(own)) % colorspace.NumDataColors)
}

// CTRingColorLeft and CTRingColorRight are the corner-tracker ring colors
// (paper: green top-left, red top-right).
const (
	CTRingColorLeft  = colorspace.Green
	CTRingColorRight = colorspace.Red
)
