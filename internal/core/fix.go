package core

import (
	"rainbar/internal/geometry"
	"rainbar/internal/raster"
)

// Fix is the capture-space geometric solution for one captured image:
// corner trackers found, locator columns walked, ready to map any grid
// cell to capture coordinates. It is the reusable front half of the
// decoder; DecodeGrid builds one internally, and other codecs sharing the
// RainBar structural layout (e.g. the LightSync baseline) use it to avoid
// reimplementing detection.
type Fix struct {
	codec *Codec
	det   *detection
	lm    *locatorMap
}

// FixImage runs brightness assessment, corner-tracker detection and
// progressive locator localization on a capture.
func (c *Codec) FixImage(img *raster.Image) (*Fix, error) {
	det, err := c.detect(img, nil)
	if err != nil {
		return nil, err
	}
	lm, err := c.locateAll(img, det, nil)
	if err != nil {
		return nil, err
	}
	return &Fix{codec: c, det: det, lm: lm}, nil
}

// CellCenter maps grid cell (row, col) to capture coordinates.
func (f *Fix) CellCenter(row, col int) geometry.Point {
	return f.codec.cellCenter(f.lm, row, col)
}

// TV returns the adaptive value threshold estimated for the capture.
func (f *Fix) TV() float64 { return f.det.tv }

// BlockSize returns the estimated block side in capture pixels.
func (f *Fix) BlockSize() float64 { return f.det.bst }

// LocatorMisses counts dead-reckoned locators (localization diagnostics).
func (f *Fix) LocatorMisses() int { return f.lm.misses }
