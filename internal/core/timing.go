package core

//lint:file-allow RB-D1 this file is the §IV-D decode-time stopwatch: every time.Now/Since here feeds only StageTimings telemetry, never a decode decision, so determinism of decoded bits is unaffected

import (
	"time"

	"rainbar/internal/raster"
)

// StageTimings breaks one capture's decode into the paper's pipeline
// stages (§III-C..F), for the §IV-D decode-time analysis.
type StageTimings struct {
	// Detect covers brightness assessment and corner-tracker detection.
	Detect time.Duration
	// Locate covers the progressive locator localization.
	Locate time.Duration
	// Extract covers block sampling, classification, header and bars.
	Extract time.Duration
	// Correct covers RS decoding and checksum verification.
	Correct time.Duration
}

// Total returns the summed pipeline time.
func (s StageTimings) Total() time.Duration {
	return s.Detect + s.Locate + s.Extract + s.Correct
}

// DecodeFrameTimed is DecodeFrame with a per-stage stopwatch. The timings
// use the wall clock and are only meaningful relative to each other.
func (c *Codec) DecodeFrameTimed(img *raster.Image) (payload []byte, timings StageTimings, err error) {
	t0 := time.Now()
	det, err := c.detect(img, nil)
	timings.Detect = time.Since(t0)
	if err != nil {
		return nil, timings, err
	}

	t1 := time.Now()
	lm, err := c.locateAll(img, det, nil)
	timings.Locate = time.Since(t1)
	if err != nil {
		return nil, timings, err
	}

	t2 := time.Now()
	gd, err := c.extractGrid(img, det, lm, img.Sharpness(), nil)
	timings.Extract = time.Since(t2)
	if err != nil {
		return nil, timings, err
	}

	t3 := time.Now()
	payload, err = c.AssemblePayload(gd.Cells, gd.Header)
	timings.Correct = time.Since(t3)
	return payload, timings, err
}
