package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"rainbar/internal/colorspace"
	"rainbar/internal/core/header"
	"rainbar/internal/core/layout"
	"rainbar/internal/obs"
	"rainbar/internal/raster"
)

// Receiver reassembles logical frames from a stream of captures, solving
// the §III-D synchronization problem: when the display rate exceeds half
// the capture rate, each capture holds the top of frame i and the bottom
// of frame i+1; the per-row tracking bars say which rows belong to whom.
// It also performs blur assessment: when several captures contribute the
// same row of the same frame (f_d <= f_c/2), the sharpest capture wins.
//
// A Receiver is not safe for concurrent use.
type Receiver struct {
	codec *Codec
	// DisableSync ignores tracking bars and treats every capture as one
	// whole frame — the E16 ablation (COBRA-like behavior).
	DisableSync bool

	partial map[uint16]*partialFrame
	done    map[uint16]*DecodedFrame

	// lastTop is the most recent top-frame sequence read from a valid
	// header; it anchors sequence inference for captures whose header row
	// was destroyed (e.g. blended by an LCD transition).
	lastTop    uint16
	lastTopSet bool

	// Decode-recovery ladder activity folded across this receiver's
	// captures and frames (populated only when the codec's RecoveryBudget
	// is on); see RecoveryStats.
	ladderAttempts int
	ladderWins     map[string]int

	// Steady-state scratch: row-attribution planes, the voted-cell buffer
	// and the payload-assembly intermediates, all reused across captures.
	// pfFree/dfFree recycle frame accumulators and decoded frames returned
	// to the pool by Reset.
	owners    []int
	weight    []float64
	voteCells []colorspace.Color
	asm       asmScratch
	pfFree    []*partialFrame
	dfFree    []*DecodedFrame
}

// partialFrame accumulates rows of one logical frame across captures.
type partialFrame struct {
	// hdrVotes tallies the header values observed for this frame across
	// captures. Majority wins: a header fabricated from a blended strip
	// (single-symbol repair can produce a CRC-valid but wrong header) is
	// outvoted by the genuine copies from clean captures.
	hdrVotes map[header.Header]int
	// cellVotes accumulates sharpness-weighted votes per data cell and
	// color. Voting across captures is what makes reassembly robust: a
	// single capture whose rows passed the bar checks but were degraded
	// (LCD-blend band, noise burst) is outvoted by the clean captures of
	// the same rows instead of overwriting them.
	cellVotes [][colorspace.NumDataColors]float64
	// confVotes accumulates confidence-weighted votes in parallel with
	// cellVotes, so the winner's mean classification confidence can be
	// recovered (confVotes/cellVotes). Nil when the recovery ladder is
	// off — the vote outcome itself never depends on it.
	confVotes [][colorspace.NumDataColors]float64
	rowFilled []bool
}

// vote records one observation of cell i with classification confidence
// conf (ignored when soft voting is off).
func (pf *partialFrame) vote(i int, c colorspace.Color, conf, weight float64) {
	if c.IsData() {
		pf.cellVotes[i][c] += weight
		if pf.confVotes != nil {
			pf.confVotes[i][c] += conf * weight
		}
	}
}

// cells materializes the majority color per cell (White where no votes).
func (pf *partialFrame) cellsByVote() []colorspace.Color {
	return pf.cellsByVoteInto(nil)
}

// cellsByVoteInto is cellsByVote writing into dst when its capacity
// suffices.
func (pf *partialFrame) cellsByVoteInto(dst []colorspace.Color) []colorspace.Color {
	out := grow(dst, len(pf.cellVotes))
	for i := range pf.cellVotes {
		best := colorspace.White
		bestW := 0.0
		for c := 0; c < colorspace.NumDataColors; c++ {
			if w := pf.cellVotes[i][c]; w > bestW {
				bestW = w
				best = colorspace.Color(c)
			}
		}
		out[i] = best
	}
	return out
}

// cellsByVoteSoft is cellsByVote plus a per-cell confidence: the winner's
// mean classification confidence scaled by its vote share. The winning
// color is decided exactly as in cellsByVote. The vote-share factor is
// what catches confidently-wrong captures (e.g. splice replays, whose
// cells classify cleanly): a cell contested between captures scores low
// even when every individual classification was certain, so the ladder
// erases contested cells first. Cells with no votes score 0.
func (pf *partialFrame) cellsByVoteSoft() ([]colorspace.Color, []float64) {
	out := make([]colorspace.Color, len(pf.cellVotes))
	conf := make([]float64, len(pf.cellVotes))
	for i := range pf.cellVotes {
		best := colorspace.White
		bestW, total := 0.0, 0.0
		for c := 0; c < colorspace.NumDataColors; c++ {
			w := pf.cellVotes[i][c]
			total += w
			if w > bestW {
				bestW = w
				best = colorspace.Color(c)
			}
		}
		out[i] = best
		if bestW > 0 && pf.confVotes != nil {
			conf[i] = pf.confVotes[i][best] / bestW * (bestW / total)
		}
	}
	return out, conf
}

func (pf *partialFrame) addHeaderVote(h header.Header) {
	pf.hdrVotes[h]++
}

// header returns the majority header, or false when none was observed.
// Ties break toward the lower checksum for determinism.
func (pf *partialFrame) header() (header.Header, bool) {
	var best header.Header
	bestN := 0
	for h, n := range pf.hdrVotes {
		if n > bestN || (n == bestN && h.FrameChecksum < best.FrameChecksum) {
			best = h
			bestN = n
		}
	}
	return best, bestN > 0
}

// DecodedFrame is one reassembled frame.
type DecodedFrame struct {
	Header  header.Header
	Payload []byte // nil if error correction failed
	Err     error  // non-nil when Payload is nil

	// Cells and Conf hold the frame's voted per-cell symbols and mean
	// confidences when decoding failed and the recovery ladder is on —
	// the soft table a transport fuses with a retransmission's captures
	// (cross-round combining). Nil on success or when recovery is off.
	Cells []colorspace.Color
	Conf  []float64
}

// NewReceiver creates a receiver for the codec's format.
func NewReceiver(c *Codec) *Receiver {
	return &Receiver{
		codec:      c,
		partial:    make(map[uint16]*partialFrame),
		done:       make(map[uint16]*DecodedFrame),
		ladderWins: make(map[string]int),
	}
}

// noteTrace folds one recovery trace into the receiver's ladder stats.
func (rx *Receiver) noteTrace(t *RecoveryTrace) {
	if t == nil {
		return
	}
	rx.ladderAttempts += len(t.Attempts)
	if t.Winner != "" {
		rx.ladderWins[t.Winner]++
	}
}

// RecoveryStats reports the decode-recovery ladder's activity across
// everything this receiver ingested: total hypotheses attempted and
// successes per hypothesis ID. The map is a copy. All zero when the
// codec's RecoveryBudget is 0.
func (rx *Receiver) RecoveryStats() (attempts int, successesByHypothesis map[string]int) {
	out := make(map[string]int, len(rx.ladderWins))
	for k, v := range rx.ladderWins {
		out[k] = v
	}
	return rx.ladderAttempts, out
}

// assemble runs payload assembly for a partial frame, through the
// recovery ladder when it is enabled.
func (rx *Receiver) assemble(pf *partialFrame, hdr header.Header) ([]byte, []colorspace.Color, []float64, error) {
	if rx.codec.cfg.RecoveryBudget > 0 {
		cells, conf := pf.cellsByVoteSoft()
		payload, trace, err := rx.codec.AssemblePayloadSoft(cells, conf, hdr)
		rx.noteTrace(trace)
		return payload, cells, conf, err
	}
	// Recovery-off hot path: voted cells and every assembly intermediate
	// come from receiver-owned scratch. The returned payload aliases that
	// scratch — finish copies it into frame-owned storage.
	rx.voteCells = pf.cellsByVoteInto(rx.voteCells)
	payload, err := rx.codec.assemblePayloadScratch(rx.voteCells, hdr, &rx.asm)
	return payload, nil, nil, err
}

// Ingest processes one captured image. Captures whose corner trackers
// cannot be found are skipped with the error returned; the stream
// continues (the sender will retransmit what never completes). Captures
// with an unreadable header are still mined for rows when the sequence
// can be inferred from the tracking bars and the last known sequence.
func (rx *Receiver) Ingest(img *raster.Image) error {
	err := rx.ingest(img)
	rx.codec.recordFailure(err)
	return err
}

// IngestBatch ingests a batch of captures. The per-capture grid decodes —
// pure functions of the image and codec — run in parallel; the stateful
// merge into the receiver then runs strictly sequentially in input order,
// so the receiver's final state (votes, inferred sequences, completed
// frames, ladder stats) is bit-identical to calling Ingest on each capture
// in order. The returned slice holds Ingest's error per capture. With a
// single worker the batch degrades to the sequential loop. IngestBatch
// itself is not safe for concurrent use (same contract as Ingest).
func (rx *Receiver) IngestBatch(imgs []*raster.Image) []error {
	errs := make([]error, len(imgs))
	workers := min(runtime.GOMAXPROCS(0), len(imgs))
	if workers <= 1 {
		for i, img := range imgs {
			errs[i] = rx.Ingest(img)
		}
		return errs
	}
	type slot struct {
		sc  *decodeScratch
		gd  *GridDecode
		err error
	}
	window := 2 * workers
	if window > len(imgs) {
		window = len(imgs)
	}
	slots := make([]slot, window)
	for i := range slots {
		slots[i].sc = getScratch()
	}
	var wg sync.WaitGroup
	for base := 0; base < len(imgs); base += window {
		chunk := imgs[base:min(base+window, len(imgs))]
		for i := range chunk {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				slots[i].gd, slots[i].err = rx.codec.decodeGridLooseScratch(chunk[i], slots[i].sc)
			}(i)
		}
		wg.Wait()
		for i := range chunk {
			err := rx.ingestDecoded(slots[i].gd, slots[i].err)
			rx.codec.recordFailure(err)
			errs[base+i] = err
		}
	}
	for i := range slots {
		putScratch(slots[i].sc)
	}
	return errs
}

// Reset returns the receiver to its initial empty state while keeping
// every internal buffer, so one long-lived receiver can process stream
// after stream without allocating. Resetting recycles all partial and
// completed frames: any DecodedFrame previously returned by Frames, Frame
// or Flush (payload included) is invalidated and must not be used
// afterwards. Callers that retain payloads across streams should keep
// using a fresh Receiver per stream instead.
func (rx *Receiver) Reset() {
	for seq, pf := range rx.partial {
		rx.retire(seq, pf)
	}
	//lint:ordered dfFree is an unordered freelist: recycled DecodedFrames are fully overwritten before reuse, so pop order never reaches any output
	for seq, df := range rx.done {
		rx.dfFree = append(rx.dfFree, df)
		delete(rx.done, seq)
	}
	rx.lastTop, rx.lastTopSet = 0, false
	rx.ladderAttempts = 0
	clear(rx.ladderWins)
}

func (rx *Receiver) ingest(img *raster.Image) error {
	sc := getScratch()
	gd, err := rx.codec.decodeGridLooseScratch(img, sc)
	err = rx.ingestDecoded(gd, err)
	putScratch(sc)
	return err
}

// ingestDecoded folds one capture's grid decode (or its failure) into the
// receiver state. gd may be scratch-owned; it is fully consumed before
// return. Splitting decode from merge is what lets IngestBatch run the
// pure decodes in parallel while keeping this merge — the only part that
// touches receiver state — strictly sequential.
func (rx *Receiver) ingestDecoded(gd *GridDecode, err error) error {
	if err != nil {
		return err
	}
	rx.noteTrace(gd.Recovery)
	if rx.DisableSync {
		if !gd.HeaderOK {
			return fmt.Errorf("core: header unreadable: %w", header.ErrCorrupt)
		}
		rx.ingestWholeFrame(gd)
		return nil
	}

	// A genuine header's frame owns the top of the capture, so the first
	// readable tracking bar must be consistent with it. A header decoded
	// from an LCD-blend region (possibly fabricated by the CRC-trial
	// repair) fails this check and is demoted to the inference path.
	headerTrusted := gd.HeaderOK
	if headerTrusted {
		for r := range gd.BarColors {
			if !gd.BarOK[r] {
				continue
			}
			headerTrusted = gd.RowOwnerFor(r, gd.Header.Seq) >= 0
			break
		}
	}
	// Sequence plausibility: a stream advances monotonically, so a header
	// claiming a sequence far from the last known one is a fabrication
	// whose low bits happened to match the bars (the bar check alone
	// cannot catch those). Such captures fall back to bar inference.
	if headerTrusted && rx.lastTopSet {
		forward := (gd.Header.Seq - rx.lastTop) & header.MaxSeq
		backward := (rx.lastTop - gd.Header.Seq) & header.MaxSeq
		if forward > 16 && backward > 2 {
			headerTrusted = false
		}
	}

	seqTop := gd.Header.Seq
	if !headerTrusted {
		inferred, ok := rx.inferSeq(gd)
		if !ok {
			return fmt.Errorf("core: header unreadable and sequence not inferable: %w", header.ErrCorrupt)
		}
		seqTop = inferred
	}

	// Only captures with a majority of attributable rows are worth
	// ingesting; the unowned minority (blend rows, bar misreads) is simply
	// skipped and supplied by other captures.
	if rx.badRows(gd, seqTop) > rx.codec.cfg.Geometry.Rows()/2 {
		return ErrInconsistentBars
	}

	g := rx.codec.cfg.Geometry
	seqBot := (seqTop + 1) & header.MaxSeq

	// LCD transitions blend the two frames in a band centered on the
	// ownership boundary. Bars inside the band often still classify
	// consistently toward one side while the data cells are mixtures, so
	// every row within blendGuard of an owner transition (or adjacent to
	// an unreadable-bar row) is rejected; other captures, whose boundary
	// sits elsewhere, supply those rows cleanly.
	rx.owners = grow(rx.owners, g.Rows())
	owners := rx.owners
	for r := range owners {
		owners[r] = gd.RowOwnerFor(r, seqTop)
	}
	blendGuard := g.Rows()/6 + 1
	rx.weight = grow(rx.weight, g.Rows())
	weight := rx.weight
	for r := range weight {
		weight[r] = 1
	}
	prevOwner := -2
	for r, o := range owners {
		if o < 0 {
			markSuspect(weight, r, 1)
			continue
		}
		if prevOwner >= 0 && o != prevOwner {
			markSuspect(weight, r, blendGuard)
		}
		prevOwner = o
	}

	// Distribute each data cell to its owning logical frame by row,
	// accumulating sharpness- and suspicion-weighted votes.
	for i, cell := range g.DataCells() {
		owner := owners[cell.Row]
		if owner < 0 {
			continue
		}
		seq := seqTop
		if owner == 1 {
			seq = seqBot
		}
		cf := 0.0
		if gd.Conf != nil {
			cf = gd.Conf[i]
		}
		pf := rx.getPartial(seq)
		pf.vote(i, gd.Cells[i], cf, gd.Sharpness*weight[cell.Row])
		if weight[cell.Row] == 1 {
			pf.rowFilled[cell.Row] = true
		}
	}

	// The header row is owned by the top frame.
	if headerTrusted {
		rx.getPartial(seqTop).addHeaderVote(gd.Header)
		rx.lastTop = seqTop
		rx.lastTopSet = true
	}

	rx.tryComplete(seqTop)
	rx.tryComplete(seqBot)
	return nil
}

// suspectWeight is the vote discount for blend-adjacent rows: low enough
// that a single clean capture of the same row always outvotes them, high
// enough that they still beat nothing when they are a row's only source.
const suspectWeight = 0.05

// markSuspect discounts the vote weight of rows r-span..r+span.
func markSuspect(weight []float64, r, span int) {
	for d := -span; d <= span; d++ {
		if r+d >= 0 && r+d < len(weight) {
			weight[r+d] = suspectWeight
		}
	}
}

// badRows counts rows with tracking bars inconsistent with the given
// top-frame sequence.
func (rx *Receiver) badRows(gd *GridDecode, seqTop uint16) int {
	bad := 0
	for r := range gd.BarColors {
		if gd.RowOwnerFor(r, seqTop) < 0 {
			bad++
		}
	}
	return bad
}

// inferSeq recovers the top-frame sequence of a header-less capture: the
// tracking-bar color of its top rows pins the sequence modulo 4, and the
// last header-bearing capture anchors which multiple of 4 is in flight.
// It fails when no header has been seen yet or the bars are too noisy.
func (rx *Receiver) inferSeq(gd *GridDecode) (uint16, bool) {
	if !rx.lastTopSet {
		return 0, false
	}
	// Top-most attributable bar color.
	topColor := colorspace.Black
	for r := range gd.BarColors {
		if gd.BarOK[r] {
			topColor = gd.BarColors[r]
			break
		}
	}
	if !topColor.IsData() {
		return 0, false
	}
	// The display never goes backwards: the capture's top frame is the
	// last known top or up to 3 frames later (one full bar cycle).
	for off := uint16(0); off < 4; off++ {
		cand := (rx.lastTop + off) & header.MaxSeq
		if layout.TrackingBarColor(cand) != topColor {
			continue
		}
		if rx.badRows(gd, cand) <= len(gd.BarColors)/4 {
			return cand, true
		}
	}
	return 0, false
}

// ingestWholeFrame is the no-sync ablation path: the entire capture is
// attributed to the header's frame.
func (rx *Receiver) ingestWholeFrame(gd *GridDecode) {
	seq := gd.Header.Seq
	if _, ok := rx.done[seq]; ok {
		return
	}
	pf := rx.getPartial(seq)
	pf.hdrVotes[gd.Header]++
	for i := range gd.Cells {
		cf := 0.0
		if gd.Conf != nil {
			cf = gd.Conf[i]
		}
		pf.vote(i, gd.Cells[i], cf, gd.Sharpness)
	}
	for r := range pf.rowFilled {
		pf.rowFilled[r] = true
	}
	// Without sync there is no notion of "complete": decode immediately,
	// and let later captures keep voting if this attempt fails.
	hdr, _ := pf.header()
	payload, _, _, err := rx.assemble(pf, hdr)
	if err == nil {
		rx.codec.rec.Inc(obs.MCoreFramesDecoded, 1)
		rx.finish(seq, hdr, payload, nil, nil, nil)
		rx.retire(seq, pf)
	}
}

func (rx *Receiver) getPartial(seq uint16) *partialFrame {
	if pf, ok := rx.partial[seq]; ok {
		return pf
	}
	g := rx.codec.cfg.Geometry
	var pf *partialFrame
	if n := len(rx.pfFree); n > 0 {
		pf = rx.pfFree[n-1]
		rx.pfFree = rx.pfFree[:n-1]
		clear(pf.hdrVotes)
		pf.cellVotes = grow(pf.cellVotes, len(g.DataCells()))
		clear(pf.cellVotes)
		pf.rowFilled = grow(pf.rowFilled, g.Rows())
		clear(pf.rowFilled)
		if rx.codec.cfg.RecoveryBudget > 0 {
			pf.confVotes = grow(pf.confVotes, len(g.DataCells()))
			clear(pf.confVotes)
		} else {
			pf.confVotes = nil
		}
	} else {
		pf = &partialFrame{
			hdrVotes:  make(map[header.Header]int),
			cellVotes: make([][colorspace.NumDataColors]float64, len(g.DataCells())),
			rowFilled: make([]bool, g.Rows()),
		}
		if rx.codec.cfg.RecoveryBudget > 0 {
			pf.confVotes = make([][colorspace.NumDataColors]float64, len(g.DataCells()))
		}
	}
	rx.partial[seq] = pf
	return pf
}

// finish records seq as decoded, drawing the DecodedFrame from the
// freelist. payload may alias assembly scratch: it is copied into
// frame-owned storage. cells and conf are stored only alongside an error
// (the cross-round soft table; both are frame-owned already).
func (rx *Receiver) finish(seq uint16, hdr header.Header, payload []byte, cells []colorspace.Color, conf []float64, err error) {
	var df *DecodedFrame
	if n := len(rx.dfFree); n > 0 {
		df = rx.dfFree[n-1]
		rx.dfFree = rx.dfFree[:n-1]
	} else {
		df = &DecodedFrame{}
	}
	buf := df.Payload
	*df = DecodedFrame{Header: hdr, Err: err}
	if payload != nil {
		df.Payload = append(buf[:0], payload...)
	}
	if err != nil {
		df.Cells, df.Conf = cells, conf
	}
	rx.done[seq] = df
}

// retire recycles a completed partial frame's accumulators.
func (rx *Receiver) retire(seq uint16, pf *partialFrame) {
	delete(rx.partial, seq)
	rx.pfFree = append(rx.pfFree, pf)
}

// tryComplete decodes a partial frame once every data row has been seen
// and its header is known. A failed attempt keeps the partial frame open:
// further captures keep voting and may heal it (only Flush records
// failures, at stream end).
func (rx *Receiver) tryComplete(seq uint16) {
	pf, ok := rx.partial[seq]
	if !ok {
		return
	}
	hdr, hdrKnown := pf.header()
	if !hdrKnown {
		return
	}
	if _, ok := rx.done[seq]; ok {
		return
	}
	for _, cell := range rx.codec.cfg.Geometry.DataCells() {
		if !pf.rowFilled[cell.Row] {
			return
		}
	}
	payload, _, _, err := rx.assemble(pf, hdr)
	if err != nil {
		return
	}
	rx.codec.rec.Inc(obs.MCoreFramesDecoded, 1)
	rx.finish(seq, hdr, payload, nil, nil, nil)
	rx.retire(seq, pf)
}

// Flush force-decodes every partial frame that has a header, even with
// missing rows (missing cells decode as white/00 and are left to RS).
// Call after the capture stream ends.
func (rx *Receiver) Flush() {
	for seq, pf := range rx.partial {
		hdr, hdrKnown := pf.header()
		if !hdrKnown {
			continue
		}
		if _, ok := rx.done[seq]; ok {
			continue
		}
		payload, cells, conf, err := rx.assemble(pf, hdr)
		if err == nil {
			rx.codec.rec.Inc(obs.MCoreFramesDecoded, 1)
		} else {
			rx.codec.recordFailure(err)
		}
		// On failure the soft table (cells, conf) is kept: the transport can
		// fuse it with the retransmission round's captures (cross-round
		// combining).
		rx.finish(seq, hdr, payload, cells, conf, err)
		rx.retire(seq, pf)
	}
}

// Frames returns every completed frame in sequence order.
func (rx *Receiver) Frames() []*DecodedFrame {
	seqs := make([]int, 0, len(rx.done))
	for s := range rx.done {
		seqs = append(seqs, int(s))
	}
	sort.Ints(seqs)
	out := make([]*DecodedFrame, 0, len(seqs))
	for _, s := range seqs {
		out = append(out, rx.done[uint16(s)])
	}
	return out
}

// Frame returns the completed frame with the given sequence number, if any.
func (rx *Receiver) Frame(seq uint16) (*DecodedFrame, bool) {
	f, ok := rx.done[seq]
	return f, ok
}
