package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"rainbar/internal/colorspace"
	"rainbar/internal/core/layout"
	"rainbar/internal/raster"
)

// fuzzCodec builds the standard small-geometry codec and one rendered
// frame. Rendering happens once per fuzz process; every fuzz input then
// corrupts a clone, so the decoder sees structured-but-wrong images — the
// regime where parsing bugs hide — instead of pure noise it rejects at the
// detector.
func fuzzCodec(f *testing.F) (*Codec, *raster.Image) {
	f.Helper()
	geo, err := layout.NewGeometry(480, 270, 10)
	if err != nil {
		f.Fatal(err)
	}
	codec, err := NewCodec(Config{Geometry: geo, DisplayRate: 10})
	if err != nil {
		f.Fatal(err)
	}
	payload := make([]byte, codec.FrameCapacity())
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	frame, err := codec.EncodeFrame(payload, 5, false)
	if err != nil {
		f.Fatal(err)
	}
	return codec, frame.Render()
}

// corruptProgram interprets prog as a sequence of 8-byte mutation ops over
// img: rectangle splats, row splices, brightness scaling and pixel noise.
func corruptProgram(img *raster.Image, prog []byte, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i+8 <= len(prog); i += 8 {
		op, a, b, c, d, r, g, bl := prog[i], prog[i+1], prog[i+2], prog[i+3], prog[i+4], prog[i+5], prog[i+6], prog[i+7]
		switch op % 4 {
		case 0: // rectangle splat
			x := int(a) * img.W / 256
			y := int(b) * img.H / 256
			img.FillRect(x, y, 1+int(c)%96, 1+int(d)%96, colorspace.RGB{R: r, G: g, B: bl})
		case 1: // row splice: replay rows from another offset
			src := int(a) * img.H / 256
			dst := int(b) * img.H / 256
			n := 1 + int(c)%32
			for k := 0; k < n && src+k < img.H && dst+k < img.H; k++ {
				copy(img.Pix[(dst+k)*img.W:(dst+k+1)*img.W], img.Pix[(src+k)*img.W:(src+k+1)*img.W])
			}
		case 2: // brightness scale on a horizontal band
			gain := 0.2 + float64(a)/64
			y0 := int(b) * img.H / 256
			y1 := y0 + 1 + int(c)%64
			if y1 > img.H {
				y1 = img.H
			}
			for p := y0 * img.W; p < y1*img.W; p++ {
				px := img.Pix[p]
				s := func(v uint8) uint8 {
					f := float64(v) * gain
					if f > 255 {
						return 255
					}
					return uint8(f)
				}
				img.Pix[p] = colorspace.RGB{R: s(px.R), G: s(px.G), B: s(px.B)}
			}
		case 3: // salt-and-pepper noise
			n := 16 + int(d)*8
			for k := 0; k < n; k++ {
				img.Pix[rng.Intn(len(img.Pix))] = colorspace.RGB{
					R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256)),
				}
			}
		}
	}
}

// FuzzFrameDecode corrupts rendered frames (and crops of them) and runs the
// full receive path. The decoder must reject with an error — never panic,
// and never accept a frame whose payload fails the frame checksum.
func FuzzFrameDecode(f *testing.F) {
	codec, base := fuzzCodec(f)

	f.Add(int64(1), []byte{}, false)
	f.Add(int64(2), []byte{0, 10, 10, 40, 40, 255, 0, 0}, false)
	f.Add(int64(3), []byte{1, 0, 128, 31, 0, 0, 0, 0, 3, 0, 0, 0, 200, 0, 0, 0}, false)
	f.Add(int64(4), []byte{2, 200, 0, 63, 0, 0, 0, 0}, true)
	f.Add(int64(5), []byte{120, 60}, true)

	f.Fuzz(func(t *testing.T, seed int64, prog []byte, shrink bool) {
		img := base.Clone()
		if shrink && len(prog) >= 2 {
			// Crop to arbitrary (smaller) dimensions: partial captures and
			// malformed inputs must not index out of bounds anywhere.
			w := 1 + int(prog[0])
			h := 1 + int(prog[1])
			if w > img.W {
				w = img.W
			}
			if h > img.H {
				h = img.H
			}
			crop := raster.New(w, h)
			for y := 0; y < h; y++ {
				copy(crop.Pix[y*w:(y+1)*w], img.Pix[y*img.W:y*img.W+w])
			}
			img = crop
		}
		corruptProgram(img, prog, seed)

		// Single-frame path.
		if hdr, payload, err := codec.DecodeFrame(img); err == nil {
			if hdr.Validate() != nil {
				t.Fatalf("DecodeFrame accepted invalid header %+v", hdr)
			}
			if len(payload) != codec.FrameCapacity() {
				t.Fatalf("DecodeFrame returned %d payload bytes, capacity %d", len(payload), codec.FrameCapacity())
			}
		}

		// Receiver path (voting, partial frames, flush).
		rx := NewReceiver(codec)
		_ = rx.Ingest(img)
		rx.Flush()
		for _, df := range rx.Frames() {
			if df.Err == nil && len(df.Payload) != codec.FrameCapacity() {
				t.Fatalf("receiver produced %d payload bytes, capacity %d", len(df.Payload), codec.FrameCapacity())
			}
		}
	})
}

// FuzzLadderDecode corrupts rendered frames and runs the decode-recovery
// ladder, checking the ladder's contracts: it never panics, it is
// deterministic (same image, same trace), it never hurts (anything the
// plain decoder accepts, the ladder decodes identically), and whatever it
// accepts still satisfies the frame invariants.
func FuzzLadderDecode(f *testing.F) {
	codec, base := fuzzCodec(f)
	geo := codec.Geometry()
	soft, err := NewCodec(Config{
		Geometry:       geo,
		DisplayRate:    10,
		RecoveryBudget: DefaultRecoveryBudget,
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{0, 10, 10, 40, 40, 255, 0, 0})                                // rectangle splat
	f.Add(int64(3), []byte{1, 0, 128, 31, 0, 0, 0, 0})                                   // row splice
	f.Add(int64(4), []byte{3, 0, 0, 200, 0, 0, 0, 0})                                    // heavy noise
	f.Add(int64(5), []byte{0, 120, 8, 30, 10, 120, 120, 120, 2, 40, 60, 20, 0, 0, 0, 0}) // gray locator patch + dim band

	f.Fuzz(func(t *testing.T, seed int64, prog []byte) {
		img := base.Clone()
		corruptProgram(img, prog, seed)

		hdr1, pay1, tr1, err1 := soft.DecodeFrameRecover(img)
		hdr2, pay2, tr2, err2 := soft.DecodeFrameRecover(img)
		if (err1 == nil) != (err2 == nil) || hdr1 != hdr2 || !bytes.Equal(pay1, pay2) || !reflect.DeepEqual(tr1, tr2) {
			t.Fatalf("ladder not deterministic: (%v, %+v) vs (%v, %+v)", err1, tr1, err2, tr2)
		}

		if hdr, pay, err := codec.DecodeFrame(img.Clone()); err == nil {
			if err1 != nil {
				t.Fatalf("ladder failed (%v) where plain decode succeeded", err1)
			}
			if hdr1 != hdr || !bytes.Equal(pay1, pay) {
				t.Fatal("ladder changed the result of an already-successful decode")
			}
		}

		if err1 == nil {
			if hdr1.Validate() != nil {
				t.Fatalf("ladder accepted invalid header %+v", hdr1)
			}
			if len(pay1) != soft.FrameCapacity() {
				t.Fatalf("ladder returned %d payload bytes, capacity %d", len(pay1), soft.FrameCapacity())
			}
		}
	})
}
