package core

import (
	"sync"

	"rainbar/internal/colorspace"
	"rainbar/internal/vision"
)

// decodeScratch owns every per-capture intermediate of the grid-decode
// pipeline (detection map, blob labeling state, locator columns, the
// GridDecode and its cell tables), so a steady-state receiver decodes
// captures without allocating. All pipeline stages accept a nil scratch
// and then allocate fresh results — that is the public API path
// (DecodeGridLoose, FixImage, LocateCenters), whose return values must
// outlive the call. Scratch-backed results are owned by the scratch and
// valid only until the next decode using the same scratch.
type decodeScratch struct {
	// detect
	tvValues []float64
	classMap []colorspace.Color
	blobs    vision.BlobScratch
	det      detection

	// locate
	lm locatorMap

	// extract
	strip []colorspace.Color
	gd    GridDecode
}

// scratchPool recycles decode scratches across receivers and batch decode
// workers.
var scratchPool = sync.Pool{New: func() any { return new(decodeScratch) }}

func getScratch() *decodeScratch  { return scratchPool.Get().(*decodeScratch) }
func putScratch(s *decodeScratch) { scratchPool.Put(s) }

// grow returns s resized to n elements, reusing its storage when the
// capacity allows. Contents are unspecified; callers overwrite or clear.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
