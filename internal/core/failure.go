package core

import (
	"errors"

	"rainbar/internal/core/header"
	"rainbar/internal/faults"
)

// ErrLocatorLost means progressive localization could not establish the
// middle code-locator column (§III-E); corner trackers were found but the
// geometric fix is unusable.
var ErrLocatorLost = errors.New("core: code locators lost")

// FailureClass buckets decode errors by the pipeline stage that gave up.
// The transport session uses the classification to pick a recovery action:
// stage failures that a slower display rate can heal (sync, header) argue
// for rate fallback, while channel-level losses (detect) argue for plain
// retransmission.
type FailureClass string

// The failure classes, in pipeline order.
const (
	// FailDropped: the capture never reached the decoder (injected
	// whole-frame loss).
	FailDropped FailureClass = "dropped"
	// FailDetect: corner trackers not found (§III-C/D detection).
	FailDetect FailureClass = "detect"
	// FailLocate: code-locator localization failed (§III-E).
	FailLocate FailureClass = "locate"
	// FailHeader: header CRCs failed and the sequence was not inferable.
	FailHeader FailureClass = "header"
	// FailSync: tracking bars inconsistent with any plausible sequence
	// (§III-D).
	FailSync FailureClass = "sync"
	// FailCorrect: RS correction or the frame checksum failed (§III-B).
	FailCorrect FailureClass = "correct"
	// FailOther: anything unrecognized (programming errors, I/O).
	FailOther FailureClass = "other"
)

// String returns the class name.
func (f FailureClass) String() string { return string(f) }

// ClassifyFailure maps a decode-path error to its failure class. A nil
// error has no class and returns "".
func ClassifyFailure(err error) FailureClass {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, faults.ErrFrameDropped):
		return FailDropped
	case errors.Is(err, ErrNoCornerTrackers):
		return FailDetect
	case errors.Is(err, ErrLocatorLost):
		return FailLocate
	case errors.Is(err, ErrInconsistentBars):
		return FailSync
	case errors.Is(err, header.ErrCorrupt):
		return FailHeader
	case errors.Is(err, ErrBadFrame):
		return FailCorrect
	default:
		return FailOther
	}
}
