package core

import (
	"math"
	"testing"

	"rainbar/internal/channel"
	"rainbar/internal/geometry"
)

func TestFixImageMapsCellCenters(t *testing.T) {
	// On a perfect render, the fix must map every data cell to within a
	// fraction of a block of its true center.
	c := testCodec(t)
	f, err := c.EncodeFrame(payloadFor(c, 1), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	img := f.Render()
	fix, err := c.FixImage(img)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Geometry()
	var worst float64
	for _, cell := range g.DataCells() {
		x, y := g.BlockCenterPx(cell.Row, cell.Col)
		p := fix.CellCenter(cell.Row, cell.Col)
		d := math.Hypot(p.X-x, p.Y-y)
		if d > worst {
			worst = d
		}
	}
	if worst > float64(g.BlockSize())/3 {
		t.Fatalf("worst cell-center error %.2f px on a clean render", worst)
	}
}

func TestFixImageDiagnostics(t *testing.T) {
	c := testCodec(t)
	f, err := c.EncodeFrame(payloadFor(c, 2), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	fix, err := c.FixImage(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	bs := float64(c.Geometry().BlockSize())
	if got := fix.BlockSize(); got < bs*0.8 || got > bs*1.2 {
		t.Errorf("BST estimate %.2f, true %v", got, bs)
	}
	if fix.LocatorMisses() != 0 {
		t.Errorf("%d locator misses on a clean render", fix.LocatorMisses())
	}
	if tv := fix.TV(); tv <= 0 || tv >= 1 {
		t.Errorf("TV = %v", tv)
	}
}

func TestFixImageFailsOnBlank(t *testing.T) {
	c := testCodec(t)
	f, err := c.EncodeFrame([]byte("x"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	img := f.Render()
	img.Fill(img.At(0, 0))
	if _, err := c.FixImage(img); err == nil {
		t.Fatal("fix succeeded on a uniform image")
	}
}

func TestAblationFlagsStillDecodeCleanRenders(t *testing.T) {
	// Both decoder ablations must still handle the easy case — they
	// degrade robustness, not correctness on undistorted input.
	for _, flags := range []Config{
		{DisableMiddleLocators: true},
		{DisableLocationCorrection: true},
	} {
		flags.Geometry = testGeometry(t)
		c, err := NewCodec(flags)
		if err != nil {
			t.Fatal(err)
		}
		want := payloadFor(c, 3)
		f, err := c.EncodeFrame(want, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := c.DecodeFrame(f.Render())
		if err != nil {
			t.Fatalf("flags %+v: %v", flags, err)
		}
		if string(got) != string(want) {
			t.Fatalf("flags %+v: payload mismatch", flags)
		}
	}
}

func TestAblationDegradesUnderDistortion(t *testing.T) {
	// Under perspective the ablated decoders must localize worse than the
	// full decoder (the quantitative version runs as experiment E12b).
	cfg := channel.DefaultConfig()
	cfg.ViewAngleDeg = 20
	cfg.JitterPx = 0
	cfg.NoiseStdDev = 0

	measure := func(flags Config) float64 {
		flags.Geometry = testGeometry(t)
		c, err := NewCodec(flags)
		if err != nil {
			t.Fatal(err)
		}
		f, err := c.EncodeFrame(payloadFor(c, 4), 0, false)
		if err != nil {
			t.Fatal(err)
		}
		capt, err := channel.MustNew(cfg).Capture(f.Render())
		if err != nil {
			t.Fatal(err)
		}
		centers, err := c.LocateCenters(capt)
		if err != nil {
			return math.Inf(1)
		}
		fwd, err := cfg.ForwardMap(capt.W, capt.H)
		if err != nil {
			t.Fatal(err)
		}
		g := c.Geometry()
		var sum float64
		for i, cell := range g.DataCells() {
			x, y := g.BlockCenterPx(cell.Row, cell.Col)
			sum += centers[i].Dist(fwd(pt2(x, y)))
		}
		return sum / float64(len(centers))
	}

	full := measure(Config{})
	noMid := measure(Config{DisableMiddleLocators: true})
	if noMid <= full {
		t.Errorf("middle-column ablation did not degrade localization: %.2f vs %.2f", noMid, full)
	}
}

// pt2 builds a geometry.Point for tests.
func pt2(x, y float64) geometry.Point { return geometry.Point{X: x, Y: y} }

func TestDecodeFrameTimedStagesAddUp(t *testing.T) {
	c := testCodec(t)
	f, err := c.EncodeFrame(payloadFor(c, 5), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	capt, err := channel.MustNew(channel.DefaultConfig()).Capture(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	payload, st, err := c.DecodeFrameTimed(capt)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != c.FrameCapacity() {
		t.Fatalf("payload %d bytes", len(payload))
	}
	for name, d := range map[string]float64{
		"detect":  st.Detect.Seconds(),
		"locate":  st.Locate.Seconds(),
		"extract": st.Extract.Seconds(),
		"correct": st.Correct.Seconds(),
	} {
		if d <= 0 {
			t.Errorf("stage %s has no measured time", name)
		}
	}
	if st.Total() != st.Detect+st.Locate+st.Extract+st.Correct {
		t.Error("Total does not sum the stages")
	}
}
