package core

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"rainbar/internal/colorspace"
	"rainbar/internal/core/layout"
)

// recoverCodec builds the standard test codec with the decode-recovery
// ladder enabled at the default budget.
func recoverCodec(t testing.TB) *Codec {
	t.Helper()
	c, err := NewCodec(Config{
		Geometry:       testGeometry(t),
		DisplayRate:    10,
		AppType:        1,
		RecoveryBudget: DefaultRecoveryBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// wrongColor returns a plausible-but-wrong data color: the decoder gets no
// black-cell hint, so the legacy all-or-nothing erasure guess has nothing
// to work with.
func wrongColor(c colorspace.Color) colorspace.Color {
	return colorspace.Color((uint8(c) + 1) % colorspace.NumDataColors)
}

func TestRankedErasuresBeatAllOrNothing(t *testing.T) {
	// 10 corrupted bytes in one message exceed plain RS correction (8 with
	// 16 parity) and carry no black-cell hint, so both the base pass and
	// the legacy suspect-byte guess fail. Per-cell confidence flags exactly
	// those cells, so the ranked-erasure hypothesis erases the right bytes
	// and decodes.
	c := recoverCodec(t)
	want := payloadFor(c, 11)
	f, err := c.EncodeFrame(want, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	cells := truthCells(c, f)
	conf := make([]float64, len(cells))
	for i := range conf {
		conf[i] = 1
	}
	const corruptCells = 40 // 10 bytes
	for i := 0; i < corruptCells; i++ {
		cells[i] = wrongColor(cells[i])
		conf[i] = 0.05
	}

	if _, err := c.AssemblePayload(cells, f.Header()); err == nil {
		t.Fatal("10 unknown byte errors decoded without recovery (capability is 8)")
	}
	got, trace, err := c.AssemblePayloadSoft(cells, conf, f.Header())
	if err != nil {
		t.Fatalf("ranked-erasure recovery failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered payload differs from original")
	}
	if trace == nil || trace.Winner != HypErasures {
		t.Fatalf("trace = %+v, want winner %q", trace, HypErasures)
	}
}

func TestSoftAssembleBudgetZeroBitIdentical(t *testing.T) {
	// With RecoveryBudget 0 the soft path must refuse every hypothesis:
	// same error as the hard path, nil trace.
	c := testCodec(t)
	f, err := c.EncodeFrame(payloadFor(c, 12), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	cells := truthCells(c, f)
	conf := make([]float64, len(cells))
	for i := 0; i < 40; i++ {
		cells[i] = wrongColor(cells[i])
	}

	_, hardErr := c.AssemblePayload(cells, f.Header())
	if hardErr == nil {
		t.Fatal("corrupted frame decoded on the hard path")
	}
	got, trace, softErr := c.AssemblePayloadSoft(cells, conf, f.Header())
	if got != nil || trace != nil {
		t.Fatalf("budget 0 produced payload=%v trace=%+v, want nil/nil", got != nil, trace)
	}
	if softErr == nil || softErr.Error() != hardErr.Error() {
		t.Fatalf("budget 0 soft error %v, want hard-path error %v", softErr, hardErr)
	}
}

func TestFuseCellsComplementaryCaptures(t *testing.T) {
	// Two captures of the same frame, each with more corruption than the
	// erasure budget can absorb (16 bytes > parity-2 = 14) but weak in
	// disjoint cell ranges. Neither decodes alone; the max-confidence
	// fusion takes each capture's confident half and decodes.
	c := recoverCodec(t)
	want := payloadFor(c, 13)
	f, err := c.EncodeFrame(want, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	truth := truthCells(c, f)

	corrupt := func(lo, hi int) ([]colorspace.Color, []float64) {
		cells := append([]colorspace.Color(nil), truth...)
		conf := make([]float64, len(cells))
		for i := range conf {
			conf[i] = 1
		}
		for i := lo; i < hi; i++ {
			cells[i] = wrongColor(cells[i])
			conf[i] = 0
		}
		return cells, conf
	}
	cellsA, confA := corrupt(0, 64)   // bytes 0..15 wrong
	cellsB, confB := corrupt(64, 128) // bytes 16..31 wrong

	if _, _, err := c.AssemblePayloadSoft(cellsA, confA, f.Header()); err == nil {
		t.Fatal("capture A decoded alone (16 corrupt bytes should exceed the erasure cap)")
	}
	if _, _, err := c.AssemblePayloadSoft(cellsB, confB, f.Header()); err == nil {
		t.Fatal("capture B decoded alone")
	}
	cells, conf := FuseCells(cellsA, confA, cellsB, confB)
	got, _, err := c.AssemblePayloadSoft(cells, conf, f.Header())
	if err != nil {
		t.Fatalf("fused decode failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fused payload differs from original")
	}
}

func TestLadderDeterminism(t *testing.T) {
	// The ladder must be a pure function of the capture bytes: decoding the
	// same damaged image twice yields identical payload, error and
	// hypothesis trace.
	geo, err := layout.NewGeometry(480, 270, 10)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCodec(Config{Geometry: geo, DisplayRate: 10, RecoveryBudget: DefaultRecoveryBudget})
	if err != nil {
		t.Fatal(err)
	}
	payload := payloadFor(c, 14)
	f, err := c.EncodeFrame(payload, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	base := f.Render()
	rng := rand.New(rand.NewSource(99))
	for k := 0; k < 6; k++ {
		x, y := rng.Intn(base.W-40), 30+rng.Intn(base.H-70)
		base.FillRect(x, y, 20+rng.Intn(40), 8+rng.Intn(16), colorspace.RGB{
			R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256)),
		})
	}

	hdr1, pay1, tr1, err1 := c.DecodeFrameRecover(base)
	hdr2, pay2, tr2, err2 := c.DecodeFrameRecover(base)
	if (err1 == nil) != (err2 == nil) || (err1 != nil && err1.Error() != err2.Error()) {
		t.Fatalf("errors differ across runs: %v vs %v", err1, err2)
	}
	if hdr1 != hdr2 || !bytes.Equal(pay1, pay2) {
		t.Fatal("header/payload differ across runs")
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("traces differ across runs:\n%+v\n%+v", tr1, tr2)
	}
}

func TestRescanRecoversLostLocator(t *testing.T) {
	// Occlude the first-middle locator region: progressive localization
	// reports ErrLocatorLost with recovery off, while the ladder's global
	// re-scan (widened search, COBRA-style synthesis) re-establishes the
	// fix and the frame decodes.
	geo, err := layout.NewGeometry(480, 270, 10)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := NewCodec(Config{Geometry: geo, DisplayRate: 10})
	if err != nil {
		t.Fatal(err)
	}
	soft, err := NewCodec(Config{Geometry: geo, DisplayRate: 10, RecoveryBudget: DefaultRecoveryBudget})
	if err != nil {
		t.Fatal(err)
	}
	payload := payloadFor(hard, 15)
	f, err := hard.EncodeFrame(payload, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	img := f.Render()
	// Gray out the first middle locator's band (grid row 2, block size 10
	// → y 20..30) around the center column: the header row above and the
	// corner trackers stay intact, but progressive localization cannot
	// establish the middle column.
	img.FillRect(img.W/2-40, 20, 80, 10, colorspace.RGB{R: 120, G: 120, B: 120})

	if _, _, err := hard.DecodeFrame(img.Clone()); !errors.Is(err, ErrLocatorLost) {
		t.Fatalf("recovery-off decode error = %v, want ErrLocatorLost", err)
	}
	_, got, trace, err := soft.DecodeFrameRecover(img)
	if err != nil {
		t.Fatalf("rescan recovery failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("rescan-recovered payload differs from original")
	}
	attempted := false
	if trace != nil {
		for _, h := range trace.Attempts {
			if h == HypRescan {
				attempted = true
			}
		}
	}
	if !attempted {
		t.Fatalf("trace %+v does not record a rescan attempt", trace)
	}
}
