// Package core implements the RainBar codec — the paper's primary
// contribution. The encoder maps payload bytes onto color-barcode frames
// with the layout of §III-B (tracking bars, two corner trackers, three
// code-locator columns, CRC/RS protection); the decoder recovers payload
// from captured images using the paper's pipeline: brightness assessment
// (§III-C), corner-tracker detection, progressive code-locator
// localization (§III-E), HSV-based robust code extraction (§III-F), and
// tracking-bar frame synchronization (§III-D).
package core

import (
	"errors"
	"fmt"

	"rainbar/internal/core/header"
	"rainbar/internal/core/layout"
	"rainbar/internal/obs"
	"rainbar/internal/rs"
)

// DefaultRSParity is the Reed-Solomon parity bytes per 255-byte message
// (corrects 8 byte errors per message).
const DefaultRSParity = 16

// rsMessageLen is the full Reed-Solomon block length over GF(2^8).
const rsMessageLen = 255

// Config describes a RainBar codec instance. Both sides must agree on the
// geometry and RS parity (the barcode format); the display rate and
// application type travel in each frame's header.
type Config struct {
	// Geometry is the frame layout (screen size and block size).
	Geometry *layout.Geometry
	// RSParity is the parity bytes per RS message (default DefaultRSParity).
	RSParity int
	// DisplayRate is the advertised display rate (fps) placed in headers.
	DisplayRate uint8
	// AppType is the application-type code placed in headers.
	AppType uint8

	// DisableMiddleLocators makes the decoder localize blocks from the
	// left and right locator columns only, ignoring the middle column —
	// the ablation for the paper's Fig. 4 claim that one middle column
	// fixes COBRA-style mid-screen localization drift. Decoder-side only;
	// frames are still encoded with all three columns.
	DisableMiddleLocators bool
	// DisableLocationCorrection skips the K-means centroid refinement of
	// §III-E: locators are placed purely by dead reckoning from the
	// previous one. Decoder-side only.
	DisableLocationCorrection bool

	// RecoveryBudget bounds the decode-recovery ladder: the maximum number
	// of retry hypotheses (ranked erasures, μ-sweep, locator re-scan) spent
	// per decode operation — per capture for grid-level hypotheses, per
	// frame for payload-level ones. 0 disables the ladder entirely and
	// reproduces the single-shot decoder bit for bit; DefaultRecoveryBudget
	// is a sensible "on" value. Decoder-side only.
	RecoveryBudget int
	// RecoveryErasuresOnly restricts the ladder to the ranked-erasure
	// hypothesis, disabling the μ-sweep and locator re-scan (the ablation's
	// "erasures" mode). Meaningful only when RecoveryBudget > 0.
	RecoveryErasuresOnly bool

	// Recorder receives pipeline metrics (stage timings, classification
	// tallies, RS correction load). Nil disables instrumentation at
	// negligible cost. The codec never constructs clocks or recorders
	// itself: span durations come from whatever clock the injected
	// recorder was built with, keeping decode behavior deterministic.
	Recorder obs.Recorder
}

// Codec encodes and decodes RainBar frames. Create with NewCodec; a Codec
// is immutable and safe for concurrent use.
type Codec struct {
	cfg      Config
	rsc      *rs.Codec
	msgSizes []int // data bytes per RS message within one frame
	capacity int   // payload bytes per frame
	locRows  []int // cached Geometry.LocatorRows() (per-cell hot path)

	rec   obs.Recorder // never nil; obs.Nop() when unset
	obsOn bool         // gates observation-only work on the hot path
}

// Errors reported by the codec.
var (
	// ErrNoCornerTrackers means the decoder could not find both corner
	// trackers in a captured image.
	ErrNoCornerTrackers = errors.New("core: corner trackers not found")
	// ErrBadFrame means a frame failed error correction or its checksum.
	ErrBadFrame = errors.New("core: frame failed error correction")
	// ErrPayloadTooLarge means Encode was given more bytes than one frame
	// holds.
	ErrPayloadTooLarge = errors.New("core: payload exceeds frame capacity")
	// ErrInconsistentBars means the tracking bars disagree with the header
	// by 2 or more steps; the paper drops such captures (§III-D).
	ErrInconsistentBars = errors.New("core: inconsistent tracking bars")
)

// NewCodec validates the configuration and precomputes the frame's RS
// message structure.
func NewCodec(cfg Config) (*Codec, error) {
	if cfg.Geometry == nil {
		return nil, fmt.Errorf("core: nil geometry")
	}
	if cfg.RSParity == 0 {
		cfg.RSParity = DefaultRSParity
	}
	if got := cfg.Geometry.HeaderCapacityBits(); got < header.Bits {
		return nil, fmt.Errorf("core: header strip holds %d bits, need %d; use a wider screen or smaller blocks", got, header.Bits)
	}
	rsc, err := rs.New(cfg.RSParity)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c := &Codec{cfg: cfg, rsc: rsc, rec: obs.OrNop(cfg.Recorder), obsOn: obs.Enabled(cfg.Recorder)}
	c.locRows = cfg.Geometry.LocatorRows()

	// Partition the frame's data area into RS messages. Full messages are
	// 255 bytes; the remainder forms a short final message if it can hold
	// at least one data byte, otherwise it is dead padding.
	area := cfg.Geometry.DataCapacityBytes()
	remaining := area
	for remaining >= rsMessageLen {
		c.msgSizes = append(c.msgSizes, rsMessageLen-cfg.RSParity)
		remaining -= rsMessageLen
	}
	if remaining > cfg.RSParity {
		c.msgSizes = append(c.msgSizes, remaining-cfg.RSParity)
	}
	for _, k := range c.msgSizes {
		c.capacity += k
	}
	if c.capacity == 0 {
		return nil, fmt.Errorf("core: geometry too small for any payload (area %d bytes, parity %d)", area, cfg.RSParity)
	}
	return c, nil
}

// MustCodec is NewCodec but panics on error.
func MustCodec(cfg Config) *Codec {
	c, err := NewCodec(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the codec configuration.
func (c *Codec) Config() Config { return c.cfg }

// FrameCapacity returns the payload bytes carried by one frame after
// CRC/RS overhead.
func (c *Codec) FrameCapacity() int { return c.capacity }

// Geometry returns the frame geometry.
func (c *Codec) Geometry() *layout.Geometry { return c.cfg.Geometry }
