package camera

import (
	"testing"
	"time"

	"rainbar/internal/channel"
	"rainbar/internal/colorspace"
	"rainbar/internal/raster"
	"rainbar/internal/screen"
)

// cleanChannel is head-on, noise-free, distortion-free, nearly full-frame.
func cleanChannel() *channel.Channel {
	cfg := channel.DefaultConfig()
	cfg.BlurSigma = 0
	cfg.NoiseStdDev = 0
	cfg.LensK1, cfg.LensK2 = 0, 0
	cfg.JitterPx = 0
	cfg.DistanceCM = 8.0 // scale 0.98
	cfg.Ambient = channel.AmbientDark
	return channel.MustNew(cfg)
}

// solidFrames returns n solid-color frames cycling white/red/green/blue.
func solidFrames(n, w, h int) []*raster.Image {
	colors := []colorspace.RGB{
		colorspace.RGBWhite, colorspace.RGBRed,
		colorspace.RGBGreen, colorspace.RGBBlue,
	}
	out := make([]*raster.Image, n)
	for i := range out {
		img := raster.New(w, h)
		img.Fill(colors[i%len(colors)])
		out[i] = img
	}
	return out
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("Default invalid: %v", err)
	}
	bad := []Camera{
		{RateFPS: 0, ReadoutFraction: 0.9},
		{RateFPS: -1, ReadoutFraction: 0.9},
		{RateFPS: 30, ReadoutFraction: 0},
		{RateFPS: 30, ReadoutFraction: 1.2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid camera accepted", i)
		}
	}
}

func TestPeriod(t *testing.T) {
	c := Camera{RateFPS: 25, ReadoutFraction: 0.9}
	if got := c.Period(); got != 40*time.Millisecond {
		t.Errorf("Period = %v, want 40ms", got)
	}
}

func TestSlowDisplayProducesCleanCaptures(t *testing.T) {
	// f_d = 10, f_c = 30: every capture fits inside one display period,
	// so no capture should be mixed.
	d, err := screen.NewDisplay(solidFrames(4, 60, 60), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := Default().Film(d, cleanChannel())
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) == 0 {
		t.Fatal("no captures")
	}
	mixed := 0
	for _, c := range caps {
		if c.Mixed() {
			mixed++
		}
	}
	// At 10/30 fps a capture can still straddle a display boundary once
	// per display frame; but most captures must be clean.
	if mixed > len(caps)/2 {
		t.Fatalf("%d/%d captures mixed at f_d=f_c/3", mixed, len(caps))
	}
	// Every display frame must be captured at least twice cleanly
	// (f_d <= f_c/2 guarantee used by blur assessment).
	seen := map[int]int{}
	for _, c := range caps {
		if !c.Mixed() {
			seen[c.SourceFrames[0]]++
		}
	}
	for i := 0; i < 4; i++ {
		if seen[i] < 2 {
			t.Errorf("frame %d captured cleanly only %d times, want ≥ 2", i, seen[i])
		}
	}
}

func TestFastDisplayProducesMixedCaptures(t *testing.T) {
	// f_d = 20 > f_c/2 = 15: rolling shutter must mix frames.
	d, err := screen.NewDisplay(solidFrames(8, 60, 60), 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	cam := Default()
	cam.Phase = 5 * time.Millisecond // ensure scans straddle boundaries
	caps, err := cam.Film(d, cleanChannel())
	if err != nil {
		t.Fatal(err)
	}
	anyMixed := false
	for _, c := range caps {
		if c.Mixed() {
			anyMixed = true
			if len(c.RowBoundaries) != len(c.SourceFrames)-1 {
				t.Fatalf("boundaries %d, sources %d", len(c.RowBoundaries), len(c.SourceFrames))
			}
			// Sources must be consecutive display frames.
			for i := 1; i < len(c.SourceFrames); i++ {
				if c.SourceFrames[i] != c.SourceFrames[i-1]+1 {
					t.Fatalf("non-consecutive sources %v", c.SourceFrames)
				}
			}
		}
	}
	if !anyMixed {
		t.Fatal("no mixed captures at f_d > f_c/2")
	}
}

func TestMixedCaptureRowsComeFromRightFrames(t *testing.T) {
	// Two solid frames with distinct colors: in a mixed capture, rows above
	// the boundary must classify as the first color, rows below as the
	// second.
	d, err := screen.NewDisplay(solidFrames(4, 80, 80), 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	cam := Default()
	cam.Phase = 8 * time.Millisecond
	caps, err := cam.Film(d, cleanChannel())
	if err != nil {
		t.Fatal(err)
	}
	cl := colorspace.NewClassifier(0.3)
	checked := false
	for _, c := range caps {
		if !c.Mixed() || len(c.SourceFrames) != 2 {
			continue
		}
		boundary := c.RowBoundaries[0]
		if boundary <= 8 || boundary >= 72 {
			continue // too close to the dark frame edge to sample safely
		}
		wantTop := colorspace.Color(c.SourceFrames[0] % 4)
		wantBot := colorspace.Color(c.SourceFrames[1] % 4)
		top := cl.ClassifyRGB(c.Image.At(40, boundary-6))
		bot := cl.ClassifyRGB(c.Image.At(40, boundary+6))
		if top != wantTop {
			t.Errorf("row above boundary = %v, want %v", top, wantTop)
		}
		if bot != wantBot {
			t.Errorf("row below boundary = %v, want %v", bot, wantBot)
		}
		checked = true
	}
	if !checked {
		t.Skip("no usable mixed capture in this configuration")
	}
}

func TestFilmRejectsInvalidCamera(t *testing.T) {
	d, err := screen.NewDisplay(solidFrames(1, 8, 8), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := Camera{RateFPS: 0, ReadoutFraction: 0.5}
	if _, err := bad.Film(d, cleanChannel()); err == nil {
		t.Fatal("invalid camera filmed successfully")
	}
}

func TestCaptureCountMatchesRates(t *testing.T) {
	// 6 frames at 10 fps = 600 ms of display; at 30 fps the camera starts
	// a capture every 33.3 ms -> 18 captures overlap the display window.
	d, err := screen.NewDisplay(solidFrames(6, 40, 40), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := Default().Film(d, cleanChannel())
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) < 16 || len(caps) > 19 {
		t.Fatalf("capture count = %d, want ≈18", len(caps))
	}
}

func TestTimingJitterDeterministicPerSeed(t *testing.T) {
	d, err := screen.NewDisplay(solidFrames(4, 40, 40), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	film := func(seed int64) []time.Duration {
		cam := Default()
		cam.TimingJitter = 4 * time.Millisecond
		cam.Seed = seed
		caps, err := cam.Film(d, cleanChannel())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]time.Duration, len(caps))
		for i, c := range caps {
			out[i] = c.Start
		}
		return out
	}
	a := film(5)
	b := film(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different capture times")
		}
	}
	c := film(6)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical capture times")
	}
}

func TestTimingJitterNeverOverlapsCaptures(t *testing.T) {
	d, err := screen.NewDisplay(solidFrames(6, 40, 40), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	cam := Default()
	cam.TimingJitter = 50 * time.Millisecond // absurd; must be clamped
	cam.Seed = 9
	caps, err := cam.Film(d, cleanChannel())
	if err != nil {
		t.Fatal(err)
	}
	readout := time.Duration(float64(cam.Period()) * cam.ReadoutFraction)
	for i := 1; i < len(caps); i++ {
		if caps[i].Start < caps[i-1].Start+readout {
			t.Fatalf("captures %d and %d overlap: %v then %v", i-1, i, caps[i-1].Start, caps[i].Start)
		}
	}
}

func TestTransitionBlendsRows(t *testing.T) {
	// Two solid frames with an LCD transition: a capture scanning across
	// the switch must contain intermediate colors between the two.
	frames := solidFrames(2, 60, 60) // white then red
	d, err := screen.NewDisplay(frames, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Transition = 40 * time.Millisecond // long, to make the ramp visible
	cam := Camera{RateFPS: 10, ReadoutFraction: 0.9, Phase: 95 * time.Millisecond}
	caps, err := cam.Film(d, cleanChannel())
	if err != nil {
		t.Fatal(err)
	}
	foundBlend := false
	for _, c := range caps {
		for y := 0; y < c.Image.H; y += 2 {
			p := c.Image.At(c.Image.W/2, y)
			// A white->red blend passes through pinks: G and B equal,
			// well below R but well above 0.
			if p.R > 200 && p.G > 60 && p.G < 200 && absDiff(p.G, p.B) < 30 {
				foundBlend = true
			}
		}
	}
	if !foundBlend {
		t.Fatal("no blended rows found across the transition")
	}
}

func absDiff(a, b uint8) int {
	if a > b {
		return int(a - b)
	}
	return int(b - a)
}
