// Package camera models the receiver's CMOS camera. The essential physics
// is the rolling shutter (paper §III-B, Fig. 6): a capture is not a
// snapshot but a top-to-bottom scan over a readout interval, so when the
// display rate exceeds half the capture rate a captured image mixes rows
// from two consecutive displayed frames. RainBar's tracking bars exist to
// undo exactly this mixing; this package produces it faithfully.
package camera

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"rainbar/internal/channel"
	"rainbar/internal/colorspace"
	"rainbar/internal/faults"
	"rainbar/internal/obs"
	"rainbar/internal/raster"
	"rainbar/internal/screen"
)

// Camera describes a rolling-shutter capture device.
type Camera struct {
	// RateFPS is the capture rate f_c (paper default 30 fps).
	RateFPS float64
	// ReadoutFraction is the fraction of the capture period spent
	// scanning rows top to bottom; CMOS phone sensors are close to 1.
	ReadoutFraction float64
	// Phase delays the first capture start relative to the display epoch,
	// modeling the arbitrary alignment of two unsynchronized devices.
	Phase time.Duration
	// TimingJitter is the standard deviation of per-capture start-time
	// noise (OS scheduling, exposure adjustment). It prevents the
	// unrealistic resonances a mathematically exact f_c/f_d ratio
	// produces. Zero disables.
	TimingJitter time.Duration
	// Seed drives the timing-jitter draws.
	Seed int64
	// Faults is an optional injector chain run on every capture after the
	// photometric pass (nil disables). Capture k's faults are a pure
	// function of (chain seed, k), where k numbers capture slots from the
	// film start — dropped captures still consume their slot, so the fault
	// pattern is independent of earlier faults.
	Faults *faults.Chain
	// Recorder, when set, counts filmed captures, rolling-shutter mixed
	// captures, and fault-dropped captures. Capture content and timing
	// never depend on it.
	Recorder obs.Recorder
}

// Default returns the paper's receiver: 30 fps with near-full readout.
func Default() Camera {
	return Camera{RateFPS: 30, ReadoutFraction: 0.9}
}

// Validate reports configuration errors.
func (c Camera) Validate() error {
	if c.RateFPS <= 0 {
		return fmt.Errorf("camera: capture rate %.2f fps must be positive", c.RateFPS)
	}
	if c.ReadoutFraction <= 0 || c.ReadoutFraction > 1 {
		return fmt.Errorf("camera: readout fraction %.2f out of (0, 1]", c.ReadoutFraction)
	}
	return nil
}

// Period returns the time between capture starts.
func (c Camera) Period() time.Duration {
	return time.Duration(float64(time.Second) / c.RateFPS)
}

// Capture is one captured image plus its provenance: which displayed
// frames contributed rows (in top-to-bottom order) and at which capture
// row each source frame starts.
type Capture struct {
	// Image is the captured pixel data after the full optical pipeline.
	Image *raster.Image
	// Start is the capture's scan start time.
	Start time.Duration
	// SourceFrames lists the display frame indices contributing rows,
	// top to bottom. A clean capture has exactly one entry.
	SourceFrames []int
	// RowBoundaries[i] is the first capture row drawn from
	// SourceFrames[i+1]; len == len(SourceFrames)-1.
	RowBoundaries []int
}

// Mixed reports whether the capture contains rows from more than one
// displayed frame.
func (cap *Capture) Mixed() bool { return len(cap.SourceFrames) > 1 }

// Film captures the entire display sequence through the given channel,
// returning every capture whose scan overlaps the display interval. The
// channel's photometric pass runs after row mixing, as in a real sensor
// where optics and noise act on the composite exposure.
func (c Camera) Film(d *screen.Display, ch *channel.Channel) ([]Capture, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var out []Capture
	readout := time.Duration(float64(c.Period()) * c.ReadoutFraction)
	// Determinism contract (RB-D2): locally seeded *rand.Rand — shutter
	// jitter is a pure function of c.Seed, so a Film run is bit-identical
	// for identical configurations.
	rng := rand.New(rand.NewSource(c.Seed))
	maxJitter := (c.Period() - readout) / 2 // captures must not overlap
	for k := 0; ; k++ {
		start := c.Phase + time.Duration(k)*c.Period()
		if c.TimingJitter > 0 && maxJitter > 0 {
			j := time.Duration(rng.NormFloat64() * float64(c.TimingJitter))
			if j > maxJitter {
				j = maxJitter
			}
			if j < -maxJitter {
				j = -maxJitter
			}
			start += j
		}
		if start >= d.End() {
			break
		}
		if start+readout <= 0 {
			continue
		}
		cap, err := c.captureOne(d, ch, start, readout)
		if err != nil {
			return nil, err
		}
		if cap == nil {
			continue
		}
		if !c.Faults.Apply(cap.Image, k) {
			raster.Recycle(cap.Image)
			if obs.Enabled(c.Recorder) {
				c.Recorder.Inc(obs.MCameraDropped, 1)
			}
			continue // whole-frame loss: the decoder never sees it
		}
		if obs.Enabled(c.Recorder) {
			c.Recorder.Inc(obs.MCameraCaptures, 1)
			if cap.Mixed() {
				c.Recorder.Inc(obs.MCameraMixed, 1)
			}
		}
		out = append(out, *cap)
	}
	return out, nil
}

// rowMix describes one captured row's source: frame b, or a blend of
// frames a and b (LCD transition) with weight alpha toward b.
type rowMix struct {
	a, b  int
	alpha float64
}

// captureOne scans one image starting at start. Returns nil if no display
// frame is visible during the scan.
func (c Camera) captureOne(d *screen.Display, ch *channel.Channel, start, readout time.Duration) (*Capture, error) {
	h := d.Frame(0).H
	w := d.Frame(0).W

	// Determine the source display frame(s) for every captured row. The
	// "dominant" frame (the one contributing more than half the blend)
	// defines provenance; fully blended rows still carry pixels of both.
	rows := make([]rowMix, h)
	dominant := make([]int, h)
	needed := map[int]bool{}
	for y := 0; y < h; y++ {
		t := start + time.Duration(float64(readout)*float64(y)/float64(h))
		a, b, alpha := d.BlendAt(t)
		rows[y] = rowMix{a: a, b: b, alpha: alpha}
		switch {
		case b < 0:
			dominant[y] = -1
		case alpha >= 0.5:
			dominant[y] = b
		default:
			dominant[y] = a
		}
		if b >= 0 {
			needed[b] = true
			if a >= 0 {
				needed[a] = true
			}
		}
	}
	if len(needed) == 0 {
		return nil, nil
	}

	// Warp every involved source frame with shared capture geometry.
	indices := make([]int, 0, len(needed))
	for idx := range needed {
		indices = append(indices, idx)
	}
	sort.Ints(indices)
	frames := make([]*raster.Image, len(indices))
	for i, idx := range indices {
		frames[i] = d.Frame(idx)
	}
	warped, err := ch.WarpAll(frames)
	if err != nil {
		return nil, fmt.Errorf("camera capture at %v: %w", start, err)
	}
	warpOf := make(map[int]*raster.Image, len(indices))
	for i, idx := range indices {
		warpOf[idx] = warped[i]
	}

	// Assemble the mixed image row by row; rows with no visible frame
	// (before the first or after the last display frame) stay black.
	mixed := raster.New(w, h)
	var distinct []int
	var boundaries []int
	prev := -2 // sentinel distinct from "no frame" (-1)
	for y := 0; y < h; y++ {
		dom := dominant[y]
		if dom != prev {
			if dom >= 0 && prev >= 0 {
				boundaries = append(boundaries, y)
			}
			if dom >= 0 {
				distinct = append(distinct, dom)
			}
			prev = dom
		}
		rm := rows[y]
		if rm.b < 0 {
			continue
		}
		dst := mixed.Pix[y*w : (y+1)*w]
		if rm.a == rm.b || rm.alpha >= 1 {
			copy(dst, warpOf[rm.b].Pix[y*w:(y+1)*w])
			continue
		}
		rowA := warpOf[rm.a].Pix[y*w : (y+1)*w]
		rowB := warpOf[rm.b].Pix[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			dst[x] = lerpRGB(rowA[x], rowB[x], rm.alpha)
		}
	}

	return &Capture{
		Image:         ch.Photometric(mixed),
		Start:         start,
		SourceFrames:  distinct,
		RowBoundaries: boundaries,
	}, nil
}

func lerpRGB(a, b colorspace.RGB, t float64) colorspace.RGB {
	lerp := func(x, y uint8) uint8 {
		return uint8(float64(x)*(1-t) + float64(y)*t + 0.5)
	}
	return colorspace.RGB{R: lerp(a.R, b.R), G: lerp(a.G, b.G), B: lerp(a.B, b.B)}
}
