// Package workload generates the deterministic payloads the experiments
// transmit: random binary data for error-rate sweeps and realistic text,
// image-like and audio-like files for the application-driven transfers of
// §V. Everything is seeded so experiment tables reproduce exactly.
package workload

import (
	"math"
	"math/rand"
	"strings"
)

// Random returns n pseudo-random bytes from the given seed.
func Random(n int, seed int64) []byte {
	out := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(out)
	return out
}

// words is a small vocabulary for synthetic text; sampled with a Zipf-ish
// skew so the output has natural letter statistics.
var words = []string{
	"the", "of", "and", "a", "to", "in", "is", "you", "that", "it",
	"he", "was", "for", "on", "are", "as", "with", "his", "they", "I",
	"visible", "light", "communication", "barcode", "screen", "camera",
	"frame", "color", "block", "decode", "encode", "robust", "channel",
	"synchronization", "throughput", "locator", "tracker", "smartphone",
}

// Text returns approximately n bytes of synthetic English-like text with
// sentences and paragraphs.
func Text(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.Grow(n + 64)
	sentenceLen := 0
	for b.Len() < n {
		// Zipf-ish pick: squaring the uniform biases toward low indices,
		// where the common words sit.
		u := rng.Float64()
		idx := int(u * u * float64(len(words)))
		w := words[idx]
		if sentenceLen == 0 {
			w = strings.ToUpper(w[:1]) + w[1:]
		}
		b.WriteString(w)
		sentenceLen++
		switch {
		case sentenceLen >= 8+rng.Intn(8):
			b.WriteString(". ")
			sentenceLen = 0
			if rng.Intn(6) == 0 {
				b.WriteString("\n\n")
			}
		default:
			b.WriteByte(' ')
		}
	}
	return []byte(b.String()[:n])
}

// ImageLike returns n bytes resembling a compressed image: a PNG magic
// prefix followed by high-entropy data.
func ImageLike(n int, seed int64) []byte {
	out := Random(n, seed)
	magic := []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}
	copy(out, magic)
	return out
}

// AudioLike returns n bytes resembling a WAV file: RIFF/WAVE header
// followed by oscillating sample data.
func AudioLike(n int, seed int64) []byte {
	out := make([]byte, n)
	copy(out, "RIFF")
	if n > 8 {
		copy(out[8:], "WAVE")
	}
	rng := rand.New(rand.NewSource(seed))
	phase := 0.0
	for i := 12; i < n; i++ {
		phase += 0.1 + rng.Float64()*0.05
		out[i] = byte(128 + 100*math.Sin(phase))
	}
	return out
}
