package workload

import (
	"bytes"
	"testing"
	"unicode/utf8"
)

func TestRandomDeterministicAndSized(t *testing.T) {
	a := Random(256, 7)
	b := Random(256, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed, different bytes")
	}
	if len(a) != 256 {
		t.Fatalf("len = %d", len(a))
	}
	c := Random(256, 8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical bytes")
	}
}

func TestRandomHighEntropy(t *testing.T) {
	data := Random(4096, 1)
	counts := make([]int, 256)
	for _, b := range data {
		counts[b]++
	}
	// Every byte value should appear at least once in 4 KiB of uniform
	// bytes with overwhelming probability.
	zero := 0
	for _, n := range counts {
		if n == 0 {
			zero++
		}
	}
	if zero > 3 {
		t.Fatalf("%d byte values missing from 4KiB of random data", zero)
	}
}

func TestTextLooksLikeText(t *testing.T) {
	txt := Text(2000, 3)
	if len(txt) != 2000 {
		t.Fatalf("len = %d", len(txt))
	}
	if !utf8.Valid(txt) {
		t.Fatal("invalid UTF-8")
	}
	if !bytes.Contains(txt, []byte(". ")) {
		t.Fatal("no sentence boundaries")
	}
	// Printable ratio must be high (text classifier depends on it).
	printable := 0
	for _, r := range string(txt) {
		if r == '\n' || (r >= 0x20 && r != 0x7F) {
			printable++
		}
	}
	if float64(printable)/float64(len([]rune(string(txt)))) < 0.99 {
		t.Fatal("text not printable enough")
	}
}

func TestTextDeterministic(t *testing.T) {
	if !bytes.Equal(Text(500, 9), Text(500, 9)) {
		t.Fatal("same seed, different text")
	}
}

func TestImageLikeMagic(t *testing.T) {
	img := ImageLike(64, 1)
	want := []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}
	if !bytes.Equal(img[:8], want) {
		t.Fatalf("magic = % x", img[:8])
	}
	if len(img) != 64 {
		t.Fatalf("len = %d", len(img))
	}
}

func TestAudioLikeMagic(t *testing.T) {
	a := AudioLike(64, 1)
	if !bytes.Equal(a[:4], []byte("RIFF")) || !bytes.Equal(a[8:12], []byte("WAVE")) {
		t.Fatalf("header = %q", a[:12])
	}
	// Sample data must oscillate around 128, not sit at zero.
	var lo, hi byte = 255, 0
	for _, b := range a[12:] {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	if hi-lo < 50 {
		t.Fatalf("waveform range %d too flat", hi-lo)
	}
}

func TestSmallSizes(t *testing.T) {
	if got := AudioLike(4, 1); len(got) != 4 {
		t.Fatalf("AudioLike(4) len = %d", len(got))
	}
	if got := ImageLike(3, 1); len(got) != 3 {
		t.Fatalf("ImageLike(3) len = %d", len(got))
	}
	if got := Text(1, 1); len(got) != 1 {
		t.Fatalf("Text(1) len = %d", len(got))
	}
}
