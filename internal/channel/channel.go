// Package channel simulates the screen-to-camera optical channel that the
// paper's evaluation exercises on real phones (§II, §IV). It replaces the
// physical Galaxy S4 screen/camera pair with a deterministic, seeded model
// of the same impairments, each mapped to an evaluation axis:
//
//   - distance (d)            -> projected scale (pinhole model)
//   - view angle (v_a)        -> perspective homography
//   - lens distortion         -> radial model
//   - focus/motion blur       -> Gaussian + horizontal box kernels
//   - screen brightness (s_b) -> linear intensity scaling
//   - indoor/outdoor ambient  -> additive veiling light + contrast loss
//   - sensor noise            -> additive Gaussian per channel
//
// The geometry stage (Warp) and the photometric stage (Photometric) are
// split so the rolling-shutter camera model can mix two geometrically
// warped frames row-by-row before the shared photometric pass.
package channel

import (
	"fmt"
	"math"
	"math/rand"

	"rainbar/internal/colorspace"
	"rainbar/internal/faults"
	"rainbar/internal/geometry"
	"rainbar/internal/obs"
	"rainbar/internal/raster"
)

// Ambient identifies the lighting environment of a capture.
type Ambient int

// Ambient environments from the paper's evaluation (indoor default;
// outdoor notably degrades decoding, Fig. 10).
const (
	AmbientIndoor Ambient = iota + 1
	AmbientOutdoor
	AmbientDark
)

// String returns the environment name.
func (a Ambient) String() string {
	switch a {
	case AmbientIndoor:
		return "indoor"
	case AmbientOutdoor:
		return "outdoor"
	case AmbientDark:
		return "dark"
	default:
		return "unknown"
	}
}

// veil returns the additive ambient level (0..255) and the contrast factor
// the environment imposes on the captured screen.
func (a Ambient) veil() (level float64, contrast float64) {
	switch a {
	case AmbientOutdoor:
		return 46, 0.76 // strong veiling glare washes out the screen
	case AmbientDark:
		return 0, 1.0
	default: // indoor
		return 12, 0.95
	}
}

// ReferenceDistanceCM is the paper's default sender-receiver distance.
const ReferenceDistanceCM = 12.0

// Config describes one capture condition. The zero value is not useful;
// start from DefaultConfig and override fields.
type Config struct {
	// DistanceCM is the screen-camera distance (paper default 12 cm).
	// Larger distances shrink the projected screen.
	DistanceCM float64
	// ViewAngleDeg is the angle between screen normal and camera axis.
	ViewAngleDeg float64
	// ScreenBrightness is the sender's screen brightness in [0, 1].
	ScreenBrightness float64
	// Ambient is the lighting environment.
	Ambient Ambient
	// BlurSigma is the defocus blur standard deviation in pixels at the
	// reference distance; effective blur grows mildly with distance.
	BlurSigma float64
	// MotionBlurPx is the handshake motion-blur kernel length in pixels
	// (0 or 1 disables).
	MotionBlurPx int
	// NoiseStdDev is the per-pixel sensor noise standard deviation in
	// 8-bit counts.
	NoiseStdDev float64
	// ChromaNoiseStdDev is spatially correlated per-channel noise (8-bit
	// counts): demosaicing and compression artifacts vary smoothly over
	// patches of ChromaNoiseScalePx pixels, so unlike per-pixel noise they
	// survive the decoder's mean filter. 0 disables.
	ChromaNoiseStdDev float64
	// ChromaNoiseScalePx is the blotch size of the correlated noise
	// (default 8 px when ChromaNoiseStdDev > 0).
	ChromaNoiseScalePx int
	// LensK1, LensK2 are radial distortion coefficients (see geometry).
	LensK1, LensK2 float64
	// JitterPx randomly translates the projection per capture, modeling
	// hand shake between frames.
	JitterPx float64
	// Seed makes every capture sequence deterministic.
	Seed int64
}

// DefaultConfig returns the paper's default working condition: 12 cm,
// head-on, full brightness, indoors, mild blur/noise/lens distortion.
func DefaultConfig() Config {
	return Config{
		DistanceCM:       ReferenceDistanceCM,
		ViewAngleDeg:     0,
		ScreenBrightness: 1.0,
		Ambient:          AmbientIndoor,
		BlurSigma:        0.8,
		NoiseStdDev:      3.0,
		LensK1:           0.015,
		LensK2:           0.002,
		JitterPx:         0.6,
		Seed:             1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DistanceCM <= 0 {
		return fmt.Errorf("channel: distance %.2f cm must be positive", c.DistanceCM)
	}
	if c.ScreenBrightness < 0 || c.ScreenBrightness > 1 {
		return fmt.Errorf("channel: brightness %.2f out of [0, 1]", c.ScreenBrightness)
	}
	if c.ViewAngleDeg < -60 || c.ViewAngleDeg > 60 {
		return fmt.Errorf("channel: view angle %.1f° out of [-60, 60]", c.ViewAngleDeg)
	}
	return nil
}

// scale converts distance into projected size: the projection is sized so
// the screen nearly fills the capture at 8 cm — with margin for lens
// distortion and hand jitter at the corners — and shrinks in proportion
// (pinhole model).
func (c Config) scale() float64 {
	return 0.92 * 8.0 / c.DistanceCM
}

// effectiveBlurSigma grows defocus mildly as the subject leaves the focal
// plane at the reference distance.
func (c Config) effectiveBlurSigma() float64 {
	d := math.Abs(c.DistanceCM-ReferenceDistanceCM) / ReferenceDistanceCM
	return c.BlurSigma * (1 + 0.7*d)
}

// ForwardMap returns the exact screen-to-capture geometric mapping of this
// condition with zero jitter: perspective projection followed by the
// inverse of the lens model (the warp samples capture pixels by applying
// the lens model forward, so the true forward map inverts it by fixed-
// point iteration). Ground-truth localization experiments (Fig. 3/4)
// compare decoder estimates against this map.
func (c Config) ForwardMap(w, h int) (func(geometry.Point) geometry.Point, error) {
	hom, err := geometry.PerspectiveView(float64(w), float64(h), c.ViewAngleDeg, c.scale(), 0, 0)
	if err != nil {
		return nil, fmt.Errorf("channel forward map: %w", err)
	}
	lens := geometry.RadialDistortion{
		Center: geometry.Point{X: float64(w) / 2, Y: float64(h) / 2},
		Norm:   math.Hypot(float64(w), float64(h)) / 2,
		K1:     c.LensK1,
		K2:     c.LensK2,
	}
	return func(p geometry.Point) geometry.Point {
		target := hom.Apply(p)
		// Solve lens.Apply(q) == target by fixed-point iteration
		// q <- center + (target - center) / f(|q - center|).
		q := target
		for i := 0; i < 20; i++ {
			mapped := lens.Apply(q)
			next := q.Add(target.Sub(mapped))
			if next.Dist(q) < 1e-6 {
				return next
			}
			q = next
		}
		return q
	}, nil
}

// Channel applies a capture condition to rendered frames. Each Channel has
// its own PRNG stream; captures mutate that stream, so a Channel is not
// safe for concurrent use (clone one per goroutine via New).
type Channel struct {
	cfg Config
	rng *rand.Rand

	// Faults is an optional injector chain run on every Capture after the
	// photometric stage (nil disables). Fault decisions for capture k are a
	// pure function of (chain seed, k) — see internal/faults — so they stay
	// reproducible even though the channel's own PRNG is sequential.
	Faults *faults.Chain

	// Recorder, when set, counts channel activity (captures, photometric
	// passes). Pixel output never depends on it.
	Recorder obs.Recorder

	// captures counts Capture calls, indexing the fault chain.
	captures int
}

// New creates a channel for the given condition.
func New(cfg Config) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Determinism contract (RB-D2): locally seeded *rand.Rand — the noise
	// stream is a pure function of cfg.Seed, never of global or
	// time-seeded state.
	return &Channel{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// MustNew is New but panics on invalid configuration; for tests and
// literal configs.
func MustNew(cfg Config) *Channel {
	ch, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return ch
}

// Config returns the channel's condition.
func (ch *Channel) Config() Config { return ch.cfg }

// Reset rewinds the channel to its just-constructed state: the private
// PRNG is reseeded from the configured seed and the capture counter that
// indexes the fault chain is zeroed. After Reset the next capture sequence
// is bit-identical to a freshly built channel's, which is what lets a
// long-lived transport session run back-to-back transfers reproducibly.
func (ch *Channel) Reset() {
	// Determinism contract (RB-D2): locally seeded *rand.Rand, same as New.
	ch.rng = rand.New(rand.NewSource(ch.cfg.Seed))
	ch.captures = 0
}

// Warp applies only the geometric stage (perspective + lens distortion +
// per-capture jitter) to a rendered frame, returning a capture-resolution
// image on a black background. The same jitter draw is used for the whole
// frame, as a real capture would.
func (ch *Channel) Warp(frame *raster.Image) (*raster.Image, error) {
	jx := (ch.rng.Float64()*2 - 1) * ch.cfg.JitterPx
	jy := (ch.rng.Float64()*2 - 1) * ch.cfg.JitterPx
	return ch.warpWithJitter(frame, jx, jy)
}

// WarpPair warps two frames with identical geometry (one jitter draw), as
// needed for rolling-shutter mixing where both partial frames share the
// capture geometry.
func (ch *Channel) WarpPair(a, b *raster.Image) (wa, wb *raster.Image, err error) {
	out, err := ch.WarpAll([]*raster.Image{a, b})
	if err != nil {
		return nil, nil, err
	}
	return out[0], out[1], nil
}

// WarpAll warps any number of frames with identical geometry (a single
// jitter draw). A rolling-shutter capture that spans several displayed
// frames mixes their rows within one capture geometry.
func (ch *Channel) WarpAll(frames []*raster.Image) ([]*raster.Image, error) {
	jx := (ch.rng.Float64()*2 - 1) * ch.cfg.JitterPx
	jy := (ch.rng.Float64()*2 - 1) * ch.cfg.JitterPx
	out := make([]*raster.Image, len(frames))
	for i, f := range frames {
		w, err := ch.warpWithJitter(f, jx, jy)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

func (ch *Channel) warpWithJitter(frame *raster.Image, jx, jy float64) (*raster.Image, error) {
	w, h := frame.W, frame.H
	hom, err := geometry.PerspectiveView(float64(w), float64(h), ch.cfg.ViewAngleDeg, ch.cfg.scale(), jx, jy)
	if err != nil {
		return nil, fmt.Errorf("channel warp: %w", err)
	}
	inv, err := hom.Inverse()
	if err != nil {
		return nil, fmt.Errorf("channel warp: %w", err)
	}
	lens := geometry.RadialDistortion{
		Center: geometry.Point{X: float64(w) / 2, Y: float64(h) / 2},
		Norm:   math.Hypot(float64(w), float64(h)) / 2,
		K1:     ch.cfg.LensK1,
		K2:     ch.cfg.LensK2,
	}

	// Every output pixel is an independent pure function of the input
	// frame and the (already drawn) jitter, so rows fan out across CPUs
	// without affecting the result.
	out := raster.New(w, h)
	raster.ParallelRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			orow := out.Pix[y*w : (y+1)*w : (y+1)*w]
			for x := 0; x < w; x++ {
				// Captured pixel -> ideal pinhole position (lens model) ->
				// screen position (inverse perspective).
				ideal := lens.Apply(geometry.Point{X: float64(x), Y: float64(y)})
				src := inv.Apply(ideal)
				if src.X < -1 || src.X > float64(w) || src.Y < -1 || src.Y > float64(h) {
					continue // stays black: the dark surround of the screen
				}
				orow[x] = frame.Bilinear(src.X, src.Y)
			}
		}
	})
	return out, nil
}

// Photometric applies the non-geometric stage in place of a new image:
// blur, screen brightness, ambient veiling light, and sensor noise.
//
// All stochastic draws come from the channel's sequential PRNG, so they are
// made up front — in the same R,G,B scan order as a per-pixel loop would —
// into a pooled buffer; only the pure per-pixel arithmetic then fans out
// across rows. The output is therefore independent of GOMAXPROCS.
func (ch *Channel) Photometric(img *raster.Image) *raster.Image {
	if obs.Enabled(ch.Recorder) {
		ch.Recorder.Inc(obs.MChannelPhotometric, 1)
	}
	out := img.GaussianBlur(ch.cfg.effectiveBlurSigma())
	if ch.cfg.MotionBlurPx > 1 {
		mb := out.MotionBlurHorizontal(ch.cfg.MotionBlurPx)
		raster.Recycle(out)
		out = mb
	}
	chroma, chromaBacking := ch.chromaField(out.W, out.H)
	level, contrast := ch.cfg.Ambient.veil()
	bright := ch.cfg.ScreenBrightness
	n := len(out.Pix)
	var noiseBuf []float64
	if ch.cfg.NoiseStdDev > 0 {
		noiseBuf = raster.GetFloats(3 * n)
		sd := ch.cfg.NoiseStdDev
		for i := range noiseBuf {
			noiseBuf[i] = ch.rng.NormFloat64() * sd
		}
	}
	w := out.W
	raster.ParallelRows(out.H, func(y0, y1 int) {
		for i := y0 * w; i < y1*w; i++ {
			p := out.Pix[i]
			var cr, cg, cb float64
			if chroma[0] != nil {
				// Chroma artifacts scale with local luminance: camera
				// pipelines denoise shadows aggressively, so dark (structural
				// black) regions keep far less correlated noise than lit ones.
				luma := (0.299*float64(p.R) + 0.587*float64(p.G) + 0.114*float64(p.B)) / 255
				gain := 0.15 + 0.85*luma
				cr, cg, cb = chroma[0][i]*gain, chroma[1][i]*gain, chroma[2][i]*gain
			}
			var nr, ng, nb float64
			if noiseBuf != nil {
				nr, ng, nb = noiseBuf[3*i], noiseBuf[3*i+1], noiseBuf[3*i+2]
			}
			out.Pix[i] = colorspace.RGB{
				R: photom(p.R, bright, contrast, level, nr+cr),
				G: photom(p.G, bright, contrast, level, ng+cg),
				B: photom(p.B, bright, contrast, level, nb+cb),
			}
		}
	})
	if noiseBuf != nil {
		raster.PutFloats(noiseBuf)
	}
	if chromaBacking != nil {
		raster.PutFloats(chromaBacking)
	}
	return out
}

// chromaField builds the spatially correlated noise planes for one
// capture: coarse per-patch Gaussian draws, bilinearly upsampled. The three
// planes share one pooled backing slice, returned so the caller can recycle
// it once the planes are consumed.
func (ch *Channel) chromaField(w, h int) ([3][]float64, []float64) {
	var zero [3][]float64
	if ch.cfg.ChromaNoiseStdDev <= 0 {
		return zero, nil
	}
	scale := ch.cfg.ChromaNoiseScalePx
	if scale < 2 {
		scale = 8
	}
	cw, chh := w/scale+2, h/scale+2
	var coarse [3][]float64
	for c := 0; c < 3; c++ {
		coarse[c] = make([]float64, cw*chh)
		for i := range coarse[c] {
			coarse[c][i] = ch.rng.NormFloat64() * ch.cfg.ChromaNoiseStdDev
		}
	}
	n := w * h
	backing := raster.GetFloats(3 * n)
	var out [3][]float64
	for c := 0; c < 3; c++ {
		out[c] = backing[c*n : (c+1)*n]
	}
	// The coarse draws above consumed the PRNG; upsampling is pure, so it
	// runs row-parallel.
	raster.ParallelRows(h, func(ys, ye int) {
		for y := ys; y < ye; y++ {
			fy := float64(y) / float64(scale)
			y0 := int(fy)
			ty := fy - float64(y0)
			for x := 0; x < w; x++ {
				fx := float64(x) / float64(scale)
				x0 := int(fx)
				tx := fx - float64(x0)
				for c := 0; c < 3; c++ {
					v00 := coarse[c][y0*cw+x0]
					v10 := coarse[c][y0*cw+x0+1]
					v01 := coarse[c][(y0+1)*cw+x0]
					v11 := coarse[c][(y0+1)*cw+x0+1]
					top := v00*(1-tx) + v10*tx
					bot := v01*(1-tx) + v11*tx
					out[c][y*w+x] = top*(1-ty) + bot*ty
				}
			}
		}
	})
	return out, backing
}

func (ch *Channel) noise() float64 {
	if ch.cfg.NoiseStdDev <= 0 {
		return 0
	}
	return ch.rng.NormFloat64() * ch.cfg.NoiseStdDev
}

func photom(v uint8, bright, contrast, ambient, noise float64) uint8 {
	f := float64(v)*bright*contrast + ambient + noise
	if f < 0 {
		return 0
	}
	if f > 255 {
		return 255
	}
	return uint8(f + 0.5)
}

// Capture runs the full pipeline on a single displayed frame: geometry
// then photometrics, then the optional fault-injection chain. This is what
// a global-shutter camera (or a rolling-shutter camera with f_d <= f_c/2
// and aligned timing) would produce. When the fault chain drops the
// capture, Capture returns faults.ErrFrameDropped.
func (ch *Channel) Capture(frame *raster.Image) (*raster.Image, error) {
	if obs.Enabled(ch.Recorder) {
		ch.Recorder.Inc(obs.MChannelCaptures, 1)
	}
	warped, err := ch.Warp(frame)
	if err != nil {
		return nil, err
	}
	out := ch.Photometric(warped)
	// Photometric always returns a fresh image (the blur output), so the
	// warped intermediate can go back to the pool.
	raster.Recycle(warped)
	idx := ch.captures
	ch.captures++
	if !ch.Faults.Apply(out, idx) {
		raster.Recycle(out)
		return nil, ErrFrameDropped
	}
	return out, nil
}

// ErrFrameDropped aliases faults.ErrFrameDropped so channel callers can
// test for injected whole-frame loss without importing faults.
var ErrFrameDropped = faults.ErrFrameDropped
