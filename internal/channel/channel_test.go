package channel

import (
	"math"
	"testing"

	"rainbar/internal/colorspace"
	"rainbar/internal/geometry"
	"rainbar/internal/raster"
)

func testFrame() *raster.Image {
	img := raster.New(160, 90)
	img.Fill(colorspace.RGBWhite)
	img.FillRect(40, 20, 30, 30, colorspace.RGBRed)
	img.FillRect(90, 40, 30, 30, colorspace.RGBGreen)
	return img
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero distance", func(c *Config) { c.DistanceCM = 0 }, false},
		{"negative distance", func(c *Config) { c.DistanceCM = -5 }, false},
		{"brightness too high", func(c *Config) { c.ScreenBrightness = 1.5 }, false},
		{"brightness negative", func(c *Config) { c.ScreenBrightness = -0.1 }, false},
		{"angle too steep", func(c *Config) { c.ViewAngleDeg = 75 }, false},
		{"angle negative ok", func(c *Config) { c.ViewAngleDeg = -30 }, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			c.mut(&cfg)
			err := cfg.Validate()
			if c.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !c.ok && err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DistanceCM = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestCaptureDeterministicForSeed(t *testing.T) {
	frame := testFrame()
	cap1, err := MustNew(DefaultConfig()).Capture(frame)
	if err != nil {
		t.Fatal(err)
	}
	cap2, err := MustNew(DefaultConfig()).Capture(frame)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cap1.Pix {
		if cap1.Pix[i] != cap2.Pix[i] {
			t.Fatal("same seed produced different captures")
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	cap3, err := MustNew(cfg).Capture(frame)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range cap1.Pix {
		if cap1.Pix[i] != cap3.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical captures")
	}
}

func TestHeadOnCleanChannelPreservesColors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlurSigma = 0
	cfg.NoiseStdDev = 0
	cfg.LensK1, cfg.LensK2 = 0, 0
	cfg.JitterPx = 0
	cfg.DistanceCM = 8.2 // scale ~0.956, nearly full frame
	ch := MustNew(cfg)
	frame := testFrame()
	got, err := ch.Capture(frame)
	if err != nil {
		t.Fatal(err)
	}
	// The red square center maps near its scaled position; classify it.
	cl := colorspace.NewClassifier(0.3)
	// center of frame is invariant under pure scaling about center
	center := got.At(got.W/2, got.H/2)
	if cl.ClassifyRGB(center) != colorspace.White {
		t.Errorf("center pixel %v not white", center)
	}
}

func TestDistanceShrinksProjection(t *testing.T) {
	frame := testFrame()
	brightArea := func(d float64) int {
		cfg := DefaultConfig()
		cfg.DistanceCM = d
		cfg.NoiseStdDev = 0
		cfg.Ambient = AmbientDark
		got, err := MustNew(cfg).Capture(frame)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, p := range got.Pix {
			if int(p.R)+int(p.G)+int(p.B) > 150 {
				n++
			}
		}
		return n
	}
	near := brightArea(8)
	mid := brightArea(12)
	far := brightArea(18)
	if !(near > mid && mid > far) {
		t.Fatalf("projected area not shrinking with distance: %d, %d, %d", near, mid, far)
	}
}

func TestViewAngleForeshortens(t *testing.T) {
	frame := testFrame()
	cfg := DefaultConfig()
	cfg.ViewAngleDeg = 30
	cfg.NoiseStdDev = 0
	cfg.Ambient = AmbientDark
	got, err := MustNew(cfg).Capture(frame)
	if err != nil {
		t.Fatal(err)
	}
	// Column-wise bright extent must differ between left and right halves.
	height := func(x int) int {
		n := 0
		for y := 0; y < got.H; y++ {
			p := got.At(x, y)
			if int(p.R)+int(p.G)+int(p.B) > 150 {
				n++
			}
		}
		return n
	}
	left := height(got.W / 4)
	right := height(3 * got.W / 4)
	if left == right {
		t.Fatal("no foreshortening at 30°")
	}
}

func TestBrightnessScalesIntensity(t *testing.T) {
	frame := testFrame()
	mean := func(brightness float64) float64 {
		cfg := DefaultConfig()
		cfg.ScreenBrightness = brightness
		cfg.NoiseStdDev = 0
		cfg.Ambient = AmbientDark
		got, err := MustNew(cfg).Capture(frame)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range got.Pix {
			sum += float64(p.R) + float64(p.G) + float64(p.B)
		}
		return sum / float64(len(got.Pix))
	}
	if full, half := mean(1.0), mean(0.5); half >= full*0.7 {
		t.Fatalf("half brightness mean %v not well below full %v", half, full)
	}
}

func TestOutdoorRaisesFloorAndCutsContrast(t *testing.T) {
	frame := raster.New(64, 64) // all black screen
	cfg := DefaultConfig()
	cfg.NoiseStdDev = 0
	cfg.Ambient = AmbientOutdoor
	got, err := MustNew(cfg).Capture(frame)
	if err != nil {
		t.Fatal(err)
	}
	// Outdoor veiling light lifts black pixels well above zero.
	p := got.At(32, 32)
	if p.R < 30 {
		t.Errorf("outdoor black level = %d, want raised floor", p.R)
	}
	cfg.Ambient = AmbientDark
	got2, err := MustNew(cfg).Capture(frame)
	if err != nil {
		t.Fatal(err)
	}
	if q := got2.At(32, 32); q.R != 0 {
		t.Errorf("dark-room black level = %d, want 0", q.R)
	}
}

func TestWarpPairSharesGeometry(t *testing.T) {
	a := raster.New(80, 45)
	a.Fill(colorspace.RGBRed)
	b := raster.New(80, 45)
	b.Fill(colorspace.RGBBlue)
	cfg := DefaultConfig()
	cfg.JitterPx = 3 // large jitter would misalign if drawn twice
	ch := MustNew(cfg)
	wa, wb, err := ch.WarpPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Wherever one warped frame is lit, the other must be lit too (same
	// geometric footprint).
	for i := range wa.Pix {
		la := wa.Pix[i] != colorspace.RGBBlack
		lb := wb.Pix[i] != colorspace.RGBBlack
		if la != lb {
			t.Fatal("warped pair has mismatched footprints")
		}
	}
}

func TestCaptureKeepsResolution(t *testing.T) {
	frame := testFrame()
	got, err := MustNew(DefaultConfig()).Capture(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != frame.W || got.H != frame.H {
		t.Fatalf("capture %dx%d, want %dx%d", got.W, got.H, frame.W, frame.H)
	}
}

func TestAmbientString(t *testing.T) {
	cases := map[Ambient]string{
		AmbientIndoor:  "indoor",
		AmbientOutdoor: "outdoor",
		AmbientDark:    "dark",
		Ambient(99):    "unknown",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", a, got, want)
		}
	}
}

func TestForwardMapMatchesWarp(t *testing.T) {
	// The exact forward map must agree with where Warp actually puts
	// screen content: paint a single bright block, warp, and check the
	// mapped center lands inside the bright region.
	cfg := DefaultConfig()
	cfg.ViewAngleDeg = 18
	cfg.JitterPx = 0
	cfg.NoiseStdDev = 0
	cfg.BlurSigma = 0
	ch := MustNew(cfg)

	frame := raster.New(320, 180)
	frame.FillRect(200, 90, 12, 12, colorspace.RGBWhite)
	warped, err := ch.Warp(frame)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := cfg.ForwardMap(320, 180)
	if err != nil {
		t.Fatal(err)
	}
	p := fwd(geometry.Point{X: 206, Y: 96})
	got := warped.At(int(p.X+0.5), int(p.Y+0.5))
	if got.R < 200 {
		t.Fatalf("forward-mapped center (%.1f, %.1f) is not on the block: %v", p.X, p.Y, got)
	}
}

func TestForwardMapInvertsLens(t *testing.T) {
	// With strong lens coefficients the fixed-point inversion must still
	// satisfy lens.Apply(fwd(p)) == hom.Apply(p) to sub-pixel accuracy.
	cfg := DefaultConfig()
	cfg.LensK1, cfg.LensK2 = 0.08, 0.01
	fwd, err := cfg.ForwardMap(320, 180)
	if err != nil {
		t.Fatal(err)
	}
	hom, err := geometry.PerspectiveView(320, 180, cfg.ViewAngleDeg, 0.92*8.0/cfg.DistanceCM, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	lens := geometry.RadialDistortion{
		Center: geometry.Point{X: 160, Y: 90},
		Norm:   math.Hypot(320, 180) / 2,
		K1:     cfg.LensK1, K2: cfg.LensK2,
	}
	for _, p := range []geometry.Point{{X: 20, Y: 20}, {X: 160, Y: 90}, {X: 300, Y: 170}} {
		q := fwd(p)
		back := lens.Apply(q)
		want := hom.Apply(p)
		if back.Dist(want) > 0.01 {
			t.Fatalf("lens inversion residual %.4f at %v", back.Dist(want), p)
		}
	}
}

func TestChromaNoiseSurvivesMeanFilter(t *testing.T) {
	// The design requirement behind the chroma model: unlike per-pixel
	// noise, the correlated field must remain visible after 3x3 mean
	// filtering (that is how it produces block errors).
	base := raster.New(128, 128)
	base.Fill(colorspace.RGB{R: 128, G: 128, B: 128})

	residual := func(cfg Config) float64 {
		out := MustNew(cfg).Photometric(base)
		var sum float64
		n := 0
		for y := 8; y < 120; y += 4 {
			for x := 8; x < 120; x += 4 {
				p := out.MeanFilterAt(x, y)
				d := float64(p.R) - 128*cfg.ScreenBrightness*0.95 - 12
				sum += d * d
				n++
			}
		}
		return sum / float64(n)
	}

	perPixel := DefaultConfig()
	perPixel.BlurSigma = 0
	perPixel.NoiseStdDev = 20
	chroma := DefaultConfig()
	chroma.BlurSigma = 0
	chroma.NoiseStdDev = 0
	chroma.ChromaNoiseStdDev = 20
	chroma.ChromaNoiseScalePx = 8

	// The luminance gain (~0.57 at mid-gray) eats part of the chroma
	// amplitude, so the margin is moderate rather than dramatic — but it
	// must be clearly above the per-pixel residual, which the mean filter
	// divides by 9.
	if rp, rc := residual(perPixel), residual(chroma); rc < rp*1.3 {
		t.Fatalf("chroma residual %.1f not above per-pixel residual %.1f after mean filter", rc, rp)
	}
}

func TestChromaNoiseSparesBlacks(t *testing.T) {
	// The luminance gain must keep structural black regions nearly clean.
	base := raster.New(64, 64) // all black
	cfg := DefaultConfig()
	cfg.BlurSigma = 0
	cfg.NoiseStdDev = 0
	cfg.Ambient = AmbientDark
	cfg.ChromaNoiseStdDev = 60
	cfg.ChromaNoiseScalePx = 8
	out := MustNew(cfg).Photometric(base)
	for _, p := range []struct{ x, y int }{{10, 10}, {32, 32}, {55, 50}} {
		v := out.At(p.x, p.y)
		if v.R > 40 || v.G > 40 || v.B > 40 {
			t.Fatalf("black pixel lifted to %v by chroma noise", v)
		}
	}
}
