// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by the
// Reed-Solomon codes in QR codes and by the RDCode/RainBar family of
// color-barcode systems. Elements are bytes; addition is XOR and
// multiplication is carried out through exp/log tables built at package
// initialization.
package gf256

// Poly is the primitive polynomial generating the field, expressed with the
// x^8 term included (0x11d = x^8 + x^4 + x^3 + x^2 + 1).
const Poly = 0x11d

// Generator is the primitive element alpha used to build the exp/log tables.
const Generator = 0x02

var (
	expTable [512]byte // alpha^i for i in [0,510], doubled to avoid mod 255
	logTable [256]byte // log_alpha(x) for x in [1,255]
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a + b in GF(2^8). Addition and subtraction coincide.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8); identical to Add because the field has
// characteristic 2.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Exp returns alpha^n for any integer n (negative exponents allowed).
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// Log returns log_alpha(x). It panics if x is zero, which has no logarithm;
// callers must guard the zero case (this is an internal programming-error
// condition, not an input-data condition).
func Log(x byte) int {
	if x == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[x])
}

// Inv returns the multiplicative inverse of x. It panics if x is zero.
func Inv(x byte) byte {
	if x == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[x])]
}

// Div returns a / b. It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Pow returns x^n for n >= 0.
func Pow(x byte, n int) byte {
	if n == 0 {
		return 1
	}
	if x == 0 {
		return 0
	}
	return Exp(Log(x) * n)
}
