package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	cases := []struct{ a, b, want byte }{
		{0, 0, 0},
		{1, 1, 0},
		{0x53, 0xCA, 0x99},
		{0xFF, 0x0F, 0xF0},
	}
	for _, c := range cases {
		if got := Add(c.a, c.b); got != c.want {
			t.Errorf("Add(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
		if got := Sub(c.a, c.b); got != c.want {
			t.Errorf("Sub(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulKnownValues(t *testing.T) {
	// Worked example from the QR-code Reed-Solomon literature (0x11d field).
	cases := []struct{ a, b, want byte }{
		{0, 5, 0},
		{5, 0, 0},
		{1, 0x8e, 0x8e},
		{2, 0x80, 0x1d}, // doubling past bit 8 reduces by the polynomial
		{0x53, 0xCA, 0x8f},
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulMatchesRussianPeasant(t *testing.T) {
	// Verify table-driven multiply against a direct carry-less multiply with
	// modular reduction for every pair (exhaustive: 65536 cases).
	slow := func(a, b byte) byte {
		var r int
		x, y := int(a), int(b)
		for y > 0 {
			if y&1 != 0 {
				r ^= x
			}
			y >>= 1
			x <<= 1
			if x&0x100 != 0 {
				x ^= Poly
			}
		}
		return byte(r)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), slow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	commutative := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("multiplication not commutative: %v", err)
	}
	associative := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(associative, nil); err != nil {
		t.Errorf("multiplication not associative: %v", err)
	}
	distributive := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(distributive, nil); err != nil {
		t.Errorf("multiplication not distributive over addition: %v", err)
	}
}

func TestInverse(t *testing.T) {
	for x := 1; x < 256; x++ {
		inv := Inv(byte(x))
		if got := Mul(byte(x), inv); got != 1 {
			t.Fatalf("Mul(%#x, Inv(%#x)) = %#x, want 1", x, x, got)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestDivZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(1, 0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestDiv(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			q := Div(byte(a), byte(b))
			if got := Mul(q, byte(b)); got != byte(a) {
				t.Fatalf("Div(%#x, %#x)*%#x = %#x, want %#x", a, b, b, got, a)
			}
		}
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for x := 1; x < 256; x++ {
		if got := Exp(Log(byte(x))); got != byte(x) {
			t.Fatalf("Exp(Log(%#x)) = %#x", x, got)
		}
	}
}

func TestExpNegative(t *testing.T) {
	if got, want := Exp(-1), Exp(254); got != want {
		t.Errorf("Exp(-1) = %#x, want %#x", got, want)
	}
	if got, want := Exp(-255), Exp(0); got != want {
		t.Errorf("Exp(-255) = %#x, want %#x", got, want)
	}
}

func TestGeneratorIsPrimitive(t *testing.T) {
	// alpha must generate all 255 nonzero elements before cycling.
	seen := make(map[byte]bool)
	x := byte(1)
	for i := 0; i < 255; i++ {
		if seen[x] {
			t.Fatalf("generator cycle shorter than 255 (repeat at step %d)", i)
		}
		seen[x] = true
		x = Mul(x, Generator)
	}
	if x != 1 {
		t.Fatalf("alpha^255 = %#x, want 1", x)
	}
}

func TestPow(t *testing.T) {
	cases := []struct {
		x    byte
		n    int
		want byte
	}{
		{3, 0, 1},
		{0, 0, 1},
		{0, 5, 0},
		{2, 1, 2},
		{2, 8, 0x1d},
	}
	for _, c := range cases {
		if got := Pow(c.x, c.n); got != c.want {
			t.Errorf("Pow(%#x, %d) = %#x, want %#x", c.x, c.n, got, c.want)
		}
	}
	// Property: Pow(x, a+b) == Pow(x,a)*Pow(x,b).
	prop := func(x byte, a, b uint8) bool {
		return Pow(x, int(a)+int(b)) == Mul(Pow(x, int(a)), Pow(x, int(b)))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("power law violated: %v", err)
	}
}
