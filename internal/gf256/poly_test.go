package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolynomialDegree(t *testing.T) {
	cases := []struct {
		p    Polynomial
		want int
	}{
		{Polynomial{}, -1},
		{Polynomial{0}, -1},
		{Polynomial{0, 0, 0}, -1},
		{Polynomial{1}, 0},
		{Polynomial{1, 0}, 1},
		{Polynomial{0, 1, 0}, 1},
		{Polynomial{5, 0, 0, 3}, 3},
	}
	for _, c := range cases {
		if got := c.p.Degree(); got != c.want {
			t.Errorf("Degree(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestTrim(t *testing.T) {
	if got := (Polynomial{0, 0, 1, 2}).Trim(); !bytes.Equal(got, []byte{1, 2}) {
		t.Errorf("Trim = %v, want [1 2]", got)
	}
	if got := (Polynomial{0, 0}).Trim(); len(got) != 0 {
		t.Errorf("Trim of zero poly = %v, want empty", got)
	}
}

func TestAddPoly(t *testing.T) {
	a := Polynomial{1, 2, 3}
	b := Polynomial{5, 6}
	// (x^2 + 2x + 3) + (5x + 6) = x^2 + 7x + 5
	got := AddPoly(a, b)
	want := Polynomial{1, 7, 5}
	if !bytes.Equal(got, want) {
		t.Errorf("AddPoly = %v, want %v", got, want)
	}
	// Addition is its own inverse in characteristic 2.
	if back := AddPoly(got, b); !bytes.Equal(back, a) {
		t.Errorf("AddPoly not involutive: %v", back)
	}
}

func TestMulPolyIdentityAndZero(t *testing.T) {
	p := Polynomial{3, 1, 4, 1, 5}
	if got := MulPoly(p, Polynomial{1}); !bytes.Equal(got, p) {
		t.Errorf("p*1 = %v, want %v", got, p)
	}
	if got := MulPoly(p, Polynomial{}); len(got) != 0 {
		t.Errorf("p*0 = %v, want empty", got)
	}
}

func TestMulPolyKnown(t *testing.T) {
	// (x + 1)(x + 1) = x^2 + 1 in characteristic 2 (cross terms cancel).
	got := MulPoly(Polynomial{1, 1}, Polynomial{1, 1})
	want := Polynomial{1, 0, 1}
	if !bytes.Equal(got, want) {
		t.Errorf("(x+1)^2 = %v, want %v", got, want)
	}
}

func TestEval(t *testing.T) {
	// p(x) = 2x^2 + 3x + 5 at x=1 is 2^3^5 = 4.
	p := Polynomial{2, 3, 5}
	if got := p.Eval(1); got != 2^3^5 {
		t.Errorf("Eval(1) = %#x, want %#x", got, 2^3^5)
	}
	if got := p.Eval(0); got != 5 {
		t.Errorf("Eval(0) = %#x, want 5", got)
	}
}

func TestEvalRootOfMonic(t *testing.T) {
	for r := 0; r < 256; r++ {
		p := MonicRoot(byte(r))
		if got := p.Eval(byte(r)); got != 0 {
			t.Fatalf("(x - %#x) evaluated at %#x = %#x, want 0", r, r, got)
		}
	}
}

func TestDivModRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := make(Polynomial, 1+rng.Intn(40))
		b := make(Polynomial, 1+rng.Intn(10))
		rng.Read(a)
		rng.Read(b)
		if b.Degree() < 0 {
			b[0] = 1
		}
		quo, rem := DivMod(a, b)
		recon := AddPoly(MulPoly(quo, b.Trim()), rem)
		if !bytes.Equal(recon.Trim(), a.Trim()) {
			t.Fatalf("a != q*b + r for a=%v b=%v (q=%v r=%v recon=%v)", a, b, quo, rem, recon)
		}
		if rem.Degree() >= b.Trim().Degree() {
			t.Fatalf("remainder degree %d >= divisor degree %d", rem.Degree(), b.Trim().Degree())
		}
	}
}

func TestDivModByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DivMod by zero polynomial did not panic")
		}
	}()
	DivMod(Polynomial{1, 2}, Polynomial{0})
}

func TestMulPolyCommutativeProperty(t *testing.T) {
	prop := func(a, b []byte) bool {
		if len(a) > 16 {
			a = a[:16]
		}
		if len(b) > 16 {
			b = b[:16]
		}
		x := MulPoly(Polynomial(a), Polynomial(b)).Trim()
		y := MulPoly(Polynomial(b), Polynomial(a)).Trim()
		return bytes.Equal(x, y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("polynomial multiplication not commutative: %v", err)
	}
}

func TestEvalHomomorphismProperty(t *testing.T) {
	// (p*q)(x) == p(x)*q(x) for all x.
	prop := func(a, b []byte, x byte) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		p, q := Polynomial(a), Polynomial(b)
		return MulPoly(p, q).Eval(x) == Mul(p.Eval(x), q.Eval(x))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("evaluation not multiplicative: %v", err)
	}
}
