package gf256

// Polynomial is a polynomial over GF(2^8) with coefficients stored in
// descending-degree order: p[0] is the coefficient of the highest-degree term.
// This matches the conventional Reed-Solomon literature layout where the
// message is the high-order part of the codeword polynomial.
type Polynomial []byte

// Degree returns the degree of p. The zero polynomial has degree -1.
func (p Polynomial) Degree() int {
	for i := range p {
		if p[i] != 0 {
			return len(p) - 1 - i
		}
	}
	return -1
}

// Trim removes leading zero coefficients so the slice length is Degree()+1.
// The zero polynomial trims to an empty slice.
func (p Polynomial) Trim() Polynomial {
	for i := range p {
		if p[i] != 0 {
			return p[i:]
		}
	}
	return Polynomial{}
}

// AddPoly returns a + b.
func AddPoly(a, b Polynomial) Polynomial {
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make(Polynomial, len(a))
	copy(out, a)
	off := len(a) - len(b)
	for i, c := range b {
		out[off+i] ^= c
	}
	return out
}

// MulPoly returns a * b.
func MulPoly(a, b Polynomial) Polynomial {
	if len(a) == 0 || len(b) == 0 {
		return Polynomial{}
	}
	out := make(Polynomial, len(a)+len(b)-1)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			if cb == 0 {
				continue
			}
			out[i+j] ^= Mul(ca, cb)
		}
	}
	return out
}

// ScalePoly returns p * c.
func ScalePoly(p Polynomial, c byte) Polynomial {
	out := make(Polynomial, len(p))
	for i, v := range p {
		out[i] = Mul(v, c)
	}
	return out
}

// Eval evaluates p at x using Horner's rule.
func (p Polynomial) Eval(x byte) byte {
	var y byte
	for _, c := range p {
		y = Mul(y, x) ^ c
	}
	return y
}

// DivMod divides a by b, returning quotient and remainder. It panics if b is
// the zero polynomial.
func DivMod(a, b Polynomial) (quo, rem Polynomial) {
	b = b.Trim()
	if len(b) == 0 {
		panic("gf256: polynomial division by zero")
	}
	rem = make(Polynomial, len(a))
	copy(rem, a)
	if len(a) < len(b) {
		return Polynomial{}, rem
	}
	quo = make(Polynomial, len(a)-len(b)+1)
	lead := b[0]
	for i := 0; i <= len(rem)-len(b); i++ {
		coef := rem[i]
		if coef == 0 {
			continue
		}
		q := Div(coef, lead)
		quo[i] = q
		for j, c := range b {
			rem[i+j] ^= Mul(q, c)
		}
	}
	return quo, rem[len(rem)-len(b)+1:]
}

// MonicRoot returns the degree-1 monic polynomial (x - r), which in
// characteristic 2 equals (x + r).
func MonicRoot(r byte) Polynomial { return Polynomial{1, r} }
