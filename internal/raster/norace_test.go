//go:build !race

package raster

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
