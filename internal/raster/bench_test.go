package raster

import (
	"testing"

	"rainbar/internal/colorspace"
)

// benchImage builds a deterministic 640x360 frame (the default experiment
// scale) with block-like structure, so the filters see realistic content.
func benchImage() *Image {
	img := New(640, 360)
	palette := []colorspace.RGB{
		colorspace.RGBWhite, colorspace.RGBRed,
		colorspace.RGBGreen, colorspace.RGBBlue, colorspace.RGBBlack,
	}
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			img.Pix[y*img.W+x] = palette[((x/12)+3*(y/12))%len(palette)]
		}
	}
	return img
}

func BenchmarkGaussianBlur(b *testing.B) {
	img := benchImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.GaussianBlur(0.8)
	}
}

func BenchmarkMotionBlurHorizontal(b *testing.B) {
	img := benchImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.MotionBlurHorizontal(5)
	}
}

func BenchmarkSharpness(b *testing.B) {
	img := benchImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.Sharpness()
	}
}

func BenchmarkMeanFilterAt(b *testing.B) {
	img := benchImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.MeanFilterAt(320, 180)
	}
}
