// Package raster provides the pure-Go image substrate RainBar runs on: a
// packed RGB frame buffer with block drawing for the encoder and the
// sampling/filtering primitives the decoder needs (3x3 mean filter,
// Gaussian blur, bilinear sampling, gradient sharpness for blur
// assessment). It replaces the OpenCV-style dependencies the original
// smartphone implementation would have used.
package raster

import (
	"fmt"
	"image"
	"image/png"
	"io"
	"math"
	"os"
	"runtime"
	"sync"

	"rainbar/internal/colorspace"
)

// parallelRows splits the row range [0, h) into contiguous bands, one per
// available CPU, and runs fn on each band concurrently. fn must only read
// shared inputs and write rows inside its own band; because every output
// row is computed independently, results are identical for any worker
// count. With a single CPU (or a single row) it degenerates to a plain
// call, so the serial path pays no synchronization cost.
func parallelRows(h int, fn func(y0, y1 int)) {
	workers := min(runtime.GOMAXPROCS(0), h)
	if workers <= 1 {
		fn(0, h)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		y0, y1 := w*h/workers, (w+1)*h/workers
		if y0 == y1 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(y0, y1)
		}()
	}
	wg.Wait()
}

// ParallelRows exposes the row-band scheduler to sibling packages (the
// channel simulator fans its per-pixel stages out with it). The contract is
// parallelRows': fn must write only rows inside its own band and compute
// each row independently of the others.
func ParallelRows(h int, fn func(y0, y1 int)) { parallelRows(h, fn) }

// RowTask is the typed-job counterpart of the ParallelRows callback: a
// value whose RunRows processes the contiguous row band [y0, y1). Hot-path
// code implements RowTask on a pooled struct instead of capturing state in
// a closure — a closure handed to ParallelRows escapes to the heap on
// every call, even on a single-CPU host where the band runs inline.
type RowTask interface {
	RunRows(y0, y1 int)
}

// bandJob is one row band of a RowTask, sent by value to the persistent
// band workers.
type bandJob struct {
	t      RowTask
	y0, y1 int
	wg     *sync.WaitGroup
}

var (
	bandOnce sync.Once
	bandJobs chan bandJob
	wgPool   = sync.Pool{New: func() any { return new(sync.WaitGroup) }}
)

func startBandWorkers() {
	// One fewer worker than CPUs: the submitting goroutine always runs the
	// first band itself, so n CPUs stay busy with n-1 helpers. At least one
	// helper always starts, so queued bands drain (and wg.Wait returns)
	// even if GOMAXPROCS grows after the pool is up.
	n := runtime.GOMAXPROCS(0) - 1
	if n < 1 {
		n = 1
	}
	bandJobs = make(chan bandJob, 4*(n+1))
	for i := 0; i < n; i++ {
		go func() {
			for j := range bandJobs {
				j.t.RunRows(j.y0, j.y1)
				j.wg.Done()
			}
		}()
	}
}

// ParallelRowTasks splits [0, h) into contiguous bands, one per available
// CPU, and runs t.RunRows on each band concurrently via a persistent
// worker pool — no goroutine spawn and no allocation per call. The data
// contract is ParallelRows': RunRows must write only rows inside its own
// band and compute each row independently, so results are identical for
// any worker count. RunRows must not itself call ParallelRowTasks (the
// shared workers would deadlock). With a single CPU (or a single row) the
// whole range runs inline on the caller's goroutine.
func ParallelRowTasks(h int, t RowTask) {
	workers := min(runtime.GOMAXPROCS(0), h)
	if workers <= 1 {
		if h > 0 {
			t.RunRows(0, h)
		}
		return
	}
	bandOnce.Do(startBandWorkers)
	wg := wgPool.Get().(*sync.WaitGroup)
	for w := 1; w < workers; w++ {
		y0, y1 := w*h/workers, (w+1)*h/workers
		if y0 == y1 {
			continue
		}
		wg.Add(1)
		bandJobs <- bandJob{t: t, y0: y0, y1: y1, wg: wg}
	}
	// Band 0 runs inline, overlapping the helpers.
	t.RunRows(0, h/workers)
	wg.Wait()
	wgPool.Put(wg)
}

// GetFloats returns a pooled scratch slice of length n with undefined
// contents; callers must overwrite every element they read. Pair with
// PutFloats when the scratch is no longer referenced.
func GetFloats(n int) []float64 { return getFloats(n) }

// PutFloats returns a slice obtained from GetFloats to the pool.
func PutFloats(b []float64) { putFloats(b) }

// floatPool recycles the blur scratch planes. A 640x360 capture needs
// ~5.5 MB of float scratch; without the pool that much garbage is created
// per simulated capture. boxPool recycles the *[]float64 headers the pool
// stores, so a get/put round trip is allocation-free after warmup — the
// naive floatPool.Put(&b) would heap-allocate a fresh header every call.
var (
	floatPool sync.Pool
	boxPool   sync.Pool
)

func getFloats(n int) []float64 {
	if box, ok := floatPool.Get().(*[]float64); ok {
		s := *box
		*box = nil
		boxPool.Put(box)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

func putFloats(b []float64) {
	box, ok := boxPool.Get().(*[]float64)
	if !ok {
		box = new([]float64)
	}
	*box = b
	floatPool.Put(box)
}

// imagePool recycles pixel buffers between simulated captures. Buffers
// enter the pool via Recycle and are reused by New / newUncleared when
// large enough.
var imagePool sync.Pool

// newUncleared returns a w x h image whose pixels are NOT initialized.
// Only producers that overwrite every pixel (blur passes, rotation) may
// use it; everything else goes through New.
func newUncleared(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("raster: invalid dimensions %dx%d", w, h))
	}
	n := w * h
	if v, ok := imagePool.Get().(*Image); ok && cap(v.Pix) >= n {
		v.W, v.H, v.Pix = w, h, v.Pix[:n]
		return v
	}
	return &Image{W: w, H: h, Pix: make([]colorspace.RGB, n)}
}

// Recycle returns img's pixel storage to the allocation pool; the caller
// must not touch img afterwards. Recycling is optional — images are
// ordinary garbage-collected values — but the capture pipeline recycles
// its per-frame intermediates to keep allocation churn off the hot path.
func Recycle(img *Image) {
	if img == nil || img.Pix == nil {
		return
	}
	imagePool.Put(img)
}

// Image is a W x H RGB frame buffer with rows stored contiguously.
// The zero value is an empty image; use New to allocate.
type Image struct {
	W, H int
	Pix  []colorspace.RGB // len == W*H, row-major
}

// New allocates a black W x H image. It panics on non-positive dimensions
// (a programming error, not a data error).
func New(w, h int) *Image {
	img := newUncleared(w, h)
	clear(img.Pix)
	return img
}

// Clone returns a deep copy of img.
func (img *Image) Clone() *Image {
	if img.W <= 0 || img.H <= 0 {
		return &Image{W: img.W, H: img.H, Pix: make([]colorspace.RGB, len(img.Pix))}
	}
	out := newUncleared(img.W, img.H)
	copy(out.Pix, img.Pix)
	return out
}

// In reports whether (x, y) lies inside the image.
func (img *Image) In(x, y int) bool {
	return x >= 0 && x < img.W && y >= 0 && y < img.H
}

// At returns the pixel at (x, y). Out-of-bounds reads return black, which
// models the dark surround of a captured screen.
func (img *Image) At(x, y int) colorspace.RGB {
	if !img.In(x, y) {
		return colorspace.RGBBlack
	}
	return img.Pix[y*img.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (img *Image) Set(x, y int, c colorspace.RGB) {
	if img.In(x, y) {
		img.Pix[y*img.W+x] = c
	}
}

// Fill paints the whole image with c.
func (img *Image) Fill(c colorspace.RGB) {
	for i := range img.Pix {
		img.Pix[i] = c
	}
}

// FillRect paints the axis-aligned rectangle [x0,x0+w) x [y0,y0+h),
// clipped to the image.
func (img *Image) FillRect(x0, y0, w, h int, c colorspace.RGB) {
	for y := max(y0, 0); y < min(y0+h, img.H); y++ {
		row := img.Pix[y*img.W : (y+1)*img.W]
		for x := max(x0, 0); x < min(x0+w, img.W); x++ {
			row[x] = c
		}
	}
}

// Rotate180 returns a copy rotated by half a turn — the orientation a
// captured screen has when one phone is held upside down.
func (img *Image) Rotate180() *Image {
	out := newUncleared(img.W, img.H)
	n := len(img.Pix)
	for i, p := range img.Pix {
		out.Pix[n-1-i] = p
	}
	return out
}

// Bilinear samples the image at a fractional position with bilinear
// interpolation. Samples outside the image blend toward black.
func (img *Image) Bilinear(x, y float64) colorspace.RGB {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := x - float64(x0)
	fy := y - float64(y0)

	var c00, c10, c01, c11 colorspace.RGB
	if x0 >= 0 && y0 >= 0 && x0+1 < img.W && y0+1 < img.H {
		// Interior: both sample rows are in bounds, skip the four
		// per-corner bounds checks of the At path.
		i := y0*img.W + x0
		c00, c10 = img.Pix[i], img.Pix[i+1]
		c01, c11 = img.Pix[i+img.W], img.Pix[i+img.W+1]
	} else {
		c00 = img.At(x0, y0)
		c10 = img.At(x0+1, y0)
		c01 = img.At(x0, y0+1)
		c11 = img.At(x0+1, y0+1)
	}

	lerp2 := func(a, b, c, d uint8) uint8 {
		top := float64(a)*(1-fx) + float64(b)*fx
		bot := float64(c)*(1-fx) + float64(d)*fx
		v := top*(1-fy) + bot*fy
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return uint8(v + 0.5)
	}
	return colorspace.RGB{
		R: lerp2(c00.R, c10.R, c01.R, c11.R),
		G: lerp2(c00.G, c10.G, c01.G, c11.G),
		B: lerp2(c00.B, c10.B, c01.B, c11.B),
	}
}

// MeanFilterAt returns the 3x3 mean-filtered value at (x, y) — the block
// denoising step of §III-F. Border pixels average their in-bounds
// neighborhood only.
func (img *Image) MeanFilterAt(x, y int) colorspace.RGB {
	var r, g, b, n int
	if x >= 1 && y >= 1 && x < img.W-1 && y < img.H-1 {
		// Interior: all nine neighbors are in bounds.
		for dy := -1; dy <= 1; dy++ {
			row := img.Pix[(y+dy)*img.W+x-1 : (y+dy)*img.W+x+2]
			for _, p := range row {
				r += int(p.R)
				g += int(p.G)
				b += int(p.B)
			}
		}
		n = 9
	} else {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if !img.In(x+dx, y+dy) {
					continue
				}
				p := img.Pix[(y+dy)*img.W+(x+dx)]
				r += int(p.R)
				g += int(p.G)
				b += int(p.B)
				n++
			}
		}
		if n == 0 {
			return colorspace.RGBBlack
		}
	}
	return colorspace.RGB{
		R: uint8((r + n/2) / n),
		G: uint8((g + n/2) / n),
		B: uint8((b + n/2) / n),
	}
}

// GaussianBlur returns a blurred copy of img using a separable Gaussian
// kernel with the given standard deviation (in pixels). sigma <= 0 returns
// an unmodified clone.
func (img *Image) GaussianBlur(sigma float64) *Image {
	if sigma <= 0 {
		return img.Clone()
	}
	kernel := gaussianKernel(sigma)
	half := len(kernel) / 2

	// Interior pixels see the whole kernel, so their weight sum is the
	// same everywhere; accumulate it once in kernel-index order — the same
	// order the per-pixel loop uses — to keep the division bit-identical
	// to summing it per pixel.
	var ksum float64
	for _, kv := range kernel {
		ksum += kv
	}

	// Horizontal pass into pooled float planes, then vertical pass. Both
	// passes run row-parallel: every output pixel is computed independently
	// and in the same operation order as the serial loop, so the result
	// does not depend on the worker count.
	w, h := img.W, img.H
	n := w * h
	scratch := getFloats(3 * n)
	tmpR := scratch[0*n : 1*n]
	tmpG := scratch[1*n : 2*n]
	tmpB := scratch[2*n : 3*n]
	// Columns [lo, hi) have the whole kernel in bounds horizontally.
	lo := min(half, w)
	hi := max(w-half, lo)
	parallelRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			base := y * w
			row := img.Pix[base : base+w : base+w]
			edge := func(x int) {
				var r, g, b, wsum float64
				for k, kv := range kernel {
					sx := x + k - half
					if sx < 0 || sx >= w {
						continue
					}
					p := row[sx]
					r += kv * float64(p.R)
					g += kv * float64(p.G)
					b += kv * float64(p.B)
					wsum += kv
				}
				tmpR[base+x] = r / wsum
				tmpG[base+x] = g / wsum
				tmpB[base+x] = b / wsum
			}
			for x := 0; x < lo; x++ {
				edge(x)
			}
			for x := hi; x < w; x++ {
				edge(x)
			}
			for x := lo; x < hi; x++ {
				var r, g, b float64
				for k, kv := range kernel {
					p := row[x+k-half]
					r += kv * float64(p.R)
					g += kv * float64(p.G)
					b += kv * float64(p.B)
				}
				tmpR[base+x] = r / ksum
				tmpG[base+x] = g / ksum
				tmpB[base+x] = b / ksum
			}
		}
	})
	out := newUncleared(w, h)
	parallelRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			base := y * w
			if y >= half && y < h-half {
				// Interior rows: the whole kernel is in bounds vertically.
				for x := 0; x < w; x++ {
					var r, g, b float64
					for k, kv := range kernel {
						i := (y+k-half)*w + x
						r += kv * tmpR[i]
						g += kv * tmpG[i]
						b += kv * tmpB[i]
					}
					out.Pix[base+x] = colorspace.RGB{
						R: clampRound(r / ksum),
						G: clampRound(g / ksum),
						B: clampRound(b / ksum),
					}
				}
				continue
			}
			for x := 0; x < w; x++ {
				var r, g, b, wsum float64
				for k, kv := range kernel {
					sy := y + k - half
					if sy < 0 || sy >= h {
						continue
					}
					i := sy*w + x
					r += kv * tmpR[i]
					g += kv * tmpG[i]
					b += kv * tmpB[i]
					wsum += kv
				}
				out.Pix[base+x] = colorspace.RGB{
					R: clampRound(r / wsum),
					G: clampRound(g / wsum),
					B: clampRound(b / wsum),
				}
			}
		}
	})
	putFloats(scratch)
	return out
}

// MotionBlurHorizontal returns a copy blurred by a horizontal box kernel of
// the given length (in pixels), modeling handshake during exposure.
// Lengths <= 1 return an unmodified clone.
func (img *Image) MotionBlurHorizontal(length int) *Image {
	if length <= 1 {
		return img.Clone()
	}
	out := newUncleared(img.W, img.H)
	half := length / 2
	w := img.W
	// Sliding-window box sums make each row O(W) instead of O(W·length);
	// integer arithmetic keeps the result identical to the naive kernel.
	parallelRows(img.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			row := img.Pix[y*w : (y+1)*w : (y+1)*w]
			orow := out.Pix[y*w : (y+1)*w : (y+1)*w]
			var r, g, b, n int
			for sx := 0; sx <= half && sx < w; sx++ {
				p := row[sx]
				r += int(p.R)
				g += int(p.G)
				b += int(p.B)
				n++
			}
			for x := 0; x < w; x++ {
				orow[x] = colorspace.RGB{
					R: uint8(r / n), G: uint8(g / n), B: uint8(b / n),
				}
				if sx := x - half; sx >= 0 {
					p := row[sx]
					r -= int(p.R)
					g -= int(p.G)
					b -= int(p.B)
					n--
				}
				if sx := x + half + 1; sx < w {
					p := row[sx]
					r += int(p.R)
					g += int(p.G)
					b += int(p.B)
					n++
				}
			}
		}
	})
	return out
}

func gaussianKernel(sigma float64) []float64 {
	radius := int(3*sigma + 0.5)
	if radius < 1 {
		radius = 1
	}
	kernel := make([]float64, 2*radius+1)
	var sum float64
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= sum
	}
	return kernel
}

func clampRound(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Sharpness returns a scalar focus metric: the mean squared horizontal and
// vertical luminance gradient. COBRA's blur assessment (§III-D) selects,
// among captures of the same frame, the one with the highest sharpness.
//
// Rows are scored in parallel; each row accumulates its own partial sum
// and the partials are reduced in row order, so the (fixed) floating-point
// association is independent of the worker count. The task struct and all
// scratch are pooled: steady-state calls do not allocate.
func (img *Image) Sharpness() float64 {
	if img.W < 2 || img.H < 2 {
		return 0
	}
	t, _ := sharpPool.Get().(*sharpTask)
	if t == nil {
		t = new(sharpTask)
	}
	t.img = img
	t.rowSums = getFloats(img.H - 1)
	ParallelRowTasks(img.H-1, t)
	var sum float64
	for _, s := range t.rowSums {
		sum += s
	}
	putFloats(t.rowSums)
	t.img, t.rowSums = nil, nil
	sharpPool.Put(t)
	return sum / float64((img.W-1)*(img.H-1))
}

var sharpPool sync.Pool

// sharpTask scores rows [y0, y1) of img into rowSums. Each band keeps two
// pooled luma rows and rolls them downward, so every pixel's luma is
// evaluated twice per call (once as the "current" row, once as the row
// below) instead of three times in the naive form — with the identical
// per-row accumulation order, so the result is bit-equal to the original
// serial loop.
type sharpTask struct {
	img     *Image
	rowSums []float64
}

func (t *sharpTask) RunRows(y0, y1 int) {
	img := t.img
	w := img.W
	scratch := getFloats(2 * w)
	cur, next := scratch[:w], scratch[w:]
	lumaRow(img.Pix[y0*w:(y0+1)*w:(y0+1)*w], cur)
	for y := y0; y < y1; y++ {
		lumaRow(img.Pix[(y+1)*w:(y+2)*w:(y+2)*w], next)
		var sum float64
		l := cur[0]
		for x := 0; x < w-1; x++ {
			lr := cur[x+1]
			gx := lr - l
			gy := next[x] - l
			sum += gx*gx + gy*gy
			l = lr
		}
		t.rowSums[y] = sum
		cur, next = next, cur
	}
	putFloats(scratch)
}

// lumaRow writes luma(row[x]) into dst[x] using the per-channel tables.
func lumaRow(row []colorspace.RGB, dst []float64) {
	for x, p := range row {
		dst[x] = (lumaR[p.R] + lumaG[p.G]) + lumaB[p.B]
	}
}

// lumaR/lumaG/lumaB cache the per-channel Rec. 601 terms. The sum
// (lumaR[r]+lumaG[g])+lumaB[b] reproduces the left-associated expression
// 0.299*r + 0.587*g + 0.114*b bit-for-bit.
var lumaR, lumaG, lumaB [256]float64

func init() {
	for k := 0; k < 256; k++ {
		lumaR[k] = 0.299 * float64(k)
		lumaG[k] = 0.587 * float64(k)
		lumaB[k] = 0.114 * float64(k)
	}
}

// luma is the Rec. 601 luminance of a pixel, the gradient basis for
// Sharpness.
func luma(p colorspace.RGB) float64 {
	return (lumaR[p.R] + lumaG[p.G]) + lumaB[p.B]
}

// ToStdImage converts to an image.RGBA from the standard library.
func (img *Image) ToStdImage() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, img.W, img.H))
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			p := img.Pix[y*img.W+x]
			i := out.PixOffset(x, y)
			out.Pix[i+0] = p.R
			out.Pix[i+1] = p.G
			out.Pix[i+2] = p.B
			out.Pix[i+3] = 0xFF
		}
	}
	return out
}

// FromStdImage converts any standard-library image to an Image.
func FromStdImage(src image.Image) *Image {
	b := src.Bounds()
	out := New(b.Dx(), b.Dy())
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			r, g, bb, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.Pix[y*out.W+x] = colorspace.RGB{
				R: uint8(r >> 8), G: uint8(g >> 8), B: uint8(bb >> 8),
			}
		}
	}
	return out
}

// EncodePNG writes the image as PNG.
func (img *Image) EncodePNG(w io.Writer) error {
	return png.Encode(w, img.ToStdImage())
}

// WritePNGFile writes the image to a PNG file at path.
func (img *Image) WritePNGFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write png: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("write png: %w", cerr)
		}
	}()
	return img.EncodePNG(f)
}

// ReadPNGFile loads a PNG file into an Image.
func ReadPNGFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("read png: %w", err)
	}
	defer f.Close()
	src, err := png.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("read png: %w", err)
	}
	return FromStdImage(src), nil
}
