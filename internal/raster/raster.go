// Package raster provides the pure-Go image substrate RainBar runs on: a
// packed RGB frame buffer with block drawing for the encoder and the
// sampling/filtering primitives the decoder needs (3x3 mean filter,
// Gaussian blur, bilinear sampling, gradient sharpness for blur
// assessment). It replaces the OpenCV-style dependencies the original
// smartphone implementation would have used.
package raster

import (
	"fmt"
	"image"
	"image/png"
	"io"
	"math"
	"os"

	"rainbar/internal/colorspace"
)

// Image is a W x H RGB frame buffer with rows stored contiguously.
// The zero value is an empty image; use New to allocate.
type Image struct {
	W, H int
	Pix  []colorspace.RGB // len == W*H, row-major
}

// New allocates a black W x H image. It panics on non-positive dimensions
// (a programming error, not a data error).
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("raster: invalid dimensions %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]colorspace.RGB, w*h)}
}

// Clone returns a deep copy of img.
func (img *Image) Clone() *Image {
	out := &Image{W: img.W, H: img.H, Pix: make([]colorspace.RGB, len(img.Pix))}
	copy(out.Pix, img.Pix)
	return out
}

// In reports whether (x, y) lies inside the image.
func (img *Image) In(x, y int) bool {
	return x >= 0 && x < img.W && y >= 0 && y < img.H
}

// At returns the pixel at (x, y). Out-of-bounds reads return black, which
// models the dark surround of a captured screen.
func (img *Image) At(x, y int) colorspace.RGB {
	if !img.In(x, y) {
		return colorspace.RGBBlack
	}
	return img.Pix[y*img.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (img *Image) Set(x, y int, c colorspace.RGB) {
	if img.In(x, y) {
		img.Pix[y*img.W+x] = c
	}
}

// Fill paints the whole image with c.
func (img *Image) Fill(c colorspace.RGB) {
	for i := range img.Pix {
		img.Pix[i] = c
	}
}

// FillRect paints the axis-aligned rectangle [x0,x0+w) x [y0,y0+h),
// clipped to the image.
func (img *Image) FillRect(x0, y0, w, h int, c colorspace.RGB) {
	for y := max(y0, 0); y < min(y0+h, img.H); y++ {
		row := img.Pix[y*img.W : (y+1)*img.W]
		for x := max(x0, 0); x < min(x0+w, img.W); x++ {
			row[x] = c
		}
	}
}

// Rotate180 returns a copy rotated by half a turn — the orientation a
// captured screen has when one phone is held upside down.
func (img *Image) Rotate180() *Image {
	out := New(img.W, img.H)
	n := len(img.Pix)
	for i, p := range img.Pix {
		out.Pix[n-1-i] = p
	}
	return out
}

// Bilinear samples the image at a fractional position with bilinear
// interpolation. Samples outside the image blend toward black.
func (img *Image) Bilinear(x, y float64) colorspace.RGB {
	x0 := int(floor(x))
	y0 := int(floor(y))
	fx := x - float64(x0)
	fy := y - float64(y0)

	c00 := img.At(x0, y0)
	c10 := img.At(x0+1, y0)
	c01 := img.At(x0, y0+1)
	c11 := img.At(x0+1, y0+1)

	lerp2 := func(a, b, c, d uint8) uint8 {
		top := float64(a)*(1-fx) + float64(b)*fx
		bot := float64(c)*(1-fx) + float64(d)*fx
		v := top*(1-fy) + bot*fy
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return uint8(v + 0.5)
	}
	return colorspace.RGB{
		R: lerp2(c00.R, c10.R, c01.R, c11.R),
		G: lerp2(c00.G, c10.G, c01.G, c11.G),
		B: lerp2(c00.B, c10.B, c01.B, c11.B),
	}
}

func floor(v float64) float64 {
	f := float64(int(v))
	if v < f {
		f--
	}
	return f
}

// MeanFilterAt returns the 3x3 mean-filtered value at (x, y) — the block
// denoising step of §III-F. Border pixels average their in-bounds
// neighborhood only.
func (img *Image) MeanFilterAt(x, y int) colorspace.RGB {
	var r, g, b, n int
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if !img.In(x+dx, y+dy) {
				continue
			}
			p := img.Pix[(y+dy)*img.W+(x+dx)]
			r += int(p.R)
			g += int(p.G)
			b += int(p.B)
			n++
		}
	}
	if n == 0 {
		return colorspace.RGBBlack
	}
	return colorspace.RGB{
		R: uint8((r + n/2) / n),
		G: uint8((g + n/2) / n),
		B: uint8((b + n/2) / n),
	}
}

// GaussianBlur returns a blurred copy of img using a separable Gaussian
// kernel with the given standard deviation (in pixels). sigma <= 0 returns
// an unmodified clone.
func (img *Image) GaussianBlur(sigma float64) *Image {
	if sigma <= 0 {
		return img.Clone()
	}
	kernel := gaussianKernel(sigma)
	half := len(kernel) / 2

	// Horizontal pass into float buffers, then vertical pass.
	w, h := img.W, img.H
	tmpR := make([]float64, w*h)
	tmpG := make([]float64, w*h)
	tmpB := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, g, b, wsum float64
			for k, kv := range kernel {
				sx := x + k - half
				if sx < 0 || sx >= w {
					continue
				}
				p := img.Pix[y*w+sx]
				r += kv * float64(p.R)
				g += kv * float64(p.G)
				b += kv * float64(p.B)
				wsum += kv
			}
			i := y*w + x
			tmpR[i] = r / wsum
			tmpG[i] = g / wsum
			tmpB[i] = b / wsum
		}
	}
	out := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, g, b, wsum float64
			for k, kv := range kernel {
				sy := y + k - half
				if sy < 0 || sy >= h {
					continue
				}
				i := sy*w + x
				r += kv * tmpR[i]
				g += kv * tmpG[i]
				b += kv * tmpB[i]
				wsum += kv
			}
			out.Pix[y*w+x] = colorspace.RGB{
				R: clampRound(r / wsum),
				G: clampRound(g / wsum),
				B: clampRound(b / wsum),
			}
		}
	}
	return out
}

// MotionBlurHorizontal returns a copy blurred by a horizontal box kernel of
// the given length (in pixels), modeling handshake during exposure.
// Lengths <= 1 return an unmodified clone.
func (img *Image) MotionBlurHorizontal(length int) *Image {
	if length <= 1 {
		return img.Clone()
	}
	out := New(img.W, img.H)
	half := length / 2
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			var r, g, b, n int
			for k := -half; k <= half; k++ {
				sx := x + k
				if sx < 0 || sx >= img.W {
					continue
				}
				p := img.Pix[y*img.W+sx]
				r += int(p.R)
				g += int(p.G)
				b += int(p.B)
				n++
			}
			out.Pix[y*img.W+x] = colorspace.RGB{
				R: uint8(r / n), G: uint8(g / n), B: uint8(b / n),
			}
		}
	}
	return out
}

func gaussianKernel(sigma float64) []float64 {
	radius := int(3*sigma + 0.5)
	if radius < 1 {
		radius = 1
	}
	kernel := make([]float64, 2*radius+1)
	var sum float64
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= sum
	}
	return kernel
}

func clampRound(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Sharpness returns a scalar focus metric: the mean squared horizontal and
// vertical luminance gradient. COBRA's blur assessment (§III-D) selects,
// among captures of the same frame, the one with the highest sharpness.
func (img *Image) Sharpness() float64 {
	if img.W < 2 || img.H < 2 {
		return 0
	}
	luma := func(p colorspace.RGB) float64 {
		return 0.299*float64(p.R) + 0.587*float64(p.G) + 0.114*float64(p.B)
	}
	var sum float64
	var n int
	for y := 0; y < img.H-1; y++ {
		for x := 0; x < img.W-1; x++ {
			l := luma(img.Pix[y*img.W+x])
			gx := luma(img.Pix[y*img.W+x+1]) - l
			gy := luma(img.Pix[(y+1)*img.W+x]) - l
			sum += gx*gx + gy*gy
			n++
		}
	}
	return sum / float64(n)
}

// ToStdImage converts to an image.RGBA from the standard library.
func (img *Image) ToStdImage() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, img.W, img.H))
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			p := img.Pix[y*img.W+x]
			i := out.PixOffset(x, y)
			out.Pix[i+0] = p.R
			out.Pix[i+1] = p.G
			out.Pix[i+2] = p.B
			out.Pix[i+3] = 0xFF
		}
	}
	return out
}

// FromStdImage converts any standard-library image to an Image.
func FromStdImage(src image.Image) *Image {
	b := src.Bounds()
	out := New(b.Dx(), b.Dy())
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			r, g, bb, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.Pix[y*out.W+x] = colorspace.RGB{
				R: uint8(r >> 8), G: uint8(g >> 8), B: uint8(bb >> 8),
			}
		}
	}
	return out
}

// EncodePNG writes the image as PNG.
func (img *Image) EncodePNG(w io.Writer) error {
	return png.Encode(w, img.ToStdImage())
}

// WritePNGFile writes the image to a PNG file at path.
func (img *Image) WritePNGFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write png: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("write png: %w", cerr)
		}
	}()
	return img.EncodePNG(f)
}

// ReadPNGFile loads a PNG file into an Image.
func ReadPNGFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("read png: %w", err)
	}
	defer f.Close()
	src, err := png.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("read png: %w", err)
	}
	return FromStdImage(src), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
