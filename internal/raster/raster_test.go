package raster

import (
	"bytes"
	"math"
	"path/filepath"
	"runtime/debug"
	"testing"
	"testing/quick"

	"rainbar/internal/colorspace"
)

func TestNewPanicsOnInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 5) did not panic")
		}
	}()
	New(0, 5)
}

func TestAtSetAndBounds(t *testing.T) {
	img := New(4, 3)
	red := colorspace.RGBRed
	img.Set(2, 1, red)
	if got := img.At(2, 1); got != red {
		t.Errorf("At(2,1) = %v, want red", got)
	}
	// Out-of-bounds reads are black, writes are no-ops.
	if got := img.At(-1, 0); got != colorspace.RGBBlack {
		t.Errorf("At(-1,0) = %v, want black", got)
	}
	if got := img.At(4, 0); got != colorspace.RGBBlack {
		t.Errorf("At(4,0) = %v, want black", got)
	}
	img.Set(100, 100, red) // must not panic
}

func TestCloneIsDeep(t *testing.T) {
	img := New(2, 2)
	img.Set(0, 0, colorspace.RGBGreen)
	cl := img.Clone()
	cl.Set(0, 0, colorspace.RGBBlue)
	if img.At(0, 0) != colorspace.RGBGreen {
		t.Fatal("Clone shares pixel storage with original")
	}
}

func TestFillRectClipping(t *testing.T) {
	img := New(4, 4)
	img.FillRect(-2, -2, 4, 4, colorspace.RGBWhite)
	if img.At(0, 0) != colorspace.RGBWhite || img.At(1, 1) != colorspace.RGBWhite {
		t.Error("clipped fill missed in-bounds corner")
	}
	if img.At(2, 2) != colorspace.RGBBlack {
		t.Error("fill exceeded its rectangle")
	}
}

func TestBilinearAtIntegerCoordinates(t *testing.T) {
	img := New(3, 3)
	img.Set(1, 1, colorspace.RGB{R: 100, G: 150, B: 200})
	if got := img.Bilinear(1, 1); got != (colorspace.RGB{R: 100, G: 150, B: 200}) {
		t.Errorf("Bilinear(1,1) = %v", got)
	}
}

func TestBilinearInterpolatesMidpoint(t *testing.T) {
	img := New(2, 1)
	img.Set(0, 0, colorspace.RGB{R: 0, G: 0, B: 0})
	img.Set(1, 0, colorspace.RGB{R: 200, G: 100, B: 50})
	got := img.Bilinear(0.5, 0)
	want := colorspace.RGB{R: 100, G: 50, B: 25}
	if got != want {
		t.Errorf("Bilinear(0.5,0) = %v, want %v", got, want)
	}
}

func TestBilinearNegativeCoordinates(t *testing.T) {
	// Regression guard for the int-truncation-toward-zero bug: floor(-0.5)
	// must be -1, so a sample at -0.5 blends halfway to black.
	img := New(2, 2)
	img.Fill(colorspace.RGB{R: 200, G: 200, B: 200})
	got := img.Bilinear(-0.5, 0)
	if got.R != 100 {
		t.Errorf("Bilinear(-0.5,0).R = %d, want 100", got.R)
	}
}

func TestMeanFilterUniform(t *testing.T) {
	img := New(5, 5)
	img.Fill(colorspace.RGB{R: 60, G: 70, B: 80})
	if got := img.MeanFilterAt(2, 2); got != (colorspace.RGB{R: 60, G: 70, B: 80}) {
		t.Errorf("mean of uniform image = %v", got)
	}
	// Corner: only 4 neighbors in bounds, still the same mean.
	if got := img.MeanFilterAt(0, 0); got != (colorspace.RGB{R: 60, G: 70, B: 80}) {
		t.Errorf("corner mean = %v", got)
	}
}

func TestMeanFilterSuppressesSaltNoise(t *testing.T) {
	img := New(3, 3)
	img.Fill(colorspace.RGB{R: 0, G: 0, B: 0})
	img.Set(1, 1, colorspace.RGB{R: 255, G: 255, B: 255}) // single hot pixel
	got := img.MeanFilterAt(1, 1)
	if got.R != 255/9+1 && got.R != 255/9 { // ~28, rounding either way
		t.Errorf("mean filter at hot pixel = %v, want ~28", got)
	}
}

func TestGaussianBlurPreservesUniform(t *testing.T) {
	img := New(8, 8)
	img.Fill(colorspace.RGB{R: 90, G: 90, B: 90})
	out := img.GaussianBlur(1.5)
	for i, p := range out.Pix {
		if p.R < 89 || p.R > 91 {
			t.Fatalf("pixel %d = %v after blur of uniform image", i, p)
		}
	}
}

func TestGaussianBlurZeroSigmaIsIdentity(t *testing.T) {
	img := New(4, 4)
	img.Set(1, 2, colorspace.RGBRed)
	out := img.GaussianBlur(0)
	if !bytes.Equal(flatten(img), flatten(out)) {
		t.Fatal("sigma=0 blur changed pixels")
	}
}

func TestGaussianBlurSpreadsEdge(t *testing.T) {
	img := New(20, 1)
	for x := 10; x < 20; x++ {
		img.Set(x, 0, colorspace.RGBWhite)
	}
	out := img.GaussianBlur(2)
	// The step at x=10 must become a monotone ramp.
	prev := -1
	for x := 5; x < 15; x++ {
		v := int(out.At(x, 0).R)
		if v < prev {
			t.Fatalf("blurred edge not monotone at x=%d: %d < %d", x, v, prev)
		}
		prev = v
	}
	if out.At(9, 0).R == 0 || out.At(10, 0).R == 255 {
		t.Error("blur did not spread the edge")
	}
}

func TestMotionBlurHorizontal(t *testing.T) {
	img := New(9, 1)
	img.Set(4, 0, colorspace.RGB{R: 90, G: 90, B: 90})
	out := img.MotionBlurHorizontal(3)
	if out.At(4, 0).R != 30 {
		t.Errorf("center = %d, want 30", out.At(4, 0).R)
	}
	if out.At(3, 0).R != 30 || out.At(5, 0).R != 30 {
		t.Error("motion blur did not spread to neighbors")
	}
	if out.At(2, 0).R != 0 {
		t.Error("motion blur spread too far")
	}
}

func TestSharpnessOrdersBlurLevels(t *testing.T) {
	// A checkerboard is the sharpest thing we can draw; blurring must
	// strictly reduce the sharpness metric.
	img := New(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if (x/4+y/4)%2 == 0 {
				img.Set(x, y, colorspace.RGBWhite)
			}
		}
	}
	s0 := img.Sharpness()
	s1 := img.GaussianBlur(1).Sharpness()
	s2 := img.GaussianBlur(3).Sharpness()
	if !(s0 > s1 && s1 > s2) {
		t.Fatalf("sharpness not monotone in blur: %v, %v, %v", s0, s1, s2)
	}
}

func TestSharpnessDegenerate(t *testing.T) {
	if got := New(1, 1).Sharpness(); got != 0 {
		t.Errorf("1x1 sharpness = %v, want 0", got)
	}
}

// sharpnessRef is the pre-table Sharpness implementation, kept verbatim as
// the executable specification: the pooled, luma-table path must reproduce
// its result bit-for-bit (sharpness feeds vote weights, so a one-ulp drift
// would change experiment tables).
func sharpnessRef(img *Image) float64 {
	if img.W < 2 || img.H < 2 {
		return 0
	}
	w := img.W
	lumaF := func(p colorspace.RGB) float64 {
		return 0.299*float64(p.R) + 0.587*float64(p.G) + 0.114*float64(p.B)
	}
	rowSums := make([]float64, img.H-1)
	for y := 0; y < img.H-1; y++ {
		row := img.Pix[y*w : (y+1)*w]
		below := img.Pix[(y+1)*w : (y+2)*w]
		l := lumaF(row[0])
		var sum float64
		for x := 0; x < w-1; x++ {
			lr := lumaF(row[x+1])
			gx := lr - l
			gy := lumaF(below[x]) - l
			sum += gx*gx + gy*gy
			l = lr
		}
		rowSums[y] = sum
	}
	var sum float64
	for _, s := range rowSums {
		sum += s
	}
	return sum / float64((img.W-1)*(img.H-1))
}

func TestSharpnessMatchesReference(t *testing.T) {
	sizes := [][2]int{{2, 2}, {3, 7}, {17, 5}, {64, 48}, {640, 360}}
	for _, sz := range sizes {
		img := New(sz[0], sz[1])
		seed := uint32(12345)
		for i := range img.Pix {
			seed = seed*1664525 + 1013904223
			img.Pix[i] = colorspace.RGB{
				R: uint8(seed >> 24), G: uint8(seed >> 16), B: uint8(seed >> 8),
			}
		}
		if got, want := img.Sharpness(), sharpnessRef(img); got != want {
			t.Fatalf("%dx%d: Sharpness() = %v, reference = %v", sz[0], sz[1], got, want)
		}
	}
}

func TestSharpnessAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache at random under -race; the allocation contract is measured without it")
	}
	img := benchImage()
	img.Sharpness() // warm the pools
	// GC off: a collection mid-measurement would drain the sync.Pools and
	// the refill would count as an allocation of Sharpness's own.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if n := testing.AllocsPerRun(50, func() { img.Sharpness() }); n > 0 {
		t.Fatalf("Sharpness allocates %v per call after warmup", n)
	}
}

// rowFillTask writes the band's row index into every cell of its rows.
type rowFillTask struct {
	w   int
	out []int
}

func (t *rowFillTask) RunRows(y0, y1 int) {
	for y := y0; y < y1; y++ {
		for x := 0; x < t.w; x++ {
			t.out[y*t.w+x] = y
		}
	}
}

func TestParallelRowTasksCoversAllRows(t *testing.T) {
	for _, h := range []int{0, 1, 2, 7, 64, 361} {
		task := &rowFillTask{w: 5, out: make([]int, 5*h)}
		for i := range task.out {
			task.out[i] = -1
		}
		ParallelRowTasks(h, task)
		for i, v := range task.out {
			if v != i/5 {
				t.Fatalf("h=%d: cell %d = %d, want %d", h, i, v, i/5)
			}
		}
	}
}

func TestPNGRoundTrip(t *testing.T) {
	img := New(7, 5)
	img.Set(3, 2, colorspace.RGBGreen)
	img.Set(6, 4, colorspace.RGB{R: 1, G: 2, B: 3})
	path := filepath.Join(t.TempDir(), "frame.png")
	if err := img.WritePNGFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPNGFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != img.W || back.H != img.H {
		t.Fatalf("dimensions %dx%d, want %dx%d", back.W, back.H, img.W, img.H)
	}
	if !bytes.Equal(flatten(img), flatten(back)) {
		t.Fatal("PNG round trip altered pixels")
	}
}

func TestReadPNGMissingFile(t *testing.T) {
	if _, err := ReadPNGFile(filepath.Join(t.TempDir(), "nope.png")); err == nil {
		t.Fatal("reading missing file succeeded")
	}
}

func TestBilinearWithinPixelRangeProperty(t *testing.T) {
	img := New(8, 8)
	for i := range img.Pix {
		img.Pix[i] = colorspace.RGB{R: uint8(i * 31), G: uint8(i * 17), B: uint8(i * 7)}
	}
	prop := func(xq, yq uint16) bool {
		x := float64(xq%800) / 100 // [0, 8)
		y := float64(yq%800) / 100
		p := img.Bilinear(x, y)
		// Interpolation never exceeds the channel extremes of its corners.
		x0, y0 := int(math.Floor(x)), int(math.Floor(y))
		lo, hi := 255, 0
		for dy := 0; dy <= 1; dy++ {
			for dx := 0; dx <= 1; dx++ {
				v := int(img.At(x0+dx, y0+dy).R)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		return int(p.R) >= lo-1 && int(p.R) <= hi+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func flatten(img *Image) []byte {
	out := make([]byte, 0, len(img.Pix)*3)
	for _, p := range img.Pix {
		out = append(out, p.R, p.G, p.B)
	}
	return out
}
