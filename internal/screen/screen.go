// Package screen models the sender's display: a sequence of rendered
// barcode frames shown at a fixed display rate f_d. Time is simulated — an
// offset from an arbitrary epoch — so rolling-shutter interactions with the
// camera are exact and tests are hermetic (no wall clock).
//
// It also carries the paper's §IV draw-time cost model (≈31 ms per frame
// with four render threads on the Galaxy S4), used by the experiment
// harness to reason about the real-time display budget.
package screen

import (
	"fmt"
	"time"

	"rainbar/internal/raster"
)

// Display is a frame sequence shown at RateFPS starting at Start.
// The zero value is unusable; use NewDisplay.
type Display struct {
	frames []*raster.Image
	rate   float64
	start  time.Duration

	// Transition is the LCD response time: for this long after a frame
	// switch the panel shows a blend of the old and new frame. Zero means
	// instantaneous switching. Captures overlapping a transition see
	// corrupted rows, which is a large part of why real screen-camera
	// links degrade at high display rates.
	Transition time.Duration
}

// NewDisplay creates a display timeline. rateFPS must be positive and
// frames non-empty.
func NewDisplay(frames []*raster.Image, rateFPS float64, start time.Duration) (*Display, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("screen: no frames to display")
	}
	if rateFPS <= 0 {
		return nil, fmt.Errorf("screen: display rate %.2f fps must be positive", rateFPS)
	}
	return &Display{frames: frames, rate: rateFPS, start: start}, nil
}

// Rate returns the display rate in frames per second.
func (d *Display) Rate() float64 { return d.rate }

// Period returns the duration each frame stays on screen.
func (d *Display) Period() time.Duration {
	return time.Duration(float64(time.Second) / d.rate)
}

// NumFrames returns the number of frames in the sequence.
func (d *Display) NumFrames() int { return len(d.frames) }

// Duration returns the total on-screen time of the sequence.
func (d *Display) Duration() time.Duration {
	return time.Duration(float64(len(d.frames)) * float64(time.Second) / d.rate)
}

// End returns the instant the last frame leaves the screen.
func (d *Display) End() time.Duration { return d.start + d.Duration() }

// FrameAt returns the frame index visible at time t, or -1 if the screen
// shows nothing (before start or after the last frame).
func (d *Display) FrameAt(t time.Duration) int {
	if t < d.start || t >= d.End() {
		return -1
	}
	idx := int(float64(t-d.start) / float64(time.Second) * d.rate)
	if idx >= len(d.frames) { // guard float rounding at the boundary
		idx = len(d.frames) - 1
	}
	return idx
}

// Frame returns the rendered image for index i. It panics on a bad index;
// callers pass indices obtained from FrameAt.
func (d *Display) Frame(i int) *raster.Image { return d.frames[i] }

// SwitchTime returns the instant frame i replaces frame i-1 on screen.
func (d *Display) SwitchTime(i int) time.Duration {
	return d.start + time.Duration(float64(i)*float64(time.Second)/d.rate)
}

// BlendAt describes what the panel shows at time t: frame b, or — within
// the transition window after a switch — a blend of frames a and b with
// weight alpha toward b (alpha in [0, 1)). Outside the display interval
// b is -1.
func (d *Display) BlendAt(t time.Duration) (a, b int, alpha float64) {
	b = d.FrameAt(t)
	a = b
	alpha = 1
	if b <= 0 || d.Transition <= 0 {
		return a, b, alpha
	}
	since := t - d.SwitchTime(b)
	if since < d.Transition {
		return b - 1, b, float64(since) / float64(d.Transition)
	}
	return a, b, alpha
}

// DefaultTransition is a typical LCD response time.
const DefaultTransition = 10 * time.Millisecond

// DrawCost models the per-frame encode+draw time on the reference device
// (§IV): drawing dominates and parallelizes across threads, encoding is a
// small serial tail. Four threads give the paper's ≈31 ms.
func DrawCost(threads int) time.Duration {
	if threads < 1 {
		threads = 1
	}
	const (
		drawSingle = 118 * time.Millisecond // full-screen draw, one thread
		encodeCost = 2 * time.Millisecond   // serial encode tail
	)
	return encodeCost + time.Duration(float64(drawSingle)/float64(threads))
}

// MaxRealTimeRate returns the highest display rate (fps) the draw-cost
// model sustains with the given number of render threads.
func MaxRealTimeRate(threads int) float64 {
	return float64(time.Second) / float64(DrawCost(threads))
}
