package screen

import (
	"testing"
	"time"

	"rainbar/internal/raster"
)

func frames(n int) []*raster.Image {
	out := make([]*raster.Image, n)
	for i := range out {
		out[i] = raster.New(4, 4)
	}
	return out
}

func TestNewDisplayValidation(t *testing.T) {
	if _, err := NewDisplay(nil, 10, 0); err == nil {
		t.Error("empty frame list accepted")
	}
	if _, err := NewDisplay(frames(1), 0, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewDisplay(frames(1), -5, 0); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestFrameAt(t *testing.T) {
	d, err := NewDisplay(frames(3), 10, 0) // 100ms per frame
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    time.Duration
		want int
	}{
		{-1 * time.Millisecond, -1},
		{0, 0},
		{99 * time.Millisecond, 0},
		{100 * time.Millisecond, 1},
		{250 * time.Millisecond, 2},
		{299 * time.Millisecond, 2},
		{300 * time.Millisecond, -1},
		{time.Hour, -1},
	}
	for _, c := range cases {
		if got := d.FrameAt(c.t); got != c.want {
			t.Errorf("FrameAt(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestFrameAtWithStartOffset(t *testing.T) {
	d, err := NewDisplay(frames(2), 20, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.FrameAt(40 * time.Millisecond); got != -1 {
		t.Errorf("before start: %d, want -1", got)
	}
	if got := d.FrameAt(60 * time.Millisecond); got != 0 {
		t.Errorf("first frame: %d, want 0", got)
	}
	if got := d.FrameAt(110 * time.Millisecond); got != 1 {
		t.Errorf("second frame: %d, want 1", got)
	}
}

func TestPeriodAndDuration(t *testing.T) {
	d, err := NewDisplay(frames(5), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Period(); got != 100*time.Millisecond {
		t.Errorf("Period = %v", got)
	}
	if got := d.Duration(); got != 500*time.Millisecond {
		t.Errorf("Duration = %v", got)
	}
	if got := d.End(); got != 500*time.Millisecond {
		t.Errorf("End = %v", got)
	}
	if d.NumFrames() != 5 {
		t.Errorf("NumFrames = %d", d.NumFrames())
	}
	if d.Rate() != 10 {
		t.Errorf("Rate = %v", d.Rate())
	}
}

func TestDrawCostModel(t *testing.T) {
	// The paper reports ~31 ms per frame with four render threads.
	four := DrawCost(4)
	if four < 25*time.Millisecond || four > 40*time.Millisecond {
		t.Errorf("DrawCost(4) = %v, want ≈31ms", four)
	}
	// More threads must never be slower.
	prev := DrawCost(1)
	for threads := 2; threads <= 8; threads++ {
		cur := DrawCost(threads)
		if cur > prev {
			t.Errorf("DrawCost(%d) = %v > DrawCost(%d) = %v", threads, cur, threads-1, prev)
		}
		prev = cur
	}
	if got := DrawCost(0); got != DrawCost(1) {
		t.Errorf("DrawCost(0) = %v, want DrawCost(1)", got)
	}
}

func TestMaxRealTimeRate(t *testing.T) {
	// Four threads must sustain ~30 fps (the paper's target), one must not.
	if r := MaxRealTimeRate(4); r < 28 {
		t.Errorf("MaxRealTimeRate(4) = %.1f, want ≥ 28", r)
	}
	if r := MaxRealTimeRate(1); r > 15 {
		t.Errorf("MaxRealTimeRate(1) = %.1f, want < 15", r)
	}
}

func TestBlendAt(t *testing.T) {
	d, err := NewDisplay(frames(3), 10, 0) // switches at 100ms, 200ms
	if err != nil {
		t.Fatal(err)
	}
	d.Transition = 20 * time.Millisecond

	cases := []struct {
		t     time.Duration
		a, b  int
		alpha float64
	}{
		{0, 0, 0, 1},                         // first frame never blends
		{50 * time.Millisecond, 0, 0, 1},     // mid-frame
		{105 * time.Millisecond, 0, 1, 0.25}, // early transition
		{115 * time.Millisecond, 0, 1, 0.75}, // late transition
		{120 * time.Millisecond, 1, 1, 1},    // transition over
		{205 * time.Millisecond, 1, 2, 0.25},
	}
	for _, c := range cases {
		a, b, alpha := d.BlendAt(c.t)
		if a != c.a || b != c.b || alpha != c.alpha {
			t.Errorf("BlendAt(%v) = (%d, %d, %v), want (%d, %d, %v)", c.t, a, b, alpha, c.a, c.b, c.alpha)
		}
	}
}

func TestBlendAtZeroTransition(t *testing.T) {
	d, err := NewDisplay(frames(2), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b, alpha := d.BlendAt(101 * time.Millisecond)
	if a != 1 || b != 1 || alpha != 1 {
		t.Errorf("no-transition blend = (%d, %d, %v)", a, b, alpha)
	}
}

func TestSwitchTime(t *testing.T) {
	d, err := NewDisplay(frames(3), 20, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.SwitchTime(0); got != 5*time.Millisecond {
		t.Errorf("SwitchTime(0) = %v", got)
	}
	if got := d.SwitchTime(2); got != 105*time.Millisecond {
		t.Errorf("SwitchTime(2) = %v", got)
	}
}
