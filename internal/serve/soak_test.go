package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rainbar/internal/transport"
)

// fakeDriver is a trivial deterministic Driver for scheduler tests: it
// "transfers" for a spec-derived number of rounds with no real link work,
// so a thousand sessions step in milliseconds even under -race.
type fakeDriver struct {
	round, total int
	fail         bool
	payload      []byte
}

// fakeFactory derives the round count from spec.MaxRounds and failure
// from spec.Recovery == "fail".
type fakeFactory struct{}

func (fakeFactory) New(spec SessionSpec) (Driver, error) {
	total := spec.MaxRounds
	if total <= 0 {
		total = 3
	}
	return &fakeDriver{total: total, fail: spec.Recovery == "fail", payload: spec.Payload}, nil
}

func (fakeFactory) Restore(spec SessionSpec, state []byte) (Driver, error) {
	if len(state) != 16 {
		return nil, fmt.Errorf("%w: fake state is %d bytes", ErrBadSnapshot, len(state))
	}
	d, _ := fakeFactory{}.New(spec)
	fd := d.(*fakeDriver)
	fd.round = int(binary.LittleEndian.Uint64(state))
	fd.total = int(binary.LittleEndian.Uint64(state[8:]))
	return fd, nil
}

func (d *fakeDriver) Step() (StepInfo, error) {
	if d.round >= d.total {
		return StepInfo{Done: true}, nil
	}
	d.round++
	if d.fail && d.round == d.total {
		return StepInfo{Done: true, Air: time.Millisecond}, errors.New("fake link failure")
	}
	return StepInfo{Done: d.round >= d.total, Progress: true, Air: time.Millisecond}, nil
}

func (d *fakeDriver) Snapshot() ([]byte, error) {
	state := make([]byte, 16)
	binary.LittleEndian.PutUint64(state, uint64(d.round))
	binary.LittleEndian.PutUint64(state[8:], uint64(d.total))
	return state, nil
}

func (d *fakeDriver) Result() ([]byte, *transport.Stats, error) {
	if d.round < d.total {
		return nil, nil, ErrSessionActive
	}
	return d.payload, &transport.Stats{Rounds: d.round}, nil
}

// TestServeSoak runs 1000 concurrent sessions with interleaved snapshot,
// restore and cancel traffic under the race detector: no session may be
// lost, none may double-complete, and after Drain the registry holds only
// terminal sessions and empties cleanly.
func TestServeSoak(t *testing.T) {
	const fleet = 1000
	s := NewServer(Config{
		// Headroom above the fleet so concurrent Restores are admitted.
		MaxSessions: fleet * 2,
		Workers:     8,
		Factory:     fakeFactory{},
	})

	var admitted atomic.Int64 // sessions the registry must account for
	var wg sync.WaitGroup
	wg.Add(fleet)
	for i := 0; i < fleet; i++ {
		go func(i int) {
			defer wg.Done()
			spec := SessionSpec{
				Payload:   []byte{byte(i), byte(i >> 8)},
				MaxRounds: 2 + i%5,
			}
			if i%17 == 0 {
				spec.Recovery = "fail" // a slice of the fleet fails
			}
			if _, err := s.Submit(spec); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			admitted.Add(1)
		}(i)
	}

	// Interleaved registry traffic while the fleet runs: snapshots of live
	// sessions, restores of those snapshots as new sessions, and cancels.
	var chaos sync.WaitGroup
	chaos.Add(3)
	go func() {
		defer chaos.Done()
		rng := rand.New(rand.NewSource(1))
		for n := 0; n < 400; n++ {
			id := uint64(rng.Intn(fleet) + 1)
			snap, err := s.Snapshot(id)
			if err != nil {
				// Not yet admitted or already terminal — both fine.
				continue
			}
			if _, err := s.Restore(snap); err == nil {
				admitted.Add(1)
			} else if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrStopped) {
				t.Errorf("restore: %v", err)
			}
		}
	}()
	go func() {
		defer chaos.Done()
		rng := rand.New(rand.NewSource(2))
		for n := 0; n < 400; n++ {
			id := uint64(rng.Intn(fleet) + 1)
			// Unknown-session and already-terminal are expected outcomes.
			_ = s.Cancel(id)
		}
	}()
	go func() {
		defer chaos.Done()
		rng := rand.New(rand.NewSource(3))
		for n := 0; n < 400; n++ {
			id := uint64(rng.Intn(fleet) + 1)
			if _, err := s.Info(id); err != nil && !errors.Is(err, ErrUnknownSession) {
				t.Errorf("info: %v", err)
			}
		}
	}()

	wg.Wait()
	chaos.Wait()
	s.Drain()

	// No lost sessions: everything admitted is in the registry, terminal.
	all := s.Sessions()
	if int64(len(all)) != admitted.Load() {
		t.Fatalf("registry holds %d sessions, admitted %d", len(all), admitted.Load())
	}
	var done, failed, canceled int
	for _, info := range all {
		switch info.State {
		case StateDone:
			done++
		case StateFailed:
			failed++
		case StateCanceled:
			canceled++
		default:
			t.Fatalf("session %d not terminal after drain: %s", info.ID, info.State)
		}
	}
	if done == 0 || failed == 0 {
		t.Fatalf("degenerate soak: done=%d failed=%d canceled=%d", done, failed, canceled)
	}

	// No double completion: Result is stable and consistent with state.
	for _, info := range all {
		payload, _, err := s.Result(info.ID)
		again, _, err2 := s.Result(info.ID)
		if (err == nil) != (err2 == nil) || string(payload) != string(again) {
			t.Fatalf("session %d: Result not stable", info.ID)
		}
		if info.State == StateDone && err != nil {
			t.Fatalf("done session %d has error %v", info.ID, err)
		}
		if info.State != StateDone && err == nil {
			t.Fatalf("%s session %d has a successful result", info.State, info.ID)
		}
	}

	// Clean registry after drain: every entry removable, then empty.
	for _, info := range all {
		if err := s.Remove(info.ID); err != nil {
			t.Fatalf("remove %d: %v", info.ID, err)
		}
	}
	if left := s.Sessions(); len(left) != 0 {
		t.Fatalf("%d sessions left after removal", len(left))
	}
	if _, err := s.Submit(SessionSpec{Payload: []byte{1}}); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after drain: %v, want ErrStopped", err)
	}
	t.Logf("soak: admitted=%d done=%d failed=%d canceled=%d", admitted.Load(), done, failed, canceled)
}
