package serve

import (
	"bytes"
	"reflect"
	"testing"

	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/transport"
	"rainbar/internal/workload"
)

// propGeometry is the property matrix's screen: small enough that the
// faults x recovery matrix stays fast, large enough for a valid layout.
const (
	propW, propH, propBlock = 400, 192, 8
	propRounds              = 4
)

// propSpec builds one matrix point's session spec with a ~3-chunk payload.
// It panics on geometry errors so the fuzz seed phase can use it too.
func propSpec(faultSpec, recovery string) SessionSpec {
	geo, err := layout.NewGeometry(propW, propH, propBlock)
	if err != nil {
		panic(err)
	}
	codec := core.MustCodec(core.Config{Geometry: geo, DisplayRate: 10})
	return SessionSpec{
		Payload:   workload.Text(2*codec.FrameCapacity(), 7),
		ScreenW:   propW,
		ScreenH:   propH,
		Block:     propBlock,
		Faults:    faultSpec,
		Recovery:  recovery,
		MaxRounds: propRounds,
	}
}

// outcome is everything a finished transfer produced, for bit-identity
// comparison.
type outcome struct {
	payload []byte
	stats   *transport.Stats
	errText string
}

// finish steps a driver to completion and seals it.
func finish(t *testing.T, d Driver) outcome {
	t.Helper()
	for {
		info, err := d.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if info.Done {
			break
		}
	}
	payload, stats, err := d.Result()
	o := outcome{payload: payload, stats: stats}
	if err != nil {
		o.errText = err.Error()
	}
	return o
}

// TestSnapshotRestoreBitIdentical is the snapshot/restore property over
// the faults x recovery matrix: serializing a lossy transfer at EVERY
// round boundary and resuming each snapshot in a fresh driver must finish
// with exactly the uninterrupted run's payload, Stats and error. This is
// the correctness contract that lets a daemon migrate live sessions.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	// minRounds pins that the lossy conditions really exercise
	// mid-transfer state (collector partials, soft tables, stall
	// counters): if link realism changes and they complete in one round,
	// the property would silently stop testing anything.
	conditions := []struct {
		name, faults string
		minRounds    int
	}{
		{"clean", "", 1},
		{"drop", "drop=0.6,seed=11", 2},
		{"splice_occlude", "splice=0.55,occlude=0.5,seed=5", 2},
	}
	modes := []string{"off", "erasures", "ladder", "combine"}
	for _, cond := range conditions {
		for _, mode := range modes {
			cond, mode := cond, mode
			t.Run(cond.name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				var f transportFactory
				spec := propSpec(cond.faults, mode)

				drv, err := f.New(spec)
				if err != nil {
					t.Fatal(err)
				}
				// Snapshot at every round boundary of the primary run:
				// before the first round and after each completed one.
				var snaps [][]byte
				for {
					state, err := drv.Snapshot()
					if err != nil {
						t.Fatalf("snapshot: %v", err)
					}
					// Exercise the full envelope, not just the driver state.
					env, err := EncodeSnapshot(&Snapshot{ID: 1, State: StateTransferring, Spec: spec, DriverState: state})
					if err != nil {
						t.Fatalf("encode envelope: %v", err)
					}
					snaps = append(snaps, env)
					info, err := drv.Step()
					if err != nil {
						t.Fatalf("step: %v", err)
					}
					if info.Done {
						break
					}
				}
				want := finish(t, drv)
				if want.stats.Rounds < cond.minRounds {
					t.Fatalf("condition too mild: %d rounds, want >= %d (property not exercised)",
						want.stats.Rounds, cond.minRounds)
				}

				for i, env := range snaps {
					snap, err := DecodeSnapshot(env)
					if err != nil {
						t.Fatalf("decode envelope %d: %v", i, err)
					}
					if !reflect.DeepEqual(snap.Spec, spec) {
						t.Fatalf("spec did not survive the envelope at boundary %d", i)
					}
					resumed, err := f.Restore(snap.Spec, snap.DriverState)
					if err != nil {
						t.Fatalf("restore at boundary %d: %v", i, err)
					}
					got := finish(t, resumed)
					if !bytes.Equal(got.payload, want.payload) {
						t.Errorf("boundary %d: payload differs from uninterrupted run", i)
					}
					if !reflect.DeepEqual(got.stats, want.stats) {
						t.Errorf("boundary %d: stats differ:\n got %+v\nwant %+v", i, got.stats, want.stats)
					}
					if got.errText != want.errText {
						t.Errorf("boundary %d: err %q, want %q", i, got.errText, want.errText)
					}
				}
				t.Logf("%s/%s: %d boundaries verified, delivered=%v rounds=%d",
					cond.name, mode, len(snaps), want.errText == "", want.stats.Rounds)
			})
		}
	}
}
