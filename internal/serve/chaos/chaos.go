// Package chaos is rainbar-serve's daemon-level fault harness: a
// seed-deterministic machine for proving the serving layer survives the
// failures the paper's link layer cannot see — worker panics, wedged
// rounds, transient infrastructure errors, filling disks, and whole-
// process crashes. The headline is the kill/recover loop (Run): run a
// fleet to completion journaling as it goes, then for a set of
// seed-chosen kill points replay only a prefix of that journal —
// exactly the bytes a crashed process would have left behind, with an
// optional torn half-frame on the end — Recover a fresh server from it,
// run the recovered fleet to completion, and demand every session's
// payload, terminal state, and transfer statistics be bit-identical to
// the uncrashed run's. Everything derives from Config.Seed: the same
// configuration always kills at the same records and always reaches the
// same verdict.
//
// chaos is a determinism-contract package like its parent; the fault
// injectors it exports (Factory, BudgetFS) are themselves deterministic
// so supervision tests stay replayable.
package chaos

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"time"

	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/serve"
	"rainbar/internal/serve/journal"
	"rainbar/internal/transport"
	"rainbar/internal/workload"
)

// Config parameterizes one kill/recover campaign.
type Config struct {
	// Seed drives every choice the harness makes: session seeds, kill
	// points, torn-tail bytes.
	Seed int64
	// Fleet is the number of sessions in the reference run (default 3).
	Fleet int
	// Rounds caps each session's display rounds (default 4).
	Rounds int
	// FaultSpecs are faults.ParseSpec chains rotated across the fleet
	// (default a lossy mix including a clean link).
	FaultSpecs []string
	// Recovery is the decode-recovery mode (default "combine").
	Recovery string
	// Dir is the scratch directory for the reference and per-kill
	// journals (required).
	Dir string
	// Fsync is the journal durability policy under test.
	Fsync journal.Fsync
	// CheckpointEvery is the checkpoint interval in rounds (default 1:
	// every boundary is a recovery point, the harshest setting).
	CheckpointEvery int
	// Kills is how many kill points to sample beyond the forced
	// endpoints 0 and len(records) (default 4).
	Kills int
	// TornTail, when set, appends a seed-derived half-frame of garbage
	// at every kill point — the torn write a mid-append crash leaves.
	TornTail bool
}

// Outcome is one session's terminal result in a run.
type Outcome struct {
	State   serve.State
	Err     string
	Payload []byte
	Stats   *transport.Stats
}

// Result aggregates a campaign.
type Result struct {
	// Sessions is the reference fleet size, Records its journal length.
	Sessions int
	Records  int
	// Kills lists the record counts the journal was cut to.
	Kills []int
	// Checkpointed and Resubmitted count session recoveries across all
	// kills, by path taken.
	Checkpointed int
	Resubmitted  int
	// Mismatches counts recovered sessions whose payload, state or stats
	// diverged from the uncrashed run (must be zero).
	Mismatches int
	// Resurrected counts sessions recovered despite a terminal record in
	// the surviving prefix (must be zero).
	Resurrected int
}

// mix is the harness's splitmix64 step for deriving per-purpose seeds.
func mix(base int64, n int) int64 {
	x := uint64(base) + 0x9E3779B97F4A7C15*uint64(n+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

func (cfg Config) withDefaults() Config {
	if cfg.Fleet <= 0 {
		cfg.Fleet = 3
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 4
	}
	if len(cfg.FaultSpecs) == 0 {
		cfg.FaultSpecs = []string{"", "drop=0.6,seed=3", "splice=0.55,occlude=0.5,seed=5"}
	}
	if cfg.Recovery == "" {
		cfg.Recovery = "combine"
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.Kills <= 0 {
		cfg.Kills = 4
	}
	return cfg
}

// chaosW/H/Block is the harness screen: small enough that a campaign's
// dozens of runs stay fast, large enough for a valid layout.
const chaosW, chaosH, chaosBlock = 400, 192, 8

// specFor builds session i's spec: small geometry so rounds are cheap,
// a two-frame payload so lossy sessions genuinely span multiple rounds
// (and therefore multiple checkpoints), per-session seeds mixed from
// the campaign seed.
func (cfg Config) specFor(i int) serve.SessionSpec {
	geo, err := layout.NewGeometry(chaosW, chaosH, chaosBlock)
	if err != nil {
		panic(err) // fixed geometry, cannot fail
	}
	codec := core.MustCodec(core.Config{Geometry: geo, DisplayRate: 10})
	spec := serve.SessionSpec{
		Payload:   workload.Text(2*codec.FrameCapacity(), mix(cfg.Seed, 3*i)),
		ScreenW:   chaosW,
		ScreenH:   chaosH,
		Block:     chaosBlock,
		CamSeed:   mix(cfg.Seed, 3*i+1),
		Faults:    cfg.FaultSpecs[i%len(cfg.FaultSpecs)],
		Recovery:  cfg.Recovery,
		MaxRounds: cfg.Rounds,
	}
	spec.Channel.Seed = mix(cfg.Seed, 3*i+2)
	return spec
}

func (cfg Config) serverConfig(j *journal.Journal) serve.Config {
	return serve.Config{
		MaxSessions: cfg.Fleet,
		// One worker makes the journal's record order — and therefore the
		// kill points — deterministic.
		Workers:         1,
		Journal:         j,
		CheckpointEvery: cfg.CheckpointEvery,
	}
}

// outcomes drains the server and collects every session's terminal
// result keyed by id.
func outcomes(srv *serve.Server) map[uint64]Outcome {
	srv.Quiesce()
	out := make(map[uint64]Outcome)
	for _, info := range srv.Sessions() {
		payload, stats, err := srv.Result(info.ID)
		o := Outcome{State: info.State, Payload: payload, Stats: stats}
		if err != nil {
			o.Err = err.Error()
		}
		out[info.ID] = o
	}
	return out
}

// Run executes the campaign. A non-nil error means the harness itself
// broke (unbuildable spec, journal plumbing); divergence and
// resurrection are reported in the Result for the caller to assert on.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("chaos: Config.Dir is required")
	}

	// Reference run: the uncrashed daemon, journaling every boundary.
	refDir := filepath.Join(cfg.Dir, "ref")
	opts := journal.Options{Fsync: cfg.Fsync}
	j, err := journal.Open(refDir, opts)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(cfg.serverConfig(j))
	ids := make([]uint64, cfg.Fleet)
	for i := 0; i < cfg.Fleet; i++ {
		if ids[i], err = srv.Submit(cfg.specFor(i)); err != nil {
			return nil, fmt.Errorf("chaos: reference submit %d: %w", i, err)
		}
	}
	ref := outcomes(srv)
	srv.Drain()
	if err := j.Close(); err != nil {
		return nil, err
	}
	for _, id := range ids {
		if ref[id].State != serve.StateDone {
			return nil, fmt.Errorf("chaos: reference session %d ended %s (%s): campaign needs completable specs",
				id, ref[id].State, ref[id].Err)
		}
	}

	data, err := os.ReadFile(filepath.Join(refDir, journal.FileName))
	if err != nil {
		return nil, err
	}
	records, tail, err := journal.Replay(data)
	if err != nil || tail != len(data) {
		return nil, fmt.Errorf("chaos: reference journal does not replay cleanly: tail %d/%d, %w", tail, len(data), err)
	}

	res := &Result{Sessions: cfg.Fleet, Records: len(records)}
	res.Kills = killPoints(cfg.Seed, len(records), cfg.Kills)
	for _, k := range res.Kills {
		if err := cfg.runKill(k, records, ref, opts, res); err != nil {
			return nil, fmt.Errorf("chaos: kill at record %d: %w", k, err)
		}
	}
	return res, nil
}

// killPoints picks the sampled kill set: always the empty and complete
// journals, plus n seed-chosen interior records.
func killPoints(seed int64, records, n int) []int {
	points := map[int]bool{0: true, records: true}
	for i := 0; len(points) < n+2 && i < 4*n+16; i++ {
		points[int(uint64(mix(seed, 100+i))%uint64(records+1))] = true
	}
	out := make([]int, 0, len(points))
	for k := range points {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// runKill simulates a crash after record k became durable: rebuild the
// journal prefix (torn tail optional), Recover, run to completion,
// compare against the reference.
func (cfg Config) runKill(k int, records []journal.Record, ref map[uint64]Outcome, opts journal.Options, res *Result) error {
	dir := filepath.Join(cfg.Dir, fmt.Sprintf("kill%04d", k))
	j, err := journal.Open(dir, opts)
	if err != nil {
		return err
	}
	for _, rec := range records[:k] {
		if err := j.Append(rec); err != nil {
			return err
		}
	}
	if err := j.Close(); err != nil {
		return err
	}
	if cfg.TornTail {
		// Half a frame of seed-derived garbage: the write the crash cut.
		garbage := workload.Text(11, mix(cfg.Seed, 200+k))
		f, err := os.OpenFile(filepath.Join(dir, journal.FileName), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(garbage); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// Fold the surviving prefix to know who must come back: sessions
	// with a submit or checkpoint and no terminal record.
	expect := map[uint64]bool{}
	for _, rec := range records[:k] {
		// Per-session record order is submit → checkpoints → terminal, so
		// last-writer-wins folding is exact.
		expect[rec.ID] = rec.Kind != journal.KindTerminal
	}

	srv, rep, err := serve.Recover(dir, opts, cfg.serverConfig(nil))
	if err != nil {
		return err
	}
	res.Checkpointed += rep.Checkpointed
	res.Resubmitted += rep.Resubmitted
	recovered := map[uint64]bool{}
	for _, id := range rep.Sessions {
		recovered[id] = true
		if !expect[id] {
			res.Resurrected++
		}
	}
	for id, live := range expect {
		if live && !recovered[id] {
			res.Mismatches++ // a live session the recovery dropped
		}
	}

	got := outcomes(srv)
	srv.Drain()
	if j := srv.Journal(); j != nil {
		j.Close()
	}
	for _, id := range rep.Sessions {
		want, ok := ref[id]
		if !ok {
			res.Mismatches++
			continue
		}
		o := got[id]
		if o.State != want.State || o.Err != want.Err ||
			string(o.Payload) != string(want.Payload) ||
			!reflect.DeepEqual(o.Stats, want.Stats) {
			res.Mismatches++
		}
	}
	return nil
}

// --- worker-level fault injection ---

// Mode selects the fault a Factory injects.
type Mode string

const (
	// ModePanic panics inside Step (the server must isolate it).
	ModePanic Mode = "panic"
	// ModeSlow blocks Step on a watch timer (the round deadline must
	// reap it).
	ModeSlow Mode = "slow"
	// ModeTransient fails Step with an ErrTransient-wrapped error a
	// fixed number of times before letting the round run (the retry
	// policy must absorb it).
	ModeTransient Mode = "transient"
)

// Factory wraps an inner serve.Factory and injects one fault kind into
// every session it builds, at a fixed 1-based round. Deterministic:
// the same (Mode, Round, Fails) always misbehaves identically.
type Factory struct {
	// Inner builds the real drivers (serve.DefaultFactory for real
	// transfers, or a test fake).
	Inner serve.Factory
	// Mode is the fault to inject.
	Mode Mode
	// Round is the 1-based step index at which the fault fires.
	Round int
	// Watch supplies the timer a ModeSlow step blocks on (required for
	// ModeSlow; tests advance it past the round deadline).
	Watch serve.WatchClock
	// SlowBy is how long a slow step wedges (default one hour — far
	// past any sane deadline).
	SlowBy time.Duration
	// Fails is how many times a ModeTransient fault fires before the
	// round proceeds (default 2).
	Fails int
	// Only, when non-nil, limits injection to specs it accepts.
	Only func(spec serve.SessionSpec) bool
}

// ErrInjected is the cause carried by injected panics and transient
// failures, so tests can assert the failure came from the harness.
var ErrInjected = errors.New("chaos: injected fault")

func (f Factory) wrap(spec serve.SessionSpec, drv serve.Driver) serve.Driver {
	if f.Only != nil && !f.Only(spec) {
		return drv
	}
	fd := &faultDriver{Factory: f, inner: drv}
	if fd.Fails <= 0 {
		fd.Fails = 2
	}
	if fd.SlowBy <= 0 {
		fd.SlowBy = time.Hour
	}
	return fd
}

// New builds a fault-injecting driver over the inner factory's.
func (f Factory) New(spec serve.SessionSpec) (serve.Driver, error) {
	drv, err := f.Inner.New(spec)
	if err != nil {
		return nil, err
	}
	return f.wrap(spec, drv), nil
}

// Restore builds a fault-injecting driver over the inner factory's
// restored one. The step counter restarts, so a recovered session hits
// the fault again Round steps later.
func (f Factory) Restore(spec serve.SessionSpec, state []byte) (serve.Driver, error) {
	drv, err := f.Inner.Restore(spec, state)
	if err != nil {
		return nil, err
	}
	return f.wrap(spec, drv), nil
}

type faultDriver struct {
	Factory
	inner serve.Driver
	steps int
	fired int
}

func (d *faultDriver) Step() (serve.StepInfo, error) {
	d.steps++
	if d.steps == d.Round {
		switch d.Mode {
		case ModePanic:
			//lint:allow RB-E3 deliberate: the chaos harness injects worker panics on purpose — proving the server's recover isolation is the whole point
			panic(fmt.Sprintf("%v: panic at step %d", ErrInjected, d.steps))
		case ModeSlow:
			// Wedge until the test's watch fires; the server's watchdog
			// should have declared this round dead long before.
			<-d.Watch.After(d.SlowBy)
		case ModeTransient:
			if d.fired < d.Fails {
				d.fired++
				d.steps-- // the round did not run; fail it again next attempt
				return serve.StepInfo{}, fmt.Errorf("%w: transient at step %d (%d/%d)", serve.ErrTransient, d.Round, d.fired, d.Fails)
			}
		}
	}
	return d.inner.Step()
}

func (d *faultDriver) Snapshot() ([]byte, error) { return d.inner.Snapshot() }

func (d *faultDriver) Result() ([]byte, *transport.Stats, error) { return d.inner.Result() }

// --- disk fault injection ---

// BudgetFS is a journal.OpenFunc factory simulating a disk with a fixed
// byte budget shared across every file it opens. Like a real full disk,
// the first write past the budget flips it to full and EVERY write
// fails from then on — even small ones — until Refill models the
// operator clearing space, after which the server's next compaction
// heals the journal.
type BudgetFS struct {
	left int
	full bool
}

// NewBudgetFS returns a disk with n writable bytes remaining.
func NewBudgetFS(n int) *BudgetFS { return &BudgetFS{left: n} }

// Refill grants n more writable bytes and clears the full condition.
func (fs *BudgetFS) Refill(n int) { fs.left += n; fs.full = false }

// Open is the journal.OpenFunc to install in journal.Options.
func (fs *BudgetFS) Open(path string) (journal.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &budgetFile{fs: fs, f: f}, nil
}

type budgetFile struct {
	fs *BudgetFS
	f  *os.File
}

func (b *budgetFile) Write(p []byte) (int, error) {
	if b.fs.full || b.fs.left < len(p) {
		b.fs.full = true
		return 0, fmt.Errorf("%w: disk full", ErrInjected)
	}
	b.fs.left -= len(p)
	return b.f.Write(p)
}

func (b *budgetFile) Sync() error  { return b.f.Sync() }
func (b *budgetFile) Close() error { return b.f.Close() }
