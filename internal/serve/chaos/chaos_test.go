package chaos

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rainbar/internal/serve"
	"rainbar/internal/serve/journal"
)

// TestChaosKillRecover is the headline acceptance test: crash the
// daemon at seed-chosen record boundaries (clean cuts and torn tails),
// Recover from the surviving journal prefix, and demand bit-identical
// delivery from every recovered session across the faults × recovery
// matrix.
func TestChaosKillRecover(t *testing.T) {
	for _, tc := range []struct {
		name     string
		recovery string
		torn     bool
		fsync    journal.Fsync
	}{
		{"combine-clean-cut", "combine", false, journal.FsyncAlways},
		{"combine-torn-tail", "combine", true, journal.FsyncInterval},
		{"off-torn-tail", "off", true, journal.FsyncOff},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{
				Seed:     41,
				Dir:      t.TempDir(),
				Recovery: tc.recovery,
				TornTail: tc.torn,
				Fsync:    tc.fsync,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Mismatches != 0 {
				t.Fatalf("%d recovered sessions diverged from the uncrashed run (result %+v)", res.Mismatches, res)
			}
			if res.Resurrected != 0 {
				t.Fatalf("%d terminal sessions resurrected (result %+v)", res.Resurrected, res)
			}
			if len(res.Kills) < 3 || res.Checkpointed == 0 {
				t.Fatalf("campaign too weak to mean anything: %+v", res)
			}
		})
	}
}

// TestChaosDeterministic: the same seed must kill at the same records
// and produce the same aggregate result.
func TestChaosDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{Seed: 7, Dir: t.TempDir(), Fleet: 2, Kills: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Records != b.Records || len(a.Kills) != len(b.Kills) ||
		a.Checkpointed != b.Checkpointed || a.Resubmitted != b.Resubmitted {
		t.Fatalf("same seed, different campaigns:\n%+v\n%+v", a, b)
	}
	for i := range a.Kills {
		if a.Kills[i] != b.Kills[i] {
			t.Fatalf("kill points diverged: %v vs %v", a.Kills, b.Kills)
		}
	}
}

func chaosSpec(seed int64) serve.SessionSpec {
	return Config{Seed: seed}.withDefaults().specFor(0)
}

// TestWorkerPanicIsolation: a panicking driver fails its own session
// with ErrPanicked while the other sessions deliver untouched.
func TestWorkerPanicIsolation(t *testing.T) {
	victim := chaosSpec(11)
	bystander := Config{Seed: 11}.withDefaults().specFor(1)
	srv := serve.NewServer(serve.Config{
		Workers: 2,
		Factory: Factory{
			Inner: serve.DefaultFactory(nil),
			Mode:  ModePanic,
			Round: 1,
			Only:  func(spec serve.SessionSpec) bool { return string(spec.Payload) == string(victim.Payload) },
		},
	})
	vid, err := srv.Submit(victim)
	if err != nil {
		t.Fatal(err)
	}
	bid, err := srv.Submit(bystander)
	if err != nil {
		t.Fatal(err)
	}
	srv.Quiesce()
	defer srv.Drain()

	if _, _, err := srv.Result(vid); !errors.Is(err, serve.ErrPanicked) {
		t.Fatalf("victim result error = %v, want ErrPanicked", err)
	} else if !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("panic cause lost: %v", err)
	}
	payload, _, err := srv.Result(bid)
	if err != nil {
		t.Fatalf("bystander failed: %v", err)
	}
	if string(payload) != string(bystander.Payload) {
		t.Fatal("bystander payload corrupted")
	}
	// The server survived both: it still accepts and completes work.
	id3, err := srv.Submit(bystander)
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	srv.Quiesce()
	if _, _, err := srv.Result(id3); err != nil {
		t.Fatalf("post-panic session failed: %v", err)
	}
}

// quiesced adapts a Quiesce-completion channel to a poll condition.
func quiesced(done chan struct{}) func() bool {
	return func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
}

// advanceUntil drives a ManualWatch forward in steps until cond holds
// (watchdog selects are registered asynchronously by workers, so tests
// advance repeatedly rather than once).
func advanceUntil(t *testing.T, watch *serve.ManualWatch, step time.Duration, cond func() bool) {
	t.Helper()
	for i := 0; i < 30000; i++ {
		if cond() {
			return
		}
		watch.Advance(step)
		// Yield real time so the workers between fake-clock waits can run;
		// a tight Advance loop would starve them.
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("condition never held while advancing the watch")
}

// TestSlowStepDeadline: a wedged round trips the deadline watchdog on
// the injected clock, fails only its session, and leaves the fleet
// serving.
func TestSlowStepDeadline(t *testing.T) {
	watch := serve.NewManualWatch()
	defer watch.Flush()
	slow := chaosSpec(13)
	srv := serve.NewServer(serve.Config{
		Workers:       2,
		RoundDeadline: time.Minute,
		Watch:         watch,
		Factory: Factory{
			Inner: serve.DefaultFactory(nil),
			Mode:  ModeSlow,
			Round: 1,
			Watch: watch,
			Only:  func(spec serve.SessionSpec) bool { return string(spec.Payload) == string(slow.Payload) },
		},
	})
	id, err := srv.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { srv.Quiesce(); close(done) }()
	advanceUntil(t, watch, time.Minute, quiesced(done))
	srv.Drain()
	if _, _, err := srv.Result(id); !errors.Is(err, serve.ErrRoundDeadline) {
		t.Fatalf("result error = %v, want ErrRoundDeadline", err)
	}
}

// TestTransientRetry: a driver failing transiently is retried with
// backoff on the injected clock and still delivers bit-exact.
func TestTransientRetry(t *testing.T) {
	watch := serve.NewManualWatch()
	defer watch.Flush()
	spec := chaosSpec(17)
	srv := serve.NewServer(serve.Config{
		Workers: 1,
		Watch:   watch,
		Retry:   serve.RetryPolicy{MaxRetries: 3},
		Factory: Factory{
			Inner: serve.DefaultFactory(nil),
			Mode:  ModeTransient,
			Round: 1,
			Fails: 2,
		},
	})
	id, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { srv.Quiesce(); close(done) }()
	advanceUntil(t, watch, time.Second, quiesced(done))
	srv.Drain()
	payload, _, err := srv.Result(id)
	if err != nil {
		t.Fatalf("retried session failed: %v", err)
	}
	if string(payload) != string(spec.Payload) {
		t.Fatal("retried session delivered wrong payload")
	}
}

// TestTransientRetryExhaustion: more failures than the budget fails the
// session with the transient error as cause.
func TestTransientRetryExhaustion(t *testing.T) {
	watch := serve.NewManualWatch()
	defer watch.Flush()
	srv := serve.NewServer(serve.Config{
		Workers: 1,
		Watch:   watch,
		Retry:   serve.RetryPolicy{MaxRetries: 2},
		Factory: Factory{
			Inner: serve.DefaultFactory(nil),
			Mode:  ModeTransient,
			Round: 1,
			Fails: 100,
		},
	})
	id, err := srv.Submit(chaosSpec(19))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { srv.Quiesce(); close(done) }()
	advanceUntil(t, watch, time.Second, quiesced(done))
	srv.Drain()
	if _, _, err := srv.Result(id); !serve.Transient(err) {
		t.Fatalf("result error = %v, want the transient cause", err)
	}
}

// TestDiskFullDegradesNotDies: a filling disk poisons the journal but
// the daemon keeps completing sessions; health reports degraded until
// a compaction on a refilled disk heals it.
func TestDiskFullDegradesNotDies(t *testing.T) {
	fs := NewBudgetFS(256)
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{Open: fs.Open, Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	srv := serve.NewServer(serve.Config{Workers: 1, Journal: j, CheckpointEvery: 1})
	cfg := Config{Seed: 23}.withDefaults()
	ids := make([]uint64, 2)
	for i := range ids {
		if ids[i], err = srv.Submit(cfg.specFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Quiesce()
	defer srv.Drain()
	for _, id := range ids {
		if _, _, err := srv.Result(id); err != nil {
			t.Fatalf("session %d failed under disk pressure: %v", id, err)
		}
	}
	h := srv.Health()
	if h.Ready() || !strings.Contains(h.Journal, "disk full") {
		t.Fatalf("health = %+v, want degraded by disk-full journal", h)
	}
	// Operator clears space: the next retirement triggers compaction,
	// which rewrites the journal and heals the daemon.
	fs.Refill(1 << 20)
	id, err := srv.Submit(cfg.specFor(0))
	if err != nil {
		t.Fatal(err)
	}
	srv.Quiesce()
	if _, _, err := srv.Result(id); err != nil {
		t.Fatalf("post-refill session failed: %v", err)
	}
	if h := srv.Health(); !h.Ready() {
		t.Fatalf("health after refill+compaction = %+v, want ready", h)
	}
}
