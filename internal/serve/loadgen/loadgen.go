// Package loadgen drives a serve.Server with a synthetic fleet of
// transfer sessions and reports throughput and latency: sessions/sec,
// p50/p99 simulated round latency, and bytes per session. It is the
// engine behind `rainbar-serve -loadtest` and the committed
// BENCH_<n>.json serve snapshots.
//
// loadgen lives under the serve determinism contract: every per-session
// seed is mixed from Config.Seed and the session index, the clock is
// injected (pass *obs.ManualClock for bit-reproducible reports), and the
// report depends only on the Config — never on worker interleaving.
package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"rainbar/internal/obs"
	"rainbar/internal/serve"
	"rainbar/internal/serve/journal"
	"rainbar/internal/workload"
)

// Config describes one load run.
type Config struct {
	// Fleet is the number of sessions to run (default 32).
	Fleet int
	// Workers sizes the server's stepping pool (default 4). Worker count
	// affects wall time only, never the report's deterministic fields.
	Workers int
	// PayloadBytes is the per-session payload size (default 400, a
	// multi-chunk transfer at the default geometry).
	PayloadBytes int
	// Seed is the base seed; session i's payload, link and fault seeds
	// are all mixed from (Seed, i).
	Seed int64
	// Recovery is the decode-recovery mode for every session (default
	// "combine", the full ladder).
	Recovery string
	// FaultSpecs are faults.ParseSpec strings rotated across the fleet
	// (session i gets FaultSpecs[i%len]); a per-session seed is appended
	// to each non-empty spec unless it already fixes one. Empty slice
	// means clean links.
	FaultSpecs []string
	// MaxRounds bounds each session's retransmission rounds (default 8).
	MaxRounds int
	// ScreenW, ScreenH, Block set the barcode geometry (default 400x192,
	// block 8 — the smallest valid layout, keeping smoke runs fast).
	ScreenW, ScreenH, Block int
	// DisplayRate is the sender rate in fps (default 10).
	DisplayRate float64
	// Clock measures elapsed wall time. Required: loadgen is contract
	// code and cannot construct clocks. A *obs.ManualClock pins Elapsed
	// to the simulated air time, making the whole report deterministic.
	Clock obs.Clock
	// Recorder, when set, receives the server's serve_* metrics.
	Recorder obs.Recorder
	// JournalDir, when non-empty, runs the fleet durably: the server
	// journals every admission, checkpoint and retirement to this
	// directory, so the run measures the fsync policy's throughput cost.
	JournalDir string
	// Fsync is the journal durability policy (JournalDir runs only).
	Fsync journal.Fsync
	// CheckpointEvery is the per-session checkpoint round interval
	// (JournalDir runs only; 0 = the server default).
	CheckpointEvery int
}

func (cfg Config) withDefaults() Config {
	if cfg.Fleet <= 0 {
		cfg.Fleet = 32
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 400
	}
	if cfg.Recovery == "" {
		cfg.Recovery = "combine"
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 8
	}
	if cfg.ScreenW == 0 && cfg.ScreenH == 0 && cfg.Block == 0 {
		cfg.ScreenW, cfg.ScreenH, cfg.Block = 400, 192, 8
	}
	if cfg.DisplayRate <= 0 {
		cfg.DisplayRate = 10
	}
	return cfg
}

// Report is one load run's outcome. All fields except Elapsed and
// SessionsPerSec are pure functions of the Config; with a manual clock
// those two are as well.
type Report struct {
	Fleet, Workers    int
	Completed, Failed int
	// Rounds is the total display rounds stepped across the fleet.
	Rounds int
	// BytesDelivered sums the payload bytes of completed sessions.
	BytesDelivered int
	// SimAir is the fleet's cumulative simulated display time.
	SimAir time.Duration
	// RoundP50, RoundP99 are percentiles of per-round simulated display
	// time across every round of every session.
	RoundP50, RoundP99 time.Duration
	// Elapsed is the run's clock time (simulated air time under a manual
	// clock that nothing else advances).
	Elapsed time.Duration
	// SessionsPerSec is Fleet over Elapsed.
	SessionsPerSec float64
	// BytesPerSession is BytesDelivered over Completed (0 when none).
	BytesPerSession float64
	// JournalRecords is the number of records the run appended to the
	// journal (0 on journal-less runs). Deterministic for a given Config:
	// each session journals one submit, its round-interval checkpoints
	// and one terminal record, regardless of worker interleaving.
	JournalRecords int
}

// mix derives a per-session seed stream from the base seed: splitmix64
// over (base, n), matching the serve package's per-round mixing discipline.
func mix(base int64, n uint64) int64 {
	x := uint64(base) + 0x9E3779B97F4A7C15*(n+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// specFor builds session i's spec from the run config.
func (cfg Config) specFor(i int) serve.SessionSpec {
	seed := mix(cfg.Seed, uint64(i))
	spec := serve.SessionSpec{
		Payload:     workload.Text(cfg.PayloadBytes, seed),
		ScreenW:     cfg.ScreenW,
		ScreenH:     cfg.ScreenH,
		Block:       cfg.Block,
		DisplayRate: cfg.DisplayRate,
		CamSeed:     mix(seed, 1),
		Recovery:    cfg.Recovery,
		MaxRounds:   cfg.MaxRounds,
	}
	spec.Channel.Seed = mix(seed, 2)
	if len(cfg.FaultSpecs) > 0 {
		fs := cfg.FaultSpecs[i%len(cfg.FaultSpecs)]
		if fs != "" && !strings.Contains(fs, "seed=") {
			// faults.ParseSpec reads the seed through a float64, so keep
			// the mixed value inside its exactly-representable range.
			fs = fmt.Sprintf("%s,seed=%d", fs, mix(seed, 3)&0x7FFFFFFF)
		}
		spec.Faults = fs
	}
	return spec
}

// journalCounter tallies journal record appends (any kind label) on top
// of the caller's recorder, so the report carries a records count even
// on recorder-less runs. Counts, not contents: the journal itself never
// depends on it.
type journalCounter struct {
	inner obs.Recorder
	n     int64
}

func (c *journalCounter) Inc(name string, delta int64) {
	if strings.HasPrefix(name, obs.MServeJournalRecords) {
		atomic.AddInt64(&c.n, delta)
	}
	c.inner.Inc(name, delta)
}
func (c *journalCounter) Observe(name string, v float64) { c.inner.Observe(name, v) }
func (c *journalCounter) Span(name string) func()        { return c.inner.Span(name) }

// Run executes the fleet to completion and aggregates the report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Clock == nil {
		return nil, fmt.Errorf("loadgen: Config.Clock is required (inject obs.NewWallClock() or a *obs.ManualClock)")
	}
	start := cfg.Clock.Now()
	var jnl *journal.Journal
	counter := &journalCounter{inner: obs.OrNop(cfg.Recorder)}
	if cfg.JournalDir != "" {
		var err error
		jnl, err = journal.Open(cfg.JournalDir, journal.Options{
			Fsync:    cfg.Fsync,
			Recorder: counter,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: open journal: %w", err)
		}
	}
	srv := serve.NewServer(serve.Config{
		MaxSessions:     cfg.Fleet,
		Workers:         cfg.Workers,
		Recorder:        cfg.Recorder,
		Journal:         jnl,
		CheckpointEvery: cfg.CheckpointEvery,
	})
	for i := 0; i < cfg.Fleet; i++ {
		if _, err := srv.Submit(cfg.specFor(i)); err != nil {
			srv.Stop()
			if jnl != nil {
				jnl.Close()
			}
			return nil, fmt.Errorf("loadgen: submit session %d: %w", i, err)
		}
	}
	srv.Drain()
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			return nil, fmt.Errorf("loadgen: close journal: %w", err)
		}
	}

	r := &Report{
		Fleet:          cfg.Fleet,
		Workers:        cfg.Workers,
		JournalRecords: int(atomic.LoadInt64(&counter.n)),
	}
	var airs []time.Duration
	for _, info := range srv.Sessions() {
		if info.State == serve.StateDone {
			r.Completed++
			r.BytesDelivered += info.Bytes
		} else {
			r.Failed++
		}
		r.Rounds += info.Rounds
		r.SimAir += info.Air
		airs = append(airs, info.RoundAirs...)
	}
	sort.Slice(airs, func(i, j int) bool { return airs[i] < airs[j] })
	r.RoundP50 = quantile(airs, 0.50)
	r.RoundP99 = quantile(airs, 0.99)
	if r.Completed > 0 {
		r.BytesPerSession = float64(r.BytesDelivered) / float64(r.Completed)
	}
	r.Elapsed = cfg.Clock.Now() - start
	if r.Elapsed <= 0 {
		// A manual clock nothing advanced reads as zero elapsed; define
		// throughput against simulated air so the report stays meaningful
		// and byte-reproducible.
		r.Elapsed = r.SimAir
	}
	if r.Elapsed > 0 {
		r.SessionsPerSec = float64(r.Fleet) / r.Elapsed.Seconds()
	}
	return r, nil
}

// quantile reads the q-th quantile from an ascending slice (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Table renders the report as the loadtest's fixed-format text block.
// The layout is byte-stable for a given report (golden-tested), so CI
// can diff it across runs.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rainbar-serve loadtest\n")
	fmt.Fprintf(&b, "  fleet           %d\n", r.Fleet)
	fmt.Fprintf(&b, "  workers         %d\n", r.Workers)
	fmt.Fprintf(&b, "  completed       %d\n", r.Completed)
	fmt.Fprintf(&b, "  failed          %d\n", r.Failed)
	fmt.Fprintf(&b, "  rounds          %d\n", r.Rounds)
	fmt.Fprintf(&b, "  sim air         %v\n", r.SimAir)
	fmt.Fprintf(&b, "  p50 round       %v\n", r.RoundP50)
	fmt.Fprintf(&b, "  p99 round       %v\n", r.RoundP99)
	fmt.Fprintf(&b, "  bytes/session   %.1f\n", r.BytesPerSession)
	fmt.Fprintf(&b, "  sessions/sec    %.3f\n", r.SessionsPerSec)
	if r.JournalRecords > 0 {
		fmt.Fprintf(&b, "  journal records %d\n", r.JournalRecords)
	}
	return b.String()
}
