package loadgen

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rainbar/internal/obs"
)

var update = flag.Bool("update", false, "rewrite testdata/golden_loadgen.txt from the current harness output")

const goldenPath = "testdata/golden_loadgen.txt"

// goldenConfig is the fixed fleet whose report is pinned byte-for-byte:
// a mixed clean/lossy fleet with a manual clock, so every field of the
// report — percentiles and throughput included — is deterministic.
func goldenConfig(workers int) Config {
	return Config{
		Fleet:        6,
		Workers:      workers,
		Seed:         42,
		PayloadBytes: 900,
		FaultSpecs:   []string{"", "drop=0.8,occlude=0.5"},
		MaxRounds:    6,
		Clock:        &obs.ManualClock{},
	}
}

// TestGoldenReport pins the loadtest report. A diff here means either an
// intentional pipeline/harness change (regenerate with `go test
// ./internal/serve/loadgen -run TestGoldenReport -update`) or a lost
// determinism guarantee.
func TestGoldenReport(t *testing.T) {
	rep, err := Run(goldenConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Table()

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("loadtest report changed (regenerate with -update if intentional)\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	if rep.Completed == 0 {
		t.Fatal("degenerate golden fleet: no session completed")
	}
	if rep.Rounds <= rep.Fleet {
		t.Fatalf("degenerate golden fleet: %d rounds for %d sessions — the lossy slice is not retransmitting", rep.Rounds, rep.Fleet)
	}
	if rep.RoundP99 <= 0 || rep.SessionsPerSec <= 0 {
		t.Fatalf("report has unpopulated latency/throughput: %+v", rep)
	}
}

// TestReportWorkerInvariance pins the harness's determinism contract:
// the report (not just the payloads) is identical at any worker count.
func TestReportWorkerInvariance(t *testing.T) {
	a, err := Run(goldenConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(goldenConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	// Workers is the one field that is supposed to differ.
	b.Workers = a.Workers
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("report depends on worker count:\n 1: %+v\n 8: %+v", a, b)
	}
}

// TestRunRequiresClock pins the contract-driven API shape: loadgen never
// constructs a clock behind the caller's back.
func TestRunRequiresClock(t *testing.T) {
	if _, err := Run(Config{Fleet: 1}); err == nil {
		t.Fatal("Run accepted a nil clock")
	}
}
