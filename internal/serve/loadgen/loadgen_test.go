package loadgen

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rainbar/internal/obs"
	"rainbar/internal/serve/journal"
)

var update = flag.Bool("update", false, "rewrite testdata/golden_loadgen.txt from the current harness output")

const goldenPath = "testdata/golden_loadgen.txt"

// goldenConfig is the fixed fleet whose report is pinned byte-for-byte:
// a mixed clean/lossy fleet with a manual clock, so every field of the
// report — percentiles and throughput included — is deterministic.
func goldenConfig(workers int) Config {
	return Config{
		Fleet:        6,
		Workers:      workers,
		Seed:         42,
		PayloadBytes: 900,
		FaultSpecs:   []string{"", "drop=0.8,occlude=0.5"},
		MaxRounds:    6,
		Clock:        &obs.ManualClock{},
	}
}

// TestGoldenReport pins the loadtest report. A diff here means either an
// intentional pipeline/harness change (regenerate with `go test
// ./internal/serve/loadgen -run TestGoldenReport -update`) or a lost
// determinism guarantee.
func TestGoldenReport(t *testing.T) {
	rep, err := Run(goldenConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Table()

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("loadtest report changed (regenerate with -update if intentional)\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	if rep.Completed == 0 {
		t.Fatal("degenerate golden fleet: no session completed")
	}
	if rep.Rounds <= rep.Fleet {
		t.Fatalf("degenerate golden fleet: %d rounds for %d sessions — the lossy slice is not retransmitting", rep.Rounds, rep.Fleet)
	}
	if rep.RoundP99 <= 0 || rep.SessionsPerSec <= 0 {
		t.Fatalf("report has unpopulated latency/throughput: %+v", rep)
	}
}

// TestReportWorkerInvariance pins the harness's determinism contract:
// the report (not just the payloads) is identical at any worker count.
func TestReportWorkerInvariance(t *testing.T) {
	a, err := Run(goldenConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(goldenConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	// Workers is the one field that is supposed to differ.
	b.Workers = a.Workers
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("report depends on worker count:\n 1: %+v\n 8: %+v", a, b)
	}
}

// TestRunRequiresClock pins the contract-driven API shape: loadgen never
// constructs a clock behind the caller's back.
func TestRunRequiresClock(t *testing.T) {
	if _, err := Run(Config{Fleet: 1}); err == nil {
		t.Fatal("Run accepted a nil clock")
	}
}

// TestJournaledRunCountsRecords: a JournalDir run journals the whole
// fleet (one submit + one terminal per session, plus the per-round
// checkpoints), the count lands in the report and its table row, and —
// like every other report field — it is invariant under worker count.
func TestJournaledRunCountsRecords(t *testing.T) {
	journaled := func(workers int) Config {
		cfg := goldenConfig(workers)
		cfg.JournalDir = t.TempDir()
		cfg.Fsync = journal.FsyncAlways
		cfg.CheckpointEvery = 1
		return cfg
	}
	a, err := Run(journaled(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.JournalRecords < 2*a.Fleet {
		t.Fatalf("journal records = %d, want at least submit+terminal per session (fleet %d)", a.JournalRecords, a.Fleet)
	}
	if a.JournalRecords <= 2*a.Fleet {
		t.Fatalf("journal records = %d: no checkpoints flowed at CheckpointEvery=1", a.JournalRecords)
	}
	if !strings.Contains(a.Table(), fmt.Sprintf("journal records %d\n", a.JournalRecords)) {
		t.Fatalf("table missing the journal row:\n%s", a.Table())
	}
	b, err := Run(journaled(8))
	if err != nil {
		t.Fatal(err)
	}
	if b.JournalRecords != a.JournalRecords {
		t.Fatalf("journal record count depends on workers: %d vs %d", a.JournalRecords, b.JournalRecords)
	}
}
