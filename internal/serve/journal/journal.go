// Package journal is rainbar-serve's durability layer: an append-only,
// CRC-framed, versioned write-ahead log of session lifecycle records.
// The daemon appends a Submit record when it admits a session, a
// Checkpoint record (the serve snapshot envelope, opaque bytes here) at
// configurable round intervals, and a Terminal record when the session
// ends; serve.Recover folds a replayed journal back into live sessions
// that resume bit-identically through the per-round reseeded restore
// path.
//
// The format is crash-tolerant by construction: every frame carries its
// own length and CRC-32, so replay stops at the first torn or corrupt
// frame and keeps everything before it — a partial append (power loss
// mid-write) costs at most the records after the last durable frame,
// never the whole journal, and never a panic. Fsync policy is
// configurable (always / every-N-records / off) because it is the whole
// durability-vs-throughput trade; BENCH_3.json records the cost of each
// setting.
//
// journal is a determinism-contract package: record bytes are a pure
// function of the record (fixed little-endian framing, no timestamps,
// no randomness), so two daemons journaling the same admissions produce
// byte-identical logs — which is what lets the chaos harness simulate a
// crash at any record boundary by replaying a prefix.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"rainbar/internal/obs"
)

// Classified replay errors; match with errors.Is. Only the file header
// can fail classification — a damaged frame truncates replay instead
// (see Replay).
var (
	// ErrBadJournal reports bytes that are not a journal at all.
	ErrBadJournal = errors.New("journal: malformed journal")
	// ErrJournalVersion reports an unsupported format version.
	ErrJournalVersion = errors.New("journal: unsupported version")
)

// journal file format, version 1 (all integers little-endian):
//
//	offset size
//	0      4    magic "RBJL"
//	4      2    version (currently 1)
//	6...        frames, each:
//	              4  payload length N
//	              N  payload: kind byte, u64 session id, kind-specific rest
//	              4  CRC-32 (IEEE) over the payload
//
// The kind-specific rest needs no inner length prefixes: each kind has
// at most one variable-length field, bounded by the frame.
const (
	journalMagic   = "RBJL"
	journalVersion = 1
	headerLen      = 6
	// maxFrame bounds one frame's payload; a checkpoint embeds a snapshot
	// envelope whose spec payload is capped at 16 MiB by serve admission,
	// so a frame claiming more than 64 MiB is corruption, not data.
	maxFrame = 64 << 20
)

// FileName is the journal file inside its directory.
const FileName = "serve.journal"

// Kind discriminates journal records.
type Kind uint8

const (
	// KindSubmit records a session admission: ID plus the SessionSpec
	// JSON needed to rebuild the deterministic link from round zero.
	KindSubmit Kind = 1
	// KindCheckpoint records a round-boundary snapshot: ID plus the
	// serve snapshot envelope (opaque to the journal). A checkpoint
	// supersedes the session's Submit record and any older checkpoints.
	KindCheckpoint Kind = 2
	// KindTerminal records the end of a session: ID, final state byte,
	// and the terminal error text ("" for a clean delivery). A terminal
	// record supersedes everything else for its ID — recovery must not
	// resurrect a finished session.
	KindTerminal Kind = 3
)

// String returns the record-kind name (used as the obs label).
func (k Kind) String() string {
	switch k {
	case KindSubmit:
		return "submit"
	case KindCheckpoint:
		return "checkpoint"
	case KindTerminal:
		return "terminal"
	}
	return "unknown"
}

// Record is one journal entry. Exactly the fields implied by Kind are
// meaningful; the rest stay zero.
type Record struct {
	// Kind says which lifecycle event this is.
	Kind Kind
	// ID is the session id in the daemon that wrote the record.
	ID uint64
	// Spec is the SessionSpec JSON (KindSubmit only).
	Spec []byte
	// Snapshot is the serve snapshot envelope (KindCheckpoint only);
	// the journal treats it as opaque bytes — the envelope carries its
	// own version and CRC.
	Snapshot []byte
	// State is the final lifecycle state byte (KindTerminal only).
	State uint8
	// Err is the terminal error text, "" for success (KindTerminal only).
	Err string
}

// encodeFrame serializes one record as a complete frame
// (length + payload + CRC). Record bytes are a pure function of the
// record, so equal journals are byte-equal.
func encodeFrame(rec Record) []byte {
	var body []byte
	switch rec.Kind {
	case KindSubmit:
		body = rec.Spec
	case KindCheckpoint:
		body = rec.Snapshot
	case KindTerminal:
		body = append([]byte{rec.State}, rec.Err...)
	}
	payload := make([]byte, 0, 9+len(body))
	payload = append(payload, byte(rec.Kind))
	payload = binary.LittleEndian.AppendUint64(payload, rec.ID)
	payload = append(payload, body...)
	frame := make([]byte, 0, 4+len(payload)+4)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	return frame
}

// decodeFrame parses one CRC-validated frame payload. A false ok means
// the frame is structurally invalid even though its CRC matched (an
// encoder from the future, or corruption that collided the CRC) — the
// caller truncates there, same as a torn frame.
func decodeFrame(payload []byte) (Record, bool) {
	if len(payload) < 9 {
		return Record{}, false
	}
	rec := Record{Kind: Kind(payload[0]), ID: binary.LittleEndian.Uint64(payload[1:])}
	body := payload[9:]
	switch rec.Kind {
	case KindSubmit:
		rec.Spec = append([]byte(nil), body...)
	case KindCheckpoint:
		rec.Snapshot = append([]byte(nil), body...)
	case KindTerminal:
		if len(body) < 1 {
			return Record{}, false
		}
		rec.State = body[0]
		rec.Err = string(body[1:])
	default:
		return Record{}, false
	}
	return rec, true
}

// Replay parses journal bytes. It returns the records up to the first
// damaged frame and the byte offset where valid data ends; a torn or
// corrupt tail is NOT an error — it is truncated, which is exactly the
// crash-recovery semantics an append-only log wants. Only a header that
// is not a journal at all fails, with a classified error
// (ErrBadJournal, ErrJournalVersion). Replay never panics on any input.
func Replay(data []byte) ([]Record, int, error) {
	header := []byte(journalMagic)
	header = binary.LittleEndian.AppendUint16(header, journalVersion)
	if len(data) < headerLen {
		// A prefix of the header is a torn header write: an empty journal.
		// Anything else is not a journal.
		if string(data) == string(header[:len(data)]) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("%w: %d-byte header is not a journal prefix", ErrBadJournal, len(data))
	}
	if string(data[:4]) != journalMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrBadJournal)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != journalVersion {
		return nil, 0, fmt.Errorf("%w: version %d (want %d)", ErrJournalVersion, v, journalVersion)
	}
	var recs []Record
	off := headerLen
	for {
		rest := data[off:]
		if len(rest) < 4 {
			return recs, off, nil
		}
		n := binary.LittleEndian.Uint32(rest)
		if uint64(n) > maxFrame || uint64(4+n+4) > uint64(len(rest)) {
			return recs, off, nil
		}
		payload := rest[4 : 4+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4+n:]) {
			return recs, off, nil
		}
		rec, ok := decodeFrame(payload)
		if !ok {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += int(4 + n + 4)
	}
}

// Fsync is the durability policy for appends.
type Fsync uint8

const (
	// FsyncInterval syncs every Options.SyncEvery appends (the default):
	// bounded data loss at a fraction of FsyncAlways's cost.
	FsyncInterval Fsync = iota
	// FsyncAlways syncs after every append: no acknowledged record is
	// ever lost, at the price of one fsync per record.
	FsyncAlways
	// FsyncOff never syncs; the OS flushes when it pleases. Crash
	// durability degrades to "whatever made it to disk", but replay
	// still truncates cleanly at the torn tail.
	FsyncOff
)

// String returns the policy name (the -fsync flag value).
func (f Fsync) String() string {
	switch f {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return "unknown"
}

// ParseFsync parses a -fsync flag value.
func ParseFsync(s string) (Fsync, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval or off)", s)
}

// File is the slice of *os.File the journal writes through. The chaos
// harness substitutes error-injecting implementations to simulate a
// filling disk.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OpenFunc opens a file for appending (and creates it if absent). The
// default uses the os package; chaos injects failures here.
type OpenFunc func(path string) (File, error)

func osOpen(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Options configures a journal.
type Options struct {
	// Fsync is the append durability policy (default FsyncInterval).
	Fsync Fsync
	// SyncEvery is the FsyncInterval period in records (default 16).
	// Counting records instead of wall time keeps the journal's disk
	// behavior deterministic for a given record sequence.
	SyncEvery int
	// Open, when set, replaces the os-backed file opener for appends and
	// compaction rewrites (fault injection). Truncation of a torn tail
	// and the final rename of a compaction stay os-level.
	Open OpenFunc
	// Recorder, when set, counts appended records by kind. Journal
	// contents never depend on it.
	Recorder obs.Recorder
}

// Journal is an open journal file positioned for appending. Methods are
// safe for concurrent use. Write failures are sticky: the first failed
// append or sync poisons the journal (Err reports it, the daemon's
// health turns degraded) until a successful Compact rewrites the file.
// The server deliberately keeps serving with a poisoned journal —
// availability over durability; the operator sees it on /healthz.
type Journal struct {
	dir  string
	path string
	opts Options

	mu       sync.Mutex
	f        File
	replayed []Record
	appended int // records appended since open or last compact
	unsynced int // records appended since last sync
	err      error
}

// Open replays (and, if its tail is torn, repairs) the journal in dir,
// creating directory and file as needed, and returns it positioned for
// appending. Replay failures are classified (ErrBadJournal,
// ErrJournalVersion); a torn or corrupt tail is truncated away, never
// an error.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 16
	}
	open := opts.Open
	if open == nil {
		open = osOpen
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("journal: %w", err)
	}
	recs, tail, err := Replay(data)
	if err != nil {
		return nil, err
	}
	if tail < len(data) {
		// Torn tail from a mid-append crash: discard it so the next frame
		// lands on a valid boundary instead of extending the damage.
		if err := os.Truncate(path, int64(tail)); err != nil {
			return nil, fmt.Errorf("journal: repair torn tail: %w", err)
		}
	}
	f, err := open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, path: path, opts: opts, f: f, replayed: recs}
	if tail == 0 {
		if err := j.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

func (j *Journal) writeHeader() error {
	header := []byte(journalMagic)
	header = binary.LittleEndian.AppendUint16(header, journalVersion)
	if _, err := j.f.Write(header); err != nil {
		return fmt.Errorf("journal: write header: %w", err)
	}
	if j.opts.Fsync != FsyncOff {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync header: %w", err)
		}
	}
	return nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// Records returns the records replayed at Open, oldest first.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.replayed...)
}

// Appended returns the number of records appended since Open or the
// last successful Compact (the server's compaction trigger).
func (j *Journal) Appended() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Err returns the sticky write failure, nil while healthy.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Append writes one record and applies the fsync policy. The first
// failure is sticky: every later Append returns it without touching the
// file, until a Compact succeeds.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if _, err := j.f.Write(encodeFrame(rec)); err != nil {
		j.err = fmt.Errorf("journal: append: %w", err)
		return j.err
	}
	j.appended++
	j.unsynced++
	if j.opts.Fsync == FsyncAlways || (j.opts.Fsync == FsyncInterval && j.unsynced >= j.opts.SyncEvery) {
		if err := j.f.Sync(); err != nil {
			j.err = fmt.Errorf("journal: sync: %w", err)
			return j.err
		}
		j.unsynced = 0
	}
	obs.OrNop(j.opts.Recorder).Inc(obs.With(obs.MServeJournalRecords, "kind", rec.Kind.String()), 1)
	return nil
}

// Sync forces outstanding appends to disk regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("journal: sync: %w", err)
		return j.err
	}
	j.unsynced = 0
	return nil
}

// Compact atomically replaces the journal with just the given records
// (header + keep, temp file + rename), then repositions for appending.
// A successful compact clears a sticky write error: the poisoned file
// is gone and the fresh one proved writable. On failure the old file
// and its append handle stay in place and the sticky error is set.
func (j *Journal) Compact(keep []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	open := j.opts.Open
	if open == nil {
		open = osOpen
	}
	tmp := j.path + ".tmp"
	// A stale tmp from a crashed compaction would be appended to; start clean.
	if err := os.Remove(tmp); err != nil && !errors.Is(err, os.ErrNotExist) {
		j.err = fmt.Errorf("journal: compact: %w", err)
		return j.err
	}
	buf := []byte(journalMagic)
	buf = binary.LittleEndian.AppendUint16(buf, journalVersion)
	for _, rec := range keep {
		buf = append(buf, encodeFrame(rec)...)
	}
	f, err := open(tmp)
	if err != nil {
		j.err = fmt.Errorf("journal: compact: %w", err)
		return j.err
	}
	_, err = f.Write(buf)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, j.path)
	}
	if err != nil {
		os.Remove(tmp)
		j.err = fmt.Errorf("journal: compact: %w", err)
		return j.err
	}
	old := j.f
	nf, err := open(j.path)
	if err != nil {
		j.err = fmt.Errorf("journal: compact: reopen: %w", err)
		return j.err
	}
	old.Close()
	j.f = nf
	j.appended = 0
	j.unsynced = 0
	j.err = nil
	obs.OrNop(j.opts.Recorder).Inc(obs.MServeJournalCompactions, 1)
	return nil
}

// Close syncs (best effort under FsyncOff too — a clean shutdown should
// be durable) and closes the file. The journal is unusable afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	if err != nil && j.err == nil {
		j.err = fmt.Errorf("journal: close: %w", err)
	}
	return err
}
