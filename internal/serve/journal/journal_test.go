package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{Kind: KindSubmit, ID: 1, Spec: []byte(`{"Payload":"aGk="}`)},
		{Kind: KindSubmit, ID: 2, Spec: []byte(`{"Payload":"eW8="}`)},
		{Kind: KindCheckpoint, ID: 1, Snapshot: bytes.Repeat([]byte{0xAB, 0xCD}, 50)},
		{Kind: KindTerminal, ID: 2, State: 4, Err: "serve: session panicked: boom"},
		{Kind: KindCheckpoint, ID: 1, Snapshot: bytes.Repeat([]byte{0x11}, 7)},
		{Kind: KindTerminal, ID: 1, State: 3},
	}
}

func openAppend(t *testing.T, dir string, recs []Record, opts Options) {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestJournalRoundTrip proves append → reopen → replay fidelity for
// every record kind and every fsync policy.
func TestJournalRoundTrip(t *testing.T) {
	for _, fsync := range []Fsync{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(fsync.String(), func(t *testing.T) {
			dir := t.TempDir()
			recs := testRecords()
			openAppend(t, dir, recs, Options{Fsync: fsync, SyncEvery: 2})

			j, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			if got := j.Records(); !reflect.DeepEqual(got, recs) {
				t.Fatalf("replayed %+v\nwant %+v", got, recs)
			}
			if j.Appended() != 0 {
				t.Fatalf("Appended after open = %d, want 0", j.Appended())
			}
		})
	}
}

// TestJournalDeterministicBytes proves journal content is a pure
// function of the record sequence — the property that lets the chaos
// harness rebuild any crash prefix through the public API.
func TestJournalDeterministicBytes(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	openAppend(t, dirA, testRecords(), Options{})
	openAppend(t, dirB, testRecords(), Options{Fsync: FsyncAlways})
	a, err := os.ReadFile(filepath.Join(dirA, FileName))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, FileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same records produced different journal bytes")
	}
}

// TestJournalTornTail simulates a crash mid-append: garbage after the
// last complete frame must be truncated on reopen, keeping every record
// before it, and appends must continue cleanly from the repaired tail.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	openAppend(t, dir, recs, Options{})
	path := filepath.Join(dir, FileName)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, torn := range [][]byte{
		{0x03},                      // length prefix cut short
		{0x20, 0x00, 0x00, 0x00},    // full length, no payload
		{0x05, 0x00, 0x00, 0x00, 1}, // payload cut short
		encodeFrame(Record{Kind: KindSubmit, ID: 9})[:11], // real frame cut mid-payload
	} {
		if err := os.WriteFile(path, append(append([]byte(nil), clean...), torn...), 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open with torn tail %x: %v", torn, err)
		}
		if got := j.Records(); !reflect.DeepEqual(got, recs) {
			t.Fatalf("torn tail %x damaged replay: got %d records, want %d", torn, len(got), len(recs))
		}
		extra := Record{Kind: KindSubmit, ID: 9, Spec: []byte("{}")}
		if err := j.Append(extra); err != nil {
			t.Fatal(err)
		}
		j.Close()
		j2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := j2.Records(); !reflect.DeepEqual(got, append(append([]Record(nil), recs...), extra)) {
			t.Fatalf("append after torn-tail repair lost records: %+v", got)
		}
		j2.Close()
	}
}

// TestJournalCorruptFrame: bit rot inside an interior frame truncates
// replay at that frame — the records before it survive, the ones after
// are sacrificed rather than trusted.
func TestJournalCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	openAppend(t, dir, recs, Options{})
	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the third frame's offset and flip a payload bit there.
	off := headerLen
	for i := 0; i < 2; i++ {
		off += int(4 + le32(data[off:]) + 4)
	}
	data[off+5] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, tail, err := Replay(data)
	if err != nil {
		t.Fatalf("corrupt interior frame must truncate, not error: %v", err)
	}
	if tail != off {
		t.Fatalf("replay tail = %d, want truncation at %d", tail, off)
	}
	if !reflect.DeepEqual(got, recs[:2]) {
		t.Fatalf("replay kept %d records, want the 2 before the corruption", len(got))
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// TestJournalHeaderErrors: bytes that are not a journal fail classified.
func TestJournalHeaderErrors(t *testing.T) {
	if _, _, err := Replay([]byte("NOTAJRNL")); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, _, err := Replay([]byte("xy")); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("short garbage: %v", err)
	}
	if _, _, err := Replay([]byte{'R', 'B', 'J', 'L', 99, 0}); !errors.Is(err, ErrJournalVersion) {
		t.Fatalf("future version: %v", err)
	}
	// Torn header prefixes are an empty journal, not an error.
	for _, pre := range []string{"", "R", "RBJ", "RBJL", "RBJL\x01"} {
		recs, tail, err := Replay([]byte(pre))
		if err != nil || len(recs) != 0 || tail != 0 {
			t.Fatalf("header prefix %q: recs=%d tail=%d err=%v", pre, len(recs), tail, err)
		}
	}
	// On-disk garbage must also fail Open, classified.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, FileName), []byte("NOTAJRNL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("Open on garbage: %v", err)
	}
}

// TestJournalCompact: compaction atomically replaces the file with the
// keep set, resets the append counter, and later appends extend it.
func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	keep := []Record{recs[4]} // session 1's latest checkpoint
	if err := j.Compact(keep); err != nil {
		t.Fatal(err)
	}
	if j.Appended() != 0 {
		t.Fatalf("Appended after compact = %d, want 0", j.Appended())
	}
	extra := Record{Kind: KindTerminal, ID: 1, State: 3}
	if err := j.Append(extra); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	want := append(append([]Record(nil), keep...), extra)
	if got := j2.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after compact+append: %+v\nwant %+v", got, want)
	}
}

// budgetFS doles out a byte budget across every file it opens; writes
// past it fail like a full disk.
type budgetFS struct{ left int }

type budgetFile struct {
	fs *budgetFS
	f  *os.File
}

func (fs *budgetFS) open(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &budgetFile{fs: fs, f: f}, nil
}

func (b *budgetFile) Write(p []byte) (int, error) {
	if b.fs.left < len(p) {
		return 0, fmt.Errorf("disk full")
	}
	b.fs.left -= len(p)
	return b.f.Write(p)
}
func (b *budgetFile) Sync() error  { return b.f.Sync() }
func (b *budgetFile) Close() error { return b.f.Close() }

// TestJournalDiskFullStickyAndHeal: the first failed write poisons the
// journal (every Append reports it, none panics), and a Compact once
// space is back heals it.
func TestJournalDiskFullStickyAndHeal(t *testing.T) {
	dir := t.TempDir()
	fs := &budgetFS{left: 64}
	j, err := Open(dir, Options{Open: fs.open, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var failed error
	for i := 0; i < 20 && failed == nil; i++ {
		failed = j.Append(Record{Kind: KindCheckpoint, ID: 1, Snapshot: bytes.Repeat([]byte{1}, 30)})
	}
	if failed == nil {
		t.Fatal("64-byte disk accepted 20 checkpoints")
	}
	if j.Err() == nil {
		t.Fatal("failed append did not stick")
	}
	if err := j.Append(Record{Kind: KindTerminal, ID: 1, State: 3}); err == nil {
		t.Fatal("append after sticky failure succeeded")
	}
	// A compaction attempted while the disk is still full must fail,
	// keep the sticky error, and leave the old journal bytes untouched
	// (regression: a shadowed error once let a failed compact rename an
	// empty temp file over the journal and report success).
	before, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact([]Record{{Kind: KindSubmit, ID: 2, Spec: []byte("{}")}}); err == nil {
		t.Fatal("Compact on a full disk reported success")
	}
	if j.Err() == nil {
		t.Fatal("failed compact cleared the sticky error")
	}
	after, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed compact modified the journal file")
	}

	// Space returns; compaction rewrites a fresh file and clears the
	// sticky error.
	fs.left = 1 << 20
	keep := []Record{{Kind: KindSubmit, ID: 2, Spec: []byte("{}")}}
	if err := j.Compact(keep); err != nil {
		t.Fatalf("Compact after disk recovery: %v", err)
	}
	if j.Err() != nil {
		t.Fatalf("sticky error survived successful compact: %v", j.Err())
	}
	if err := j.Append(Record{Kind: KindTerminal, ID: 2, State: 3}); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if got := len(j.Records()); got != 0 {
		t.Fatalf("Records() after compact = %d pre-open records, want 0", got)
	}
}

// TestJournalFsyncParse covers the flag parser both ways.
func TestJournalFsyncParse(t *testing.T) {
	for _, f := range []Fsync{FsyncAlways, FsyncInterval, FsyncOff} {
		got, err := ParseFsync(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFsync(%q) = %v, %v", f.String(), got, err)
		}
	}
	if got, err := ParseFsync(""); err != nil || got != FsyncInterval {
		t.Fatalf("empty policy = %v, %v, want interval default", got, err)
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
