package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay hammers Replay with arbitrary bytes: it must always
// return either a classified error (ErrBadJournal, ErrJournalVersion)
// or a valid replay whose tail offset is consistent — and it must never
// panic. Whatever replays must also re-encode to a journal whose replay
// is identical (append-only logs round-trip).
func FuzzJournalReplay(f *testing.F) {
	// Seed corpus: a real journal (every record kind), its truncations,
	// a bit-rotted copy, and header pathologies. The same seeds are
	// checked in under testdata/fuzz/FuzzJournalReplay.
	dir := f.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for _, rec := range []Record{
		{Kind: KindSubmit, ID: 1, Spec: []byte(`{"Payload":"aGk="}`)},
		{Kind: KindCheckpoint, ID: 1, Snapshot: bytes.Repeat([]byte{0xA5}, 64)},
		{Kind: KindTerminal, ID: 1, State: 3, Err: "x"},
	} {
		if err := j.Append(rec); err != nil {
			f.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)-3])
	f.Add(data[:headerLen+2])
	rotted := append([]byte(nil), data...)
	rotted[len(rotted)/2] ^= 0x10
	f.Add(rotted)
	f.Add([]byte{})
	f.Add([]byte("RBJL"))
	f.Add([]byte{'R', 'B', 'J', 'L', 2, 0})
	f.Add([]byte("RBSS not a journal"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, tail, err := Replay(data)
		if err != nil {
			if !errors.Is(err, ErrBadJournal) && !errors.Is(err, ErrJournalVersion) {
				t.Fatalf("unclassified replay error: %v", err)
			}
			if len(recs) != 0 || tail != 0 {
				t.Fatalf("error carried partial state: %d records, tail %d", len(recs), tail)
			}
			return
		}
		if tail < 0 || tail > len(data) {
			t.Fatalf("tail %d outside [0, %d]", tail, len(data))
		}
		// Round-trip: re-encoding the replayed records must replay to the
		// same records, completely (no torn tail in our own output).
		out := []byte(journalMagic)
		out = append(out, 1, 0)
		for _, rec := range recs {
			out = append(out, encodeFrame(rec)...)
		}
		recs2, tail2, err := Replay(out)
		if err != nil || tail2 != len(out) {
			t.Fatalf("re-encoded journal does not replay cleanly: tail %d/%d, %v", tail2, len(out), err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip kept %d of %d records", len(recs2), len(recs))
		}
	})
}
