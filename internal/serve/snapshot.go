package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"time"

	"rainbar/internal/colorspace"
	"rainbar/internal/core"
	"rainbar/internal/transport"
)

// Snapshot classified decode errors; match with errors.Is. Every decode
// failure maps to exactly one of these — corrupt or truncated input is
// rejected, never partially restored.
var (
	// ErrBadSnapshot reports structurally invalid snapshot bytes.
	ErrBadSnapshot = errors.New("serve: malformed snapshot")
	// ErrSnapshotVersion reports an unsupported format version.
	ErrSnapshotVersion = errors.New("serve: unsupported snapshot version")
	// ErrSnapshotChecksum reports a CRC mismatch (bit rot or truncation).
	ErrSnapshotChecksum = errors.New("serve: snapshot checksum mismatch")
)

// snapshot envelope format, version 2 (all integers little-endian):
//
//	offset size
//	0      4    magic "RBSS"
//	4      2    version (currently 2; version 1 lacked the driver
//	            state's trailing resume counter)
//	6      8    session id
//	14     1    session state byte
//	15     4    spec length NS, then NS bytes of SessionSpec JSON
//	...    4    driver-state length ND, then ND bytes (opaque to the
//	            envelope; the transport driver stores an xferState)
//	...    4    CRC-32 (IEEE) over every preceding byte
const (
	snapshotMagic   = "RBSS"
	snapshotVersion = 2
)

// Snapshot is a decoded session snapshot.
type Snapshot struct {
	// ID is the session id in the daemon that took the snapshot (a
	// restore assigns a fresh id).
	ID uint64
	// State is the session's lifecycle state at snapshot time.
	State State
	// Spec rebuilds the deterministic link.
	Spec SessionSpec
	// DriverState is the driver's opaque mid-transfer state.
	DriverState []byte
}

// EncodeSnapshot serializes a session snapshot into the versioned,
// CRC-guarded envelope.
func EncodeSnapshot(snap *Snapshot) ([]byte, error) {
	spec, err := json.Marshal(snap.Spec)
	if err != nil {
		return nil, fmt.Errorf("serve: encode snapshot spec: %w", err)
	}
	buf := make([]byte, 0, 15+4+len(spec)+4+len(snap.DriverState)+4)
	buf = append(buf, snapshotMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, snapshotVersion)
	buf = binary.LittleEndian.AppendUint64(buf, snap.ID)
	buf = append(buf, byte(snap.State))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(spec)))
	buf = append(buf, spec...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(snap.DriverState)))
	buf = append(buf, snap.DriverState...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodeSnapshot parses and validates a snapshot envelope. Corrupt or
// truncated input returns a classified error (ErrBadSnapshot,
// ErrSnapshotVersion, ErrSnapshotChecksum); it never panics and never
// returns partially restored state.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < 15+4+4+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrBadSnapshot, len(data))
	}
	if string(data[:4]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != snapshotVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrSnapshotVersion, v, snapshotVersion)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w", ErrSnapshotChecksum)
	}
	snap := &Snapshot{
		ID:    binary.LittleEndian.Uint64(data[6:]),
		State: State(data[14]),
	}
	if snap.State > StateCanceled {
		return nil, fmt.Errorf("%w: unknown state byte %d", ErrBadSnapshot, data[14])
	}
	rest := body[15:]
	specLen := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(specLen) > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: spec length %d exceeds payload", ErrBadSnapshot, specLen)
	}
	if err := json.Unmarshal(rest[:specLen], &snap.Spec); err != nil {
		return nil, fmt.Errorf("%w: spec: %w", ErrBadSnapshot, err)
	}
	rest = rest[specLen:]
	if len(rest) < 4 {
		return nil, fmt.Errorf("%w: driver-state length missing", ErrBadSnapshot)
	}
	stateLen := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(stateLen) != uint64(len(rest)) {
		return nil, fmt.Errorf("%w: driver-state length %d, %d bytes remain", ErrBadSnapshot, stateLen, len(rest))
	}
	snap.DriverState = append([]byte(nil), rest...)
	return snap, nil
}

// --- transport.XferState binary codec ---
//
// The driver-state payload is a flat field-by-field encoding: uvarints for
// counts, zigzag varints for signed values, IEEE-754 bits for floats, and
// explicit lengths everywhere. Maps are emitted in sorted key order so
// equal states encode to equal bytes. Every length read is bounded by the
// bytes actually remaining, so truncated input fails cleanly instead of
// allocating from attacker-controlled counts.

type sswriter struct{ buf []byte }

func (w *sswriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *sswriter) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *sswriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *sswriter) byte(v byte)    { w.buf = append(w.buf, v) }
func (w *sswriter) bytes(v []byte) { w.uvarint(uint64(len(v))); w.buf = append(w.buf, v...) }
func (w *sswriter) str(v string)   { w.bytes([]byte(v)) }

func (w *sswriter) boolByte(v bool) {
	if v {
		w.byte(1)
	} else {
		w.byte(0)
	}
}

type ssreader struct {
	buf []byte
	err error
}

func (r *ssreader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrBadSnapshot}, args...)...)
	}
}

func (r *ssreader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *ssreader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *ssreader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	return v
}

func (r *ssreader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.fail("truncated byte")
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *ssreader) boolByte() bool { return r.byteVal() != 0 }

// count reads a uvarint length and bounds it by the bytes remaining (each
// counted element occupies at least minElem bytes), so corrupt counts
// cannot drive huge allocations.
func (r *ssreader) count(minElem int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minElem < 1 {
		minElem = 1
	}
	if v > uint64(len(r.buf)/minElem) {
		r.fail("count %d exceeds %d remaining bytes", v, len(r.buf))
		return 0
	}
	return int(v)
}

func (r *ssreader) bytesVal() []byte {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	v := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return v
}

func (r *ssreader) str() string { return string(r.bytesVal()) }

// encodeXferState serializes a transport snapshot for the envelope.
func encodeXferState(st *transport.XferState) []byte {
	w := &sswriter{}
	w.uvarint(uint64(st.Round))
	w.uvarint(uint64(st.NextSeq))
	w.f64(st.Rate)
	w.uvarint(uint64(st.Stall))
	w.boolByte(st.Done)

	w.uvarint(uint64(len(st.Missing)))
	for _, ci := range st.Missing {
		w.uvarint(uint64(ci))
	}

	c := st.Collector
	w.boolByte(c.HaveMeta)
	w.varint(int64(c.Total))
	w.uvarint(uint64(c.FileLen))
	w.uvarint(uint64(c.App))
	cis := make([]int, 0, len(c.Chunks))
	for ci := range c.Chunks {
		cis = append(cis, ci)
	}
	sort.Ints(cis) // canonical chunk order: equal states → equal bytes
	w.uvarint(uint64(len(cis)))
	for _, ci := range cis {
		w.uvarint(uint64(ci))
		w.bytes(c.Chunks[ci])
	}

	if st.Combiner == nil {
		w.boolByte(false)
	} else {
		w.boolByte(true)
		w.uvarint(uint64(len(st.Combiner.Chunks)))
		for _, ch := range st.Combiner.Chunks {
			w.uvarint(uint64(ch.Index))
			w.uvarint(uint64(len(ch.Cells)))
			for _, cell := range ch.Cells {
				w.byte(byte(cell))
			}
			for _, conf := range ch.Conf {
				w.f64(conf)
			}
		}
	}

	encodeStats(w, &st.Stats)
	w.uvarint(uint64(st.Resumes))
	return w.buf
}

// decodeXferState parses the driver-state payload; errors wrap
// ErrBadSnapshot. Cross-field consistency (missing indices in range, soft
// table shapes, manifest agreement) is enforced a second time by
// transport.Session.Resume — this layer only guarantees structural sanity.
func decodeXferState(data []byte) (*transport.XferState, error) {
	r := &ssreader{buf: data}
	st := &transport.XferState{}
	st.Round = int(r.uvarint())
	st.NextSeq = uint16(r.uvarint())
	st.Rate = r.f64()
	st.Stall = int(r.uvarint())
	st.Done = r.boolByte()

	n := r.count(1)
	for i := 0; i < n && r.err == nil; i++ {
		st.Missing = append(st.Missing, int(r.uvarint()))
	}

	st.Collector.HaveMeta = r.boolByte()
	st.Collector.Total = int(r.varint())
	st.Collector.FileLen = int(r.uvarint())
	st.Collector.App = transport.AppType(r.uvarint())
	nChunks := r.count(2)
	if nChunks > 0 && r.err == nil {
		st.Collector.Chunks = make(map[int][]byte, nChunks)
		for i := 0; i < nChunks && r.err == nil; i++ {
			ci := int(r.uvarint())
			body := r.bytesVal()
			if _, dup := st.Collector.Chunks[ci]; dup {
				r.fail("duplicate collector chunk %d", ci)
			}
			st.Collector.Chunks[ci] = body
		}
	}
	if st.Collector.Chunks == nil {
		st.Collector.Chunks = map[int][]byte{}
	}

	if r.boolByte() {
		st.Combiner = &transport.CombinerState{}
		nt := r.count(2)
		for i := 0; i < nt && r.err == nil; i++ {
			ch := transport.CombinerChunk{Index: int(r.uvarint())}
			nc := r.count(1)
			if r.err == nil && nc > len(r.buf) {
				r.fail("soft table cells exceed payload")
			}
			for j := 0; j < nc && r.err == nil; j++ {
				ch.Cells = append(ch.Cells, colorspace.Color(r.byteVal()))
			}
			for j := 0; j < nc && r.err == nil; j++ {
				ch.Conf = append(ch.Conf, r.f64())
			}
			st.Combiner.Chunks = append(st.Combiner.Chunks, ch)
		}
	}

	decodeStats(r, &st.Stats)
	st.Resumes = int(r.uvarint())
	if r.err == nil && len(r.buf) != 0 {
		r.fail("%d trailing bytes", len(r.buf))
	}
	if r.err != nil {
		return nil, r.err
	}
	return st, nil
}

func encodeStats(w *sswriter, s *transport.Stats) {
	w.uvarint(uint64(s.Rounds))
	w.uvarint(uint64(s.FramesSent))
	w.uvarint(uint64(s.FramesNeeded))
	w.uvarint(uint64(s.ChunksDelivered))
	w.varint(int64(s.AirTime))
	w.f64(s.Goodput)
	w.uvarint(uint64(s.App))
	w.uvarint(uint64(s.RateFallbacks))
	w.f64(s.FinalDisplayRate)
	w.uvarint(uint64(s.FramesDropped))
	w.uvarint(uint64(s.LadderAttempts))
	w.uvarint(uint64(s.CombinedDecodes))

	rates := make([]float64, 0, len(s.RateRounds))
	for rate := range s.RateRounds {
		rates = append(rates, rate)
	}
	sort.Float64s(rates) // canonical map order for byte-stable snapshots
	w.uvarint(uint64(len(rates)))
	for _, rate := range rates {
		w.f64(rate)
		w.uvarint(uint64(s.RateRounds[rate]))
	}

	encodeStrMap(w, s.DecodeFailures, func(k core.FailureClass) string { return string(k) })
	encodeStrMap(w, s.FaultCounts, func(k string) string { return k })
	encodeStrMap(w, s.LadderSuccessesByHypothesis, func(k string) string { return k })
}

// encodeStrMap writes a string-keyed count map in sorted key order.
func encodeStrMap[K comparable](w *sswriter, m map[K]int, key func(K) string) {
	keys := make([]string, 0, len(m))
	byKey := make(map[string]int, len(m))
	for k, v := range m {
		keys = append(keys, key(k))
		byKey[key(k)] = v
	}
	sort.Strings(keys) // canonical map order for byte-stable snapshots
	w.uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.uvarint(uint64(byKey[k]))
	}
}

func decodeStats(r *ssreader, s *transport.Stats) {
	s.Rounds = int(r.uvarint())
	s.FramesSent = int(r.uvarint())
	s.FramesNeeded = int(r.uvarint())
	s.ChunksDelivered = int(r.uvarint())
	s.AirTime = time.Duration(r.varint())
	s.Goodput = r.f64()
	s.App = transport.AppType(r.uvarint())
	s.RateFallbacks = int(r.uvarint())
	s.FinalDisplayRate = r.f64()
	s.FramesDropped = int(r.uvarint())
	s.LadderAttempts = int(r.uvarint())
	s.CombinedDecodes = int(r.uvarint())

	if n := r.count(9); n > 0 && r.err == nil {
		s.RateRounds = make(map[float64]int, n)
		for i := 0; i < n && r.err == nil; i++ {
			rate := r.f64()
			s.RateRounds[rate] = int(r.uvarint())
		}
	}
	if n := r.count(2); n > 0 && r.err == nil {
		s.DecodeFailures = make(map[core.FailureClass]int, n)
		for i := 0; i < n && r.err == nil; i++ {
			s.DecodeFailures[core.FailureClass(r.str())] = int(r.uvarint())
		}
	}
	if n := r.count(2); n > 0 && r.err == nil {
		s.FaultCounts = make(map[string]int, n)
		for i := 0; i < n && r.err == nil; i++ {
			s.FaultCounts[r.str()] = int(r.uvarint())
		}
	}
	if n := r.count(2); n > 0 && r.err == nil {
		s.LadderSuccessesByHypothesis = make(map[string]int, n)
		for i := 0; i < n && r.err == nil; i++ {
			s.LadderSuccessesByHypothesis[r.str()] = int(r.uvarint())
		}
	}
}
