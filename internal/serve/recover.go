package serve

import (
	"encoding/json"
	"errors"
	"fmt"

	"rainbar/internal/obs"
	"rainbar/internal/serve/journal"
)

// RecoverReport summarizes what one Recover rebuilt.
type RecoverReport struct {
	// Sessions lists the recovered session ids. Recovery preserves
	// identity: a session keeps its pre-crash id, so handles held by
	// clients stay valid across a crash+recover cycle.
	Sessions []uint64
	// Checkpointed counts sessions resumed mid-transfer from their
	// latest checkpoint.
	Checkpointed int
	// Resubmitted counts sessions restarted from round zero (admitted
	// but never checkpointed before the crash — round outcomes are pure
	// functions of (spec, round), so a restart delivers the same bytes).
	Resubmitted int
	// Skipped counts journaled live sessions that failed re-admission
	// (corrupt embedded state, or the new server's MaxSessions bound).
	Skipped int
}

// Recover opens the journal in dir, folds its records into the set of
// sessions that were live at the crash, and starts a server (configured
// by cfg, which must not carry its own Journal) with each of them
// re-admitted under its pre-crash id: from its latest checkpoint when
// one exists, from its spec otherwise. Because every checkpoint sits on
// a round boundary and the link for round r is reseeded purely from
// (spec, r), the recovered fleet delivers payloads bit-identical to an
// uncrashed run.
//
// Sessions with a terminal record are not resurrected. A torn or
// corrupt journal tail was already truncated by journal.Open — the
// sessions whose last records it held simply recover from one
// checkpoint earlier. Before any session runs, the journal is compacted
// to exactly the live set (one record per session), so replaying it
// again after a second crash folds to the same fleet; the rewrite is an
// atomic rename, so a crash during Recover leaves the previous journal
// in force.
func Recover(dir string, opts journal.Options, cfg Config) (*Server, *RecoverReport, error) {
	if cfg.Journal != nil {
		return nil, nil, errors.New("serve: Recover opens its own journal; Config.Journal must be nil")
	}
	j, err := journal.Open(dir, opts)
	if err != nil {
		return nil, nil, err
	}

	// Fold per-session: last checkpoint wins, a terminal record trumps
	// everything. First-appearance order keeps recovery deterministic.
	type folded struct {
		id       uint64
		spec     []byte
		check    []byte
		terminal bool
		state    uint8
		errText  string
	}
	byID := make(map[uint64]*folded)
	var order []*folded
	var maxID uint64
	for _, rec := range j.Records() {
		if rec.ID > maxID {
			maxID = rec.ID
		}
		f := byID[rec.ID]
		if f == nil {
			f = &folded{id: rec.ID}
			byID[rec.ID] = f
			order = append(order, f)
		}
		switch rec.Kind {
		case journal.KindSubmit:
			f.spec = rec.Spec
		case journal.KindCheckpoint:
			f.check = rec.Snapshot
		case journal.KindTerminal:
			f.terminal = true
			f.state = rec.State
			f.errText = rec.Err
		}
	}

	live := make([]journal.Record, 0, len(order))
	liveMax := uint64(0)
	for _, f := range order {
		switch {
		case f.terminal:
			continue
		case f.check != nil:
			live = append(live, journal.Record{Kind: journal.KindCheckpoint, ID: f.id, Snapshot: f.check})
		case f.spec != nil:
			live = append(live, journal.Record{Kind: journal.KindSubmit, ID: f.id, Spec: f.spec})
		default:
			continue
		}
		if f.id > liveMax {
			liveMax = f.id
		}
	}
	if maxID > liveMax {
		// Persist the id high-water mark through the compaction: the
		// highest journaled id is retired, and without its terminal record
		// a recovery after a second crash would re-issue retired ids,
		// letting stale client handles alias new sessions.
		if f := byID[maxID]; f != nil && f.terminal {
			live = append(live, journal.Record{Kind: journal.KindTerminal, ID: maxID, State: f.state, Err: f.errText})
		} else if maxID > 0 {
			live = append(live, journal.Record{Kind: journal.KindTerminal, ID: maxID, State: uint8(StateCanceled), Err: idRatchetErr})
		}
	}
	if err := j.Compact(live); err != nil {
		j.Close()
		return nil, nil, fmt.Errorf("serve: recover: %w", err)
	}

	cfg.Journal = j
	s := NewServer(cfg)
	// Never reuse any journaled id — not even a retired one — so a
	// pre-crash handle can go stale but can never alias a new session.
	s.mu.Lock()
	s.nextID = maxID
	s.mu.Unlock()

	rep := &RecoverReport{}
	for _, rec := range live {
		if rec.Kind == journal.KindTerminal {
			continue // the id high-water record; nothing to run
		}
		id, err := s.readmit(rec)
		if err != nil {
			// One damaged session must not take the rest of the fleet
			// down with it; the operator sees the gap in the report.
			rep.Skipped++
			continue
		}
		if rec.Kind == journal.KindCheckpoint {
			rep.Checkpointed++
		} else {
			rep.Resubmitted++
		}
		rep.Sessions = append(rep.Sessions, id)
		s.rec.Inc(obs.MServeReplays, 1)
	}
	return s, rep, nil
}

// readmit rebuilds one journaled live session under its pre-crash id.
func (s *Server) readmit(rec journal.Record) (uint64, error) {
	if rec.Kind == journal.KindCheckpoint {
		snap, err := DecodeSnapshot(rec.Snapshot)
		if err != nil {
			return 0, err
		}
		if snap.State.Terminal() {
			return 0, fmt.Errorf("%w: checkpoint of %s session", ErrSessionTerminal, snap.State)
		}
		drv, err := s.factory.Restore(snap.Spec, snap.DriverState)
		if err != nil {
			return 0, err
		}
		return s.admitAs(snap.Spec, drv, obs.MServeRestored, snap, rec.ID)
	}
	var spec SessionSpec
	if err := json.Unmarshal(rec.Spec, &spec); err != nil {
		return 0, err
	}
	drv, err := s.factory.New(spec)
	if err != nil {
		return 0, err
	}
	return s.admitAs(spec, drv, obs.MServeSubmitted, nil, rec.ID)
}
