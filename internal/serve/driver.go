package serve

import (
	"fmt"
	"time"

	"rainbar/internal/camera"
	"rainbar/internal/channel"
	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/faults"
	"rainbar/internal/obs"
	"rainbar/internal/transport"
)

// StepInfo reports what one driver step did.
type StepInfo struct {
	// Done means no further step will run; call Result for the verdict.
	Done bool
	// Progress means the step delivered at least one new chunk.
	Progress bool
	// Air is the simulated display time the step consumed (zero when the
	// step ran no round, e.g. the transfer was already exhausted).
	Air time.Duration
}

// Driver advances one session's transfer. Implementations need not be
// concurrency-safe; the server serializes all calls per session.
type Driver interface {
	// Step runs one display round. A non-nil error is fatal to the
	// session (the server moves it to StateFailed).
	Step() (StepInfo, error)
	// Snapshot serializes the mid-transfer state at the current round
	// boundary. The bytes are opaque to the server and embedded in the
	// snapshot envelope.
	Snapshot() ([]byte, error)
	// Result returns the delivered payload and transfer statistics once
	// Step reported Done.
	Result() ([]byte, *transport.Stats, error)
}

// Factory builds drivers for admitted and restored sessions. The server
// uses the transport-backed factory unless Config.Factory overrides it
// (tests substitute lightweight fakes).
type Factory interface {
	New(spec SessionSpec) (Driver, error)
	Restore(spec SessionSpec, state []byte) (Driver, error)
}

// salts separating the per-round seed streams of each link subsystem.
const (
	saltChannel = 0x636861 // "cha"
	saltCamera  = 0x63616d // "cam"
	saltFaults  = 0x666c74 // "flt"
)

// transportFactory builds drivers that run real transfers over the
// simulated optical link.
type transportFactory struct {
	// rec, when set, is injected into each session's transport layer.
	rec obs.Recorder
}

// DefaultFactory returns the transport-backed factory the server uses
// when Config.Factory is nil: real transfers over the simulated link.
// The chaos harness wraps it to inject worker-level faults in front of
// real drivers.
func DefaultFactory(rec obs.Recorder) Factory { return transportFactory{rec: rec} }

// transportDriver advances one transport.Xfer round by round, rebuilding
// the link before every round from seeds mixed out of (spec, round).
type transportDriver struct {
	spec   SessionSpec
	sess   *transport.Session
	x      *transport.Xfer
	chain  *faults.Chain // parsed injector prototype, nil for a clean link
	result []byte
	stats  *transport.Stats
	resErr error
	sealed bool
}

// newSession builds the transport session a spec describes (link installed
// separately by relink).
// spec admission bounds: a daemon takes specs from the outside world
// (HTTP, snapshots), so geometry and payload sizes are capped before any
// allocation is sized from them.
const (
	maxSpecScreenPx = 4096
	maxSpecPayload  = 16 << 20
)

func (f transportFactory) newSession(spec SessionSpec) (*transport.Session, *faults.Chain, error) {
	if spec.ScreenW <= 0 || spec.ScreenW > maxSpecScreenPx || spec.ScreenH <= 0 || spec.ScreenH > maxSpecScreenPx {
		return nil, nil, fmt.Errorf("serve: spec screen %dx%d outside (0, %d]", spec.ScreenW, spec.ScreenH, maxSpecScreenPx)
	}
	if len(spec.Payload) > maxSpecPayload {
		return nil, nil, fmt.Errorf("serve: spec payload %d bytes exceeds %d", len(spec.Payload), maxSpecPayload)
	}
	if spec.MaxRounds < 0 || spec.MaxRounds > 1<<16 {
		return nil, nil, fmt.Errorf("serve: spec MaxRounds %d outside [0, %d]", spec.MaxRounds, 1<<16)
	}
	geo, err := layout.NewGeometry(spec.ScreenW, spec.ScreenH, spec.Block)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: spec geometry: %w", err)
	}
	ccfg := core.Config{Geometry: geo, DisplayRate: uint8(spec.DisplayRate)}
	mode := transport.RecoveryOff
	if spec.Recovery != "" {
		mode, err = transport.ParseRecoveryMode(spec.Recovery)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: spec recovery: %w", err)
		}
	}
	combine := mode.Configure(&ccfg)
	codec, err := core.NewCodec(ccfg)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: spec codec: %w", err)
	}
	chain, err := faults.ParseSpec(spec.Faults)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: spec faults: %w", err)
	}
	sess := &transport.Session{
		Codec:          codec,
		MaxRounds:      spec.MaxRounds,
		MinDisplayRate: spec.MinDisplayRate,
		StallRounds:    spec.StallRounds,
		FrameBudget:    spec.FrameBudget,
		Combine:        combine,
		Recorder:       f.rec,
	}
	return sess, chain, nil
}

// relink rebuilds the session's link for the given round. Every seed is a
// pure function of (spec, round), so a session resumed from a snapshot at
// any round boundary sees exactly the link the uninterrupted run would
// have — there is no cross-round PRNG state to lose.
func (d *transportDriver) relink(round int) error {
	ccfg := d.spec.Channel
	ccfg.Seed = mixSeed(d.spec.Channel.Seed, round, saltChannel)
	ch, err := channel.New(ccfg)
	if err != nil {
		return fmt.Errorf("serve: spec channel: %w", err)
	}
	cam := camera.Camera{
		RateFPS:         d.spec.CamRateFPS,
		ReadoutFraction: d.spec.CamReadout,
		Seed:            mixSeed(d.spec.CamSeed, round, saltCamera),
	}
	if d.chain != nil {
		cam.Faults = faults.NewChain(mixSeed(d.chain.Seed, round, saltFaults), d.chain.Injectors...)
	}
	d.sess.Link = transport.Link{Channel: ch, Camera: cam, DisplayRate: d.spec.DisplayRate}
	return nil
}

func (f transportFactory) New(spec SessionSpec) (Driver, error) {
	spec = spec.withDefaults()
	sess, chain, err := f.newSession(spec)
	if err != nil {
		return nil, err
	}
	d := &transportDriver{spec: spec, sess: sess, chain: chain}
	if err := d.relink(1); err != nil {
		return nil, err
	}
	x, err := sess.Begin(spec.Payload)
	if err != nil {
		return nil, err
	}
	d.x = x
	return d, nil
}

func (f transportFactory) Restore(spec SessionSpec, state []byte) (Driver, error) {
	spec = spec.withDefaults()
	sess, chain, err := f.newSession(spec)
	if err != nil {
		return nil, err
	}
	d := &transportDriver{spec: spec, sess: sess, chain: chain}
	// Resume validates the state against a freshly Begin-ed transfer, so
	// the link must already be in place.
	if err := d.relink(1); err != nil {
		return nil, err
	}
	st, err := decodeXferState(state)
	if err != nil {
		return nil, err
	}
	x, err := sess.Resume(spec.Payload, st)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	d.x = x
	return d, nil
}

func (d *transportDriver) Step() (StepInfo, error) {
	if d.x.Done() {
		return StepInfo{Done: true}, nil
	}
	if err := d.relink(d.x.Round() + 1); err != nil {
		return StepInfo{Done: true}, err
	}
	missBefore := d.x.MissingCount()
	airBefore := d.x.Stats().AirTime
	done, err := d.x.Step()
	if err != nil {
		return StepInfo{Done: true}, err
	}
	return StepInfo{
		Done:     done,
		Progress: d.x.MissingCount() < missBefore,
		Air:      d.x.Stats().AirTime - airBefore,
	}, nil
}

// Resumes reports the transfer's resume-generation count (surfaced as
// SessionInfo.Resumes).
func (d *transportDriver) Resumes() int { return d.x.Resumes() }

func (d *transportDriver) Snapshot() ([]byte, error) {
	if d.sealed {
		return nil, ErrSessionTerminal
	}
	return encodeXferState(d.x.State()), nil
}

func (d *transportDriver) Result() ([]byte, *transport.Stats, error) {
	if !d.sealed {
		if !d.x.Done() {
			return nil, nil, ErrSessionActive
		}
		d.result, d.stats, d.resErr = d.x.Seal()
		d.sealed = true
	}
	return d.result, d.stats, d.resErr
}
