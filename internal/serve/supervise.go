package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rainbar/internal/obs"
)

// Supervision sentinels; match with errors.Is.
var (
	// ErrTransient marks a step failure worth retrying. A driver opts in
	// by returning an error wrapping it; everything else is fatal on
	// first occurrence. A driver returning a transient error must leave
	// itself steppable — the server retries the same round after a
	// seed-deterministic backoff.
	ErrTransient = errors.New("serve: transient failure")
	// ErrPanicked is the terminal error of a session whose driver
	// panicked; the panic is confined to that session.
	ErrPanicked = errors.New("serve: session panicked")
	// ErrRoundDeadline is the terminal error of a session whose round
	// overran Config.RoundDeadline.
	ErrRoundDeadline = errors.New("serve: round deadline exceeded")

	// errStopMidRetry aborts a backoff wait because the server is
	// stopping; the session stays live at its round boundary, exactly
	// like Stop interrupting a queued session.
	errStopMidRetry = errors.New("serve: stop during retry backoff")
)

// Transient reports whether a step error is retryable.
func Transient(err error) bool { return errors.Is(err, ErrTransient) }

// saltRetry separates the backoff-jitter seed stream from the link
// subsystems' (driver.go).
const saltRetry = 0x727479 // "rty"

// RetryPolicy bounds retries of transient step failures. The zero value
// disables retries (every error is fatal on first occurrence).
type RetryPolicy struct {
	// MaxRetries is the number of retries after the first attempt.
	MaxRetries int
	// Backoff is the first retry's base delay (default 10ms when
	// MaxRetries > 0); attempt n waits Backoff·2ⁿ, capped at MaxBackoff.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Backoff <= 0 {
		p.Backoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	return p
}

// delay computes attempt n's backoff: exponential growth capped at
// MaxBackoff, then equal-jitter (half fixed, half seed-deterministic) so
// colliding retries spread out without wall-clock randomness — the same
// (seed, attempt) always waits the same duration.
func (p RetryPolicy) delay(attempt int, seed int64) time.Duration {
	d := p.MaxBackoff
	if attempt < 32 {
		if e := p.Backoff << attempt; e < d {
			d = e
		}
	}
	half := d / 2
	jitter := time.Duration(uint64(mixSeed(seed, attempt, saltRetry)) % uint64(half+1))
	return half + jitter
}

// WatchClock supplies the watchdog timers behind round deadlines and
// retry backoff. The default implementation uses real timers — a
// deliberate, narrow exception to serve's determinism contract: timers
// decide only when a wedged round is declared dead or a retry fires,
// never what any round computes. Tests and the chaos harness inject
// ManualWatch to make even those decisions deterministic.
type WatchClock interface {
	// After returns a channel that delivers once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

type realWatch struct{}

func (realWatch) After(d time.Duration) <-chan time.Time { return time.After(d) }

// ManualWatch is a WatchClock driven by explicit Advance calls, for
// deterministic supervision tests: no timer fires until test code moves
// the clock past its due time.
type ManualWatch struct {
	mu     sync.Mutex
	now    time.Duration
	timers []manualTimer
}

type manualTimer struct {
	due time.Duration
	ch  chan time.Time
}

// NewManualWatch returns a watch at time zero with no timers pending.
func NewManualWatch() *ManualWatch { return &ManualWatch{} }

// After registers a timer due d from the watch's current time.
// Non-positive durations fire immediately.
func (m *ManualWatch) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		//lint:allow RB-C3 deliberate: the channel was just created with capacity 1 and has no other sender, so this send can never block
		ch <- time.Time{}
		return ch
	}
	m.timers = append(m.timers, manualTimer{due: m.now + d, ch: ch})
	return ch
}

// Advance moves the watch forward, firing every timer that comes due.
func (m *ManualWatch) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now += d
	rest := m.timers[:0]
	for _, t := range m.timers {
		if t.due <= m.now {
			//lint:allow RB-C3 deliberate: each timer channel has capacity 1 and receives exactly one send in its lifetime (it leaves m.timers here), so the send never blocks
			t.ch <- time.Time{}
		} else {
			rest = append(rest, t)
		}
	}
	m.timers = rest
}

// Flush fires every pending timer regardless of due time (test
// teardown: unblocks goroutines still waiting on abandoned timers).
func (m *ManualWatch) Flush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.timers {
		//lint:allow RB-C3 deliberate: each timer channel has capacity 1 and receives exactly one send in its lifetime (m.timers is cleared below), so the send never blocks
		t.ch <- time.Time{}
	}
	m.timers = nil
}

// Waiting returns the number of pending timers (tests use it to know a
// worker has reached its watchdog select).
func (m *ManualWatch) Waiting() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.timers)
}

// safeStep runs one driver step with panic isolation: a panicking
// driver fails its own session with ErrPanicked and the cause; the
// worker — and every other session — keeps running.
func (s *Server) safeStep(drv Driver) (info StepInfo, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.rec.Inc(obs.MServePanicsRecovered, 1)
			info, err = StepInfo{}, fmt.Errorf("%w: %v", ErrPanicked, r)
		}
	}()
	return drv.Step()
}

// stepOutcome carries one guarded step's result across the watchdog
// channel.
type stepOutcome struct {
	info StepInfo
	err  error
}

// guardedStep runs one step under the round deadline. On expiry the
// session fails with ErrRoundDeadline and the wedged step is abandoned:
// its goroutine parks on the buffered channel send whenever it does
// finish, and the server never touches that driver again (the session
// is terminal, and drivers are never called through terminal sessions).
// Deadline expiries are never retried — the abandoned step may still be
// running, and a concurrent retry would race it.
func (s *Server) guardedStep(sess *session) (StepInfo, error) {
	if s.deadline <= 0 {
		return s.safeStep(sess.drv)
	}
	done := make(chan stepOutcome, 1)
	go func() {
		info, err := s.safeStep(sess.drv)
		done <- stepOutcome{info, err}
	}()
	select {
	case out := <-done:
		return out.info, out.err
	case <-s.watch.After(s.deadline):
		s.rec.Inc(obs.MServeDeadlineExpiries, 1)
		return StepInfo{}, fmt.Errorf("%w: round %d exceeded %v", ErrRoundDeadline, sess.rounds+1, s.deadline)
	}
}

// supervise runs one round with the full supervision stack: panic
// isolation, round deadline, and bounded retries of transient failures
// with seed-deterministic exponential backoff. A stop during backoff
// returns errStopMidRetry and leaves the session live at its round
// boundary for migration.
func (s *Server) supervise(sess *session) (StepInfo, error) {
	for attempt := 0; ; attempt++ {
		info, err := s.guardedStep(sess)
		if err == nil || !Transient(err) || attempt >= s.retry.MaxRetries {
			return info, err
		}
		s.rec.Inc(obs.MServeRetries, 1)
		// The jitter seed mixes the session id and round so concurrent
		// retries de-correlate, while staying a pure function of
		// (session, round, attempt).
		seed := int64(sess.id)<<16 ^ int64(sess.rounds)
		select {
		case <-s.watch.After(s.retry.delay(attempt, seed)):
		case <-s.stop:
			return info, errStopMidRetry
		}
	}
}
