package serve

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"rainbar/internal/transport"
)

// gateDriver blocks inside Step until released, letting tests hold
// sessions live deterministically.
type gateDriver struct {
	gate    chan struct{}
	stepped int
}

type gateFactory struct{ gate chan struct{} }

func (f gateFactory) New(SessionSpec) (Driver, error) { return &gateDriver{gate: f.gate}, nil }
func (f gateFactory) Restore(SessionSpec, []byte) (Driver, error) {
	return &gateDriver{gate: f.gate}, nil
}

func (d *gateDriver) Step() (StepInfo, error) {
	<-d.gate
	d.stepped++
	return StepInfo{Done: d.stepped >= 2, Progress: true, Air: time.Millisecond}, nil
}
func (d *gateDriver) Snapshot() ([]byte, error) { return []byte{byte(d.stepped)}, nil }
func (d *gateDriver) Result() ([]byte, *transport.Stats, error) {
	return []byte("ok"), &transport.Stats{}, nil
}

func TestSubmitOverloadBackpressure(t *testing.T) {
	gate := make(chan struct{})
	s := NewServer(Config{MaxSessions: 2, Workers: 1, Factory: gateFactory{gate: gate}})
	defer s.Stop()
	if _, err := s.Submit(SessionSpec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(SessionSpec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(SessionSpec{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third submit: %v, want ErrOverloaded", err)
	}
	// Releasing the fleet frees capacity again.
	close(gate)
	s.Drain()
	if got := s.Active(); got != 0 {
		t.Fatalf("active after drain = %d", got)
	}
}

// slowDriver never finishes on its own and paces each round at ~1ms, so
// tests can poke a reliably-live session and end it with Cancel.
type slowDriver struct{}

type slowFactory struct{}

func (slowFactory) New(SessionSpec) (Driver, error)             { return slowDriver{}, nil }
func (slowFactory) Restore(SessionSpec, []byte) (Driver, error) { return slowDriver{}, nil }

func (slowDriver) Step() (StepInfo, error) {
	time.Sleep(time.Millisecond)
	return StepInfo{Progress: true, Air: time.Millisecond}, nil
}
func (slowDriver) Snapshot() ([]byte, error) { return []byte{0xAB}, nil }
func (slowDriver) Result() ([]byte, *transport.Stats, error) {
	return nil, nil, ErrSessionActive
}

func TestRegistryErrors(t *testing.T) {
	s := NewServer(Config{Workers: 1, Factory: slowFactory{}})
	id, err := s.Submit(SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Info(99); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("Info(99): %v", err)
	}
	if err := s.Cancel(99); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("Cancel(99): %v", err)
	}
	if _, _, err := s.Result(id); !errors.Is(err, ErrSessionActive) {
		t.Fatalf("Result while live: %v", err)
	}
	if err := s.Remove(id); !errors.Is(err, ErrSessionActive) {
		t.Fatalf("Remove while live: %v", err)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatalf("Cancel live: %v", err)
	}
	s.Drain()
	if err := s.Cancel(id); !errors.Is(err, ErrSessionTerminal) {
		t.Fatalf("Cancel terminal: %v", err)
	}
	if _, err := s.Snapshot(id); !errors.Is(err, ErrSessionTerminal) {
		t.Fatalf("Snapshot terminal: %v", err)
	}
	if _, _, err := s.Result(id); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Result after drain: %v, want ErrCanceled", err)
	}
}

// TestStopPreservesLiveSessionsForMigration is the migration story: Stop a
// daemon mid-fleet, snapshot what is left, restore into a second daemon,
// and every session still finishes.
func TestStopPreservesLiveSessionsForMigration(t *testing.T) {
	var f fakeFactory
	s := NewServer(Config{Workers: 2, Factory: f})
	var ids []uint64
	for i := 0; i < 8; i++ {
		id, err := s.Submit(SessionSpec{Payload: []byte{byte(i)}, MaxRounds: 1 << 14})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.Stop() // halts at round boundaries; sessions are mid-transfer
	if _, err := s.Submit(SessionSpec{}); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after stop: %v", err)
	}

	s2 := NewServer(Config{Workers: 2, Factory: f})
	migrated := 0
	for _, id := range ids {
		snap, err := s.Snapshot(id)
		if err != nil {
			// Finished before the stop landed; its result is final.
			continue
		}
		if _, err := s2.Restore(snap); err != nil {
			t.Fatalf("restore migrated session %d: %v", id, err)
		}
		migrated++
	}
	if migrated == 0 {
		t.Fatal("no session was still live at stop; migration path untested")
	}
	s2.Drain()
	for _, info := range s2.Sessions() {
		if info.State != StateDone {
			t.Fatalf("migrated session %d ended %s (%s)", info.ID, info.State, info.Err)
		}
	}
}

// TestServerEndToEndTransport runs real transfers through the server and
// proves a mid-run server-level snapshot restores to the same payload.
func TestServerEndToEndTransport(t *testing.T) {
	spec := propSpec("drop=0.6,seed=11", "combine")
	s := NewServer(Config{Workers: 2})
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot while live; tolerate the transfer finishing first.
	snap, snapErr := s.Snapshot(id)
	s.Drain()
	payload, stats, err := s.Result(id)
	if err != nil {
		t.Fatalf("transfer failed: %v", err)
	}
	if !bytes.Equal(payload, spec.Payload) {
		t.Fatal("payload not bit-exact through the server")
	}
	if stats.Rounds < 2 {
		t.Fatalf("expected a lossy multi-round transfer, got %d rounds", stats.Rounds)
	}

	if snapErr == nil {
		s2 := NewServer(Config{Workers: 1})
		rid, err := s2.Restore(snap)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		s2.Drain()
		rPayload, rStats, err := s2.Result(rid)
		if err != nil {
			t.Fatalf("restored transfer failed: %v", err)
		}
		if !bytes.Equal(rPayload, spec.Payload) {
			t.Fatal("restored payload not bit-exact")
		}
		if !reflect.DeepEqual(rStats, stats) {
			t.Fatalf("restored stats differ:\n got %+v\nwant %+v", rStats, stats)
		}
	}
}

// TestCancelStopsASession pins that cancelation terminates without
// further rounds and reports ErrCanceled.
func TestCancelStopsASession(t *testing.T) {
	s := NewServer(Config{Workers: 1, Factory: slowFactory{}})
	id, err := s.Submit(SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	info, err := s.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", info.State)
	}
	if _, _, err := s.Result(id); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Result of canceled: %v", err)
	}
}

// TestSnapshotEnvelopeTamper pins the classified decode errors.
func TestSnapshotEnvelopeTamper(t *testing.T) {
	env, err := EncodeSnapshot(&Snapshot{ID: 3, State: StateStalled, Spec: SessionSpec{Payload: []byte("x")}, DriverState: []byte{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(env)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != 3 || snap.State != StateStalled || string(snap.DriverState) != "\x01\x02\x03" {
		t.Fatalf("round trip lost fields: %+v", snap)
	}

	tamper := func(mutate func([]byte) []byte) error {
		_, err := DecodeSnapshot(mutate(append([]byte(nil), env...)))
		return err
	}
	if err := tamper(func(b []byte) []byte { return b[:10] }); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated header: %v", err)
	}
	if err := tamper(func(b []byte) []byte { b[0] = 'X'; return b }); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("bad magic: %v", err)
	}
	if err := tamper(func(b []byte) []byte { b[4] = 99; return b }); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("bad version: %v", err)
	}
	if err := tamper(func(b []byte) []byte { b[20] ^= 0x10; return b }); !errors.Is(err, ErrSnapshotChecksum) {
		t.Fatalf("bit rot: %v", err)
	}
	if err := tamper(func(b []byte) []byte { return b[:len(b)-2] }); !errors.Is(err, ErrSnapshotChecksum) && !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated tail: %v", err)
	}
}

// TestWorkerCountInvariance pins the determinism contract at the server
// level: the same fleet produces identical per-session results at any
// worker count.
func TestWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []SessionInfo {
		s := NewServer(Config{Workers: workers, Factory: fakeFactory{}})
		for i := 0; i < 40; i++ {
			if _, err := s.Submit(SessionSpec{Payload: []byte{byte(i)}, MaxRounds: 1 + i%4}); err != nil {
				t.Fatal(err)
			}
		}
		s.Drain()
		return s.Sessions()
	}
	if got, want := run(8), run(1); !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet results differ across worker counts:\n got %+v\nwant %+v", got, want)
	}
}

// TestConcurrentSnapshotIsConsistent checks a snapshot taken while a
// session is being stepped lands exactly on a round boundary.
func TestConcurrentSnapshotIsConsistent(t *testing.T) {
	s := NewServer(Config{Workers: 2, Factory: slowFactory{}})
	id, err := s.Submit(SessionSpec{Payload: []byte("p")})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(4)
	for i := 0; i < 4; i++ {
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				snap, err := s.Snapshot(id)
				if err != nil {
					t.Errorf("snapshot live session: %v", err)
					return
				}
				decoded, err := DecodeSnapshot(snap)
				if err != nil {
					t.Errorf("snapshot decode: %v", err)
					return
				}
				if len(decoded.DriverState) != 1 || decoded.DriverState[0] != 0xAB {
					t.Errorf("driver state corrupted: %v", decoded.DriverState)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	s.Drain()
}
