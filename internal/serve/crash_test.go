package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rainbar/internal/serve/journal"
)

// TestCrashMatrixBitIdentical is the durability acceptance property:
// journal a fleet that spans the faults x recovery matrix with a
// checkpoint at every round boundary, then simulate a crash after EVERY
// record and Recover from the surviving prefix — every recovered
// session must deliver exactly the uncrashed run's payload, Stats and
// error. Workers=1 keeps the record order (and so the kill points)
// deterministic.
func TestCrashMatrixBitIdentical(t *testing.T) {
	fleet := []struct{ faults, mode string }{
		{"", "off"},
		{"drop=0.6,seed=11", "erasures"},
		{"splice=0.55,occlude=0.5,seed=5", "combine"},
	}
	cfg := func(j *journal.Journal) Config {
		return Config{Workers: 1, Journal: j, CheckpointEvery: 1}
	}

	refDir := t.TempDir()
	j, err := journal.Open(refDir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(cfg(j))
	ids := make([]uint64, len(fleet))
	for i, m := range fleet {
		if ids[i], err = s.Submit(propSpec(m.faults, m.mode)); err != nil {
			t.Fatal(err)
		}
	}
	s.Quiesce()
	ref := map[uint64]outcome{}
	for _, id := range ids {
		info, err := s.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateDone {
			t.Fatalf("reference session %d ended %s (%s); matrix needs completable specs", id, info.State, info.Err)
		}
		payload, stats, _ := s.Result(id)
		ref[id] = outcome{payload: payload, stats: stats}
	}
	s.Drain()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(refDir, journal.FileName))
	if err != nil {
		t.Fatal(err)
	}
	records, tail, err := journal.Replay(data)
	if err != nil || tail != len(data) {
		t.Fatalf("reference journal does not replay cleanly: tail %d/%d, %v", tail, len(data), err)
	}
	if len(records) < len(fleet)*3 {
		t.Fatalf("only %d records journaled; checkpoints are not flowing", len(records))
	}

	for k := 0; k <= len(records); k++ {
		k := k
		t.Run(fmt.Sprintf("kill@%d", k), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			jk, err := journal.Open(dir, journal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range records[:k] {
				if err := jk.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := jk.Close(); err != nil {
				t.Fatal(err)
			}

			// Who must come back: per-session order is submit → checkpoints
			// → terminal, so last-writer-wins folding is exact.
			expect := map[uint64]bool{}
			for _, rec := range records[:k] {
				expect[rec.ID] = rec.Kind != journal.KindTerminal
			}

			srv, rep, err := Recover(dir, journal.Options{}, cfg(nil))
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				srv.Drain()
				srv.Journal().Close()
			}()
			if rep.Skipped != 0 {
				t.Fatalf("recovery skipped %d sessions", rep.Skipped)
			}
			recovered := map[uint64]bool{}
			for _, id := range rep.Sessions {
				recovered[id] = true
				if !expect[id] {
					t.Fatalf("session %d resurrected (terminal before the kill)", id)
				}
			}
			for id, live := range expect {
				if live && !recovered[id] {
					t.Fatalf("live session %d dropped by recovery", id)
				}
			}

			srv.Quiesce()
			for _, id := range rep.Sessions {
				info, err := srv.Info(id)
				if err != nil {
					t.Fatal(err)
				}
				payload, stats, resErr := srv.Result(id)
				got := outcome{payload: payload, stats: stats}
				if resErr != nil {
					got.errText = resErr.Error()
				}
				want := ref[id]
				if info.State != StateDone || got.errText != want.errText {
					t.Fatalf("session %d: state %s err %q, want done with %q", id, info.State, got.errText, want.errText)
				}
				if string(got.payload) != string(want.payload) {
					t.Fatalf("session %d payload diverged after crash at record %d", id, k)
				}
				if !reflect.DeepEqual(got.stats, want.stats) {
					t.Fatalf("session %d stats diverged:\n got %+v\nwant %+v", id, got.stats, want.stats)
				}
			}
		})
	}
}
