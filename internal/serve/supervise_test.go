package serve

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rainbar/internal/transport"
)

// TestRetryDelayDeterministic pins the backoff math: the delay is a
// pure function of (policy, attempt, seed), grows exponentially from
// Backoff, never exceeds MaxBackoff, and never drops below half the
// capped exponential (equal jitter).
func TestRetryDelayDeterministic(t *testing.T) {
	p := RetryPolicy{MaxRetries: 8, Backoff: 10 * time.Millisecond, MaxBackoff: time.Second}.withDefaults()
	for attempt := 0; attempt < 40; attempt++ {
		for seed := int64(0); seed < 4; seed++ {
			d1 := p.delay(attempt, seed)
			d2 := p.delay(attempt, seed)
			if d1 != d2 {
				t.Fatalf("delay(%d, %d) not deterministic: %v vs %v", attempt, seed, d1, d2)
			}
			exp := p.MaxBackoff
			if attempt < 32 {
				if e := p.Backoff << attempt; e < exp {
					exp = e
				}
			}
			if d1 < exp/2 || d1 > exp {
				t.Fatalf("delay(%d, %d) = %v outside [%v, %v]", attempt, seed, d1, exp/2, exp)
			}
		}
	}
	// Different seeds must actually jitter (otherwise colliding retries
	// stay synchronized).
	spread := map[time.Duration]bool{}
	for seed := int64(0); seed < 16; seed++ {
		spread[p.delay(3, seed)] = true
	}
	if len(spread) < 2 {
		t.Fatal("jitter is constant across seeds")
	}
}

// TestManualWatch pins the injected clock's semantics: nothing fires
// before its due time, Advance fires exactly what came due, Flush
// releases the rest.
func TestManualWatch(t *testing.T) {
	w := NewManualWatch()
	fired := func(ch <-chan time.Time) bool {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}
	immediate := w.After(0)
	if !fired(immediate) {
		t.Fatal("After(0) did not fire immediately")
	}
	a := w.After(10 * time.Millisecond)
	b := w.After(30 * time.Millisecond)
	if w.Waiting() != 2 {
		t.Fatalf("Waiting = %d, want 2", w.Waiting())
	}
	w.Advance(9 * time.Millisecond)
	if fired(a) || fired(b) {
		t.Fatal("timer fired before due")
	}
	w.Advance(1 * time.Millisecond)
	if !fired(a) || fired(b) {
		t.Fatal("Advance fired the wrong timers")
	}
	w.Flush()
	if !fired(b) || w.Waiting() != 0 {
		t.Fatal("Flush left a timer pending")
	}
}

// transientDriver fails every step with a retryable error; it can never
// finish, so a session stays parked in the retry loop.
type transientDriver struct{ attempts int }

type transientFactory struct{ drv *transientDriver }

func (f transientFactory) New(SessionSpec) (Driver, error) { return f.drv, nil }
func (f transientFactory) Restore(SessionSpec, []byte) (Driver, error) {
	return f.drv, nil
}

func (d *transientDriver) Step() (StepInfo, error) {
	d.attempts++
	return StepInfo{}, fmt.Errorf("%w: flaky backend (attempt %d)", ErrTransient, d.attempts)
}
func (d *transientDriver) Snapshot() ([]byte, error) { return []byte{0x5E}, nil }
func (d *transientDriver) Result() ([]byte, *transport.Stats, error) {
	return nil, nil, ErrSessionActive
}

// TestStopDuringBackoffLeavesSessionLive: Stop must interrupt a retry
// backoff the way it interrupts a queued session — the session stays
// live at its round boundary, snapshotable for migration.
func TestStopDuringBackoffLeavesSessionLive(t *testing.T) {
	watch := NewManualWatch()
	defer watch.Flush()
	drv := &transientDriver{}
	s := NewServer(Config{
		Workers: 1,
		Watch:   watch,
		Retry:   RetryPolicy{MaxRetries: 1 << 20},
		Factory: transientFactory{drv: drv},
	})
	id, err := s.Submit(SessionSpec{Payload: []byte("p")})
	if err != nil {
		t.Fatal(err)
	}
	// The worker reaches the backoff wait when its timer registers.
	for i := 0; watch.Waiting() == 0; i++ {
		if i > 5000 {
			t.Fatal("worker never reached the retry backoff")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	info, err := s.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State.Terminal() {
		t.Fatalf("stop during backoff killed the session: %s (%s)", info.State, info.Err)
	}
	if _, err := s.Snapshot(id); err != nil {
		t.Fatalf("session not snapshotable after stop mid-backoff: %v", err)
	}
	if drv.attempts == 0 {
		t.Fatal("driver was never stepped")
	}
}

// TestRetryExhaustionIsFatal: one more failure than the budget ends the
// session with the transient cause.
func TestRetryExhaustionIsFatal(t *testing.T) {
	watch := NewManualWatch()
	defer watch.Flush()
	drv := &transientDriver{}
	s := NewServer(Config{
		Workers: 1,
		Watch:   watch,
		Retry:   RetryPolicy{MaxRetries: 3},
		Factory: transientFactory{drv: drv},
	})
	id, err := s.Submit(SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Quiesce(); close(done) }()
	quiesced := false
	for i := 0; i < 30000 && !quiesced; i++ {
		select {
		case <-done:
			quiesced = true
		default:
			watch.Advance(time.Second)
			time.Sleep(200 * time.Microsecond)
		}
	}
	if !quiesced {
		t.Fatal("session never exhausted its retries")
	}
	s.Drain()
	info, err := s.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateFailed || !strings.Contains(info.Err, "flaky backend") {
		t.Fatalf("state %s err %q, want failed with the transient cause", info.State, info.Err)
	}
	if drv.attempts != 4 {
		t.Fatalf("driver stepped %d times, want 1 first attempt + 3 retries", drv.attempts)
	}
}

// wedgeDriver blocks its first step until released — a wedged round for
// the deadline watchdog to reap.
type wedgeDriver struct{ gate chan struct{} }

type wedgeFactory struct{ gate chan struct{} }

func (f wedgeFactory) New(SessionSpec) (Driver, error)             { return wedgeDriver{f.gate}, nil }
func (f wedgeFactory) Restore(SessionSpec, []byte) (Driver, error) { return wedgeDriver{f.gate}, nil }

func (d wedgeDriver) Step() (StepInfo, error) {
	<-d.gate
	return StepInfo{Done: true}, nil
}
func (d wedgeDriver) Snapshot() ([]byte, error) { return []byte{0xD0}, nil }
func (d wedgeDriver) Result() ([]byte, *transport.Stats, error) {
	return []byte("late"), &transport.Stats{}, nil
}

// TestRoundDeadlineReapsWedgedStep: a step that never returns fails its
// session with ErrRoundDeadline once the injected clock passes the
// deadline; the abandoned step goroutine is released afterwards and the
// terminal result is unaffected.
func TestRoundDeadlineReapsWedgedStep(t *testing.T) {
	watch := NewManualWatch()
	defer watch.Flush()
	gate := make(chan struct{})
	s := NewServer(Config{
		Workers:       1,
		RoundDeadline: time.Minute,
		Watch:         watch,
		Factory:       wedgeFactory{gate: gate},
	})
	id, err := s.Submit(SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; watch.Waiting() == 0; i++ {
		if i > 5000 {
			t.Fatal("watchdog timer never registered")
		}
		time.Sleep(time.Millisecond)
	}
	watch.Advance(time.Minute)
	s.Quiesce()
	if _, _, err := s.Result(id); !errors.Is(err, ErrRoundDeadline) {
		t.Fatalf("result error = %v, want ErrRoundDeadline", err)
	}
	// Release the abandoned goroutine; its late result must change nothing.
	close(gate)
	if _, _, err := s.Result(id); !errors.Is(err, ErrRoundDeadline) {
		t.Fatalf("late step completion altered the terminal result: %v", err)
	}
	s.Drain()
}

// TestQuiesceWaitsForFleet: Quiesce blocks until every admitted session
// is terminal, then submission still works (unlike Drain).
func TestQuiesceWaitsForFleet(t *testing.T) {
	s := NewServer(Config{Workers: 2, Factory: fakeFactory{}})
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(SessionSpec{Payload: []byte{byte(i)}, MaxRounds: 2 + i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Quiesce()
	for _, info := range s.Sessions() {
		if !info.State.Terminal() {
			t.Fatalf("session %d still %s after Quiesce", info.ID, info.State)
		}
	}
	if _, err := s.Submit(SessionSpec{MaxRounds: 1}); err != nil {
		t.Fatalf("Quiesce closed admission: %v", err)
	}
	s.Drain()
}
