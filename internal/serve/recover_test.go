package serve

import (
	"encoding/json"
	"testing"

	"rainbar/internal/serve/journal"
)

// writeJournal builds a journal in dir through the public API.
func writeJournal(t *testing.T, dir string, recs []journal.Record) {
	t.Helper()
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func submitRecord(t *testing.T, id uint64, rounds int) journal.Record {
	t.Helper()
	spec, err := json.Marshal(SessionSpec{Payload: []byte{byte(id)}, MaxRounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	return journal.Record{Kind: journal.KindSubmit, ID: id, Spec: spec}
}

// TestRecoverEmptyJournal: recovering a missing or empty journal yields
// a fresh, working server.
func TestRecoverEmptyJournal(t *testing.T) {
	s, rep, err := Recover(t.TempDir(), journal.Options{}, Config{Workers: 1, Factory: fakeFactory{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s.Drain()
		s.Journal().Close()
	}()
	if len(rep.Sessions) != 0 || rep.Checkpointed+rep.Resubmitted+rep.Skipped != 0 {
		t.Fatalf("recovered something from nothing: %+v", rep)
	}
	id, err := s.Submit(SessionSpec{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("first id on a fresh recovery = %d, want 1", id)
	}
	s.Quiesce()
}

// TestRecoverPreservesIdentity: sessions come back under their
// pre-crash ids, terminal sessions stay dead, and no journaled id —
// live or retired — is ever reissued.
func TestRecoverPreservesIdentity(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, []journal.Record{
		submitRecord(t, 2, 2),
		submitRecord(t, 5, 3),
		{Kind: journal.KindTerminal, ID: 7, State: uint8(StateDone)},
	})
	s, rep, err := Recover(dir, journal.Options{}, Config{Workers: 1, Factory: fakeFactory{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s.Drain()
		s.Journal().Close()
	}()
	if len(rep.Sessions) != 2 || rep.Resubmitted != 2 || rep.Checkpointed != 0 {
		t.Fatalf("report %+v, want exactly the two live submits resubmitted", rep)
	}
	for _, id := range []uint64{2, 5} {
		if _, err := s.Info(id); err != nil {
			t.Fatalf("pre-crash handle %d is dead: %v", id, err)
		}
	}
	if _, err := s.Info(7); err == nil {
		t.Fatal("terminal session 7 resurrected")
	}
	// nextID ratchets past every journaled id, including the retired 7.
	id, err := s.Submit(SessionSpec{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if id != 8 {
		t.Fatalf("post-recovery id = %d, want 8 (no journaled id may alias)", id)
	}
	s.Quiesce()
	for _, info := range s.Sessions() {
		if info.State != StateDone {
			t.Fatalf("session %d ended %s", info.ID, info.State)
		}
	}
}

// TestRecoverSkipsDamagedSession: one unparseable session must not take
// the fleet down — it is skipped and counted.
func TestRecoverSkipsDamagedSession(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, []journal.Record{
		submitRecord(t, 1, 1),
		{Kind: journal.KindSubmit, ID: 2, Spec: []byte("not json")},
	})
	s, rep, err := Recover(dir, journal.Options{}, Config{Workers: 1, Factory: fakeFactory{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s.Drain()
		s.Journal().Close()
	}()
	if rep.Skipped != 1 || len(rep.Sessions) != 1 || rep.Sessions[0] != 1 {
		t.Fatalf("report %+v, want session 1 recovered and session 2 skipped", rep)
	}
}

// TestRecoverRespectsMaxSessions: a smaller post-crash capacity skips
// the overflow instead of failing recovery.
func TestRecoverRespectsMaxSessions(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, []journal.Record{
		submitRecord(t, 1, 1), submitRecord(t, 2, 1), submitRecord(t, 3, 1),
	})
	s, rep, err := Recover(dir, journal.Options{}, Config{Workers: 1, MaxSessions: 2, Factory: fakeFactory{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s.Drain()
		s.Journal().Close()
	}()
	if len(rep.Sessions) != 2 || rep.Skipped != 1 {
		t.Fatalf("report %+v, want 2 recovered + 1 skipped at MaxSessions=2", rep)
	}
}

// TestRecoverRejectsConfiguredJournal: Recover owns the journal.
func TestRecoverRejectsConfiguredJournal(t *testing.T) {
	j, err := journal.Open(t.TempDir(), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, _, err := Recover(t.TempDir(), journal.Options{}, Config{Journal: j}); err == nil {
		t.Fatal("Recover accepted a pre-configured journal")
	}
}

// TestRecoverSecondCrashFoldsTheSame: the compaction inside Recover
// must leave a journal that folds to the same fleet if the daemon dies
// again immediately (no old-generation records shadowing new ones).
func TestRecoverSecondCrashFoldsTheSame(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, []journal.Record{
		submitRecord(t, 1, 50),
		submitRecord(t, 2, 50),
		{Kind: journal.KindTerminal, ID: 2, State: uint8(StateDone)},
	})
	s, rep, err := Recover(dir, journal.Options{}, Config{Workers: 1, Factory: slowFactory{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sessions) != 1 || rep.Sessions[0] != 1 {
		t.Fatalf("first recovery: %+v", rep)
	}
	// Die again at a round boundary, long before the session finishes.
	s.Stop()
	s.Journal().Close()

	s2, rep2, err := Recover(dir, journal.Options{}, Config{Workers: 1, Factory: fakeFactory{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s2.Drain()
		s2.Journal().Close()
	}()
	if len(rep2.Sessions) != 1 || rep2.Sessions[0] != 1 {
		t.Fatalf("second recovery diverged: %+v", rep2)
	}
	if id, err := s2.Submit(SessionSpec{MaxRounds: 1}); err != nil || id != 3 {
		t.Fatalf("id after double recovery = %d (%v), want 3", id, err)
	}
	s2.Quiesce()
}
