package serve

import (
	"errors"
	"testing"
)

// classified reports whether err is one of the documented snapshot decode
// errors.
func classified(err error) bool {
	return errors.Is(err, ErrBadSnapshot) ||
		errors.Is(err, ErrSnapshotVersion) ||
		errors.Is(err, ErrSnapshotChecksum)
}

// FuzzSnapshotDecode hammers the snapshot decoder with corrupt and
// truncated input: it must always return a classified error or a
// structurally valid snapshot — never panic, and never hand back state
// that then breaks the restore path with an unclassified error.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed corpus: real mid-transfer snapshots from a lossy transfer with
	// combining enabled (non-trivial collector and soft tables), plus
	// targeted corruptions of them.
	var fac transportFactory
	spec := propSpec("drop=0.6,seed=11", "combine")
	drv, err := fac.New(spec)
	if err != nil {
		f.Fatal(err)
	}
	for round := 0; ; round++ {
		state, err := drv.Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		env, err := EncodeSnapshot(&Snapshot{ID: 7, State: StateTransferring, Spec: spec, DriverState: state})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(env)
		f.Add(env[:len(env)*3/4]) // truncation
		flipped := append([]byte(nil), env...)
		flipped[len(flipped)/2] ^= 0x40 // bit rot mid-payload
		f.Add(flipped)
		f.Add(state) // raw driver state without envelope
		info, err := drv.Step()
		if err != nil {
			f.Fatal(err)
		}
		if info.Done || round >= 2 {
			break
		}
	}
	f.Add([]byte("RBSS"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			if !classified(err) {
				t.Fatalf("unclassified envelope error: %v", err)
			}
			return
		}
		// The envelope decoded; the driver state inside must either decode
		// or fail classified — and whatever decodes must be rejected or
		// accepted cleanly by the restore path, never panic it.
		if _, err := decodeXferState(snap.DriverState); err != nil {
			if !classified(err) {
				t.Fatalf("unclassified state error: %v", err)
			}
			return
		}
		// The restore path may reject (bad spec, inconsistent state) but
		// must never panic or silently accept an inconsistent transfer.
		_, _ = (transportFactory{}).Restore(snap.Spec, snap.DriverState)

		// Arbitrary bytes straight into the state decoder as well: the
		// envelope CRC shields it in production, but it must hold its own.
		if _, err := decodeXferState(data); err != nil && !classified(err) {
			t.Fatalf("unclassified raw state error: %v", err)
		}
	})
}
