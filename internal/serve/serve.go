// Package serve is the rainbar-serve daemon core: a long-running server
// that multiplexes many concurrent transfer sessions over simulated
// screen-camera links. Each session is a small state machine (idle →
// transferring → stalled → done/failed/canceled) advanced one display
// round at a time by a bounded worker pool, with admission control
// (ErrOverloaded past MaxSessions), graceful drain, and snapshot/restore:
// any session can be serialized at a round boundary — HARQ soft tables,
// collector contents, round/rate/budget counters — into a versioned,
// CRC-guarded binary snapshot and resumed later, in the same process or
// another daemon instance, continuing bit-identically.
//
// serve is a determinism-contract package: round outcomes are pure
// functions of (SessionSpec, round number). The transport driver rebuilds
// the link for round r from seeds mixed as splitmix64(base, r), so a
// restored session replays the exact link a never-interrupted one would
// have seen. Scheduling order and worker count affect only wall-clock
// interleaving, never session results.
package serve

import (
	"errors"

	"rainbar/internal/camera"
	"rainbar/internal/channel"
)

// State is a session's position in its lifecycle.
type State uint8

const (
	// StateIdle means admitted but not yet stepped.
	StateIdle State = iota
	// StateTransferring means the last round made progress.
	StateTransferring
	// StateStalled means the last round delivered nothing new (the
	// transport's rate-fallback policy is engaging).
	StateStalled
	// StateDone means the payload was delivered bit-exactly.
	StateDone
	// StateFailed means the transfer ended without full delivery or a
	// link-level error stopped it.
	StateFailed
	// StateCanceled means the session was canceled before completion.
	StateCanceled
)

// Terminal reports whether no further round will run.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed || s == StateCanceled }

// String returns the lifecycle name.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateTransferring:
		return "transferring"
	case StateStalled:
		return "stalled"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	}
	return "unknown"
}

// Sentinel errors; match with errors.Is.
var (
	// ErrOverloaded rejects admission when MaxSessions are already live.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrStopped rejects work after shutdown began.
	ErrStopped = errors.New("serve: server stopped")
	// ErrUnknownSession reports an id not in the registry.
	ErrUnknownSession = errors.New("serve: unknown session")
	// ErrSessionTerminal reports an operation needing a live session.
	ErrSessionTerminal = errors.New("serve: session already terminal")
	// ErrSessionActive reports an operation needing a terminal session.
	ErrSessionActive = errors.New("serve: session still active")
	// ErrCanceled is the terminal error of a canceled session.
	ErrCanceled = errors.New("serve: session canceled")
)

// SessionSpec fully describes one transfer session: payload, geometry,
// link condition, and degradation knobs. It is JSON-serializable and
// embedded verbatim in snapshots, so a restored daemon can rebuild the
// exact same deterministic link. The zero value of optional fields picks
// the repository defaults.
type SessionSpec struct {
	// Payload is the file to transfer.
	Payload []byte
	// ScreenW, ScreenH, Block set the barcode geometry (default 480x270,
	// block 10).
	ScreenW, ScreenH, Block int
	// DisplayRate is the sender's display rate in fps (default 10).
	DisplayRate float64
	// Channel is the optical condition; Channel.Seed is the base seed the
	// per-round channel seeds are mixed from.
	Channel channel.Config
	// CamRateFPS, CamReadout, CamSeed configure the receiver camera
	// (defaults: the paper's 30 fps, 0.9 readout).
	CamRateFPS float64
	CamReadout float64
	CamSeed    int64
	// Faults is a faults.ParseSpec chain description ("drop=0.1,seed=7");
	// empty means a clean link. The spec's seed is the base the per-round
	// chain seeds are mixed from.
	Faults string
	// Recovery is the decode-recovery mode (off, erasures, ladder,
	// combine); empty means off.
	Recovery string
	// MaxRounds, StallRounds, FrameBudget, MinDisplayRate are the
	// transport degradation knobs (zero picks transport defaults).
	MaxRounds      int
	StallRounds    int
	FrameBudget    int
	MinDisplayRate float64
}

// withDefaults returns a copy with zero-valued optionals resolved, so a
// spec means the same link no matter which daemon instance interprets it.
func (sp SessionSpec) withDefaults() SessionSpec {
	if sp.ScreenW == 0 && sp.ScreenH == 0 && sp.Block == 0 {
		sp.ScreenW, sp.ScreenH, sp.Block = 480, 270, 10
	}
	if sp.DisplayRate <= 0 {
		sp.DisplayRate = 10
	}
	// A channel config with no positive distance cannot be valid; treat it
	// as unset (keeping a caller-chosen seed) rather than rejecting.
	if sp.Channel.DistanceCM <= 0 {
		seed := sp.Channel.Seed
		sp.Channel = channel.DefaultConfig()
		if seed != 0 {
			sp.Channel.Seed = seed
		}
	}
	if sp.CamRateFPS <= 0 {
		def := camera.Default()
		sp.CamRateFPS, sp.CamReadout = def.RateFPS, def.ReadoutFraction
	}
	return sp
}

// mixSeed derives the seed for one round of one subsystem from the spec's
// base seed: splitmix64 over the (base, round, salt) triple, so per-round
// link randomness is a pure function of (spec, round) and neighboring
// rounds are uncorrelated. This is what makes snapshot/restore exact — a
// resumed session regenerates round r's link from r alone, with no PRNG
// state to carry across the snapshot.
func mixSeed(base int64, round int, salt uint64) int64 {
	x := uint64(base) + 0x9E3779B97F4A7C15*uint64(round+1) + salt
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
