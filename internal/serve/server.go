package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rainbar/internal/obs"
	"rainbar/internal/transport"
)

// Config configures a Server.
type Config struct {
	// MaxSessions bounds concurrently live (non-terminal) sessions;
	// admission past it fails with ErrOverloaded (default 1024).
	MaxSessions int
	// Workers is the stepping-pool size (default 4). Worker count affects
	// only scheduling, never session outcomes.
	Workers int
	// Factory builds session drivers; nil uses the transport-backed
	// factory (real transfers over the simulated link).
	Factory Factory
	// Recorder, when set, counts admissions, rejections, completions,
	// rounds and snapshots. Session outcomes never depend on it.
	Recorder obs.Recorder
}

// SessionInfo is a registry read of one session.
type SessionInfo struct {
	ID    uint64
	State State
	// Rounds is the number of display rounds stepped so far.
	Rounds int
	// Air is the cumulative simulated display time.
	Air time.Duration
	// RoundAirs lists each stepped round's simulated display time (the
	// load harness derives round-latency percentiles from these).
	RoundAirs []time.Duration
	// Bytes is the delivered payload size (terminal Done sessions only).
	Bytes int
	// Err is the terminal failure, "" otherwise.
	Err string
}

// session is one registry entry. Its mutex is held for the whole of every
// step, so Snapshot and Cancel always observe a round boundary. Lock order
// is session.mu before Server.mu; the server never calls into a session
// while holding its own lock.
type session struct {
	id uint64

	mu     sync.Mutex
	state  State
	drv    Driver
	spec   SessionSpec
	cancel bool
	rounds int
	air    time.Duration
	airs   []time.Duration
	result []byte
	stats  *transport.Stats
	err    error
	queued bool
}

// Server multiplexes transfer sessions over a bounded worker pool. Every
// non-terminal session is either sitting in the run queue or being stepped
// by exactly one worker; terminal sessions stay in the registry (for
// Result/Info reads) until Remove.
type Server struct {
	cfg     Config
	factory Factory
	rec     obs.Recorder

	mu       sync.Mutex
	cond     *sync.Cond // signaled when active drops to zero
	sessions map[uint64]*session
	nextID   uint64
	active   int  // non-terminal sessions
	stopped  bool // admission closed
	closed   bool // stop channel closed

	queue chan *session
	stop  chan struct{}
	wg    sync.WaitGroup
}

// NewServer starts a server and its worker pool.
func NewServer(cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	s := &Server{
		cfg:      cfg,
		factory:  cfg.Factory,
		rec:      obs.OrNop(cfg.Recorder),
		sessions: make(map[uint64]*session),
		// Capacity MaxSessions keeps enqueue non-blocking: at most
		// MaxSessions sessions are live and each holds at most one queue
		// slot (the queued flag), so workers can never deadlock re-queuing.
		queue: make(chan *session, cfg.MaxSessions),
		stop:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if s.factory == nil {
		s.factory = transportFactory{rec: cfg.Recorder}
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit admits a new session and returns its id. Fails with
// ErrOverloaded at the MaxSessions bound and ErrStopped after shutdown
// began.
func (s *Server) Submit(spec SessionSpec) (uint64, error) {
	drv, err := s.factory.New(spec)
	if err != nil {
		return 0, err
	}
	return s.admit(spec, drv, obs.MServeSubmitted)
}

// Restore decodes a snapshot and admits the session it describes under a
// fresh id. Terminal-state snapshots are rejected: there is nothing left
// to run, and silently re-completing a finished transfer would double
// count it.
func (s *Server) Restore(data []byte) (uint64, error) {
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return 0, err
	}
	if snap.State.Terminal() {
		return 0, fmt.Errorf("%w: snapshot of %s session", ErrSessionTerminal, snap.State)
	}
	drv, err := s.factory.Restore(snap.Spec, snap.DriverState)
	if err != nil {
		return 0, err
	}
	return s.admit(snap.Spec, drv, obs.MServeRestored)
}

// admit registers a driver-backed session and queues its first step.
func (s *Server) admit(spec SessionSpec, drv Driver, metric string) (uint64, error) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return 0, ErrStopped
	}
	if s.active >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.rec.Inc(obs.MServeRejectedOverload, 1)
		return 0, ErrOverloaded
	}
	s.nextID++
	sess := &session{id: s.nextID, state: StateIdle, drv: drv, spec: spec, queued: true}
	s.sessions[sess.id] = sess
	s.active++
	s.mu.Unlock()
	s.rec.Inc(metric, 1)
	s.queue <- sess
	return sess.id, nil
}

// worker steps queued sessions until the server stops.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Closed stop wins over a ready queue, so Stop halts promptly
		// instead of racing the select's random choice.
		select {
		case <-s.stop:
			return
		default:
		}
		select {
		case <-s.stop:
			return
		case sess := <-s.queue:
			s.step(sess)
		}
	}
}

// step advances one session by one round and re-queues or finalizes it.
func (s *Server) step(sess *session) {
	sess.mu.Lock()
	sess.queued = false
	if sess.state.Terminal() {
		sess.mu.Unlock()
		return
	}
	if sess.cancel {
		sess.state = StateCanceled
		sess.err = ErrCanceled
		sess.mu.Unlock()
		s.finished(StateCanceled)
		return
	}
	//lint:allow RB-C3 deliberate: sess.mu scopes one session and is held for the whole round so Snapshot and Cancel observe round boundaries; IngestBatch's WaitGroup only joins its own bounded workers
	info, err := sess.drv.Step()
	if info.Air > 0 {
		sess.rounds++
		sess.air += info.Air
		sess.airs = append(sess.airs, info.Air)
		s.rec.Inc(obs.MServeRounds, 1)
	}
	switch {
	case err != nil:
		sess.state = StateFailed
		sess.err = err
	case info.Done:
		result, stats, rerr := sess.drv.Result()
		sess.result, sess.stats, sess.err = result, stats, rerr
		if rerr != nil {
			sess.state = StateFailed
		} else {
			sess.state = StateDone
		}
	case info.Progress:
		sess.state = StateTransferring
	default:
		sess.state = StateStalled
	}
	terminal := sess.state.Terminal()
	if !terminal {
		sess.queued = true
	}
	final := sess.state
	sess.mu.Unlock()

	if terminal {
		s.finished(final)
	} else {
		s.queue <- sess
	}
}

// finished retires one live session and wakes Drain when none remain.
func (s *Server) finished(st State) {
	s.rec.Inc(obs.With(obs.MServeFinished, "state", st.String()), 1)
	s.mu.Lock()
	s.active--
	if s.active == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// lookup fetches a registry entry.
func (s *Server) lookup(id uint64) (*session, error) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	return sess, nil
}

// Cancel marks a session for cancelation; it terminates at its next
// dequeue without running further rounds.
func (s *Server) Cancel(id uint64) error {
	sess, err := s.lookup(id)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state.Terminal() {
		return fmt.Errorf("%w: %d is %s", ErrSessionTerminal, id, sess.state)
	}
	sess.cancel = true
	return nil
}

// Snapshot serializes a live session at its current round boundary (the
// call waits out any in-flight round). The session keeps running; the
// snapshot is a consistent copy, not a detach.
func (s *Server) Snapshot(id uint64) ([]byte, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state.Terminal() {
		return nil, fmt.Errorf("%w: %d is %s", ErrSessionTerminal, id, sess.state)
	}
	drvState, err := sess.drv.Snapshot()
	if err != nil {
		return nil, err
	}
	s.rec.Inc(obs.MServeSnapshots, 1)
	return EncodeSnapshot(&Snapshot{ID: id, State: sess.state, Spec: sess.spec, DriverState: drvState})
}

// Result returns a terminal session's delivered payload and statistics
// (ErrSessionActive while rounds may still run).
func (s *Server) Result(id uint64) ([]byte, *transport.Stats, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if !sess.state.Terminal() {
		return nil, nil, fmt.Errorf("%w: %d is %s", ErrSessionActive, id, sess.state)
	}
	return sess.result, sess.stats, sess.err
}

// Info reads one session's registry entry.
func (s *Server) Info(id uint64) (SessionInfo, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return SessionInfo{}, err
	}
	return s.infoOf(sess), nil
}

func (s *Server) infoOf(sess *session) SessionInfo {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	info := SessionInfo{
		ID:        sess.id,
		State:     sess.state,
		Rounds:    sess.rounds,
		Air:       sess.air,
		RoundAirs: append([]time.Duration(nil), sess.airs...),
		Bytes:     len(sess.result),
	}
	if sess.err != nil {
		info.Err = sess.err.Error()
	}
	return info
}

// Sessions lists every registry entry in ascending id order.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	all := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	out := make([]SessionInfo, 0, len(all))
	for _, sess := range all {
		out = append(out, s.infoOf(sess))
	}
	return out
}

// Active returns the number of live (non-terminal) sessions.
func (s *Server) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Remove deletes a terminal session from the registry.
func (s *Server) Remove(id uint64) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	sess.mu.Lock()
	terminal := sess.state.Terminal()
	sess.mu.Unlock()
	if !terminal {
		return fmt.Errorf("%w: %d", ErrSessionActive, id)
	}
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
	return nil
}

// Drain stops admission, lets every live session run to a terminal state,
// then stops the workers. Safe to call once; returns when the pool is
// idle.
func (s *Server) Drain() {
	s.mu.Lock()
	s.stopped = true
	for s.active > 0 {
		s.cond.Wait()
	}
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}
	s.wg.Wait()
}

// Stop halts the pool as soon as in-flight rounds finish, leaving
// non-terminal sessions in the registry at round boundaries — exactly the
// state Snapshot serializes, so a stopping daemon can persist and migrate
// its live sessions.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}
	s.wg.Wait()
}
