package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rainbar/internal/obs"
	"rainbar/internal/serve/journal"
	"rainbar/internal/transport"
)

// Config configures a Server.
type Config struct {
	// MaxSessions bounds concurrently live (non-terminal) sessions;
	// admission past it fails with ErrOverloaded (default 1024).
	MaxSessions int
	// Workers is the stepping-pool size (default 4). Worker count affects
	// only scheduling, never session outcomes.
	Workers int
	// Factory builds session drivers; nil uses the transport-backed
	// factory (real transfers over the simulated link).
	Factory Factory
	// Recorder, when set, counts admissions, rejections, completions,
	// rounds and snapshots. Session outcomes never depend on it.
	Recorder obs.Recorder
	// Journal, when set, makes the server crash-tolerant: admissions,
	// round-boundary checkpoints and terminal states are appended as
	// they happen, and Recover rebuilds the live fleet from the journal
	// after a crash. Journal write failures never fail sessions —
	// availability over durability — but they poison the journal and
	// degrade Health until a compaction succeeds.
	Journal *journal.Journal
	// CheckpointEvery is the round interval between checkpoint records
	// per session (default 8). Smaller means less replayed work after a
	// crash, at more journal bytes per session.
	CheckpointEvery int
	// RoundDeadline, when positive, bounds one driver step: a round
	// exceeding it fails its session with ErrRoundDeadline (the wedged
	// step is abandoned) while the rest of the fleet keeps running. Off
	// by default — with the default real-timer watch a deadline trades
	// determinism for liveness, so it is strictly opt-in.
	RoundDeadline time.Duration
	// Retry bounds retries of steps failing with ErrTransient-wrapped
	// errors. The zero value disables retries.
	Retry RetryPolicy
	// Watch supplies watchdog timers for deadlines and retry backoff;
	// nil uses real timers. Tests inject ManualWatch for determinism.
	Watch WatchClock
}

// SessionInfo is a registry read of one session.
type SessionInfo struct {
	ID    uint64
	State State
	// Rounds is the number of display rounds stepped so far.
	Rounds int
	// Air is the cumulative simulated display time.
	Air time.Duration
	// RoundAirs lists each stepped round's simulated display time (the
	// load harness derives round-latency percentiles from these).
	RoundAirs []time.Duration
	// Bytes is the delivered payload size (terminal Done sessions only).
	Bytes int
	// Resumes is how many snapshot/restore generations precede this
	// session (0 for a fresh submit) — the driver's resume metadata,
	// when it exposes any.
	Resumes int
	// Err is the terminal failure, "" otherwise.
	Err string
}

// session is one registry entry. Its mutex is held for the whole of every
// step, so Snapshot and Cancel always observe a round boundary. Lock order
// is session.mu before Server.mu; the server never calls into a session
// while holding its own lock.
type session struct {
	id uint64

	mu      sync.Mutex
	state   State
	drv     Driver
	spec    SessionSpec
	cancel  bool
	rounds  int
	air     time.Duration
	airs    []time.Duration
	result  []byte
	stats   *transport.Stats
	err     error
	queued  bool
	resumes int
	// lastCheck is the most recent checkpoint envelope (restored
	// sessions start with their restore envelope), what a journal
	// compaction keeps for this session.
	lastCheck []byte
}

// Server multiplexes transfer sessions over a bounded worker pool. Every
// non-terminal session is either sitting in the run queue or being stepped
// by exactly one worker; terminal sessions stay in the registry (for
// Result/Info reads) until Remove.
type Server struct {
	cfg      Config
	factory  Factory
	rec      obs.Recorder
	watch    WatchClock
	retry    RetryPolicy
	deadline time.Duration

	// jmu serializes journal appends against compaction's keep-list
	// build, so a compact never drops a record appended between listing
	// the live sessions and rewriting the file.
	jmu     sync.Mutex
	journal *journal.Journal

	mu       sync.Mutex
	cond     *sync.Cond // signaled when active drops to zero
	sessions map[uint64]*session
	nextID   uint64
	active   int  // non-terminal sessions
	stopped  bool // admission closed
	closed   bool // stop channel closed

	queue chan *session
	stop  chan struct{}
	wg    sync.WaitGroup
}

// NewServer starts a server and its worker pool.
func NewServer(cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 8
	}
	if cfg.Watch == nil {
		cfg.Watch = realWatch{}
	}
	s := &Server{
		cfg:      cfg,
		factory:  cfg.Factory,
		rec:      obs.OrNop(cfg.Recorder),
		watch:    cfg.Watch,
		retry:    cfg.Retry.withDefaults(),
		deadline: cfg.RoundDeadline,
		journal:  cfg.Journal,
		sessions: make(map[uint64]*session),
		// Capacity MaxSessions keeps enqueue non-blocking: at most
		// MaxSessions sessions are live and each holds at most one queue
		// slot (the queued flag), so workers can never deadlock re-queuing.
		queue: make(chan *session, cfg.MaxSessions),
		stop:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if s.factory == nil {
		s.factory = transportFactory{rec: cfg.Recorder}
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit admits a new session and returns its id. Fails with
// ErrOverloaded at the MaxSessions bound and ErrStopped after shutdown
// began.
func (s *Server) Submit(spec SessionSpec) (uint64, error) {
	drv, err := s.factory.New(spec)
	if err != nil {
		return 0, err
	}
	return s.admit(spec, drv, obs.MServeSubmitted, nil)
}

// Restore decodes a snapshot and admits the session it describes under a
// fresh id. Terminal-state snapshots are rejected: there is nothing left
// to run, and silently re-completing a finished transfer would double
// count it.
func (s *Server) Restore(data []byte) (uint64, error) {
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return 0, err
	}
	if snap.State.Terminal() {
		return 0, fmt.Errorf("%w: snapshot of %s session", ErrSessionTerminal, snap.State)
	}
	drv, err := s.factory.Restore(snap.Spec, snap.DriverState)
	if err != nil {
		return 0, err
	}
	return s.admit(snap.Spec, drv, obs.MServeRestored, snap)
}

// admit registers a driver-backed session, journals its admission, and
// queues its first step. snap is non-nil for restored sessions (their
// first journal record is a checkpoint, not a submit, so recovery
// resumes mid-transfer instead of restarting).
func (s *Server) admit(spec SessionSpec, drv Driver, metric string, snap *Snapshot) (uint64, error) {
	return s.admitAs(spec, drv, metric, snap, 0)
}

// admitAs is admit with id control: id 0 assigns the next fresh id and
// journals the admission; a non-zero id re-registers a recovered
// session under its pre-crash identity WITHOUT journaling it again —
// its records are already the journal's latest generation, and keeping
// the id is what lets those records keep describing this session across
// any number of crashes.
func (s *Server) admitAs(spec SessionSpec, drv Driver, metric string, snap *Snapshot, id uint64) (uint64, error) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return 0, ErrStopped
	}
	if s.active >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.rec.Inc(obs.MServeRejectedOverload, 1)
		return 0, ErrOverloaded
	}
	fresh := id == 0
	if fresh {
		s.nextID++
		id = s.nextID
	} else {
		if _, dup := s.sessions[id]; dup {
			s.mu.Unlock()
			return 0, fmt.Errorf("%w: id %d already registered", ErrSessionActive, id)
		}
		if id > s.nextID {
			s.nextID = id
		}
	}
	sess := &session{id: id, state: StateIdle, drv: drv, spec: spec, queued: true}
	if r, ok := drv.(interface{ Resumes() int }); ok {
		sess.resumes = r.Resumes()
	}
	if snap != nil {
		reissued := *snap
		reissued.ID = sess.id
		if env, err := EncodeSnapshot(&reissued); err == nil {
			sess.lastCheck = env
		}
	}
	s.sessions[sess.id] = sess
	s.active++
	s.mu.Unlock()
	s.rec.Inc(metric, 1)
	if fresh {
		// The admission record lands before the session can run (it is
		// not yet queued), so a crash can never leave a
		// stepped-but-unjournaled session behind.
		s.journalAppend(s.admitRecord(sess))
	}
	s.queue <- sess
	return sess.id, nil
}

// admitRecord builds the admission journal record: a checkpoint for
// restored sessions, a submit (spec JSON) for fresh ones.
func (s *Server) admitRecord(sess *session) *journal.Record {
	if s.journal == nil {
		return nil
	}
	if sess.lastCheck != nil {
		return &journal.Record{Kind: journal.KindCheckpoint, ID: sess.id, Snapshot: sess.lastCheck}
	}
	spec, err := json.Marshal(sess.spec)
	if err != nil {
		return nil
	}
	return &journal.Record{Kind: journal.KindSubmit, ID: sess.id, Spec: spec}
}

// worker steps queued sessions until the server stops.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Closed stop wins over a ready queue, so Stop halts promptly
		// instead of racing the select's random choice.
		select {
		case <-s.stop:
			return
		default:
		}
		select {
		case <-s.stop:
			return
		case sess := <-s.queue:
			s.step(sess)
		}
	}
}

// step advances one session by one round under the supervision stack
// (panic isolation, round deadline, transient retries), journals the
// round's outcome, and re-queues or finalizes the session.
func (s *Server) step(sess *session) {
	sess.mu.Lock()
	sess.queued = false
	if sess.state.Terminal() {
		sess.mu.Unlock()
		return
	}
	if sess.cancel {
		sess.state = StateCanceled
		sess.err = ErrCanceled
		rec := s.terminalRecord(sess)
		sess.mu.Unlock()
		s.journalAppend(rec)
		s.finished(StateCanceled)
		s.maybeCompact()
		return
	}
	//lint:allow RB-C3 deliberate: sess.mu scopes one session and is held for the whole round so Snapshot and Cancel observe round boundaries; the supervised step blocks only on this session's own watchdog timers, retry backoff, and IngestBatch's bounded workers
	info, err := s.supervise(sess)
	if errors.Is(err, errStopMidRetry) {
		// Stop interrupted a retry backoff: leave the session live at its
		// round boundary (the same migration semantics as Stop draining
		// the queue) with no terminal record.
		sess.mu.Unlock()
		return
	}
	if info.Air > 0 {
		sess.rounds++
		sess.air += info.Air
		sess.airs = append(sess.airs, info.Air)
		s.rec.Inc(obs.MServeRounds, 1)
	}
	switch {
	case err != nil:
		sess.state = StateFailed
		sess.err = err
	case info.Done:
		result, stats, rerr := sess.drv.Result()
		sess.result, sess.stats, sess.err = result, stats, rerr
		if rerr != nil {
			sess.state = StateFailed
		} else {
			sess.state = StateDone
		}
	case info.Progress:
		sess.state = StateTransferring
	default:
		sess.state = StateStalled
	}
	terminal := sess.state.Terminal()
	var rec *journal.Record
	if terminal {
		rec = s.terminalRecord(sess)
	} else {
		sess.queued = true
		rec = s.checkpointRecord(sess)
	}
	final := sess.state
	sess.mu.Unlock()

	// Journal before re-queuing: the session cannot be stepped again
	// until it is back in the queue, so its records stay in round order.
	s.journalAppend(rec)
	if terminal {
		s.finished(final)
		s.maybeCompact()
	} else {
		s.queue <- sess
	}
}

// checkpointRecord snapshots the session into a checkpoint record when
// one is due (every CheckpointEvery rounds). Called with sess.mu held,
// at the round boundary the step just reached. Snapshot failures skip
// the checkpoint — the previous one (or the submit record) still
// recovers the session, just further back.
func (s *Server) checkpointRecord(sess *session) *journal.Record {
	if s.journal == nil || sess.rounds == 0 || sess.rounds%s.cfg.CheckpointEvery != 0 {
		return nil
	}
	state, err := sess.drv.Snapshot()
	if err != nil {
		return nil
	}
	env, err := EncodeSnapshot(&Snapshot{ID: sess.id, State: sess.state, Spec: sess.spec, DriverState: state})
	if err != nil {
		return nil
	}
	sess.lastCheck = env
	return &journal.Record{Kind: journal.KindCheckpoint, ID: sess.id, Snapshot: env}
}

// terminalRecord builds the session's end-of-life record. Called with
// sess.mu held.
func (s *Server) terminalRecord(sess *session) *journal.Record {
	if s.journal == nil {
		return nil
	}
	rec := &journal.Record{Kind: journal.KindTerminal, ID: sess.id, State: byte(sess.state)}
	if sess.err != nil {
		rec.Err = sess.err.Error()
	}
	return rec
}

// journalAppend appends one record (nil is a no-op). Append failures
// are sticky inside the journal and surface on Health; they never fail
// the session — a daemon with a full disk keeps serving, degraded.
func (s *Server) journalAppend(rec *journal.Record) {
	if rec == nil || s.journal == nil {
		return
	}
	s.jmu.Lock()
	_ = s.journal.Append(*rec)
	s.jmu.Unlock()
}

// compactAfter is how many appended records trigger a compaction at the
// next session retirement. Record-count based (not time based) so the
// journal's on-disk behavior is deterministic for a given run.
const compactAfter = 64

// maybeCompact rewrites the journal down to one record per live session
// (its latest checkpoint, or its submit record) once enough superseded
// records accumulate. A successful compact also clears a sticky journal
// write error: the replacement file proved writable.
func (s *Server) maybeCompact() {
	if s.journal == nil {
		return
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.journal.Appended() < compactAfter && s.journal.Err() == nil {
		return
	}
	_ = s.journal.Compact(s.liveRecords())
}

// idRatchetErr marks the synthetic terminal record compaction writes to
// persist the id high-water mark (see liveRecords).
const idRatchetErr = "serve: retired id high-water mark"

// liveRecords lists the minimal record set that recovers the current
// live fleet, in ascending session-id order. When the highest id ever
// issued belongs to a retired session, a terminal record for it rides
// along: without it, compacting away the terminal records would let a
// recovery after a later crash re-issue retired ids, and a stale client
// handle could silently alias a brand-new session.
func (s *Server) liveRecords() []journal.Record {
	s.mu.Lock()
	nextID := s.nextID
	all := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	var keep []journal.Record
	ratchet := journal.Record{Kind: journal.KindTerminal, ID: nextID, State: uint8(StateCanceled), Err: idRatchetErr}
	for _, sess := range all {
		sess.mu.Lock()
		if !sess.state.Terminal() {
			switch {
			case sess.lastCheck != nil:
				keep = append(keep, journal.Record{Kind: journal.KindCheckpoint, ID: sess.id, Snapshot: sess.lastCheck})
			default:
				if spec, err := json.Marshal(sess.spec); err == nil {
					keep = append(keep, journal.Record{Kind: journal.KindSubmit, ID: sess.id, Spec: spec})
				}
			}
		} else if sess.id == nextID {
			// The high-water session is still registered: persist its real
			// terminal record rather than the synthetic marker.
			if r := s.terminalRecord(sess); r != nil {
				ratchet = *r
			}
		}
		sess.mu.Unlock()
	}
	if nextID > 0 && (len(keep) == 0 || keep[len(keep)-1].ID < nextID) {
		keep = append(keep, ratchet)
	}
	return keep
}

// finished retires one live session and wakes Drain when none remain.
func (s *Server) finished(st State) {
	s.rec.Inc(obs.With(obs.MServeFinished, "state", st.String()), 1)
	s.mu.Lock()
	s.active--
	if s.active == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// lookup fetches a registry entry.
func (s *Server) lookup(id uint64) (*session, error) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	return sess, nil
}

// Cancel marks a session for cancelation; it terminates at its next
// dequeue without running further rounds.
func (s *Server) Cancel(id uint64) error {
	sess, err := s.lookup(id)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state.Terminal() {
		return fmt.Errorf("%w: %d is %s", ErrSessionTerminal, id, sess.state)
	}
	sess.cancel = true
	return nil
}

// Snapshot serializes a live session at its current round boundary (the
// call waits out any in-flight round). The session keeps running; the
// snapshot is a consistent copy, not a detach.
func (s *Server) Snapshot(id uint64) ([]byte, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state.Terminal() {
		return nil, fmt.Errorf("%w: %d is %s", ErrSessionTerminal, id, sess.state)
	}
	drvState, err := sess.drv.Snapshot()
	if err != nil {
		return nil, err
	}
	s.rec.Inc(obs.MServeSnapshots, 1)
	return EncodeSnapshot(&Snapshot{ID: id, State: sess.state, Spec: sess.spec, DriverState: drvState})
}

// Result returns a terminal session's delivered payload and statistics
// (ErrSessionActive while rounds may still run).
func (s *Server) Result(id uint64) ([]byte, *transport.Stats, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if !sess.state.Terminal() {
		return nil, nil, fmt.Errorf("%w: %d is %s", ErrSessionActive, id, sess.state)
	}
	return sess.result, sess.stats, sess.err
}

// Info reads one session's registry entry.
func (s *Server) Info(id uint64) (SessionInfo, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return SessionInfo{}, err
	}
	return s.infoOf(sess), nil
}

func (s *Server) infoOf(sess *session) SessionInfo {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	info := SessionInfo{
		ID:        sess.id,
		State:     sess.state,
		Rounds:    sess.rounds,
		Air:       sess.air,
		RoundAirs: append([]time.Duration(nil), sess.airs...),
		Bytes:     len(sess.result),
		Resumes:   sess.resumes,
	}
	if sess.err != nil {
		info.Err = sess.err.Error()
	}
	return info
}

// Sessions lists every registry entry in ascending id order.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	all := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	out := make([]SessionInfo, 0, len(all))
	for _, sess := range all {
		out = append(out, s.infoOf(sess))
	}
	return out
}

// Active returns the number of live (non-terminal) sessions.
func (s *Server) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Quiesce blocks until no live session remains, without closing
// admission or stopping the workers — the deterministic "wait for the
// fleet to finish" shared by the CLI tests and the recovery paths
// (replacing wall-clock polling loops that time out under load).
func (s *Server) Quiesce() {
	s.mu.Lock()
	for s.active > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Health is an operator's liveness/readiness read of the daemon.
type Health struct {
	// Live is the number of non-terminal sessions.
	Live int `json:"live"`
	// Accepting is false once Stop or Drain closed admission.
	Accepting bool `json:"accepting"`
	// Journal is "off" without a journal, "ok" while it is healthy, or
	// the sticky write failure poisoning it.
	Journal string `json:"journal"`
}

// Ready reports whether the daemon should receive traffic: accepting,
// and journaling successfully when configured for durability.
func (h Health) Ready() bool { return h.Accepting && (h.Journal == "ok" || h.Journal == "off") }

// Health reads the daemon's health (the admin API's /healthz body).
func (s *Server) Health() Health {
	s.mu.Lock()
	h := Health{Live: s.active, Accepting: !s.stopped}
	s.mu.Unlock()
	switch {
	case s.journal == nil:
		h.Journal = "off"
	default:
		if err := s.journal.Err(); err != nil {
			h.Journal = err.Error()
		} else {
			h.Journal = "ok"
		}
	}
	return h
}

// Journal returns the server's journal, nil when durability is off (the
// CLI closes it after shutdown).
func (s *Server) Journal() *journal.Journal { return s.journal }

// Remove deletes a terminal session from the registry.
func (s *Server) Remove(id uint64) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	sess.mu.Lock()
	terminal := sess.state.Terminal()
	sess.mu.Unlock()
	if !terminal {
		return fmt.Errorf("%w: %d", ErrSessionActive, id)
	}
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
	return nil
}

// Drain stops admission, lets every live session run to a terminal state,
// then stops the workers. Safe to call once; returns when the pool is
// idle.
func (s *Server) Drain() {
	s.mu.Lock()
	s.stopped = true
	for s.active > 0 {
		s.cond.Wait()
	}
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}
	s.wg.Wait()
	s.syncJournal()
}

// Stop halts the pool as soon as in-flight rounds finish, leaving
// non-terminal sessions in the registry at round boundaries — exactly the
// state Snapshot serializes, so a stopping daemon can persist and migrate
// its live sessions.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}
	s.wg.Wait()
	s.syncJournal()
}

// syncJournal flushes outstanding appends on clean shutdown, whatever
// the fsync policy: an orderly stop should never lose records.
func (s *Server) syncJournal() {
	if s.journal == nil {
		return
	}
	s.jmu.Lock()
	_ = s.journal.Sync()
	s.jmu.Unlock()
}
