package colorspace

// Table-driven classification support. ClassifyRGB is the single hottest
// kernel in the decoder (every sampled pixel of every capture goes through
// it: the detection class map, K-means correction windows, locator probes
// and all data-cell reads), so the per-pixel float conversion is replaced
// by integer comparisons plus two small lookup tables. The contract is
// strict bit-identity with Classify(p.ToHSV()) for every (TV, RGB) input;
// the tables are therefore *derived by running the reference float
// expressions* over their full integer domains at init, never by
// re-deriving thresholds in integer space.
//
// Why integer decisions suffice:
//
//   - Black: the reference tests maxc < TV where maxc = float64(maxK)/255
//     and maxK is the integer channel max (float max and integer max agree
//     because k ↦ k/255 rounds monotonically). u8f caches exactly those
//     256 quotients, so u8f[maxK] < tv is the same comparison.
//
//   - White: the reference tests maxc == 0 || delta/maxc < TSat, which
//     depends only on the (max, min) integer pair — delta is the rounded
//     difference of the two cached quotients. whiteTab enumerates all
//     65536 pairs through the float expression.
//
//   - Chromatic sectors: within each max-channel branch the hue is a
//     monotone function of one quotient q = (±num)/delta with |num| and
//     delta rounded differences of u8f entries. Distinct entries differ by
//     at least 1/255 - 2⁻⁵², so q is at least ~0.0039 away from ±1
//     whenever the corresponding channels differ — far outside the ~2⁻⁴⁵
//     rounding slop of the 60·q±k sector arithmetic. The sector
//     boundaries at exactly 60°/180°/300° are hit only on exact channel
//     ties (q = ±1), which are integer equalities:
//
//       max == R: h ∈ [0,60] for G ≥ B (Red, h == 60 inclusive); for
//                 G < B the hue wraps to (300, 360) — Red — except the
//                 exact magenta tie B == R, where h == 300 → Blue.
//       max == G: h ∈ (60, 180] always (the yellow tie R == G would give
//                 h == 60, but R == G makes R the max branch) → Green.
//       max == B: h ∈ (180, 300) always (both ties fall to other
//                 branches) → Blue.
//
//     TestClassifyLUTExhaustive verifies the reduction against the float
//     path over the entire 2²⁴ RGB domain.
var (
	// u8f[k] is float64(k)/255 — the exact quotient ToHSV computes for a
	// channel value of k.
	u8f [256]float64
	// whiteTab[maxK<<8|minK] reports the reference white test for a pixel
	// whose integer channel max/min are maxK/minK. Entries with
	// minK > maxK are unreachable.
	whiteTab [65536]bool
)

func init() {
	for k := range u8f {
		u8f[k] = float64(k) / 255
	}
	for maxK := 0; maxK < 256; maxK++ {
		maxc := u8f[maxK]
		for minK := 0; minK <= maxK; minK++ {
			delta := maxc - u8f[minK]
			// The reference expression from the float classifier: S is
			// defined as 0 when maxc == 0 (which also forces delta == 0).
			whiteTab[maxK<<8|minK] = maxc == 0 || delta/maxc < TSat
		}
	}
}

// Value returns the HSV value channel of p, bit-identical to p.ToHSV().V,
// without the rest of the conversion.
func (c RGB) Value() float64 {
	maxK := c.R
	if c.G > maxK {
		maxK = c.G
	}
	if c.B > maxK {
		maxK = c.B
	}
	return u8f[maxK]
}
