package colorspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestColorString(t *testing.T) {
	cases := map[Color]string{
		White: "white", Red: "red", Green: "green", Blue: "blue",
		Black: "black", Color(9): "invalid",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}

func TestBitsRoundTrip(t *testing.T) {
	for _, c := range []Color{White, Red, Green, Blue} {
		if !c.IsData() {
			t.Errorf("%v.IsData() = false", c)
		}
		if got := FromBits(c.Bits()); got != c {
			t.Errorf("FromBits(Bits(%v)) = %v", c, got)
		}
	}
	if Black.IsData() {
		t.Error("Black.IsData() = true")
	}
}

func TestBitsPanicsOnBlack(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Black.Bits() did not panic")
		}
	}()
	Black.Bits()
}

func TestToHSVPrimaries(t *testing.T) {
	cases := []struct {
		rgb  RGB
		want HSV
	}{
		{RGBWhite, HSV{0, 0, 1}},
		{RGBBlack, HSV{0, 0, 0}},
		{RGBRed, HSV{0, 1, 1}},
		{RGBGreen, HSV{120, 1, 1}},
		{RGBBlue, HSV{240, 1, 1}},
		{RGB{255, 255, 0}, HSV{60, 1, 1}},  // yellow
		{RGB{0, 255, 255}, HSV{180, 1, 1}}, // cyan
		{RGB{255, 0, 255}, HSV{300, 1, 1}}, // magenta
		{RGB{128, 128, 128}, HSV{0, 0, 128.0 / 255}},
	}
	for _, c := range cases {
		got := c.rgb.ToHSV()
		if math.Abs(got.H-c.want.H) > 1e-9 || math.Abs(got.S-c.want.S) > 1e-9 || math.Abs(got.V-c.want.V) > 1e-9 {
			t.Errorf("ToHSV(%v) = %+v, want %+v", c.rgb, got, c.want)
		}
	}
}

func TestHSVRoundTripProperty(t *testing.T) {
	prop := func(r, g, b uint8) bool {
		in := RGB{r, g, b}
		out := in.ToHSV().ToRGB()
		// Allow 1 LSB of rounding error per channel.
		d := func(a, b uint8) int {
			if a > b {
				return int(a - b)
			}
			return int(b - a)
		}
		return d(in.R, out.R) <= 1 && d(in.G, out.G) <= 1 && d(in.B, out.B) <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyReferenceColors(t *testing.T) {
	cl := NewClassifier(0.35)
	for _, c := range []Color{White, Red, Green, Blue, Black} {
		if got := cl.ClassifyRGB(Paint(c)); got != c {
			t.Errorf("ClassifyRGB(Paint(%v)) = %v", c, got)
		}
	}
}

func TestClassifyDimmedColors(t *testing.T) {
	// Simulate a 50%-brightness screen: all channels halved. The HSV
	// classifier must still recognize every color because hue and
	// saturation survive uniform dimming.
	cl := NewClassifier(0.25)
	dim := func(p RGB) RGB { return RGB{p.R / 2, p.G / 2, p.B / 2} }
	for _, c := range []Color{White, Red, Green, Blue, Black} {
		if got := cl.ClassifyRGB(dim(Paint(c))); got != c {
			t.Errorf("dimmed %v classified as %v", c, got)
		}
	}
}

func TestClassifyHueBoundaries(t *testing.T) {
	cl := NewClassifier(0.3)
	cases := []struct {
		hsv  HSV
		want Color
	}{
		{HSV{59, 1, 1}, Red},
		{HSV{61, 1, 1}, Green},
		{HSV{179, 1, 1}, Green},
		{HSV{181, 1, 1}, Blue},
		{HSV{299, 1, 1}, Blue},
		{HSV{301, 1, 1}, Red},
		{HSV{350, 1, 1}, Red},
		{HSV{0, 0.40, 1}, White},   // just under T_sat
		{HSV{0, 0.42, 1}, Red},     // just over T_sat
		{HSV{120, 1, 0.29}, Black}, // under T_v
		{HSV{120, 1, 0.31}, Green}, // over T_v
	}
	for _, c := range cases {
		if got := cl.Classify(c.hsv); got != c.want {
			t.Errorf("Classify(%+v) = %v, want %v", c.hsv, got, c.want)
		}
	}
}

func TestZeroValueClassifierUsesDefault(t *testing.T) {
	var cl Classifier
	if got := cl.Classify(HSV{0, 0, DefaultTV - 0.01}); got != Black {
		t.Errorf("zero-value classifier: dark pixel = %v, want black", got)
	}
	if got := cl.Classify(HSV{0, 0, DefaultTV + 0.01}); got != White {
		t.Errorf("zero-value classifier: bright pixel = %v, want white", got)
	}
}

func TestEstimateTV(t *testing.T) {
	// Half black (V≈0.05), half bright (V≈0.9):
	// T_v = 0.55*0.05 + 0.45*0.9 = 0.4325.
	values := []float64{0.05, 0.05, 0.9, 0.9}
	got := EstimateTV(values)
	want := Mu*0.05 + (1-Mu)*0.9
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EstimateTV = %v, want %v", got, want)
	}
}

func TestEstimateTVNoBlackSamples(t *testing.T) {
	// All-bright samples have no black/non-black bimodality: the
	// clustering estimator falls back to the default threshold rather
	// than inventing a black population.
	if got := EstimateTV([]float64{0.8, 0.82, 0.85, 0.9}); got != DefaultTV {
		t.Errorf("EstimateTV without black = %v, want DefaultTV", got)
	}
}

func TestEstimateTVWithVeilingLight(t *testing.T) {
	// Outdoor regime: ambient glare lifts black pixels to ~0.2, above the
	// paper's fixed 0.1 seed. The clustering estimator must still place
	// T_v between the two populations.
	values := []float64{0.19, 0.2, 0.21, 0.22, 0.75, 0.8, 0.85, 0.82}
	tv := EstimateTV(values)
	if tv <= 0.22 || tv >= 0.75 {
		t.Errorf("T_v = %v not between veiled black (~0.2) and bright (~0.8)", tv)
	}
}

func TestEstimateTVDegenerate(t *testing.T) {
	if got := EstimateTV(nil); got != DefaultTV {
		t.Errorf("EstimateTV(nil) = %v, want default", got)
	}
	if got := EstimateTV([]float64{0.01, 0.02}); got != DefaultTV {
		t.Errorf("EstimateTV(all black) = %v, want default", got)
	}
}

func TestEstimateTVSeparatesBrightnessLevels(t *testing.T) {
	// The whole point of Eq. 2: T_v must land strictly between the black
	// mean and the non-black mean for any illumination level.
	for _, bright := range []float64{0.3, 0.5, 0.7, 1.0} {
		values := []float64{0.02, 0.03, bright, bright * 0.95}
		tv := EstimateTV(values)
		if tv <= 0.03 || tv >= bright*0.95 {
			t.Errorf("brightness %.2f: T_v = %v not between black and bright means", bright, tv)
		}
	}
}

func TestRGBClassifierReference(t *testing.T) {
	var cl RGBClassifier
	for _, c := range []Color{White, Red, Green, Blue, Black} {
		if got := cl.Classify(Paint(c)); got != c {
			t.Errorf("RGBClassifier(Paint(%v)) = %v", c, got)
		}
	}
}

func TestRGBClassifierBreaksUnderDimming(t *testing.T) {
	// The ablation premise: fixed RGB thresholds misclassify dimmed colors
	// that the HSV classifier handles (see TestClassifyDimmedColors).
	var cl RGBClassifier
	dimRed := RGB{100, 0, 0} // 40% brightness red
	if got := cl.Classify(dimRed); got == Red {
		t.Skip("RGB classifier unexpectedly robust; ablation premise void")
	}
	hsv := NewClassifier(0.2)
	if got := hsv.ClassifyRGB(dimRed); got != Red {
		t.Errorf("HSV classifier failed on dim red: %v", got)
	}
}

func TestClassifyRGBMatchesHSVPath(t *testing.T) {
	// The fast path must agree with the reference two-step conversion for
	// every input and threshold — including exact hue-boundary mixtures
	// like magenta, where h lands on 300 precisely.
	for _, tv := range []float64{0, 0.1, DefaultTV, 0.5, 0.9} {
		cl := Classifier{TV: tv}
		for r := 0; r < 256; r += 5 {
			for g := 0; g < 256; g += 5 {
				for b := 0; b < 256; b += 5 {
					p := RGB{uint8(r), uint8(g), uint8(b)}
					if got, want := cl.ClassifyRGB(p), cl.Classify(p.ToHSV()); got != want {
						t.Fatalf("TV=%v ClassifyRGB(%v) = %v, Classify(ToHSV) = %v", tv, p, got, want)
					}
				}
			}
		}
		for _, p := range []RGB{
			{200, 0, 200}, {200, 200, 0}, {0, 200, 200}, // exact sector edges
			{255, 255, 255}, {1, 1, 1}, {0, 0, 0},
		} {
			if got, want := cl.ClassifyRGB(p), cl.Classify(p.ToHSV()); got != want {
				t.Fatalf("TV=%v ClassifyRGB(%v) = %v, Classify(ToHSV) = %v", tv, p, got, want)
			}
		}
	}
}

func TestPaintCoversAllColors(t *testing.T) {
	if Paint(Color(200)) != RGBBlack {
		t.Error("Paint of invalid color should be black")
	}
}

func TestClassifyRGBSoftMatchesHard(t *testing.T) {
	// The soft classifier's color must be bit-identical to ClassifyRGB on
	// every input and threshold, and its confidence must stay in [0,1].
	rng := rand.New(rand.NewSource(7))
	for _, tv := range []float64{0, 0.1, DefaultTV, 0.5, 0.9} {
		cl := Classifier{TV: tv}
		for i := 0; i < 200000; i++ {
			p := RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
			soft, conf := cl.ClassifyRGBSoft(p)
			if hard := cl.ClassifyRGB(p); soft != hard {
				t.Fatalf("TV=%v ClassifyRGBSoft(%v) = %v, ClassifyRGB = %v", tv, p, soft, hard)
			}
			if conf < 0 || conf > 1 {
				t.Fatalf("TV=%v ClassifyRGBSoft(%v) confidence %v outside [0,1]", tv, p, conf)
			}
		}
		for _, p := range []RGB{
			{200, 0, 200}, {200, 200, 0}, {0, 200, 200},
			{255, 255, 255}, {1, 1, 1}, {0, 0, 0},
		} {
			soft, conf := cl.ClassifyRGBSoft(p)
			if hard := cl.ClassifyRGB(p); soft != hard {
				t.Fatalf("TV=%v ClassifyRGBSoft(%v) = %v, ClassifyRGB = %v", tv, p, soft, hard)
			}
			if conf < 0 || conf > 1 {
				t.Fatalf("TV=%v conf %v outside [0,1]", tv, conf)
			}
		}
	}
}

func TestClassifyRGBSoftConfidenceOrdering(t *testing.T) {
	// A sample near a decision boundary must score below one deep inside
	// its class.
	cl := Classifier{TV: 0.35}
	_, deep := cl.ClassifyRGBSoft(RGB{255, 0, 0})      // pure red
	_, shallow := cl.ClassifyRGBSoft(RGB{255, 200, 0}) // near the 60° edge
	if deep <= shallow {
		t.Fatalf("pure red confidence %v should exceed near-boundary %v", deep, shallow)
	}
	_, wb := cl.ClassifyRGBSoft(RGB{0, 0, 0}) // deep black
	if wb != 1 {
		t.Fatalf("pure black confidence = %v, want 1", wb)
	}
}

func TestEstimateTVClustersMatchesEstimateTV(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(120)
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64()
		}
		want := EstimateTV(values)
		vb, vo, ok := EstimateTVClusters(values)
		got := DefaultTV
		if ok {
			got = TVForMu(vb, vo, Mu)
		}
		if got != want {
			t.Fatalf("trial %d: TVForMu(clusters) = %v, EstimateTV = %v", trial, got, want)
		}
	}
	if _, _, ok := EstimateTVClusters(nil); ok {
		t.Fatal("EstimateTVClusters(nil) should report no bimodality")
	}
}
