package colorspace

import "testing"

// benchSamples covers the pixel populations the decoder classifies:
// reference colors, dimmed variants, and noisy near-threshold mixtures.
var benchSamples = []RGB{
	RGBWhite, RGBRed, RGBGreen, RGBBlue, RGBBlack,
	{128, 128, 128}, {127, 10, 14}, {30, 200, 40}, {12, 30, 190},
	{200, 180, 170}, {60, 55, 48}, {15, 15, 20}, {240, 120, 20},
	{90, 160, 200}, {5, 80, 6}, {255, 250, 128},
}

var sinkColor Color

func BenchmarkClassifyRGB(b *testing.B) {
	cl := NewClassifier(0.32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkColor = cl.ClassifyRGB(benchSamples[i%len(benchSamples)])
	}
}

var sinkConf float64

func BenchmarkClassifyRGBSoft(b *testing.B) {
	cl := NewClassifier(0.32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkColor, sinkConf = cl.ClassifyRGBSoft(benchSamples[i%len(benchSamples)])
	}
}

func BenchmarkToHSV(b *testing.B) {
	var s HSV
	for i := 0; i < b.N; i++ {
		s = benchSamples[i%len(benchSamples)].ToHSV()
	}
	_ = s
}
