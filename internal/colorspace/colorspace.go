// Package colorspace provides the color machinery RainBar's decoder relies
// on (paper §III-F): RGB to HSV conversion and the five-color HSV
// classifier with the paper's thresholds — hue sector boundaries at
// 60°/180°/300°, a fixed saturation threshold T_sat = 0.41, and a per-frame
// adaptive value threshold T_v = μ·V_b + (1-μ)·V_o with μ = 0.55 (Eq. 2).
package colorspace

import "math"

// Color is one of the five colors a RainBar block can take. Data blocks use
// White/Red/Green/Blue (2 bits each); Black is structural (corner-tracker
// centers and code locators).
type Color uint8

// The five block colors. The numeric values of White..Blue are exactly the
// 2-bit symbols they encode (paper §III-A: white=00, red=01, green=10,
// blue=11), which also orders the tracking-bar color cycle.
const (
	White Color = 0
	Red   Color = 1
	Green Color = 2
	Blue  Color = 3
	Black Color = 4
)

// NumDataColors is the size of the data alphabet (Black excluded).
const NumDataColors = 4

// BitsPerBlock is the number of payload bits a single data block carries.
const BitsPerBlock = 2

// String returns the lowercase color name.
func (c Color) String() string {
	switch c {
	case White:
		return "white"
	case Red:
		return "red"
	case Green:
		return "green"
	case Blue:
		return "blue"
	case Black:
		return "black"
	default:
		return "invalid"
	}
}

// IsData reports whether c is one of the four data-carrying colors.
func (c Color) IsData() bool { return c < NumDataColors }

// Bits returns the 2-bit symbol for a data color. It panics on Black or an
// invalid color; callers must check IsData first.
func (c Color) Bits() byte {
	if !c.IsData() {
		panic("colorspace: Bits on non-data color " + c.String())
	}
	return byte(c)
}

// FromBits returns the data color for a 2-bit symbol (only the low 2 bits
// of b are used).
func FromBits(b byte) Color { return Color(b & 0x3) }

// RGB is an 8-bit-per-channel color sample.
type RGB struct {
	R, G, B uint8
}

// Reference RGB values the encoder paints blocks with (full-brightness
// screen). The channel simulator then perturbs them.
var (
	RGBWhite = RGB{255, 255, 255}
	RGBRed   = RGB{255, 0, 0}
	RGBGreen = RGB{0, 255, 0}
	RGBBlue  = RGB{0, 0, 255}
	RGBBlack = RGB{0, 0, 0}
)

// Paint returns the reference RGB for any of the five colors.
func Paint(c Color) RGB {
	switch c {
	case White:
		return RGBWhite
	case Red:
		return RGBRed
	case Green:
		return RGBGreen
	case Blue:
		return RGBBlue
	default:
		return RGBBlack
	}
}

// HSV is a color in hue-saturation-value space. Hue is in degrees [0, 360);
// saturation and value are normalized to [0, 1].
type HSV struct {
	H, S, V float64
}

// ToHSV converts an RGB sample to HSV.
func (c RGB) ToHSV() HSV {
	r := float64(c.R) / 255
	g := float64(c.G) / 255
	b := float64(c.B) / 255
	max := math.Max(r, math.Max(g, b))
	min := math.Min(r, math.Min(g, b))
	delta := max - min

	var h float64
	switch {
	case delta == 0:
		h = 0
	case max == r:
		h = 60 * math.Mod((g-b)/delta, 6)
	case max == g:
		h = 60 * ((b-r)/delta + 2)
	default: // max == b
		h = 60 * ((r-g)/delta + 4)
	}
	if h < 0 {
		h += 360
	}

	var s float64
	if max > 0 {
		s = delta / max
	}
	return HSV{H: h, S: s, V: max}
}

// ToRGB converts an HSV color back to RGB.
func (c HSV) ToRGB() RGB {
	h := math.Mod(c.H, 360)
	if h < 0 {
		h += 360
	}
	chroma := c.V * c.S
	hp := h / 60
	x := chroma * (1 - math.Abs(math.Mod(hp, 2)-1))
	var r, g, b float64
	switch {
	case hp < 1:
		r, g, b = chroma, x, 0
	case hp < 2:
		r, g, b = x, chroma, 0
	case hp < 3:
		r, g, b = 0, chroma, x
	case hp < 4:
		r, g, b = 0, x, chroma
	case hp < 5:
		r, g, b = x, 0, chroma
	default:
		r, g, b = chroma, 0, x
	}
	m := c.V - chroma
	return RGB{
		R: clamp8((r + m) * 255),
		G: clamp8((g + m) * 255),
		B: clamp8((b + m) * 255),
	}
}

func clamp8(v float64) uint8 {
	v = math.Round(v)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Thresholds the paper fixes experimentally (§III-F).
const (
	// TSat is the saturation threshold separating white from the chromatic
	// colors.
	TSat = 0.41
	// Mu is the coefficient balancing black vs non-black mean values in the
	// adaptive T_v estimate (Eq. 2).
	Mu = 0.55
	// BlackSeedV is the value level below which a sampled pixel is treated
	// as black while *estimating* T_v (the "value smaller than 0.1" rule).
	BlackSeedV = 0.1
	// DefaultTV is the value threshold used when a frame contains no
	// usable samples for the adaptive estimate.
	DefaultTV = 0.35
)

// Classifier separates pixels into the five block colors. The zero value
// uses DefaultTV; use NewClassifier or EstimateTV to adapt T_v to a frame's
// brightness.
type Classifier struct {
	// TV is the value threshold below which a pixel is black.
	TV float64
}

// NewClassifier returns a classifier with the given value threshold.
func NewClassifier(tv float64) Classifier { return Classifier{TV: tv} }

// Classify maps one HSV sample to a block color using the paper's decision
// procedure: value below T_v → black; else saturation below T_sat → white;
// else hue sector → green (60°,180°), blue (180°,300°), red otherwise.
func (cl Classifier) Classify(p HSV) Color {
	tv := cl.TV
	if tv == 0 {
		tv = DefaultTV
	}
	if p.V < tv {
		return Black
	}
	if p.S < TSat {
		return White
	}
	switch {
	case p.H > 60 && p.H <= 180:
		return Green
	case p.H > 180 && p.H <= 300:
		return Blue
	default:
		return Red
	}
}

// ClassifyRGB classifies an RGB sample directly, bit-identical to
// Classify(p.ToHSV()) for every input and threshold but without any float
// conversion: the black test is one table-backed comparison, the white
// test one table lookup, and the hue sector reduces to integer channel
// comparisons (see lut.go for the derivation and the exhaustive
// equivalence proof in the tests).
func (cl Classifier) ClassifyRGB(p RGB) Color {
	tv := cl.TV
	if tv == 0 {
		tv = DefaultTV
	}
	maxK := p.R
	if p.G > maxK {
		maxK = p.G
	}
	if p.B > maxK {
		maxK = p.B
	}
	if u8f[maxK] < tv { // V = maxc
		return Black
	}
	minK := p.R
	if p.G < minK {
		minK = p.G
	}
	if p.B < minK {
		minK = p.B
	}
	if whiteTab[int(maxK)<<8|int(minK)] {
		return White
	}
	// Chromatic. Branch order matches ToHSV's max selection: R wins ties
	// with G and B, G wins ties with B.
	switch maxK {
	case p.R:
		if p.B == p.R {
			// Exact magenta tie: h == 300 lands on the blue sector's
			// inclusive upper boundary.
			return Blue
		}
		return Red
	case p.G:
		return Green
	default:
		return Blue
	}
}

// ClassifyRGBSoft classifies like ClassifyRGB and additionally reports a
// [0,1] confidence: the sample's normalized margin from the decision
// boundary that would first flip its class. Black confidence is the value
// margin below T_v; white is the smaller of the value margin above T_v and
// the saturation margin below T_sat; a chromatic color takes the smallest
// of the value margin, the saturation margin above T_sat, and the hue
// distance to the nearest sector boundary (60°/180°/300°) over the 60°
// half-sector. The color return is pinned bit-identical to ClassifyRGB:
// the decision uses the same arithmetic and branch order, and confidence
// is computed only after the class is fixed.
func (cl Classifier) ClassifyRGBSoft(p RGB) (Color, float64) {
	tv := cl.TV
	if tv == 0 {
		tv = DefaultTV
	}
	maxK := p.R
	if p.G > maxK {
		maxK = p.G
	}
	if p.B > maxK {
		maxK = p.B
	}
	maxc := u8f[maxK]
	if maxc < tv { // V = maxc
		return Black, clamp01((tv - maxc) / tv)
	}
	minK := p.R
	if p.G < minK {
		minK = p.G
	}
	if p.B < minK {
		minK = p.B
	}
	delta := maxc - u8f[minK]
	vMargin := 1.0
	if tv < 1 {
		vMargin = (maxc - tv) / (1 - tv)
	}
	if whiteTab[int(maxK)<<8|int(minK)] {
		sMargin := (TSat - delta/maxc) / TSat
		if maxK == 0 {
			sMargin = 1
		}
		return White, clamp01(min(vMargin, sMargin))
	}
	sMargin := (delta/maxc - TSat) / (1 - TSat)
	r, g, b := u8f[p.R], u8f[p.G], u8f[p.B]
	var h float64
	switch maxK {
	case p.R:
		h = 60 * ((g - b) / delta)
	case p.G:
		h = 60 * ((b-r)/delta + 2)
	default: // max == b
		h = 60 * ((r-g)/delta + 4)
	}
	if h < 0 {
		h += 360
	}
	// Distance to the nearest sector boundary, over the 60° half-sector.
	// Boundaries sit at 60/180/300; red's sector wraps through 0.
	var hMargin float64
	switch {
	case h > 60 && h <= 180:
		hMargin = min(h-60, 180-h) / 60
		return Green, clamp01(min(vMargin, sMargin, hMargin))
	case h > 180 && h <= 300:
		hMargin = min(h-180, 300-h) / 60
		return Blue, clamp01(min(vMargin, sMargin, hMargin))
	default:
		if h > 300 {
			hMargin = min(h-300, 360-h+60) / 60
		} else {
			hMargin = min(h+60, 60-h) / 60
		}
		return Red, clamp01(min(vMargin, sMargin, hMargin))
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// EstimateTV computes the adaptive black/non-black threshold from a sample
// of pixel values (Eq. 2): T_v = μ·V_b + (1-μ)·V_o, where V_b and V_o are
// the mean values of the black and non-black pixel populations.
//
// The populations are separated by two-means clustering rather than the
// paper's fixed "V < 0.1 is black" seed: under ambient veiling light
// (outdoor captures) the black population floats well above 0.1 and the
// fixed seed finds no black pixels at all, while clustering still splits
// the two modes. When the sample has no meaningful bimodality (cluster
// means closer than 0.1) the capture has no usable structure and the
// estimate falls back to DefaultTV.
func EstimateTV(values []float64) float64 {
	vb, vo, ok := EstimateTVClusters(values)
	if !ok {
		return DefaultTV
	}
	return TVForMu(vb, vo, Mu)
}

// EstimateTVClusters runs the two-means split behind EstimateTV and returns
// the black and non-black cluster means themselves, so callers can re-derive
// T_v under alternative μ values (the decode-recovery μ-sweep) without
// re-clustering. ok is false when the sample has no usable bimodality — the
// same conditions under which EstimateTV falls back to DefaultTV.
func EstimateTVClusters(values []float64) (vb, vo float64, ok bool) {
	if len(values) == 0 {
		return 0, 0, false
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 0.1 {
		return 0, 0, false
	}
	// Two-means on a scalar: iterate threshold = midpoint of cluster means.
	cb, co := lo, hi
	for iter := 0; iter < 16; iter++ {
		mid := (cb + co) / 2
		var sumB, sumO float64
		var nB, nO int
		for _, v := range values {
			if v < mid {
				sumB += v
				nB++
			} else {
				sumO += v
				nO++
			}
		}
		if nB == 0 || nO == 0 {
			break
		}
		nb, no := sumB/float64(nB), sumO/float64(nO)
		if nb == cb && no == co {
			break
		}
		cb, co = nb, no
	}
	if co-cb < 0.1 {
		return 0, 0, false
	}
	return cb, co, true
}

// TVForMu evaluates Eq. 2 for an arbitrary μ against previously estimated
// cluster means. TVForMu(vb, vo, Mu) is the exact expression EstimateTV
// computes.
func TVForMu(vb, vo, mu float64) float64 {
	return mu*vb + (1-mu)*vo
}

// RGBClassifier is the naive fixed-threshold RGB classifier used as the
// ablation baseline for experiment E15: it thresholds raw channel values
// and is brittle under illumination changes, unlike the HSV classifier.
type RGBClassifier struct {
	// Threshold is the channel level above which a channel counts as "on".
	// The zero value uses 128.
	Threshold uint8
}

// Classify maps an RGB sample to a block color by channel thresholding.
func (cl RGBClassifier) Classify(p RGB) Color {
	th := cl.Threshold
	if th == 0 {
		th = 128
	}
	r, g, b := p.R >= th, p.G >= th, p.B >= th
	switch {
	case r && g && b:
		return White
	case !r && !g && !b:
		return Black
	case r && !g && !b:
		return Red
	case !r && g && !b:
		return Green
	case !r && !g && b:
		return Blue
	default:
		// Ambiguous mixtures: pick the dominant channel.
		if p.R >= p.G && p.R >= p.B {
			return Red
		}
		if p.G >= p.B {
			return Green
		}
		return Blue
	}
}
