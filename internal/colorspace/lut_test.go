package colorspace

import (
	"math/rand"
	"testing"
)

// classifyRGBSoftFloat is the pre-LUT float implementation of
// ClassifyRGBSoft, kept verbatim as the executable specification: the
// table-driven path must reproduce both its class and its confidence bits.
func classifyRGBSoftFloat(cl Classifier, p RGB) (Color, float64) {
	tv := cl.TV
	if tv == 0 {
		tv = DefaultTV
	}
	r := float64(p.R) / 255
	g := float64(p.G) / 255
	b := float64(p.B) / 255
	maxc := r
	if g > maxc {
		maxc = g
	}
	if b > maxc {
		maxc = b
	}
	if maxc < tv {
		return Black, clamp01((tv - maxc) / tv)
	}
	minc := r
	if g < minc {
		minc = g
	}
	if b < minc {
		minc = b
	}
	delta := maxc - minc
	vMargin := 1.0
	if tv < 1 {
		vMargin = (maxc - tv) / (1 - tv)
	}
	if maxc == 0 || delta/maxc < TSat {
		sMargin := (TSat - delta/maxc) / TSat
		if maxc == 0 {
			sMargin = 1
		}
		return White, clamp01(min(vMargin, sMargin))
	}
	sMargin := (delta/maxc - TSat) / (1 - TSat)
	var h float64
	switch {
	case maxc == r:
		h = 60 * ((g - b) / delta)
	case maxc == g:
		h = 60 * ((b-r)/delta + 2)
	default:
		h = 60 * ((r-g)/delta + 4)
	}
	if h < 0 {
		h += 360
	}
	var hMargin float64
	switch {
	case h > 60 && h <= 180:
		hMargin = min(h-60, 180-h) / 60
		return Green, clamp01(min(vMargin, sMargin, hMargin))
	case h > 180 && h <= 300:
		hMargin = min(h-180, 300-h) / 60
		return Blue, clamp01(min(vMargin, sMargin, hMargin))
	default:
		if h > 300 {
			hMargin = min(h-300, 360-h+60) / 60
		} else {
			hMargin = min(h+60, 60-h) / 60
		}
		return Red, clamp01(min(vMargin, sMargin, hMargin))
	}
}

func TestClassifyLUTExhaustive(t *testing.T) {
	// The integer reduction must agree with the two-step float reference
	// over the ENTIRE 8-bit RGB domain — 2^24 inputs, no sampling. The TV
	// threshold enters both paths through the identical u8f[max] < tv
	// comparison, so one representative threshold exhausts the sector and
	// white logic; TV variation is covered by the sampled sweep below.
	cl := Classifier{} // DefaultTV
	for r := 0; r < 256; r++ {
		for g := 0; g < 256; g++ {
			for b := 0; b < 256; b++ {
				p := RGB{uint8(r), uint8(g), uint8(b)}
				want := cl.Classify(p.ToHSV())
				if got := cl.ClassifyRGB(p); got != want {
					t.Fatalf("ClassifyRGB(%v) = %v, Classify(ToHSV) = %v", p, got, want)
				}
			}
		}
	}
}

func TestClassifyLUTSampledTV(t *testing.T) {
	// Random RGB x TV sweep, including thresholds that sit exactly on
	// u8f quantization points (where u8f[max] < tv flips) and the
	// degenerate tv >= 1 / tiny-tv extremes.
	tvs := []float64{0.05, 0.1, 0.32, DefaultTV, 0.5, 0.77, 0.9, 0.999, 1.0}
	for k := 0; k < 256; k += 17 {
		tvs = append(tvs, float64(k)/255)
	}
	rng := rand.New(rand.NewSource(99))
	for _, tv := range tvs {
		cl := Classifier{TV: tv}
		for i := 0; i < 60000; i++ {
			p := RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
			want := cl.Classify(p.ToHSV())
			if got := cl.ClassifyRGB(p); got != want {
				t.Fatalf("TV=%v ClassifyRGB(%v) = %v, want %v", tv, p, got, want)
			}
		}
	}
}

func TestClassifyRGBSoftMatchesFloatReference(t *testing.T) {
	// Class AND confidence must be bit-identical to the float
	// implementation — confidences feed vote weights and erasure ranking,
	// so a one-ulp drift would change experiment tables.
	rng := rand.New(rand.NewSource(41))
	for _, tv := range []float64{0, 0.1, DefaultTV, 0.5, 0.9, 1.0} {
		cl := Classifier{TV: tv}
		for i := 0; i < 300000; i++ {
			p := RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
			gotC, gotF := cl.ClassifyRGBSoft(p)
			wantC, wantF := classifyRGBSoftFloat(cl, p)
			if gotC != wantC || gotF != wantF {
				t.Fatalf("TV=%v ClassifyRGBSoft(%v) = (%v, %v), want (%v, %v)",
					tv, p, gotC, gotF, wantC, wantF)
			}
		}
	}
}

func TestValueMatchesToHSV(t *testing.T) {
	for r := 0; r < 256; r += 3 {
		for g := 0; g < 256; g += 3 {
			for b := 0; b < 256; b += 3 {
				p := RGB{uint8(r), uint8(g), uint8(b)}
				if got, want := p.Value(), p.ToHSV().V; got != want {
					t.Fatalf("Value(%v) = %v, ToHSV().V = %v", p, got, want)
				}
			}
		}
	}
}
