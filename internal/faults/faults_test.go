package faults

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"rainbar/internal/colorspace"
	"rainbar/internal/raster"
)

// testImage builds a deterministic gradient so every test starts from the
// same pixels without touching any encoder.
func testImage(w, h int) *raster.Image {
	img := raster.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.Pix[y*w+x] = colorspace.RGB{
				R: uint8((x * 7) % 256),
				G: uint8((y * 13) % 256),
				B: uint8((x + y) % 256),
			}
		}
	}
	return img
}

func fullChain(seed int64) *Chain {
	return NewChain(seed,
		FrameDrop{P: 0.1},
		PartialFrame{P: 0.15, Splice: true},
		PartialFrame{P: 0.1},
		BurstBlocks{P: 0.2},
		Occlusion{P: 0.25, Corners: true},
		ExposureFlicker{Amplitude: 0.3},
		SaturationClip{P: 0.1},
	)
}

// hashRun applies the chain to nFrames gradient captures and digests the
// surviving pixels together with the kept/dropped pattern.
func hashRun(c *Chain, nFrames int) string {
	h := sha256.New()
	for k := 0; k < nFrames; k++ {
		img := testImage(96, 64)
		if c.Apply(img, k) {
			fmt.Fprintf(h, "frame %d kept\n", k)
			for _, p := range img.Pix {
				h.Write([]byte{p.R, p.G, p.B})
			}
		} else {
			fmt.Fprintf(h, "frame %d dropped\n", k)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestChainBitReproducible pins the exact output of a full chain for a
// fixed seed. If this test fails, the determinism contract changed and
// every recorded experiment with faults becomes unreproducible — do not
// update the constant without understanding why it moved.
func TestChainBitReproducible(t *testing.T) {
	const want = "d37a1e4bb2dd444889b350ffb6affeced2f4555ecb2d8e18484712790d838418"
	got := hashRun(fullChain(42), 40)
	if got != want {
		t.Fatalf("fault pattern for seed 42 changed:\n got %s\nwant %s", got, want)
	}
}

// TestChainSameSeedSameOutput checks two independently built chains agree.
func TestChainSameSeedSameOutput(t *testing.T) {
	if a, b := hashRun(fullChain(7), 25), hashRun(fullChain(7), 25); a != b {
		t.Fatalf("same seed, different output: %s vs %s", a, b)
	}
	if a, b := hashRun(fullChain(7), 25), hashRun(fullChain(8), 25); a == b {
		t.Fatalf("different seeds produced identical output %s", a)
	}
}

// TestFrameIndependence replays a single capture in isolation and checks it
// matches the same capture inside a longer run: capture k's faults must be
// a pure function of (seed, k).
func TestFrameIndependence(t *testing.T) {
	const k = 17
	seq := fullChain(99)
	var inSeq *raster.Image
	seqKept := false
	for f := 0; f <= k; f++ {
		img := testImage(96, 64)
		kept := seq.Apply(img, f)
		if f == k {
			inSeq, seqKept = img, kept
		}
	}
	alone := testImage(96, 64)
	aloneKept := fullChain(99).Apply(alone, k)
	if seqKept != aloneKept {
		t.Fatalf("kept mismatch: in-sequence %v, isolated %v", seqKept, aloneKept)
	}
	if !seqKept {
		return
	}
	for i := range inSeq.Pix {
		if inSeq.Pix[i] != alone.Pix[i] {
			t.Fatalf("pixel %d differs: %v vs %v", i, inSeq.Pix[i], alone.Pix[i])
		}
	}
}

func TestNilChainIsNoOp(t *testing.T) {
	var c *Chain
	img := testImage(16, 16)
	ref := testImage(16, 16)
	if !c.Apply(img, 0) {
		t.Fatal("nil chain dropped a frame")
	}
	for i := range img.Pix {
		if img.Pix[i] != ref.Pix[i] {
			t.Fatal("nil chain mutated the image")
		}
	}
	if c.Drops() != 0 || c.Counters() != nil {
		t.Fatal("nil chain reported activity")
	}
	if c.CloneFresh() != nil {
		t.Fatal("nil chain cloned to non-nil")
	}
}

func TestFrameDropAlwaysAndNever(t *testing.T) {
	always := NewChain(1, FrameDrop{P: 1})
	never := NewChain(1, FrameDrop{P: 0})
	for k := 0; k < 10; k++ {
		if always.Apply(testImage(8, 8), k) {
			t.Fatalf("P=1 kept frame %d", k)
		}
		if !never.Apply(testImage(8, 8), k) {
			t.Fatalf("P=0 dropped frame %d", k)
		}
	}
	if always.Drops() != 10 {
		t.Fatalf("drops = %d, want 10", always.Drops())
	}
	if always.Counters()["drop"] != 10 {
		t.Fatalf("counters = %v, want drop:10", always.Counters())
	}
	if never.Counters() != nil {
		t.Fatalf("P=0 recorded %v", never.Counters())
	}
}

func TestTruncateBlanksBelowCut(t *testing.T) {
	c := NewChain(3, PartialFrame{P: 1})
	img := testImage(32, 40)
	if !c.Apply(img, 0) {
		t.Fatal("truncate dropped the frame")
	}
	// Find the first blank row; everything below must be blank, everything
	// above untouched.
	ref := testImage(32, 40)
	cut := -1
	for y := 0; y < img.H; y++ {
		blank := true
		for x := 0; x < img.W; x++ {
			if img.Pix[y*img.W+x] != (colorspace.RGB{}) {
				blank = false
				break
			}
		}
		if blank {
			cut = y
			break
		}
	}
	if cut <= 0 {
		t.Fatalf("no cut found (cut=%d)", cut)
	}
	for i := 0; i < cut*img.W; i++ {
		if img.Pix[i] != ref.Pix[i] {
			t.Fatalf("pixel %d above cut modified", i)
		}
	}
	for i := cut * img.W; i < len(img.Pix); i++ {
		if img.Pix[i] != (colorspace.RGB{}) {
			t.Fatalf("pixel %d below cut not blank", i)
		}
	}
}

func TestSpliceReplaysTopRows(t *testing.T) {
	c := NewChain(3, PartialFrame{P: 1, Splice: true})
	img := testImage(32, 40)
	ref := testImage(32, 40)
	if !c.Apply(img, 0) {
		t.Fatal("splice dropped the frame")
	}
	// Locate the cut: the first row differing from the reference.
	cut := -1
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			if img.Pix[y*img.W+x] != ref.Pix[y*img.W+x] {
				cut = y
				break
			}
		}
		if cut >= 0 {
			break
		}
	}
	if cut <= 0 {
		t.Fatalf("no splice cut found")
	}
	for y := cut; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			if img.Pix[y*img.W+x] != ref.Pix[(y-cut)*img.W+x] {
				t.Fatalf("row %d not a replay of row %d", y, y-cut)
			}
		}
	}
}

func TestFlickerPureFunctionOfFrame(t *testing.T) {
	e := ExposureFlicker{Amplitude: 0.35, PeriodFrames: 5}
	a, b := testImage(16, 16), testImage(16, 16)
	// Same frame index twice, even with nil rng: identical output.
	e.Apply(a, 3, nil)
	e.Apply(b, 3, nil)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("flicker not deterministic in frame index")
		}
	}
	// Different phase in the period changes the image.
	c := testImage(16, 16)
	e.Apply(c, 4, nil)
	same := true
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("flicker ignored the frame index")
	}
}

func TestSaturationClipSaturates(t *testing.T) {
	c := NewChain(5, SaturationClip{P: 1, Gain: 4})
	img := testImage(16, 16)
	if !c.Apply(img, 0) {
		t.Fatal("clip dropped the frame")
	}
	sat := 0
	for _, p := range img.Pix {
		if p.R == 255 || p.G == 255 || p.B == 255 {
			sat++
		}
	}
	if sat < len(img.Pix)/2 {
		t.Fatalf("only %d/%d pixels saturated at gain 4", sat, len(img.Pix))
	}
}

func TestOcclusionPaintsGray(t *testing.T) {
	c := NewChain(11, Occlusion{P: 1, Corners: true})
	img := testImage(120, 80)
	if !c.Apply(img, 0) {
		t.Fatal("occlusion dropped the frame")
	}
	gray := 0
	for _, p := range img.Pix {
		if p == (colorspace.RGB{R: 105, G: 105, B: 105}) {
			gray++
		}
	}
	if gray < 4 {
		t.Fatalf("only %d gray pixels after occlusion", gray)
	}
}

func TestCountersAndReset(t *testing.T) {
	c := fullChain(13)
	for k := 0; k < 30; k++ {
		c.Apply(testImage(48, 32), k)
	}
	counts := c.Counters()
	if len(counts) == 0 {
		t.Fatal("no counters after 30 frames of a dense chain")
	}
	// Flicker fires on nearly every frame (gain != 1 off the zero crossings).
	if counts["flicker"] == 0 {
		t.Fatalf("flicker never counted: %v", counts)
	}
	// Counters() must be a copy.
	counts["flicker"] = -1
	if c.Counters()["flicker"] == -1 {
		t.Fatal("Counters exposed internal state")
	}
	c.Reset()
	if c.Counters() != nil || c.Drops() != 0 {
		t.Fatal("Reset left counters")
	}
}

func TestCloneFreshSharesPatternNotCounters(t *testing.T) {
	a := fullChain(21)
	_ = hashRun(a, 10)
	b := a.CloneFresh()
	if b.Counters() != nil || b.Drops() != 0 {
		t.Fatal("CloneFresh carried counters")
	}
	if got, want := hashRun(b, 10), hashRun(fullChain(21), 10); got != want {
		t.Fatal("CloneFresh changed the fault pattern")
	}
}

func TestParseSpec(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		for _, spec := range []string{"", "drop=0", "drop=0,occlude=0"} {
			c, err := ParseSpec(spec)
			if err != nil || c != nil {
				t.Fatalf("ParseSpec(%q) = %v, %v; want nil, nil", spec, c, err)
			}
		}
	})
	t.Run("canonical order", func(t *testing.T) {
		a, err := ParseSpec("clip=0.1,drop=0.2,occlude=0.3")
		if err != nil {
			t.Fatal(err)
		}
		b, err := ParseSpec("occlude=0.3,clip=0.1,drop=0.2")
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("spec order changed the chain: %q vs %q", a, b)
		}
		if got, want := a.String(), "faults: drop occlude clip"; got != want {
			t.Fatalf("chain = %q, want %q", got, want)
		}
		if ha, hb := hashRun(a, 15), hashRun(b, 15); ha != hb {
			t.Fatal("equal specs produced different fault patterns")
		}
	})
	t.Run("seed", func(t *testing.T) {
		c, err := ParseSpec("drop=0.5,seed=77")
		if err != nil {
			t.Fatal(err)
		}
		if c.Seed != 77 {
			t.Fatalf("seed = %d, want 77", c.Seed)
		}
	})
	t.Run("errors", func(t *testing.T) {
		for _, spec := range []string{"nope=0.1", "drop", "drop=1.5", "drop=-0.1", "drop=0.1x", "drop=0.1,"} {
			if _, err := ParseSpec(spec); err == nil && spec != "drop=0.1," {
				t.Errorf("ParseSpec(%q) accepted", spec)
			}
		}
		if _, err := ParseSpec("drop=abc"); err == nil {
			t.Error("non-numeric value accepted")
		}
	})
	t.Run("all classes", func(t *testing.T) {
		c, err := ParseSpec("drop=0.1,splice=0.1,truncate=0.1,burst=0.1,occlude=0.1,flicker=0.3,clip=0.1")
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Injectors) != 7 {
			t.Fatalf("%d injectors, want 7 (%s)", len(c.Injectors), c)
		}
	})
}
