// Package faults is a composable fault-injection layer for the simulated
// optical link. The channel model in internal/channel degrades captures
// smoothly (blur, noise, veiling light); real screen-camera links also fail
// abruptly — a capture lost outright to motion blur, a rolling-shutter
// readout spliced across a frame boundary, an occluding thumb over a corner
// tracker, auto-exposure hunting between frames. Each such failure mode is
// an Injector here; a Chain composes them and is wired through
// channel.Channel (single captures) and camera.Camera (filmed streams).
//
// Determinism contract: every injector decision for capture k is drawn from
// a PRNG seeded purely by (Chain.Seed, injector position, k). Faults on one
// capture therefore never depend on how many captures preceded it, which
// goroutine processed it, or what other injectors did — two runs with the
// same seed produce bit-identical fault patterns, and a single capture can
// be replayed in isolation.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"rainbar/internal/colorspace"
	"rainbar/internal/obs"
	"rainbar/internal/raster"
)

// ErrFrameDropped is returned by capture paths when the injector chain
// discarded the capture outright (whole-frame loss).
var ErrFrameDropped = errors.New("faults: frame dropped")

// Outcome reports what an injector did to one capture.
type Outcome int

// Injector outcomes.
const (
	// OutcomeNone: the injector left this capture untouched.
	OutcomeNone Outcome = iota
	// OutcomeApplied: the injector corrupted the capture in place.
	OutcomeApplied
	// OutcomeDropped: the capture is lost entirely; later injectors do not
	// run and the capture must not reach the decoder.
	OutcomeDropped
)

// Injector is one fault class. Apply may mutate img in place; all
// randomness must come from rng, which the Chain derives purely from
// (seed, injector position, frame index).
type Injector interface {
	// Name identifies the fault class in counters and specs.
	Name() string
	// Apply injects the fault into capture img with index frame.
	Apply(img *raster.Image, frame int, rng *rand.Rand) Outcome
}

// Chain applies a fixed sequence of injectors to each capture. The zero
// value (or a nil *Chain) is a no-op. Apply mutates the per-class counters,
// so a Chain must not be shared across goroutines; clone one per worker
// with CloneFresh.
type Chain struct {
	// Seed drives every injector decision; see the package determinism
	// contract.
	Seed int64
	// Injectors run in order; a drop short-circuits the rest.
	Injectors []Injector
	// Recorder, when set, mirrors every per-class application count as a
	// labeled rainbar_faults_injected_total series. Fault decisions never
	// depend on it.
	Recorder obs.Recorder

	counts map[string]int
	drops  int
}

// NewChain builds a chain over the given injectors.
func NewChain(seed int64, inj ...Injector) *Chain {
	return &Chain{Seed: seed, Injectors: inj}
}

// CloneFresh returns a chain with the same seed and injectors but zeroed
// counters, for handing to another goroutine or a fresh run.
func (c *Chain) CloneFresh() *Chain {
	if c == nil {
		return nil
	}
	return &Chain{Seed: c.Seed, Injectors: c.Injectors, Recorder: c.Recorder}
}

// splitmix64 is the standard avalanche mixer; it turns the structured
// (seed, injector, frame) triple into uncorrelated PRNG seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// rngFor derives the PRNG for injector position i on capture frame.
func (c *Chain) rngFor(i, frame int) *rand.Rand {
	h := splitmix64(uint64(c.Seed) ^ splitmix64(uint64(i)<<32|uint64(uint32(frame))))
	// Determinism contract (RB-D2): locally seeded *rand.Rand — fault
	// decisions are a pure function of (chain seed, injector position,
	// capture index), independent of evaluation order or host state.
	return rand.New(rand.NewSource(int64(h)))
}

// Apply runs the chain on capture img with index frame. It returns false
// when the capture was dropped; the image contents are then unspecified.
// A nil chain keeps every capture untouched.
func (c *Chain) Apply(img *raster.Image, frame int) (kept bool) {
	if c == nil {
		return true
	}
	for i, inj := range c.Injectors {
		switch inj.Apply(img, frame, c.rngFor(i, frame)) {
		case OutcomeApplied:
			c.record(inj.Name())
		case OutcomeDropped:
			c.record(inj.Name())
			c.drops++
			return false
		}
	}
	return true
}

func (c *Chain) record(name string) {
	if c.counts == nil {
		c.counts = make(map[string]int)
	}
	c.counts[name]++
	if obs.Enabled(c.Recorder) {
		c.Recorder.Inc(obs.With(obs.MFaultsInjected, "class", name), 1)
	}
}

// Counters returns a copy of the per-class application counts accumulated
// since construction (or the last Reset). Dropped captures count both in
// their class and in Drops.
func (c *Chain) Counters() map[string]int {
	if c == nil || len(c.counts) == 0 {
		return nil
	}
	out := make(map[string]int, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// Drops returns the number of captures discarded by the chain.
func (c *Chain) Drops() int {
	if c == nil {
		return 0
	}
	return c.drops
}

// Reset zeroes the counters.
func (c *Chain) Reset() {
	if c != nil {
		c.counts, c.drops = nil, 0
	}
}

// String summarizes the chain's injector classes.
func (c *Chain) String() string {
	if c == nil || len(c.Injectors) == 0 {
		return "faults: none"
	}
	s := "faults:"
	for _, inj := range c.Injectors {
		s += " " + inj.Name()
	}
	return s
}

// --- injectors ---

// FrameDrop loses whole captures with probability P: the motion-blur and
// defocus events that destroy a capture beyond any decoding (PAPERS.md,
// "An Image Processing Based Blur Reduction Technique...").
type FrameDrop struct {
	// P is the per-capture drop probability in [0, 1].
	P float64
}

// Name implements Injector.
func (FrameDrop) Name() string { return "drop" }

// Apply implements Injector.
func (f FrameDrop) Apply(_ *raster.Image, _ int, rng *rand.Rand) Outcome {
	if rng.Float64() < f.P {
		return OutcomeDropped
	}
	return OutcomeNone
}

// PartialFrame models rolling-shutter readout failures at a frame boundary
// (PAPERS.md, "A Novel Frame Identification and Synchronization
// Technique..."): with probability P the capture is cut at a random row.
// Truncation blanks everything below the cut (readout aborted); splice
// instead re-reads the capture's own top rows below the cut, producing the
// stitched two-partial-frames image a misidentified frame boundary yields.
type PartialFrame struct {
	// P is the per-capture probability.
	P float64
	// Splice selects splice (true) over truncation (false).
	Splice bool
	// MinFrac, MaxFrac bound the cut row as a fraction of image height
	// (defaults 0.3, 0.7 when both zero).
	MinFrac, MaxFrac float64
}

// Name implements Injector.
func (p PartialFrame) Name() string {
	if p.Splice {
		return "splice"
	}
	return "truncate"
}

// Apply implements Injector.
func (p PartialFrame) Apply(img *raster.Image, _ int, rng *rand.Rand) Outcome {
	if rng.Float64() >= p.P {
		return OutcomeNone
	}
	lo, hi := p.MinFrac, p.MaxFrac
	if lo == 0 && hi == 0 {
		lo, hi = 0.3, 0.7
	}
	cut := int(float64(img.H) * (lo + rng.Float64()*(hi-lo)))
	if cut < 1 {
		cut = 1
	}
	if cut >= img.H {
		cut = img.H - 1
	}
	if p.Splice {
		// Rows below the cut replay the frame from its own top: the readout
		// latched onto the next display frame, which (worst case for the
		// decoder) shows the same geometry with the wrong rows. Snapshot the
		// source band first — when the replay is taller than the cut the
		// ranges overlap and an in-place copy would tile the top band.
		src := make([]colorspace.RGB, (img.H-cut)*img.W)
		copy(src, img.Pix[:len(src)])
		copy(img.Pix[cut*img.W:], src)
	} else {
		for i := cut * img.W; i < len(img.Pix); i++ {
			img.Pix[i] = colorspace.RGB{}
		}
	}
	return OutcomeApplied
}

// BurstBlocks wipes horizontal bands of the capture with saturated random
// pixels, modeling bursty sensor/ISP corruption that destroys whole block
// rows at once.
type BurstBlocks struct {
	// P is the per-capture probability.
	P float64
	// MaxBursts bounds bands per afflicted capture (default 2).
	MaxBursts int
	// MinPx, MaxPx bound each band's height in pixels (defaults 8, 32).
	MinPx, MaxPx int
}

// Name implements Injector.
func (BurstBlocks) Name() string { return "burst" }

// Apply implements Injector.
func (b BurstBlocks) Apply(img *raster.Image, _ int, rng *rand.Rand) Outcome {
	if rng.Float64() >= b.P {
		return OutcomeNone
	}
	maxBursts := b.MaxBursts
	if maxBursts <= 0 {
		maxBursts = 2
	}
	minPx, maxPx := b.MinPx, b.MaxPx
	if minPx <= 0 {
		minPx = 8
	}
	if maxPx < minPx {
		maxPx = minPx + 24
	}
	n := 1 + rng.Intn(maxBursts)
	for k := 0; k < n; k++ {
		h := minPx + rng.Intn(maxPx-minPx+1)
		y0 := rng.Intn(img.H)
		y1 := min(y0+h, img.H)
		for y := y0; y < y1; y++ {
			row := img.Pix[y*img.W : (y+1)*img.W]
			for x := range row {
				row[x] = colorspace.RGB{
					R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256)),
				}
			}
		}
	}
	return OutcomeApplied
}

// Occlusion paints opaque patches over the capture — a finger, a sticker,
// glare. With Corners set, patches target the capture's corner regions,
// which is where RainBar keeps its corner trackers and the starts of its
// locator columns (§III-E); that is the occlusion that actually hurts.
type Occlusion struct {
	// P is the per-capture probability.
	P float64
	// MaxPatches bounds patches per afflicted capture (default 1).
	MaxPatches int
	// MinFrac, MaxFrac bound each patch's side as a fraction of the shorter
	// image dimension (defaults 0.08, 0.2).
	MinFrac, MaxFrac float64
	// Corners aims the patches at the four corner quadrants.
	Corners bool
}

// Name implements Injector.
func (Occlusion) Name() string { return "occlude" }

// Apply implements Injector.
func (o Occlusion) Apply(img *raster.Image, _ int, rng *rand.Rand) Outcome {
	if rng.Float64() >= o.P {
		return OutcomeNone
	}
	maxPatches := o.MaxPatches
	if maxPatches <= 0 {
		maxPatches = 1
	}
	lo, hi := o.MinFrac, o.MaxFrac
	if lo == 0 && hi == 0 {
		lo, hi = 0.08, 0.2
	}
	short := min(img.W, img.H)
	n := 1 + rng.Intn(maxPatches)
	for k := 0; k < n; k++ {
		side := int(float64(short) * (lo + rng.Float64()*(hi-lo)))
		if side < 2 {
			side = 2
		}
		var x0, y0 int
		if o.Corners {
			// A corner quadrant, offset so the patch overlaps the corner
			// tracker's neighborhood rather than the exact image corner
			// (the warp leaves a dark surround there anyway).
			cx := []int{img.W / 8, img.W - img.W/8 - side}[rng.Intn(2)]
			cy := []int{img.H / 8, img.H - img.H/8 - side}[rng.Intn(2)]
			x0, y0 = cx+rng.Intn(side/2+1), cy+rng.Intn(side/2+1)
		} else {
			x0, y0 = rng.Intn(img.W), rng.Intn(img.H)
		}
		// Matte gray: neither a data color nor structural black.
		img.FillRect(x0, y0, side, side, colorspace.RGB{R: 105, G: 105, B: 105})
	}
	return OutcomeApplied
}

// ExposureFlicker scales brightness by a sinusoid of the frame index —
// auto-exposure hunting / mains flicker. It is a pure function of the frame
// index (no random draws), the strictest form of the determinism contract.
type ExposureFlicker struct {
	// Amplitude is the peak relative gain deviation (e.g. 0.35 swings
	// brightness between 0.65x and 1.35x).
	Amplitude float64
	// PeriodFrames is the flicker period in captures (default 5).
	PeriodFrames float64
}

// Name implements Injector.
func (ExposureFlicker) Name() string { return "flicker" }

// Apply implements Injector.
func (e ExposureFlicker) Apply(img *raster.Image, frame int, _ *rand.Rand) Outcome {
	if e.Amplitude == 0 {
		return OutcomeNone
	}
	period := e.PeriodFrames
	if period <= 0 {
		period = 5
	}
	gain := 1 + e.Amplitude*math.Sin(2*math.Pi*float64(frame)/period)
	if gain == 1 {
		return OutcomeNone
	}
	scalePix(img, gain)
	return OutcomeApplied
}

// SaturationClip overexposes the capture with probability P: all channels
// are scaled by Gain and clipped at 255, blowing out highlights so that
// white, and the brightest parts of red/green/blue blocks, merge — the
// failure HSV classification is most sensitive to.
type SaturationClip struct {
	// P is the per-capture probability.
	P float64
	// Gain is the overexposure factor (default 1.8).
	Gain float64
}

// Name implements Injector.
func (SaturationClip) Name() string { return "clip" }

// Apply implements Injector.
func (s SaturationClip) Apply(img *raster.Image, _ int, rng *rand.Rand) Outcome {
	if rng.Float64() >= s.P {
		return OutcomeNone
	}
	gain := s.Gain
	if gain <= 0 {
		gain = 1.8
	}
	scalePix(img, gain)
	return OutcomeApplied
}

func scalePix(img *raster.Image, gain float64) {
	scale := func(v uint8) uint8 {
		f := float64(v) * gain
		if f > 255 {
			return 255
		}
		if f < 0 {
			return 0
		}
		return uint8(f + 0.5)
	}
	for i, p := range img.Pix {
		img.Pix[i] = colorspace.RGB{R: scale(p.R), G: scale(p.G), B: scale(p.B)}
	}
}

// --- spec parsing ---

// ParseSpec builds a chain from a compact CLI spec: comma-separated
// key=value pairs, one per fault class, e.g.
//
//	"drop=0.1,splice=0.05,truncate=0.1,burst=0.1,occlude=0.1,flicker=0.3,clip=0.05,seed=7"
//
// Values are per-capture probabilities except flicker (amplitude) and seed.
// Injector order is canonical (the order above), independent of spec order,
// so equal specs build identical chains. An empty spec returns a nil chain.
func ParseSpec(spec string) (*Chain, error) {
	if spec == "" {
		return nil, nil
	}
	vals := map[string]float64{}
	var seed int64 = 1
	for _, field := range splitComma(spec) {
		k, v, err := parsePair(field)
		if err != nil {
			return nil, err
		}
		if k == "seed" {
			seed = int64(v)
			continue
		}
		if _, ok := specOrder[k]; !ok {
			return nil, fmt.Errorf("faults: unknown fault class %q in spec", k)
		}
		if k != "flicker" && (v < 0 || v > 1) {
			return nil, fmt.Errorf("faults: %s=%v out of [0, 1]", k, v)
		}
		vals[k] = v
	}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return specOrder[keys[i]] < specOrder[keys[j]] })
	var inj []Injector
	for _, k := range keys {
		v := vals[k]
		if v == 0 {
			continue
		}
		switch k {
		case "drop":
			inj = append(inj, FrameDrop{P: v})
		case "splice":
			inj = append(inj, PartialFrame{P: v, Splice: true})
		case "truncate":
			inj = append(inj, PartialFrame{P: v})
		case "burst":
			inj = append(inj, BurstBlocks{P: v})
		case "occlude":
			inj = append(inj, Occlusion{P: v, Corners: true})
		case "flicker":
			inj = append(inj, ExposureFlicker{Amplitude: v})
		case "clip":
			inj = append(inj, SaturationClip{P: v})
		}
	}
	if len(inj) == 0 {
		return nil, nil
	}
	return NewChain(seed, inj...), nil
}

// specOrder fixes the canonical injector order within a parsed chain.
var specOrder = map[string]int{
	"drop": 0, "splice": 1, "truncate": 2, "burst": 3,
	"occlude": 4, "flicker": 5, "clip": 6,
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func parsePair(field string) (string, float64, error) {
	for i := 0; i < len(field); i++ {
		if field[i] == '=' {
			v, err := strconv.ParseFloat(field[i+1:], 64)
			if err != nil {
				return "", 0, fmt.Errorf("faults: bad value in %q", field)
			}
			return field[:i], v, nil
		}
	}
	return "", 0, fmt.Errorf("faults: field %q is not key=value", field)
}
