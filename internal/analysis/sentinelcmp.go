package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerSentinelCmp (RB-E1) forbids comparing sentinel errors with ==
// or !=. Every boundary in the pipeline wraps errors with %w context
// (fmt.Errorf("lightsync: %w", err)), so an == against the sentinel is
// false exactly when the error took a realistic path; errors.Is follows
// the wrap chain. Applies to test files too: a test asserting with ==
// pins an implementation detail, not the contract.
var AnalyzerSentinelCmp = &Analyzer{
	ID:  "RB-E1",
	Doc: "sentinel errors must be compared with errors.Is, never == or !=",
	Run: runSentinelCmp,
}

func runSentinelCmp(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if p.isNil(bin.X) || p.isNil(bin.Y) {
				return true
			}
			for _, side := range []ast.Expr{bin.X, bin.Y} {
				if name, ok := p.sentinelError(side); ok {
					p.Report(bin.Pos(), "sentinel error %s compared with %s: use errors.Is so wrapped errors still match", name, bin.Op)
					return true
				}
			}
			return true
		})
	}
}

func (p *Pass) isNil(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.IsNil()
}

// sentinelError reports whether e denotes a package-level variable whose
// type is (or implements) error — the shape of errors.New/fmt.Errorf
// sentinels like core.ErrBadFrame or io.EOF.
func (p *Pass) sentinelError(e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := p.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !isErrorType(v.Type()) {
		return "", false
	}
	return v.Name(), true
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
