// Package timenow is an RB-D1 fixture: wall-clock reads in a
// determinism-contract package.
package timenow

import "time"

func stamp() time.Duration {
	t0 := time.Now() // want "time.Now in determinism-contract package"
	work()
	return time.Since(t0) // want "time.Since in determinism-contract package"
}

func allowed() time.Time {
	// Constructing fixed times is fine: only the wall clock is forbidden.
	d := time.Date(2015, 7, 1, 0, 0, 0, 0, time.UTC)
	//lint:allow RB-D1 fixture: demonstrates a reasoned escape hatch for telemetry-only stopwatches
	t := time.Now()
	_ = t
	return d
}

func work() {}
