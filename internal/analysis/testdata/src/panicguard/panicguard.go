// Package panicguard is an RB-E3 fixture: panic in decode/transport code
// versus Must* constructors and annotated unreachable-state guards.
package panicguard

import "errors"

type codec struct{ n int }

func decode(data []byte) (*codec, error) {
	if len(data) == 0 {
		panic("empty input") // want "panic in decode/transport function decode"
	}
	return &codec{n: len(data)}, nil
}

func newCodec(n int) (*codec, error) {
	if n <= 0 {
		return nil, errors.New("bad n")
	}
	return &codec{n: n}, nil
}

// MustCodec panics on invalid constant configuration: the documented
// contract of Must* constructors.
func MustCodec(n int) *codec {
	c, err := newCodec(n)
	if err != nil {
		panic(err)
	}
	return c
}

func guarded(state int) int {
	switch state {
	case 0, 1:
		return state
	default:
		//lint:allow RB-E3 fixture: states beyond 1 are rejected at construction, this arm is unreachable
		panic("unreachable state")
	}
}
