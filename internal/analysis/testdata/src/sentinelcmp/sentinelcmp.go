// Package sentinelcmp is an RB-E1 fixture: sentinel errors compared with
// == / != versus errors.Is and nil checks.
package sentinelcmp

import (
	"errors"
	"io"
)

var ErrBad = errors.New("bad frame")

func compare(err error) bool {
	return err == ErrBad // want "sentinel error ErrBad compared with =="
}

func compareImported(err error) bool {
	return err != io.EOF // want "sentinel error EOF compared with !="
}

func viaIs(err error) bool {
	return errors.Is(err, ErrBad) // the sanctioned form
}

func nilCheck(err error) bool {
	return err == nil // nil comparisons are fine
}

func locals(a, b error) bool {
	return a == b // neither side is a package-level sentinel
}
