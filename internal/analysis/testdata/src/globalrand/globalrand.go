// Package globalrand is an RB-D2 fixture: global math/rand functions in a
// determinism-contract package versus locally seeded generators.
package globalrand

import "math/rand"

func global() int {
	rand.Seed(42)       // want "global math/rand.Seed"
	return rand.Intn(6) // want "global math/rand.Intn"
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors are allowed
	return rng.Float64()
}

func shadowed(rand *localRand) int {
	// A local variable named rand is not the package: no finding.
	return rand.Intn(3)
}

type localRand struct{}

func (*localRand) Intn(n int) int { return n - 1 }
