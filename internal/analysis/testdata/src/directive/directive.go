// Package directive is an RB-X1 fixture: escape hatches must carry a rule
// ID and a reason.
package directive

import "time"

func bare() time.Time {
	//lint:allow RB-D1 // want "lint directive needs a rule ID and a reason"
	return time.Now()
}

func reasoned() time.Time {
	//lint:allow RB-D1 fixture: telemetry-only stopwatch
	return time.Now()
}
