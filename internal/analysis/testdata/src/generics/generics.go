// Fixture for generic code: the loader must type-check it, and the call
// graph must degrade conservatively — a call through a type parameter
// resolves to every in-module implementer of the constraint, so taint in
// any candidate is found even though the instantiation is never resolved.
package generics

import "fixture/generics/impl"

type Summer interface{ Sum() int }

func Fold[T Summer](xs []T) int {
	total := 0
	for _, x := range xs {
		total += x.Sum() // want `generics\.Fold calls impl\.\(Clock\)\.Sum, which reaches nondeterministic time\.Now`
	}
	return total
}

func Emit() int {
	return Fold([]impl.Fixed{{V: 1}, {V: 2}})
}

// Explicit instantiation resolves through the same path.
func EmitExplicit() int {
	return Fold[impl.Fixed](nil)
}

// Generic container methods fold onto one node per declaration.
type Buf[T any] struct{ xs []T }

func (b *Buf[T]) Push(x T) {
	b.xs = append(b.xs, x)
}

func Fill() *Buf[int] {
	b := &Buf[int]{}
	b.Push(1)
	return b
}
