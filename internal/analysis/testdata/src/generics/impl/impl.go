package impl

import "time"

type Clock struct{}

func (Clock) Sum() int { return int(time.Now().Unix()) }

type Fixed struct{ V int }

func (f Fixed) Sum() int { return f.V }
