// Package ladder is a determinism fixture modeled on the decode-recovery
// ladder: hypothesis ordering and budget draws must be pure functions of
// the capture and configuration, so wall-clock deadlines (RB-D1) and
// global math/rand tie-breaking (RB-D2) are forbidden; a seeded local
// generator and a fixed hypothesis table are the clean shape.
package ladder

import (
	"math/rand"
	"time"
)

var hypotheses = []string{"erasures", "mu-0.45", "mu-0.65", "rescan"}

func deadlineBudget() bool {
	// Budgets must count attempts, not wall time: the same capture would
	// recover on a fast machine and fail on a loaded one.
	start := time.Now()                         // want "time.Now in determinism-contract package"
	return time.Since(start) < time.Millisecond // want "time.Since in determinism-contract package"
}

func shuffledLadder() string {
	// Randomizing hypothesis order breaks trace reproducibility.
	return hypotheses[rand.Intn(len(hypotheses))] // want "global math/rand.Intn"
}

// orderedLadder is the clean variant: fixed hypothesis order, attempt-count
// budget, and any randomness from an explicitly seeded local generator.
func orderedLadder(budget int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var attempts []string
	for _, h := range hypotheses {
		if budget <= 0 {
			break
		}
		budget--
		attempts = append(attempts, h)
		_ = rng.Float64() // seeded draws are allowed
	}
	return attempts
}
