// Fixture for RB-C4: every goroutine needs a visible termination path.
package goterm

import (
	"context"
	"sync"
)

type Daemon struct {
	stop chan struct{}
	jobs chan int
	wg   sync.WaitGroup
	n    int
}

func (d *Daemon) Start() {
	go d.worker() // ok: worker selects on stop
	go d.spin()   // want `goroutine has no visible termination path`
	go func() {   // want `goroutine has no visible termination path`
		for {
			d.n++
		}
	}()
	go func() { // ok: range over jobs ends when the channel closes
		for v := range d.jobs {
			d.n += v
		}
	}()
	d.wg.Add(1)
	go func() { // ok: WaitGroup accounting
		defer d.wg.Done()
		d.n++
	}()
}

func (d *Daemon) worker() {
	for {
		select {
		case <-d.stop:
			return
		case v := <-d.jobs:
			d.n += v
		}
	}
}

func (d *Daemon) spin() {
	for {
		d.n++
	}
}

func Watch(ctx context.Context, d *Daemon) {
	go func() { // ok: context.Done
		<-ctx.Done()
		d.n = 0
	}()
	go deepDrain(d) // ok: termination reached through the callee chain
}

func deepDrain(d *Daemon) { d.drain() }

func (d *Daemon) drain() {
	for range d.jobs {
	}
}
