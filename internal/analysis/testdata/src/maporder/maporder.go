// Package maporder is an RB-D3 fixture: map iteration feeding ordered
// output with and without a canonicalizing sort.
package maporder

import "sort"

func leaky(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order flows into append"
		out = append(out, k)
	}
	return out
}

func emits(m map[string]int, t *table) {
	for k, v := range m { // want "map iteration order flows into t.AddRow"
		t.AddRow(k, v)
	}
}

func sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func aggregates(m map[string]int) int {
	total := 0
	for _, v := range m { // order-insensitive: no slice sink
		total += v
	}
	return total
}

func copies(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // map-to-map: no slice sink
		out[k] = v
	}
	return out
}

func annotated(m map[string]int) []string {
	var out []string
	//lint:ordered fixture: consumer treats this as an unordered set
	for k := range m {
		out = append(out, k)
	}
	return out
}

type table struct{ rows [][2]any }

func (t *table) AddRow(k string, v int) { t.rows = append(t.rows, [2]any{k, v}) }
