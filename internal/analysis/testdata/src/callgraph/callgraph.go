// Fixture for the call-graph builder tests: one example of each edge
// discovery mode.
package callgraph

type Runner interface{ Run() int }

type A struct{}

func (A) Run() int { return 1 }

type B struct{}

func (*B) Run() int { return rec(2) }

// Direct static call.
func Direct() int { return helper() }

func helper() int { return 0 }

func rec(n int) int {
	if n == 0 {
		return 0
	}
	return rec(n - 1)
}

// Interface dispatch: resolves to every implementer of Runner.
func Dispatch(r Runner) int { return r.Run() }

// Method value: a ref edge, the value may be called later.
func MethodValue(a A) func() int { return a.Run }

// Function literal: collapsed into this node, so its call to helper is a
// static edge of Literal itself.
func Literal() int {
	f := func() int { return helper() }
	return f()
}

func Chain() int { return Direct() }
