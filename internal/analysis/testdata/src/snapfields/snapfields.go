// Fixture for RB-S1: snapshot completeness. State deliberately omits one
// field from both codec paths; Pair is complete, partly through a helper
// (encode) and a positional composite literal (decode).
package snapfields

type State struct {
	Round int
	Rate  float64 // want `exported field State\.Rate is never written by the encode path \(snapfields\.EncodeState\)` `exported field State\.Rate is never read by the decode path \(snapfields\.DecodeState\)`
	note  string  // unexported: not part of the contract
}

func EncodeState(s *State) []byte {
	return appendInt(nil, s.Round)
}

func DecodeState(b []byte) *State {
	s := &State{}
	s.Round = readInt(b)
	return s
}

type Pair struct {
	A int
	B int
}

func EncodePair(p *Pair) []byte {
	return appendPair(nil, p)
}

// appendPair is only reachable through EncodePair; its field mentions count
// via the call-graph closure.
func appendPair(b []byte, p *Pair) []byte {
	b = appendInt(b, p.A)
	return appendInt(b, p.B)
}

// DecodePair's positional literal mentions every field.
func DecodePair(b []byte) Pair {
	return Pair{readInt(b), readInt(b)}
}

func appendInt(b []byte, v int) []byte {
	return append(b, byte(v))
}

func readInt(b []byte) int {
	if len(b) == 0 {
		return 0
	}
	return int(b[0])
}

var _ = State{note: ""}
