// Package loopcapture is an RB-C2 fixture: goroutines in loops capturing
// variables the loop keeps reassigning, versus the safe argument-passing
// and indexed-slot forms.
package loopcapture

import "sync"

func races(jobs []int, out chan<- int) {
	var scratch int
	for _, j := range jobs {
		scratch = j * 2
		go func() { // want `goroutine captures "scratch"`
			out <- scratch
		}()
	}
}

func passesArgument(jobs []int, out chan<- int) {
	for _, j := range jobs {
		scratch := j * 2
		go func(v int) {
			out <- v
		}(scratch)
	}
}

func indexedSlots(jobs []int) []int {
	results := make([]int, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = j * 2 // per-iteration loop vars are safe since Go 1.22
		}()
	}
	wg.Wait()
	return results
}
