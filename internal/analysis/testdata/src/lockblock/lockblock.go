// Fixture for RB-C3: no mutex held across a blocking operation.
package lockblock

import "sync"

type Server struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	cond    *sync.Cond
	ch      chan int
	pending int
}

func (s *Server) RecvUnderLock() int {
	s.mu.Lock()
	v := <-s.ch // want `s\.mu is held across channel receive`
	s.mu.Unlock()
	return v
}

func (s *Server) DeferHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `s\.mu is held across channel send`
}

func (s *Server) ReadHeld() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.ch // want `s\.rw is held across channel receive`
}

// Transitive blocking is found through calls, with the chain reported.
func (s *Server) Step() {
	s.mu.Lock()
	s.wait() // want `s\.mu is held across a call to lockblock\.\(\*Server\)\.wait, which can block on channel receive`
	s.mu.Unlock()
}

func (s *Server) wait() { <-s.ch }

// Releasing before the operation is the correct pattern.
func (s *Server) UnlockFirst() int {
	s.mu.Lock()
	s.pending--
	s.mu.Unlock()
	return <-s.ch
}

// sync.Cond.Wait releases the mutex it was built over: exempt.
func (s *Server) CondWait() {
	s.mu.Lock()
	for s.pending == 0 {
		s.cond.Wait()
	}
	s.pending--
	s.mu.Unlock()
}

// A literal defined under the lock runs after release (enqueued or spawned);
// its operations are not "under" this lock.
func (s *Server) SpawnUnderLock() {
	s.mu.Lock()
	fn := func() { <-s.ch }
	s.mu.Unlock()
	fn()
}
