package util

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

func Outer() int { return roll() }

func roll() int { return rand.Intn(6) }

func LogTime() int64 {
	//lint:allow RB-D4 value only reaches the debug log, never contract output
	return time.Now().UnixNano()
}
