package clean

import "sort"

func Sorted(xs []string) []string {
	sort.Strings(xs)
	return xs
}
