// Fixture for RB-D4: interprocedural determinism taint. This package plays
// a contract package; fixture/taint/util is a helper package with
// nondeterministic internals, fixture/taint/clean is a pure helper.
package taint

import (
	"fixture/taint/clean"
	"fixture/taint/util"
)

func Emit() int64 {
	return util.Stamp() // want `taint\.Emit calls util\.Stamp, which reaches nondeterministic time\.Now: util\.Stamp -> time\.Now \(util\.go:\d+\)`
}

// Deep taint is found through any number of hops, and the diagnostic
// carries the whole chain.
func Deep() int {
	return util.Outer() // want `taint\.Deep calls util\.Outer, which reaches nondeterministic global math/rand\.Intn: util\.Outer -> util\.roll -> global math/rand\.Intn \(util\.go:\d+\)`
}

// A reference handed out of the contract package is flagged too: whoever
// receives it may call it on the contract's behalf.
func UseRef() {
	register(util.Stamp) // want `taint\.UseRef takes a reference to util\.Stamp, which reaches nondeterministic time\.Now`
}

func register(fn func() int64) { sink = fn }

var sink func() int64

// Pure helpers produce no findings.
func Rows() []string {
	return clean.Sorted([]string{"b", "a"})
}

// An annotated call site is an accepted escape hatch.
func Allowed() int64 {
	//lint:allow RB-D4 latency telemetry only, value never reaches emitted rows
	return util.Stamp()
}

// A source annotated away inside the helper package clears the taint for
// every caller.
func UsesLog() int64 {
	return util.LogTime()
}
