// Package hotalloc is an RB-P1 fixture: make/append growth inside the
// designated decode hot-path functions, annotated and not, plus the same
// allocations in cold functions where the rule stays quiet.
package hotalloc

type Codec struct {
	scratch []int
}

type Receiver struct {
	got []byte
}

func (c *Codec) extractGrid(n int) []int {
	cells := make([]int, n) // want "make\\(\\[\\]int\\) allocates on the decode hot path"
	for i := range cells {
		cells[i] = i
	}
	c.scratch = append(c.scratch, cells...) // want "append\\(c.scratch, ...\\) may grow its backing array"
	return cells
}

func (c *Codec) DecodeFrame(n int) []int {
	//lint:allow RB-P1 cold fallback: taken only when the caller passes no scratch
	out := make([]int, n)
	sum := func() []int {
		return append(out, n) // want "append\\(out, ...\\) may grow its backing array"
	}
	return sum()
}

func (r *Receiver) ingest(b []byte) {
	r.got = append(r.got, b...) // want "append\\(r.got, ...\\) may grow its backing array"
}

// Ingest is not in the hot set even though its receiver type matches:
// keys name exact methods, not whole types.
func (r *Receiver) Ingest(b []byte) {
	r.got = append(r.got, b...)
}

// coldPath is outside the hot set; allocation is unremarkable here.
func coldPath(n int) []int {
	return make([]int, n)
}
