// Package obsclock is an RB-O1 fixture: obs recorder/clock construction
// in a determinism-contract package.
package obsclock

import "fixture/obsclock/obs"

// Recorder-ish sink the contract package is allowed to hold — injection
// is fine, construction is not.
var injected *obs.Memory

func SetRecorder(m *obs.Memory) { injected = m }

func build() *obs.Memory {
	return obs.NewMemory() // want "obs.NewMemory in determinism-contract package"
}

func clock() obs.Clock {
	return obs.NewWallClock() // want "obs.NewWallClock in determinism-contract package"
}

func allowed() *obs.Memory {
	//lint:allow RB-O1 fixture: demonstrates a reasoned escape hatch for telemetry-only construction
	return obs.NewMemory(obs.WithClock(obs.NewWallClock()))
}
