// Package obs is the fixture stand-in for rainbar/internal/obs: RB-O1
// matches the imported package by path suffix, so this mini copy only
// needs the constructors and the types they mention.
package obs

// Clock is the injected time source.
type Clock interface{ Now() int64 }

type wallClock struct{}

func (wallClock) Now() int64 { return 0 }

// NewWallClock mimics the real wall-clock constructor.
func NewWallClock() Clock { return wallClock{} }

// Memory mimics the in-memory recorder.
type Memory struct{ clock Clock }

// MemoryOption mimics the real constructor options.
type MemoryOption func(*Memory)

// WithClock injects a clock.
func WithClock(c Clock) MemoryOption { return func(m *Memory) { m.clock = c } }

// NewMemory mimics the real recorder constructor.
func NewMemory(opts ...MemoryOption) *Memory {
	m := &Memory{clock: wallClock{}}
	for _, o := range opts {
		o(m)
	}
	return m
}
