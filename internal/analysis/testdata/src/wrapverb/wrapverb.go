// Package wrapverb is an RB-E2 fixture: fmt.Errorf wrapping an error with
// and without %w.
package wrapverb

import (
	"errors"
	"fmt"
)

var errInner = errors.New("inner")

func flattens() error {
	return fmt.Errorf("decode: %v", errInner) // want "without %w"
}

func wraps() error {
	return fmt.Errorf("decode: %w", errInner) // keeps the chain
}

func noError(n int) error {
	return fmt.Errorf("bad count %d", n) // no error argument: fine
}

func stringized() error {
	return fmt.Errorf("decode: %s", errInner.Error()) // already a string
}
