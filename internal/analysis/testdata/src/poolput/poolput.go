// Package poolput is an RB-C1 fixture: sync.Pool values that leak versus
// the sanctioned Put/defer/return/store forms.
package poolput

import "sync"

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func leaks() int {
	buf := bufPool.Get().(*[]byte) // want "pool value buf is never Put"
	return len(*buf)
}

func deferred() int {
	buf := bufPool.Get().(*[]byte)
	defer bufPool.Put(buf)
	return len(*buf)
}

func transfersOwnership() *[]byte {
	buf := bufPool.Get().(*[]byte)
	return buf // the caller owns it now
}

type holder struct{ buf *[]byte }

func stores(h *holder) {
	buf := bufPool.Get().(*[]byte)
	h.buf = buf // stored into a longer-lived structure
}

// GetFloats / PutFloats mirror the raster package's pool-accessor pair,
// wired through Config.PoolPairs.
func GetFloats(n int) []float64 { return make([]float64, n) }

func PutFloats([]float64) {}

func pairLeak() float64 {
	s := GetFloats(8) // want "pool value s is never Put"
	x := s[0] * 2
	return x
}

func pairBalanced() float64 {
	s := GetFloats(8)
	defer PutFloats(s)
	x := s[0] * 2
	return x
}
