// Package floateq is an RB-F1 fixture: computed-value float equality
// versus the exempt constant-sentinel and value-propagation forms.
package floateq

import "math"

func computed(x, y float64) bool {
	return x == y // want "floating-point == between computed values"
}

func computedNeq(a, b float32) bool {
	return a != b // want "floating-point != between computed values"
}

func sentinel(tv float64) float64 {
	if tv == 0 { // constant sentinel: assigned exactly, not computed toward
		tv = 0.3
	}
	return tv
}

func branchSelect(r, g, b float64) int {
	max := math.Max(r, math.Max(g, b))
	switch {
	case max == r: // value propagation: max is a bit-copy of one operand
		return 0
	case max == g:
		return 1
	default:
		return 2
	}
}

func converges(cur float64, step func(float64) float64) float64 {
	for i := 0; i < 64; i++ {
		next := step(cur)
		if next == cur { // fixed point reached: cur was assigned from next
			break
		}
		cur = next
	}
	return cur
}

func integers(a, b int) bool {
	return a == b // not floats
}
