package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerLoopCapture (RB-C2) flags goroutines started inside a loop whose
// closure reads a variable the loop body keeps reassigning. Since Go 1.22
// the loop variables themselves are per-iteration, so the surviving race
// is exactly this shape: an outer accumulator or scratch variable written
// by iteration k while the goroutine from iteration k-1 still reads it.
// The worker-pool contract (DESIGN.md §5) is indexed result slots and no
// shared mutable state — this rule catches regressions from it.
var AnalyzerLoopCapture = &Analyzer{
	ID:  "RB-C2",
	Doc: "goroutines in loops must not capture variables the loop keeps reassigning",
	Run: runLoopCapture,
}

func runLoopCapture(p *Pass) {
	for _, f := range p.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var loopPos token.Pos
			switch loop := n.(type) {
			case *ast.ForStmt:
				body, loopPos = loop.Body, loop.Pos()
			case *ast.RangeStmt:
				body, loopPos = loop.Body, loop.Pos()
			default:
				return true
			}
			checkLoopGoroutines(p, body, loopPos)
			return true
		})
	}
}

func checkLoopGoroutines(p *Pass, body *ast.BlockStmt, loopPos token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		for _, v := range capturedOuterVars(p, lit, loopPos) {
			if reassignedInLoop(p, body, lit, v) {
				p.Report(g.Pos(), "goroutine captures %q, which the loop reassigns: iterations race on it — pass it as an argument or use an indexed slot", v.Name())
			}
		}
		return true
	})
}

// capturedOuterVars lists variables the closure reads that were declared
// before the loop started (per-iteration loop variables and closure
// parameters/locals are excluded by position).
func capturedOuterVars(p *Pass, lit *ast.FuncLit, loopPos token.Pos) []*types.Var {
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Pkg.Info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.Pos() >= loopPos {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// reassignedInLoop reports whether v is written (plain assignment or
// ++/--, not element/field stores) inside the loop body but outside the
// goroutine's own closure.
func reassignedInLoop(p *Pass, body *ast.BlockStmt, lit *ast.FuncLit, v *types.Var) bool {
	isV := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && p.ObjectOf(id) == v
	}
	written := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == ast.Node(lit) {
			return false // the closure's own writes are its business
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isV(lhs) {
					written = true
				}
			}
		case *ast.IncDecStmt:
			if isV(n.X) {
				written = true
			}
		}
		return !written
	})
	return written
}
