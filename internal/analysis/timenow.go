package analysis

import "go/ast"

// AnalyzerTimeNow (RB-D1) forbids wall-clock reads in contract packages:
// every value a sweep or fault chain produces must be a pure function of
// (seed, index), and time.Now/time.Since smuggle the host clock into that
// function. Wall-clock stopwatches that feed only timing telemetry carry a
// reasoned //lint:allow RB-D1 directive.
var AnalyzerTimeNow = &Analyzer{
	ID:  "RB-D1",
	Doc: "contract packages must not read the wall clock (time.Now/time.Since)",
	Run: runTimeNow,
}

func runTimeNow(p *Pass) {
	if !p.Contract {
		return
	}
	for _, f := range p.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range []string{"Now", "Since"} {
				if p.PkgFunc(call, "time", name) {
					p.Report(call.Pos(), "time.%s in determinism-contract package %s: results must be a pure function of (seed, index)", name, p.Pkg.Name)
				}
			}
			return true
		})
	}
}
