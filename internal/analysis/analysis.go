// Package analysis is rainbar-lint's engine: a stdlib-only static-analysis
// suite (go/parser + go/ast + go/types, no external dependencies) that
// machine-enforces the repository's written contracts:
//
//   - determinism — contract packages (faults, experiment, channel, camera,
//     core, transport) must be bit-reproducible functions of (seed, index):
//     no wall clock, no global math/rand, no map-iteration order leaking
//     into emitted rows or returned slices (RB-D1..D3), and no
//     construction of obs recorders or clocks — observability is injected
//     by callers so its clock never reaches contract code (RB-O1);
//   - error discipline — sentinel errors are matched with errors.Is, wrapped
//     with %w, and the decode/transport pipeline never panics outside
//     Must* constructors (RB-E1..E3);
//   - float equality — no ==/!= on floating-point operands outside tests
//     (RB-F1);
//   - pool/goroutine hygiene — sync.Pool values return to their pool on
//     every path, and goroutines started in loops do not capture state the
//     loop keeps mutating (RB-C1..C2);
//   - hot-path memory — the designated decode hot-path functions contain
//     no unannotated make/append growth; buffers there come from the
//     decode scratch (RB-P1).
//
// Each rule lives in its own file and registers an *Analyzer; the shared
// core here provides the Pass plumbing, the suppression directives, and the
// Finding type. Directives:
//
//	//lint:ordered <reason>             suppress RB-D3 (iteration order immaterial)
//	//lint:allow <RULE-ID> <reason>     suppress one rule on this / the next line
//	//lint:file-allow <RULE-ID> <reason> suppress one rule for the whole file
//
// A directive with no reason is itself reported (RB-X1): every escape hatch
// must say why the invariant holds anyway.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic: a stable rule ID, a position, and a message.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Msg, f.Rule)
}

// Analyzer is one rule. Run inspects the Pass and reports findings via
// Pass.Report; the runner handles suppression and ordering.
type Analyzer struct {
	ID  string // stable rule ID, e.g. "RB-D1"
	Doc string // one-line invariant description
	Run func(*Pass)
}

// Config selects which packages each contract applies to and which
// pool accessors must be paired.
type Config struct {
	// ContractRoots are the determinism-contract packages, keyed by the
	// first path segment after "internal/" (or the last segment for
	// packages outside internal/). RB-D1..D3 only fire inside these.
	ContractRoots map[string]bool
	// DecodeRoots are the decode/transport-pipeline packages where panic
	// is forbidden outside Must* constructors (RB-E3).
	DecodeRoots map[string]bool
	// PoolPairs maps pool-accessor function names to the call that must
	// return the value (RB-C1), in addition to sync.Pool.Get/Put proper.
	PoolPairs map[string]string
	// HotPathFuncs are the decode hot-path functions where make/append
	// growth must be annotated (RB-P1), keyed "Recv.Name" for methods or
	// by bare name for functions. Only consulted in DecodeRoots packages.
	HotPathFuncs map[string]bool
	// TaintExemptRoots are packages whose determinism-taint sources are
	// declared unable to reach contract output (RB-D4): observability is
	// injected by callers and proven output-neutral, so its wall clock
	// never taints a contract function that records into it.
	TaintExemptRoots map[string]bool
	// LockRoots are the packages whose mutex discipline RB-C3 checks: no
	// mutex may be held across a transitively blocking operation there.
	LockRoots map[string]bool
	// GoroutineRoots are the packages where RB-C4 requires every goroutine
	// to carry a visible termination path.
	GoroutineRoots map[string]bool
	// SnapshotContracts are the struct/codec triples RB-S1 verifies: every
	// exported field of Type must be mentioned in both the Encode and the
	// Decode function's call-graph closure.
	SnapshotContracts []SnapshotContract
}

// SnapshotContract names one snapshot-completeness obligation (RB-S1).
// Type is "<contract-key>.<TypeName>"; Encode and Decode are
// "<contract-key>.<FuncName>" roots whose closures must mention every
// exported field of the struct.
type SnapshotContract struct {
	Type   string
	Encode string
	Decode string
}

// DefaultConfig returns the repository's contract configuration.
func DefaultConfig() Config {
	return Config{
		ContractRoots: map[string]bool{
			"faults": true, "experiment": true, "channel": true,
			"camera": true, "core": true, "transport": true,
			"serve": true,
		},
		DecodeRoots: map[string]bool{
			"core": true, "rdcode": true, "cobra": true,
			"lightsync": true, "transport": true,
		},
		PoolPairs: map[string]string{
			"GetFloats": "PutFloats",
		},
		HotPathFuncs: map[string]bool{
			"Codec.extractGrid": true, "Codec.DecodeFrame": true,
			"Receiver.ingest": true,
		},
		TaintExemptRoots: map[string]bool{
			// obs is injected observability: recorders and their clocks are
			// handed in by callers, contract packages never construct them
			// (RB-O1), and TestRecorderLeavesTablesByteIdentical proves the
			// recorded values never feed back into contract output.
			"obs": true,
		},
		LockRoots:      map[string]bool{"serve": true},
		GoroutineRoots: map[string]bool{"serve": true, "transport": true},
		SnapshotContracts: []SnapshotContract{
			// The serve snapshot envelope and the transport state it carries:
			// every exported field must survive the encode/decode round-trip,
			// so "added a counter, forgot the snapshot" fails the lint gate
			// instead of silently diverging on restore.
			{Type: "serve.Snapshot", Encode: "serve.EncodeSnapshot", Decode: "serve.DecodeSnapshot"},
			{Type: "transport.XferState", Encode: "serve.encodeXferState", Decode: "serve.decodeXferState"},
			{Type: "transport.CollectorState", Encode: "serve.encodeXferState", Decode: "serve.decodeXferState"},
			{Type: "transport.CombinerState", Encode: "serve.encodeXferState", Decode: "serve.decodeXferState"},
			{Type: "transport.CombinerChunk", Encode: "serve.encodeXferState", Decode: "serve.decodeXferState"},
			{Type: "transport.Stats", Encode: "serve.encodeXferState", Decode: "serve.decodeXferState"},
			// The durability journal's record framing (internal/serve/journal
			// folds to the "serve" contract key): a Record field that skips
			// encodeFrame/decodeFrame would silently vanish from the WAL and
			// so from every crash recovery.
			{Type: "serve.Record", Encode: "serve.encodeFrame", Decode: "serve.decodeFrame"},
		},
	}
}

// contractKey reduces an import path to the segment the Config roots are
// keyed by: the segment after "internal" when present, else the last one.
// External test units ("..._test") map to their subject package.
func contractKey(path string) string {
	segs := strings.Split(path, "/")
	key := segs[len(segs)-1]
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) {
			key = segs[i+1]
			break
		}
	}
	return strings.TrimSuffix(key, "_test")
}

// Pass is one package's worth of analysis input plus the finding sink.
type Pass struct {
	Fset     *token.FileSet
	Pkg      *Package
	Config   Config
	Contract bool // subject to determinism rules (RB-D*)
	Decode   bool // subject to the panic guard (RB-E3)

	rule     string // ID of the analyzer currently running
	findings *[]Finding
	suppress suppressTable
}

// suppressTable maps file -> line -> suppressed rule IDs.
type suppressTable map[string]map[int]map[string]bool

// suppressed reports whether a rule is directive-suppressed at a position:
// on the same line (trailing comment), the line above (standalone comment),
// or file-wide.
func (t suppressTable) suppressed(rule string, pos token.Position) bool {
	lines := t[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1, wholeFile} {
		if lines[l][rule] {
			return true
		}
	}
	return false
}

// merge folds another table into t (used to build the module-wide table;
// file names are unique across packages, so entries never collide).
func (t suppressTable) merge(other suppressTable) {
	for file, lines := range other {
		t[file] = lines
	}
}

// NonTestFiles yields the package's non-test files; most rules scope to
// these (test code exercises the contracts rather than carrying them).
func (p *Pass) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Pkg.Files {
		if !p.Pkg.TestFile[f] {
			out = append(out, f)
		}
	}
	return out
}

// Report records a finding for the current rule unless a directive
// suppresses it on this line or the line above.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(p.rule, position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Rule: p.rule,
		Pos:  position,
		Msg:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressed(rule string, pos token.Position) bool {
	return p.suppress.suppressed(rule, pos)
}

// TypeOf is shorthand for the package's types.Info.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier through Uses then Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// PkgFunc reports whether call invokes pkgPath.name (a package-level
// function accessed through its import), e.g. PkgFunc(call, "time", "Now").
func (p *Pass) PkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	return infoPkgFunc(p.Pkg.Info, call, pkgPath, name)
}

// IsPkgIdent reports whether e is an identifier denoting the import of
// pkgPath in this file (not a shadowing local variable).
func (p *Pass) IsPkgIdent(e ast.Expr, pkgPath string) bool {
	return infoIsPkgIdent(p.Pkg.Info, e, pkgPath)
}

// infoObjectOf resolves an identifier through Uses then Defs.
func infoObjectOf(info *types.Info, id *ast.Ident) types.Object {
	return info.ObjectOf(id)
}

// infoPkgFunc is PkgFunc against a bare types.Info (usable outside a Pass,
// e.g. by the call-graph summary extraction).
func infoPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return infoIsPkgIdent(info, sel.X, pkgPath)
}

// infoIsPkgIdent is IsPkgIdent against a bare types.Info.
func infoIsPkgIdent(info *types.Info, e ast.Expr, pkgPath string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := infoObjectOf(info, id).(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// wholeFile is the pseudo-line under which file-scoped suppressions are
// recorded; real token positions are always >= 1.
const wholeFile = -1

// directive is one parsed escape-hatch comment.
type directive struct {
	Kind   string // "allow", "file-allow", or "ordered"
	Rules  []string
	Reason string
}

// parseDirective parses one comment's lint directive; ok is false when the
// comment is not a directive at all. A directive with no rule ID parses
// with empty Rules (RB-X1 flags it).
func parseDirective(text string) (d directive, ok bool) {
	body, found := strings.CutPrefix(strings.TrimSpace(text), "//lint:")
	if !found {
		return directive{}, false
	}
	// A nested "// ..." (fixture want-comments) is not part of the directive.
	if i := strings.Index(body, "//"); i >= 0 {
		body = body[:i]
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return directive{}, false
	}
	switch fields[0] {
	case "ordered":
		return directive{Kind: "ordered", Rules: []string{"RB-D3"}, Reason: strings.Join(fields[1:], " ")}, true
	case "allow", "file-allow":
		if len(fields) < 2 {
			return directive{Kind: fields[0]}, true
		}
		return directive{Kind: fields[0], Rules: []string{fields[1]}, Reason: strings.Join(fields[2:], " ")}, true
	}
	return directive{}, false
}

// collectDirectives scans a package's comments into the suppression table
// and reports reason-less directives (rule RB-X1): an escape hatch that
// does not say why the invariant still holds is itself a contract breach.
func collectDirectives(fset *token.FileSet, pkg *Package, findings *[]Finding) suppressTable {
	table := make(suppressTable)
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if len(d.Rules) == 0 || d.Reason == "" {
					*findings = append(*findings, Finding{
						Rule: "RB-X1",
						Pos:  pos,
						Msg:  "lint directive needs a rule ID and a reason, e.g. //lint:allow RB-D1 wall-clock telemetry only",
					})
					continue
				}
				byLine := table[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					table[pos.Filename] = byLine
				}
				line := pos.Line
				if d.Kind == "file-allow" {
					line = wholeFile
				}
				set := byLine[line]
				if set == nil {
					set = make(map[string]bool)
					byLine[line] = set
				}
				for _, r := range d.Rules {
					set[r] = true
				}
			}
		}
	}
	return table
}

// sortFindings orders diagnostics by file, line, column, then rule ID so
// output is stable across runs and suitable for golden comparison.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
