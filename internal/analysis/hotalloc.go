package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerHotAlloc (RB-P1) guards the zero-allocation decode hot path:
// inside the designated hot functions (Config.HotPathFuncs), every make()
// call and every append() — which may grow its backing array — must carry
// a reasoned //lint:allow RB-P1 directive. The runtime side of the
// contract is proved by the steady-state allocation test
// (core.TestReceiverSteadyStateAllocFree) and the 0 allocs/op CI gate on
// BenchmarkReceiverProcessSteady; this rule keeps new allocation sites
// from landing in the hot path unreviewed — buffers there come from the
// decode scratch (grow) or are justified in writing.
var AnalyzerHotAlloc = &Analyzer{
	ID:  "RB-P1",
	Doc: "no unannotated make or append growth inside decode hot-path functions",
	Run: runHotAlloc,
}

func runHotAlloc(p *Pass) {
	if !p.Decode || len(p.Config.HotPathFuncs) == 0 {
		return
	}
	for _, f := range p.NonTestFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !p.Config.HotPathFuncs[hotFuncKey(fn)] {
				continue
			}
			checkHotAllocs(p, fn.Body)
		}
	}
}

// hotFuncKey renders a declaration's lookup key: "Recv.Name" for methods
// (pointer receivers unwrapped), the bare name otherwise — matching the
// "Codec.extractGrid" style the Config uses.
func hotFuncKey(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		t := fn.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

// checkHotAllocs reports make and append calls anywhere in the body,
// function literals included — a closure declared in a hot function runs
// on the hot path too.
func checkHotAllocs(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if _, isBuiltin := p.ObjectOf(id).(*types.Builtin); !isBuiltin {
			return true
		}
		switch id.Name {
		case "make":
			if len(call.Args) > 0 {
				p.Report(call.Pos(), "make(%s) allocates on the decode hot path: take the buffer from the decode scratch (grow) or annotate with //lint:allow RB-P1 <reason>", exprString(call.Args[0]))
			}
		case "append":
			if len(call.Args) > 0 {
				p.Report(call.Pos(), "append(%s, ...) may grow its backing array on the decode hot path: pre-grow the buffer from the decode scratch or annotate with //lint:allow RB-P1 <reason>", exprString(call.Args[0]))
			}
		}
		return true
	})
}
