package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerPoolPut (RB-C1) checks sync.Pool hygiene: a function that takes
// a value out of a pool (sync.Pool.Get, or a configured accessor pair like
// raster.GetFloats/PutFloats) must either return it to the pool, hand it
// to a Put/Recycle/Free call, return it to the caller (ownership
// transfer), or store it into a longer-lived structure. A Get with none of
// those is a leak: the pool silently degrades to plain allocation and the
// PR-1 hot-path wins evaporate under load.
var AnalyzerPoolPut = &Analyzer{
	ID:  "RB-C1",
	Doc: "pool Get results must be Put/Recycled, returned, or stored on every path",
	Run: runPoolPut,
}

func runPoolPut(p *Pass) {
	for _, f := range p.NonTestFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolGets(p, fn)
		}
	}
}

func checkPoolGets(p *Pass, fn *ast.FuncDecl) {
	gets := poolGetCalls(p, fn.Body)
	if len(gets) == 0 {
		return
	}
	if hasPoolReturnCall(p, fn.Body) {
		return
	}
	for _, g := range gets {
		v := assignedVar(p, fn.Body, g)
		if v == nil {
			// Used as a bare expression (e.g. returned directly): the
			// value escapes to the caller, which owns it now.
			if inReturn(fn.Body, g) {
				continue
			}
			p.Report(g.Pos(), "pool Get result is neither returned to the pool nor to the caller")
			continue
		}
		if varEscapes(p, fn.Body, v) {
			continue
		}
		p.Report(g.Pos(), "pool value %s is never Put/Recycled, returned, or stored: the pool degrades to plain allocation", v.Name())
	}
}

// poolGetCalls finds sync.Pool.Get method calls and configured accessor
// calls (Config.PoolPairs keys) in the function body.
func poolGetCalls(p *Pass, body *ast.BlockStmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Get" && isSyncPool(p.TypeOf(sel.X)) {
				out = append(out, call)
				return true
			}
			if _, ok := p.Config.PoolPairs[sel.Sel.Name]; ok {
				out = append(out, call)
				return true
			}
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, ok := p.Config.PoolPairs[id.Name]; ok {
				out = append(out, call)
			}
		}
		return true
	})
	return out
}

// hasPoolReturnCall reports whether the body contains any call that gives
// a value back to a pool: sync.Pool.Put, a configured Put pair, or a
// Recycle/Free-named call (the repo's raster.Image.Recycle idiom).
func hasPoolReturnCall(p *Pass, body *ast.BlockStmt) bool {
	putNames := map[string]bool{"Recycle": true, "Free": true}
	for _, put := range p.Config.PoolPairs {
		putNames[put] = true
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Put" && isSyncPool(p.TypeOf(fun.X)) {
				found = true
			} else if putNames[fun.Sel.Name] {
				found = true
			}
		case *ast.Ident:
			if putNames[fun.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// assignedVar finds the variable a Get call's result lands in, looking
// through type assertions: v := pool.Get().(*T).
func assignedVar(p *Pass, body *ast.BlockStmt, get *ast.CallExpr) *types.Var {
	var v *types.Var
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) == 0 {
			return true
		}
		for _, rhs := range assign.Rhs {
			if !containsNode(rhs, get) {
				continue
			}
			if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if tv, ok := p.ObjectOf(id).(*types.Var); ok {
					v = tv
				}
			}
			return false
		}
		return true
	})
	return v
}

// varEscapes reports whether v is handed onward somewhere in the body:
// passed to any call, returned, sent on a channel, or stored through a
// selector/index/deref. Any of those transfers ownership; the leak case
// is a Get whose value only feeds local reads.
func varEscapes(p *Pass, body *ast.BlockStmt, v *types.Var) bool {
	escapes := false
	// usesVar looks for v but does not descend into len/cap calls: those
	// read the value without taking ownership of it.
	usesVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && p.isLenCap(call) {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == v {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if p.isLenCap(n) {
				return true
			}
			for _, arg := range n.Args {
				if usesVar(arg) {
					escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesVar(r) {
					escapes = true
				}
			}
		case *ast.SendStmt:
			if usesVar(n.Value) {
				escapes = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if _, isIdent := lhs.(*ast.Ident); !isIdent && i < len(n.Rhs) && usesVar(n.Rhs[i]) {
					escapes = true
				}
			}
		}
		return !escapes
	})
	return escapes
}

// isLenCap reports whether call is builtin len or cap.
func (p *Pass) isLenCap(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || (id.Name != "len" && id.Name != "cap") {
		return false
	}
	_, builtin := p.ObjectOf(id).(*types.Builtin)
	return builtin
}

// inReturn reports whether the call appears inside a return statement.
func inReturn(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if containsNode(r, call) {
				found = true
			}
		}
		return !found
	})
	return found
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}
