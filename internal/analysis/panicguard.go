package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerPanicGuard (RB-E3) forbids panic in decode/transport pipeline
// packages. A corrupt capture must surface as a classified error
// (core.ClassifyFailure), never crash the receiver — the fuzz targets
// enforce this dynamically, this rule enforces it statically. Allowed:
// Must* constructors (panic on invalid constant configuration is their
// documented contract) and sites carrying //lint:allow RB-E3 <reason>
// for provably unreachable states.
var AnalyzerPanicGuard = &Analyzer{
	ID:  "RB-E3",
	Doc: "decode/transport packages must return classified errors, not panic (Must* constructors exempt)",
	Run: runPanicGuard,
}

func runPanicGuard(p *Pass) {
	if !p.Decode {
		return
	}
	for _, f := range p.NonTestFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if len(fn.Name.Name) >= 4 && fn.Name.Name[:4] == "Must" {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := p.ObjectOf(id).(*types.Builtin); isBuiltin {
						p.Report(call.Pos(), "panic in decode/transport function %s: corrupt input must surface as a classified error", fn.Name.Name)
					}
				}
				return true
			})
		}
	}
}
