package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloatEq (RB-F1) flags == and != between two computed
// floating-point operands outside tests. The decode pipeline is all float
// math (HSV distances, warp coordinates, photometric gains); exact
// comparison between independently computed values either never fires or
// fires only on bit-coincidence, and both failure modes are silent.
// Exempt, because they are exact by construction rather than by
// coincidence:
//
//   - comparisons where either operand is a compile-time constant —
//     sentinel/default checks like cfg.TV == 0 or gain == 1 test for a
//     value that was assigned exactly, not computed toward;
//   - value-propagation checks, where one operand was assigned directly
//     from the other in the same function (x = y, or x = math.Min/Max(...,
//     y, ...)): hue-branch selection (max == r) and fixed-point
//     convergence (next == cur after cur = next) compare bit-copies.
var AnalyzerFloatEq = &Analyzer{
	ID:  "RB-F1",
	Doc: "no ==/!= between computed floating-point operands outside tests",
	Run: runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			prop := valuePropagations(p, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(p.TypeOf(bin.X)) && !isFloat(p.TypeOf(bin.Y)) {
					return true
				}
				if p.isConst(bin.X) || p.isConst(bin.Y) {
					return true
				}
				if prop.linked(p, bin.X, bin.Y) {
					return true
				}
				p.Report(bin.Pos(), "floating-point %s between computed values: use a tolerance (math.Abs(a-b) < eps) or restructure to integers", bin.Op)
				return true
			})
			return true
		})
	}
}

// propagations records which variable pairs are connected by a direct
// assignment (x = y or x = math.Min/Max(..., y, ...)) within a function.
type propagations map[[2]*types.Var]bool

func (pr propagations) linked(p *Pass, x, y ast.Expr) bool {
	xi, ok1 := ast.Unparen(x).(*ast.Ident)
	yi, ok2 := ast.Unparen(y).(*ast.Ident)
	if !ok1 || !ok2 {
		return false
	}
	vx, ok1 := p.ObjectOf(xi).(*types.Var)
	vy, ok2 := p.ObjectOf(yi).(*types.Var)
	if !ok1 || !ok2 {
		return false
	}
	return pr[[2]*types.Var{vx, vy}] || pr[[2]*types.Var{vy, vx}]
}

func valuePropagations(p *Pass, body *ast.BlockStmt) propagations {
	prop := make(propagations)
	link := func(lhs ast.Expr, src *ast.Ident) {
		li, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		lv, ok1 := p.ObjectOf(li).(*types.Var)
		sv, ok2 := p.ObjectOf(src).(*types.Var)
		if ok1 && ok2 {
			prop[[2]*types.Var{lv, sv}] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			switch rhs := ast.Unparen(rhs).(type) {
			case *ast.Ident:
				link(assign.Lhs[i], rhs)
			case *ast.CallExpr:
				for _, leaf := range minMaxLeaves(p, rhs) {
					link(assign.Lhs[i], leaf)
				}
			}
		}
		return true
	})
	return prop
}

// minMaxLeaves flattens nested math.Min/math.Max (and builtin min/max)
// calls into their identifier arguments; nil for any other call.
func minMaxLeaves(p *Pass, call *ast.CallExpr) []*ast.Ident {
	isMinMax := false
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		isMinMax = (fun.Sel.Name == "Min" || fun.Sel.Name == "Max") && p.IsPkgIdent(fun.X, "math")
	case *ast.Ident:
		if _, builtin := p.ObjectOf(fun).(*types.Builtin); builtin {
			isMinMax = fun.Name == "min" || fun.Name == "max"
		}
	}
	if !isMinMax {
		return nil
	}
	var leaves []*ast.Ident
	for _, arg := range call.Args {
		switch arg := ast.Unparen(arg).(type) {
		case *ast.Ident:
			leaves = append(leaves, arg)
		case *ast.CallExpr:
			leaves = append(leaves, minMaxLeaves(p, arg)...)
		}
	}
	return leaves
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func (p *Pass) isConst(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
