package analysis

import (
	"bytes"
	"path/filepath"
	"sort"
	"testing"
)

func buildFixtureGraph(t *testing.T, name string) *Graph {
	t.Helper()
	pkgs, err := LoadDirAll(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return BuildGraph(pkgs[0].Fset, pkgs)
}

// edgeIDs returns "calleeID/kind" for a node's edges, sorted.
func edgeIDs(n *FuncNode) []string {
	var out []string
	for _, e := range n.Edges {
		out = append(out, e.Callee.ID+"/"+e.Kind.String())
	}
	sort.Strings(out)
	return out
}

// TestGraphEdges pins one example of each edge discovery mode: direct
// static calls, interface dispatch to all implementers, method-value
// references, and function-literal collapse.
func TestGraphEdges(t *testing.T) {
	g := buildFixtureGraph(t, "callgraph")
	cases := map[string][]string{
		// Direct static call.
		"fixture/callgraph.Direct": {"fixture/callgraph.helper/static"},
		// Interface dispatch resolves to every in-module implementer.
		"fixture/callgraph.Dispatch": {
			"fixture/callgraph.(*B).Run/iface",
			"fixture/callgraph.(A).Run/iface",
		},
		// A method value is a ref edge.
		"fixture/callgraph.MethodValue": {"fixture/callgraph.(A).Run/ref"},
		// A literal's calls collapse into the enclosing declaration.
		"fixture/callgraph.Literal": {"fixture/callgraph.helper/static"},
		// Plain chaining, and recursion is a self-edge.
		"fixture/callgraph.Chain": {"fixture/callgraph.Direct/static"},
		"fixture/callgraph.rec":   {"fixture/callgraph.rec/static"},
	}
	for id, want := range cases {
		n := g.NodeByID(id)
		if n == nil {
			t.Fatalf("node %s missing from graph", id)
		}
		got := edgeIDs(n)
		if len(got) != len(want) {
			t.Errorf("%s edges = %v, want %v", id, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s edges = %v, want %v", id, got, want)
				break
			}
		}
	}
}

// TestGraphReachable pins transitive closure over all edge kinds.
func TestGraphReachable(t *testing.T) {
	g := buildFixtureGraph(t, "callgraph")
	seen := g.Reachable(g.NodeByID("fixture/callgraph.Chain"))
	for _, id := range []string{
		"fixture/callgraph.Chain",
		"fixture/callgraph.Direct",
		"fixture/callgraph.helper",
	} {
		if !seen[g.NodeByID(id)] {
			t.Errorf("%s not reachable from Chain", id)
		}
	}
	if seen[g.NodeByID("fixture/callgraph.Dispatch")] {
		t.Error("Dispatch should not be reachable from Chain")
	}
	// Dispatch reaches rec through the (*B).Run interface target.
	seen = g.Reachable(g.NodeByID("fixture/callgraph.Dispatch"))
	if !seen[g.NodeByID("fixture/callgraph.rec")] {
		t.Error("rec not reachable from Dispatch via interface dispatch")
	}
}

// TestGraphDumpDeterministic pins that two independent loads of the same
// tree produce byte-identical -graph dumps.
func TestGraphDumpDeterministic(t *testing.T) {
	dump := func() []byte {
		var buf bytes.Buffer
		buildFixtureGraph(t, "taint").Dump(&buf, "")
		return buf.Bytes()
	}
	a, b := dump(), dump()
	if len(a) == 0 {
		t.Fatal("empty graph dump")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("graph dumps differ across loads:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestGraphGenericFold pins that generic methods fold onto one node and
// that calls through a type-parameter constraint resolve to all
// implementers of the constraint.
func TestGraphGenericFold(t *testing.T) {
	g := buildFixtureGraph(t, "generics")
	fold := g.NodeByID("fixture/generics.Fold")
	if fold == nil {
		t.Fatal("generic Fold has no node")
	}
	got := edgeIDs(fold)
	want := []string{
		"fixture/generics/impl.(Clock).Sum/iface",
		"fixture/generics/impl.(Fixed).Sum/iface",
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Fold edges = %v, want %v", got, want)
	}
	if g.NodeByID("fixture/generics.(*Buf).Push") == nil {
		t.Error("generic method Push did not fold onto a (*Buf) node")
	}
}
