package analysis

import (
	"go/token"
	"sort"
)

// ModuleAnalyzerTaint (RB-D4) is the interprocedural extension of the
// determinism contract. RB-D1..D3 catch a contract package touching the
// wall clock, global rand, or map-iteration order *directly*; RB-D4 catches
// it doing so *through a helper*: any function transitively reachable from
// a contract package that reaches such a source is flagged at the
// contract-side call site, with the full call chain down to the operation
// in the diagnostic.
//
// Sources inside contract packages themselves are not re-reported here —
// they are RB-D1..D3's business (flagged directly, or annotated there, in
// which case the annotation also clears the taint). Sources in
// TaintExemptRoots (injected observability) are declared unable to reach
// contract output and contribute nothing.
var ModuleAnalyzerTaint = &ModuleAnalyzer{
	ID:  "RB-D4",
	Doc: "contract packages must not transitively reach wall clocks, global rand, or map-order-dependent output through helper packages",
	Run: runTaint,
}

func runTaint(mp *ModulePass) {
	g := mp.Graph
	wit := propagate(g, taintSources(g, mp.Config, mp.suppress))
	for _, n := range g.Nodes {
		if n.Test || !mp.Config.ContractRoots[contractKey(n.Pkg.Path)] {
			continue
		}
		// One finding per call site: when interface dispatch fans a site out
		// to several tainted candidates, keep the shortest (then
		// lexicographically first) witness.
		best := make(map[token.Pos]Edge)
		var sites []token.Pos
		for _, e := range n.Edges {
			key := contractKey(e.Callee.Pkg.Path)
			if mp.Config.ContractRoots[key] || mp.Config.TaintExemptRoots[key] {
				continue // taint inside the contract boundary is RB-D1..D3's report
			}
			w := wit[e.Callee]
			if w == nil {
				continue
			}
			cur, ok := best[e.Pos]
			if !ok {
				best[e.Pos] = e
				sites = append(sites, e.Pos)
				continue
			}
			cw := wit[cur.Callee]
			if w.Dist < cw.Dist || (w.Dist == cw.Dist && e.Callee.ID < cur.Callee.ID) {
				best[e.Pos] = e
			}
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		for _, pos := range sites {
			e := best[pos]
			w := wit[e.Callee]
			verb := "calls"
			if e.Kind == EdgeRef {
				verb = "takes a reference to"
			}
			mp.Report(pos, "%s %s %s, which reaches nondeterministic %s: %s",
				shortNodeID(n.ID), verb, shortNodeID(e.Callee.ID), w.Op.Desc,
				chainString(g, wit, e.Callee))
		}
	}
}
