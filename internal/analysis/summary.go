package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Per-function summaries and their fixpoint propagation. A summary is the
// list of "facts" a function establishes locally — determinism-taint
// sources for RB-D4, blocking operations for RB-C3, termination signals
// for RB-C4 — and propagate() closes them over the call graph: a function
// has a fact transitively if any callee (static, interface-resolved, or
// referenced) has it. Propagation is a multi-source BFS on the reverse
// graph, so every node also remembers a shortest *witness chain* back to
// the originating operation — that chain is what turns "serve.step is
// tainted" into a diagnostic a human can act on.

// Source is one locally established fact: an operation at a position.
type Source struct {
	Pos  token.Pos
	Desc string
}

// Witness explains a node's transitive fact: the originating operation,
// the node that contains it, and the next hop toward it (nil when the
// fact is local to the node itself).
type Witness struct {
	Op     Source
	Origin *FuncNode
	Next   *FuncNode
	Dist   int
}

// propagate closes per-node local facts over the call graph and returns a
// witness for every node that transitively reaches a fact. Deterministic:
// nodes are seeded and expanded in graph (ID) order, and BFS guarantees
// each node keeps a shortest chain.
func propagate(g *Graph, local map[*FuncNode][]Source) map[*FuncNode]*Witness {
	rev := make(map[*FuncNode][]*FuncNode, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, e := range n.Edges {
			rev[e.Callee] = append(rev[e.Callee], n)
		}
	}
	out := make(map[*FuncNode]*Witness)
	var queue []*FuncNode
	for _, n := range g.Nodes { // ID order seeds the BFS deterministically
		if srcs := local[n]; len(srcs) > 0 {
			out[n] = &Witness{Op: srcs[0], Origin: n}
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		w := out[n]
		for _, caller := range rev[n] {
			if out[caller] != nil {
				continue
			}
			out[caller] = &Witness{Op: w.Op, Origin: w.Origin, Next: n, Dist: w.Dist + 1}
			queue = append(queue, caller)
		}
	}
	return out
}

// chainString renders the witness chain from start down to the originating
// operation: "a -> b -> c -> time.Now (file.go:12)". Positions use base
// filenames so the message is stable across checkouts; the finding's own
// position carries the full path.
func chainString(g *Graph, wit map[*FuncNode]*Witness, start *FuncNode) string {
	var parts []string
	for cur := start; cur != nil; {
		parts = append(parts, shortNodeID(cur.ID))
		w := wit[cur]
		if w == nil || w.Next == nil {
			if w != nil {
				p := g.Fset.Position(w.Op.Pos)
				parts = append(parts, fmt.Sprintf("%s (%s:%d)", w.Op.Desc, filepath.Base(p.Filename), p.Line))
			}
			break
		}
		cur = w.Next
	}
	return strings.Join(parts, " -> ")
}

// shortNodeID drops the module prefix from a node ID for diagnostics:
// "rainbar/internal/serve.(*Server).step" → "serve.(*Server).step".
func shortNodeID(id string) string {
	slash := strings.LastIndex(id, "/")
	if slash < 0 {
		return id
	}
	return id[slash+1:]
}

// --- determinism-taint sources (RB-D4) ---

// funcSources extracts the determinism-taint sources a node establishes
// locally: wall-clock reads, global math/rand draws, and map-iteration
// order flowing into ordered output. When suppress is non-nil, sources
// annotated away are skipped — an *annotated* source is one whose line
// carries //lint:allow RB-D4 (or the matching intra-procedural rule's ID:
// RB-D1 for clock reads, RB-D2 for global rand, RB-D3 / //lint:ordered
// for map order), asserting the value never reaches contract output.
func funcSources(n *FuncNode, fset *token.FileSet, suppress suppressTable) []Source {
	if n.Decl.Body == nil {
		return nil
	}
	info := n.Pkg.Info
	keep := func(pos token.Pos, intraRule string) bool {
		if suppress == nil {
			return true
		}
		p := fset.Position(pos)
		return !suppress.suppressed("RB-D4", p) && !suppress.suppressed(intraRule, p)
	}
	var out []Source
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.CallExpr:
			for _, name := range []string{"Now", "Since"} {
				if infoPkgFunc(info, e, "time", name) && keep(e.Pos(), "RB-D1") {
					out = append(out, Source{Pos: e.Pos(), Desc: "time." + name})
				}
			}
		case *ast.SelectorExpr:
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				if infoIsPkgIdent(info, e.X, path) && !globalRandOK[e.Sel.Name] && keep(e.Pos(), "RB-D2") {
					out = append(out, Source{Pos: e.Pos(), Desc: "global " + path + "." + e.Sel.Name})
				}
			}
		}
		return true
	})
	for _, ms := range unsortedMapSinks(info, n.Decl.Body) {
		if keep(ms.pos, "RB-D3") {
			out = append(out, Source{Pos: ms.pos, Desc: "map-iteration order into " + ms.sink})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// taintSources collects the module's local taint sources: every
// non-contract, non-exempt, non-test function's sources. Sources inside
// contract packages are RB-D1..D3's business (flagged directly or
// annotated there); sources in exempt roots (injected observability) are
// declared unable to reach contract output.
func taintSources(g *Graph, cfg Config, suppress suppressTable) map[*FuncNode][]Source {
	local := make(map[*FuncNode][]Source)
	for _, n := range g.Nodes {
		if n.Test {
			continue
		}
		key := contractKey(n.Pkg.Path)
		if cfg.ContractRoots[key] || cfg.TaintExemptRoots[key] {
			continue
		}
		if srcs := funcSources(n, g.Fset, suppress); len(srcs) > 0 {
			local[n] = srcs
		}
	}
	return local
}

// --- blocking operations (RB-C3) ---

// funcBlockOps extracts the operations in a node's body that can block the
// calling goroutine indefinitely: channel sends and receives, blocking
// selects, ranging over a channel, sync.WaitGroup.Wait, and time.Sleep.
// sync.Cond.Wait is exempt — it releases the mutex it was built over.
func funcBlockOps(n *FuncNode) []Source {
	if n.Decl.Body == nil {
		return nil
	}
	info := n.Pkg.Info
	var out []Source
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.SendStmt:
			out = append(out, Source{Pos: e.Pos(), Desc: "channel send"})
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				out = append(out, Source{Pos: e.Pos(), Desc: "channel receive"})
			}
		case *ast.SelectStmt:
			if blockingSelect(e) {
				out = append(out, Source{Pos: e.Pos(), Desc: "blocking select"})
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(e.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					out = append(out, Source{Pos: e.Pos(), Desc: "range over channel"})
				}
			}
		case *ast.CallExpr:
			if isSyncMethod(info, e, "WaitGroup", "Wait") {
				out = append(out, Source{Pos: e.Pos(), Desc: "sync.WaitGroup.Wait"})
			}
			if infoPkgFunc(info, e, "time", "Sleep") {
				out = append(out, Source{Pos: e.Pos(), Desc: "time.Sleep"})
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// blockingSelect reports whether a select has no default clause (with one,
// it polls instead of blocking).
func blockingSelect(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return false
		}
	}
	return true
}

// isSyncMethod reports whether call invokes sync.<recv>.<name>.
func isSyncMethod(info *types.Info, call *ast.CallExpr, recv, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == recv
}

// blockOpSources collects every non-test module function's local blocking
// operations (the RB-C3 summary input).
func blockOpSources(g *Graph) map[*FuncNode][]Source {
	local := make(map[*FuncNode][]Source)
	for _, n := range g.Nodes {
		if n.Test {
			continue
		}
		if ops := funcBlockOps(n); len(ops) > 0 {
			local[n] = ops
		}
	}
	return local
}

// --- goroutine termination signals (RB-C4) ---

// terminationOps extracts the operations that make a goroutine's exit
// externally visible or controllable: receiving (or selecting, or ranging)
// on a channel, sending on a channel (a rendezvous the spawner observes),
// a context.Context.Done call, or sync.WaitGroup.Done accounting.
func terminationOps(info *types.Info, body ast.Node) []Source {
	var out []Source
	ast.Inspect(body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				out = append(out, Source{Pos: e.Pos(), Desc: "channel receive"})
			}
		case *ast.SendStmt:
			out = append(out, Source{Pos: e.Pos(), Desc: "channel send"})
		case *ast.SelectStmt:
			out = append(out, Source{Pos: e.Pos(), Desc: "select"})
		case *ast.RangeStmt:
			if t := info.TypeOf(e.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					out = append(out, Source{Pos: e.Pos(), Desc: "range over channel"})
				}
			}
		case *ast.CallExpr:
			if isSyncMethod(info, e, "WaitGroup", "Done") {
				out = append(out, Source{Pos: e.Pos(), Desc: "sync.WaitGroup.Done"})
			}
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if obj, ok := info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
					out = append(out, Source{Pos: e.Pos(), Desc: "context.Done"})
				}
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// terminationSources collects every non-test function's local termination
// signals (the RB-C4 summary input).
func terminationSources(g *Graph) map[*FuncNode][]Source {
	local := make(map[*FuncNode][]Source)
	for _, n := range g.Nodes {
		if n.Test || n.Decl.Body == nil {
			continue
		}
		if ops := terminationOps(n.Pkg.Info, n.Decl.Body); len(ops) > 0 {
			local[n] = ops
		}
	}
	return local
}
