package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked unit: a package's files (in-package test
// files included) or an external _test package.
type Package struct {
	Path     string // import path ("<mod>/internal/foo", ext tests "<path>_test")
	Name     string
	Dir      string
	Fset     *token.FileSet
	Files    []*ast.File
	TestFile map[*ast.File]bool
	Types    *types.Package
	Info     *types.Info
}

// Loader parses and type-checks every package in a module using only the
// standard library: module-internal imports are resolved recursively from
// source, everything else through go/importer's source importer (the gc
// importer needs pre-built export data, which module builds do not leave
// behind).
type Loader struct {
	Fset *token.FileSet

	root    string
	modPath string
	dirs    map[string]string   // import path -> dir
	pkgs    map[string]*Package // canonical units by import path
	state   map[string]int      // 0 unseen, 1 checking, 2 done
	std     types.Importer
}

const (
	loadUnseen = iota
	loadChecking
	loadDone
)

// LoadModule type-checks every package under root (a directory containing
// go.mod) and returns the units in deterministic path order, external test
// packages after their subjects. Any parse or type error aborts the load.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		dirs:    make(map[string]string),
		pkgs:    make(map[string]*Package),
		state:   make(map[string]int),
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	if err := l.discover(); err != nil {
		return nil, err
	}

	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var out []*Package
	for _, p := range paths {
		pkg, err := l.check(p)
		if err != nil {
			return nil, err
		}
		if pkg == nil { // directory without buildable files
			continue
		}
		out = append(out, pkg)
		ext, err := l.checkExternalTests(pkg)
		if err != nil {
			return nil, err
		}
		if ext != nil {
			out = append(out, ext)
		}
	}
	return out, nil
}

// LoadDir type-checks the single package in dir (used for testdata
// fixtures). Imports resolve from the standard library, plus any
// subdirectories of dir, which a fixture imports as
// "fixture/<name>/<subdir>" (for rules about module-internal packages,
// e.g. RB-O1's obs stand-in).
func LoadDir(dir string) (*Package, error) {
	pkgs, err := LoadDirAll(dir)
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// LoadDirAll type-checks a fixture directory plus every package in its
// immediate subdirectories, all through one loader (so type objects are
// shared), returning the units with the root fixture package first and
// sub-packages in path order. Whole-module rules (RB-D4, RB-S1, ...) need
// the sub-packages as analysis subjects, not just as resolved imports.
func LoadDirAll(dir string) ([]*Package, error) {
	l := &Loader{
		Fset:  token.NewFileSet(),
		dirs:  map[string]string{},
		pkgs:  make(map[string]*Package),
		state: make(map[string]int),
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	files, testFile, name, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	l.modPath = "fixture/" + name
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var subPaths []string
	for _, e := range entries {
		if e.IsDir() {
			p := l.modPath + "/" + e.Name()
			l.dirs[p] = filepath.Join(dir, e.Name())
			subPaths = append(subPaths, p)
		}
	}
	sort.Strings(subPaths)
	pkg := &Package{Path: l.modPath, Name: name, Dir: dir, Files: files, TestFile: testFile}
	if err := l.typeCheck(pkg); err != nil {
		return nil, err
	}
	l.pkgs[l.modPath] = pkg
	l.state[l.modPath] = loadDone
	out := []*Package{pkg}
	for _, p := range subPaths {
		sub, err := l.check(p) // cached when the root already imported it
		if err != nil {
			return nil, err
		}
		if sub != nil {
			out = append(out, sub)
		}
	}
	return out, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// discover maps every directory under the module root that contains Go
// files to its import path, skipping testdata, vendor, and hidden trees.
func (l *Loader) discover() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return err
		}
		imp := l.modPath
		if rel != "." {
			imp = l.modPath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = dir
		return nil
	})
}

// parseDir parses dir's Go files. With extTests false it returns the
// canonical unit (package files plus in-package tests); with extTests true
// it returns only the external "_test" package's files.
func (l *Loader) parseDir(dir string, extTests bool) (files []*ast.File, testFile map[*ast.File]bool, name string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, "", err
	}
	testFile = make(map[*ast.File]bool)
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") ||
			strings.HasPrefix(fn, ".") || strings.HasPrefix(fn, "_") {
			continue
		}
		full := filepath.Join(dir, fn)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, "", err
		}
		if buildExcluded(f) {
			continue
		}
		isTest := strings.HasSuffix(fn, "_test.go")
		isExt := isTest && strings.HasSuffix(f.Name.Name, "_test")
		if isExt != extTests {
			continue
		}
		if name == "" {
			name = f.Name.Name
		} else if f.Name.Name != name {
			return nil, nil, "", fmt.Errorf("analysis: %s: found packages %s and %s", dir, name, f.Name.Name)
		}
		files = append(files, f)
		testFile[f] = isTest
	}
	return files, testFile, name, nil
}

// buildExcluded reports whether a file's //go:build line rules it out of
// the default build — e.g. the `//go:build race` / `//go:build !race`
// test-constant pairs. Tags satisfied mirror a plain `go build`: GOOS,
// GOARCH, the gc toolchain, and go1.x release tags; anything else
// ("race", "ignore", custom tags) evaluates false, so exactly one file
// of a tag pair survives and redeclaration errors cannot arise.
func buildExcluded(f *ast.File) bool {
	for _, g := range f.Comments {
		if g.Pos() >= f.Package {
			break
		}
		for _, c := range g.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return false
			}
			return !expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == "gc" || strings.HasPrefix(tag, "go1")
			})
		}
	}
	return false
}

// check returns the canonical type-checked unit for a module import path,
// loading it (and, recursively, its module-internal imports) on demand.
func (l *Loader) check(path string) (*Package, error) {
	switch l.state[path] {
	case loadDone:
		return l.pkgs[path], nil
	case loadChecking:
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("analysis: package %s not found in module", path)
	}
	l.state[path] = loadChecking
	files, testFile, name, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		l.state[path] = loadDone
		return nil, nil
	}
	pkg := &Package{Path: path, Name: name, Dir: dir, Files: files, TestFile: testFile}
	if err := l.typeCheck(pkg); err != nil {
		return nil, err
	}
	l.state[path] = loadDone
	l.pkgs[path] = pkg
	return pkg, nil
}

// checkExternalTests builds the "pkg_test" unit for a canonical package,
// if the directory has one.
func (l *Loader) checkExternalTests(pkg *Package) (*Package, error) {
	files, testFile, name, err := l.parseDir(pkg.Dir, true)
	if err != nil || len(files) == 0 {
		return nil, err
	}
	ext := &Package{Path: pkg.Path + "_test", Name: name, Dir: pkg.Dir, Files: files, TestFile: testFile}
	if err := l.typeCheck(ext); err != nil {
		return nil, err
	}
	return ext, nil
}

func (l *Loader) typeCheck(pkg *Package) error {
	pkg.Fset = l.Fset
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		// Instances record generic instantiations; the call graph folds them
		// onto their origin declarations via (*types.Func).Origin.
		Instances: make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	tp, err := conf.Check(pkg.Path, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return fmt.Errorf("analysis: %s: %w", pkg.Path, err)
	}
	pkg.Types = tp
	return nil
}

// Import implements types.Importer: module-internal paths resolve through
// the loader itself, everything else through the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files for %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
