package analysis

import (
	"go/ast"
	"go/types"
)

// ModuleAnalyzerGoTerm (RB-C4) requires every goroutine started in the
// daemon packages to have a *visible termination path*: somewhere in the
// spawned body — or transitively in a function it calls — there must be an
// operation that makes the goroutine's lifetime observable or controllable
// from outside: a channel receive, send, select, or range (closing or
// signalling the channel ends or unblocks it), a context.Done call, or
// sync.WaitGroup.Done accounting. A goroutine with none of these is a leak
// by construction: nothing the daemon does at shutdown can stop it or wait
// for it, which is how "serve drains cleanly in tests, leaks under load"
// regressions start.
var ModuleAnalyzerGoTerm = &ModuleAnalyzer{
	ID:  "RB-C4",
	Doc: "every goroutine in daemon packages must have a visible termination path",
	Run: runGoTerm,
}

func runGoTerm(mp *ModulePass) {
	g := mp.Graph
	term := propagate(g, terminationSources(g))
	for _, n := range g.Nodes {
		if n.Test || n.Decl.Body == nil || !mp.Config.GoroutineRoots[contractKey(n.Pkg.Path)] {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			gs, ok := node.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goTerminates(g, term, n, info, gs) {
				mp.Report(gs.Pos(), "goroutine has no visible termination path: no channel operation, select, context.Done, or WaitGroup.Done in its body or its callees")
			}
			return true
		})
	}
}

// goTerminates reports whether the goroutine started by gs reaches a
// termination signal: directly in a spawned literal's body, or through the
// call edges recorded at the spawn site (for literals, the edges inside the
// literal's body — literals collapse into the enclosing declaration).
func goTerminates(g *Graph, term map[*FuncNode]*Witness, n *FuncNode, info *types.Info, gs *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if len(terminationOps(info, lit.Body)) > 0 {
			return true
		}
		for _, e := range n.Edges {
			if e.Pos > lit.Body.Lbrace && e.Pos < lit.Body.Rbrace && term[e.Callee] != nil {
				return true
			}
		}
		return false
	}
	for _, e := range n.Edges {
		if e.Pos == gs.Call.Pos() && e.Kind != EdgeRef && term[e.Callee] != nil {
			return true
		}
	}
	return false
}
