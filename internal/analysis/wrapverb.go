package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// AnalyzerWrapVerb (RB-E2) requires fmt.Errorf calls that embed an error
// to use the %w verb. %v/%s flatten the error to text, cutting the wrap
// chain that errors.Is / core.ClassifyFailure walk — the failure would
// still print fine but stop being classifiable, which is exactly the
// silent-degradation mode the transport layer guards against.
var AnalyzerWrapVerb = &Analyzer{
	ID:  "RB-E2",
	Doc: "fmt.Errorf embedding an error must wrap it with %w",
	Run: runWrapVerb,
}

func runWrapVerb(p *Pass) {
	for _, f := range p.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.PkgFunc(call, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				if t := p.TypeOf(arg); t != nil && isErrorType(t) {
					p.Report(call.Pos(), "fmt.Errorf formats error %s without %%w: the wrap chain breaks and errors.Is/ClassifyFailure stop matching", exprString(arg))
					return true
				}
			}
			return true
		})
	}
}
