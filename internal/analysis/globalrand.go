package analysis

import "go/ast"

// AnalyzerGlobalRand (RB-D2) forbids the global math/rand functions in
// contract packages. The process-global generator is shared mutable state:
// any other goroutine's draw perturbs the stream, so per-seed
// reproducibility dies silently. Only locally seeded *rand.Rand instances
// (rand.New(rand.NewSource(seed))) are allowed.
var AnalyzerGlobalRand = &Analyzer{
	ID:  "RB-D2",
	Doc: "contract packages must use locally seeded *rand.Rand, never global math/rand functions",
	Run: runGlobalRand,
}

// globalRandOK lists the math/rand selectors that do not touch the global
// generator: constructors and type names.
var globalRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
}

func runGlobalRand(p *Pass) {
	if !p.Contract {
		return
	}
	for _, f := range p.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				if p.IsPkgIdent(sel.X, path) && !globalRandOK[sel.Sel.Name] {
					p.Report(sel.Pos(), "global math/rand.%s in contract package %s: use a locally seeded *rand.Rand so draws are a pure function of the seed", sel.Sel.Name, p.Pkg.Name)
				}
			}
			return true
		})
	}
}
