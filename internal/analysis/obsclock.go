package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerObsClock (RB-O1) forbids constructing obs recorders or clocks in
// contract packages: obs.NewMemory defaults to a wall clock and
// obs.NewWallClock is one, so building either inside faults/experiment/
// channel/camera/core/transport would smuggle the host clock past RB-D1
// through the metrics side door. Contract code only ever accepts an
// injected Recorder — the caller decides which clock backs it, and the
// deterministic test path injects a ManualClock.
var AnalyzerObsClock = &Analyzer{
	ID:  "RB-O1",
	Doc: "contract packages must not construct obs recorders or clocks (accept an injected Recorder instead)",
	Run: runObsClock,
}

func runObsClock(p *Pass) {
	if !p.Contract {
		return
	}
	for _, f := range p.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "NewMemory" && name != "NewWallClock" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.ObjectOf(id).(*types.PkgName)
			if !ok {
				return true
			}
			if path := pn.Imported().Path(); path == "obs" || strings.HasSuffix(path, "/obs") {
				p.Report(call.Pos(), "obs.%s in determinism-contract package %s: recorders and their clocks must be injected by the caller", name, p.Pkg.Name)
			}
			return true
		})
	}
}
