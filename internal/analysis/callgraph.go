package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the whole-module half of the engine: a conservative static
// call graph over every package the loader produced. Per-file AST rules
// (RB-D1..RB-P1) see one function at a time; the graph is what lets
// RB-D4/RB-C3 prove properties *across* function boundaries — "does this
// contract function transitively reach the wall clock", "does this call
// made under a mutex transitively block".
//
// Design points, all chosen for determinism and stdlib-only operation:
//
//   - one node per declared function or method; function literals are
//     collapsed into their enclosing declaration (a literal born in F runs
//     with F's obligations: its calls become F's edges, its sources F's
//     sources);
//   - static calls resolve through go/types object identity, with
//     (*types.Func).Origin folding generic instantiations onto their
//     declaration;
//   - interface method calls resolve conservatively to every in-module,
//     non-test named type that implements the interface (callers cannot
//     know which implementation arrives at runtime, so all of them are
//     assumed); calls through a type parameter resolve the same way via
//     the parameter's constraint interface, so unresolved instantiations
//     degrade to "calls all candidates";
//   - a function value that is referenced but not immediately called
//     (method values, functions passed as callbacks) gets a "ref" edge at
//     the reference site: whoever receives the value may invoke it, and
//     the referencing function is the last point the graph can still see.
//
// Everything the graph emits — node order, edge order, the -graph dump —
// is sorted, so two loads of the same tree produce byte-identical output.

// EdgeKind classifies how a call edge was discovered.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call to a declared function or method.
	EdgeStatic EdgeKind = iota
	// EdgeIface is an interface (or type-parameter) method call resolved
	// conservatively to one of its in-module implementers.
	EdgeIface
	// EdgeRef is a function value referenced without being called; the
	// receiver of the value may invoke it later.
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeIface:
		return "iface"
	case EdgeRef:
		return "ref"
	}
	return "unknown"
}

// Edge is one caller→callee relationship with the site it was found at.
type Edge struct {
	Callee *FuncNode
	Pos    token.Pos
	Kind   EdgeKind
}

// FuncNode is one declared function or method in the module.
type FuncNode struct {
	// ID is the stable node name: "<pkgpath>.Name" for functions,
	// "<pkgpath>.(Recv).Name" / "<pkgpath>.(*Recv).Name" for methods.
	ID   string
	Pkg  *Package
	Decl *ast.FuncDecl
	// Test marks functions declared in test files (or external _test
	// packages); they never serve as interface-dispatch targets and the
	// interprocedural rules do not report into them.
	Test bool
	// Edges are the outgoing call/ref edges in discovery order (AST order,
	// interface targets sorted by ID), deduplicated.
	Edges []Edge
}

// Graph is the module call graph.
type Graph struct {
	Fset *token.FileSet
	// Nodes in ascending ID order.
	Nodes []*FuncNode
	byObj map[*types.Func]*FuncNode
	byID  map[string]*FuncNode

	// namedTypes are every non-interface named type declared in non-test
	// module code, in stable order — the interface-dispatch candidate set.
	namedTypes []*types.TypeName
	ifaceCache map[*types.Interface]map[string][]*FuncNode
}

// NodeByID returns the node with the given ID, nil if absent.
func (g *Graph) NodeByID(id string) *FuncNode { return g.byID[id] }

// NodeOf returns the node for a function object (origin-folded), nil for
// functions outside the module.
func (g *Graph) NodeOf(obj *types.Func) *FuncNode { return g.byObj[obj.Origin()] }

// BuildGraph constructs the call graph over the loaded packages.
func BuildGraph(fset *token.FileSet, pkgs []*Package) *Graph {
	g := &Graph{
		Fset:       fset,
		byObj:      make(map[*types.Func]*FuncNode),
		byID:       make(map[string]*FuncNode),
		ifaceCache: make(map[*types.Interface]map[string][]*FuncNode),
	}
	// Pass 1: nodes for every declared function, and the dispatch
	// candidate set of named types.
	for _, pkg := range pkgs {
		extTest := strings.HasSuffix(pkg.Path, "_test")
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{
					ID:   funcNodeID(pkg.Path, fn),
					Pkg:  pkg,
					Decl: fn,
					Test: extTest || pkg.TestFile[f],
				}
				g.byObj[obj] = n
				g.byID[n.ID] = n
				g.Nodes = append(g.Nodes, n)
			}
			if !extTest && !pkg.TestFile[f] {
				g.collectNamedTypes(pkg, f)
			}
		}
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].ID < g.Nodes[j].ID })
	sort.Slice(g.namedTypes, func(i, j int) bool {
		return namedTypeKey(g.namedTypes[i]) < namedTypeKey(g.namedTypes[j])
	})
	// Pass 2: edges.
	for _, n := range g.Nodes {
		g.buildEdges(n)
	}
	return g
}

func namedTypeKey(tn *types.TypeName) string {
	return tn.Pkg().Path() + "." + tn.Name()
}

// collectNamedTypes records a file's non-interface named type declarations
// as interface-dispatch candidates.
func (g *Graph) collectNamedTypes(pkg *Package, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				continue
			}
			g.namedTypes = append(g.namedTypes, tn)
		}
	}
}

// funcNodeID renders the stable node name for a declaration.
func funcNodeID(pkgPath string, fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		return pkgPath + "." + recvString(fn.Recv.List[0].Type) + "." + fn.Name.Name
	}
	return pkgPath + "." + fn.Name.Name
}

// recvString renders a receiver type as "(T)" or "(*T)", dropping any type
// parameter list so generic methods fold onto one node name.
func recvString(t ast.Expr) string {
	star := ""
	if st, ok := t.(*ast.StarExpr); ok {
		star = "*"
		t = st.X
	}
	t = baseFunExpr(t) // drop the [T] / [T1, T2] type-parameter list
	if id, ok := t.(*ast.Ident); ok {
		return "(" + star + id.Name + ")"
	}
	return "(" + star + "?)"
}

// buildEdges walks one declaration's body (function literals included,
// attributed to the declaration) and records its outgoing edges.
func (g *Graph) buildEdges(n *FuncNode) {
	if n.Decl.Body == nil {
		return
	}
	info := n.Pkg.Info
	seen := make(map[Edge]bool)
	add := func(e Edge) {
		if e.Callee != nil && !seen[e] {
			seen[e] = true
			n.Edges = append(n.Edges, e)
		}
	}
	// consumed tracks the identifiers that name a direct call's target
	// (including the Sel of a pkg.F or x.M call and the base of a generic
	// instantiation), so the ref-edge pass does not double-count them.
	consumed := make(map[*ast.Ident]bool)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		switch base := baseFunExpr(fun).(type) {
		case *ast.Ident:
			consumed[base] = true
		case *ast.SelectorExpr:
			consumed[base.Sel] = true
		}
		g.resolveCall(n, info, call, fun, add)
		return true
	})
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.Ident:
			if !consumed[e] {
				g.refEdge(info.Uses[e], e.Pos(), add)
			}
		case *ast.SelectorExpr:
			// Only method *values* and cross-package function values make
			// ref edges; a field selector resolves to a Var and is skipped
			// inside refEdge. The receiver expression still gets visited;
			// marking Sel consumed stops its bare-ident visit from
			// double-adding at a different position.
			if !consumed[e.Sel] {
				consumed[e.Sel] = true
				g.refEdge(info.Uses[e.Sel], e.Pos(), add)
			}
		}
		return true
	})
}

// baseFunExpr unwraps explicit generic instantiations (f[T], f[T1, T2]) to
// the underlying function expression.
func baseFunExpr(fun ast.Expr) ast.Expr {
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(f.X)
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
		default:
			return fun
		}
	}
}

// resolveCall records the edges for one call expression.
func (g *Graph) resolveCall(n *FuncNode, info *types.Info, call *ast.CallExpr, fun ast.Expr, add func(Edge)) {
	switch fn := fun.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fn].(*types.Func); ok {
			add(Edge{Callee: g.NodeOf(obj), Pos: call.Pos(), Kind: EdgeStatic})
		}
	case *ast.SelectorExpr:
		sel, isSel := info.Selections[fn]
		if isSel && sel.Kind() == types.MethodVal {
			obj := sel.Obj().(*types.Func)
			recv := sel.Recv()
			if iface := dispatchInterface(recv); iface != nil {
				for _, target := range g.implementers(iface, obj.Name()) {
					add(Edge{Callee: target, Pos: call.Pos(), Kind: EdgeIface})
				}
				return
			}
			add(Edge{Callee: g.NodeOf(obj), Pos: call.Pos(), Kind: EdgeStatic})
			return
		}
		// Qualified call (pkg.F) or method expression (T.M): a plain use.
		if obj, ok := info.Uses[fn.Sel].(*types.Func); ok {
			add(Edge{Callee: g.NodeOf(obj), Pos: call.Pos(), Kind: EdgeStatic})
		}
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		g.resolveCall(n, info, call, ast.Unparen(fn.X), add)
	case *ast.IndexListExpr:
		g.resolveCall(n, info, call, ast.Unparen(fn.X), add)
	}
	// *ast.FuncLit calls and dynamic calls of func-typed variables add no
	// edge here: literals are collapsed into this node (their bodies were
	// already walked), and variables were ref-edged where the value was
	// taken.
}

// dispatchInterface returns the interface a dynamic method call goes
// through: the receiver's interface type, or a type parameter's constraint
// interface. Nil for concrete receivers.
func dispatchInterface(recv types.Type) *types.Interface {
	switch t := recv.(type) {
	case *types.Interface:
		return t
	case *types.TypeParam:
		if iface, ok := t.Constraint().Underlying().(*types.Interface); ok {
			return iface
		}
	case *types.Named:
		if iface, ok := t.Underlying().(*types.Interface); ok {
			return iface
		}
	case *types.Pointer:
		return dispatchInterface(t.Elem())
	}
	return nil
}

// refEdge adds a ref edge when obj is an in-module declared function.
func (g *Graph) refEdge(obj types.Object, pos token.Pos, add func(Edge)) {
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	add(Edge{Callee: g.NodeOf(fn), Pos: pos, Kind: EdgeRef})
}

// implementers resolves an interface method to every in-module, non-test
// named type implementing the interface, in stable ID order.
func (g *Graph) implementers(iface *types.Interface, method string) []*FuncNode {
	byMethod := g.ifaceCache[iface]
	if byMethod == nil {
		byMethod = make(map[string][]*FuncNode)
		g.ifaceCache[iface] = byMethod
	}
	if targets, ok := byMethod[method]; ok {
		return targets
	}
	var targets []*FuncNode
	if iface.NumMethods() > 0 { // io.Writer-style; empty interfaces dispatch nowhere
		for _, tn := range g.namedTypes {
			for _, t := range []types.Type{tn.Type(), types.NewPointer(tn.Type())} {
				if !types.Implements(t, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(t, true, tn.Pkg(), method)
				if m, ok := obj.(*types.Func); ok {
					if target := g.NodeOf(m); target != nil && !target.Test {
						targets = append(targets, target)
					}
				}
				break // pointer method set ⊇ value method set; one hit is enough
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ID < targets[j].ID })
	targets = dedupNodes(targets)
	byMethod[method] = targets
	return targets
}

func dedupNodes(ns []*FuncNode) []*FuncNode {
	out := ns[:0]
	for i, n := range ns {
		if i == 0 || ns[i-1] != n {
			out = append(out, n)
		}
	}
	return out
}

// Reachable returns every node reachable from the given roots (the roots
// themselves included), following all edge kinds.
func (g *Graph) Reachable(roots ...*FuncNode) map[*FuncNode]bool {
	seen := make(map[*FuncNode]bool)
	var stack []*FuncNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Edges {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// Dump writes the graph in a stable text form: nodes in ID order, each
// followed by its edges and taint sources. Positions are rendered relative
// to root when non-empty, so dumps are stable across checkouts. Two loads
// of the same tree produce byte-identical dumps.
func (g *Graph) Dump(w io.Writer, root string) {
	edges := 0
	for _, n := range g.Nodes {
		edges += len(n.Edges)
	}
	fmt.Fprintf(w, "# call graph: %d nodes, %d edges\n", len(g.Nodes), edges)
	for _, n := range g.Nodes {
		flags := ""
		if n.Test {
			flags = " [test]"
		}
		fmt.Fprintf(w, "node %s%s\n", n.ID, flags)
		for _, e := range n.Edges {
			fmt.Fprintf(w, "  -> %s kind=%s site=%s\n", e.Callee.ID, e.Kind, g.position(e.Pos, root))
		}
		for _, s := range funcSources(n, nil, nil) {
			fmt.Fprintf(w, "  source %s at %s\n", s.Desc, g.position(s.Pos, root))
		}
	}
}

// position renders a root-relative file:line for dump and diagnostics.
func (g *Graph) position(pos token.Pos, root string) string {
	p := g.Fset.Position(pos)
	if root != "" {
		if rel, err := filepath.Rel(root, p.Filename); err == nil && !filepath.IsAbs(rel) && !strings.HasPrefix(rel, "..") {
			p.Filename = filepath.ToSlash(rel)
		}
	}
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
