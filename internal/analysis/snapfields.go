package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ModuleAnalyzerSnapFields (RB-S1) verifies snapshot completeness: for each
// configured SnapshotContract, every exported field of the struct must be
// mentioned somewhere in the encode root's call-graph closure AND in the
// decode root's closure. "Mentioned" is a field-object use recorded by the
// type checker — a selector read or write, or a composite-literal key; an
// unkeyed (positional) literal of the struct type mentions every field.
//
// The point is the failure mode this repo already documents for its serve
// snapshots: add a counter to XferState, forget to thread it through
// encodeXferState/decodeXferState, and sessions silently diverge on
// restore. RB-S1 turns that into a lint-gate failure at the field's
// declaration, where the author is looking.
var ModuleAnalyzerSnapFields = &ModuleAnalyzer{
	ID:  "RB-S1",
	Doc: "every exported field of snapshot structs must be written by the encode path and read by the decode path",
	Run: runSnapFields,
}

func runSnapFields(mp *ModulePass) {
	for _, sc := range mp.Config.SnapshotContracts {
		st, tn := mp.lookupStruct(sc.Type)
		if st == nil {
			// Loud when the contract's package exists but the type is gone
			// (a rename would otherwise silently disable the rule); silent
			// when the whole package is absent (partial or test modules).
			if key, _, ok := strings.Cut(sc.Type, "."); ok && mp.hasPackageKey(key) {
				mp.Report(token.NoPos, "snapshot contract: struct %s not found in module", sc.Type)
			}
			continue
		}
		for _, side := range []struct{ root, what string }{
			{sc.Encode, "written by the encode path"},
			{sc.Decode, "read by the decode path"},
		} {
			roots := mp.funcNodes(side.root)
			if len(roots) == 0 {
				mp.Report(tn.Pos(), "snapshot contract: function %s not found in module", side.root)
				continue
			}
			mentioned := fieldMentions(mp.Graph, roots, st)
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !f.Exported() || mentioned[f] {
					continue
				}
				mp.Report(f.Pos(), "exported field %s.%s is never %s (%s): it will be dropped across snapshot/restore",
					tn.Name(), f.Name(), side.what, side.root)
			}
		}
	}
}

// hasPackageKey reports whether any canonical module package maps to the
// given contract key.
func (mp *ModulePass) hasPackageKey(key string) bool {
	for _, pkg := range mp.Pkgs {
		if !strings.HasSuffix(pkg.Path, "_test") && contractKey(pkg.Path) == key {
			return true
		}
	}
	return false
}

// lookupStruct resolves a "<contract-key>.<TypeName>" reference to the
// struct type and its TypeName, searching the module's canonical
// (non-external-test) packages.
func (mp *ModulePass) lookupStruct(ref string) (*types.Struct, *types.TypeName) {
	key, name, ok := strings.Cut(ref, ".")
	if !ok {
		return nil, nil
	}
	for _, pkg := range mp.Pkgs {
		if strings.HasSuffix(pkg.Path, "_test") || contractKey(pkg.Path) != key || pkg.Types == nil {
			continue
		}
		tn, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if st, ok := tn.Type().Underlying().(*types.Struct); ok {
			return st, tn
		}
	}
	return nil, nil
}

// funcNodes resolves a "<contract-key>.<name>" reference to the matching
// non-test graph nodes; name may be a plain function name or a method in
// "(*T).M" / "(T).M" form.
func (mp *ModulePass) funcNodes(ref string) []*FuncNode {
	key, name, ok := strings.Cut(ref, ".")
	if !ok {
		return nil
	}
	var out []*FuncNode
	for _, n := range mp.Graph.Nodes {
		if n.Test || contractKey(n.Pkg.Path) != key {
			continue
		}
		if strings.TrimPrefix(n.ID, n.Pkg.Path+".") == name {
			out = append(out, n)
		}
	}
	return out
}

// fieldMentions returns the set of st's fields mentioned anywhere in the
// call-graph closure of roots.
func fieldMentions(g *Graph, roots []*FuncNode, st *types.Struct) map[*types.Var]bool {
	fields := make(map[types.Object]*types.Var, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = st.Field(i)
	}
	mentioned := make(map[*types.Var]bool)
	for n := range g.Reachable(roots...) {
		if n.Decl.Body == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			switch e := node.(type) {
			case *ast.Ident:
				// Selector reads/writes and composite-literal keys both land
				// in Uses as the field object.
				if f, ok := fields[info.Uses[e]]; ok {
					mentioned[f] = true
				}
			case *ast.CompositeLit:
				if len(e.Elts) == 0 {
					return true
				}
				if _, keyed := e.Elts[0].(*ast.KeyValueExpr); keyed {
					return true
				}
				if t := info.TypeOf(e); t != nil && types.Identical(t.Underlying(), st) {
					for _, f := range fields {
						mentioned[f] = true
					}
				}
			}
			return true
		})
	}
	return mentioned
}
