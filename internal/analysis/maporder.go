package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerMapOrder (RB-D3) flags map-range loops in contract packages
// whose iteration order can leak into ordered output: the loop appends to
// a slice or emits table rows, and no sort call follows in the same
// function. Go randomizes map iteration, so such a loop breaks
// bit-reproducible sweeps nondeterministically. //lint:ordered <reason>
// asserts the consumer is order-insensitive.
var AnalyzerMapOrder = &Analyzer{
	ID:  "RB-D3",
	Doc: "map iteration must not feed returned slices or emitted rows without an intervening sort",
	Run: runMapOrder,
}

func runMapOrder(p *Pass) {
	if !p.Contract {
		return
	}
	for _, f := range p.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkMapRanges(p, fn.Body)
			return true
		})
	}
}

func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	for _, ms := range unsortedMapSinks(p.Pkg.Info, body) {
		p.Report(ms.pos, "map iteration order flows into %s with no sort call after the loop: output becomes nondeterministic across runs", ms.sink)
	}
}

// mapSink is one unsorted map-range whose iteration order reaches ordered
// output. Shared between RB-D3 (reported directly in contract packages)
// and the RB-D4 taint summaries (a source when it sits in a non-contract
// function a contract package transitively calls).
type mapSink struct {
	pos  token.Pos
	sink string
}

// unsortedMapSinks finds every map-range in body feeding an ordered sink
// with no canonicalizing sort after the loop.
func unsortedMapSinks(info *types.Info, body *ast.BlockStmt) []mapSink {
	var out []mapSink
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := info.TypeOf(rng.X); t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		sink := orderedSink(info, rng.Body)
		if sink == "" {
			return true
		}
		if sortCallAfter(info, body, rng) {
			return true
		}
		out = append(out, mapSink{pos: rng.Pos(), sink: sink})
		return true
	})
	return out
}

// orderedSink reports what order-sensitive output the loop body feeds:
// an append target, a slice element store indexed by a counter, or a
// direct row emission. Empty means none found (map-to-map copies,
// aggregations, and the like are order-insensitive).
func orderedSink(info *types.Info, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isBuiltin := infoObjectOf(info, id).(*types.Builtin); isBuiltin && id.Name == "append" && len(call.Args) > 0 {
				sink = "append(" + exprString(call.Args[0]) + ", ...)"
				return false
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "AddRow" {
			sink = exprString(sel.X) + ".AddRow(...)"
			return false
		}
		return true
	})
	return sink
}

// sortCallAfter reports whether any sort/slices-package call appears in fn
// after the range loop; that is taken as the canonicalizing sort.
func sortCallAfter(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if infoIsPkgIdent(info, sel.X, "sort") || infoIsPkgIdent(info, sel.X, "slices") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprString renders simple expressions (identifiers, selectors) for
// diagnostics without dragging in go/printer.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ArrayType:
		return "[]" + exprString(e.Elt)
	case *ast.MapType:
		return "map[" + exprString(e.Key) + "]" + exprString(e.Value)
	}
	return "expression"
}
