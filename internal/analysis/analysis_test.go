package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches expected-diagnostic comments in fixture files:
// // want "regexp" `regexp` ...
var wantRe = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// fixtureExpectations parses every // want comment in the package.
func fixtureExpectations(t *testing.T, pkg *Package) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantArgRe.FindAllString(m[1], -1) {
					pattern := q[1 : len(q)-1]
					if q[0] == '"' {
						unq, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						pattern = unq
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					out = append(out, expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// runFixture loads testdata/src/<name> (sub-packages included), runs the
// full suite — per-package and whole-module rules — with the fixture marked
// as a contract+decode package (unless contract is false), and checks
// findings against the // want comments: every want must match a finding on
// its line, and every finding must be wanted. conf, when non-nil, adjusts
// the config (lock roots, snapshot contracts, ...) before the run.
func runFixture(t *testing.T, name string, contract bool, conf func(*Config)) {
	t.Helper()
	pkgs, err := LoadDirAll(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	cfg := Config{
		ContractRoots: map[string]bool{},
		DecodeRoots:   map[string]bool{name: true},
		PoolPairs:     map[string]string{"GetFloats": "PutFloats"},
		HotPathFuncs: map[string]bool{
			"Codec.extractGrid": true, "Codec.DecodeFrame": true,
			"Receiver.ingest": true,
		},
		// Mirror the real tree: an "obs" sub-package stands in for injected
		// observability and is taint-exempt.
		TaintExemptRoots: map[string]bool{"obs": true},
		LockRoots:        map[string]bool{},
		GoroutineRoots:   map[string]bool{},
	}
	if contract {
		cfg.ContractRoots[name] = true
	}
	if conf != nil {
		conf(&cfg)
	}
	r := &Runner{Analyzers: AllAnalyzers(), ModuleAnalyzers: AllModuleAnalyzers(), Config: cfg}
	findings := r.Run(pkgs)
	var wants []expectation
	for _, pkg := range pkgs {
		wants = append(wants, fixtureExpectations(t, pkg)...)
	}

	matched := make([]bool, len(findings))
	for _, w := range wants {
		ok := false
		for i, f := range findings {
			if !matched[i] && f.Pos.Filename == w.file && f.Pos.Line == w.line && w.re.MatchString(f.Msg) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
}

func TestFixtures(t *testing.T) {
	fixtures := []struct {
		name     string
		contract bool
		conf     func(*Config)
	}{
		{"timenow", true, nil},
		{"obsclock", true, nil},
		{"globalrand", true, nil},
		{"maporder", true, nil},
		{"sentinelcmp", true, nil},
		{"wrapverb", true, nil},
		{"panicguard", true, nil},
		{"floateq", true, nil},
		{"poolput", true, nil},
		{"loopcapture", true, nil},
		{"ladder", true, nil},
		{"hotalloc", true, nil},
		// The contract rules stay quiet when the package is outside the
		// contract set, so only the directive check (RB-X1) fires here.
		{"directive", false, nil},
		// Whole-module rules.
		{"taint", true, nil},
		{"generics", true, nil},
		{"snapfields", false, func(c *Config) {
			c.SnapshotContracts = []SnapshotContract{
				{Type: "snapfields.State", Encode: "snapfields.EncodeState", Decode: "snapfields.DecodeState"},
				{Type: "snapfields.Pair", Encode: "snapfields.EncodePair", Decode: "snapfields.DecodePair"},
			}
		}},
		{"lockblock", false, func(c *Config) {
			c.LockRoots["lockblock"] = true
		}},
		{"goterm", false, func(c *Config) {
			c.GoroutineRoots["goterm"] = true
		}},
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) { runFixture(t, fx.name, fx.contract, fx.conf) })
	}
}

// TestContractScoping pins that determinism rules are scoped: the same
// fixture produces zero determinism findings when the package is not in
// the contract set.
func TestContractScoping(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "timenow"))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Analyzers: AllAnalyzers(), Config: Config{}}
	if findings := r.Run([]*Package{pkg}); len(findings) != 0 {
		t.Fatalf("non-contract package should be clean, got %v", findings)
	}
}

// TestContractKey pins the path-to-root mapping the Config keys rely on.
func TestContractKey(t *testing.T) {
	cases := map[string]string{
		"rainbar/internal/core":        "core",
		"rainbar/internal/core/layout": "core",
		"rainbar/internal/core_test":   "core",
		"rainbar/internal/faults":      "faults",
		"rainbar":                      "rainbar",
		"rainbar/cmd/rainbar-bench":    "rainbar-bench",
		"fixture/timenow":              "timenow",
		// The durability subsystem folds under the serve roots, so the
		// journal and the chaos harness inherit serve's contract, lock,
		// and goroutine rules without their own entries.
		"rainbar/internal/serve/journal": "serve",
		"rainbar/internal/serve/chaos":   "serve",
	}
	for path, want := range cases {
		if got := contractKey(path); got != want {
			t.Errorf("contractKey(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestRepositoryClean is the lint gate in test form: the module's own tree
// must produce zero findings. It doubles as an end-to-end exercise of the
// loader over every package in the module, external test packages
// included.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	var msgs []string
	for _, f := range NewRunner().Run(pkgs) {
		msgs = append(msgs, f.String())
	}
	if len(msgs) > 0 {
		t.Errorf("repository has %d lint finding(s):\n%s", len(msgs), strings.Join(msgs, "\n"))
	}
}

// TestFindingString pins the diagnostic format CI greps for.
func TestFindingString(t *testing.T) {
	f := Finding{Rule: "RB-D1", Msg: "message"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 3
	f.Pos.Column = 7
	if got, want := f.String(), "a/b.go:3:7: message [RB-D1]"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
	_ = fmt.Sprintf("%s", f)
}
