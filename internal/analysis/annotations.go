package analysis

import (
	"go/token"
	"sort"
)

// Annotation is one lint directive found in the tree — the audit-mode
// (-annotations) view of the escape hatches. Every directive is a standing
// claim that an invariant holds for a reason the rule cannot see; the audit
// lists them all so the claims stay reviewable, and flags the ones whose
// rule IDs no longer exist (stale: the rule was renamed or removed, so the
// directive suppresses nothing and the reason guards nothing).
type Annotation struct {
	Pos    token.Position
	Kind   string   // "allow", "file-allow", or "ordered"
	Rules  []string // rule IDs the directive names
	Reason string   // empty reasons are RB-X1 findings, still listed here
	Stale  []string // named rule IDs not present in the registered suite
}

// KnownRules returns the IDs a directive may legitimately name: every
// registered per-package and whole-module rule, plus RB-X1 (the directive
// check itself).
func KnownRules() map[string]bool {
	known := map[string]bool{"RB-X1": true}
	for _, a := range AllAnalyzers() {
		known[a.ID] = true
	}
	for _, a := range AllModuleAnalyzers() {
		known[a.ID] = true
	}
	return known
}

// CollectAnnotations scans every package's comments for lint directives and
// returns them in position order, with stale rule IDs marked.
func CollectAnnotations(pkgs []*Package, known map[string]bool) []Annotation {
	var out []Annotation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					d, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					a := Annotation{
						Pos:    pkg.Fset.Position(c.Pos()),
						Kind:   d.Kind,
						Rules:  d.Rules,
						Reason: d.Reason,
					}
					for _, r := range d.Rules {
						if !known[r] {
							a.Stale = append(a.Stale, r)
						}
					}
					out = append(out, a)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}
