package analysis

// Runner applies a fixed analyzer suite to type-checked packages.
type Runner struct {
	Analyzers []*Analyzer
	Config    Config
}

// NewRunner returns a runner with the full rule suite and the repository's
// default contract configuration.
func NewRunner() *Runner {
	return &Runner{Analyzers: AllAnalyzers(), Config: DefaultConfig()}
}

// AllAnalyzers returns every registered rule in stable ID order.
func AllAnalyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerTimeNow,     // RB-D1
		AnalyzerGlobalRand,  // RB-D2
		AnalyzerMapOrder,    // RB-D3
		AnalyzerObsClock,    // RB-O1
		AnalyzerSentinelCmp, // RB-E1
		AnalyzerWrapVerb,    // RB-E2
		AnalyzerPanicGuard,  // RB-E3
		AnalyzerFloatEq,     // RB-F1
		AnalyzerPoolPut,     // RB-C1
		AnalyzerLoopCapture, // RB-C2
		AnalyzerHotAlloc,    // RB-P1
	}
}

// Run applies the suite to the given packages and returns all findings
// sorted by position then rule ID.
func (r *Runner) Run(pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		key := contractKey(pkg.Path)
		pass := &Pass{
			Fset:     pkg.Fset,
			Pkg:      pkg,
			Config:   r.Config,
			Contract: r.Config.ContractRoots[key],
			Decode:   r.Config.DecodeRoots[key],
			findings: &findings,
		}
		pass.suppress = collectDirectives(pkg.Fset, pkg, &findings)
		for _, a := range r.Analyzers {
			pass.rule = a.ID
			a.Run(pass)
		}
	}
	sortFindings(findings)
	return findings
}
