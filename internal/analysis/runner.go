package analysis

import (
	"fmt"
	"go/token"
)

// Runner applies a fixed analyzer suite to type-checked packages: first the
// per-package rules, then (when the suite has any) the whole-module rules
// over a call graph built across every package at once.
type Runner struct {
	Analyzers       []*Analyzer
	ModuleAnalyzers []*ModuleAnalyzer
	Config          Config
}

// NewRunner returns a runner with the full rule suite and the repository's
// default contract configuration.
func NewRunner() *Runner {
	return &Runner{
		Analyzers:       AllAnalyzers(),
		ModuleAnalyzers: AllModuleAnalyzers(),
		Config:          DefaultConfig(),
	}
}

// AllAnalyzers returns every registered per-package rule in stable ID order.
func AllAnalyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerTimeNow,     // RB-D1
		AnalyzerGlobalRand,  // RB-D2
		AnalyzerMapOrder,    // RB-D3
		AnalyzerObsClock,    // RB-O1
		AnalyzerSentinelCmp, // RB-E1
		AnalyzerWrapVerb,    // RB-E2
		AnalyzerPanicGuard,  // RB-E3
		AnalyzerFloatEq,     // RB-F1
		AnalyzerPoolPut,     // RB-C1
		AnalyzerLoopCapture, // RB-C2
		AnalyzerHotAlloc,    // RB-P1
	}
}

// AllModuleAnalyzers returns every registered whole-module rule in stable
// ID order.
func AllModuleAnalyzers() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{
		ModuleAnalyzerLockBlock,  // RB-C3
		ModuleAnalyzerGoTerm,     // RB-C4
		ModuleAnalyzerTaint,      // RB-D4
		ModuleAnalyzerSnapFields, // RB-S1
	}
}

// ModuleAnalyzer is one whole-module rule: it sees every package and the
// call graph at once, where an Analyzer sees one package at a time.
type ModuleAnalyzer struct {
	ID  string // stable rule ID, e.g. "RB-D4"
	Doc string // one-line invariant description
	Run func(*ModulePass)
}

// ModulePass is the whole-module analysis input: all packages, the call
// graph over them, and the merged suppression table.
type ModulePass struct {
	Fset   *token.FileSet
	Pkgs   []*Package
	Config Config
	Graph  *Graph

	rule     string
	findings *[]Finding
	suppress suppressTable
}

// Report records a finding for the current module rule unless a directive
// suppresses it at the position.
func (mp *ModulePass) Report(pos token.Pos, format string, args ...any) {
	position := mp.Fset.Position(pos)
	if mp.suppress.suppressed(mp.rule, position) {
		return
	}
	*mp.findings = append(*mp.findings, Finding{
		Rule: mp.rule,
		Pos:  position,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Run applies the suite to the given packages and returns all findings
// sorted by position then rule ID.
func (r *Runner) Run(pkgs []*Package) []Finding {
	var findings []Finding
	module := make(suppressTable)
	for _, pkg := range pkgs {
		key := contractKey(pkg.Path)
		pass := &Pass{
			Fset:     pkg.Fset,
			Pkg:      pkg,
			Config:   r.Config,
			Contract: r.Config.ContractRoots[key],
			Decode:   r.Config.DecodeRoots[key],
			findings: &findings,
		}
		pass.suppress = collectDirectives(pkg.Fset, pkg, &findings)
		module.merge(pass.suppress)
		for _, a := range r.Analyzers {
			pass.rule = a.ID
			a.Run(pass)
		}
	}
	if len(r.ModuleAnalyzers) > 0 && len(pkgs) > 0 {
		mp := &ModulePass{
			Fset:     pkgs[0].Fset,
			Pkgs:     pkgs,
			Config:   r.Config,
			Graph:    BuildGraph(pkgs[0].Fset, pkgs),
			findings: &findings,
			suppress: module,
		}
		for _, a := range r.ModuleAnalyzers {
			mp.rule = a.ID
			a.Run(mp)
		}
	}
	sortFindings(findings)
	return findings
}
