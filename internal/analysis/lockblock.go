package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ModuleAnalyzerLockBlock (RB-C3) enforces the serve daemon's mutex
// discipline: no mutex may be held across an operation that can block the
// goroutine indefinitely — a channel send or receive, a blocking select,
// ranging over a channel, sync.WaitGroup.Wait, or time.Sleep — whether the
// operation is in the locked region itself or reached transitively through
// a call. A blocked lock holder wedges every other session touching the
// same state, which is exactly the failure mode a multi-session daemon
// exists to avoid.
//
// Lock regions are tracked syntactically, per block: a region opens at
// X.Lock()/X.RLock() and closes at the matching X.Unlock()/X.RUnlock() in
// the same block (a deferred unlock extends the region to the end of the
// function; no unlock extends it to the end of the block). Function-literal
// bodies inside a region are excluded — a literal defined under the lock
// runs when invoked, which for `go func(){...}()` and enqueued callbacks is
// after release. sync.Cond.Wait is exempt by construction: it is not in the
// blocking-op set because it releases the mutex it was built over.
var ModuleAnalyzerLockBlock = &ModuleAnalyzer{
	ID:  "RB-C3",
	Doc: "no mutex may be held across a (transitively) blocking operation in lock-discipline packages",
	Run: runLockBlock,
}

func runLockBlock(mp *ModulePass) {
	g := mp.Graph
	block := propagate(g, blockOpSources(g))
	for _, n := range g.Nodes {
		if n.Test || n.Decl.Body == nil || !mp.Config.LockRoots[contractKey(n.Pkg.Path)] {
			continue
		}
		checkLockRegions(mp, n, block)
	}
}

// region is one held-lock span: mutex expression plus the position range it
// is held over.
type region struct {
	mu         string
	start, end token.Pos
}

func checkLockRegions(mp *ModulePass, n *FuncNode, block map[*FuncNode]*Witness) {
	info := n.Pkg.Info
	var lits [][2]token.Pos // function-literal body ranges, excluded from regions
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			lits = append(lits, [2]token.Pos{lit.Body.Lbrace, lit.Body.Rbrace})
		}
		return true
	})
	// escapes reports whether pos sits in a function literal the region's
	// opening Lock is outside of — such code runs when the literal is
	// invoked, not while the lock is held here.
	escapes := func(pos, regionStart token.Pos) bool {
		for _, r := range lits {
			if pos > r[0] && pos < r[1] && !(regionStart > r[0] && regionStart < r[1]) {
				return true
			}
		}
		return false
	}

	var regions []region
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		blk, ok := node.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range blk.List {
			mu, ok := lockStmt(info, stmt)
			if !ok {
				continue
			}
			r := region{mu: mu, start: stmt.End(), end: blk.Rbrace}
			for _, later := range blk.List[i+1:] {
				kind, umu := unlockStmt(info, later)
				if umu != mu {
					continue
				}
				if kind == "defer" {
					// Held until the enclosing function (or literal) returns.
					r.end = n.Decl.Body.Rbrace
					for _, lr := range lits {
						if stmt.Pos() > lr[0] && stmt.Pos() < lr[1] && lr[1] < r.end {
							r.end = lr[1]
						}
					}
				} else {
					r.end = later.Pos()
				}
				break
			}
			regions = append(regions, r)
		}
		return true
	})
	if len(regions) == 0 {
		return
	}

	held := func(pos token.Pos) string {
		for _, r := range regions {
			if pos > r.start && pos < r.end && !escapes(pos, r.start) {
				return r.mu
			}
		}
		return ""
	}

	for _, op := range funcBlockOps(n) {
		if mu := held(op.Pos); mu != "" {
			mp.Report(op.Pos, "%s is held across %s: a blocked holder wedges every goroutine contending for it", mu, op.Desc)
		}
	}
	// Transitive: one finding per call site, shortest witness wins.
	best := make(map[token.Pos]Edge)
	var sites []token.Pos
	for _, e := range n.Edges {
		if e.Kind == EdgeRef { // a reference under lock is not a call
			continue
		}
		w := block[e.Callee]
		if w == nil || held(e.Pos) == "" {
			continue
		}
		cur, ok := best[e.Pos]
		if !ok {
			best[e.Pos] = e
			sites = append(sites, e.Pos)
			continue
		}
		cw := block[cur.Callee]
		if w.Dist < cw.Dist || (w.Dist == cw.Dist && e.Callee.ID < cur.Callee.ID) {
			best[e.Pos] = e
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, pos := range sites {
		e := best[pos]
		w := block[e.Callee]
		mp.Report(pos, "%s is held across a call to %s, which can block on %s: %s",
			held(pos), shortNodeID(e.Callee.ID), w.Op.Desc, chainString(mp.Graph, block, e.Callee))
	}
}

// lockStmt recognizes `X.Lock()` / `X.RLock()` statements on sync mutexes
// and returns the rendered mutex expression.
func lockStmt(info *types.Info, stmt ast.Stmt) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	return mutexCall(info, es.X, "Lock", "RLock")
}

// unlockStmt recognizes `X.Unlock()` / `X.RUnlock()` either as a plain
// statement (kind "call") or deferred (kind "defer").
func unlockStmt(info *types.Info, stmt ast.Stmt) (kind, mu string) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if mu, ok := mutexCall(info, s.X, "Unlock", "RUnlock"); ok {
			return "call", mu
		}
	case *ast.DeferStmt:
		if mu, ok := mutexCall(info, s.Call, "Unlock", "RUnlock"); ok {
			return "defer", mu
		}
	}
	return "", ""
}

// mutexCall matches a call of one of the named methods on a sync.Mutex or
// sync.RWMutex receiver and returns the rendered receiver expression.
func mutexCall(info *types.Info, e ast.Expr, names ...string) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	for _, name := range names {
		if sel.Sel.Name != name {
			continue
		}
		if isSyncMethod(info, call, "Mutex", name) || isSyncMethod(info, call, "RWMutex", name) {
			return exprString(sel.X), true
		}
	}
	return "", false
}
