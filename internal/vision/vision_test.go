package vision

import (
	"testing"

	"rainbar/internal/colorspace"
	"rainbar/internal/geometry"
	"rainbar/internal/raster"
)

// paint draws a block of the given color.
func paint(img *raster.Image, x, y, size int, c colorspace.Color) {
	img.FillRect(x, y, size, size, colorspace.Paint(c))
}

func classifier() colorspace.Classifier { return colorspace.NewClassifier(0.3) }

func TestClassifyMapDimensions(t *testing.T) {
	img := raster.New(64, 48)
	m, mw, mh := ClassifyMap(img, classifier(), 2)
	if mw != 32 || mh != 24 || len(m) != 32*24 {
		t.Fatalf("map %dx%d len %d", mw, mh, len(m))
	}
	for _, c := range m {
		if c != colorspace.Black {
			t.Fatal("black image classified non-black")
		}
	}
}

func TestBlackBlobsFindsIsolatedBlocks(t *testing.T) {
	img := raster.New(100, 100)
	img.Fill(colorspace.RGBWhite)
	paint(img, 10, 10, 8, colorspace.Black)
	paint(img, 50, 60, 8, colorspace.Black)
	m, mw, mh := ClassifyMap(img, classifier(), 2)
	blobs := BlackBlobs(m, mw, mh)
	if len(blobs) != 2 {
		t.Fatalf("%d blobs, want 2", len(blobs))
	}
	for _, b := range blobs {
		if b.Width() != 4 || b.Height() != 4 {
			t.Errorf("blob %dx%d, want 4x4 (8px at stride 2)", b.Width(), b.Height())
		}
	}
}

func TestBlackBlobsMergesDiagonal(t *testing.T) {
	// 8-connectivity: two diagonal-touching blocks form one blob.
	img := raster.New(40, 40)
	img.Fill(colorspace.RGBWhite)
	paint(img, 10, 10, 6, colorspace.Black)
	paint(img, 16, 16, 6, colorspace.Black)
	m, mw, mh := ClassifyMap(img, classifier(), 2)
	blobs := BlackBlobs(m, mw, mh)
	if len(blobs) != 1 {
		t.Fatalf("%d blobs, want 1 (diagonal connectivity)", len(blobs))
	}
}

func TestBlackBlobsDropsSingleCells(t *testing.T) {
	img := raster.New(40, 40)
	img.Fill(colorspace.RGBWhite)
	img.Set(20, 20, colorspace.RGBBlack) // one pixel -> one map cell at most
	m, mw, mh := ClassifyMap(img, classifier(), 2)
	if blobs := BlackBlobs(m, mw, mh); len(blobs) != 0 {
		t.Fatalf("%d blobs from single-pixel noise, want 0", len(blobs))
	}
}

func TestBlobCentroid(t *testing.T) {
	img := raster.New(60, 60)
	img.Fill(colorspace.RGBWhite)
	paint(img, 20, 30, 10, colorspace.Black) // block spans map x 10..14, y 15..19
	m, mw, mh := ClassifyMap(img, classifier(), 2)
	blobs := BlackBlobs(m, mw, mh)
	if len(blobs) != 1 {
		t.Fatalf("%d blobs", len(blobs))
	}
	cx, cy := blobs[0].Centroid()
	if cx < 11.5 || cx > 12.5 || cy < 16.5 || cy > 17.5 {
		t.Errorf("centroid (%.1f, %.1f), want ≈(12, 17)", cx, cy)
	}
}

func TestKMeansCorrectConvergesToBlockCenter(t *testing.T) {
	img := raster.New(60, 60)
	img.Fill(colorspace.RGBWhite)
	paint(img, 24, 24, 12, colorspace.Black) // center (30, 30)
	// Start offset by a third of a block.
	got, found := KMeansCorrect(img, classifier(), geometry.Point{X: 26, Y: 34}, 13)
	if !found {
		t.Fatal("block not found")
	}
	if got.Dist(geometry.Point{X: 29.5, Y: 29.5}) > 1.2 {
		t.Fatalf("converged to (%.1f, %.1f), want ≈(29.5, 29.5)", got.X, got.Y)
	}
}

func TestKMeansCorrectNoBlackReturnsInput(t *testing.T) {
	img := raster.New(30, 30)
	img.Fill(colorspace.RGBWhite)
	p := geometry.Point{X: 15, Y: 15}
	got, found := KMeansCorrect(img, classifier(), p, 8)
	if found {
		t.Fatal("reported found with no black pixels")
	}
	if got != p {
		t.Fatalf("moved to %v with no black pixels", got)
	}
}

func TestKMeansCorrectTinyWindowClamped(t *testing.T) {
	img := raster.New(30, 30)
	img.Fill(colorspace.RGBWhite)
	paint(img, 14, 14, 4, colorspace.Black)
	// Edge below the minimum must still work (clamped internally).
	got, _ := KMeansCorrect(img, classifier(), geometry.Point{X: 15, Y: 15}, 0.5)
	if got.Dist(geometry.Point{X: 15.5, Y: 15.5}) > 1.5 {
		t.Fatalf("got %v", got)
	}
}

func TestBlackExtent(t *testing.T) {
	img := raster.New(60, 60)
	img.Fill(colorspace.RGBWhite)
	paint(img, 20, 20, 10, colorspace.Black)
	up, down, left, right := BlackExtent(img, classifier(), geometry.Point{X: 24, Y: 24}, 20)
	// From (24,24) inside the 20..29 block.
	if up != 4 || left != 4 {
		t.Errorf("up=%d left=%d, want 4", up, left)
	}
	if down != 5 || right != 5 {
		t.Errorf("down=%d right=%d, want 5", down, right)
	}
}

func TestBlackExtentRespectsMaxSteps(t *testing.T) {
	img := raster.New(60, 60) // all black
	up, down, left, right := BlackExtent(img, classifier(), geometry.Point{X: 30, Y: 30}, 7)
	for _, v := range []int{up, down, left, right} {
		if v != 7 {
			t.Fatalf("extent %d, want capped at 7", v)
		}
	}
}

func TestRingVotesOnRing(t *testing.T) {
	img := raster.New(90, 90)
	img.Fill(colorspace.RGBWhite)
	// 3x3 blocks of 10px: green ring, black center at (40..49, 40..49).
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			c := colorspace.Green
			if dx == 0 && dy == 0 {
				c = colorspace.Black
			}
			paint(img, 40+dx*10, 40+dy*10, 10, c)
		}
	}
	votes := RingVotes(img, classifier(), geometry.Point{X: 44.5, Y: 44.5}, 10, 10)
	if votes[colorspace.Green] != 8 {
		t.Fatalf("green votes = %d, want 8 (%v)", votes[colorspace.Green], votes)
	}
}

func TestRingVotesOffImage(t *testing.T) {
	img := raster.New(20, 20)
	votes := RingVotes(img, classifier(), geometry.Point{X: 0, Y: 0}, 30, 30)
	total := 0
	for _, n := range votes {
		total += n
	}
	if total > 3 {
		t.Fatalf("%d in-bounds ring samples at the corner, want <= 3", total)
	}
}
