// Package vision provides the small computer-vision primitives shared by
// the RainBar and COBRA decoders: connected-component labeling of black
// blocks on a classified map, the K-means-style location-correction
// iteration of §III-E, black-extent probing, and ring-color voting around
// a candidate corner-tracker center. Pure Go; these stand in for the
// OpenCV primitives a smartphone implementation would use.
package vision

import (
	"rainbar/internal/colorspace"
	"rainbar/internal/geometry"
	"rainbar/internal/raster"
)

// Blob is a connected component of black cells on a classified,
// downsampled map. In both barcode layouts black cells are never adjacent
// (locators and corner-tracker centers are isolated by colored blocks), so
// each in-frame blob is a single block — which makes blobs both anchor
// candidates and block-size estimates. The dark screen surround forms one
// giant blob that size filters reject.
type Blob struct {
	// Size is the number of map cells in the component.
	Size int
	// MinX..MaxY is the bounding box in map coordinates.
	MinX, MinY, MaxX, MaxY int
	sumX, sumY             int
}

// Width returns the bounding-box width in map cells.
func (b *Blob) Width() int { return b.MaxX - b.MinX + 1 }

// Height returns the bounding-box height in map cells.
func (b *Blob) Height() int { return b.MaxY - b.MinY + 1 }

// Centroid returns the component centroid in map coordinates.
func (b *Blob) Centroid() (float64, float64) {
	return float64(b.sumX) / float64(b.Size), float64(b.sumY) / float64(b.Size)
}

// BlackBlobs labels 8-connected components of black cells on a classified
// map of mw x mh cells. Components smaller than 2 cells are dropped as
// noise.
func BlackBlobs(classMap []colorspace.Color, mw, mh int) []Blob {
	var s BlobScratch
	return s.BlackBlobs(classMap, mw, mh)
}

// BlobScratch holds the reusable working state of BlackBlobs, so a decoder
// that labels one map per capture does not reallocate the visited plane,
// the flood-fill stack and the blob list every time. The zero value is
// ready to use; a BlobScratch is not safe for concurrent use.
type BlobScratch struct {
	// visited marks cells by epoch: a cell is visited in the current call
	// iff visited[i] == epoch. Bumping the epoch resets the plane in O(1);
	// the plane is only cleared for real on the (rare) epoch wraparound.
	visited []uint32
	epoch   uint32
	stack   []int
	blobs   []Blob
}

// BlackBlobs is the scratch-backed labeling; results are identical to the
// package-level BlackBlobs. The returned slice is owned by the scratch and
// valid until the next call.
func (s *BlobScratch) BlackBlobs(classMap []colorspace.Color, mw, mh int) []Blob {
	if cap(s.visited) >= mw*mh {
		s.visited = s.visited[:mw*mh]
	} else {
		s.visited = make([]uint32, mw*mh)
	}
	s.epoch++
	if s.epoch == 0 {
		clear(s.visited)
		s.epoch = 1
	}
	epoch := s.epoch
	visited := s.visited
	out := s.blobs[:0]
	stack := s.stack
	for start := range classMap {
		if classMap[start] != colorspace.Black || visited[start] == epoch {
			continue
		}
		blob := Blob{MinX: mw, MinY: mh}
		stack = stack[:0]
		stack = append(stack, start)
		visited[start] = epoch
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := i%mw, i/mw
			blob.Size++
			blob.sumX += x
			blob.sumY += y
			blob.MinX = min(blob.MinX, x)
			blob.MaxX = max(blob.MaxX, x)
			blob.MinY = min(blob.MinY, y)
			blob.MaxY = max(blob.MaxY, y)
			for _, d := range [8][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= mw || ny < 0 || ny >= mh {
					continue
				}
				j := ny*mw + nx
				if visited[j] != epoch && classMap[j] == colorspace.Black {
					visited[j] = epoch
					stack = append(stack, j)
				}
			}
		}
		if blob.Size >= 2 {
			out = append(out, blob)
		}
	}
	s.stack, s.blobs = stack, out
	return out
}

// ClassifyMap builds a downsampled classification map of the image with
// the given stride.
func ClassifyMap(img *raster.Image, cl colorspace.Classifier, stride int) (classMap []colorspace.Color, mw, mh int) {
	return ClassifyMapInto(nil, img, cl, stride)
}

// ClassifyMapInto is ClassifyMap writing into dst when its capacity
// suffices (allocating otherwise), so a per-capture decoder can reuse one
// map. The inner loop walks each source row as a slice, skipping the
// per-pixel bounds check of Image.At — every sampled coordinate is in
// bounds by construction of mw, mh.
func ClassifyMapInto(dst []colorspace.Color, img *raster.Image, cl colorspace.Classifier, stride int) (classMap []colorspace.Color, mw, mh int) {
	mw, mh = img.W/stride, img.H/stride
	if cap(dst) >= mw*mh {
		classMap = dst[:mw*mh]
	} else {
		classMap = make([]colorspace.Color, mw*mh)
	}
	for y := 0; y < mh; y++ {
		src := img.Pix[y*stride*img.W:]
		out := classMap[y*mw : (y+1)*mw]
		for x := 0; x < mw; x++ {
			out[x] = cl.ClassifyRGB(src[x*stride])
		}
	}
	return classMap, mw, mh
}

// KMeansCorrect is the paper's location-correction algorithm (§III-E):
// iterate "centroid of the black pixels within an edge-length window"
// until the location converges. The boolean reports whether any black
// pixels were found; when false, the input point is returned unchanged.
func KMeansCorrect(img *raster.Image, cl colorspace.Classifier, p geometry.Point, edge float64) (geometry.Point, bool) {
	if edge < 2 {
		edge = 2
	}
	half := int(edge/2 + 0.5)
	cur := p
	for iter := 0; iter < 12; iter++ {
		var sumX, sumY float64
		var n int
		cx, cy := int(cur.X+0.5), int(cur.Y+0.5)
		for dy := -half; dy <= half; dy++ {
			for dx := -half; dx <= half; dx++ {
				x, y := cx+dx, cy+dy
				if !img.In(x, y) {
					continue
				}
				if cl.ClassifyRGB(img.At(x, y)) == colorspace.Black {
					sumX += float64(x)
					sumY += float64(y)
					n++
				}
			}
		}
		if n == 0 {
			return p, false
		}
		next := geometry.Point{X: sumX / float64(n), Y: sumY / float64(n)}
		if next.Dist(cur) < 0.05 {
			return next, true
		}
		cur = next
	}
	return cur, true
}

// BlackExtent measures how far black pixels extend from p in the four
// axis directions, up to maxSteps each.
func BlackExtent(img *raster.Image, cl colorspace.Classifier, p geometry.Point, maxSteps int) (up, down, left, right int) {
	x0, y0 := int(p.X+0.5), int(p.Y+0.5)
	step := func(dx, dy int) int {
		n := 0
		for i := 1; i <= maxSteps; i++ {
			x, y := x0+i*dx, y0+i*dy
			if !img.In(x, y) || cl.ClassifyRGB(img.At(x, y)) != colorspace.Black {
				break
			}
			n++
		}
		return n
	}
	return step(0, -1), step(0, 1), step(-1, 0), step(1, 0)
}

// RingVotes samples the eight block-neighbor positions around a black
// block center (offsets dx, dy per axis, mean-filtered) and counts the
// classification of each — used to verify corner-tracker ring colors.
func RingVotes(img *raster.Image, cl colorspace.Classifier, p geometry.Point, dx, dy float64) map[colorspace.Color]int {
	votes := RingVoteCounts(img, cl, p, dx, dy)
	counts := make(map[colorspace.Color]int, 5)
	for c, n := range votes {
		if n > 0 {
			counts[colorspace.Color(c)] = n
		}
	}
	return counts
}

// RingVoteCounts is RingVotes returning a fixed-size tally indexed by
// color instead of a freshly allocated map — the allocation-free form the
// per-capture tracker search uses.
func RingVoteCounts(img *raster.Image, cl colorspace.Classifier, p geometry.Point, dx, dy float64) (counts [colorspace.Black + 1]int) {
	for _, off := range [8][2]float64{
		{-1, -1}, {0, -1}, {1, -1},
		{-1, 0}, {1, 0},
		{-1, 1}, {0, 1}, {1, 1},
	} {
		x := int(p.X + off[0]*dx + 0.5)
		y := int(p.Y + off[1]*dy + 0.5)
		if !img.In(x, y) {
			continue
		}
		counts[cl.ClassifyRGB(img.MeanFilterAt(x, y))]++
	}
	return counts
}
