package lightsync

import (
	"fmt"
	"sort"

	"rainbar/internal/colorspace"
	"rainbar/internal/crc"
	"rainbar/internal/raster"
)

// GridDecode is the geometry-level decode of one capture: every data bit,
// plus the per-row line counters that drive synchronization.
type GridDecode struct {
	// Bits holds one decoded bit per data cell, in dataCells order.
	Bits []byte
	// LineSeq holds each data row's decoded 3-bit counter, or -1 when the
	// parity check failed (row unattributable).
	LineSeq map[int]int
	// Sharpness is the capture's focus metric.
	Sharpness float64
}

// DecodeGrid locates the frame (shared RainBar fix) and classifies every
// line header and data cell as black or white.
func (c *Codec) DecodeGrid(img *raster.Image) (*GridDecode, error) {
	fix, err := c.fixer.FixImage(img)
	if err != nil {
		return nil, fmt.Errorf("lightsync: %w", err)
	}
	cl := colorspace.NewClassifier(fix.TV())
	bitAt := func(cell cellRC) byte {
		p := fix.CellCenter(cell.Row, cell.Col)
		if cl.ClassifyRGB(img.MeanFilterAt(int(p.X+0.5), int(p.Y+0.5))) == colorspace.Black {
			return 1
		}
		return 0
	}

	gd := &GridDecode{
		Bits:      make([]byte, len(c.dataCells)),
		LineSeq:   make(map[int]int, len(c.lineCells)),
		Sharpness: img.Sharpness(),
	}
	for i, cell := range c.dataCells {
		gd.Bits[i] = bitAt(cell)
	}
	for row, cells := range c.lineCells {
		var bits [lineHeaderBits]byte
		for i, cell := range cells {
			bits[i] = bitAt(cell)
		}
		ctr := bits[0]<<2 | bits[1]<<1 | bits[2]
		parity := (ctr>>2 ^ ctr>>1 ^ ctr) & 1
		if parity != bits[3] {
			gd.LineSeq[row] = -1
			continue
		}
		gd.LineSeq[row] = int(ctr)
	}
	return gd, nil
}

type cellRC = struct{ Row, Col int }

// AssemblePayload packs bits, RS-decodes, and verifies the in-payload
// checksum; returns the sequence number and payload.
func (c *Codec) AssemblePayload(bits []byte) (uint16, []byte, error) {
	if len(bits) != len(c.dataCells) {
		return 0, nil, fmt.Errorf("lightsync: %d bits, want %d", len(bits), len(c.dataCells))
	}
	stream := make([]byte, len(bits)/8+1)
	for i, b := range bits {
		if b == 1 {
			stream[i/8] |= 1 << uint(7-i%8)
		}
	}
	blob := make([]byte, 0, c.capacity+metaLen)
	off := 0
	for _, k := range c.msgSizes {
		n := k + c.cfg.RSParity
		data, err := c.rsc.Decode(stream[off:off+n], nil)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		blob = append(blob, data...)
		off += n
	}
	if len(blob) < metaLen {
		return 0, nil, fmt.Errorf("%w: truncated", ErrBadFrame)
	}
	seq := uint16(blob[0])<<8 | uint16(blob[1])
	sum := uint16(blob[2])<<8 | uint16(blob[3])
	if crc.Sum16(blob[metaLen:]) != sum {
		return 0, nil, fmt.Errorf("%w: payload checksum mismatch", ErrBadFrame)
	}
	return seq, blob[metaLen:], nil
}

// DecodeFrame decodes a single clean capture end to end.
func (c *Codec) DecodeFrame(img *raster.Image) (uint16, []byte, error) {
	gd, err := c.DecodeGrid(img)
	if err != nil {
		return 0, nil, err
	}
	return c.AssemblePayload(gd.Bits)
}

// Receiver reassembles frames from captures using LightSync's per-line
// counters: every captured row carries its own 3-bit frame counter, so a
// mixed capture contributes each row to the right frame without tracking
// bars or a header row. The absolute sequence is maintained by counter
// continuity from the last completed frame.
type Receiver struct {
	codec   *Codec
	base    uint16 // absolute seq whose counter == base % seqMod
	baseSet bool
	partial map[uint16]*partialFrame
	done    map[uint16]*DecodedFrame
}

type partialFrame struct {
	bitVotes  [][2]float64 // per data cell: weight for 0 and 1
	rowFilled map[int]bool
}

// DecodedFrame is one reassembled LightSync frame.
type DecodedFrame struct {
	Seq     uint16
	Payload []byte
	Err     error
}

// NewReceiver creates a receiver.
func NewReceiver(c *Codec) *Receiver {
	return &Receiver{
		codec:   c,
		partial: make(map[uint16]*partialFrame),
		done:    make(map[uint16]*DecodedFrame),
	}
}

// Ingest processes one capture, distributing rows by line counter.
func (rx *Receiver) Ingest(img *raster.Image) error {
	gd, err := rx.codec.DecodeGrid(img)
	if err != nil {
		return err
	}
	// Resolve each row's 3-bit counter to an absolute sequence: the
	// candidate within [base, base+seqMod) whose counter matches. Before
	// any anchor exists, counters are taken at face value (first frames
	// of a stream).
	resolve := func(ctr int) uint16 {
		if !rx.baseSet {
			return uint16(ctr)
		}
		for off := uint16(0); off < seqMod; off++ {
			cand := rx.base + off
			if int(cand%seqMod) == ctr {
				return cand
			}
		}
		return rx.base // unreachable: all residues covered
	}

	for i, cell := range rx.codec.dataCells {
		ctr, ok := gd.LineSeq[cell.Row]
		if !ok || ctr < 0 {
			continue
		}
		seq := resolve(ctr)
		pf := rx.getPartial(seq)
		pf.bitVotes[i][gd.Bits[i]] += gd.Sharpness
		pf.rowFilled[cell.Row] = true
	}
	// Completion check for any partial with all rows seen.
	for seq := range rx.partial {
		rx.tryComplete(seq)
	}
	return nil
}

func (rx *Receiver) getPartial(seq uint16) *partialFrame {
	if pf, ok := rx.partial[seq]; ok {
		return pf
	}
	pf := &partialFrame{
		bitVotes:  make([][2]float64, len(rx.codec.dataCells)),
		rowFilled: make(map[int]bool),
	}
	rx.partial[seq] = pf
	return pf
}

func (pf *partialFrame) bits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		if pf.bitVotes[i][1] > pf.bitVotes[i][0] {
			out[i] = 1
		}
	}
	return out
}

func (rx *Receiver) tryComplete(seq uint16) {
	pf, ok := rx.partial[seq]
	if !ok {
		return
	}
	if _, ok := rx.done[seq]; ok {
		return
	}
	if len(pf.rowFilled) < len(rx.codec.lineCells) {
		return
	}
	gotSeq, payload, err := rx.codec.AssemblePayload(pf.bits(len(rx.codec.dataCells)))
	if err != nil {
		return // keep voting
	}
	if gotSeq != seq && rx.baseSet {
		// Counter aliasing resolved wrong; re-key by the authoritative
		// in-payload sequence.
		seq = gotSeq
	}
	rx.done[seq] = &DecodedFrame{Seq: gotSeq, Payload: payload}
	delete(rx.partial, seq)
	if !rx.baseSet || gotSeq+1 > rx.base {
		rx.base = gotSeq + 1
		rx.baseSet = true
	}
}

// Flush force-decodes the remaining partials, recording failures.
func (rx *Receiver) Flush() {
	for seq, pf := range rx.partial {
		if _, ok := rx.done[seq]; ok {
			continue
		}
		gotSeq, payload, err := rx.codec.AssemblePayload(pf.bits(len(rx.codec.dataCells)))
		if err != nil {
			rx.done[seq] = &DecodedFrame{Seq: seq, Err: err}
		} else {
			rx.done[gotSeq] = &DecodedFrame{Seq: gotSeq, Payload: payload}
		}
		delete(rx.partial, seq)
	}
}

// Frames returns completed frames in sequence order.
func (rx *Receiver) Frames() []*DecodedFrame {
	seqs := make([]int, 0, len(rx.done))
	for s := range rx.done {
		seqs = append(seqs, int(s))
	}
	sort.Ints(seqs)
	out := make([]*DecodedFrame, 0, len(seqs))
	for _, s := range seqs {
		out = append(out, rx.done[uint16(s)])
	}
	return out
}

// Frame returns the completed frame for seq, if any.
func (rx *Receiver) Frame(seq uint16) (*DecodedFrame, bool) {
	f, ok := rx.done[seq]
	return f, ok
}
