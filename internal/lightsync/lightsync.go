// Package lightsync implements a LightSync-style black-and-white barcode
// link, the third system the RainBar paper positions itself against
// (§I/§II): LightSync raised throughput by raising the display rate and
// solved rolling-shutter mixing with *per-line* synchronization metadata,
// but "has only been shown to work efficiently for black and white
// barcodes" — one bit per block instead of RainBar's two.
//
// This implementation keeps LightSync's essential trade-offs measurable
// against RainBar on identical captures:
//
//   - data blocks are black/white (1 bit), halving per-frame capacity;
//   - every block row starts with a line header (3-bit frame counter plus
//     even parity, Manchester-style robustness via B/W), so each captured
//     row is attributed to its display frame independently — no tracking
//     bars and no frame header row needed;
//   - detection reuses the same corner-tracker/locator machinery as
//     RainBar (green/red rings; the only colored structure), so the
//     comparison isolates the data-alphabet and synchronization design.
package lightsync

import (
	"errors"
	"fmt"

	"rainbar/internal/colorspace"
	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/crc"
	"rainbar/internal/raster"
	"rainbar/internal/rs"
)

// lineHeaderBits is the per-row metadata: a 3-bit frame counter and one
// even-parity bit, each bit one block.
const lineHeaderBits = 4

// seqMod is the line counter modulus (3 bits).
const seqMod = 8

// rsMessageLen matches the other codecs.
const rsMessageLen = 255

// DefaultRSParity matches RainBar for a fair capacity comparison.
const DefaultRSParity = 16

// Errors reported by the codec.
var (
	// ErrBadFrame means error correction or the checksum failed.
	ErrBadFrame = errors.New("lightsync: frame failed error correction")
	// ErrPayloadTooLarge means the payload exceeds frame capacity.
	ErrPayloadTooLarge = errors.New("lightsync: payload exceeds frame capacity")
)

// Config describes a LightSync codec.
type Config struct {
	// ScreenW, ScreenH, BlockSize define the grid as in the other codecs.
	ScreenW, ScreenH, BlockSize int
	// RSParity is the parity bytes per RS message.
	RSParity int
}

// Codec encodes and decodes LightSync frames. Immutable and safe for
// concurrent use.
type Codec struct {
	cfg      Config
	geo      *layout.Geometry // reused for structure: CTs, locators
	fixer    *core.Codec      // geometric front-end shared with RainBar
	rsc      *rs.Codec
	msgSizes []int
	capacity int
	// dataCells excludes the per-row line-header cells and the guard
	// columns around the locator columns.
	dataCells []layout.Cell
	// lineCells[row] lists the 4 line-header cells of each data row.
	lineCells map[int][]layout.Cell
}

// NewCodec validates and precomputes the layout. The underlying grid is
// RainBar's (corner trackers and locator columns are identical); RainBar's
// header row and tracking bars become white filler here, the first
// lineHeaderBits data cells of every row carry the line header, and —
// because half the B/W data blocks are black — the cells in and adjacent
// to the locator columns are forced white so the progressive locator walk
// still finds isolated black blocks.
func NewCodec(cfg Config) (*Codec, error) {
	if cfg.RSParity == 0 {
		cfg.RSParity = DefaultRSParity
	}
	geo, err := layout.NewGeometry(cfg.ScreenW, cfg.ScreenH, cfg.BlockSize)
	if err != nil {
		return nil, fmt.Errorf("lightsync: %w", err)
	}
	fixer, err := core.NewCodec(core.Config{Geometry: geo, RSParity: cfg.RSParity})
	if err != nil {
		return nil, fmt.Errorf("lightsync: %w", err)
	}
	rsc, err := rs.New(cfg.RSParity)
	if err != nil {
		return nil, fmt.Errorf("lightsync: %w", err)
	}
	c := &Codec{cfg: cfg, geo: geo, fixer: fixer, rsc: rsc, lineCells: make(map[int][]layout.Cell)}

	colL, colM, colR := geo.LocatorCols()
	guarded := map[int]bool{
		colL: true, colL - 1: true, colL + 1: true,
		colM: true, colM - 1: true, colM + 1: true,
		colR: true, colR - 1: true, colR + 1: true,
	}

	// Walk RainBar's data cells row by row; the first four unguarded
	// cells of each row become the line header.
	perRow := make(map[int][]layout.Cell)
	for _, cell := range geo.DataCells() {
		if guarded[cell.Col] {
			continue
		}
		perRow[cell.Row] = append(perRow[cell.Row], cell)
	}
	//lint:ordered dataCells is canonicalized by sortCells below; lineCells is keyed per row, so iteration order never reaches output
	for row, cells := range perRow {
		if len(cells) <= lineHeaderBits {
			continue // row too short to carry data; unused
		}
		c.lineCells[row] = cells[:lineHeaderBits]
		c.dataCells = append(c.dataCells, cells[lineHeaderBits:]...)
	}
	sortCells(c.dataCells)

	bits := len(c.dataCells) // 1 bit per block
	area := bits / 8
	remaining := area
	for remaining >= rsMessageLen {
		c.msgSizes = append(c.msgSizes, rsMessageLen-cfg.RSParity)
		remaining -= rsMessageLen
	}
	if remaining > cfg.RSParity {
		c.msgSizes = append(c.msgSizes, remaining-cfg.RSParity)
	}
	for _, k := range c.msgSizes {
		c.capacity += k
	}
	// Two bytes of every frame carry the sequence number and two more the
	// payload checksum (LightSync has no header row; metadata rides in
	// the payload prefix).
	c.capacity -= metaLen
	if c.capacity <= 0 {
		return nil, fmt.Errorf("lightsync: geometry too small for any payload")
	}
	return c, nil
}

func sortCells(cells []layout.Cell) {
	// Insertion sort by (row, col); cell counts are tiny relative to the
	// cost of rendering, and the input is nearly sorted already.
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0; j-- {
			a, b := cells[j-1], cells[j]
			if a.Row < b.Row || (a.Row == b.Row && a.Col < b.Col) {
				break
			}
			cells[j-1], cells[j] = b, a
		}
	}
}

// metaLen is the in-payload metadata: seq(2) + CRC-16 of the payload (2).
const metaLen = 4

// MustCodec is NewCodec but panics on error.
func MustCodec(cfg Config) *Codec {
	c, err := NewCodec(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// FrameCapacity returns the payload bytes per frame.
func (c *Codec) FrameCapacity() int { return c.capacity }

// Frame is one encoded LightSync barcode.
type Frame struct {
	codec  *Codec
	seq    uint16
	colors []colorspace.Color
}

// Seq returns the frame sequence number.
func (f *Frame) Seq() uint16 { return f.seq }

// Render paints the frame.
func (f *Frame) Render() *raster.Image {
	g := f.codec.geo
	bs := g.BlockSize()
	img := raster.New(g.Cols()*bs, g.Rows()*bs)
	for r := 0; r < g.Rows(); r++ {
		for co := 0; co < g.Cols(); co++ {
			img.FillRect(co*bs, r*bs, bs, bs, colorspace.Paint(f.colors[r*g.Cols()+co]))
		}
	}
	return img
}

// EncodeFrame builds one frame (payload zero-padded to capacity).
func (c *Codec) EncodeFrame(payload []byte, seq uint16) (*Frame, error) {
	if len(payload) > c.capacity {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(payload), c.capacity)
	}
	blob := make([]byte, c.capacity+metaLen)
	blob[0] = byte(seq >> 8)
	blob[1] = byte(seq)
	copy(blob[metaLen:], payload)
	sum := crc.Sum16(blob[metaLen:])
	blob[2] = byte(sum >> 8)
	blob[3] = byte(sum)

	stream := make([]byte, 0, len(c.dataCells)/8+1)
	off := 0
	for _, k := range c.msgSizes {
		msg, err := c.rsc.Encode(blob[off : off+k])
		if err != nil {
			return nil, fmt.Errorf("lightsync encode: %w", err)
		}
		stream = append(stream, msg...)
		off += k
	}

	g := c.geo
	f := &Frame{codec: c, seq: seq, colors: make([]colorspace.Color, g.Rows()*g.Cols())}
	// Structure: reuse RainBar's structural cells; everything RainBar
	// calls header/tracking-bar becomes white filler here (the line
	// headers make them unnecessary).
	for r := 0; r < g.Rows(); r++ {
		for co := 0; co < g.Cols(); co++ {
			var col colorspace.Color
			switch g.KindAt(r, co) {
			case layout.KindCTCenter, layout.KindLocator:
				col = colorspace.Black
			case layout.KindCTRing:
				if co < g.Cols()/2 {
					col = layout.CTRingColorLeft
				} else {
					col = layout.CTRingColorRight
				}
			default:
				col = colorspace.White
			}
			f.colors[r*g.Cols()+co] = col
		}
	}
	// Line headers: 3-bit counter + even parity, black = 1.
	for row, cells := range c.lineCells {
		ctr := byte(seq % seqMod)
		parity := (ctr>>2 ^ ctr>>1 ^ ctr) & 1
		bits := [lineHeaderBits]byte{ctr >> 2 & 1, ctr >> 1 & 1, ctr & 1, parity}
		for i, cell := range cells {
			if bits[i] == 1 {
				f.colors[cell.Row*g.Cols()+cell.Col] = colorspace.Black
			} else {
				f.colors[cell.Row*g.Cols()+cell.Col] = colorspace.White
			}
		}
		_ = row
	}
	// Data: 1 bit per block, black = 1.
	for i, cell := range c.dataCells {
		byteIdx := i / 8
		var bit byte
		if byteIdx < len(stream) {
			bit = stream[byteIdx] >> uint(7-i%8) & 1
		}
		if bit == 1 {
			f.colors[cell.Row*g.Cols()+cell.Col] = colorspace.Black
		} else {
			f.colors[cell.Row*g.Cols()+cell.Col] = colorspace.White
		}
	}
	return f, nil
}
