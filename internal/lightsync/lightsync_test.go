package lightsync

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"rainbar/internal/camera"
	"rainbar/internal/channel"
	"rainbar/internal/core"
	"rainbar/internal/core/layout"
	"rainbar/internal/raster"
	"rainbar/internal/screen"
)

func testCodec(t testing.TB) *Codec {
	t.Helper()
	c, err := NewCodec(Config{ScreenW: 640, ScreenH: 360, BlockSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(Config{ScreenW: 50, ScreenH: 50, BlockSize: 10}); err == nil {
		t.Error("tiny screen accepted")
	}
}

func TestCapacityBelowRainBar(t *testing.T) {
	// One bit per block instead of two, plus line headers and guard
	// columns: LightSync must carry well under half of RainBar's payload
	// on the same screen.
	ls := testCodec(t)
	geo, err := layout.NewGeometry(640, 360, 12)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := core.NewCodec(core.Config{Geometry: geo})
	if err != nil {
		t.Fatal(err)
	}
	if ls.FrameCapacity() >= rb.FrameCapacity()/2 {
		t.Fatalf("LightSync capacity %d not well below half of RainBar's %d",
			ls.FrameCapacity(), rb.FrameCapacity())
	}
	if ls.FrameCapacity() <= 0 {
		t.Fatal("no capacity")
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	c := testCodec(t)
	if _, err := c.EncodeFrame(make([]byte, c.FrameCapacity()+1), 0); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestCleanRoundTrip(t *testing.T) {
	c := testCodec(t)
	want := make([]byte, c.FrameCapacity())
	rand.New(rand.NewSource(1)).Read(want)
	f, err := c.EncodeFrame(want, 42)
	if err != nil {
		t.Fatal(err)
	}
	seq, got, err := c.DecodeFrame(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Errorf("seq = %d", seq)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("clean round trip failed")
	}
}

func TestRoundTripThroughChannel(t *testing.T) {
	c := testCodec(t)
	want := make([]byte, c.FrameCapacity())
	rand.New(rand.NewSource(2)).Read(want)
	f, err := c.EncodeFrame(want, 7)
	if err != nil {
		t.Fatal(err)
	}
	capt, err := channel.MustNew(channel.DefaultConfig()).Capture(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := c.DecodeFrame(capt)
	if err != nil {
		t.Fatalf("decode through channel: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted through channel")
	}
}

func TestBWRobustToChromaNoise(t *testing.T) {
	// The B/W alphabet's selling point: chroma noise that flips RainBar's
	// colors barely touches a black/white decision.
	c := testCodec(t)
	want := make([]byte, c.FrameCapacity())
	rand.New(rand.NewSource(3)).Read(want)
	f, err := c.EncodeFrame(want, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := channel.DefaultConfig()
	cfg.ChromaNoiseStdDev = 60
	cfg.ChromaNoiseScalePx = 8
	capt, err := channel.MustNew(cfg).Capture(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := c.DecodeFrame(capt)
	if err != nil {
		t.Fatalf("decode under heavy chroma noise: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted under chroma noise")
	}
}

func TestLineHeadersParity(t *testing.T) {
	c := testCodec(t)
	f, err := c.EncodeFrame([]byte("x"), 5)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := c.DecodeGrid(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	for row, ctr := range gd.LineSeq {
		if ctr != 5%seqMod {
			t.Fatalf("row %d counter = %d, want %d", row, ctr, 5%seqMod)
		}
	}
}

func TestReceiverMixedCapturesAtHighRate(t *testing.T) {
	// f_d = 25 on f_c = 30: captures are mostly mixed; line counters must
	// reassemble the frames.
	c := testCodec(t)
	rng := rand.New(rand.NewSource(4))
	n := 6
	payloads := make([][]byte, n)
	frames := make([]*raster.Image, n)
	for i := 0; i < n; i++ {
		payloads[i] = make([]byte, c.FrameCapacity())
		rng.Read(payloads[i])
		f, err := c.EncodeFrame(payloads[i], uint16(i))
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f.Render()
	}
	disp, err := screen.NewDisplay(frames, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	cam := camera.Default()
	cam.Phase = 4 * time.Millisecond
	caps, err := cam.Film(disp, channel.MustNew(channel.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	rx := NewReceiver(c)
	for i := range caps {
		_ = rx.Ingest(caps[i].Image)
	}
	rx.Flush()
	recovered := 0
	for i := 0; i < n; i++ {
		f, ok := rx.Frame(uint16(i))
		if ok && f.Err == nil && bytes.Equal(f.Payload, payloads[i]) {
			recovered++
		}
	}
	if recovered < n-2 {
		t.Fatalf("recovered %d/%d frames at f_d=25", recovered, n)
	}
}

func TestAssemblePayloadWrongLength(t *testing.T) {
	c := testCodec(t)
	if _, _, err := c.AssemblePayload(nil); err == nil {
		t.Fatal("wrong bit count accepted")
	}
}

func TestGuardColumnsStayWhite(t *testing.T) {
	c := testCodec(t)
	f, err := c.EncodeFrame(bytes.Repeat([]byte{0xFF}, c.FrameCapacity()), 0)
	if err != nil {
		t.Fatal(err)
	}
	g := c.geo
	colL, colM, colR := g.LocatorCols()
	for r := 0; r < g.Rows(); r++ {
		for _, co := range []int{colL - 1, colL + 1, colM - 1, colM + 1, colR - 1, colR + 1} {
			if g.KindAt(r, co) != layout.KindData {
				continue
			}
			if got := f.colors[r*g.Cols()+co]; got != 0 { // colorspace.White
				t.Fatalf("guard cell (%d,%d) painted %v", r, co, got)
			}
		}
	}
}
