// Package sensor provides the accelerometer-driven adaptive configuration
// RainBar adopts from COBRA (paper §III-A): the sender estimates its level
// of mobility from accelerometer variance and adapts the block size before
// data mapping — crucially *before*, the paper notes, so the per-frame
// capacity is known when data is chunked.
//
// Physical accelerometers are replaced by synthetic trace generators for
// the three regimes the evaluation exercises: phones on a table, in
// steady hands, and while walking.
package sensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one 3-axis accelerometer reading in m/s².
type Sample struct {
	X, Y, Z float64
}

// Magnitude returns the deviation of the sample from rest (|a| - g).
func (s Sample) Magnitude() float64 {
	return math.Abs(math.Sqrt(s.X*s.X+s.Y*s.Y+s.Z*s.Z) - gravity)
}

const gravity = 9.81

// Mobility classifies the sender's movement regime.
type Mobility int

// Mobility levels.
const (
	MobilityStill Mobility = iota + 1
	MobilityHandheld
	MobilityWalking
)

// String returns the regime name.
func (m Mobility) String() string {
	switch m {
	case MobilityStill:
		return "still"
	case MobilityHandheld:
		return "handheld"
	case MobilityWalking:
		return "walking"
	default:
		return "unknown"
	}
}

// Thresholds on the windowed standard deviation of Magnitude (m/s²)
// separating the regimes; calibrated on the synthetic traces below but of
// the same order as smartphone literature values.
const (
	stillStdDev = 0.08
	handStdDev  = 0.8
)

// ClassifyWindow estimates the mobility regime from a window of samples.
func ClassifyWindow(window []Sample) Mobility {
	if len(window) == 0 {
		return MobilityStill
	}
	var sum, sum2 float64
	for _, s := range window {
		m := s.Magnitude()
		sum += m
		sum2 += m * m
	}
	n := float64(len(window))
	mean := sum / n
	variance := sum2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	sd := math.Sqrt(variance)
	switch {
	case sd < stillStdDev:
		return MobilityStill
	case sd < handStdDev:
		return MobilityHandheld
	default:
		return MobilityWalking
	}
}

// BlockSizePolicy maps a mobility regime to a block size in pixels: more
// movement means more motion blur, so bigger blocks (§III-A's adaptive
// configuration). Bounds B_min and B_max also gate the decoder's
// first-middle-locator search (§III-E).
type BlockSizePolicy struct {
	// Min and Max bound the block size in pixels.
	Min, Max int
}

// DefaultPolicy covers the paper's evaluated block sizes (8..14 px).
func DefaultPolicy() BlockSizePolicy { return BlockSizePolicy{Min: 8, Max: 14} }

// Validate reports configuration errors.
func (p BlockSizePolicy) Validate() error {
	if p.Min < 2 || p.Max < p.Min {
		return fmt.Errorf("sensor: invalid block size bounds [%d, %d]", p.Min, p.Max)
	}
	return nil
}

// BlockSize picks the block size for a mobility regime: Min when still,
// Max when walking, the midpoint in between.
func (p BlockSizePolicy) BlockSize(m Mobility) int {
	switch m {
	case MobilityStill:
		return p.Min
	case MobilityWalking:
		return p.Max
	default:
		return (p.Min + p.Max) / 2
	}
}

// Trace generates synthetic accelerometer streams. Create with NewTrace.
type Trace struct {
	mobility Mobility
	rng      *rand.Rand
	t        float64
}

// NewTrace creates a generator for the given regime and seed.
func NewTrace(m Mobility, seed int64) *Trace {
	// Determinism contract (RB-D2): locally seeded *rand.Rand — every
	// sample is a pure function of (seed, draw index), never of global or
	// time-seeded state.
	return &Trace{mobility: m, rng: rand.New(rand.NewSource(seed))}
}

// Next produces the next sample at the given sampling interval in seconds.
// The models: rest is gravity plus sensor noise; handheld adds a ~2 Hz
// physiological tremor; walking adds a strong ~1.8 Hz gait oscillation
// with harmonics.
func (tr *Trace) Next(dt float64) Sample {
	tr.t += dt
	noise := func(sd float64) float64 { return tr.rng.NormFloat64() * sd }
	switch tr.mobility {
	case MobilityHandheld:
		// The tremor must show up along gravity: magnitude deviation is
		// first-order in Z and only second-order in X/Y.
		tremor := 0.5 * math.Sin(2*math.Pi*2.1*tr.t)
		return Sample{
			X: noise(0.15) + 0.3*math.Sin(2*math.Pi*1.7*tr.t+1),
			Y: noise(0.15),
			Z: gravity + noise(0.15) + tremor,
		}
	case MobilityWalking:
		gait := 1.8 * math.Sin(2*math.Pi*1.8*tr.t)
		bounce := 2.4*math.Sin(2*math.Pi*3.6*tr.t+0.5) + noise(0.6)
		return Sample{
			X: noise(0.5) + gait,
			Y: noise(0.5) + 0.8*math.Sin(2*math.Pi*1.8*tr.t+2),
			Z: gravity + bounce,
		}
	default:
		return Sample{X: noise(0.02), Y: noise(0.02), Z: gravity + noise(0.02)}
	}
}

// Window produces n consecutive samples at interval dt.
func (tr *Trace) Window(n int, dt float64) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = tr.Next(dt)
	}
	return out
}

// AdaptiveConfigurator ties the pieces together: feed it accelerometer
// windows, read the block size to use for the next frame batch.
type AdaptiveConfigurator struct {
	policy BlockSizePolicy
	// Hysteresis: require this many consecutive windows agreeing before
	// switching regimes, so the block size does not flap mid-transfer.
	hysteresis int

	current   Mobility
	candidate Mobility
	votes     int
}

// NewAdaptiveConfigurator creates a configurator with the given policy and
// hysteresis window count (minimum 1).
func NewAdaptiveConfigurator(policy BlockSizePolicy, hysteresis int) (*AdaptiveConfigurator, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if hysteresis < 1 {
		hysteresis = 1
	}
	return &AdaptiveConfigurator{policy: policy, hysteresis: hysteresis, current: MobilityStill}, nil
}

// Observe processes one accelerometer window and returns the (possibly
// updated) mobility regime.
func (a *AdaptiveConfigurator) Observe(window []Sample) Mobility {
	m := ClassifyWindow(window)
	if m == a.current {
		a.candidate = m
		a.votes = 0
		return a.current
	}
	if m == a.candidate {
		a.votes++
	} else {
		a.candidate = m
		a.votes = 1
	}
	if a.votes >= a.hysteresis {
		a.current = m
		a.votes = 0
	}
	return a.current
}

// Mobility returns the current regime.
func (a *AdaptiveConfigurator) Mobility() Mobility { return a.current }

// BlockSize returns the block size for the current regime.
func (a *AdaptiveConfigurator) BlockSize() int { return a.policy.BlockSize(a.current) }
