package sensor

import (
	"math"
	"testing"
)

func TestMagnitudeAtRest(t *testing.T) {
	s := Sample{X: 0, Y: 0, Z: gravity}
	if got := s.Magnitude(); got != 0 {
		t.Errorf("rest magnitude = %v", got)
	}
}

func TestMobilityString(t *testing.T) {
	cases := map[Mobility]string{
		MobilityStill:    "still",
		MobilityHandheld: "handheld",
		MobilityWalking:  "walking",
		Mobility(0):      "unknown",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q", m, got)
		}
	}
}

func TestClassifyWindowEmpty(t *testing.T) {
	if got := ClassifyWindow(nil); got != MobilityStill {
		t.Errorf("empty window = %v", got)
	}
}

func TestTracesClassifyToTheirRegime(t *testing.T) {
	// Each synthetic trace must classify back to the regime it models —
	// across several seeds, since the classifier must not depend on one
	// lucky noise draw.
	for _, m := range []Mobility{MobilityStill, MobilityHandheld, MobilityWalking} {
		for seed := int64(1); seed <= 5; seed++ {
			tr := NewTrace(m, seed)
			window := tr.Window(100, 0.02) // 2 s at 50 Hz
			if got := ClassifyWindow(window); got != m {
				t.Errorf("seed %d: %v trace classified as %v", seed, m, got)
			}
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	a := NewTrace(MobilityWalking, 7).Window(10, 0.02)
	b := NewTrace(MobilityWalking, 7).Window(10, 0.02)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := (BlockSizePolicy{Min: 1, Max: 5}).Validate(); err == nil {
		t.Error("min 1 accepted")
	}
	if err := (BlockSizePolicy{Min: 10, Max: 8}).Validate(); err == nil {
		t.Error("max < min accepted")
	}
	if err := DefaultPolicy().Validate(); err != nil {
		t.Errorf("default policy invalid: %v", err)
	}
}

func TestPolicyBlockSizes(t *testing.T) {
	p := DefaultPolicy()
	if got := p.BlockSize(MobilityStill); got != p.Min {
		t.Errorf("still = %d, want %d", got, p.Min)
	}
	if got := p.BlockSize(MobilityWalking); got != p.Max {
		t.Errorf("walking = %d, want %d", got, p.Max)
	}
	mid := p.BlockSize(MobilityHandheld)
	if mid <= p.Min || mid >= p.Max {
		t.Errorf("handheld = %d, want strictly between %d and %d", mid, p.Min, p.Max)
	}
}

func TestConfiguratorHysteresis(t *testing.T) {
	cfg, err := NewAdaptiveConfigurator(DefaultPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	still := NewTrace(MobilityStill, 1)
	walking := NewTrace(MobilityWalking, 2)

	if got := cfg.Observe(still.Window(100, 0.02)); got != MobilityStill {
		t.Fatalf("initial regime = %v", got)
	}
	// One walking window must not flip the regime yet (hysteresis 2).
	if got := cfg.Observe(walking.Window(100, 0.02)); got != MobilityStill {
		t.Fatalf("regime flipped after one window: %v", got)
	}
	// A second consecutive walking window must flip it.
	if got := cfg.Observe(walking.Window(100, 0.02)); got != MobilityWalking {
		t.Fatalf("regime did not flip after two windows: %v", got)
	}
	if got := cfg.BlockSize(); got != DefaultPolicy().Max {
		t.Errorf("block size = %d after walking", got)
	}
}

func TestConfiguratorVoteReset(t *testing.T) {
	cfg, err := NewAdaptiveConfigurator(DefaultPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	still := NewTrace(MobilityStill, 3)
	hand := NewTrace(MobilityHandheld, 4)
	walking := NewTrace(MobilityWalking, 5)

	cfg.Observe(still.Window(100, 0.02))
	cfg.Observe(walking.Window(100, 0.02)) // vote 1 for walking
	cfg.Observe(hand.Window(100, 0.02))    // different candidate: reset
	if got := cfg.Mobility(); got != MobilityStill {
		t.Fatalf("regime = %v, want still (votes must reset)", got)
	}
}

func TestConfiguratorRejectsBadPolicy(t *testing.T) {
	if _, err := NewAdaptiveConfigurator(BlockSizePolicy{Min: 0, Max: 0}, 1); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestRegimeVarianceOrdering(t *testing.T) {
	// The variance of the magnitude must be strictly ordered across
	// regimes; this is the physical premise of the classifier.
	variance := func(m Mobility) float64 {
		window := NewTrace(m, 9).Window(200, 0.02)
		var sum, sum2 float64
		for _, s := range window {
			v := s.Magnitude()
			sum += v
			sum2 += v * v
		}
		n := float64(len(window))
		return sum2/n - math.Pow(sum/n, 2)
	}
	vs := variance(MobilityStill)
	vh := variance(MobilityHandheld)
	vw := variance(MobilityWalking)
	if !(vs < vh && vh < vw) {
		t.Fatalf("variance ordering violated: %v, %v, %v", vs, vh, vw)
	}
}
