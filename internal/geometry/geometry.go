// Package geometry implements the planar geometry used by the optical
// channel simulator and the decoders: 2-D points, 3x3 homographies
// (perspective transforms) with a 4-point DLT solver, and the Brown radial
// lens-distortion model. The paper's evaluation axes "view angle" and
// "distance" (§IV) are realized as homographies; "lens distortion" (§II) as
// the radial model.
package geometry

import (
	"errors"
	"fmt"
	"math"
)

// Point is a 2-D point in pixel coordinates.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Mid returns the midpoint of p and q.
func Mid(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Lerp returns p + t*(q-p): the point a fraction t of the way from p to q.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// LineIntersect returns the intersection of the infinite lines through
// (a1, a2) and (b1, b2). Parallel or degenerate lines return ok = false.
// COBRA-style decoders localize a block as the intersection of the line
// joining its left/right timing blocks with the line joining its
// top/bottom timing blocks.
func LineIntersect(a1, a2, b1, b2 Point) (Point, bool) {
	d1 := a2.Sub(a1)
	d2 := b2.Sub(b1)
	denom := d1.X*d2.Y - d1.Y*d2.X
	if math.Abs(denom) < 1e-12 {
		return Point{}, false
	}
	t := ((b1.X-a1.X)*d2.Y - (b1.Y-a1.Y)*d2.X) / denom
	return a1.Add(d1.Scale(t)), true
}

// Homography is a 3x3 projective transform in row-major order. Applying it
// to (x, y) computes (x', y', w') = H·(x, y, 1) and returns (x'/w', y'/w').
type Homography [9]float64

// Identity returns the identity homography.
func Identity() Homography {
	return Homography{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// Apply transforms p through h. Points mapping to the line at infinity
// (w' == 0) return a far-away sentinel rather than Inf to keep downstream
// pixel math finite.
func (h Homography) Apply(p Point) Point {
	x := h[0]*p.X + h[1]*p.Y + h[2]
	y := h[3]*p.X + h[4]*p.Y + h[5]
	w := h[6]*p.X + h[7]*p.Y + h[8]
	if math.Abs(w) < 1e-12 {
		return Point{X: 1e12, Y: 1e12}
	}
	return Point{X: x / w, Y: y / w}
}

// Mul returns the composition h∘g (apply g first, then h).
func (h Homography) Mul(g Homography) Homography {
	var out Homography
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			var sum float64
			for k := 0; k < 3; k++ {
				sum += h[r*3+k] * g[k*3+c]
			}
			out[r*3+c] = sum
		}
	}
	return out
}

// ErrSingular is returned when a homography cannot be inverted or solved,
// e.g. for degenerate (collinear) correspondence points.
var ErrSingular = errors.New("geometry: singular system")

// Inverse returns h^-1.
func (h Homography) Inverse() (Homography, error) {
	// Adjugate / determinant for a 3x3 matrix.
	a, b, c := h[0], h[1], h[2]
	d, e, f := h[3], h[4], h[5]
	g, hh, i := h[6], h[7], h[8]
	A := e*i - f*hh
	B := -(d*i - f*g)
	C := d*hh - e*g
	det := a*A + b*B + c*C
	if math.Abs(det) < 1e-15 {
		return Homography{}, fmt.Errorf("invert homography: %w", ErrSingular)
	}
	inv := Homography{
		A, -(b*i - c*hh), b*f - c*e,
		B, a*i - c*g, -(a*f - c*d),
		C, -(a*hh - b*g), a*e - b*d,
	}
	for k := range inv {
		inv[k] /= det
	}
	return inv, nil
}

// Translate returns the homography translating by (tx, ty).
func Translate(tx, ty float64) Homography {
	return Homography{1, 0, tx, 0, 1, ty, 0, 0, 1}
}

// ScaleH returns the homography scaling by (sx, sy) about the origin.
func ScaleH(sx, sy float64) Homography {
	return Homography{sx, 0, 0, 0, sy, 0, 0, 0, 1}
}

// Rotate returns the homography rotating by theta radians about the origin.
func Rotate(theta float64) Homography {
	c, s := math.Cos(theta), math.Sin(theta)
	return Homography{c, -s, 0, s, c, 0, 0, 0, 1}
}

// Solve4Point computes the homography mapping each src[i] to dst[i] from
// exactly four correspondences via the direct linear transform, normalizing
// h22 = 1. Degenerate configurations return ErrSingular.
func Solve4Point(src, dst [4]Point) (Homography, error) {
	// Build the 8x8 system A·h = b for the 8 unknowns h00..h21.
	var a [8][8]float64
	var b [8]float64
	for i := 0; i < 4; i++ {
		sx, sy := src[i].X, src[i].Y
		dx, dy := dst[i].X, dst[i].Y
		a[2*i] = [8]float64{sx, sy, 1, 0, 0, 0, -sx * dx, -sy * dx}
		b[2*i] = dx
		a[2*i+1] = [8]float64{0, 0, 0, sx, sy, 1, -sx * dy, -sy * dy}
		b[2*i+1] = dy
	}
	h8, err := solveLinear8(a, b)
	if err != nil {
		return Homography{}, err
	}
	return Homography{
		h8[0], h8[1], h8[2],
		h8[3], h8[4], h8[5],
		h8[6], h8[7], 1,
	}, nil
}

// solveLinear8 solves an 8x8 linear system by Gaussian elimination with
// partial pivoting.
func solveLinear8(a [8][8]float64, b [8]float64) ([8]float64, error) {
	const n = 8
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return [8]float64{}, fmt.Errorf("solve 4-point homography: %w", ErrSingular)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]

		for r := col + 1; r < n; r++ {
			factor := a[r][col] / a[col][col]
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	var x [8]float64
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// RadialDistortion is the Brown model with two radial coefficients:
// r' = r·(1 + K1·r² + K2·r⁴), with r normalized by Norm (typically half the
// image diagonal) around Center. Positive K1 produces pincushion
// distortion, negative barrel — the "straight lines become arcs" effect the
// paper cites (§II).
type RadialDistortion struct {
	Center Point
	Norm   float64
	K1, K2 float64
}

// Apply maps an undistorted point to its distorted position.
func (rd RadialDistortion) Apply(p Point) Point {
	if rd.Norm <= 0 || (rd.K1 == 0 && rd.K2 == 0) {
		return p
	}
	d := p.Sub(rd.Center)
	r2 := (d.X*d.X + d.Y*d.Y) / (rd.Norm * rd.Norm)
	f := 1 + rd.K1*r2 + rd.K2*r2*r2
	return rd.Center.Add(d.Scale(f))
}

// PerspectiveView builds the homography a camera sees when photographing a
// planar screen of size (w, h) pixels:
//
//   - viewAngleDeg rotates the screen about its vertical axis (the paper's
//     v_a); foreshortening shrinks the far edge.
//   - scale models distance (d): 1.0 fills the same pixel area as the
//     screen, smaller values model the camera moving away.
//   - (offsetX, offsetY) translate the projected screen inside the capture.
//
// The result maps screen coordinates to capture coordinates.
func PerspectiveView(w, h, viewAngleDeg, scale, offsetX, offsetY float64) (Homography, error) {
	theta := viewAngleDeg * math.Pi / 180
	// Screen corners.
	src := [4]Point{{0, 0}, {w, 0}, {w, h}, {0, h}}

	// Project each corner: rotate the screen plane about the vertical axis
	// through its center, then apply a pinhole projection with focal length
	// proportional to the screen width (a typical phone field of view).
	focal := 1.5 * w
	camDist := 1.5 * w / scale
	var dst [4]Point
	for i, c := range src {
		// Center the corner, rotate about the vertical (y) axis in 3-D.
		x := c.X - w/2
		y := c.Y - h/2
		x3 := x * math.Cos(theta)
		z3 := x * math.Sin(theta)
		// Pinhole projection at distance camDist.
		denom := camDist + z3
		if denom <= 0 {
			return Homography{}, fmt.Errorf("perspective view: corner behind camera (angle %.1f°)", viewAngleDeg)
		}
		px := focal * x3 / denom
		py := focal * y / denom
		dst[i] = Point{px + w/2 + offsetX, py + h/2 + offsetY}
	}
	return Solve4Point(src, dst)
}
