package geometry

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b Point, tol float64) bool {
	return math.Abs(a.X-b.X) <= tol && math.Abs(a.Y-b.Y) <= tol
}

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, 2}
	if got := p.Add(q); got != (Point{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{2, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dist(Point{0, 0}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Mid(p, q); got != (Point{2, 3}) {
		t.Errorf("Mid = %v", got)
	}
	if got := Lerp(p, q, 0); got != p {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := Lerp(p, q, 1); got != q {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := Lerp(Point{0, 0}, Point{10, 20}, 0.25); got != (Point{2.5, 5}) {
		t.Errorf("Lerp(0.25) = %v", got)
	}
}

func TestIdentityApply(t *testing.T) {
	h := Identity()
	p := Point{12.5, -3}
	if got := h.Apply(p); !almostEq(got, p, 1e-12) {
		t.Errorf("identity moved point: %v", got)
	}
}

func TestTranslateScaleRotate(t *testing.T) {
	if got := Translate(5, -2).Apply(Point{1, 1}); !almostEq(got, Point{6, -1}, 1e-12) {
		t.Errorf("Translate = %v", got)
	}
	if got := ScaleH(2, 3).Apply(Point{4, 5}); !almostEq(got, Point{8, 15}, 1e-12) {
		t.Errorf("Scale = %v", got)
	}
	if got := Rotate(math.Pi / 2).Apply(Point{1, 0}); !almostEq(got, Point{0, 1}, 1e-12) {
		t.Errorf("Rotate(90°) = %v", got)
	}
}

func TestMulComposition(t *testing.T) {
	g := Translate(1, 0)
	h := ScaleH(2, 2)
	// h∘g: translate first, then scale.
	comp := h.Mul(g)
	got := comp.Apply(Point{1, 1})
	want := Point{4, 2}
	if !almostEq(got, want, 1e-12) {
		t.Errorf("composition = %v, want %v", got, want)
	}
}

func TestInverseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		h := Homography{
			1 + rng.Float64(), rng.Float64() * 0.2, rng.Float64() * 50,
			rng.Float64() * 0.2, 1 + rng.Float64(), rng.Float64() * 50,
			rng.Float64() * 1e-4, rng.Float64() * 1e-4, 1,
		}
		inv, err := h.Inverse()
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		p := Point{rng.Float64() * 100, rng.Float64() * 100}
		back := inv.Apply(h.Apply(p))
		if !almostEq(back, p, 1e-6) {
			t.Fatalf("inverse round trip: %v -> %v", p, back)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	var zero Homography
	if _, err := zero.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolve4PointExact(t *testing.T) {
	src := [4]Point{{0, 0}, {100, 0}, {100, 50}, {0, 50}}
	dst := [4]Point{{10, 5}, {95, 8}, {92, 60}, {8, 55}}
	h, err := Solve4Point(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got := h.Apply(src[i]); !almostEq(got, dst[i], 1e-6) {
			t.Errorf("corner %d: %v, want %v", i, got, dst[i])
		}
	}
}

func TestSolve4PointIsProjective(t *testing.T) {
	// The interior must map consistently: midpoints of the quad diagonals
	// land on the intersection of the mapped diagonals.
	src := [4]Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	dst := [4]Point{{0, 0}, {12, 1}, {11, 9}, {-1, 11}}
	h, err := Solve4Point(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// A homography preserves collinearity: the mapped center of the source
	// diagonal must lie on the segment between mapped opposite corners.
	center := h.Apply(Point{5, 5})
	d1a, d1b := h.Apply(Point{0, 0}), h.Apply(Point{10, 10})
	// Cross product of (center-d1a) and (d1b-d1a) must vanish.
	v1 := center.Sub(d1a)
	v2 := d1b.Sub(d1a)
	cross := v1.X*v2.Y - v1.Y*v2.X
	if math.Abs(cross) > 1e-6 {
		t.Errorf("collinearity violated: cross = %v", cross)
	}
}

func TestSolve4PointDegenerate(t *testing.T) {
	// Three collinear source points make the system singular.
	src := [4]Point{{0, 0}, {1, 1}, {2, 2}, {0, 10}}
	dst := [4]Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	if _, err := Solve4Point(src, dst); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolve4PointRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := [4]Point{{0, 0}, {200, 0}, {200, 100}, {0, 100}}
		var dst [4]Point
		for i, p := range src {
			dst[i] = Point{p.X + rng.Float64()*20 - 10, p.Y + rng.Float64()*20 - 10}
		}
		h, err := Solve4Point(src, dst)
		if err != nil {
			return true // rare degenerate jitter; nothing to check
		}
		inv, err := h.Inverse()
		if err != nil {
			return true
		}
		p := Point{rng.Float64() * 200, rng.Float64() * 100}
		return almostEq(inv.Apply(h.Apply(p)), p, 1e-5)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRadialDistortionIdentityCases(t *testing.T) {
	p := Point{40, 60}
	if got := (RadialDistortion{}).Apply(p); got != p {
		t.Errorf("zero distortion moved point: %v", got)
	}
	rd := RadialDistortion{Center: Point{50, 50}, Norm: 100}
	if got := rd.Apply(p); got != p {
		t.Errorf("K1=K2=0 moved point: %v", got)
	}
}

func TestRadialDistortionCenterFixed(t *testing.T) {
	rd := RadialDistortion{Center: Point{50, 50}, Norm: 100, K1: 0.1}
	if got := rd.Apply(Point{50, 50}); got != (Point{50, 50}) {
		t.Errorf("center moved: %v", got)
	}
}

func TestRadialDistortionDirection(t *testing.T) {
	rd := RadialDistortion{Center: Point{0, 0}, Norm: 100, K1: 0.1}
	// Pincushion (positive K1): points move away from center.
	got := rd.Apply(Point{50, 0})
	if got.X <= 50 {
		t.Errorf("pincushion pulled inward: %v", got)
	}
	rd.K1 = -0.1
	got = rd.Apply(Point{50, 0})
	if got.X >= 50 {
		t.Errorf("barrel pushed outward: %v", got)
	}
}

func TestRadialDistortionGrowsWithRadius(t *testing.T) {
	rd := RadialDistortion{Center: Point{0, 0}, Norm: 100, K1: 0.05}
	d1 := rd.Apply(Point{20, 0}).X - 20
	d2 := rd.Apply(Point{80, 0}).X - 80
	if d2 <= d1 {
		t.Errorf("distortion not increasing with radius: %v vs %v", d1, d2)
	}
}

func TestPerspectiveViewZeroAngleIsScale(t *testing.T) {
	h, err := PerspectiveView(1000, 500, 0, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At angle 0 and scale 1 the corners should stay put (projection is
	// centered and focal/camDist cancel).
	for _, p := range []Point{{0, 0}, {1000, 0}, {1000, 500}, {0, 500}} {
		if got := h.Apply(p); !almostEq(got, p, 1e-6) {
			t.Errorf("corner %v moved to %v", p, got)
		}
	}
}

func TestPerspectiveViewForeshortens(t *testing.T) {
	h, err := PerspectiveView(1000, 500, 25, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rotating about the vertical axis makes one vertical edge taller
	// (nearer) and the other shorter (farther).
	left := h.Apply(Point{0, 0}).Dist(h.Apply(Point{0, 500}))
	right := h.Apply(Point{1000, 0}).Dist(h.Apply(Point{1000, 500}))
	if left == right {
		t.Fatal("no foreshortening at 25°")
	}
}

func TestPerspectiveViewScaleShrinks(t *testing.T) {
	h, err := PerspectiveView(1000, 500, 0, 0.5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	width := h.Apply(Point{0, 250}).Dist(h.Apply(Point{1000, 250}))
	if math.Abs(width-500) > 1 {
		t.Errorf("projected width at scale 0.5 = %v, want ~500", width)
	}
}

func TestApplyAtInfinityIsFinite(t *testing.T) {
	// A homography with a vanishing third row maps points to w'=0;
	// Apply must return the finite sentinel, not Inf/NaN.
	h := Homography{1, 0, 0, 0, 1, 0, 0, 0, 0}
	got := h.Apply(Point{1, 1})
	if math.IsInf(got.X, 0) || math.IsNaN(got.X) {
		t.Fatalf("Apply at infinity = %v", got)
	}
}

func TestLineIntersect(t *testing.T) {
	// Perpendicular lines crossing at (2, 3).
	p, ok := LineIntersect(Point{0, 3}, Point{10, 3}, Point{2, 0}, Point{2, 10})
	if !ok || !almostEq(p, Point{2, 3}, 1e-12) {
		t.Fatalf("intersection = %v ok=%v", p, ok)
	}
	// Diagonals of the unit square cross at the center.
	p, ok = LineIntersect(Point{0, 0}, Point{1, 1}, Point{1, 0}, Point{0, 1})
	if !ok || !almostEq(p, Point{0.5, 0.5}, 1e-12) {
		t.Fatalf("diagonal intersection = %v ok=%v", p, ok)
	}
	// The intersection may lie beyond the given segments (infinite lines).
	p, ok = LineIntersect(Point{0, 0}, Point{1, 0}, Point{5, 1}, Point{5, 2})
	if !ok || !almostEq(p, Point{5, 0}, 1e-12) {
		t.Fatalf("extended intersection = %v ok=%v", p, ok)
	}
}

func TestLineIntersectParallel(t *testing.T) {
	if _, ok := LineIntersect(Point{0, 0}, Point{1, 0}, Point{0, 1}, Point{1, 1}); ok {
		t.Fatal("parallel lines intersected")
	}
	if _, ok := LineIntersect(Point{0, 0}, Point{0, 0}, Point{1, 1}, Point{2, 2}); ok {
		t.Fatal("degenerate line intersected")
	}
}
