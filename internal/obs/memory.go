package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Fixed bucket layouts (upper bounds, seconds or counts). Fixed layouts —
// rather than adaptive ones — keep exposition output stable across runs
// and keep Observe allocation-free after the first touch of a series.
var (
	// LatencyBuckets covers microseconds-to-seconds spans: decode stages
	// run in the 0.1–10 ms band, sweep points in the 10 ms–10 s band.
	LatencyBuckets = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	// CountBuckets covers small nonnegative tallies (locator misses,
	// pool occupancy).
	CountBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}
)

// BucketsFor is the default layout rule: duration histograms (… "_seconds"
// suffix, labels stripped) get LatencyBuckets, everything else
// CountBuckets.
func BucketsFor(name string) []float64 {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	if strings.HasSuffix(name, "_seconds") {
		return LatencyBuckets
	}
	return CountBuckets
}

// Memory is the in-memory Recorder: series sharded by name hash, counter
// increments lock-free after first touch, histogram observations under a
// per-shard mutex. Safe for concurrent use.
type Memory struct {
	clock   Clock
	buckets func(name string) []float64
	shards  [numShards]shard
}

const numShards = 16

type shard struct {
	mu       sync.Mutex
	counters map[string]*int64
	hists    map[string]*histogram
}

type histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	n      int64
}

// MemoryOption configures NewMemory.
type MemoryOption func(*Memory)

// WithClock injects the span clock. Use a *ManualClock for deterministic
// span durations; the default is the wall clock.
func WithClock(c Clock) MemoryOption {
	return func(m *Memory) { m.clock = c }
}

// WithBuckets overrides the bucket-layout rule.
func WithBuckets(f func(name string) []float64) MemoryOption {
	return func(m *Memory) { m.buckets = f }
}

// NewMemory returns an empty in-memory Recorder. Without options it times
// spans with the wall clock — construct it at the edge (CLI, test) and
// inject it into the pipeline, never inside a contract package (RB-O1).
func NewMemory(opts ...MemoryOption) *Memory {
	m := &Memory{clock: NewWallClock(), buckets: BucketsFor}
	for _, o := range opts {
		o(m)
	}
	return m
}

// fnv1a hashes the series name to a shard.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (m *Memory) shard(name string) *shard {
	return &m.shards[fnv1a(name)%numShards]
}

// Inc implements Recorder.
func (m *Memory) Inc(name string, delta int64) {
	s := m.shard(name)
	s.mu.Lock()
	c := s.counters[name]
	if c == nil {
		if s.counters == nil {
			s.counters = make(map[string]*int64)
		}
		c = new(int64)
		s.counters[name] = c
	}
	s.mu.Unlock()
	atomic.AddInt64(c, delta)
}

// Observe implements Recorder.
func (m *Memory) Observe(name string, v float64) {
	s := m.shard(name)
	s.mu.Lock()
	h := s.hists[name]
	if h == nil {
		if s.hists == nil {
			s.hists = make(map[string]*histogram)
		}
		bounds := m.buckets(name)
		h = &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		s.hists[name] = h
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
	s.mu.Unlock()
}

// Span implements Recorder.
func (m *Memory) Span(name string) func() {
	start := m.clock.Now()
	return func() {
		m.Observe(name, (m.clock.Now() - start).Seconds())
	}
}

// Series is one snapshot entry: a counter (Kind "counter", Value set) or a
// histogram (Kind "histogram", Count/Sum/Buckets set). Bucket counts are
// per-bucket, not cumulative; exposition cumulates.
type Series struct {
	Name  string
	Kind  string
	Value int64
	Count int64
	Sum   float64
	// Bounds are the histogram's upper bounds; Buckets[i] counts
	// observations in (Bounds[i-1], Bounds[i]], Buckets[len(Bounds)] the
	// +Inf overflow.
	Bounds  []float64
	Buckets []int64
}

// Snapshot returns every series sorted by name. The snapshot is a deep
// copy; the Memory keeps accumulating.
func (m *Memory) Snapshot() []Series {
	var out []Series
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for name, c := range s.counters {
			out = append(out, Series{Name: name, Kind: "counter", Value: atomic.LoadInt64(c)})
		}
		for name, h := range s.hists {
			buckets := make([]int64, len(h.counts))
			copy(buckets, h.counts)
			out = append(out, Series{
				Name: name, Kind: "histogram",
				Count: h.n, Sum: h.sum,
				Bounds: h.bounds, Buckets: buckets,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
