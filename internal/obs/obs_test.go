package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden exposition files")

func TestNopAndEnabled(t *testing.T) {
	if Enabled(nil) || Enabled(Nop()) {
		t.Fatal("nil / nop must not report enabled")
	}
	if OrNop(nil) != Nop() {
		t.Fatal("OrNop(nil) must be the shared nop")
	}
	m := NewMemory()
	if !Enabled(m) {
		t.Fatal("Memory must report enabled")
	}
	if OrNop(m) != Recorder(m) {
		t.Fatal("OrNop must pass a real recorder through")
	}
	// The nop must accept everything silently.
	n := Nop()
	n.Inc("x", 1)
	n.Observe("y", 2)
	n.Span("z")()
}

func TestWith(t *testing.T) {
	if got := With("x_total"); got != "x_total" {
		t.Fatalf("With no labels = %q", got)
	}
	if got := With("x_total", "class", "drop"); got != `x_total{class="drop"}` {
		t.Fatalf("With = %q", got)
	}
	if got := With("x", "a", "1", "b", "2"); got != `x{a="1",b="2"}` {
		t.Fatalf("With two labels = %q", got)
	}
}

func TestCountersAndHistograms(t *testing.T) {
	m := NewMemory()
	m.Inc("c_total", 1)
	m.Inc("c_total", 2)
	m.Observe("h", 0)
	m.Observe("h", 3)
	m.Observe("h", 1000)

	snap := m.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d series, want 2", len(snap))
	}
	if snap[0].Name != "c_total" || snap[0].Value != 3 {
		t.Fatalf("counter series = %+v", snap[0])
	}
	h := snap[1]
	if h.Kind != "histogram" || h.Count != 3 || h.Sum != 1003 {
		t.Fatalf("histogram series = %+v", h)
	}
	// CountBuckets: 0 lands in the le=0 bucket, 3 in le=4, 1000 overflows.
	if h.Buckets[0] != 1 {
		t.Fatalf("le=0 bucket = %d, want 1", h.Buckets[0])
	}
	if h.Buckets[len(h.Buckets)-1] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", h.Buckets[len(h.Buckets)-1])
	}
}

func TestBucketsFor(t *testing.T) {
	if got := BucketsFor(`rainbar_core_stage_seconds{stage="detect"}`); &got[0] != &LatencyBuckets[0] {
		t.Fatal("_seconds (labeled) must select LatencyBuckets")
	}
	if got := BucketsFor("rainbar_core_locator_misses"); &got[0] != &CountBuckets[0] {
		t.Fatal("count series must select CountBuckets")
	}
}

func TestSpanManualClock(t *testing.T) {
	clk := &ManualClock{}
	m := NewMemory(WithClock(clk))
	end := m.Span("s_seconds")
	clk.Advance(5 * time.Millisecond)
	end()

	snap := m.Snapshot()
	if len(snap) != 1 || snap[0].Count != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := snap[0].Sum; got != 0.005 {
		t.Fatalf("span sum = %v, want 0.005", got)
	}
}

// goldenMemory builds the fixed recorder state behind both exposition
// goldens: a labeled counter family, a bare counter, and a labeled
// duration histogram fed by deterministic manual-clock spans.
func goldenMemory() *Memory {
	clk := &ManualClock{}
	m := NewMemory(WithClock(clk))
	m.Inc(With(MCoreDecodeFailures, "stage", "detect"), 3)
	m.Inc(With(MCoreDecodeFailures, "stage", "sync"), 1)
	m.Inc(MCoreCaptures, 7)
	stage := With(MCoreStageSeconds, "stage", "detect")
	for _, d := range []time.Duration{200 * time.Microsecond, 2 * time.Millisecond, 40 * time.Millisecond} {
		end := m.Span(stage)
		clk.Advance(d)
		end()
	}
	m.Observe(MCoreLocatorMisses, 2)
	return m
}

func TestGoldenExposition(t *testing.T) {
	m := goldenMemory()
	for _, tc := range []struct {
		file  string
		write func(*bytes.Buffer) error
	}{
		{"exposition.prom", func(b *bytes.Buffer) error { return m.WritePrometheus(b) }},
		{"exposition.json", func(b *bytes.Buffer) error { return m.WriteJSON(b) }},
	} {
		var buf bytes.Buffer
		if err := tc.write(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", tc.file)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to write)", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", tc.file, buf.Bytes(), want)
		}
	}
}

// TestExpositionDeterministic pins that two identical recording sequences
// produce byte-identical exposition (the property the goldens rely on).
func TestExpositionDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenMemory().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenMemory().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("exposition not deterministic")
	}
}

// TestConcurrentRecorder hammers one Memory from many goroutines; run
// under -race (scripts/ci.sh) it is the recorder's data-race gate.
func TestConcurrentRecorder(t *testing.T) {
	m := NewMemory(WithClock(&ManualClock{}))
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			name := With("conc_total", "w", string(rune('a'+w%4)))
			for i := 0; i < each; i++ {
				m.Inc(name, 1)
				m.Inc("shared_total", 1)
				m.Observe("shared_hist", float64(i%8))
				m.Span("shared_seconds")()
			}
		}(w)
	}
	wg.Wait()

	var shared, conc, hist, spans int64
	for _, s := range m.Snapshot() {
		switch {
		case s.Name == "shared_total":
			shared = s.Value
		case s.Name == "shared_hist":
			hist = s.Count
		case s.Name == "shared_seconds":
			spans = s.Count
		case s.Kind == "counter":
			conc += s.Value
		}
	}
	if want := int64(workers * each); shared != want || conc != want || hist != want || spans != want {
		t.Fatalf("lost updates: shared=%d conc=%d hist=%d spans=%d want %d", shared, conc, hist, spans, want)
	}
}
