package obs

// Canonical series names emitted by the instrumented pipeline. Every name
// here is documented in DESIGN.md §9; tests and the CI smoke step key on
// them, so treat renames as format changes.
const (
	// --- core: the §III-C..F receiver pipeline ---

	// MCoreCaptures counts grid decodes attempted (one per capture fed to
	// DecodeGrid/DecodeGridLoose).
	MCoreCaptures = "rainbar_core_captures_total"
	// MCoreStageSeconds times each decode stage; label stage is one of
	// detect, locate, extract, correct (the §IV-D breakdown).
	MCoreStageSeconds = "rainbar_core_stage_seconds"
	// MCoreHeaderCRCFailures counts header strips that failed their CRCs.
	MCoreHeaderCRCFailures = "rainbar_core_header_crc_failures_total"
	// MCoreLocatorMisses is the per-capture count of dead-reckoned code
	// locators (the §III-E correction iterations that found nothing).
	MCoreLocatorMisses = "rainbar_core_locator_misses"
	// MCoreCellsClassified counts classified data cells by resulting
	// color; label color is the colorspace name (white, black, red, green,
	// blue). The off-diagonal mass of the paper's confusion analysis shows
	// up as black/unexpected-color counts.
	MCoreCellsClassified = "rainbar_core_cells_classified_total"
	// MCoreRSErrorsCorrected counts byte errors Reed-Solomon repaired.
	MCoreRSErrorsCorrected = "rainbar_core_rs_errors_corrected_total"
	// MCoreRSErasures counts cells handed to RS as erasures.
	MCoreRSErasures = "rainbar_core_rs_erasures_total"
	// MCoreFramesDecoded counts logical frames reassembled successfully.
	MCoreFramesDecoded = "rainbar_core_frames_decoded_total"
	// MCoreDecodeFailures counts receiver ingest/flush failures; label
	// stage is the core.FailureClass (detect, locate, header, sync,
	// correct, dropped, other).
	MCoreDecodeFailures = "rainbar_core_decode_failures_total"
	// MCoreLadderAttempts counts decode-recovery hypotheses attempted;
	// label hypothesis is the core.Hyp* ID (erasures, mu-0.45, mu-0.65,
	// rescan, combine).
	MCoreLadderAttempts = "rainbar_core_ladder_attempts_total"
	// MCoreLadderSuccesses counts hypotheses that recovered a decode (for
	// grid-level hypotheses: that produced the adopted grid reading);
	// label hypothesis as MCoreLadderAttempts.
	MCoreLadderSuccesses = "rainbar_core_ladder_successes_total"
	// MCoreCellConfidence is the per-capture mean data-cell classification
	// confidence as a percentage (0-100), recorded only when the recovery
	// ladder is enabled.
	MCoreCellConfidence = "rainbar_core_cell_confidence_percent"

	// --- channel / camera: the simulated optical link ---

	// MChannelCaptures counts single-shot channel captures.
	MChannelCaptures = "rainbar_channel_captures_total"
	// MChannelPhotometric counts photometric passes (one per camera
	// capture and one per single-shot capture).
	MChannelPhotometric = "rainbar_channel_photometric_total"
	// MCameraCaptures counts captures the rolling-shutter camera kept.
	MCameraCaptures = "rainbar_camera_captures_total"
	// MCameraMixed counts kept captures mixing rows of two display frames.
	MCameraMixed = "rainbar_camera_mixed_captures_total"
	// MCameraDropped counts captures lost to injected whole-frame loss.
	MCameraDropped = "rainbar_camera_frames_dropped_total"
	// MFaultsInjected counts injector applications; label class is the
	// injector name (drop, truncate, splice, burst, occlude, flicker,
	// satclip).
	MFaultsInjected = "rainbar_faults_injected_total"

	// --- transport: session rounds and degradation ---

	// MTransportTransfers counts Transfer/TransferLossy invocations.
	MTransportTransfers = "rainbar_transport_transfers_total"
	// MTransportRounds counts display rounds across all transfers.
	MTransportRounds = "rainbar_transport_rounds_total"
	// MTransportFramesSent counts frames displayed (retransmissions
	// included).
	MTransportFramesSent = "rainbar_transport_frames_sent_total"
	// MTransportRetransmits counts frames re-displayed after the first
	// round (the session's retransmission volume).
	MTransportRetransmits = "rainbar_transport_retransmits_total"
	// MTransportRateFallbacks counts display-rate fallback actions.
	MTransportRateFallbacks = "rainbar_transport_rate_fallbacks_total"
	// MTransportRoundSeconds times each display+decode round.
	MTransportRoundSeconds = "rainbar_transport_round_seconds"
	// MTransportDecodeFailures counts classified per-capture decode
	// failures seen by sessions; label stage as MCoreDecodeFailures.
	MTransportDecodeFailures = "rainbar_transport_decode_failures_total"
	// MTransportCombinedDecodes counts frames recovered by fusing failed
	// captures' soft tables across retransmission rounds (HARQ).
	MTransportCombinedDecodes = "rainbar_transport_combined_decodes_total"

	// --- serve: the multi-session daemon ---

	// MServeSubmitted counts sessions admitted via Submit.
	MServeSubmitted = "rainbar_serve_sessions_submitted_total"
	// MServeRestored counts sessions admitted via snapshot Restore.
	MServeRestored = "rainbar_serve_sessions_restored_total"
	// MServeRejectedOverload counts admissions refused at the MaxSessions
	// bound (the backpressure signal).
	MServeRejectedOverload = "rainbar_serve_rejected_overload_total"
	// MServeFinished counts sessions reaching a terminal state; label
	// state is done, failed or canceled.
	MServeFinished = "rainbar_serve_sessions_finished_total"
	// MServeRounds counts display rounds stepped across all sessions.
	MServeRounds = "rainbar_serve_rounds_total"
	// MServeSnapshots counts session snapshots taken.
	MServeSnapshots = "rainbar_serve_snapshots_total"
	// MServeJournalRecords counts records appended to the durability
	// journal; label kind is submit, checkpoint or terminal.
	MServeJournalRecords = "rainbar_serve_journal_records_total"
	// MServeJournalCompactions counts journal compactions (rewrites that
	// drop superseded records).
	MServeJournalCompactions = "rainbar_serve_journal_compactions_total"
	// MServeReplays counts sessions rebuilt from the journal by Recover.
	MServeReplays = "rainbar_serve_replays_total"
	// MServeRetries counts transient step failures retried with backoff.
	MServeRetries = "rainbar_serve_retries_total"
	// MServePanicsRecovered counts worker panics isolated to their
	// session (the session fails; the server keeps serving).
	MServePanicsRecovered = "rainbar_serve_panics_recovered_total"
	// MServeDeadlineExpiries counts rounds abandoned at the round
	// deadline by the stall watchdog.
	MServeDeadlineExpiries = "rainbar_serve_deadline_expiries_total"

	// --- experiment: the sweep-point worker pool ---

	// MExperimentPoints counts sweep points executed.
	MExperimentPoints = "rainbar_experiment_points_total"
	// MExperimentPointSeconds times each sweep point.
	MExperimentPointSeconds = "rainbar_experiment_point_seconds"
	// MExperimentInflight samples worker-pool occupancy (points already
	// running, including this one) at each point start.
	MExperimentInflight = "rainbar_experiment_inflight"
	// MExperimentTables counts experiment tables produced.
	MExperimentTables = "rainbar_experiment_tables_total"
)
