package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// splitName separates a series name into its base and its label body:
// `x{a="b"}` -> ("x", `a="b"`). Unlabeled names return an empty body.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels renders a label body plus extra pairs back into {...} form.
func joinLabels(body string, extra ...string) string {
	parts := make([]string, 0, 2)
	if body != "" {
		parts = append(parts, body)
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (text/plain; version 0.0.4). Output is deterministic: series
// sorted by name, one # TYPE line per metric family, histogram buckets
// cumulated with an explicit +Inf bound.
func (m *Memory) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, m.Snapshot())
}

// WritePrometheus renders an already-taken snapshot; see the method.
func WritePrometheus(w io.Writer, snap []Series) error {
	typed := make(map[string]bool)
	for _, s := range snap {
		base, labels := splitName(s.Name)
		if !typed[base] {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, s.Kind); err != nil {
				return err
			}
			typed[base] = true
		}
		switch s.Kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(labels), s.Value); err != nil {
				return err
			}
		case "histogram":
			cum := int64(0)
			for i, b := range s.Bounds {
				cum += s.Buckets[i]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					base, joinLabels(labels, `le="`+formatFloat(b)+`"`), cum); err != nil {
					return err
				}
			}
			cum += s.Buckets[len(s.Bounds)]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, `le="+Inf"`), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, joinLabels(labels), formatFloat(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, joinLabels(labels), s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonSeries is the JSON exposition shape of one series.
type jsonSeries struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Value   *int64       `json:"value,omitempty"`
	Count   *int64       `json:"count,omitempty"`
	Sum     *float64     `json:"sum,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

type jsonBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"` // cumulative, matching Prometheus buckets
}

// WriteJSON renders the snapshot as an indented JSON array, sorted by
// series name (deterministic for golden comparison).
func (m *Memory) WriteJSON(w io.Writer) error {
	return WriteJSON(w, m.Snapshot())
}

// WriteJSON renders an already-taken snapshot; see the method.
func WriteJSON(w io.Writer, snap []Series) error {
	out := make([]jsonSeries, 0, len(snap))
	for _, s := range snap {
		s := s
		js := jsonSeries{Name: s.Name, Kind: s.Kind}
		switch s.Kind {
		case "counter":
			js.Value = &s.Value
		case "histogram":
			js.Count = &s.Count
			js.Sum = &s.Sum
			cum := int64(0)
			for i, b := range s.Bounds {
				cum += s.Buckets[i]
				js.Buckets = append(js.Buckets, jsonBucket{LE: formatFloat(b), Count: cum})
			}
			cum += s.Buckets[len(s.Bounds)]
			js.Buckets = append(js.Buckets, jsonBucket{LE: "+Inf", Count: cum})
		}
		out = append(out, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
