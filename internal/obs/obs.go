// Package obs is the pipeline observability layer: counters, fixed-bucket
// histograms and per-stage span timing for every subsystem the paper's
// evaluation reasons about stage by stage (locator detection, per-block
// classification, RS correction load, frame-sync disambiguation,
// transport retransmission, experiment sweep latency).
//
// Design constraints, in priority order:
//
//   - Zero dependencies: stdlib only, like the rest of the repository.
//   - Zero behavioral coupling: recorders observe the pipeline, they never
//     feed a decode decision. Enabling any Recorder leaves every decoded
//     bit and every experiment table byte-identical (pinned by
//     experiment's equivalence test).
//   - Determinism contract (DESIGN.md §7): contract packages never read
//     the wall clock. All span timing flows through a Clock injected into
//     the Recorder at construction; the wall clock exists only here,
//     behind the telemetry escape hatch, and rainbar-lint's RB-O1 rule
//     keeps recorder/clock construction out of contract packages.
//   - Negligible no-op cost: the default Recorder is a no-op whose calls
//     are empty interface dispatches, so instrumented hot paths (e.g.
//     core's receiver) stay within noise of the uninstrumented build.
//
// Series names follow Prometheus conventions (snake_case, _total for
// counters, _seconds for duration histograms) and carry labels inline in
// the name: "rainbar_core_stage_seconds{stage=\"detect\"}" is one series.
// Use With to build labeled names deterministically.
package obs

import (
	"sync/atomic"
	"time"
)

// Recorder receives pipeline telemetry. Implementations must be safe for
// concurrent use: the experiment engine records from every sweep worker
// and a Codec is shared across goroutines.
type Recorder interface {
	// Inc adds delta to the named counter.
	Inc(name string, delta int64)
	// Observe records one value into the named histogram.
	Observe(name string, v float64)
	// Span starts a timed span and returns the func that ends it; the
	// elapsed clock time is recorded in seconds as an observation on the
	// named histogram. Time comes from the Recorder's Clock, so span
	// durations are deterministic whenever the clock is.
	Span(name string) func()
}

// nopRecorder is the default Recorder: it drops everything.
type nopRecorder struct{}

func (nopRecorder) Inc(string, int64)       {}
func (nopRecorder) Observe(string, float64) {}
func (nopRecorder) Span(string) func()      { return nopEnd }

var (
	nop    Recorder = nopRecorder{}
	nopEnd          = func() {}
)

// Nop returns the shared no-op Recorder.
func Nop() Recorder { return nop }

// OrNop returns r, or the no-op Recorder when r is nil, so call sites
// never need a nil check.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return nop
	}
	return r
}

// Enabled reports whether r actually records anything. Instrumented hot
// paths use it to skip work that only exists to be observed (e.g. tallying
// per-color classification counts).
func Enabled(r Recorder) bool {
	return r != nil && r != nop
}

// Clock supplies span time as an offset from an arbitrary epoch. Only
// differences between readings are meaningful.
type Clock interface {
	Now() time.Duration
}

// wallClock reads the host monotonic clock. It is the telemetry escape
// hatch of the determinism contract: wall time may appear in metrics
// output, never in decoded bits, and contract packages must not construct
// it (rainbar-lint RB-O1) — they receive a Recorder already carrying one.
type wallClock struct{ epoch time.Time }

func (w wallClock) Now() time.Duration { return time.Since(w.epoch) }

// NewWallClock returns a Clock backed by the host monotonic clock.
func NewWallClock() Clock { return wallClock{epoch: time.Now()} }

// ManualClock is a deterministic Clock for tests and bit-reproducible
// runs: Now returns the reading set by Advance, so span durations are an
// explicit function of the test script, not the host.
type ManualClock struct {
	now atomic.Int64
}

// Now implements Clock.
func (m *ManualClock) Now() time.Duration { return time.Duration(m.now.Load()) }

// Advance moves the clock forward by d.
func (m *ManualClock) Advance(d time.Duration) { m.now.Add(int64(d)) }

// With returns name labeled with the given key/value pairs, in argument
// order: With("x_total", "class", "drop") == `x_total{class="drop"}`.
// Callers on hot paths should precompute labeled names once.
func With(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	out := make([]byte, 0, len(name)+16)
	out = append(out, name...)
	out = append(out, '{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, kv[i]...)
		out = append(out, '=', '"')
		out = append(out, kv[i+1]...)
		out = append(out, '"')
	}
	out = append(out, '}')
	return string(out)
}
