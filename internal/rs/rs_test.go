package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"rainbar/internal/gf256"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, -1, 255, 1000} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) succeeded, want error", n)
		}
	}
	for _, n := range []int{1, 2, 16, 32, 254} {
		if _, err := New(n); err != nil {
			t.Errorf("New(%d) failed: %v", n, err)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestEncodeSystematic(t *testing.T) {
	c := MustNew(8)
	data := []byte("hello, reed-solomon")
	msg, err := c.Encode(data)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(msg) != len(data)+8 {
		t.Fatalf("encoded length %d, want %d", len(msg), len(data)+8)
	}
	if !bytes.Equal(msg[:len(data)], data) {
		t.Fatal("encoding is not systematic")
	}
}

func TestEncodeTooLong(t *testing.T) {
	c := MustNew(16)
	if _, err := c.Encode(make([]byte, 240)); !errors.Is(err, ErrLongMessage) {
		t.Fatalf("Encode(240 bytes) err = %v, want ErrLongMessage", err)
	}
	if _, err := c.Encode(make([]byte, 239)); err != nil {
		t.Fatalf("Encode(239 bytes) err = %v, want nil", err)
	}
}

func TestCodewordIsMultipleOfGenerator(t *testing.T) {
	// A valid codeword must evaluate to zero at every generator root
	// alpha^0..alpha^(nparity-1).
	c := MustNew(10)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 1+rng.Intn(200))
		rng.Read(data)
		msg, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if v := gf256.Polynomial(msg).Eval(gf256.Exp(i)); v != 0 {
				t.Fatalf("codeword root alpha^%d evaluates to %#x", i, v)
			}
		}
	}
}

func TestDecodeClean(t *testing.T) {
	c := MustNew(8)
	data := []byte("clean message")
	msg, _ := c.Encode(data)
	got, err := c.Decode(msg, nil)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Decode = %q, want %q", got, data)
	}
}

func TestDecodeCorrectsErrors(t *testing.T) {
	c := MustNew(8) // corrects up to 4 errors
	data := []byte("the quick brown fox jumps over")
	for nErrs := 1; nErrs <= 4; nErrs++ {
		msg, _ := c.Encode(data)
		rng := rand.New(rand.NewSource(int64(nErrs)))
		positions := rng.Perm(len(msg))[:nErrs]
		for _, p := range positions {
			msg[p] ^= byte(1 + rng.Intn(255))
		}
		got, err := c.Decode(msg, nil)
		if err != nil {
			t.Fatalf("%d errors: Decode failed: %v", nErrs, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%d errors: Decode = %q, want %q", nErrs, got, data)
		}
	}
}

func TestDecodeDetectsExcessErrors(t *testing.T) {
	c := MustNew(8)
	data := []byte("overload this codeword with corruption")
	rng := rand.New(rand.NewSource(99))
	detected := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		msg, _ := c.Encode(data)
		// 8 errors is double the correction capability.
		for _, p := range rng.Perm(len(msg))[:8] {
			msg[p] ^= byte(1 + rng.Intn(255))
		}
		got, err := c.Decode(msg, nil)
		if err != nil || !bytes.Equal(got, data) {
			detected++
		}
	}
	// Miscorrection (decoding to a *different* valid codeword) is possible but
	// rare; the decoder must flag the overwhelming majority.
	if detected < trials-2 {
		t.Fatalf("only %d/%d overloaded codewords flagged or mangled", detected, trials)
	}
}

func TestDecodeErasuresOnly(t *testing.T) {
	c := MustNew(8) // corrects up to 8 erasures
	data := []byte("erasures are half price")
	msg, _ := c.Encode(data)
	var erasures []int
	for i := 0; i < 8; i++ {
		pos := i * 3
		msg[pos] = 0xAA
		erasures = append(erasures, pos)
	}
	got, err := c.Decode(msg, erasures)
	if err != nil {
		t.Fatalf("Decode with 8 erasures: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Decode = %q, want %q", got, data)
	}
}

func TestDecodeMixedErrorsAndErasures(t *testing.T) {
	// 2 errors + 4 erasures: 2*2 + 4 = 8 = parity, exactly at capacity.
	c := MustNew(8)
	data := []byte("mixed corruption test payload")
	msg, _ := c.Encode(data)
	erasures := []int{0, 5, 10, 15}
	for _, p := range erasures {
		msg[p] ^= 0x55
	}
	msg[20] ^= 0x11
	msg[25] ^= 0x22
	got, err := c.Decode(msg, erasures)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Decode = %q, want %q", got, data)
	}
}

func TestDecodeErasureValidation(t *testing.T) {
	c := MustNew(4)
	msg, _ := c.Encode([]byte("abc"))
	if _, err := c.Decode(msg, []int{-1}); err == nil {
		t.Error("negative erasure position accepted")
	}
	if _, err := c.Decode(msg, []int{len(msg)}); err == nil {
		t.Error("out-of-range erasure position accepted")
	}
	if _, err := c.Decode(msg, []int{0, 1, 2, 3, 4}); !errors.Is(err, ErrTooManyErrors) {
		t.Errorf("5 erasures with 4 parity: err = %v, want ErrTooManyErrors", err)
	}
}

func TestDecodeShortMessage(t *testing.T) {
	c := MustNew(8)
	if _, err := c.Decode([]byte{1, 2, 3}, nil); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("err = %v, want ErrShortMessage", err)
	}
}

func TestDecodeDoesNotMutateInput(t *testing.T) {
	c := MustNew(8)
	msg, _ := c.Encode([]byte("immutable input"))
	msg[3] ^= 0xFF
	snapshot := make([]byte, len(msg))
	copy(snapshot, msg)
	if _, err := c.Decode(msg, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, snapshot) {
		t.Fatal("Decode mutated its input slice")
	}
}

func TestRoundTripProperty(t *testing.T) {
	c := MustNew(16) // corrects 8 errors
	prop := func(data []byte, seed int64) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		if len(data) > c.MaxDataLen() {
			data = data[:c.MaxDataLen()]
		}
		msg, err := c.Encode(data)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		nErrs := rng.Intn(9) // 0..8
		for _, p := range rng.Perm(len(msg))[:nErrs] {
			msg[p] ^= byte(1 + rng.Intn(255))
		}
		got, err := c.Decode(msg, nil)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAllSingleByteErrorsCorrected(t *testing.T) {
	// Exhaustive over position for a fixed payload: every single-byte error
	// in every position must be corrected by even the smallest codec.
	c := MustNew(2)
	data := []byte("exhaustive single error sweep payload......")
	for pos := 0; pos < len(data)+2; pos++ {
		msg, _ := c.Encode(data)
		msg[pos] ^= 0x5A
		got, err := c.Decode(msg, nil)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pos %d: wrong correction", pos)
		}
	}
}

func TestParityAccessors(t *testing.T) {
	c := MustNew(32)
	if c.ParityLen() != 32 {
		t.Errorf("ParityLen = %d, want 32", c.ParityLen())
	}
	if c.MaxDataLen() != 223 {
		t.Errorf("MaxDataLen = %d, want 223", c.MaxDataLen())
	}
	if c.CorrectionCapability() != 16 {
		t.Errorf("CorrectionCapability = %d, want 16", c.CorrectionCapability())
	}
}

func BenchmarkEncode223(b *testing.B) {
	c := MustNew(32)
	data := make([]byte, 223)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	c := MustNew(32)
	data := make([]byte, 223)
	rand.New(rand.NewSource(1)).Read(data)
	msg, _ := c.Encode(data)
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(msg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeWorstCase(b *testing.B) {
	c := MustNew(32)
	data := make([]byte, 223)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	msg, _ := c.Encode(data)
	for _, p := range rng.Perm(len(msg))[:16] {
		msg[p] ^= 0xFF
	}
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(msg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
