// Package rs implements Reed-Solomon error correction over GF(2^8).
//
// RainBar (§III-B of the paper) protects every frame payload with an
// RS(n, k) code: n total bytes per message, k data bytes, correcting up to
// (n-k)/2 byte errors and detecting up to n-k. This package provides a
// systematic encoder and a full decoder (syndromes, Berlekamp-Massey,
// Chien search, Forney algorithm) with optional erasure support, built on
// internal/gf256. Only the standard library is used.
package rs

import (
	"errors"
	"fmt"

	"rainbar/internal/gf256"
)

// Codec is a Reed-Solomon codec with a fixed number of parity bytes.
// A Codec is immutable after creation and safe for concurrent use.
type Codec struct {
	nparity int
	gen     gf256.Polynomial // generator polynomial, degree == nparity
}

// Common error conditions reported by Decode.
var (
	// ErrTooManyErrors indicates the corruption exceeded the correction
	// capability of the code.
	ErrTooManyErrors = errors.New("rs: too many errors to correct")
	// ErrShortMessage indicates a message shorter than the parity length.
	ErrShortMessage = errors.New("rs: message shorter than parity length")
	// ErrLongMessage indicates a message longer than 255 bytes, the block
	// length limit of GF(2^8) Reed-Solomon.
	ErrLongMessage = errors.New("rs: message longer than 255 bytes")
)

// New creates a codec with the given number of parity bytes (n - k).
// nparity must be in [1, 254].
func New(nparity int) (*Codec, error) {
	if nparity < 1 || nparity > 254 {
		return nil, fmt.Errorf("rs: parity count %d out of range [1, 254]", nparity)
	}
	gen := gf256.Polynomial{1}
	for i := 0; i < nparity; i++ {
		gen = gf256.MulPoly(gen, gf256.Polynomial{1, gf256.Exp(i)})
	}
	return &Codec{nparity: nparity, gen: gen}, nil
}

// MustNew is New but panics on invalid configuration. Intended for
// package-level construction with constant arguments.
func MustNew(nparity int) *Codec {
	c, err := New(nparity)
	if err != nil {
		panic(err)
	}
	return c
}

// ParityLen returns the number of parity bytes appended by Encode.
func (c *Codec) ParityLen() int { return c.nparity }

// MaxDataLen returns the maximum number of data bytes per message.
func (c *Codec) MaxDataLen() int { return 255 - c.nparity }

// CorrectionCapability returns the maximum number of byte errors the codec
// can correct with no erasure information.
func (c *Codec) CorrectionCapability() int { return c.nparity / 2 }

// Encode appends parity bytes to data, returning a new slice of
// len(data)+ParityLen() bytes. The encoding is systematic: the original data
// occupies the prefix. Encode returns an error if the resulting message
// would exceed 255 bytes.
func (c *Codec) Encode(data []byte) ([]byte, error) {
	if len(data)+c.nparity > 255 {
		return nil, ErrLongMessage
	}
	// Multiply the message polynomial by x^nparity and take the remainder
	// modulo the generator; the remainder is the parity.
	padded := make(gf256.Polynomial, len(data)+c.nparity)
	copy(padded, data)
	_, rem := gf256.DivMod(padded, c.gen)
	out := make([]byte, len(data)+c.nparity)
	copy(out, data)
	// rem may be shorter than nparity if leading coefficients are zero.
	copy(out[len(out)-len(rem):], rem)
	return out, nil
}

// Decode corrects msg in place (on a copy) and returns the data portion
// (message minus parity). erasures, if non-nil, lists byte positions known
// to be unreliable; each erasure consumes half the budget of an unknown
// error, so e erasures and t errors are correctable when 2t + e <= parity.
// Decode returns ErrTooManyErrors when correction fails or produces an
// inconsistent codeword.
func (c *Codec) Decode(msg []byte, erasures []int) ([]byte, error) {
	data, _, err := c.DecodeCounted(msg, erasures)
	return data, err
}

// DecodeCounted is Decode reporting how many byte positions it corrected
// (erasure fills included) — the per-message RS load the paper's
// evaluation tracks. A clean codeword reports zero.
func (c *Codec) DecodeCounted(msg []byte, erasures []int) (data []byte, corrected int, err error) {
	return c.DecodeCountedScratch(msg, erasures, nil)
}

// Scratch holds the reusable buffers of the decode fast path (the working
// copy of the codeword and the syndrome vector), so a receiver decoding
// many clean messages does not allocate per message. The zero value is
// ready to use; a Scratch is not safe for concurrent use.
type Scratch struct {
	work []byte
	synd []byte
}

// DecodeCountedScratch is DecodeCounted drawing its fast-path buffers from
// sc; a nil sc allocates fresh buffers (identical to DecodeCounted). With
// a scratch, the returned data slice aliases the scratch's working buffer
// — it is valid only until the next call using the same scratch, and
// callers that keep it must copy. Results are bit-identical either way.
func (c *Codec) DecodeCountedScratch(msg []byte, erasures []int, sc *Scratch) (data []byte, corrected int, err error) {
	if len(msg) < c.nparity {
		return nil, 0, ErrShortMessage
	}
	if len(msg) > 255 {
		return nil, 0, ErrLongMessage
	}
	for _, e := range erasures {
		if e < 0 || e >= len(msg) {
			return nil, 0, fmt.Errorf("rs: erasure position %d out of range [0, %d)", e, len(msg))
		}
	}
	if len(erasures) > c.nparity {
		return nil, 0, ErrTooManyErrors
	}

	var work, synd []byte
	if sc != nil {
		sc.work = growBytes(sc.work, len(msg))
		sc.synd = growBytes(sc.synd, c.nparity)
		work, synd = sc.work, sc.synd
	} else {
		work = make([]byte, len(msg))
		synd = make([]byte, c.nparity)
	}
	copy(work, msg)

	c.syndromesInto(synd, work)
	if allZero(synd) {
		return work[:len(work)-c.nparity], 0, nil
	}

	// Positions are conventionally expressed from the end of the message:
	// position j corresponds to the coefficient of x^j, i.e. byte
	// msg[len(msg)-1-j].
	erasePos := make([]int, len(erasures))
	for i, e := range erasures {
		erasePos[i] = len(msg) - 1 - e
	}

	errLoc, err := c.errorLocator(synd, erasePos)
	if err != nil {
		return nil, 0, err
	}
	positions, err := c.chienSearch(errLoc, len(msg))
	if err != nil {
		return nil, 0, err
	}
	if err := c.forneyCorrect(work, synd, errLoc, positions); err != nil {
		return nil, 0, err
	}
	// Verify: recompute syndromes after correction. synd itself is free to
	// reuse — the correction path is done with it.
	c.syndromesInto(synd, work)
	if !allZero(synd) {
		return nil, 0, ErrTooManyErrors
	}
	return work[:len(work)-c.nparity], len(positions), nil
}

// syndromes evaluates the received polynomial at alpha^0..alpha^(nparity-1).
func (c *Codec) syndromes(msg []byte) []byte {
	synd := make([]byte, c.nparity)
	c.syndromesInto(synd, msg)
	return synd
}

// syndromesInto is syndromes writing into a caller-provided vector of
// length nparity.
func (c *Codec) syndromesInto(synd, msg []byte) {
	for i := range synd {
		synd[i] = gf256.Polynomial(msg).Eval(gf256.Exp(i))
	}
}

// growBytes returns b resized to n bytes, reusing its storage when the
// capacity allows. Contents are unspecified.
func growBytes(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// errorLocator runs Berlekamp-Massey on the Forney syndromes and multiplies
// in the erasure locator. All locator polynomials use the same
// descending-power layout as gf256.Polynomial (constant term last).
func (c *Codec) errorLocator(synd []byte, erasePos []int) (gf256.Polynomial, error) {
	// Erasure locator: product over erasures of (1 - alpha^pos * x),
	// which in descending-power order is {alpha^pos, 1}.
	eraseLoc := []byte{1}
	for _, p := range erasePos {
		eraseLoc = mulDesc(eraseLoc, []byte{gf256.Exp(p), 1})
	}

	// Forney syndromes: fold erasure information into the syndromes so
	// Berlekamp-Massey only has to find the unknown error positions.
	fsynd := make([]byte, len(synd))
	copy(fsynd, synd)
	for _, p := range erasePos {
		x := gf256.Exp(p)
		for i := 0; i < len(fsynd)-1; i++ {
			fsynd[i] = gf256.Mul(fsynd[i], x) ^ fsynd[i+1]
		}
		fsynd = fsynd[:len(fsynd)-1]
	}

	errLoc := []byte{1}
	oldLoc := []byte{1}
	for i := 0; i < len(fsynd); i++ {
		delta := fsynd[i]
		for j := 1; j < len(errLoc); j++ {
			delta ^= gf256.Mul(errLoc[len(errLoc)-1-j], fsynd[i-j])
		}
		oldLoc = append(oldLoc, 0)
		if delta != 0 {
			if len(oldLoc) > len(errLoc) {
				newLoc := scaleDesc(oldLoc, delta)
				oldLoc = scaleDesc(errLoc, gf256.Inv(delta))
				errLoc = newLoc
			}
			scaled := scaleDesc(oldLoc, delta)
			errLoc = addDesc(errLoc, scaled)
		}
	}

	// Combine with the erasure locator.
	errLoc = mulDesc(trimDesc(errLoc), eraseLoc)
	nErrs := len(trimDesc(errLoc)) - 1
	if 2*(nErrs-len(erasePos))+len(erasePos) > c.nparity {
		return nil, ErrTooManyErrors
	}
	return gf256.Polynomial(trimDesc(errLoc)), nil
}

// chienSearch finds the error positions as roots of the locator polynomial
// (descending-power order). Position j is in error iff alpha^-j is a root;
// j counts from the message end, so byte msg[len(msg)-1-j] is corrupt.
func (c *Codec) chienSearch(loc gf256.Polynomial, msgLen int) ([]int, error) {
	nErrs := len(loc) - 1
	if nErrs == 0 {
		return nil, ErrTooManyErrors
	}
	var positions []int
	for j := 0; j < msgLen; j++ {
		// x = alpha^-j is a root iff position j is in error.
		if loc.Eval(gf256.Exp(-j)) == 0 {
			positions = append(positions, j)
		}
	}
	if len(positions) != nErrs {
		// Locator degree disagrees with root count: uncorrectable.
		return nil, ErrTooManyErrors
	}
	return positions, nil
}

// forneyCorrect computes error magnitudes with the Forney algorithm and
// repairs msg in place. positions are powers-of-x positions (from message
// end), as produced by chienSearch.
func (c *Codec) forneyCorrect(msg, synd []byte, loc gf256.Polynomial, positions []int) error {
	// Error evaluator: omega(x) = [synd(x) * loc(x)] mod x^nparity,
	// with synd in ascending order.
	syndAsc := make([]byte, len(synd))
	copy(syndAsc, synd) // synd[i] is S_i, coefficient of x^i: already ascending
	locAsc := make([]byte, len(loc))
	for i, v := range loc {
		locAsc[len(loc)-1-i] = v
	}
	omega := mulDescTrunc(syndAsc, locAsc, c.nparity)

	// Formal derivative of the locator (ascending): odd-power terms survive.
	locDeriv := make([]byte, 0, len(locAsc)/2)
	for i := 1; i < len(locAsc); i += 2 {
		locDeriv = append(locDeriv, locAsc[i])
	}

	for _, j := range positions {
		xInv := gf256.Exp(-j)
		// omega(x^-1)
		var num byte
		xp := byte(1)
		for _, w := range omega {
			num ^= gf256.Mul(w, xp)
			xp = gf256.Mul(xp, xInv)
		}
		// loc'(x^-1) evaluated over even powers (x^-2 steps).
		var den byte
		xp = byte(1)
		x2 := gf256.Mul(xInv, xInv)
		for _, d := range locDeriv {
			den ^= gf256.Mul(d, xp)
			xp = gf256.Mul(xp, x2)
		}
		if den == 0 {
			return ErrTooManyErrors
		}
		magnitude := gf256.Mul(gf256.Div(num, den), gf256.Exp(j))
		idx := len(msg) - 1 - j
		msg[idx] ^= magnitude
	}
	return nil
}

// --- byte-slice polynomial helpers ---
//
// These operate on descending-power slices (constant term last), matching
// gf256.Polynomial. mulDescTrunc is also used on ascending slices inside
// forneyCorrect: plain multiplication is layout-agnostic, and its truncation
// keeps low indices, which for ascending slices is exactly "mod x^n".

func mulDesc(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			out[i+j] ^= gf256.Mul(ca, cb)
		}
	}
	return out
}

func mulDescTrunc(a, b []byte, n int) []byte {
	out := make([]byte, n)
	for i, ca := range a {
		if ca == 0 || i >= n {
			continue
		}
		for j, cb := range b {
			if i+j >= n {
				break
			}
			out[i+j] ^= gf256.Mul(ca, cb)
		}
	}
	return out
}

func scaleDesc(p []byte, c byte) []byte {
	out := make([]byte, len(p))
	for i, v := range p {
		out[i] = gf256.Mul(v, c)
	}
	return out
}

func addDesc(a, b []byte) []byte {
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make([]byte, len(a))
	copy(out, a)
	for i, v := range b {
		out[len(out)-len(b)+i] ^= v
	}
	return out
}

func trimDesc(p []byte) []byte {
	for i := range p {
		if p[i] != 0 {
			return p[i:]
		}
	}
	return []byte{0}
}
