package rs

import (
	"bytes"
	"testing"
)

// FuzzRSDecode throws arbitrary messages, erasure lists and parity widths
// at the decoder. Decode may reject, but must never panic; whatever it
// accepts must be a self-consistent codeword, and clean round trips must
// stay bit-exact.
func FuzzRSDecode(f *testing.F) {
	c16 := MustNew(16)
	clean, _ := c16.Encode([]byte("reed-solomon over the rainbar link"))
	f.Add(clean, []byte{}, byte(15))
	corrupt := bytes.Clone(clean)
	corrupt[0] ^= 0xFF
	corrupt[9] ^= 0x55
	f.Add(corrupt, []byte{0, 9}, byte(15))
	f.Add([]byte{}, []byte{}, byte(0))
	f.Add([]byte{1, 2, 3}, []byte{200}, byte(3))

	f.Fuzz(func(t *testing.T, msg []byte, eraseRaw []byte, nparityByte byte) {
		nparity := 1 + int(nparityByte)%254
		codec, err := New(nparity)
		if err != nil {
			t.Fatalf("New(%d): %v", nparity, err)
		}
		if len(eraseRaw) > 16 {
			eraseRaw = eraseRaw[:16]
		}
		erasures := make([]int, len(eraseRaw))
		for i, e := range eraseRaw {
			erasures[i] = int(e) // may be out of range; Decode must reject, not panic
		}

		out, err := codec.Decode(msg, erasures)
		if err == nil {
			// Whatever Decode accepted must re-encode to a codeword of the
			// same length — i.e. the corrected message really was one.
			re, err := codec.Encode(out)
			if err != nil {
				t.Fatalf("accepted data does not re-encode: %v", err)
			}
			if len(re) != len(msg) {
				t.Fatalf("re-encoded length %d, message length %d", len(re), len(msg))
			}
		}

		// Clean round trip: any payload that fits must survive.
		if len(msg) > 0 && len(msg)+nparity <= 255 {
			enc, err := codec.Encode(msg)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			dec, err := codec.Decode(enc, nil)
			if err != nil {
				t.Fatalf("clean Decode: %v", err)
			}
			if !bytes.Equal(dec, msg) {
				t.Fatalf("round trip corrupted data")
			}
		}
	})
}
