// Package rdcode implements the RDCode baseline as characterized by the
// RainBar paper (§III-B, §III-F): the screen is divided into h x h-block
// squares; each square dedicates four corner blocks to a color palette
// (the per-square references used for color recognition) and protects its
// blocks with error correction; frames are additionally protected by an
// inter-frame XOR parity frame (a simplified form of RDCode's tri-level
// scheme: we implement the inter-block RS level and the inter-frame parity
// level; the intra-block level is folded into RS).
//
// The paper evaluates RDCode only analytically — capacity (it has the
// smallest effective code area of the three systems) and the cost of
// spending 4 blocks per square on palettes — so this package focuses on
// layout, capacity accounting, palette-based color recognition, and the
// error-correction levels. Its decoder assumes a geometry-aligned capture
// (no own corner-tracker stack): RDCode's localization is not part of any
// reproduced experiment.
package rdcode

import (
	"errors"
	"fmt"

	"rainbar/internal/colorspace"
	"rainbar/internal/raster"
	"rainbar/internal/rs"
)

// DefaultSquareSize is h: the side of a square in blocks (paper: 12x12 on
// the S4).
const DefaultSquareSize = 12

// paletteBlocks is the number of reference blocks each square spends.
const paletteBlocks = 4

// Config describes an RDCode codec.
type Config struct {
	// ScreenW, ScreenH, BlockSize define the grid, as in the other codecs.
	ScreenW, ScreenH, BlockSize int
	// SquareSize is h (default DefaultSquareSize).
	SquareSize int
	// RSParity is the parity bytes per square's RS message (default 8).
	RSParity int
	// ParityFrameInterval inserts one XOR parity frame after every this
	// many data frames (0 disables the inter-frame level).
	ParityFrameInterval int
}

// ErrBadFrame means error correction failed for at least one square.
var ErrBadFrame = errors.New("rdcode: frame failed error correction")

// Codec encodes and decodes RDCode frames.
type Codec struct {
	cfg              Config
	cols, rows       int
	sqCols, sqRows   int
	rsc              *rs.Codec
	perSquareData    int // data bytes per square after palette + parity
	perSquareBlocks  int // usable (non-palette) blocks per square
	capacityPerFrame int
}

// NewCodec validates and precomputes the layout.
func NewCodec(cfg Config) (*Codec, error) {
	if cfg.SquareSize == 0 {
		cfg.SquareSize = DefaultSquareSize
	}
	if cfg.RSParity == 0 {
		cfg.RSParity = 8
	}
	if cfg.BlockSize < 2 {
		return nil, fmt.Errorf("rdcode: block size %d too small", cfg.BlockSize)
	}
	if cfg.SquareSize < 4 {
		return nil, fmt.Errorf("rdcode: square size %d too small", cfg.SquareSize)
	}
	cols := cfg.ScreenW / cfg.BlockSize
	rows := cfg.ScreenH / cfg.BlockSize
	sqCols := cols / cfg.SquareSize
	sqRows := rows / cfg.SquareSize
	if sqCols < 1 || sqRows < 1 {
		return nil, fmt.Errorf("rdcode: screen fits no %dx%d square", cfg.SquareSize, cfg.SquareSize)
	}
	rsc, err := rs.New(cfg.RSParity)
	if err != nil {
		return nil, fmt.Errorf("rdcode: %w", err)
	}
	c := &Codec{cfg: cfg, cols: cols, rows: rows, sqCols: sqCols, sqRows: sqRows, rsc: rsc}
	c.perSquareBlocks = cfg.SquareSize*cfg.SquareSize - paletteBlocks
	squareBytes := c.perSquareBlocks * colorspace.BitsPerBlock / 8
	if squareBytes > 255 {
		return nil, fmt.Errorf("rdcode: square of %d bytes exceeds one RS message; use a smaller square", squareBytes)
	}
	c.perSquareData = squareBytes - cfg.RSParity
	if c.perSquareData <= 0 {
		return nil, fmt.Errorf("rdcode: square too small for parity %d", cfg.RSParity)
	}
	c.capacityPerFrame = c.perSquareData * sqCols * sqRows
	return c, nil
}

// MustCodec is NewCodec but panics on error.
func MustCodec(cfg Config) *Codec {
	c, err := NewCodec(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// FrameCapacity returns the payload bytes per data frame.
func (c *Codec) FrameCapacity() int { return c.capacityPerFrame }

// CodeAreaBlocks counts usable code blocks: non-palette blocks of every
// whole square. This is the paper's §III-B capacity metric for RDCode;
// screen area outside whole squares is wasted ("this configuration limits
// the adaptation of frames on different sizes of screens").
func (c *Codec) CodeAreaBlocks() int {
	return c.perSquareBlocks * c.sqCols * c.sqRows
}

// RawSquareBlocks counts all blocks of whole squares including palettes.
func (c *Codec) RawSquareBlocks() int {
	return c.cfg.SquareSize * c.cfg.SquareSize * c.sqCols * c.sqRows
}

// Squares returns the usable square grid dimensions.
func (c *Codec) Squares() (cols, rows int) { return c.sqCols, c.sqRows }

// paletteColors is the fixed palette order painted clockwise from the
// square's top-left corner: white, red, green, blue.
var paletteColors = [paletteBlocks]colorspace.Color{
	colorspace.White, colorspace.Red, colorspace.Green, colorspace.Blue,
}

// paletteCells returns the four palette cell positions (block coords
// within a square): the corners, clockwise from top-left.
func (c *Codec) paletteCells() [paletteBlocks][2]int {
	h := c.cfg.SquareSize
	return [paletteBlocks][2]int{{0, 0}, {0, h - 1}, {h - 1, h - 1}, {h - 1, 0}}
}

// Frame is one rendered-ready RDCode frame.
type Frame struct {
	codec  *Codec
	colors []colorspace.Color
	// IsParity marks inter-frame XOR parity frames.
	IsParity bool
}

// Render paints the frame. Grid area outside whole squares stays black.
func (f *Frame) Render() *raster.Image {
	c := f.codec
	bs := c.cfg.BlockSize
	img := raster.New(c.cols*bs, c.rows*bs)
	for r := 0; r < c.rows; r++ {
		for co := 0; co < c.cols; co++ {
			img.FillRect(co*bs, r*bs, bs, bs, colorspace.Paint(f.colors[r*c.cols+co]))
		}
	}
	return img
}

// EncodeFrame builds one data frame (payload zero-padded to capacity).
func (c *Codec) EncodeFrame(payload []byte) (*Frame, error) {
	if len(payload) > c.capacityPerFrame {
		return nil, fmt.Errorf("rdcode: payload %d exceeds capacity %d", len(payload), c.capacityPerFrame)
	}
	padded := make([]byte, c.capacityPerFrame)
	copy(padded, payload)

	f := &Frame{codec: c, colors: make([]colorspace.Color, c.rows*c.cols)}
	for i := range f.colors {
		f.colors[i] = colorspace.Black
	}
	for sq := 0; sq < c.sqCols*c.sqRows; sq++ {
		data := padded[sq*c.perSquareData : (sq+1)*c.perSquareData]
		msg, err := c.rsc.Encode(data)
		if err != nil {
			return nil, fmt.Errorf("rdcode encode: %w", err)
		}
		c.paintSquare(f, sq, msg)
	}
	return f, nil
}

// squareOrigin returns the top-left block of square index sq.
func (c *Codec) squareOrigin(sq int) (row, col int) {
	h := c.cfg.SquareSize
	return (sq / c.sqCols) * h, (sq % c.sqCols) * h
}

// paintSquare writes the palette and the encoded bytes into one square.
func (c *Codec) paintSquare(f *Frame, sq int, msg []byte) {
	row0, col0 := c.squareOrigin(sq)
	h := c.cfg.SquareSize
	pal := c.paletteCells()
	isPalette := func(r, co int) (int, bool) {
		for i, p := range pal {
			if p[0] == r && p[1] == co {
				return i, true
			}
		}
		return 0, false
	}
	bitIdx := 0
	for r := 0; r < h; r++ {
		for co := 0; co < h; co++ {
			idx := (row0+r)*c.cols + (col0 + co)
			if pi, ok := isPalette(r, co); ok {
				f.colors[idx] = paletteColors[pi]
				continue
			}
			var bits byte
			if bitIdx/4 < len(msg) {
				bits = msg[bitIdx/4] >> uint(6-2*(bitIdx%4))
			}
			f.colors[idx] = colorspace.FromBits(bits)
			bitIdx++
		}
	}
}

// EncodeAll splits data into frames, inserting XOR parity frames per the
// configured interval.
func (c *Codec) EncodeAll(data []byte) ([]*Frame, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("rdcode: empty payload")
	}
	var frames []*Frame
	var group []*Frame
	for off := 0; off < len(data); off += c.capacityPerFrame {
		hi := min(off+c.capacityPerFrame, len(data))
		f, err := c.EncodeFrame(data[off:hi])
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
		group = append(group, f)
		if c.cfg.ParityFrameInterval > 0 && len(group) == c.cfg.ParityFrameInterval {
			frames = append(frames, c.xorParityFrame(group))
			group = group[:0]
		}
	}
	if c.cfg.ParityFrameInterval > 0 && len(group) > 0 {
		frames = append(frames, c.xorParityFrame(group))
	}
	return frames, nil
}

// xorParityFrame builds the inter-frame redundancy frame: each cell is the
// XOR of the group's cell symbols (palette cells keep the palette).
func (c *Codec) xorParityFrame(group []*Frame) *Frame {
	f := &Frame{codec: c, colors: make([]colorspace.Color, c.rows*c.cols), IsParity: true}
	copy(f.colors, group[0].colors)
	for r := 0; r < c.rows; r++ {
		for co := 0; co < c.cols; co++ {
			idx := r*c.cols + co
			if !group[0].colors[idx].IsData() {
				f.colors[idx] = group[0].colors[idx]
				continue
			}
			var bits byte
			for _, g := range group {
				bits ^= g.colors[idx].Bits()
			}
			f.colors[idx] = colorspace.FromBits(bits)
		}
	}
	return f
}
