package rdcode

import (
	"fmt"

	"rainbar/internal/raster"
)

// Receiver consumes a stream of RDCode captures in display order and
// applies the inter-frame level of the tri-level error correction: frames
// arrive in parity groups of ParityFrameInterval data frames followed by
// one XOR parity frame, and a single lost data frame per group is rebuilt
// from the parity frame and its siblings.
//
// RDCode has no retransmission — the always-on redundancy *is* the
// recovery story (the design the RainBar paper argues against in §V) —
// so a group losing two or more frames simply loses that data.
type Receiver struct {
	codec *Codec
	// group accumulates the current parity group's decoded payloads
	// (nil = frame failed); parity is the group's parity payload.
	group  [][]byte
	parity []byte

	out      [][]byte
	lost     int
	healed   int
	expected int
}

// NewReceiver creates a receiver. The codec's ParityFrameInterval must be
// set; a zero interval means no inter-frame protection and every capture
// is a data frame.
func NewReceiver(c *Codec) *Receiver {
	return &Receiver{codec: c}
}

// IngestData processes the next data-frame capture (nil image records a
// wholly lost frame, e.g. a capture that never happened).
func (rx *Receiver) IngestData(img *raster.Image) {
	rx.expected++
	var payload []byte
	if img != nil {
		if p, err := rx.codec.DecodeFrame(img); err == nil {
			payload = p
		}
	}
	if payload == nil {
		rx.lost++
	}
	rx.group = append(rx.group, payload)
	if rx.codec.cfg.ParityFrameInterval == 0 {
		rx.flushGroup()
	}
}

// IngestParity processes the parity-frame capture closing the current
// group and attempts single-loss recovery.
func (rx *Receiver) IngestParity(img *raster.Image) {
	if img != nil {
		if p, err := rx.codec.DecodeFrame(img); err == nil {
			rx.parity = p
		}
	}
	rx.flushGroup()
}

func (rx *Receiver) flushGroup() {
	if len(rx.group) == 0 {
		rx.parity = nil
		return
	}
	recovered, err := rx.codec.RecoverGroup(rx.group, rx.parity)
	if err == nil {
		for i, p := range rx.group {
			if p == nil && recovered[i] != nil {
				rx.healed++
			}
		}
		rx.out = append(rx.out, recovered...)
	} else {
		rx.out = append(rx.out, rx.group...)
	}
	rx.group = nil
	rx.parity = nil
}

// Finish closes any open group and returns the decoded payload sequence
// (nil entries where recovery was impossible) plus loss statistics.
func (rx *Receiver) Finish() (payloads [][]byte, lost, healed int, err error) {
	rx.flushGroup()
	unrecovered := 0
	for _, p := range rx.out {
		if p == nil {
			unrecovered++
		}
	}
	if unrecovered > 0 {
		err = fmt.Errorf("%w: %d/%d frames unrecoverable", ErrBadFrame, unrecovered, rx.expected)
	}
	return rx.out, rx.lost, rx.healed, err
}
