package rdcode

//lint:file-allow RB-P1 baseline comparison codec: its DecodeFrame shares a hot-path name but is not the optimized rainbar decode loop

import (
	"fmt"

	"rainbar/internal/colorspace"
	"rainbar/internal/raster"
)

// paletteClassifier recognizes a block color by nearest-neighbor distance
// to the square's own palette samples — RDCode's signature mechanism
// (§III-F: "uses color palettes to decide the colors of blocks"). Because
// the references are sampled from the same capture, the classifier adapts
// to illumination for free, at the cost of the four blocks per square.
type paletteClassifier struct {
	refs [paletteBlocks]colorspace.RGB
	// black is a synthetic dark reference (RDCode paints no black data
	// blocks, but unused area and deep shadows classify against it).
	black colorspace.RGB
}

func (pc *paletteClassifier) classify(p colorspace.RGB) colorspace.Color {
	best := colorspace.Black
	bestD := dist2(p, pc.black)
	for i, ref := range pc.refs {
		if d := dist2(p, ref); d < bestD {
			bestD = d
			best = paletteColors[i]
		}
	}
	return best
}

func dist2(a, b colorspace.RGB) float64 {
	dr := float64(a.R) - float64(b.R)
	dg := float64(a.G) - float64(b.G)
	db := float64(a.B) - float64(b.B)
	return dr*dr + dg*dg + db*db
}

// DecodeFrame decodes a geometry-aligned capture (same resolution as the
// render; photometric impairments allowed). Each square is classified
// against its own palette, RS-corrected, and concatenated.
func (c *Codec) DecodeFrame(img *raster.Image) ([]byte, error) {
	bs := c.cfg.BlockSize
	if img.W < c.cols*bs || img.H < c.rows*bs {
		return nil, fmt.Errorf("rdcode: capture %dx%d smaller than frame %dx%d", img.W, img.H, c.cols*bs, c.rows*bs)
	}
	payload := make([]byte, 0, c.capacityPerFrame)
	var firstErr error
	failed := 0
	for sq := 0; sq < c.sqCols*c.sqRows; sq++ {
		data, err := c.decodeSquare(img, sq)
		if err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
			data = make([]byte, c.perSquareData) // placeholder, recoverable via parity frame
		}
		payload = append(payload, data...)
	}
	if failed > 0 {
		return payload, fmt.Errorf("%w: %d/%d squares (first: %v)", ErrBadFrame, failed, c.sqCols*c.sqRows, firstErr)
	}
	return payload, nil
}

// decodeSquare classifies and RS-decodes one square.
func (c *Codec) decodeSquare(img *raster.Image, sq int) ([]byte, error) {
	row0, col0 := c.squareOrigin(sq)
	bs := c.cfg.BlockSize
	h := c.cfg.SquareSize
	center := func(r, co int) (int, int) {
		return (col0+co)*bs + bs/2, (row0+r)*bs + bs/2
	}

	pc := paletteClassifier{black: colorspace.RGBBlack}
	for i, p := range c.paletteCells() {
		x, y := center(p[0], p[1])
		pc.refs[i] = img.MeanFilterAt(x, y)
	}

	msgLen := c.perSquareBlocks * colorspace.BitsPerBlock / 8
	stream := make([]byte, msgLen)
	pal := c.paletteCells()
	isPalette := func(r, co int) bool {
		for _, p := range pal {
			if p[0] == r && p[1] == co {
				return true
			}
		}
		return false
	}
	bitIdx := 0
	for r := 0; r < h; r++ {
		for co := 0; co < h; co++ {
			if isPalette(r, co) {
				continue
			}
			x, y := center(r, co)
			col := pc.classify(img.MeanFilterAt(x, y))
			var bits byte
			if col.IsData() {
				bits = col.Bits()
			}
			if bitIdx/4 < len(stream) {
				stream[bitIdx/4] |= bits << uint(6-2*(bitIdx%4))
			}
			bitIdx++
		}
	}
	data, err := c.rsc.Decode(stream, nil)
	if err != nil {
		return nil, fmt.Errorf("square %d: %w", sq, err)
	}
	return data, nil
}

// RecoverGroup applies the inter-frame level: given the decoded payloads
// of a parity group (nil entries for frames that failed) and the decoded
// parity frame payload, it reconstructs a single missing frame by XOR.
// More than one missing frame is unrecoverable at this level.
func (c *Codec) RecoverGroup(payloads [][]byte, parity []byte) ([][]byte, error) {
	missing := -1
	for i, p := range payloads {
		if p == nil {
			if missing >= 0 {
				return nil, fmt.Errorf("rdcode: %d frames missing in group; parity recovers only one", countNil(payloads))
			}
			missing = i
		}
	}
	if missing < 0 {
		return payloads, nil
	}
	if parity == nil {
		return nil, fmt.Errorf("rdcode: parity frame missing, cannot recover frame %d", missing)
	}
	recovered := make([]byte, len(parity))
	copy(recovered, parity)
	for i, p := range payloads {
		if i == missing {
			continue
		}
		for j := range recovered {
			if j < len(p) {
				recovered[j] ^= p[j]
			}
		}
	}
	out := make([][]byte, len(payloads))
	copy(out, payloads)
	out[missing] = recovered
	return out, nil
}

func countNil(ps [][]byte) int {
	n := 0
	for _, p := range ps {
		if p == nil {
			n++
		}
	}
	return n
}

// PaletteOverheadFraction reports the share of square blocks spent on
// palettes — the §III-F cost RainBar avoids.
func (c *Codec) PaletteOverheadFraction() float64 {
	return float64(paletteBlocks) / float64(c.cfg.SquareSize*c.cfg.SquareSize)
}
