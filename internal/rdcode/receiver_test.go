package rdcode

import (
	"bytes"
	"math/rand"
	"testing"

	"rainbar/internal/raster"
)

func parityCodec(t *testing.T, interval int) *Codec {
	t.Helper()
	c, err := NewCodec(Config{ScreenW: 480, ScreenH: 270, BlockSize: 10, SquareSize: 9, ParityFrameInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// encodeStream builds the display sequence (data + parity frames) and the
// original payloads for n data frames.
func encodeStream(t *testing.T, c *Codec, n int, seed int64) ([][]byte, []*Frame) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n*c.FrameCapacity())
	rng.Read(data)
	frames, err := c.EncodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = data[i*c.FrameCapacity() : (i+1)*c.FrameCapacity()]
	}
	return payloads, frames
}

func TestReceiverCleanStream(t *testing.T) {
	c := parityCodec(t, 3)
	payloads, frames := encodeStream(t, c, 6, 1)
	rx := NewReceiver(c)
	for _, f := range frames {
		if f.IsParity {
			rx.IngestParity(f.Render())
		} else {
			rx.IngestData(f.Render())
		}
	}
	got, lost, healed, err := rx.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 || healed != 0 {
		t.Errorf("lost %d healed %d on a clean stream", lost, healed)
	}
	if len(got) != len(payloads) {
		t.Fatalf("%d payloads, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
}

func TestReceiverHealsSingleLossPerGroup(t *testing.T) {
	c := parityCodec(t, 3)
	payloads, frames := encodeStream(t, c, 6, 2)
	rx := NewReceiver(c)
	dataIdx := 0
	for _, f := range frames {
		if f.IsParity {
			rx.IngestParity(f.Render())
			continue
		}
		// Lose data frame 1 (group 0) and frame 4 (group 1).
		var img *raster.Image
		if dataIdx != 1 && dataIdx != 4 {
			img = f.Render()
		}
		rx.IngestData(img)
		dataIdx++
	}
	got, lost, healed, err := rx.Finish()
	if err != nil {
		t.Fatalf("single loss per group not healed: %v", err)
	}
	if lost != 2 || healed != 2 {
		t.Errorf("lost %d healed %d, want 2/2", lost, healed)
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d mismatch after healing", i)
		}
	}
}

func TestReceiverDoubleLossIsUnrecoverable(t *testing.T) {
	c := parityCodec(t, 3)
	_, frames := encodeStream(t, c, 3, 3)
	rx := NewReceiver(c)
	dataIdx := 0
	for _, f := range frames {
		if f.IsParity {
			rx.IngestParity(f.Render())
			continue
		}
		var img *raster.Image
		if dataIdx > 1 { // lose frames 0 and 1 of the only group
			img = f.Render()
		}
		rx.IngestData(img)
		dataIdx++
	}
	_, lost, healed, err := rx.Finish()
	if err == nil {
		t.Fatal("double loss reported as recovered")
	}
	if lost != 2 || healed != 0 {
		t.Errorf("lost %d healed %d, want 2/0", lost, healed)
	}
}

func TestReceiverLostParityFrame(t *testing.T) {
	// Losing the parity frame itself only matters when a data frame is
	// also missing.
	c := parityCodec(t, 2)
	payloads, frames := encodeStream(t, c, 2, 4)
	rx := NewReceiver(c)
	for _, f := range frames {
		if f.IsParity {
			rx.IngestParity(nil) // parity capture lost
		} else {
			rx.IngestData(f.Render())
		}
	}
	got, _, _, err := rx.Finish()
	if err != nil {
		t.Fatalf("intact data with lost parity reported failed: %v", err)
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
}

func TestReceiverNoParityInterval(t *testing.T) {
	c := parityCodec(t, 0)
	payloads, frames := encodeStream(t, c, 2, 5)
	rx := NewReceiver(c)
	for _, f := range frames {
		rx.IngestData(f.Render())
	}
	got, _, _, err := rx.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
}
