package rdcode

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"rainbar/internal/channel"
	"rainbar/internal/colorspace"
	"rainbar/internal/raster"
)

func testCodec(t testing.TB) *Codec {
	t.Helper()
	c, err := NewCodec(Config{ScreenW: 480, ScreenH: 270, BlockSize: 10, SquareSize: 9})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(Config{ScreenW: 50, ScreenH: 50, BlockSize: 10, SquareSize: 12}); err == nil {
		t.Error("screen with no whole square accepted")
	}
	if _, err := NewCodec(Config{ScreenW: 480, ScreenH: 270, BlockSize: 10, SquareSize: 2}); err == nil {
		t.Error("square size 2 accepted")
	}
	if _, err := NewCodec(Config{ScreenW: 1920, ScreenH: 1080, BlockSize: 13, SquareSize: 40}); err == nil {
		t.Error("square exceeding one RS message accepted")
	}
}

func TestS4CapacityBelowCOBRAAndRainBar(t *testing.T) {
	// Paper §III-B on the S4 grid (147x83, h=12): RDCode wastes the area
	// outside whole squares and spends 4 palette blocks per square. The
	// paper quotes 10508 usable blocks; our stricter accounting (palette
	// blocks excluded up front) gives 12*6 squares * (144-4) = 10080.
	// Either way it must come in below COBRA's 10857.
	c, err := NewCodec(Config{ScreenW: 1920, ScreenH: 1080, BlockSize: 13})
	if err != nil {
		t.Fatal(err)
	}
	sqCols, sqRows := c.Squares()
	if sqCols != 12 || sqRows != 6 {
		t.Fatalf("squares %dx%d, want 12x6", sqCols, sqRows)
	}
	if got := c.CodeAreaBlocks(); got != 10080 {
		t.Fatalf("code area = %d, want 10080", got)
	}
	if c.CodeAreaBlocks() >= 10857 {
		t.Fatal("RDCode code area not below COBRA's")
	}
	if got := c.RawSquareBlocks(); got != 12*6*144 {
		t.Fatalf("raw square blocks = %d", got)
	}
}

func TestPaletteOverheadFraction(t *testing.T) {
	c, err := NewCodec(Config{ScreenW: 1920, ScreenH: 1080, BlockSize: 13})
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0 / 144.0
	if got := c.PaletteOverheadFraction(); got != want {
		t.Errorf("palette overhead = %v, want %v", got, want)
	}
}

func TestEncodePaintsPalettes(t *testing.T) {
	c := testCodec(t)
	f, err := c.EncodeFrame([]byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	h := c.cfg.SquareSize
	// Square 0 top-left corner must be white; top-right red (clockwise).
	if got := f.colors[0]; got != colorspace.White {
		t.Errorf("palette[0] = %v, want white", got)
	}
	if got := f.colors[h-1]; got != colorspace.Red {
		t.Errorf("palette[1] = %v, want red", got)
	}
	if got := f.colors[(h-1)*c.cols+h-1]; got != colorspace.Green {
		t.Errorf("palette[2] = %v, want green", got)
	}
	if got := f.colors[(h-1)*c.cols]; got != colorspace.Blue {
		t.Errorf("palette[3] = %v, want blue", got)
	}
}

func TestCleanRoundTrip(t *testing.T) {
	c := testCodec(t)
	want := make([]byte, c.FrameCapacity())
	rand.New(rand.NewSource(1)).Read(want)
	f, err := c.EncodeFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeFrame(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("clean round trip failed")
	}
}

func TestPaletteAdaptsToDimming(t *testing.T) {
	// RDCode's palette classifier must survive photometric degradation
	// (brightness + noise, no geometric warp since RDCode's localization
	// is out of scope).
	c := testCodec(t)
	want := make([]byte, c.FrameCapacity())
	rand.New(rand.NewSource(2)).Read(want)
	f, err := c.EncodeFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	cfg := channel.DefaultConfig()
	cfg.ScreenBrightness = 0.5
	ch, err := channel.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capt := ch.Photometric(f.Render())
	got, err := c.DecodeFrame(capt)
	if err != nil {
		t.Fatalf("decode at 50%% brightness: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted at 50% brightness")
	}
}

func TestDecodeRejectsUndersizedCapture(t *testing.T) {
	c := testCodec(t)
	small := raster.New(32, 32)
	if _, err := c.DecodeFrame(small); err == nil {
		t.Fatal("undersized capture accepted")
	}
}

func TestEncodeAllInsertsParityFrames(t *testing.T) {
	c, err := NewCodec(Config{ScreenW: 480, ScreenH: 270, BlockSize: 10, SquareSize: 9, ParityFrameInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, c.FrameCapacity()*3)
	frames, err := c.EncodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	// 3 data frames -> groups of 2 + 1 -> 2 parity frames -> 5 total.
	if len(frames) != 5 {
		t.Fatalf("%d frames, want 5", len(frames))
	}
	if !frames[2].IsParity || !frames[4].IsParity {
		t.Error("parity frames not where expected")
	}
	if frames[0].IsParity || frames[1].IsParity || frames[3].IsParity {
		t.Error("data frame marked as parity")
	}
}

func TestRecoverGroupRebuildsSingleLoss(t *testing.T) {
	c, err := NewCodec(Config{ScreenW: 480, ScreenH: 270, BlockSize: 10, SquareSize: 9, ParityFrameInterval: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	group := make([][]byte, 3)
	for i := range group {
		group[i] = make([]byte, c.FrameCapacity())
		rng.Read(group[i])
	}
	parity := make([]byte, c.FrameCapacity())
	for _, g := range group {
		for j := range parity {
			parity[j] ^= g[j]
		}
	}
	lost := make([][]byte, 3)
	copy(lost, group)
	want := lost[1]
	lost[1] = nil
	recovered, err := c.RecoverGroup(lost, parity)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recovered[1], want) {
		t.Fatal("XOR recovery produced wrong frame")
	}
}

func TestRecoverGroupRefusesDoubleLoss(t *testing.T) {
	c := testCodec(t)
	group := [][]byte{nil, nil, make([]byte, 4)}
	if _, err := c.RecoverGroup(group, make([]byte, 4)); err == nil {
		t.Fatal("double loss recovered")
	}
}

func TestRecoverGroupNoLossPassthrough(t *testing.T) {
	c := testCodec(t)
	group := [][]byte{{1}, {2}}
	out, err := c.RecoverGroup(group, nil)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0][0] != &group[0][0] {
		t.Log("payloads copied rather than shared; acceptable but unexpected")
	}
}

func TestDecodeReportsFailedSquares(t *testing.T) {
	c := testCodec(t)
	want := make([]byte, c.FrameCapacity())
	rand.New(rand.NewSource(4)).Read(want)
	f, err := c.EncodeFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	img := f.Render()
	// Obliterate one square with saturated noise (a uniform fill would
	// decode as the all-zero codeword, which RS accepts as valid).
	bs := c.cfg.BlockSize
	rng := rand.New(rand.NewSource(5))
	palette := []colorspace.RGB{colorspace.RGBRed, colorspace.RGBGreen, colorspace.RGBBlue, colorspace.RGBWhite}
	side := c.cfg.SquareSize * bs
	for y := 0; y < side; y += bs {
		for x := 0; x < side; x += bs {
			img.FillRect(x, y, bs, bs, palette[rng.Intn(len(palette))])
		}
	}
	_, err = c.DecodeFrame(img)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}
