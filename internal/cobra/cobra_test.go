package cobra

import (
	"bytes"
	"math/rand"
	"testing"

	"rainbar/internal/channel"
	"rainbar/internal/colorspace"
)

func testCodec(t testing.TB) *Codec {
	t.Helper()
	c, err := NewCodec(Config{ScreenW: 480, ScreenH: 270, BlockSize: 10, DisplayRate: 10, AppType: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func payloadFor(c *Codec, seed int64) []byte {
	data := make([]byte, c.FrameCapacity())
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(Config{ScreenW: 50, ScreenH: 50, BlockSize: 10}); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := NewCodec(Config{ScreenW: 480, ScreenH: 270, BlockSize: 1}); err == nil {
		t.Error("block size 1 accepted")
	}
}

func TestCapacityMatchesPaperFormula(t *testing.T) {
	// Paper §III-B: COBRA's code area on the S4 is (147-6)*(83-6) = 10857.
	c, err := NewCodec(Config{ScreenW: 1920, ScreenH: 1080, BlockSize: 13})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CodeAreaBlocks(); got != 10857 {
		t.Fatalf("code area = %d blocks, want 10857", got)
	}
}

func TestEncodeFrameStructure(t *testing.T) {
	c := testCodec(t)
	f, err := c.EncodeFrame([]byte("abc"), 2, false)
	if err != nil {
		t.Fatal(err)
	}
	// Corner tracker centers are black, rings have their colors.
	cts := c.ctCenters()
	rings := []colorspace.Color{RingTL, RingTR, RingBL, RingBR}
	for i, ct := range cts {
		if got := f.colors[ct.row*c.cols+ct.col]; got != colorspace.Black {
			t.Errorf("CT %d center = %v", i, got)
		}
		if got := f.colors[(ct.row-1)*c.cols+ct.col]; got != rings[i] {
			t.Errorf("CT %d ring = %v, want %v", i, got, rings[i])
		}
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	c := testCodec(t)
	if _, err := c.EncodeFrame(make([]byte, c.FrameCapacity()+1), 0, false); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestPerfectRoundTripNoChannel(t *testing.T) {
	c := testCodec(t)
	want := payloadFor(c, 1)
	f, err := c.EncodeFrame(want, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	hdr, got, err := c.DecodeFrame(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Seq != 4 || !hdr.Last {
		t.Errorf("header %+v", hdr)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload mismatch on clean render")
	}
}

func TestRoundTripThroughGentleChannel(t *testing.T) {
	// COBRA must work under mild conditions — the paper's comparison is
	// fair only if the baseline functions in its comfort zone.
	c := testCodec(t)
	want := payloadFor(c, 2)
	f, err := c.EncodeFrame(want, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := channel.DefaultConfig()
	cfg.LensK1, cfg.LensK2 = 0, 0 // head-on, no lens distortion
	capt, err := channel.MustNew(cfg).Capture(f.Render())
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := c.DecodeFrame(capt)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted through gentle channel")
	}
}

func TestEncodeAllLastFlag(t *testing.T) {
	c := testCodec(t)
	data := make([]byte, c.FrameCapacity()+5)
	frames, err := c.EncodeAll(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("%d frames", len(frames))
	}
	if frames[0].Header().Last || !frames[1].Header().Last {
		t.Error("Last flags wrong")
	}
}

func TestReceiverPicksSharpestCapture(t *testing.T) {
	c := testCodec(t)
	want := payloadFor(c, 3)
	f, err := c.EncodeFrame(want, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	rendered := f.Render()

	sharpCfg := channel.DefaultConfig()
	sharpCfg.BlurSigma = 0.5
	blurCfg := channel.DefaultConfig()
	blurCfg.BlurSigma = 2.5

	sharp, err := channel.MustNew(sharpCfg).Capture(rendered)
	if err != nil {
		t.Fatal(err)
	}
	blurry, err := channel.MustNew(blurCfg).Capture(rendered)
	if err != nil {
		t.Fatal(err)
	}

	rx := NewReceiver(c)
	if err := rx.Ingest(blurry); err != nil {
		t.Logf("blurry capture rejected outright: %v", err)
	}
	if err := rx.Ingest(sharp); err != nil {
		t.Fatal(err)
	}
	got, ok := rx.Frame(0)
	if !ok {
		t.Fatal("frame missing")
	}
	if got.Err != nil {
		t.Fatalf("decode failed: %v", got.Err)
	}
	if !bytes.Equal(got.Payload, want) {
		t.Fatal("payload mismatch")
	}
}

func TestDecodeRejectsBlankImage(t *testing.T) {
	c := testCodec(t)
	f, err := c.EncodeFrame([]byte("x"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	img := f.Render()
	img.Fill(colorspace.RGBWhite)
	if _, _, err := c.DecodeFrame(img); err == nil {
		t.Fatal("blank image decoded")
	}
}

// TestLocalizationErrorVsRainBar is the Fig. 3/4 comparison: under strong
// perspective plus lens distortion, COBRA's straight-line intersection
// localization must show a larger mean block-center error than RainBar's
// progressive locators. The actual numbers are produced by experiment E12;
// here we assert the direction using raw block error rate as a proxy.
func TestLocalizationDegradesUnderDistortion(t *testing.T) {
	c := testCodec(t)
	want := payloadFor(c, 4)
	f, err := c.EncodeFrame(want, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	rendered := f.Render()

	gentle := channel.DefaultConfig()
	gentle.LensK1, gentle.LensK2 = 0, 0
	harsh := channel.DefaultConfig()
	harsh.ViewAngleDeg = 20
	harsh.LensK1, harsh.LensK2 = 0.06, 0.01

	errorRate := func(cfg channel.Config) float64 {
		capt, err := channel.MustNew(cfg).Capture(rendered)
		if err != nil {
			t.Fatal(err)
		}
		gd, err := c.DecodeGrid(capt)
		if err != nil {
			return 1.0
		}
		truth, err := c.EncodeFrame(want, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		wrong := 0
		for i, cell := range c.dataCells {
			if gd.Cells[i] != truth.colors[cell.row*c.cols+cell.col] {
				wrong++
			}
		}
		return float64(wrong) / float64(len(c.dataCells))
	}

	gentleErr := errorRate(gentle)
	harshErr := errorRate(harsh)
	if harshErr <= gentleErr {
		t.Fatalf("distortion did not degrade COBRA: gentle %.4f, harsh %.4f", gentleErr, harshErr)
	}
}
